/**
 * @file
 * Calibration harness (development tool): prints per-benchmark,
 * per-monitor headline numbers — app IPC, monitored IPC, filtering
 * ratio, and slowdowns — so profile constants can be tuned against the
 * paper's reported values. Not one of the reproduced figures, but kept
 * as a convenient overview binary.
 */

#include <cstdio>
#include <memory>

#include "monitor/factory.hh"
#include "sim/table.hh"
#include "system/system.hh"
#include "trace/profile.hh"

using namespace fade;

namespace
{

constexpr std::uint64_t warmN = 30000;
constexpr std::uint64_t runN = 120000;

struct Line
{
    double appIpc;
    double monIpc;
    double filtering;
    double slowUnacc;
    double slowFade;
};

Line
measure(const std::string &mon, const BenchProfile &prof)
{
    Line ln{};

    // Unmonitored baseline.
    SystemConfig base;
    base.accelerated = false;
    MonitoringSystem sysBase(base, prof, nullptr);
    sysBase.warmup(warmN);
    RunResult rb = sysBase.run(runN);

    // Producer-side measurement (ideal consumer, unbounded queue).
    {
        SystemConfig cfg;
        cfg.perfectConsumer = true;
        cfg.eqCapacity = 0;
        auto m = makeMonitor(mon);
        MonitoringSystem sys(cfg, prof, m.get());
        sys.warmup(warmN);
        RunResult r = sys.run(runN);
        ln.appIpc = r.appIpc;
        ln.monIpc = r.monitoredIpc;
    }

    // Unaccelerated single-core dual-threaded.
    {
        SystemConfig cfg;
        cfg.accelerated = false;
        auto m = makeMonitor(mon);
        MonitoringSystem sys(cfg, prof, m.get());
        sys.warmup(warmN);
        RunResult r = sys.run(runN);
        ln.slowUnacc = double(r.cycles) / rb.cycles;
    }

    // FADE single-core dual-threaded.
    {
        SystemConfig cfg;
        cfg.accelerated = true;
        auto m = makeMonitor(mon);
        MonitoringSystem sys(cfg, prof, m.get());
        sys.warmup(warmN);
        RunResult r = sys.run(runN);
        ln.slowFade = double(r.cycles) / rb.cycles;
        ln.filtering = sys.fade()->stats().filteringRatio();
    }
    return ln;
}

} // namespace

int
main()
{
    std::printf("== calibration overview ==\n");
    for (const auto &mon : monitorNames()) {
        bool parallel = mon == "AtomCheck";
        const auto &benches = parallel
                                  ? parallelBenchmarks()
                                  : (mon == "TaintCheck"
                                         ? taintBenchmarks()
                                         : specBenchmarks());
        TextTable t;
        t.header({"bench", "appIPC", "monIPC", "filter%", "unaccX",
                  "fadeX"});
        for (const auto &b : benches) {
            BenchProfile prof =
                parallel ? parallelProfile(b) : specProfile(b);
            Line ln = measure(mon, prof);
            t.row({b, fmt("%.2f", ln.appIpc), fmt("%.2f", ln.monIpc),
                   fmtPct(ln.filtering), fmtX(ln.slowUnacc),
                   fmtX(ln.slowFade)});
        }
        std::printf("\n-- %s --\n", mon.c_str());
        t.print();
    }
    return 0;
}
