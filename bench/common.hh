/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: standard
 * warmup/measure slice lengths, slowdown measurement against the
 * unmonitored baseline, and paper-vs-measured table plumbing.
 */

#ifndef FADE_BENCH_COMMON_HH
#define FADE_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "monitor/factory.hh"
#include "sim/table.hh"
#include "system/system.hh"
#include "trace/profile.hh"

namespace fade::bench
{

/** SMARTS-style slice lengths (Section 6 methodology). */
constexpr std::uint64_t warmupInsts = 25000;
constexpr std::uint64_t measureInsts = 60000;

/** Benchmarks used by a monitor (Section 6). */
inline const std::vector<std::string> &
benchmarksFor(const std::string &monitor)
{
    if (monitor == "AtomCheck")
        return parallelBenchmarks();
    if (monitor == "TaintCheck")
        return taintBenchmarks();
    return specBenchmarks();
}

inline BenchProfile
profileFor(const std::string &monitor, const std::string &bench)
{
    // "-mt" names a multi-threaded process workload of the base
    // benchmark (trace/profiles.cc): ocean-mt, streamcluster-mt, ...
    if (bench.size() > 3 && bench.compare(bench.size() - 3, 3, "-mt") == 0)
        return threadedProfile(bench.substr(0, bench.size() - 3));
    return monitor == "AtomCheck" ? parallelProfile(bench)
                                  : specProfile(bench);
}

/** Cycles for the unmonitored baseline (cached per profile+core). */
inline std::uint64_t
baselineCycles(const BenchProfile &prof, const CoreParams &core)
{
    static std::map<std::string, std::uint64_t> cache;
    std::string key = prof.name + "/" + core.name;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    SystemConfig cfg;
    cfg.core = core;
    cfg.accelerated = false;
    MonitoringSystem sys(cfg, prof, nullptr);
    sys.warmup(warmupInsts);
    RunResult r = sys.run(measureInsts);
    cache[key] = r.cycles;
    return r.cycles;
}

/** One monitored measurement. */
struct Measured
{
    RunResult run;
    double slowdown = 0.0;
    double filtering = 0.0;
    FadeStats fadeStats;
};

/** Run monitor+benchmark under @p cfg and normalize to unmonitored. */
inline Measured
measure(const SystemConfig &cfg, const std::string &monitor,
        const BenchProfile &prof,
        std::uint64_t insts = measureInsts)
{
    Measured m;
    auto mon = makeMonitor(monitor);
    MonitoringSystem sys(cfg, prof, mon.get());
    sys.warmup(warmupInsts);
    m.run = sys.run(insts);
    m.slowdown =
        double(m.run.cycles) / double(baselineCycles(prof, cfg.core));
    if (sys.fade()) {
        m.fadeStats = sys.fade()->stats();
        m.filtering = m.fadeStats.filteringRatio();
    }
    return m;
}

inline void
header(const char *what)
{
    std::printf("==============================================="
                "=========================\n");
    std::printf("%s\n", what);
    std::printf("==============================================="
                "=========================\n");
}

} // namespace fade::bench

#endif // FADE_BENCH_COMMON_HH
