/**
 * @file
 * faded — the monitoring daemon executable (src/daemon/). Listens on
 * a unix socket and serves monitoring sessions until SIGINT/SIGTERM,
 * then drains in-flight sessions and exits 0.
 *
 *   faded --socket PATH [--max-sessions N] [--workers N]
 *         [--quantum EPOCHS] [--out-frames N] [--upload-dir DIR]
 *
 * Drive it with bench/faded_client.cc (docs/BENCHMARKS.md).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "daemon/daemon.hh"

using namespace fade::daemon;

namespace
{

std::atomic<bool> stopRequested{false};

void
onSignal(int)
{
    stopRequested.store(true);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: faded --socket PATH [--max-sessions N] "
                 "[--workers N]\n"
                 "             [--quantum EPOCHS] [--out-frames N] "
                 "[--upload-dir DIR]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    FadedConfig cfg;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--socket")) {
            cfg.socketPath = next("--socket");
        } else if (!std::strcmp(argv[i], "--max-sessions")) {
            cfg.pool.maxActive = unsigned(
                std::strtoul(next("--max-sessions"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--workers")) {
            cfg.pool.workers =
                unsigned(std::strtoul(next("--workers"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--quantum")) {
            cfg.pool.quantumEpochs =
                std::strtoull(next("--quantum"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--out-frames")) {
            cfg.outFrames =
                std::strtoull(next("--out-frames"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--upload-dir")) {
            cfg.uploadDir = next("--upload-dir");
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return usage();
        }
    }
    if (cfg.socketPath.empty())
        return usage();

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    try {
        Faded daemon(cfg);
        daemon.start();
        std::printf("faded: serving on %s (max %u sessions, %u "
                    "workers, quantum %llu epochs)\n",
                    cfg.socketPath.c_str(), cfg.pool.maxActive,
                    cfg.pool.workers,
                    (unsigned long long)cfg.pool.quantumEpochs);
        std::fflush(stdout);
        while (!stopRequested.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        std::printf("faded: draining %u in-flight session(s)\n",
                    daemon.activeSessions());
        std::fflush(stdout);
        daemon.stop(true);
        std::printf("faded: clean shutdown\n");
        return 0;
    } catch (const ProtocolError &e) {
        std::fprintf(stderr, "faded: %s\n", e.what());
        return 1;
    }
}
