/**
 * @file
 * faded_client — submit monitoring sessions to a running faded
 * daemon (bench/faded.cc). Three modes:
 *
 *   faded_client --socket PATH [config flags]
 *       Run one live session and print its result fingerprints.
 *       --check additionally runs the identical experiment standalone
 *       in-process and exits 1 unless the daemon's result is
 *       bit-identical.
 *
 *   faded_client --socket PATH --upload FILE.ftrace [--check]
 *       Upload a captured trace and replay it daemon-side under the
 *       trace's own manifest config.
 *
 *   faded_client --socket PATH --sessions N --concurrency K
 *       Load mode: K client threads keep N sessions' worth of work in
 *       flight (distinct seed offsets), then emit one JSON line of
 *       sessions/s throughput (scripts/bench_baseline.sh).
 *
 * Config flags: --monitor M --profile P (repeatable) --shards N
 * --clusters C --fades K --policy lockstep|parallel
 * --engine percycle|batched|rungrain --warm N --instr N
 * --seed-offset N --slow-ms N (sleep per received frame; exercises
 * daemon backpressure).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hh"
#include "daemon/session.hh"

using namespace fade::daemon;

namespace
{

struct Options
{
    std::string socket;
    std::string upload;
    WireSessionConfig wc;
    bool check = false;
    int slowMs = 0;
    unsigned sessions = 0;
    unsigned concurrency = 1;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: faded_client --socket PATH [--monitor M] [--profile P]...\n"
        "                    [--shards N] [--clusters C] [--fades K]\n"
        "                    [--policy lockstep|parallel]\n"
        "                    [--engine percycle|batched|rungrain]\n"
        "                    [--warm N] [--instr N] [--seed-offset N]\n"
        "                    [--upload FILE.ftrace] [--check] [--slow-ms N]\n"
        "                    [--sessions N --concurrency K]\n");
    return 2;
}

bool
fingerprintsMatch(const ResultInfo &a, const ResultInfo &b)
{
    return a.hash == b.hash && a.resultFp == b.resultFp &&
           a.functionalFp == b.functionalFp;
}

int
runOne(const Options &opt)
{
    DaemonClient client(opt.socket);
    WireSessionConfig wc = opt.wc;
    wc.upload = !opt.upload.empty();
    if (auto rej = client.configure(wc, opt.upload)) {
        std::fprintf(stderr, "faded_client: rejected (%s): %s\n",
                     reasonName(rej->reason), rej->message.c_str());
        return 1;
    }
    SessionOutcome o = client.run(opt.slowMs);
    client.close();
    if (!o.ok) {
        std::fprintf(stderr, "faded_client: session failed (%s): %s\n",
                     reasonName(o.error.reason),
                     o.error.message.c_str());
        return 1;
    }
    std::printf("session #%llu: hash %016llx, %llu instructions, "
                "%llu events, %llu cycles, %llu report(s)\n",
                (unsigned long long)o.result.completionSeq,
                (unsigned long long)o.result.hash,
                (unsigned long long)o.result.instructions,
                (unsigned long long)o.result.events,
                (unsigned long long)o.result.cycles,
                (unsigned long long)o.result.bugReports);
    std::printf("scheduling: %llu quanta, %llu park(s), %zu progress "
                "frame(s)\n",
                (unsigned long long)o.result.quanta,
                (unsigned long long)o.result.parks,
                o.progress.size());

    if (opt.check) {
        ResultInfo local = standaloneRun(wc, opt.upload);
        if (!fingerprintsMatch(o.result, local)) {
            std::printf("CHECK FAILED: daemon %016llx vs standalone "
                        "%016llx\n",
                        (unsigned long long)o.result.hash,
                        (unsigned long long)local.hash);
            return 1;
        }
        std::printf("check: daemon result bit-identical to "
                    "standalone run (hash %016llx)\n",
                    (unsigned long long)local.hash);
    }
    return 0;
}

int
runLoad(const Options &opt)
{
    std::atomic<unsigned> nextSession{0};
    std::atomic<unsigned> completed{0};
    std::atomic<unsigned> failed{0};
    std::atomic<std::uint64_t> instructions{0};

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < opt.concurrency; ++t) {
        threads.emplace_back([&] {
            for (;;) {
                unsigned s = nextSession.fetch_add(1);
                if (s >= opt.sessions)
                    return;
                try {
                    DaemonClient client(opt.socket);
                    WireSessionConfig wc = opt.wc;
                    // Distinct seed per session: the load is many
                    // different experiments, not one repeated.
                    wc.seedOffset += s;
                    if (client.configure(wc)) {
                        failed.fetch_add(1);
                        continue;
                    }
                    SessionOutcome o = client.run();
                    client.close();
                    if (!o.ok) {
                        failed.fetch_add(1);
                        continue;
                    }
                    completed.fetch_add(1);
                    instructions.fetch_add(o.result.instructions);
                } catch (const ProtocolError &) {
                    failed.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    std::printf("{\"bench\":\"faded\",\"mode\":\"load\","
                "\"sessions\":%u,\"concurrency\":%u,"
                "\"completed\":%u,\"failed\":%u,"
                "\"instructions\":%llu,\"wall_s\":%.6f,"
                "\"sessions_per_s\":%.2f}\n",
                opt.sessions, opt.concurrency, completed.load(),
                failed.load(),
                (unsigned long long)instructions.load(), wall,
                completed.load() / wall);
    return failed.load() == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    // Defaults sized for quick smoke runs; override with --warm/--instr.
    opt.wc.warmup = 2000;
    opt.wc.measure = 10000;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--socket")) {
            opt.socket = next("--socket");
        } else if (!std::strcmp(argv[i], "--upload")) {
            opt.upload = next("--upload");
        } else if (!std::strcmp(argv[i], "--monitor")) {
            opt.wc.monitor = next("--monitor");
        } else if (!std::strcmp(argv[i], "--profile")) {
            opt.wc.profiles.push_back(next("--profile"));
        } else if (!std::strcmp(argv[i], "--shards")) {
            opt.wc.shards =
                unsigned(std::strtoul(next("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--clusters")) {
            opt.wc.clusters = unsigned(
                std::strtoul(next("--clusters"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--fades")) {
            opt.wc.fadesPerShard =
                unsigned(std::strtoul(next("--fades"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--policy")) {
            opt.wc.policy =
                !std::strcmp(next("--policy"), "parallel") ? 1 : 0;
        } else if (!std::strcmp(argv[i], "--engine")) {
            std::string e = next("--engine");
            opt.wc.engine = e == "rungrain" ? 2
                            : e == "batched" ? 1
                                             : 0;
        } else if (!std::strcmp(argv[i], "--warm")) {
            opt.wc.warmup = std::strtoull(next("--warm"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--instr")) {
            opt.wc.measure =
                std::strtoull(next("--instr"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--seed-offset")) {
            opt.wc.seedOffset =
                std::strtoull(next("--seed-offset"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--check")) {
            opt.check = true;
        } else if (!std::strcmp(argv[i], "--slow-ms")) {
            opt.slowMs =
                int(std::strtol(next("--slow-ms"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--sessions")) {
            opt.sessions = unsigned(
                std::strtoul(next("--sessions"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--concurrency")) {
            opt.concurrency = unsigned(
                std::strtoul(next("--concurrency"), nullptr, 10));
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return usage();
        }
    }
    if (opt.socket.empty())
        return usage();
    if (opt.wc.profiles.empty() && opt.upload.empty())
        opt.wc.profiles.push_back("bzip");
    if (!opt.upload.empty()) {
        // Upload sessions take shape and budget from the manifest.
        opt.wc.profiles.clear();
        opt.wc.warmup = 0;
        opt.wc.measure = 0;
        opt.wc.seedOffset = 0;
    }

    try {
        if (opt.sessions > 0)
            return runLoad(opt);
        return runOne(opt);
    } catch (const ProtocolError &e) {
        std::fprintf(stderr, "faded_client: %s\n", e.what());
        return 1;
    }
}
