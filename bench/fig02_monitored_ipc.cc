/**
 * @file
 * Reproduces Fig. 2 of the paper: the breakdown of application IPC into
 * monitored and unmonitored instructions on an aggressive 4-way OoO
 * core. (a) per-monitor averages across benchmarks; (b) per-benchmark
 * AddrCheck; (c) per-benchmark MemLeak.
 *
 * Paper reference points: memory-tracking monitors have a monitored IPC
 * of up to ~0.4 and propagation trackers up to ~0.68 on average;
 * AddrCheck averages 0.24 and MemLeak 0.68 with bzip at 1.2 and mcf at
 * 0.2; MemLeak's load is ~2.8x AddrCheck's.
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

Measured
producerRun(const std::string &monitor, const BenchProfile &prof)
{
    // Producer-side measurement: ideal consumer, unbounded queue, so
    // the application never stalls on monitoring (Section 3.1).
    SystemConfig cfg;
    cfg.perfectConsumer = true;
    cfg.eqCapacity = 0;
    return measure(cfg, monitor, prof);
}

} // namespace

int
main()
{
    header("Fig. 2(a): app IPC split, averaged across benchmarks");
    {
        TextTable t;
        t.header({"monitor", "app IPC", "monitored IPC",
                  "unmonitored IPC", "paper (monitored)"});
        const char *paperMon[] = {"~0.24", "~0.3", "~0.55", "0.68",
                                  "~0.6"};
        unsigned idx = 0;
        for (const auto &mon : paperMonitorNames()) {
            double app = 0, monitored = 0;
            const auto &benches = benchmarksFor(mon);
            for (const auto &b : benches) {
                Measured m = producerRun(mon, profileFor(mon, b));
                app += m.run.appIpc;
                monitored += m.run.monitoredIpc;
            }
            app /= benches.size();
            monitored /= benches.size();
            t.row({mon, fmt("%.2f", app), fmt("%.2f", monitored),
                   fmt("%.2f", app - monitored), paperMon[idx++]});
        }
        t.print();
    }

    header("Fig. 2(b): AddrCheck per benchmark (paper avg: 0.24)");
    {
        TextTable t;
        t.header({"bench", "app IPC", "monitored IPC"});
        double avg = 0;
        for (const auto &b : specBenchmarks()) {
            Measured m = producerRun("AddrCheck", specProfile(b));
            avg += m.run.monitoredIpc;
            t.row({b, fmt("%.2f", m.run.appIpc),
                   fmt("%.2f", m.run.monitoredIpc)});
        }
        t.row({"average", "", fmt("%.2f", avg / specBenchmarks().size())});
        t.print();
    }

    header("Fig. 2(c): MemLeak per benchmark "
           "(paper: avg 0.68, bzip 1.2, mcf 0.2)");
    {
        TextTable t;
        t.header({"bench", "app IPC", "monitored IPC"});
        double avg = 0, addrAvg = 0;
        for (const auto &b : specBenchmarks()) {
            Measured m = producerRun("MemLeak", specProfile(b));
            Measured a = producerRun("AddrCheck", specProfile(b));
            avg += m.run.monitoredIpc;
            addrAvg += a.run.monitoredIpc;
            t.row({b, fmt("%.2f", m.run.appIpc),
                   fmt("%.2f", m.run.monitoredIpc)});
        }
        avg /= specBenchmarks().size();
        addrAvg /= specBenchmarks().size();
        t.row({"average", "", fmt("%.2f", avg)});
        t.print();
        std::printf("\nMemLeak/AddrCheck monitored-IPC ratio: %.1fx "
                    "(paper: 2.8x)\n",
                    avg / addrAvg);
    }
    return 0;
}
