/**
 * @file
 * Reproduces Fig. 3 of the paper: (a, b) cumulative distribution of the
 * occupancy of an infinite event queue drained at one event per cycle,
 * for AddrCheck and MemLeak; (c) the slowdown effect of finite event
 * queue sizes (32 vs 32K entries) for MemLeak.
 *
 * Paper reference points: AddrCheck bursts fit in an 8-entry queue;
 * MemLeak requires 128 (mcf) to 8K (omnetpp) entries; with a 32-entry
 * queue the MemLeak slowdown ranges from none (mcf, astar, libquantum)
 * to ~1.17x (gobmk), with bzip at 1.33-1.36x (monitored IPC above 1.0,
 * so queueing cannot help) and gcc improving from 1.1x to 1.04x.
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

const Log2Histogram &
occupancyRun(MonitoringSystem &sys)
{
    sys.warmup(warmupInsts);
    sys.run(4 * measureInsts);
    return sys.eventQueue().occupancy();
}

} // namespace

int
main()
{
    for (const char *mon : {"AddrCheck", "MemLeak"}) {
        header(mon == std::string("AddrCheck")
                   ? "Fig. 3(a): infinite event-queue occupancy CDF, "
                     "AddrCheck (paper: bursts fit in 8 entries)"
                   : "Fig. 3(b): infinite event-queue occupancy CDF, "
                     "MemLeak (paper: 128 entries for mcf ... 8K for "
                     "omnetpp)");
        TextTable t;
        std::vector<std::uint64_t> points = {0,  1,   2,   4,    8,   16,
                                             32, 128, 512, 2048, 8192};
        std::vector<std::string> hdr = {"bench"};
        for (auto p : points)
            hdr.push_back("<=" + std::to_string(p));
        hdr.push_back("p99.9 bound");
        t.header(hdr);
        for (const auto &b : specBenchmarks()) {
            SystemConfig cfg;
            cfg.perfectConsumer = true;
            cfg.eqCapacity = 0;
            auto m = makeMonitor(mon);
            MonitoringSystem sys(cfg, specProfile(b), m.get());
            const Log2Histogram &h = occupancyRun(sys);
            std::vector<std::string> row = {b};
            for (auto p : points)
                row.push_back(fmt("%.0f", h.cdfAt(p) * 100.0) + "%");
            row.push_back(std::to_string(h.percentile(0.999)));
            t.row(row);
        }
        t.print();
        std::printf("\n");
    }

    header("Fig. 3(c): MemLeak slowdown vs event queue size "
           "(single-core dual-threaded, 4-way OoO)");
    {
        TextTable t;
        t.header({"bench", "32K entries", "32 entries", "paper 32K",
                  "paper 32"});
        const std::map<std::string, std::pair<const char *, const char *>>
            paper = {
                {"astar", {"1.00x", "~1.00x"}},
                {"bzip", {"1.33x", "1.36x"}},
                {"gcc", {"1.04x", "1.10x"}},
                {"gobmk", {"1.00x", "1.17x"}},
                {"hmmer", {"-", "-"}},
                {"libquantum", {"1.00x", "~1.00x"}},
                {"mcf", {"1.00x", "~1.00x"}},
                {"omnetpp", {"-", "-"}},
            };
        std::vector<double> big, small;
        for (const auto &b : specBenchmarks()) {
            SystemConfig cfgBig;
            cfgBig.eqCapacity = 32768;
            Measured mBig = measure(cfgBig, "MemLeak", specProfile(b));
            SystemConfig cfgSmall;
            cfgSmall.eqCapacity = 32;
            Measured mSmall =
                measure(cfgSmall, "MemLeak", specProfile(b));
            big.push_back(mBig.slowdown);
            small.push_back(mSmall.slowdown);
            auto p = paper.at(b);
            t.row({b, fmtX(mBig.slowdown), fmtX(mSmall.slowdown),
                   p.first, p.second});
        }
        t.row({"gmean", fmtX(geomean(big)), fmtX(geomean(small)), "", ""});
        t.print();
        std::printf("\nNote: Fig. 3(c) isolates queueing effects; the "
                    "paper's bars are normalized to the same monitored "
                    "system with an infinite queue.\n");
    }
    return 0;
}
