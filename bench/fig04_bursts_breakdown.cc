/**
 * @file
 * Reproduces Fig. 4 of the paper: (a) the monitors' execution-time
 * breakdown into stack updates and instruction handlers (clean-check
 * style vs redundant-update style); (b) the cumulative distribution of
 * distances between unfiltered events for MemLeak; (c) unfiltered burst
 * sizes for every monitor/benchmark pair.
 *
 * Paper reference points: instructions dominate the profile, but stack
 * updates consume up to ~17% of time in two of the five monitors; two
 * unfiltered events are typically separated by at most 16 filterable
 * events; bursts average 16 or fewer unfiltered events for the
 * majority of monitor/benchmark pairs.
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

int
main()
{
    header("Fig. 4(a): monitor execution-time breakdown "
           "(unaccelerated; handler instructions by class)");
    {
        TextTable t;
        t.header({"monitor", "stack updates", "instr: RU-style",
                  "instr: CC-style", "high-level"});
        for (const auto &mon : monitorNames()) {
            std::array<double, 4> acc{};
            const auto &benches = benchmarksFor(mon);
            for (const auto &b : benches) {
                SystemConfig cfg;
                cfg.accelerated = false;
                auto m = makeMonitor(mon);
                MonitoringSystem sys(cfg, profileFor(mon, b), m.get());
                sys.warmup(warmupInsts);
                sys.run(measureInsts);
                const auto &s = sys.monitorProcess()->stats();
                double tot = double(s.instructions);
                if (tot == 0)
                    continue;
                acc[0] += s.instrByClass[unsigned(
                              HandlerClass::StackUpdate)] / tot;
                acc[1] +=
                    s.instrByClass[unsigned(HandlerClass::Update)] / tot;
                acc[2] += s.instrByClass[unsigned(
                              HandlerClass::CheckOnly)] / tot;
                acc[3] += s.instrByClass[unsigned(
                              HandlerClass::HighLevel)] / tot;
            }
            for (auto &v : acc)
                v /= benches.size();
            t.row({mon, fmtPct(acc[0]), fmtPct(acc[1]), fmtPct(acc[2]),
                   fmtPct(acc[3])});
        }
        t.print();
        std::printf("\npaper: stack updates up to ~17%% for two of the "
                    "five monitors; instructions dominate.\n\n");
    }

    header("Fig. 4(b): CDF of distance between unfiltered events, "
           "MemLeak (paper: typically <= 16)");
    {
        TextTable t;
        std::vector<std::uint64_t> pts = {0, 1, 2, 4, 8, 16, 32, 64, 128};
        std::vector<std::string> hdr = {"bench"};
        for (auto p : pts)
            hdr.push_back("<=" + std::to_string(p));
        t.header(hdr);
        for (const auto &b : specBenchmarks()) {
            SystemConfig cfg;
            Measured m = measure(cfg, "MemLeak", specProfile(b));
            std::vector<std::string> row = {b};
            for (auto p : pts)
                row.push_back(
                    fmt("%.0f", m.fadeStats.unfDistance.cdfAt(p) * 100.0) +
                    "%");
            t.row(row);
        }
        t.print();
        std::printf("\n");
    }

    header("Fig. 4(c): average unfiltered burst size "
           "(<=16-distance rule; paper: <= 16 for most pairs)");
    {
        TextTable t;
        std::vector<std::string> hdr = {"monitor"};
        // Use the union of benchmark suites as columns.
        for (const auto &b : specBenchmarks())
            hdr.push_back(b);
        for (const auto &b : parallelBenchmarks())
            hdr.push_back(b);
        t.header(hdr);
        for (const auto &mon : monitorNames()) {
            std::vector<std::string> row = {mon};
            const auto &benches = benchmarksFor(mon);
            for (const auto &b : specBenchmarks()) {
                bool used = std::find(benches.begin(), benches.end(),
                                      b) != benches.end();
                if (!used) {
                    row.push_back("-");
                    continue;
                }
                SystemConfig cfg;
                Measured m = measure(cfg, mon, specProfile(b));
                double avg =
                    m.fadeStats.unfBurst.total()
                        ? double(m.fadeStats.unfDistance.total()) /
                              m.fadeStats.unfBurst.total()
                        : 0.0;
                row.push_back(fmt("%.0f", avg));
            }
            for (const auto &b : parallelBenchmarks()) {
                if (mon != "AtomCheck") {
                    row.push_back("-");
                    continue;
                }
                SystemConfig cfg;
                Measured m = measure(cfg, mon, parallelProfile(b));
                double avg =
                    m.fadeStats.unfBurst.total()
                        ? double(m.fadeStats.unfDistance.total()) /
                              m.fadeStats.unfBurst.total()
                        : 0.0;
                row.push_back(fmt("%.0f", avg));
            }
            t.row(row);
        }
        t.print();
        std::printf("\n(avg burst = software-bound events / bursts; "
                    "AtomCheck's partial filtering sends every event to "
                    "software, giving its very large bursts, matching "
                    "the paper's tallest bars.)\n");
    }
    return 0;
}
