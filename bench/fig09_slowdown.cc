/**
 * @file
 * Reproduces Fig. 9 of the paper: monitoring slowdown of FADE versus
 * the unaccelerated system, on a single dual-threaded 4-way OoO core,
 * normalized to the unmonitored system.
 *
 * Paper reference points: unaccelerated averages 4.1x across monitors
 * (memory tracking 2.5x, propagation tracking 5.8x); FADE averages 1.5x
 * (1.3x / 1.6x). AddrCheck: unaccelerated 1.2-2.9x (avg 1.6x), FADE
 * 1.2x. MemLeak: unaccelerated 3.4-11.5x (avg 7.4x), FADE 1.8x with
 * astar 2.2x and gcc 3.3x. AtomCheck: unaccelerated 3.9x avg (8.2x
 * max), FADE 1.6x (1.9x max). MemCheck FADE 1.4x; TaintCheck 1.6x.
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

int
main()
{
    double allUnacc = 0, allFade = 0;
    double memUnacc = 0, memFade = 0, propUnacc = 0, propFade = 0;
    unsigned memN = 0, propN = 0;

    for (const auto &mon : paperMonitorNames()) {
        header(("Fig. 9: " + mon +
                " slowdown per benchmark (single-core dual-threaded, "
                "4-way OoO)")
                   .c_str());
        TextTable t;
        t.header({"bench", "unaccelerated", "FADE", "filtering"});
        std::vector<double> unacc, fadeX;
        const auto &benches = benchmarksFor(mon);
        for (const auto &b : benches) {
            BenchProfile prof = profileFor(mon, b);
            SystemConfig cfgU;
            cfgU.accelerated = false;
            Measured mu = measure(cfgU, mon, prof);
            SystemConfig cfgF;
            Measured mf = measure(cfgF, mon, prof);
            unacc.push_back(mu.slowdown);
            fadeX.push_back(mf.slowdown);
            t.row({b, fmtX(mu.slowdown), fmtX(mf.slowdown),
                   fmtPct(mf.filtering)});
        }
        double gu = geomean(unacc), gf = geomean(fadeX);
        t.row({"gmean", fmtX(gu), fmtX(gf), ""});
        t.print();

        const std::map<std::string, std::pair<const char *, const char *>>
            paper = {
                {"AddrCheck", {"1.6x (1.2-2.9x)", "1.2x"}},
                {"AtomCheck", {"3.9x (max 8.2x)", "1.6x (max 1.9x)"}},
                {"MemCheck", {"(propagation ~5.8x)", "1.4x"}},
                {"MemLeak", {"7.4x (3.4-11.5x)", "1.8x"}},
                {"TaintCheck", {"(propagation ~5.8x)", "1.6x"}},
            };
        std::printf("paper: unaccelerated %s, FADE %s\n\n",
                    paper.at(mon).first, paper.at(mon).second);

        allUnacc += gu;
        allFade += gf;
        bool memTrk = mon == "AddrCheck" || mon == "AtomCheck";
        if (memTrk) {
            memUnacc += gu;
            memFade += gf;
            ++memN;
        } else {
            propUnacc += gu;
            propFade += gf;
            ++propN;
        }
    }

    header("Fig. 9 summary");
    TextTable t;
    t.header({"class", "unaccelerated", "FADE", "paper unacc",
              "paper FADE"});
    t.row({"memory tracking", fmtX(memUnacc / memN), fmtX(memFade / memN),
           "2.5x", "1.3x"});
    t.row({"propagation tracking", fmtX(propUnacc / propN),
           fmtX(propFade / propN), "5.8x", "1.6x"});
    t.row({"all monitors", fmtX(allUnacc / 5), fmtX(allFade / 5), "4.1x",
           "1.5x"});
    t.print();
    return 0;
}
