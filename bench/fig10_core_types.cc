/**
 * @file
 * Reproduces Fig. 10 of the paper: monitoring performance of the
 * single-core (dual-threaded) system across core microarchitectures —
 * in-order 1-way, lean OoO 2-way/48-ROB, aggressive OoO 4-way/96-ROB —
 * for the unaccelerated and FADE-enabled systems, averaged across
 * benchmarks.
 *
 * Paper reference points: unaccelerated monitoring loses 7-51% on
 * simpler cores relative to 4-way OoO (handlers are cache-friendly,
 * ILP-rich code that wide cores execute up to 3x faster); FADE-enabled
 * performance is almost insensitive to the core type (e.g., MemCheck
 * 1.2x on in-order vs 1.4x on 4-way OoO).
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

int
main()
{
    header("Fig. 10: slowdown by core type "
           "(single-core dual-threaded; gmean across benchmarks)");

    std::vector<std::pair<std::string, CoreParams>> cores = {
        {"4-way OoO", aggressiveOooParams()},
        {"2-way OoO", leanOooParams()},
        {"in-order", inOrderParams()},
    };

    TextTable t;
    t.header({"monitor", "system", "4-way OoO", "2-way OoO", "in-order"});
    for (const auto &mon : monitorNames()) {
        for (bool accel : {false, true}) {
            std::vector<std::string> row = {
                mon, accel ? "FADE" : "unaccelerated"};
            const auto &benches = benchmarksFor(mon);
            for (const auto &[cname, cparams] : cores) {
                std::vector<double> xs;
                for (const auto &b : benches) {
                    SystemConfig cfg;
                    cfg.core = cparams;
                    cfg.accelerated = accel;
                    Measured m =
                        measure(cfg, mon, profileFor(mon, b),
                                measureInsts / 2);
                    xs.push_back(m.slowdown);
                }
                row.push_back(fmtX(geomean(xs)));
            }
            t.row(row);
        }
    }
    t.print();
    std::printf(
        "\npaper: unaccelerated performance drops 7-51%% on simpler\n"
        "cores (event handlers run up to 3x faster on the 4-way OoO);\n"
        "FADE-enabled systems are nearly core-type insensitive, e.g.\n"
        "MemCheck 1.2x in-order vs 1.4x 4-way OoO.\n");
    return 0;
}
