/**
 * @file
 * Reproduces Fig. 11 of the paper:
 *  (a) single-core dual-threaded vs two-core FADE-enabled systems
 *      (paper: two-core wins by 15% on average, 28% max);
 *  (b) two-core utilization breakdown — app core idle (event queue
 *      backpressure), monitor core idle (everything filtered), or both
 *      utilized (paper: one core idle 48-97% of the time, both busy
 *      only 22% on average);
 *  (c) Non-Blocking vs baseline (blocking) FADE (paper: ~2x for
 *      AtomCheck/MemLeak/TaintCheck whose filtering ratio is <87%, and
 *      ~1.1x for AddrCheck/MemCheck at >98%).
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

int
main()
{
    header("Fig. 11(a): single-core (dual-threaded) vs two-core, "
           "both FADE-enabled (gmean slowdown)");
    {
        TextTable t;
        t.header({"monitor", "single-core", "two-core", "two-core gain"});
        double gainAcc = 0, gainMax = 0;
        for (const auto &mon : paperMonitorNames()) {
            std::vector<double> sc, tc;
            for (const auto &b : benchmarksFor(mon)) {
                BenchProfile prof = profileFor(mon, b);
                SystemConfig cfgS;
                Measured ms = measure(cfgS, mon, prof);
                SystemConfig cfgT;
                cfgT.twoCore = true;
                Measured mt = measure(cfgT, mon, prof);
                sc.push_back(ms.slowdown);
                tc.push_back(mt.slowdown);
                gainMax = std::max(gainMax,
                                   ms.slowdown / mt.slowdown - 1.0);
            }
            double gs = geomean(sc), gt = geomean(tc);
            gainAcc += gs / gt - 1.0;
            t.row({mon, fmtX(gs), fmtX(gt), fmtPct(gs / gt - 1.0)});
        }
        t.print();
        std::printf("\naverage two-core gain: %.0f%% | max per-pair gain:"
                    " %.0f%% (paper: 15%% avg, 28%% max)\n\n",
                    gainAcc / 5 * 100.0, gainMax * 100.0);
    }

    header("Fig. 11(b): two-core utilization breakdown "
           "(paper: both cores busy only ~22% on average)");
    {
        TextTable t;
        t.header({"monitor", "app core idle (EQ full)",
                  "monitor core idle", "both utilized"});
        double bothAvg = 0;
        for (const auto &mon : paperMonitorNames()) {
            double appIdle = 0, monIdle = 0, both = 0;
            const auto &benches = benchmarksFor(mon);
            for (const auto &b : benches) {
                SystemConfig cfg;
                cfg.twoCore = true;
                auto m = makeMonitor(mon);
                MonitoringSystem sys(cfg, profileFor(mon, b), m.get());
                sys.warmup(warmupInsts);
                RunResult r = sys.run(measureInsts);
                double ai = double(r.appStallCycles) / r.cycles;
                double mi = double(r.monIdleCycles) / r.cycles;
                if (ai + mi > 1.0) {
                    double s = ai + mi;
                    ai /= s;
                    mi /= s;
                }
                appIdle += ai;
                monIdle += mi;
                both += std::max(0.0, 1.0 - ai - mi);
            }
            unsigned n = unsigned(benches.size());
            bothAvg += both / n;
            t.row({mon, fmtPct(appIdle / n), fmtPct(monIdle / n),
                   fmtPct(both / n)});
        }
        t.print();
        std::printf("\naverage both-utilized: %.0f%% (paper: 22%%)\n\n",
                    bothAvg / 5 * 100.0);
    }

    header("Fig. 11(c): Non-Blocking vs baseline (blocking) FADE "
           "(gmean slowdown)");
    {
        TextTable t;
        t.header({"monitor", "blocking", "non-blocking", "benefit",
                  "paper benefit"});
        const std::map<std::string, const char *> paper = {
            {"AddrCheck", "~1.1x"}, {"AtomCheck", "~2x"},
            {"MemCheck", "~1.1x"},  {"MemLeak", "~2x"},
            {"TaintCheck", "~2x"},
        };
        for (const auto &mon : paperMonitorNames()) {
            std::vector<double> blk, nbk;
            for (const auto &b : benchmarksFor(mon)) {
                BenchProfile prof = profileFor(mon, b);
                SystemConfig cfgB;
                cfgB.fade.nonBlocking = false;
                Measured mb = measure(cfgB, mon, prof);
                SystemConfig cfgN;
                Measured mn = measure(cfgN, mon, prof);
                blk.push_back(mb.slowdown);
                nbk.push_back(mn.slowdown);
            }
            double gb = geomean(blk), gn = geomean(nbk);
            t.row({mon, fmtX(gb), fmtX(gn), fmtX(gb / gn),
                   paper.at(mon)});
        }
        t.print();
    }
    return 0;
}
