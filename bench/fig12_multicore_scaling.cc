/**
 * @file
 * Multi-core scaling study (beyond the paper's per-core evaluation;
 * Section 7 argues FADE replicates across a CMP). Sweeps a sharded
 * system over N ∈ {1, 2, 4, 8} {core, FADE, MD cache} shards behind a
 * shared L2, running a multiprogrammed SPEC mix with MemLeak, and
 * reports per-shard and aggregate statistics plus each shard's slowdown
 * against its unmonitored single-core baseline. The N=1 row doubles as
 * a regression check: it must match the legacy single-core system.
 */

#include "bench/common.hh"
#include "system/multicore.hh"

using namespace fade;
using namespace fade::bench;

int
main()
{
    const std::vector<BenchProfile> mix = multiprogramWorkloads("hmmer");
    const char *monitor = "MemLeak";

    // Legacy single-core reference for the N=1 equivalence check.
    Measured legacy = measure(SystemConfig{}, monitor, mix[0]);

    double ipc1 = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        header(("Fig. 12: sharded multi-core scaling, N = " +
                std::to_string(n) + " (" + monitor + ", SPEC mix)")
                   .c_str());

        MultiCoreConfig cfg;
        cfg.numShards = n;
        cfg.monitor = monitor;
        cfg.workloads = mix;
        MultiCoreSystem sys(cfg);
        sys.warmup(warmupInsts);
        MultiCoreResult r = sys.run(measureInsts);

        TextTable t;
        t.header({"shard", "workload", "IPC", "slowdown", "filtering",
                  "EQ p95", "cycles"});
        for (const ShardResult &s : r.shards) {
            BenchProfile prof = shardWorkload(cfg.workloads, s.shard);
            double base =
                double(baselineCycles(prof, cfg.shard.core));
            t.row({std::to_string(s.shard), s.workload,
                   fmt("%.2f", s.run.appIpc),
                   fmtX(double(s.run.cycles) / base),
                   fmtPct(s.filteringRatio),
                   std::to_string(s.eqOccupancy.percentile(0.95)),
                   std::to_string(s.run.cycles)});
        }
        t.print();

        std::printf("\naggregate: IPC %.2f | makespan %llu cycles | "
                    "events %llu | filtering %.1f%% | "
                    "cross-shard events %llu (must be 0)\n",
                    r.aggregateIpc,
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.totalEvents,
                    r.filteringRatio * 100.0,
                    (unsigned long long)r.fade.crossShardEvents);

        if (n == 1) {
            ipc1 = r.aggregateIpc;
            bool match = r.cycles == legacy.run.cycles &&
                         r.totalInstructions ==
                             legacy.run.appInstructions &&
                         r.totalEvents == legacy.run.monitoredEvents;
            std::printf("N=1 vs legacy single-core System: %s "
                        "(cycles %llu vs %llu)\n",
                        match ? "MATCH" : "MISMATCH",
                        (unsigned long long)r.cycles,
                        (unsigned long long)legacy.run.cycles);
            if (!match)
                return 1;
        } else {
            std::printf("throughput scaling vs N=1: %.2fx over %ux "
                        "cores\n",
                        r.aggregateIpc / ipc1, n);
        }
        std::printf("\n");
    }
    return 0;
}
