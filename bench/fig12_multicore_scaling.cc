/**
 * @file
 * Multi-core scaling study (beyond the paper's per-core evaluation;
 * Section 7 argues FADE replicates across a CMP). Two sweeps:
 *
 *  - Flat scaling: N ∈ {1, 2, 4, 8} {core, FADE, MD cache} shards
 *    behind one shared L2, running a multiprogrammed SPEC mix with
 *    MemLeak. Each N runs under every scheduler policy × intra-shard
 *    engine combination — {Lockstep, ParallelBatched} × {per-cycle,
 *    batched, run-grain} — and the harness hard-checks that per-cycle
 *    and batched produce bit-identical simulated statistics and that
 *    the run-grain engine is policy-invariant bit for bit, before
 *    reporting wall clock. Run-grain is NOT compared against per-cycle
 *    here: its timing model slices the warmup/measure windows at
 *    different stream positions, and MemLeak's handler-prepare
 *    feedback diverges functionally by design (the matched-window
 *    cross-engine equality lives in tests/test_pipeline.cc and
 *    test_tracefile.cc; docs/ARCHITECTURE.md documents the divergence
 *    model). The N=1 row doubles as a regression check: it must match
 *    the legacy single-core system.
 *
 *  - Topology scaling: the same mix swept over NUMA-style clustered
 *    shapes (system/topology.hh) — clusters ∈ {1, 2, 4} shared-L2
 *    slices behind the home-node directory × fadesPerShard ∈ {1, 2}
 *    filter units — with a per-shape determinism hard-check:
 *    Lockstep/per-cycle vs ParallelBatched/batched, and
 *    Lockstep/run-grain vs ParallelBatched/run-grain, must each agree
 *    bit for bit.
 *
 * One machine-readable JSON line is emitted per (N, policy, engine,
 * clusters, fadesPerShard) so BENCH_*.json trajectories can track
 * events/sec across PRs (docs/BENCHMARKS.md documents the fields).
 * `--smoke` runs a reduced 2×2-cluster matrix with short slices — the
 * Release CI job uses it to exercise the cluster path every build.
 */

#include <cstring>

#include "bench/common.hh"
#include "system/multicore.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

struct TimedRun
{
    MultiCoreResult result;
    double wallSeconds = 0.0;
    /** Full simulated-state fingerprint (resultFingerprint). */
    std::vector<std::uint64_t> fingerprint;
};

std::uint64_t gWarm = warmupInsts;
std::uint64_t gMeasure = measureInsts;

MultiCoreConfig
baseConfig(const std::vector<BenchProfile> &mix, unsigned n,
           SchedulerPolicy pol, Engine eng, unsigned clusters = 1,
           unsigned fadesPerShard = 1)
{
    MultiCoreConfig cfg;
    cfg.numShards = n;
    cfg.monitor = "MemLeak";
    cfg.workloads = mix;
    cfg.scheduler.policy = pol;
    cfg.engine = eng;
    cfg.topology.clusters = clusters;
    cfg.topology.fadesPerShard = fadesPerShard;
    return cfg;
}

TimedRun
runConfig(const MultiCoreConfig &cfg)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(gWarm);
    // Time only the measured run, via the scheduler's own accounting:
    // warmup ends in a sequential per-shard drain that would dilute
    // the policy comparison.
    sys.scheduler().resetStats();
    TimedRun t;
    t.result = sys.run(gMeasure);
    t.wallSeconds = sys.scheduler().stats().wallSeconds;
    t.fingerprint = resultFingerprint(sys, t.result);
    return t;
}

constexpr Engine kEngines[] = {Engine::PerCycle, Engine::Batched,
                               Engine::RunGrain};

const char *
policyName(SchedulerPolicy p)
{
    return p == SchedulerPolicy::Lockstep ? "lockstep" : "parallel";
}

void
jsonLine(unsigned n, SchedulerPolicy pol, Engine eng, unsigned clusters,
         unsigned fadesPerShard, const TimedRun &t)
{
    const MultiCoreResult &r = t.result;
    std::printf("{\"bench\":\"fig12_multicore_scaling\",\"n\":%u,"
                "\"policy\":\"%s\",\"engine\":\"%s\","
                "\"clusters\":%u,\"fades_per_shard\":%u,"
                "\"instructions\":%llu,\"events\":%llu,"
                "\"makespan_cycles\":%llu,\"aggregate_ipc\":%.4f,"
                "\"l2_local\":%llu,\"l2_remote\":%llu,"
                "\"wall_s\":%.6f,\"events_per_s\":%.0f}\n",
                n, policyName(pol), engineName(eng), clusters,
                fadesPerShard,
                (unsigned long long)r.totalInstructions,
                (unsigned long long)r.totalEvents,
                (unsigned long long)r.cycles, r.aggregateIpc,
                (unsigned long long)r.l2LocalAccesses,
                (unsigned long long)r.l2RemoteAccesses,
                t.wallSeconds, r.totalEvents / t.wallSeconds);
}

/** Flat policy × engine sweep at one shard count. Returns false on a
 *  divergence (already reported). */
bool
flatSweep(const std::vector<BenchProfile> &mix, unsigned n,
          const Measured &legacy, double *ipc1)
{
    const CoreParams shardCore = MultiCoreConfig{}.shard.core;
    header(("Fig. 12: sharded multi-core scaling, N = " +
            std::to_string(n) + " (MemLeak, SPEC mix)")
               .c_str());

    // All six policy × engine combinations; index [engine][policy].
    TimedRun runs[3][2];
    for (int e = 0; e < 3; ++e)
        for (auto pol : {SchedulerPolicy::Lockstep,
                         SchedulerPolicy::ParallelBatched})
            runs[e][pol == SchedulerPolicy::ParallelBatched] =
                runConfig(baseConfig(mix, n, pol, kEngines[e]));

    // Per-cycle and batched are bit-identical everywhere; the
    // run-grain timing model slices windows differently (so it is not
    // compared against them here) but must itself be policy-invariant
    // bit for bit.
    const TimedRun &reference = runs[0][0];
    for (int e = 0; e < 3; ++e) {
        if (kEngines[e] == Engine::RunGrain)
            continue;
        for (int p = 0; p < 2; ++p) {
            if (runs[e][p].fingerprint != reference.fingerprint) {
                std::printf("DIVERGENCE at N=%u: engine=%s policy=%s "
                            "does not match the per-cycle lockstep "
                            "reference\n",
                            n, engineName(kEngines[e]),
                            p ? "parallel" : "lockstep");
                return false;
            }
        }
    }
    if (runs[2][0].fingerprint != runs[2][1].fingerprint) {
        std::printf("DIVERGENCE at N=%u: run-grain engine is not "
                    "policy-invariant\n", n);
        return false;
    }

    const MultiCoreResult &r = reference.result;
    TextTable t;
    t.header({"shard", "workload", "IPC", "slowdown", "filtering",
              "EQ p95", "cycles"});
    for (const ShardResult &s : r.shards) {
        BenchProfile prof = shardWorkload(mix, s.shard);
        double base = double(baselineCycles(prof, shardCore));
        t.row({std::to_string(s.shard), s.workload,
               fmt("%.2f", s.run.appIpc),
               fmtX(double(s.run.cycles) / base),
               fmtPct(s.filteringRatio),
               std::to_string(s.eqOccupancy.percentile(0.95)),
               std::to_string(s.run.cycles)});
    }
    t.print();

    std::printf("\naggregate: IPC %.2f | makespan %llu cycles | "
                "events %llu | filtering %.1f%% | "
                "cross-shard events %llu (must be 0)\n",
                r.aggregateIpc, (unsigned long long)r.cycles,
                (unsigned long long)r.totalEvents,
                r.filteringRatio * 100.0,
                (unsigned long long)r.fade.crossShardEvents);
    std::printf("wall-clock (percycle/batched bit-identical, rungrain "
                "policy-invariant):\n");
    for (int e = 0; e < 3; ++e) {
        const TimedRun &lock = runs[e][0];
        const TimedRun &par = runs[e][1];
        std::printf("  engine %-8s lockstep %.3fs | parallel %.3fs "
                    "| policy speedup %.2fx\n",
                    engineName(kEngines[e]), lock.wallSeconds,
                    par.wallSeconds,
                    lock.wallSeconds / par.wallSeconds);
    }
    std::printf("  batched/percycle engine speedup (lockstep): %.2fx\n",
                runs[0][0].wallSeconds / runs[1][0].wallSeconds);
    std::printf("  rungrain/percycle engine speedup (lockstep): %.2fx\n",
                runs[0][0].wallSeconds / runs[2][0].wallSeconds);
    for (int e = 0; e < 3; ++e)
        for (auto pol : {SchedulerPolicy::Lockstep,
                         SchedulerPolicy::ParallelBatched})
            jsonLine(n, pol, kEngines[e], 1, 1,
                     runs[e][pol == SchedulerPolicy::ParallelBatched]);

    if (n == 1) {
        *ipc1 = r.aggregateIpc;
        bool match = r.cycles == legacy.run.cycles &&
                     r.totalInstructions == legacy.run.appInstructions &&
                     r.totalEvents == legacy.run.monitoredEvents;
        std::printf("N=1 vs legacy single-core System: %s "
                    "(cycles %llu vs %llu)\n",
                    match ? "MATCH" : "MISMATCH",
                    (unsigned long long)r.cycles,
                    (unsigned long long)legacy.run.cycles);
        if (!match)
            return false;
    } else {
        std::printf("throughput scaling vs N=1: %.2fx over %ux cores\n",
                    r.aggregateIpc / *ipc1, n);
    }
    std::printf("\n");
    return true;
}

/**
 * One clustered shape: run the two extreme policy/engine corners,
 * hard-check they agree bit for bit (the cross-topology determinism
 * gate), emit both JSON lines, and return the reference for the table.
 */
bool
topologyPoint(const std::vector<BenchProfile> &mix, unsigned n,
              unsigned clusters, unsigned fades, TimedRun *out)
{
    TimedRun ref = runConfig(baseConfig(mix, n,
                                        SchedulerPolicy::Lockstep,
                                        Engine::PerCycle, clusters,
                                        fades));
    TimedRun cross = runConfig(
        baseConfig(mix, n, SchedulerPolicy::ParallelBatched,
                   Engine::Batched, clusters, fades));
    if (cross.fingerprint != ref.fingerprint) {
        std::printf("DIVERGENCE at N=%u clusters=%u fades=%u: "
                    "parallel/batched does not match "
                    "lockstep/per-cycle\n",
                    n, clusters, fades);
        return false;
    }
    TimedRun grainLock = runConfig(
        baseConfig(mix, n, SchedulerPolicy::Lockstep, Engine::RunGrain,
                   clusters, fades));
    TimedRun grain = runConfig(
        baseConfig(mix, n, SchedulerPolicy::ParallelBatched,
                   Engine::RunGrain, clusters, fades));
    if (grain.fingerprint != grainLock.fingerprint) {
        std::printf("DIVERGENCE at N=%u clusters=%u fades=%u: "
                    "run-grain is not policy-invariant\n",
                    n, clusters, fades);
        return false;
    }
    jsonLine(n, SchedulerPolicy::Lockstep, Engine::PerCycle, clusters,
             fades, ref);
    jsonLine(n, SchedulerPolicy::ParallelBatched, Engine::Batched,
             clusters, fades, cross);
    jsonLine(n, SchedulerPolicy::ParallelBatched, Engine::RunGrain,
             clusters, fades, grain);
    *out = std::move(ref);
    return true;
}

bool
topologySweep(const std::vector<BenchProfile> &mix)
{
    header("Fig. 12 extension: clustered topologies "
           "(clusters x fadesPerShard, MemLeak, SPEC mix)");
    TextTable t;
    t.header({"N", "clusters", "fades", "makespan", "agg IPC",
              "remote%", "filtering"});
    for (unsigned n : {2u, 4u, 8u}) {
        for (unsigned clusters : {1u, 2u, 4u}) {
            if (clusters > n || n % clusters != 0)
                continue;
            for (unsigned fades : {1u, 2u}) {
                if (clusters == 1 && fades == 1)
                    continue; // the flat sweep above covers it
                TimedRun run;
                if (!topologyPoint(mix, n, clusters, fades, &run))
                    return false;
                const MultiCoreResult &r = run.result;
                double routed = double(r.l2LocalAccesses +
                                       r.l2RemoteAccesses);
                t.row({std::to_string(n), std::to_string(clusters),
                       std::to_string(fades),
                       std::to_string(r.cycles),
                       fmt("%.2f", r.aggregateIpc),
                       fmtPct(routed ? r.l2RemoteAccesses / routed
                                     : 0.0),
                       fmtPct(r.filteringRatio)});
            }
        }
    }
    t.print();
    std::printf("\nevery shape bit-identical across "
                "lockstep/per-cycle vs parallel/batched, and "
                "policy-invariant under run-grain\n\n");
    return true;
}

/** CI smoke: a short 2x2-cluster run exercising directory routing,
 *  multi-FADE steering, and all four policy x engine combinations. */
int
smoke()
{
    gWarm = 8000;
    gMeasure = 16000;
    const std::vector<BenchProfile> mix = multiprogramWorkloads("hmmer");
    header("fig12 --smoke: 2x2 clustered topology, 2 FADEs/shard");
    TimedRun ref, grainRef;
    bool first = true, grainFirst = true;
    for (Engine eng : kEngines) {
        for (auto pol : {SchedulerPolicy::Lockstep,
                         SchedulerPolicy::ParallelBatched}) {
            MultiCoreConfig cfg = baseConfig(mix, 0, pol, eng, 2, 2);
            cfg.topology.shardsPerCluster = 2; // 2 clusters x 2 shards
            TimedRun t = runConfig(cfg);
            jsonLine(4, pol, eng, 2, 2, t);
            if (eng == Engine::RunGrain) {
                // Run-grain slices windows differently from per-cycle
                // (not compared), but must be policy-invariant bitwise.
                if (grainFirst) {
                    grainRef = std::move(t);
                    grainFirst = false;
                } else if (t.fingerprint != grainRef.fingerprint) {
                    std::printf("SMOKE DIVERGENCE: run-grain not "
                                "policy-invariant\n");
                    return 1;
                }
                continue;
            }
            if (first) {
                ref = std::move(t);
                first = false;
                continue;
            }
            if (t.fingerprint != ref.fingerprint) {
                std::printf("SMOKE DIVERGENCE: policy=%s engine=%s\n",
                            policyName(pol), engineName(eng));
                return 1;
            }
        }
    }
    const MultiCoreResult &r = ref.result;
    if (r.fade.crossShardEvents != 0 || r.l2RemoteAccesses == 0) {
        std::printf("SMOKE FAILURE: cross-shard events %llu, "
                    "remote accesses %llu\n",
                    (unsigned long long)r.fade.crossShardEvents,
                    (unsigned long long)r.l2RemoteAccesses);
        return 1;
    }
    std::printf("smoke OK: 4 shards, 2 clusters, remote share %.1f%%, "
                "all 6 combinations checked (percycle/batched bitwise, "
                "rungrain policy-invariant)\n",
                100.0 * r.l2RemoteAccesses /
                    double(r.l2LocalAccesses + r.l2RemoteAccesses));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return smoke();

    const std::vector<BenchProfile> mix = multiprogramWorkloads("hmmer");
    // Slowdowns normalize against a baseline simulated with the same
    // core the shards run (the MultiCoreConfig default).
    Measured legacy = measure(SystemConfig{}, "MemLeak", mix[0]);

    double ipc1 = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u})
        if (!flatSweep(mix, n, legacy, &ipc1))
            return 1;
    if (!topologySweep(mix))
        return 1;
    return 0;
}
