/**
 * @file
 * Multi-core scaling study (beyond the paper's per-core evaluation;
 * Section 7 argues FADE replicates across a CMP). Sweeps a sharded
 * system over N ∈ {1, 2, 4, 8} {core, FADE, MD cache} shards behind a
 * shared L2, running a multiprogrammed SPEC mix with MemLeak, and
 * reports per-shard and aggregate statistics plus each shard's slowdown
 * against its unmonitored single-core baseline.
 *
 * Each N runs under every scheduler policy × intra-shard engine
 * combination — {Lockstep, ParallelBatched} × {per-cycle, batched} —
 * and the harness hard-checks that all four produce bit-identical
 * simulated statistics before reporting wall clock: the parallel
 * policy's speedup is host-dependent (expect > 1.5x at N = 8 on a
 * multi-core host, ~1x on a single-CPU one), the batched engine's
 * events/sec gain is workload-dependent. One machine-readable JSON
 * line is emitted per (N, policy, engine) so BENCH_*.json trajectories
 * can track events/sec across PRs (docs/BENCHMARKS.md).
 * The N=1 row doubles as a regression check: it must match the legacy
 * single-core system.
 */

#include "bench/common.hh"
#include "system/multicore.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

struct TimedRun
{
    MultiCoreResult result;
    double wallSeconds = 0.0;
    /** Full simulated-state fingerprint (resultFingerprint). */
    std::vector<std::uint64_t> fingerprint;
};

TimedRun
runConfig(const MultiCoreConfig &cfg)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(warmupInsts);
    // Time only the measured run, via the scheduler's own accounting:
    // warmup ends in a sequential per-shard drain that would dilute
    // the policy comparison.
    sys.scheduler().resetStats();
    TimedRun t;
    t.result = sys.run(measureInsts);
    t.wallSeconds = sys.scheduler().stats().wallSeconds;
    t.fingerprint = resultFingerprint(sys, t.result);
    return t;
}

const char *
policyName(SchedulerPolicy p)
{
    return p == SchedulerPolicy::Lockstep ? "lockstep" : "parallel";
}

const char *
engineName(Engine e)
{
    return e == Engine::PerCycle ? "percycle" : "batched";
}

void
jsonLine(unsigned n, SchedulerPolicy pol, Engine eng, const TimedRun &t)
{
    const MultiCoreResult &r = t.result;
    std::printf("{\"bench\":\"fig12_multicore_scaling\",\"n\":%u,"
                "\"policy\":\"%s\",\"engine\":\"%s\","
                "\"instructions\":%llu,\"events\":%llu,"
                "\"makespan_cycles\":%llu,\"aggregate_ipc\":%.4f,"
                "\"wall_s\":%.6f,\"events_per_s\":%.0f}\n",
                n, policyName(pol), engineName(eng),
                (unsigned long long)r.totalInstructions,
                (unsigned long long)r.totalEvents,
                (unsigned long long)r.cycles, r.aggregateIpc,
                t.wallSeconds, r.totalEvents / t.wallSeconds);
}

} // namespace

int
main()
{
    const std::vector<BenchProfile> mix = multiprogramWorkloads("hmmer");
    const char *monitor = "MemLeak";
    // Slowdowns normalize against a baseline simulated with the same
    // core the shards run (the MultiCoreConfig default).
    const CoreParams shardCore = MultiCoreConfig{}.shard.core;

    // Legacy single-core reference for the N=1 equivalence check.
    Measured legacy = measure(SystemConfig{}, monitor, mix[0]);

    double ipc1 = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        header(("Fig. 12: sharded multi-core scaling, N = " +
                std::to_string(n) + " (" + monitor + ", SPEC mix)")
                   .c_str());

        // All four policy × engine combinations; index [engine][policy].
        TimedRun runs[2][2];
        for (Engine eng : {Engine::PerCycle, Engine::Batched}) {
            for (auto pol : {SchedulerPolicy::Lockstep,
                             SchedulerPolicy::ParallelBatched}) {
                MultiCoreConfig cfg;
                cfg.numShards = n;
                cfg.monitor = monitor;
                cfg.workloads = mix;
                cfg.scheduler.policy = pol;
                cfg.engine = eng;
                runs[eng == Engine::Batched]
                    [pol == SchedulerPolicy::ParallelBatched] =
                        runConfig(cfg);
            }
        }

        const TimedRun &reference = runs[0][0];
        for (int e = 0; e < 2; ++e) {
            for (int p = 0; p < 2; ++p) {
                if (runs[e][p].fingerprint != reference.fingerprint) {
                    std::printf("DIVERGENCE at N=%u: engine=%s "
                                "policy=%s does not match the "
                                "per-cycle lockstep reference\n",
                                n, e ? "batched" : "percycle",
                                p ? "parallel" : "lockstep");
                    return 1;
                }
            }
        }

        const MultiCoreResult &r = reference.result;
        TextTable t;
        t.header({"shard", "workload", "IPC", "slowdown", "filtering",
                  "EQ p95", "cycles"});
        for (const ShardResult &s : r.shards) {
            BenchProfile prof = shardWorkload(mix, s.shard);
            double base = double(baselineCycles(prof, shardCore));
            t.row({std::to_string(s.shard), s.workload,
                   fmt("%.2f", s.run.appIpc),
                   fmtX(double(s.run.cycles) / base),
                   fmtPct(s.filteringRatio),
                   std::to_string(s.eqOccupancy.percentile(0.95)),
                   std::to_string(s.run.cycles)});
        }
        t.print();

        std::printf("\naggregate: IPC %.2f | makespan %llu cycles | "
                    "events %llu | filtering %.1f%% | "
                    "cross-shard events %llu (must be 0)\n",
                    r.aggregateIpc,
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.totalEvents,
                    r.filteringRatio * 100.0,
                    (unsigned long long)r.fade.crossShardEvents);
        std::printf("wall-clock, all stats bit-identical across the "
                    "4 combinations:\n");
        for (Engine eng : {Engine::PerCycle, Engine::Batched}) {
            const TimedRun &lock = runs[eng == Engine::Batched][0];
            const TimedRun &par = runs[eng == Engine::Batched][1];
            std::printf("  engine %-8s lockstep %.3fs | parallel %.3fs "
                        "| policy speedup %.2fx\n",
                        engineName(eng), lock.wallSeconds,
                        par.wallSeconds,
                        lock.wallSeconds / par.wallSeconds);
        }
        std::printf("  batched/percycle engine speedup (lockstep): "
                    "%.2fx\n",
                    runs[0][0].wallSeconds / runs[1][0].wallSeconds);
        for (Engine eng : {Engine::PerCycle, Engine::Batched})
            for (auto pol : {SchedulerPolicy::Lockstep,
                             SchedulerPolicy::ParallelBatched})
                jsonLine(n, pol, eng,
                         runs[eng == Engine::Batched]
                             [pol == SchedulerPolicy::ParallelBatched]);

        if (n == 1) {
            ipc1 = r.aggregateIpc;
            bool match = r.cycles == legacy.run.cycles &&
                         r.totalInstructions ==
                             legacy.run.appInstructions &&
                         r.totalEvents == legacy.run.monitoredEvents;
            std::printf("N=1 vs legacy single-core System: %s "
                        "(cycles %llu vs %llu)\n",
                        match ? "MATCH" : "MISMATCH",
                        (unsigned long long)r.cycles,
                        (unsigned long long)legacy.run.cycles);
            if (!match)
                return 1;
        } else {
            std::printf("throughput scaling vs N=1: %.2fx over %ux "
                        "cores\n",
                        r.aggregateIpc / ipc1, n);
        }
        std::printf("\n");
    }
    return 0;
}
