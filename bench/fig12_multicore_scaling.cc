/**
 * @file
 * Multi-core scaling study (beyond the paper's per-core evaluation;
 * Section 7 argues FADE replicates across a CMP). Sweeps a sharded
 * system over N ∈ {1, 2, 4, 8} {core, FADE, MD cache} shards behind a
 * shared L2, running a multiprogrammed SPEC mix with MemLeak, and
 * reports per-shard and aggregate statistics plus each shard's slowdown
 * against its unmonitored single-core baseline.
 *
 * Each N runs twice — once under the Lockstep scheduler policy, once
 * under ParallelBatched — and the harness hard-checks that every
 * simulated statistic matches bit for bit before reporting the
 * wall-clock speedup of the parallel policy (host-dependent: expect
 * > 1.5x at N = 8 on a multi-core host, ~1x on a single-CPU one).
 * The N=1 row doubles as a regression check: it must match the legacy
 * single-core system.
 */

#include "bench/common.hh"
#include "system/multicore.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

struct TimedRun
{
    MultiCoreResult result;
    double wallSeconds = 0.0;
    /** Full simulated-state fingerprint (resultFingerprint). */
    std::vector<std::uint64_t> fingerprint;
};

TimedRun
runPolicy(const MultiCoreConfig &cfg)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(warmupInsts);
    // Time only the measured run, via the scheduler's own accounting:
    // warmup ends in a sequential per-shard drain that would dilute
    // the policy comparison.
    sys.scheduler().resetStats();
    TimedRun t;
    t.result = sys.run(measureInsts);
    t.wallSeconds = sys.scheduler().stats().wallSeconds;
    t.fingerprint = resultFingerprint(sys, t.result);
    return t;
}

} // namespace

int
main()
{
    const std::vector<BenchProfile> mix = multiprogramWorkloads("hmmer");
    const char *monitor = "MemLeak";

    // Legacy single-core reference for the N=1 equivalence check.
    Measured legacy = measure(SystemConfig{}, monitor, mix[0]);

    double ipc1 = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        header(("Fig. 12: sharded multi-core scaling, N = " +
                std::to_string(n) + " (" + monitor + ", SPEC mix)")
                   .c_str());

        MultiCoreConfig cfg;
        cfg.numShards = n;
        cfg.monitor = monitor;
        cfg.workloads = mix;
        cfg.scheduler.policy = SchedulerPolicy::Lockstep;
        TimedRun lock = runPolicy(cfg);

        MultiCoreConfig pcfg = cfg;
        pcfg.scheduler.policy = SchedulerPolicy::ParallelBatched;
        TimedRun par = runPolicy(pcfg);

        if (lock.fingerprint != par.fingerprint) {
            std::printf("ParallelBatched DIVERGED from Lockstep at "
                        "N=%u\n", n);
            return 1;
        }

        const MultiCoreResult &r = lock.result;
        TextTable t;
        t.header({"shard", "workload", "IPC", "slowdown", "filtering",
                  "EQ p95", "cycles"});
        for (const ShardResult &s : r.shards) {
            BenchProfile prof = shardWorkload(cfg.workloads, s.shard);
            double base =
                double(baselineCycles(prof, cfg.shard.core));
            t.row({std::to_string(s.shard), s.workload,
                   fmt("%.2f", s.run.appIpc),
                   fmtX(double(s.run.cycles) / base),
                   fmtPct(s.filteringRatio),
                   std::to_string(s.eqOccupancy.percentile(0.95)),
                   std::to_string(s.run.cycles)});
        }
        t.print();

        std::printf("\naggregate: IPC %.2f | makespan %llu cycles | "
                    "events %llu | filtering %.1f%% | "
                    "cross-shard events %llu (must be 0)\n",
                    r.aggregateIpc,
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.totalEvents,
                    r.filteringRatio * 100.0,
                    (unsigned long long)r.fade.crossShardEvents);
        std::printf("wall-clock (measured run): lockstep %.3fs | "
                    "parallel %.3fs | speedup %.2fx "
                    "(stats bit-identical)\n",
                    lock.wallSeconds, par.wallSeconds,
                    lock.wallSeconds / par.wallSeconds);

        if (n == 1) {
            ipc1 = r.aggregateIpc;
            bool match = r.cycles == legacy.run.cycles &&
                         r.totalInstructions ==
                             legacy.run.appInstructions &&
                         r.totalEvents == legacy.run.monitoredEvents;
            std::printf("N=1 vs legacy single-core System: %s "
                        "(cycles %llu vs %llu)\n",
                        match ? "MATCH" : "MISMATCH",
                        (unsigned long long)r.cycles,
                        (unsigned long long)legacy.run.cycles);
            if (!match)
                return 1;
        } else {
            std::printf("throughput scaling vs N=1: %.2fx over %ux "
                        "cores\n",
                        r.aggregateIpc / ipc1, n);
        }
        std::printf("\n");
    }
    return 0;
}
