/**
 * @file
 * Google-benchmark microbenchmarks for the accelerator's primitive
 * operations: filter-logic evaluation (single-shot and multi-shot),
 * Non-Blocking MD update computation, FSQ search, shadow memory access,
 * MD cache access, and end-to-end FADE pipeline throughput.
 */

#include <benchmark/benchmark.h>

#include "core/fade.hh"
#include "monitor/factory.hh"
#include "sim/random.hh"

using namespace fade;

namespace
{

void
programMemLeakStyle(EventTable &t, InvRegFile &inv)
{
    auto m = makeMonitor("MemLeak");
    m->programFade(t, inv);
}

void
bmFilterSingleShot(benchmark::State &state)
{
    EventTable table;
    InvRegFile inv;
    programMemLeakStyle(table, inv);
    FilterLogic logic(inv);
    OperandMd md;
    std::uint64_t n = 0;
    for (auto _ : state) {
        md.s1 = std::uint8_t(n & 1);
        FilterOutcome out = logic.evaluate(table, evLoad, md);
        benchmark::DoNotOptimize(out.filtered);
        ++n;
    }
}
BENCHMARK(bmFilterSingleShot);

void
bmFilterMultiShot(benchmark::State &state)
{
    EventTable table;
    InvRegFile inv;
    auto m = makeMonitor("MemCheck");
    m->programFade(table, inv);
    FilterLogic logic(inv);
    OperandMd md;
    md.s1 = 0x01; // uninit: first shot fails, chain evaluates
    md.d = 0x01;
    for (auto _ : state) {
        FilterOutcome out = logic.evaluate(table, evLoad, md);
        benchmark::DoNotOptimize(out.shots);
    }
}
BENCHMARK(bmFilterMultiShot);

void
bmMdUpdate(benchmark::State &state)
{
    InvRegFile inv;
    inv.write(0, 0x42);
    NbRule rule;
    rule.action = NbAction::Or;
    OperandMd md{0x01, 0x02, 0x00};
    for (auto _ : state) {
        auto v = computeMdUpdate(rule, md, inv);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(bmMdUpdate);

void
bmFsqSearch(benchmark::State &state)
{
    FilterStoreQueue fsq(16);
    for (unsigned i = 0; i < 16; ++i)
        fsq.push(mdBase + i * 64, std::uint8_t(i), i);
    std::uint64_t n = 0;
    for (auto _ : state) {
        auto v = fsq.lookup(mdBase + (n % 24) * 64);
        benchmark::DoNotOptimize(v);
        ++n;
    }
}
BENCHMARK(bmFsqSearch);

void
bmShadowAccess(benchmark::State &state)
{
    ShadowMemory shadow(0);
    Rng rng(7);
    for (auto _ : state) {
        Addr a = 0x40000000 + (rng.next() & 0xfffff);
        shadow.writeApp(a, 1);
        benchmark::DoNotOptimize(shadow.readApp(a));
    }
}
BENCHMARK(bmShadowAccess);

void
bmMdCacheAccess(benchmark::State &state)
{
    Cache l2(l2Params(), nullptr, dramLatency);
    MdCache mdc(MdCacheParams{}, &l2);
    Rng rng(11);
    for (auto _ : state) {
        Addr a = 0x40000000 + (rng.next() & 0x3ffff);
        auto r = mdc.accessApp(a, false);
        benchmark::DoNotOptimize(r.latency);
    }
}
BENCHMARK(bmMdCacheAccess);

void
bmFadePipelineThroughput(benchmark::State &state)
{
    // End-to-end: stream filterable load events through the pipeline.
    MonitorContext ctx(0);
    Cache l2(l2Params(), nullptr, dramLatency);
    FadeParams params;
    Fade fade(params, ctx, &l2);
    auto m = makeMonitor("MemLeak");
    m->programFade(fade.eventTable(), fade.invRf());
    BoundedQueue<MonEvent> eq(32);
    BoundedQueue<UnfilteredEvent> ueq(16);
    fade.bind(&eq, &ueq);

    Cycle now = 0;
    std::uint64_t seq = 0;
    for (auto _ : state) {
        if (!eq.full()) {
            MonEvent ev;
            ev.kind = EventKind::Inst;
            ev.eventId = evLoad;
            ev.appAddr = 0x40000000 + (seq % 1024) * 4;
            ev.seq = seq++;
            eq.push(ev);
        }
        fade.tick(now++);
    }
    state.counters["events/cycle"] = benchmark::Counter(
        double(fade.stats().instEvents) / double(now),
        benchmark::Counter::kDefaults);
}
BENCHMARK(bmFadePipelineThroughput);

} // namespace

BENCHMARK_MAIN();
