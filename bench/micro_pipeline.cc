/**
 * @file
 * Single-shard engine microbenchmark: events/sec of the per-cycle
 * reference engine vs the run-to-stall batched engine
 * (system/pipeline.hh) vs the run-grain engine (system/rungrain.hh) on
 * one monitored shard, plus the bulk-transport throughput of the
 * ring-buffer BoundedQueue. Per-cycle and batched must agree bit for
 * bit; the run-grain engine must agree on every functional value
 * (event counts, filter verdicts, handler work, bug reports) on a
 * matched instruction window — its timing is modeled, so cycle counts
 * and slice-boundary overshoot differ by design (docs/ARCHITECTURE.md
 * "Run-grain engine"). Both checks are hard failures. There is deliberately no perf *gate*: CI
 * runs this as a smoke test (--smoke) and perf numbers are tracked
 * through the emitted JSON lines (see docs/BENCHMARKS.md — measure
 * speedups on a quiet multi-core host, not a shared 1-CPU container).
 *
 * Wall clock per engine is the median of --reps timed repetitions
 * (after one discarded warmup repetition when reps > 1), which keeps
 * the JSON trajectories stable on noisy shared hosts; the best rep is
 * reported alongside.
 *
 * Usage: micro_pipeline [--smoke] [--profile NAME] [--monitor NAME]
 *                       [--instr N] [--reps N]
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "system/pipeline.hh"
#include "system/rungrain.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

struct EngineRun
{
    RunResult run;
    double medianWall = 0.0;
    double bestWall = 0.0;
    PipelineDriverStats driver;
    /** Measured-slice deltas of the run-grain decomposition. */
    RunGrainDriverStats grain;
    std::vector<std::uint64_t> fingerprint;
};

/** Compact all-stats fingerprint of one single-shard run. */
std::vector<std::uint64_t>
fingerprintOf(MonitoringSystem &sys, Monitor *mon, const RunResult &r)
{
    std::vector<std::uint64_t> fp = {
        r.appInstructions, r.cycles,        r.monitoredEvents,
        r.appStallCycles,  r.monIdleCycles, r.handlerInstructions,
        r.handlersRun,
    };
    const FadeStats &f = sys.fade()->stats();
    fp.insert(fp.end(),
              {f.instEvents, f.filtered, f.filteredCC, f.filteredRU,
               f.partialPass, f.partialFail, f.unfiltered, f.stackEvents,
               f.highLevelEvents, f.shots, f.comparisons, f.stallUeqFull,
               f.stallBlocking, f.stallDrain, f.stallFsqFull, f.suuCycles,
               f.busyCycles, f.idleCycles});
    fp.push_back(sys.eventQueue().pushes());
    fp.push_back(sys.eventQueue().rejects());
    fp.push_back(sys.eventQueue().occupancy().maxValue());
    fp.push_back(sys.unfilteredQueue().pushes());
    fp.push_back(mon->reports().size());
    return fp;
}

/** Prefix of MonitoringSystem::functionalFingerprint() (diagnostics). */
const char *const kFunctionalNames[] = {
    "retired", "produced", "handlerInstructions", "handlersRun",
    "instEvents", "filtered", "filteredCC", "filteredRU", "partialPass",
    "partialFail", "unfiltered", "stackEvents", "highLevelEvents",
    "shots", "comparisons", "crossShardEvents", "suuCycles",
};

void
dumpDiff(const std::vector<std::uint64_t> &a,
         const std::vector<std::uint64_t> &b)
{
    constexpr std::size_t numNames =
        sizeof(kFunctionalNames) / sizeof(kFunctionalNames[0]);
    if (a.size() != b.size())
        std::printf("  length %zu vs %zu\n", a.size(), b.size());
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
        if (a[i] != b[i])
            std::printf("  [%zu] %s: %llu vs %llu\n", i,
                        i < numNames ? kFunctionalNames[i]
                                     : "(hist/per-id/reports)",
                        (unsigned long long)a[i], (unsigned long long)b[i]);
}

/**
 * The run-grain functional-equality check, on matched instruction
 * windows: the per-cycle reference overshoots a retirement target by
 * up to commit-width-1 (it checks once per cycle), so the run-grain
 * system is driven to per-cycle's *actual* retired count, both are
 * drained, and the cumulative functional fingerprints must then be
 * bit-identical (no warmup — a warmup slice would offset the stream
 * positions by per-cycle's warmup overshoot).
 */
bool
functionalCrossCheck(const std::string &profile,
                     const std::string &monitor, std::uint64_t instr)
{
    std::vector<std::uint64_t> fp[2];
    std::uint64_t target = instr;
    for (int i = 0; i < 2; ++i) {
        SystemConfig cfg;
        cfg.engine = i ? Engine::RunGrain : Engine::PerCycle;
        auto mon = makeMonitor(monitor);
        MonitoringSystem sys(cfg, specProfile(profile), mon.get());
        sys.run(target);
        sys.drain();
        // Match per-cycle's actual retirement: the overshoot past the
        // target plus the unmonitored tail drain() lets retire.
        if (!i)
            target = sys.retired();
        fp[i] = sys.functionalFingerprint();
    }
    if (fp[0] != fp[1]) {
        std::printf("ENGINES DIVERGED: run-grain functional results "
                    "are not identical to per-cycle on a matched "
                    "%llu-instruction window\n",
                    (unsigned long long)target);
        dumpDiff(fp[0], fp[1]);
        return false;
    }
    std::printf("functional cross-check: run-grain == per-cycle on a "
                "matched %llu-instruction window\n\n",
                (unsigned long long)target);
    return true;
}

RunGrainDriverStats
grainDelta(const RunGrainDriverStats &a, const RunGrainDriverStats &b)
{
    RunGrainDriverStats d;
    d.instructions = b.instructions - a.instructions;
    d.events = b.events - a.events;
    d.handlers = b.handlers - a.handlers;
    d.cyclesClosedFormed = b.cyclesClosedFormed - a.cyclesClosedFormed;
    d.cyclesFastForwarded = b.cyclesFastForwarded - a.cyclesFastForwarded;
    d.cyclesStepped = b.cyclesStepped - a.cyclesStepped;
    return d;
}

EngineRun
runEngine(Engine e, const std::string &profile, const std::string &monitor,
          std::uint64_t warm, std::uint64_t instr, unsigned reps)
{
    EngineRun out;
    std::vector<double> walls;
    // One discarded repetition warms the host (allocator, caches,
    // branch predictors) before anything is timed.
    unsigned total = reps > 1 ? reps + 1 : reps;
    for (unsigned rep = 0; rep < total; ++rep) {
        SystemConfig cfg;
        cfg.engine = e;
        auto mon = makeMonitor(monitor);
        MonitoringSystem sys(cfg, specProfile(profile), mon.get());
        sys.warmup(warm);
        RunGrainDriverStats before;
        if (sys.runGrainDriver())
            before = sys.runGrainDriver()->stats();
        auto t0 = std::chrono::steady_clock::now();
        RunResult r = sys.run(instr);
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (reps > 1 && rep == 0)
            continue; // discarded host-warmup repetition
        walls.push_back(wall);
        // Results are deterministic across repetitions; keep the last.
        out.run = r;
        if (sys.pipelineDriver())
            out.driver = sys.pipelineDriver()->stats();
        if (sys.runGrainDriver())
            out.grain = grainDelta(before, sys.runGrainDriver()->stats());
        out.fingerprint = fingerprintOf(sys, mon.get(), r);
    }
    std::sort(walls.begin(), walls.end());
    out.bestWall = walls.front();
    out.medianWall = walls[(walls.size() - 1) / 2];
    return out;
}

void
jsonLine(const char *engine, const std::string &profile,
         const std::string &monitor, const EngineRun &r)
{
    std::printf("{\"bench\":\"micro_pipeline\",\"profile\":\"%s\","
                "\"monitor\":\"%s\",\"engine\":\"%s\","
                "\"instructions\":%llu,\"cycles\":%llu,\"events\":%llu,"
                "\"wall_s\":%.6f,\"wall_best_s\":%.6f,"
                "\"events_per_s\":%.0f,\"cycles_per_s\":%.0f",
                profile.c_str(), monitor.c_str(), engine,
                (unsigned long long)r.run.appInstructions,
                (unsigned long long)r.run.cycles,
                (unsigned long long)r.run.monitoredEvents, r.medianWall,
                r.bestWall, r.run.monitoredEvents / r.medianWall,
                r.run.cycles / r.medianWall);
    if (!std::strcmp(engine, "rungrain"))
        std::printf(",\"cycles_closed_formed\":%llu,"
                    "\"cycles_fast_forwarded\":%llu,"
                    "\"cycles_stepped\":%llu",
                    (unsigned long long)r.grain.cyclesClosedFormed,
                    (unsigned long long)r.grain.cyclesFastForwarded,
                    (unsigned long long)r.grain.cyclesStepped);
    std::printf("}\n");
}

/** Ring-buffer queue transport: per-element vs bulk ops. */
void
queueTransportMicro(std::uint64_t ops)
{
    BoundedQueue<MonEvent> q(32);
    MonEvent ev;
    std::vector<MonEvent> batch(32);

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; i += 32) {
        for (int k = 0; k < 32; ++k)
            q.push(ev);
        for (int k = 0; k < 32; ++k)
            q.pop();
    }
    double perOp = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; i += 32) {
        q.pushRun(batch.begin(), batch.end());
        q.popRun(32);
    }
    double bulk = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    std::printf("queue transport (32-entry ring, %llu events each "
                "way):\n  push/pop     %8.1f M events/s\n"
                "  pushRun/popRun %6.1f M events/s (%.2fx)\n",
                (unsigned long long)ops, ops / perOp / 1e6,
                ops / bulk / 1e6, perOp / bulk);
    std::printf("{\"bench\":\"micro_pipeline_queue\",\"events\":%llu,"
                "\"push_pop_Mev_s\":%.1f,\"run_Mev_s\":%.1f}\n",
                (unsigned long long)ops, ops / perOp / 1e6,
                ops / bulk / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profile = "astar";
    std::string monitor = "AddrCheck";
    std::uint64_t warm = 20000;
    std::uint64_t instr = 2000000;
    unsigned reps = 3;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--smoke")) {
            instr = 100000;
            reps = 1;
        } else if (!std::strcmp(argv[i], "--profile")) {
            profile = next("--profile");
        } else if (!std::strcmp(argv[i], "--monitor")) {
            monitor = next("--monitor");
        } else if (!std::strcmp(argv[i], "--instr")) {
            instr = std::strtoull(next("--instr"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--reps")) {
            reps = unsigned(std::strtoul(next("--reps"), nullptr, 10));
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    header(("micro_pipeline: " + profile + " + " + monitor +
            ", per-cycle vs batched vs run-grain engine")
               .c_str());

    if (!functionalCrossCheck(profile, monitor, instr))
        return 1;

    EngineRun per = runEngine(Engine::PerCycle, profile, monitor, warm,
                              instr, reps);
    EngineRun bat = runEngine(Engine::Batched, profile, monitor, warm,
                              instr, reps);
    EngineRun grain = runEngine(Engine::RunGrain, profile, monitor, warm,
                                instr, reps);

    if (per.fingerprint != bat.fingerprint) {
        std::printf("ENGINES DIVERGED: batched results are not "
                    "bit-identical to per-cycle\n");
        return 1;
    }
    std::printf("instructions %llu | cycles %llu | events %llu "
                "(percycle == batched bitwise; rungrain functionally "
                "identical on matched windows, %llu modeled cycles)\n\n",
                (unsigned long long)per.run.appInstructions,
                (unsigned long long)per.run.cycles,
                (unsigned long long)per.run.monitoredEvents,
                (unsigned long long)grain.run.cycles);
    std::printf("per-cycle engine: %7.3fs  %9.0f events/s  %9.0f "
                "cycles/s\n",
                per.medianWall, per.run.monitoredEvents / per.medianWall,
                per.run.cycles / per.medianWall);
    std::printf("batched engine:   %7.3fs  %9.0f events/s  %9.0f "
                "cycles/s\n",
                bat.medianWall, bat.run.monitoredEvents / bat.medianWall,
                bat.run.cycles / bat.medianWall);
    std::printf("run-grain engine: %7.3fs  %9.0f events/s  %9.0f "
                "cycles/s\n",
                grain.medianWall,
                grain.run.monitoredEvents / grain.medianWall,
                grain.run.cycles / grain.medianWall);
    std::printf("engine speedup (median of %u): batched %.2fx | "
                "run-grain %.2fx\n",
                reps, per.medianWall / bat.medianWall,
                per.medianWall / grain.medianWall);
    std::uint64_t driven = bat.driver.fusedCycles +
                           bat.driver.skippedCycles;
    std::printf("batched driver: %llu cycles driven, %llu fused + %llu "
                "skipped (%.1f%% fast-forwarded in %llu jumps, mean "
                "%.1f cycles)\n",
                (unsigned long long)driven,
                (unsigned long long)bat.driver.fusedCycles,
                (unsigned long long)bat.driver.skippedCycles,
                driven ? 100.0 * bat.driver.skippedCycles / driven : 0.0,
                (unsigned long long)bat.driver.jumps,
                bat.driver.jumps ? double(bat.driver.skippedCycles) /
                                       bat.driver.jumps
                                 : 0.0);
    std::uint64_t modeled = grain.grain.cyclesClosedFormed +
                            grain.grain.cyclesFastForwarded +
                            grain.grain.cyclesStepped;
    std::printf("run-grain driver: %llu modeled cycles, %llu "
                "closed-formed (%.1f%%) + %llu fast-forwarded (%.1f%%) "
                "+ %llu stepped\n\n",
                (unsigned long long)modeled,
                (unsigned long long)grain.grain.cyclesClosedFormed,
                modeled ? 100.0 * grain.grain.cyclesClosedFormed / modeled
                        : 0.0,
                (unsigned long long)grain.grain.cyclesFastForwarded,
                modeled ? 100.0 * grain.grain.cyclesFastForwarded /
                              modeled
                        : 0.0,
                (unsigned long long)grain.grain.cyclesStepped);

    jsonLine("percycle", profile, monitor, per);
    jsonLine("batched", profile, monitor, bat);
    jsonLine("rungrain", profile, monitor, grain);
    std::printf("\n");

    queueTransportMicro(instr >= 1000000 ? 32000000ull : 3200000ull);
    return 0;
}
