/**
 * @file
 * Single-shard engine microbenchmark: events/sec of the per-cycle
 * reference engine vs the run-to-stall batched engine
 * (system/pipeline.hh) on one monitored shard, plus the bulk-transport
 * throughput of the ring-buffer BoundedQueue. The engines must agree
 * bit for bit (hard-checked here, like fig12's policy check); only
 * wall clock may differ. There is deliberately no perf *gate*: CI runs
 * this as a smoke test (--smoke) and perf numbers are tracked through
 * the emitted JSON lines (see docs/BENCHMARKS.md — measure speedups on
 * a quiet multi-core host, not a shared 1-CPU container).
 *
 * Usage: micro_pipeline [--smoke] [--profile NAME] [--monitor NAME]
 *                       [--instr N] [--reps N]
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "system/pipeline.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

struct EngineRun
{
    RunResult run;
    double bestWall = 0.0;
    PipelineDriverStats driver;
    std::vector<std::uint64_t> fingerprint;
};

/** Compact all-stats fingerprint of one single-shard run. */
std::vector<std::uint64_t>
fingerprintOf(MonitoringSystem &sys, Monitor *mon, const RunResult &r)
{
    std::vector<std::uint64_t> fp = {
        r.appInstructions, r.cycles,        r.monitoredEvents,
        r.appStallCycles,  r.monIdleCycles, r.handlerInstructions,
        r.handlersRun,
    };
    const FadeStats &f = sys.fade()->stats();
    fp.insert(fp.end(),
              {f.instEvents, f.filtered, f.filteredCC, f.filteredRU,
               f.partialPass, f.partialFail, f.unfiltered, f.stackEvents,
               f.highLevelEvents, f.shots, f.comparisons, f.stallUeqFull,
               f.stallBlocking, f.stallDrain, f.stallFsqFull, f.suuCycles,
               f.busyCycles, f.idleCycles});
    fp.push_back(sys.eventQueue().pushes());
    fp.push_back(sys.eventQueue().rejects());
    fp.push_back(sys.eventQueue().occupancy().maxValue());
    fp.push_back(sys.unfilteredQueue().pushes());
    fp.push_back(mon->reports().size());
    return fp;
}

EngineRun
runEngine(Engine e, const std::string &profile, const std::string &monitor,
          std::uint64_t warm, std::uint64_t instr, unsigned reps)
{
    EngineRun best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        SystemConfig cfg;
        cfg.engine = e;
        auto mon = makeMonitor(monitor);
        MonitoringSystem sys(cfg, specProfile(profile), mon.get());
        sys.warmup(warm);
        auto t0 = std::chrono::steady_clock::now();
        RunResult r = sys.run(instr);
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (rep == 0 || wall < best.bestWall) {
            best.bestWall = wall;
            best.run = r;
            if (sys.pipelineDriver())
                best.driver = sys.pipelineDriver()->stats();
            best.fingerprint = fingerprintOf(sys, mon.get(), r);
        }
    }
    return best;
}

void
jsonLine(const char *engine, const std::string &profile,
         const std::string &monitor, const EngineRun &r)
{
    std::printf("{\"bench\":\"micro_pipeline\",\"profile\":\"%s\","
                "\"monitor\":\"%s\",\"engine\":\"%s\","
                "\"instructions\":%llu,\"cycles\":%llu,\"events\":%llu,"
                "\"wall_s\":%.6f,\"events_per_s\":%.0f,"
                "\"cycles_per_s\":%.0f}\n",
                profile.c_str(), monitor.c_str(), engine,
                (unsigned long long)r.run.appInstructions,
                (unsigned long long)r.run.cycles,
                (unsigned long long)r.run.monitoredEvents, r.bestWall,
                r.run.monitoredEvents / r.bestWall,
                r.run.cycles / r.bestWall);
}

/** Ring-buffer queue transport: per-element vs bulk ops. */
void
queueTransportMicro(std::uint64_t ops)
{
    BoundedQueue<MonEvent> q(32);
    MonEvent ev;
    std::vector<MonEvent> batch(32);

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; i += 32) {
        for (int k = 0; k < 32; ++k)
            q.push(ev);
        for (int k = 0; k < 32; ++k)
            q.pop();
    }
    double perOp = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; i += 32) {
        q.pushRun(batch.begin(), batch.end());
        q.popRun(32);
    }
    double bulk = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    std::printf("queue transport (32-entry ring, %llu events each "
                "way):\n  push/pop     %8.1f M events/s\n"
                "  pushRun/popRun %6.1f M events/s (%.2fx)\n",
                (unsigned long long)ops, ops / perOp / 1e6,
                ops / bulk / 1e6, perOp / bulk);
    std::printf("{\"bench\":\"micro_pipeline_queue\",\"events\":%llu,"
                "\"push_pop_Mev_s\":%.1f,\"run_Mev_s\":%.1f}\n",
                (unsigned long long)ops, ops / perOp / 1e6,
                ops / bulk / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profile = "astar";
    std::string monitor = "AddrCheck";
    std::uint64_t warm = 20000;
    std::uint64_t instr = 2000000;
    unsigned reps = 3;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--smoke")) {
            instr = 100000;
            reps = 1;
        } else if (!std::strcmp(argv[i], "--profile")) {
            profile = next("--profile");
        } else if (!std::strcmp(argv[i], "--monitor")) {
            monitor = next("--monitor");
        } else if (!std::strcmp(argv[i], "--instr")) {
            instr = std::strtoull(next("--instr"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--reps")) {
            reps = unsigned(std::strtoul(next("--reps"), nullptr, 10));
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    header(("micro_pipeline: " + profile + " + " + monitor +
            ", per-cycle vs run-to-stall batched engine")
               .c_str());

    EngineRun per = runEngine(Engine::PerCycle, profile, monitor, warm,
                              instr, reps);
    EngineRun bat = runEngine(Engine::Batched, profile, monitor, warm,
                              instr, reps);

    if (per.fingerprint != bat.fingerprint) {
        std::printf("ENGINES DIVERGED: batched results are not "
                    "bit-identical to per-cycle\n");
        return 1;
    }

    std::printf("instructions %llu | cycles %llu | events %llu "
                "(bit-identical across engines)\n\n",
                (unsigned long long)per.run.appInstructions,
                (unsigned long long)per.run.cycles,
                (unsigned long long)per.run.monitoredEvents);
    std::printf("per-cycle engine: %7.3fs  %9.0f events/s  %9.0f "
                "cycles/s\n",
                per.bestWall, per.run.monitoredEvents / per.bestWall,
                per.run.cycles / per.bestWall);
    std::printf("batched engine:   %7.3fs  %9.0f events/s  %9.0f "
                "cycles/s\n",
                bat.bestWall, bat.run.monitoredEvents / bat.bestWall,
                bat.run.cycles / bat.bestWall);
    std::printf("engine speedup: %.2fx (events/s, best of %u)\n",
                per.bestWall / bat.bestWall, reps);
    std::uint64_t driven = bat.driver.fusedCycles +
                           bat.driver.skippedCycles;
    std::printf("driver: %llu cycles driven, %llu fused + %llu skipped "
                "(%.1f%% fast-forwarded in %llu jumps, mean %.1f "
                "cycles)\n\n",
                (unsigned long long)driven,
                (unsigned long long)bat.driver.fusedCycles,
                (unsigned long long)bat.driver.skippedCycles,
                driven ? 100.0 * bat.driver.skippedCycles / driven : 0.0,
                (unsigned long long)bat.driver.jumps,
                bat.driver.jumps ? double(bat.driver.skippedCycles) /
                                       bat.driver.jumps
                                 : 0.0);

    jsonLine("percycle", profile, monitor, per);
    jsonLine("batched", profile, monitor, bat);
    std::printf("\n");

    queueTransportMicro(instr >= 1000000 ? 32000000ull : 3200000ull);
    return 0;
}
