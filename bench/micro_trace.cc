/**
 * @file
 * Functional-layer microbenchmarks: the trace generator's ns/instr (the
 * floor under both execution engines), the flat-container operation
 * rates (AddrSet / AddrMap vs std::unordered_set, WordSet range
 * erases), and the page-span shadow fill rate. Every measurement is
 * paired with a hard bit-equality check — generator stream determinism
 * across two independent instances, AddrSet/WordSet differential
 * equality against std::unordered_set under a randomized op mix — and
 * the binary exits nonzero on any mismatch. CI runs `--smoke` for the
 * checks alone; perf numbers are tracked through the emitted JSON lines
 * (scripts/bench_baseline.sh, docs/BENCHMARKS.md) with no perf gate.
 *
 * Every reported rate is the median of --reps timed repetitions, after
 * one discarded host-warmup repetition (reps > 1), so baseline JSON
 * lines stay stable on noisy shared hosts.
 *
 * Usage: micro_trace [--smoke] [--profile NAME] [--instr N] [--reps N]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "isa/event.hh"
#include "monitor/addrcheck.hh"
#include "sim/flatset.hh"
#include "sim/queue.hh"
#include "sim/random.hh"
#include "sim/wordset.hh"
#include "mem/shadow.hh"
#include "system/producer.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

using namespace fade;

namespace
{

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

unsigned gReps = 3;

/** Median of gReps timed runs of @p fn (seconds), after one discarded
 *  warmup run when more than one rep is requested. */
template <typename Fn>
double
medianSeconds(Fn fn)
{
    std::vector<double> walls;
    unsigned total = gReps > 1 ? gReps + 1 : gReps;
    for (unsigned rep = 0; rep < total; ++rep) {
        double t0 = now();
        fn();
        double w = now() - t0;
        if (gReps > 1 && rep == 0)
            continue;
        walls.push_back(w);
    }
    std::sort(walls.begin(), walls.end());
    return walls[(walls.size() - 1) / 2];
}

/** Order-independent fingerprint of one generated instruction. */
std::uint64_t
instHash(const Instruction &i)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    mix(std::uint64_t(i.cls));
    mix(i.pc);
    mix(i.memAddr);
    mix(i.src1 | (std::uint64_t(i.src2) << 8) |
        (std::uint64_t(i.dst) << 16) | (std::uint64_t(i.numSrc) << 24));
    mix(i.frameBase);
    mix(i.frameBytes);
    mix(std::uint64_t(i.hasDst) | (std::uint64_t(i.mispredict) << 1) |
        (std::uint64_t(i.mayPropagate) << 2) |
        (std::uint64_t(i.hlKind) << 8) | (std::uint64_t(i.tid) << 16));
    return h;
}

/** Generator throughput + stream determinism + oracle key alignment. */
bool
generatorMicro(const std::string &profile, std::uint64_t n)
{
    TraceGenerator a(specProfile(profile));
    TraceGenerator b(specProfile(profile));

    std::uint64_t hashA = 0;
    for (std::uint64_t k = 0; k < n; ++k)
        hashA += instHash(a.fetch());

    // Timed reps use fresh instances so every rep generates the same
    // stream from the same startup state.
    std::uint64_t sink = 0;
    double perInstr = medianSeconds([&] {
        TraceGenerator g(specProfile(profile));
        for (std::uint64_t k = 0; k < n; ++k)
            sink += instHash(g.fetch());
    }) / double(n) * 1e9;

    std::uint64_t hashB = 0;
    for (std::uint64_t k = 0; k < n; ++k)
        hashB += instHash(b.fetch());

    // Every timed rep must have reproduced the reference stream too.
    unsigned timedReps = gReps > 1 ? gReps + 1 : gReps;
    bool ok = hashA == hashB && sink == hashA * timedReps;
    if (!ok)
        std::printf("GENERATOR DIVERGED: two identically-seeded "
                    "instances produced different streams\n");

    // Canonical word alignment of the ground-truth mirrors.
    std::uint64_t misaligned = 0;
    a.ptrWords().forEach([&](Addr w) { misaligned += w & 3; });
    a.taintWords().forEach([&](Addr w) { misaligned += w & 3; });
    if (misaligned) {
        std::printf("MISALIGNED mirror keys detected\n");
        ok = false;
    }

    std::printf("generator (%s): %.1f ns/instr over %llu instructions "
                "(streams bit-identical: %s)\n",
                profile.c_str(), perInstr, (unsigned long long)n,
                ok ? "yes" : "NO");
    std::printf("{\"bench\":\"micro_trace\",\"what\":\"generator\","
                "\"profile\":\"%s\",\"instructions\":%llu,"
                "\"ns_per_instr\":%.1f}\n",
                profile.c_str(), (unsigned long long)n, perInstr);
    return ok;
}

/** Order-independent fingerprint of one extracted event. */
std::uint64_t
eventHash(const MonEvent &e)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    mix(std::uint64_t(e.kind) | (std::uint64_t(e.eventId) << 8) |
        (std::uint64_t(e.numSrc) << 16) | (std::uint64_t(e.hasDst) << 24));
    mix(e.appAddr);
    mix(e.appPc);
    mix(e.src1 | (std::uint64_t(e.src2) << 8) |
        (std::uint64_t(e.dst) << 16));
    mix(e.len | (std::uint64_t(e.tid) << 32) |
        (std::uint64_t(e.shard) << 48));
    return h;
}

/**
 * Span fast path: batch synthesis (stageRun + fetchSpan) proven
 * draw-for-draw identical to on-demand fetch(), then the per-stage
 * ns/instr decomposition of the run-grain functional pipeline —
 * synthesis, monitor dispatch (Monitor::monitoredSpan), and bulk event
 * extraction (EventProducer::commitSpan) — each timed over the same
 * staged spans (scripts/bench_baseline.sh records these in
 * BENCH_pr9.json).
 */
bool
spanMicro(const std::string &profile, std::uint64_t n)
{
    constexpr std::size_t kSpan = 64;

    // Differential: batch-synthesized stream == on-demand stream.
    TraceGenerator onDemand(specProfile(profile));
    std::uint64_t hashDemand = 0;
    for (std::uint64_t k = 0; k < n; ++k)
        hashDemand += instHash(onDemand.fetch());

    std::uint64_t hashBatch = 0;
    {
        TraceGenerator g(specProfile(profile));
        std::uint64_t left = n;
        while (left) {
            std::size_t want = std::size_t(std::min<std::uint64_t>(
                kSpan, left));
            g.stageRun(want);
            InstSpan s = g.fetchSpan(want);
            for (const Instruction &i : s)
                hashBatch += instHash(i);
            left -= s.count;
        }
    }
    bool ok = hashDemand == hashBatch;
    if (!ok)
        std::printf("SPAN PATH DIVERGED: batch synthesis != on-demand\n");

    // Stage 1: batch synthesis rate.
    std::uint64_t sink = 0;
    double synthNs = medianSeconds([&] {
        TraceGenerator g(specProfile(profile));
        std::uint64_t left = n;
        while (left) {
            std::size_t want = std::size_t(std::min<std::uint64_t>(
                kSpan, left));
            g.stageRun(want);
            InstSpan s = g.fetchSpan(want);
            sink += s.count;
            left -= s.count;
        }
    }) / double(n) * 1e9;

    // A reusable staged window for the downstream stages: synthesize
    // once, then time dispatch/extraction over the same instructions.
    std::vector<Instruction> window;
    window.reserve(1 << 16);
    {
        TraceGenerator g(specProfile(profile));
        while (window.size() < (1 << 16))
            window.push_back(g.fetch());
    }
    AddrCheck mon;
    std::vector<std::uint8_t> verdicts(window.size());

    // Stage 2: monitor dispatch (batched verdicts).
    std::uint64_t monHits = 0;
    double monNs = medianSeconds([&] {
        std::uint64_t done = 0;
        while (done < n) {
            for (std::size_t at = 0; at < window.size() && done < n;
                 at += kSpan, done += kSpan)
                mon.monitoredSpan(window.data() + at, kSpan,
                                  verdicts.data() + at);
        }
        monHits = 0;
        for (std::uint8_t v : verdicts)
            monHits += v;
    }) / double(n) * 1e9;

    // Stage 3: bulk event extraction over the verdict-carrying spans.
    // The producer needs a bound queue only as an enable flag —
    // commitSpan writes into the caller's flat buffer.
    BoundedQueue<MonEvent> eq(16);
    MonEvent spanEvents[kSpan];
    std::uint64_t evBatch = 0, evHashBatch = 0;
    double extractNs = medianSeconds([&] {
        EventProducer prod(&mon, &eq, nullptr);
        evBatch = 0;
        evHashBatch = 0;
        std::uint64_t done = 0;
        while (done < n) {
            for (std::size_t at = 0; at < window.size() && done < n;
                 at += kSpan, done += kSpan) {
                std::size_t ev = prod.commitSpan(
                    window.data() + at, verdicts.data() + at, kSpan,
                    spanEvents);
                evBatch += ev;
                for (std::size_t e = 0; e < ev; ++e)
                    evHashBatch += eventHash(spanEvents[e]);
            }
        }
    }) / double(n) * 1e9;

    // Differential: bulk extraction == one-at-a-time commitDecided
    // over the same window (events popped from the bound queue).
    {
        BoundedQueue<MonEvent> one(1);
        EventProducer ref(&mon, &one, nullptr);
        std::uint64_t evRef = 0, evHashRef = 0;
        std::uint64_t done = 0;
        while (done < n) {
            for (std::size_t at = 0; at < window.size() && done < n;
                 ++at, ++done) {
                ref.commitDecided(window[at], verdicts[at] != 0);
                if (!one.empty()) {
                    ++evRef;
                    evHashRef += eventHash(one.front());
                    one.pop();
                }
            }
        }
        if (evRef != evBatch || evHashRef != evHashBatch) {
            std::printf("SPAN EXTRACTION DIVERGED: commitSpan != "
                        "commitDecided\n");
            ok = false;
        }
    }

    std::printf("span pipeline (%s, %zu-instr spans): synthesis %.1f + "
                "monitor dispatch %.1f + extraction %.1f ns/instr "
                "(%llu events; batch == on-demand: %s)\n",
                profile.c_str(), kSpan, synthNs, monNs, extractNs,
                (unsigned long long)evBatch, ok ? "yes" : "NO");
    std::printf("{\"bench\":\"micro_trace\",\"what\":\"span_pipeline\","
                "\"profile\":\"%s\",\"span\":%zu,\"instructions\":%llu,"
                "\"synthesis_ns_per_instr\":%.1f,"
                "\"monitor_dispatch_ns_per_instr\":%.1f,"
                "\"extraction_ns_per_instr\":%.1f}\n",
                profile.c_str(), kSpan, (unsigned long long)n, synthNs,
                monNs, extractNs);
    return ok && sink != 0 && monHits != 0;
}

/** Randomized differential check + op-rate micro for AddrSet. */
bool
setMicro(std::uint64_t ops)
{
    Rng rng(0x1234);
    AddrSet flat;
    std::unordered_set<Addr> ref;
    bool ok = true;

    // Differential phase: random insert/erase/count over a small key
    // space (forces collisions, backward-shift chains, and growth).
    for (std::uint64_t k = 0; k < ops / 4; ++k) {
        Addr key = Addr(rng.range(8192)) * wordSize;
        switch (rng.range(3)) {
          case 0:
            ok &= flat.insert(key) == ref.insert(key).second;
            break;
          case 1:
            ok &= flat.erase(key) == (ref.erase(key) != 0);
            break;
          default:
            ok &= flat.count(key) == ref.count(key);
            break;
        }
        if (!ok)
            break;
        ok &= flat.size() == ref.size();
    }
    if (!ok) {
        std::printf("ADDRSET DIVERGED from std::unordered_set\n");
        return false;
    }

    // Rate phase: the generator-shaped mix (insert+erase+2 lookups).
    // Fresh containers per rep so every rep runs the identical op mix.
    auto run = [&](auto &set) {
        Rng r(0x5678);
        std::uint64_t hits = 0;
        for (std::uint64_t k = 0; k < ops; ++k) {
            Addr key = Addr(r.range(1u << 16)) * wordSize;
            set.insert(key);
            hits += set.count(key ^ 0x40);
            set.erase(key ^ 0x80);
            hits += set.count(key);
        }
        return hits;
    };
    std::uint64_t flatHits = 0, refHits = 0;
    double flatS = medianSeconds([&] {
        AddrSet flat2;
        flatHits = run(flat2);
    });
    double refS = medianSeconds([&] {
        std::unordered_set<Addr> ref2;
        refHits = run(ref2);
    });
    if (flatHits != refHits) {
        std::printf("ADDRSET DIVERGED in rate phase\n");
        return false;
    }
    std::printf("set ops (insert+2 lookups+erase): AddrSet %.1f M/s, "
                "std::unordered_set %.1f M/s (%.2fx)\n",
                ops / flatS / 1e6, ops / refS / 1e6, refS / flatS);
    std::printf("{\"bench\":\"micro_trace\",\"what\":\"addrset\","
                "\"ops\":%llu,\"flat_Mops\":%.1f,\"std_Mops\":%.1f}\n",
                (unsigned long long)ops, ops / flatS / 1e6,
                ops / refS / 1e6);
    return true;
}

/** WordSet differential (incl. range erase) + range-erase rate. */
bool
wordSetMicro(std::uint64_t ops)
{
    Rng rng(0x9abc);
    WordSet ws;
    std::unordered_set<Addr> ref;
    bool ok = true;
    for (std::uint64_t k = 0; k < ops / 8; ++k) {
        Addr key = heapBase + Addr(rng.range(1u << 15)) * wordSize;
        switch (rng.range(4)) {
          case 0:
            ws.insert(key);
            ref.insert(key);
            break;
          case 1:
            ws.erase(key);
            ref.erase(key);
            break;
          case 2: {
            Addr lo = heapBase + Addr(rng.range(1u << 15)) * wordSize;
            std::uint64_t len = (1 + rng.range(512)) * wordSize;
            ws.eraseRange(lo, lo + len);
            for (Addr a = lo; a < lo + len; a += wordSize)
                ref.erase(a);
            break;
          }
          default:
            ok &= ws.count(key) == ref.count(key);
            break;
        }
        ok &= ws.size() == ref.size();
        if (!ok)
            break;
    }
    if (ok) {
        // Full-content equality both directions.
        std::size_t seen = 0;
        ws.forEach([&](Addr a) { seen += ref.count(a); });
        ok = seen == ref.size() && ws.size() == ref.size();
    }
    if (!ok) {
        std::printf("WORDSET DIVERGED from std::unordered_set\n");
        return false;
    }

    // Range-erase rate: the free/return pattern.
    std::uint64_t words = 0;
    double s = medianSeconds([&] {
        WordSet w2;
        words = 0;
        for (std::uint64_t k = 0; k < ops / 64; ++k) {
            Addr base = heapBase + (k % 1024) * 0x1000;
            for (unsigned i = 0; i < 16; ++i)
                w2.insert(base + i * 64);
            w2.eraseRange(base, base + 0x1000);
            words += 0x1000 / wordSize;
        }
    });
    std::printf("wordset range-erase: %.0f M words/s\n",
                words / s / 1e6);
    std::printf("{\"bench\":\"micro_trace\",\"what\":\"wordset_erase\","
                "\"Mwords_s\":%.0f}\n", words / s / 1e6);
    return true;
}

/** Page-span shadow fill rate (the SUU / malloc-handler pattern). */
void
shadowMicro(std::uint64_t ops)
{
    std::uint64_t bytes = 0;
    std::size_t pages = 0;
    double s = medianSeconds([&] {
        ShadowMemory sh(0xff);
        bytes = 0;
        for (std::uint64_t k = 0; k < ops / 16; ++k) {
            Addr app = heapBase + (k % 4096) * 0x800;
            sh.fillApp(app, 0x800, std::uint8_t(k));
            bytes += 0x800 / wordSize;
        }
        pages = sh.mappedPages();
    });
    std::printf("shadow fillApp: %.0f M md-bytes/s (%zu pages mapped)\n",
                bytes / s / 1e6, pages);
    std::printf("{\"bench\":\"micro_trace\",\"what\":\"shadow_fill\","
                "\"Mbytes_s\":%.0f}\n", bytes / s / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profile = "astar";
    std::uint64_t instr = 4000000;
    std::uint64_t ops = 2000000;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--smoke")) {
            instr = 200000;
            ops = 200000;
            gReps = 1;
        } else if (!std::strcmp(argv[i], "--profile")) {
            profile = next("--profile");
        } else if (!std::strcmp(argv[i], "--instr")) {
            instr = std::strtoull(next("--instr"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--reps")) {
            gReps = unsigned(std::strtoul(next("--reps"), nullptr, 10));
            if (!gReps)
                gReps = 1;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    std::printf("=== micro_trace: functional-layer microbenchmarks "
                "===\n");
    bool ok = generatorMicro(profile, instr);
    ok &= spanMicro(profile, instr);
    ok &= setMicro(ops);
    ok &= wordSetMicro(ops);
    shadowMicro(ops);
    if (!ok) {
        std::printf("BIT-EQUALITY CHECKS FAILED\n");
        return 1;
    }
    return 0;
}
