/**
 * @file
 * Reproduces Table 2 of the paper: FADE's filtering efficiency — the
 * fraction of instruction event handlers elided by hardware (fully
 * filtered events plus partial-filtering events whose hardware check
 * passed, replacing the full handler with the short update handler).
 *
 * Paper: AddrCheck 99.5%, AtomCheck 85.5%, MemCheck 98.0%,
 * MemLeak 87.0%, TaintCheck 84.0%.
 */

#include "bench/common.hh"

using namespace fade;
using namespace fade::bench;

int
main()
{
    header("Table 2: FADE filtering efficiency (average across "
           "benchmarks)");
    TextTable t;
    t.header({"monitor", "measured", "paper", "CC share", "RU share",
              "partial share"});
    const std::map<std::string, const char *> paper = {
        {"AddrCheck", "99.5%"}, {"AtomCheck", "85.5%"},
        {"MemCheck", "98.0%"},  {"MemLeak", "87.0%"},
        {"TaintCheck", "84.0%"},
    };
    for (const auto &mon : paperMonitorNames()) {
        double ratio = 0, cc = 0, ru = 0, pp = 0;
        const auto &benches = benchmarksFor(mon);
        for (const auto &b : benches) {
            SystemConfig cfg;
            Measured m = measure(cfg, mon, profileFor(mon, b));
            ratio += m.filtering;
            double n = double(m.fadeStats.instEvents);
            if (n > 0) {
                cc += m.fadeStats.filteredCC / n;
                ru += m.fadeStats.filteredRU / n;
                pp += m.fadeStats.partialPass / n;
            }
        }
        unsigned n = unsigned(benches.size());
        t.row({mon, fmtPct(ratio / n), paper.at(mon), fmtPct(cc / n),
               fmtPct(ru / n), fmtPct(pp / n)});
    }
    t.print();
    return 0;
}
