/**
 * @file
 * Reproduces Section 7.6 of the paper (area and energy efficiency):
 * FADE's synthesized logic occupies 0.09 mm^2 and consumes 122 mW at
 * peak in TSMC 40nm at 2GHz; the 4KB MD cache (CACTI 6.5) adds
 * 0.03 mm^2 and 151 mW with a 0.3 ns access; 0.12 mm^2 / 273 mW total.
 */

#include <cstdio>

#include "power/model.hh"
#include "sim/table.hh"

using namespace fade;

int
main()
{
    std::printf("Section 7.6: FADE area and peak power at 40nm / 2GHz\n");
    std::printf("----------------------------------------------------\n");

    FadeParams params;
    FadeInventory inv = inventoryFor(params, 32, 16);

    TextTable t;
    t.header({"component", "area (mm^2)", "peak power (mW)"});
    for (const auto &c : fadeLogicBreakdown(inv))
        t.row({c.component, fmt("%.4f", c.areaMm2),
               fmt("%.1f", c.powerMw)});
    AreaPower logic = fadeLogicTotal(inv);
    t.row({"FADE logic total", fmt("%.3f", logic.areaMm2),
           fmt("%.0f", logic.powerMw)});

    MdCacheParams mdp;
    AreaPower cache = mdCacheAreaPower(mdp);
    t.row({"MD cache (4KB + M-TLB)", fmt("%.3f", cache.areaMm2),
           fmt("%.0f", cache.powerMw)});
    t.row({"grand total", fmt("%.3f", logic.areaMm2 + cache.areaMm2),
           fmt("%.0f", logic.powerMw + cache.powerMw)});
    t.print();

    std::printf("\nMD cache access latency: %.2f ns (paper: 0.3 ns)\n",
                mdCacheAccessNs(mdp));
    std::printf("paper: FADE logic 0.09 mm^2 / 122 mW; MD cache "
                "0.03 mm^2 / 151 mW; total 0.12 mm^2 / 273 mW\n");

    std::printf("\nAblation: baseline (blocking) FADE without the "
                "Non-Blocking structures\n");
    FadeParams blocking;
    blocking.nonBlocking = false;
    FadeInventory binv = inventoryFor(blocking, 32, 16);
    AreaPower blogic = fadeLogicTotal(binv);
    std::printf("  blocking FADE logic: %.3f mm^2 / %.0f mW "
                "(saves %.4f mm^2, %.1f mW)\n",
                blogic.areaMm2, blogic.powerMw,
                logic.areaMm2 - blogic.areaMm2,
                logic.powerMw - blogic.powerMw);
    return 0;
}
