/**
 * @file
 * Trace capture/replay tool (trace/tracefile.hh). Five modes:
 *
 *   trace_tool --capture OUT.ftrace [config flags]
 *       Run the configured system live, tee every shard's instruction
 *       stream to OUT.ftrace, and seal the file with a replay manifest
 *       holding the run's result-fingerprint hash.
 *
 *   trace_tool --replay FILE.ftrace [--policy P] [--engine E]
 *       Rebuild the captured system from the manifest, re-run it from
 *       the trace, and compare the result hash against the capture.
 *       Policy/engine may be overridden — results are invariant.
 *
 *   trace_tool --verify FILE.ftrace...
 *       Replay each file under the default policy/engine and
 *       hard-check its manifest hash; exit 1 on any mismatch. The CI
 *       golden-trace gate (tests/golden/, docs/BENCHMARKS.md).
 *
 *   trace_tool --stats FILE.ftrace   (and --dump [--max N])
 *       Inspect header, manifest, per-stream encoding statistics, or
 *       the decoded records themselves.
 *
 *   trace_tool --bench [config flags] [--file PATH]
 *       Live vs capturing vs replaying wall clock on one config,
 *       emitted as JSON lines (scripts/bench_baseline.sh).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "system/multicore.hh"

using namespace fade;
using namespace fade::bench;

namespace
{

struct Options
{
    std::string mode;
    std::vector<std::string> files;
    std::string monitor = "MemLeak";
    std::string profile = "bzip";
    unsigned shards = 1;
    unsigned clusters = 1;
    unsigned fades = 1;
    std::uint64_t warm = warmupInsts;
    std::uint64_t instr = measureInsts;
    SchedulerPolicy policy = SchedulerPolicy::Lockstep;
    Engine engine = Engine::PerCycle;
    bool policySet = false;
    bool engineSet = false;
    std::uint64_t maxRecords = 32;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_tool --capture OUT [--monitor M] [--profile P]\n"
        "                  [--shards N] [--clusters C] [--fades K]\n"
        "                  [--warm N] [--instr N] [--policy lockstep|"
        "parallel]\n"
        "                  [--engine percycle|batched|rungrain]\n"
        "       trace_tool --replay FILE [--policy ...] [--engine ...]\n"
        "       trace_tool --verify FILE...\n"
        "       trace_tool --stats FILE\n"
        "       trace_tool --dump FILE [--max N (0 = all)]\n"
        "       trace_tool --bench [config flags] [--file PATH]\n");
    return 2;
}

struct RunOutcome
{
    MultiCoreResult result;
    std::uint64_t hash = 0;
    double wallSeconds = 0.0;
};

/** Build the capture-side config from the command-line options. */
MultiCoreConfig
captureConfig(const Options &opt)
{
    MultiCoreConfig cfg;
    cfg.monitor = opt.monitor;
    cfg.numShards = opt.shards;
    cfg.topology.clusters = opt.clusters;
    cfg.topology.fadesPerShard = opt.fades;
    cfg.scheduler.policy = opt.policy;
    cfg.engine = opt.engine;
    cfg.workloads = {profileFor(opt.monitor, opt.profile)};
    return cfg;
}

/** Warm up, run, fingerprint. */
RunOutcome
drive(MultiCoreSystem &sys, std::uint64_t warm, std::uint64_t instr)
{
    RunOutcome o;
    sys.warmup(warm);
    auto t0 = std::chrono::steady_clock::now();
    o.result = sys.run(instr);
    o.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    o.hash = fingerprintHash(resultFingerprint(sys, o.result));
    return o;
}

int
doCapture(const Options &opt)
{
    MultiCoreConfig cfg = captureConfig(opt);
    cfg.traceOut = opt.files.at(0);
    MultiCoreSystem sys(cfg);
    RunOutcome o = drive(sys, opt.warm, opt.instr);
    sys.closeTrace(o.hash);

    TraceReader check(cfg.traceOut);
    std::printf("captured %s: %u stream(s), %llu bytes, "
                "%llu instructions + %llu warmup per shard\n",
                cfg.traceOut.c_str(), check.numStreams(),
                (unsigned long long)check.fileBytes(),
                (unsigned long long)opt.instr,
                (unsigned long long)opt.warm);
    std::printf("result fingerprint hash: %016llx\n",
                (unsigned long long)o.hash);
    return 0;
}

int
replayOne(const std::string &file, const Options &opt, bool quiet)
{
    MultiCoreConfig cfg = replayConfig(file);
    if (opt.policySet)
        cfg.scheduler.policy = opt.policy;
    if (opt.engineSet)
        cfg.engine = opt.engine;
    const TraceManifest m = TraceReader(file).manifest();

    // The manifest hash pins the capture's per-cycle-identical timing;
    // the run-grain engine models timing, so its full-result hash is
    // legitimately different. Replay still runs (and is deterministic),
    // but the hash check is informational only under --engine rungrain
    // (functional equality across engines is enforced by
    // tests/test_pipeline.cc and the fig12/micro_pipeline harnesses).
    bool grainTiming = cfg.engine == Engine::RunGrain;

    MultiCoreSystem sys(cfg);
    RunOutcome o =
        drive(sys, m.warmupInstructions, m.measureInstructions);

    if (grainTiming) {
        std::printf("%s: replayed under the run-grain engine, hash "
                    "%016llx (manifest hash %016llx pins per-cycle "
                    "timing — not compared)\n",
                    file.c_str(), (unsigned long long)o.hash,
                    (unsigned long long)m.fingerprintHash);
        return 0;
    }
    if (!m.hasFingerprint) {
        std::printf("%s: replayed, hash %016llx (capture recorded no "
                    "result hash to check)\n",
                    file.c_str(), (unsigned long long)o.hash);
        return 0;
    }
    if (o.hash != m.fingerprintHash) {
        std::printf("%s: REPLAY DIVERGED: got %016llx, capture "
                    "recorded %016llx\n",
                    file.c_str(), (unsigned long long)o.hash,
                    (unsigned long long)m.fingerprintHash);
        return 1;
    }
    if (!quiet)
        std::printf("%s: replay bit-identical to capture "
                    "(hash %016llx, %llu instructions, %u shard(s))\n",
                    file.c_str(), (unsigned long long)o.hash,
                    (unsigned long long)o.result.totalInstructions,
                    sys.numShards());
    else
        std::printf("%s: ok (%016llx)\n", file.c_str(),
                    (unsigned long long)o.hash);
    return 0;
}

int
doVerify(const Options &opt)
{
    int rc = 0;
    for (const std::string &f : opt.files)
        rc |= replayOne(f, opt, true);
    return rc;
}

void
printManifest(const TraceManifest &m)
{
    if (!m.present) {
        std::printf("manifest: none (capture not sealed with "
                    "closeTrace)\n");
        return;
    }
    std::printf("manifest:\n");
    std::printf("  monitor            %s\n",
                m.monitor.empty() ? "(baseline)" : m.monitor.c_str());
    std::printf("  warmup / measured  %llu / %llu instructions per "
                "shard\n",
                (unsigned long long)m.warmupInstructions,
                (unsigned long long)m.measureInstructions);
    std::printf("  shape              %llu shard(s), %llu cluster(s) x "
                "%llu, %llu filter unit(s)/shard, remote +%llu\n",
                (unsigned long long)m.numShards,
                (unsigned long long)m.clusters,
                (unsigned long long)m.shardsPerCluster,
                (unsigned long long)m.fadesPerShard,
                (unsigned long long)m.remoteLatency);
    std::printf("  core               %s (width %llu, rob %llu%s)\n",
                m.coreName.c_str(), (unsigned long long)m.coreWidth,
                (unsigned long long)m.robSize,
                m.inOrder ? ", in-order" : "");
    std::printf("  queues             eq %llu, ueq %llu; slice %llu "
                "ticks\n",
                (unsigned long long)m.eqCapacity,
                (unsigned long long)m.ueqCapacity,
                (unsigned long long)m.sliceTicks);
    if (m.hasFingerprint)
        std::printf("  result hash        %016llx\n",
                    (unsigned long long)m.fingerprintHash);
}

int
doStats(const Options &opt)
{
    TraceReader r(opt.files.at(0));
    std::printf("%s: format v%u, %llu bytes, config %016llx\n",
                opt.files.at(0).c_str(), r.version(),
                (unsigned long long)r.fileBytes(),
                (unsigned long long)r.configFingerprint());
    printManifest(r.manifest());

    for (unsigned s = 0; s < r.numStreams(); ++s) {
        const TraceStreamMeta &sm = r.stream(s);
        std::uint64_t classes[unsigned(InstClass::NumClasses)] = {};
        TraceReader::Cursor c = r.cursor(s);
        Instruction inst;
        while (c.next(inst))
            ++classes[unsigned(inst.cls)];
        std::printf("stream %u: %s (seed %llu, %u thread(s)) — %llu "
                    "records in %llu block(s), %llu bytes (%.2f "
                    "B/record)\n",
                    s, sm.profile.c_str(), (unsigned long long)sm.seed,
                    sm.numThreads, (unsigned long long)sm.records,
                    (unsigned long long)r.streamBlocks(s),
                    (unsigned long long)r.streamBytes(s),
                    sm.records ? double(r.streamBytes(s)) /
                                     double(sm.records)
                               : 0.0);
        for (unsigned k = 0; k < unsigned(InstClass::NumClasses); ++k)
            if (classes[k])
                std::printf("  %-10s %10llu (%.1f%%)\n",
                            instClassName(InstClass(k)),
                            (unsigned long long)classes[k],
                            100.0 * double(classes[k]) /
                                double(sm.records));
    }
    return 0;
}

int
doDump(const Options &opt)
{
    TraceReader r(opt.files.at(0));
    for (unsigned s = 0; s < r.numStreams(); ++s) {
        const TraceStreamMeta &sm = r.stream(s);
        std::printf("stream %u: %s, %llu records\n", s,
                    sm.profile.c_str(), (unsigned long long)sm.records);
        TraceReader::Cursor c = r.cursor(s);
        Instruction inst;
        std::uint64_t i = 0;
        while (c.next(inst)) {
            if (opt.maxRecords && i >= opt.maxRecords) {
                std::printf("  ... (%llu more)\n",
                            (unsigned long long)(sm.records - i));
                break;
            }
            std::printf("  %8llu pc=%08llx t%u %-10s",
                        (unsigned long long)i,
                        (unsigned long long)inst.pc, inst.tid,
                        instClassName(inst.cls));
            if (inst.isMemRef())
                std::printf(" addr=%08llx/%u",
                            (unsigned long long)inst.memAddr,
                            inst.memSize);
            if (inst.isStackUpdate() ||
                inst.hlKind != EventKind::Inst)
                std::printf(" %s base=%08llx bytes=%u",
                            eventKindName(inst.hlKind),
                            (unsigned long long)inst.frameBase,
                            inst.frameBytes);
            if (inst.mispredict)
                std::printf(" mispredict");
            if (inst.truth)
                std::printf(" truth=%02x", inst.truth);
            std::printf("\n");
            ++i;
        }
    }
    return 0;
}

int
doBench(const Options &opt)
{
    std::string path = opt.files.empty()
                           ? std::string("/tmp/fade_trace_bench.ftrace")
                           : opt.files.at(0);
    auto emit = [&](const char *mode, const RunOutcome &o) {
        std::printf("{\"bench\":\"trace_tool\",\"mode\":\"%s\","
                    "\"profile\":\"%s\",\"monitor\":\"%s\","
                    "\"engine\":\"%s\",\"shards\":%u,"
                    "\"instructions\":%llu,"
                    "\"events\":%llu,\"wall_s\":%.6f,"
                    "\"events_per_s\":%.0f}\n",
                    mode, opt.profile.c_str(), opt.monitor.c_str(),
                    engineName(opt.engine), opt.shards,
                    (unsigned long long)o.result.totalInstructions,
                    (unsigned long long)o.result.totalEvents,
                    o.wallSeconds,
                    o.result.totalEvents / o.wallSeconds);
    };

    MultiCoreConfig live = captureConfig(opt);
    MultiCoreSystem liveSys(live);
    RunOutcome liveRun = drive(liveSys, opt.warm, opt.instr);
    emit("live", liveRun);

    MultiCoreConfig cap = captureConfig(opt);
    cap.traceOut = path;
    MultiCoreSystem capSys(cap);
    RunOutcome capRun = drive(capSys, opt.warm, opt.instr);
    capSys.closeTrace(capRun.hash);
    emit("capture", capRun);

    // Replay under the same engine/policy as the live and capturing
    // runs, so the three-way hash check stays meaningful for every
    // engine (run-grain timing is deterministic and stream-invariant,
    // so its hashes agree across the three modes too).
    MultiCoreConfig rep = replayConfig(path);
    if (opt.engineSet)
        rep.engine = opt.engine;
    if (opt.policySet)
        rep.scheduler.policy = opt.policy;
    MultiCoreSystem repSys(rep);
    const TraceManifest m = TraceReader(path).manifest();
    RunOutcome repRun =
        drive(repSys, m.warmupInstructions, m.measureInstructions);
    emit("replay", repRun);

    std::remove(path.c_str());
    if (liveRun.hash != capRun.hash || capRun.hash != repRun.hash) {
        std::printf("TRACE MODES DIVERGED: live %016llx capture %016llx "
                    "replay %016llx\n",
                    (unsigned long long)liveRun.hash,
                    (unsigned long long)capRun.hash,
                    (unsigned long long)repRun.hash);
        return 1;
    }
    std::printf("live, capturing, and replay runs bit-identical "
                "(hash %016llx)\n",
                (unsigned long long)liveRun.hash);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        auto mode = [&](const char *m, bool wantsFile) {
            if (!opt.mode.empty()) {
                std::fprintf(stderr, "conflicting modes: --%s and %s\n",
                             opt.mode.c_str(), argv[i]);
                std::exit(2);
            }
            opt.mode = m;
            if (wantsFile)
                opt.files.push_back(next(argv[i]));
        };
        if (!std::strcmp(argv[i], "--capture")) {
            mode("capture", true);
        } else if (!std::strcmp(argv[i], "--replay")) {
            mode("replay", true);
        } else if (!std::strcmp(argv[i], "--verify")) {
            mode("verify", true);
            while (i + 1 < argc && argv[i + 1][0] != '-')
                opt.files.push_back(argv[++i]);
        } else if (!std::strcmp(argv[i], "--stats")) {
            mode("stats", true);
        } else if (!std::strcmp(argv[i], "--dump")) {
            mode("dump", true);
        } else if (!std::strcmp(argv[i], "--bench")) {
            mode("bench", false);
        } else if (!std::strcmp(argv[i], "--file")) {
            opt.files.push_back(next("--file"));
        } else if (!std::strcmp(argv[i], "--monitor")) {
            opt.monitor = next("--monitor");
        } else if (!std::strcmp(argv[i], "--profile")) {
            opt.profile = next("--profile");
        } else if (!std::strcmp(argv[i], "--shards")) {
            opt.shards =
                unsigned(std::strtoul(next("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--clusters")) {
            opt.clusters =
                unsigned(std::strtoul(next("--clusters"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--fades")) {
            opt.fades =
                unsigned(std::strtoul(next("--fades"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--warm")) {
            opt.warm = std::strtoull(next("--warm"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--instr")) {
            opt.instr = std::strtoull(next("--instr"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--max")) {
            opt.maxRecords = std::strtoull(next("--max"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--policy")) {
            std::string p = next("--policy");
            opt.policy = p == "parallel" ? SchedulerPolicy::ParallelBatched
                                         : SchedulerPolicy::Lockstep;
            opt.policySet = true;
        } else if (!std::strcmp(argv[i], "--engine")) {
            opt.engine = parseEngine(next("--engine"));
            opt.engineSet = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return usage();
        }
    }
    if (opt.mode.empty())
        return usage();
    if (opt.mode != "bench" && opt.files.empty())
        return usage();

    try {
        if (opt.mode == "capture")
            return doCapture(opt);
        if (opt.mode == "replay")
            return replayOne(opt.files.at(0), opt, false);
        if (opt.mode == "verify")
            return doVerify(opt);
        if (opt.mode == "stats")
            return doStats(opt);
        if (opt.mode == "dump")
            return doDump(opt);
        if (opt.mode == "bench")
            return doBench(opt);
    } catch (const TraceError &e) {
        std::fprintf(stderr, "trace_tool: %s\n", e.what());
        return 1;
    }
    return usage();
}
