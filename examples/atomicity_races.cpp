/**
 * @file
 * Concurrency scenario: AtomCheck watches a four-thread streamcluster-
 * like workload for unserializable access interleavings (AVIO-style
 * atomicity violations). FADE's partial filtering performs the
 * last-accessor check in hardware: same-thread re-accesses take the
 * short software path, and only genuine interleavings run the full
 * serializability analysis.
 */

#include <cstdio>

#include "monitor/atomcheck.hh"
#include "system/system.hh"
#include "trace/profile.hh"

using namespace fade;

int
main()
{
    BenchProfile profile = parallelProfile("streamcluster");
    AtomCheck monitor;

    SystemConfig cfg;
    MonitoringSystem system(cfg, profile, &monitor);
    system.warmup(40000);

    std::printf("running 4 threads over shared centroid tables...\n");
    RunResult r = system.run(80000);

    const FadeStats &s = system.fade()->stats();
    std::uint64_t total =
        monitor.sameThreadAccesses + monitor.firstAccesses +
        monitor.remoteAccesses;
    std::printf("  monitored accesses : %llu\n",
                (unsigned long long)total);
    std::printf("  same-thread (fast) : %.1f%%  <- hardware check "
                "passes, short handler\n",
                100.0 * monitor.sameThreadAccesses / double(total));
    std::printf("  interleavings      : %.1f%%  <- full analysis "
                "handler\n",
                100.0 * monitor.remoteAccesses / double(total));
    std::printf("  check elision rate : %.1f%%\n",
                100.0 * s.filteringRatio());
    std::printf("  app IPC under mon. : %.2f\n", r.appIpc);

    std::size_t organicBefore = monitor.reports().size();
    std::printf("\ninjecting a read-write-read interleaving on a "
                "shared word...\n");
    system.generator().injectBug(truthAtomViolation);
    system.run(20000);

    std::size_t after = monitor.reports().size();
    std::printf("violations flagged: %zu organic + %zu after "
                "injection\n",
                organicBefore, after - organicBefore);
    if (after == organicBefore) {
        std::printf("  !! injected violation missed\n");
        return 1;
    }
    const BugReport &last = monitor.reports().back();
    std::printf("  example: [%s] word 0x%llx, thread-interleaved "
                "access at pc=0x%llx\n",
                last.kind.c_str(), (unsigned long long)last.addr,
                (unsigned long long)last.pc);
    return 0;
}
