/**
 * @file
 * Memory-leak hunting: MemLeak's reference counting pinpoints the
 * moment the last reference to an unfreed allocation disappears — long
 * before program exit. This example runs a gcc-like allocation-heavy
 * workload, injects three distinct leaks at different times, and shows
 * each leak being reported with the allocation site.
 */

#include <cstdio>

#include "monitor/memleak.hh"
#include "system/system.hh"
#include "trace/profile.hh"

using namespace fade;

int
main()
{
    BenchProfile profile = specProfile("gcc");
    MemLeak monitor;

    SystemConfig cfg;
    MonitoringSystem system(cfg, profile, &monitor);
    system.warmup(25000);

    std::printf("hunting leaks in a gcc-like workload...\n");
    std::size_t organic = 0;
    for (int round = 0; round < 3; ++round) {
        std::size_t before = monitor.reports().size();
        system.generator().injectBug(truthLeakDrop);
        system.run(20000);
        std::size_t found = monitor.reports().size() - before;
        std::printf("round %d: injected 1 leak, reports this round: %zu\n",
                    round + 1, found);
        organic = monitor.reports().size();
    }

    std::printf("\nleak reports (%zu total):\n", organic);
    int shown = 0;
    for (const auto &r : monitor.reports()) {
        std::printf("  leak #%d: block at 0x%llx — %s\n", ++shown,
                    (unsigned long long)r.addr, r.detail.c_str());
        if (shown >= 8)
            break;
    }

    std::printf("\nallocation contexts tracked: %zu, leaks flagged: "
                "%llu\n",
                monitor.contexts().size(),
                (unsigned long long)monitor.leaksDetected());
    std::printf("hardware filtered %.1f%% of pointer-tracking events\n",
                100.0 * system.fade()->stats().filteringRatio());
    return monitor.leaksDetected() >= 3 ? 0 : 1;
}
