/**
 * @file
 * Quickstart: build a FADE-accelerated monitoring system in a few
 * lines, run a workload, and inspect what the accelerator did.
 *
 *   1. pick a benchmark profile (the synthetic workload),
 *   2. pick a lifeguard (here: MemLeak),
 *   3. assemble a MonitoringSystem (single dual-threaded 4-way OoO
 *      core with FADE, the paper's Fig. 8(b) design),
 *   4. warm up, run, and read the statistics.
 */

#include <cstdio>

#include "monitor/factory.hh"
#include "system/system.hh"
#include "trace/profile.hh"

using namespace fade;

int
main()
{
    // 1. Workload: a gcc-like instruction stream.
    BenchProfile profile = specProfile("gcc");

    // 2. Lifeguard: reference-counting leak detection.
    auto monitor = makeMonitor("MemLeak");

    // 3. System: FADE-accelerated, single dual-threaded core.
    SystemConfig cfg;
    cfg.accelerated = true;
    MonitoringSystem system(cfg, profile, monitor.get());

    // Baseline for slowdown normalization: same workload, no monitor.
    SystemConfig baseCfg;
    baseCfg.accelerated = false;
    MonitoringSystem baseline(baseCfg, profile, nullptr);

    // 4. Warm up (caches + metadata), then measure.
    constexpr std::uint64_t warm = 25000, run = 80000;
    system.warmup(warm);
    baseline.warmup(warm);
    RunResult monitored = system.run(run);
    RunResult unmonitored = baseline.run(run);

    const FadeStats &s = system.fade()->stats();
    std::printf("workload            : %s (%llu instructions)\n",
                profile.name.c_str(),
                (unsigned long long)monitored.appInstructions);
    std::printf("monitored events    : %llu (%.2f per cycle)\n",
                (unsigned long long)monitored.monitoredEvents,
                monitored.monitoredIpc);
    std::printf("filtered in hardware: %.1f%% (%llu clean checks, "
                "%llu redundant updates)\n",
                100.0 * s.filteringRatio(),
                (unsigned long long)s.filteredCC,
                (unsigned long long)s.filteredRU);
    std::printf("stack updates (SUU) : %llu\n",
                (unsigned long long)s.stackEvents);
    std::printf("software handlers   : %llu\n",
                (unsigned long long)(s.unfiltered + s.partialPass +
                                     s.partialFail + s.highLevelEvents));
    std::printf("slowdown vs no mon. : %.2fx\n",
                double(monitored.cycles) / unmonitored.cycles);
    std::printf("leaks detected      : %zu\n",
                monitor->reports().size());
    return 0;
}
