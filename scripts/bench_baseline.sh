#!/bin/sh
# Capture the current perf baseline as JSON lines so the trajectory of
# the functional-layer fast paths is recorded in-repo. Runs the two
# micro harnesses (micro_trace: generator ns/instr + container op
# rates; micro_pipeline: end-to-end engine events/s with the hard
# bit-equality check) plus trace_tool --bench (live vs capture vs
# replay events/s with the hard replay bit-identity check) and
# collects every JSON line they emit into one file. Usage:
#
#   sh scripts/bench_baseline.sh [builddir] [outfile]
#
# Defaults: builddir=build, outfile=BENCH_pr6.json. Numbers are only
# comparable on the same host under the same load — see
# docs/BENCHMARKS.md for the measurement protocol.
set -eu
cd "$(dirname "$0")/.."

builddir=${1:-build}
out=${2:-BENCH_pr6.json}

for bin in micro_trace micro_pipeline trace_tool; do
    if [ ! -x "$builddir/$bin" ]; then
        echo "missing $builddir/$bin — build first:" >&2
        echo "  cmake -B $builddir -S . && cmake --build $builddir -j" >&2
        exit 1
    fi
done

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== micro_trace (3 reps, best visible in the lines) =="
for rep in 1 2 3; do
    "$builddir/micro_trace" | tee -a "$tmp"
done

echo "== micro_pipeline (3 reps inside the harness) =="
"$builddir/micro_pipeline" | tee -a "$tmp"

echo "== trace_tool --bench (replay vs live, bit-identity checked) =="
for rep in 1 2 3; do
    "$builddir/trace_tool" --bench | tee -a "$tmp"
done

grep '^{' "$tmp" > "$out"
echo "wrote $(grep -c . "$out") JSON lines to $out"
