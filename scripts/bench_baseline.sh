#!/bin/sh
# Capture the current perf baseline as JSON lines so the trajectory of
# the functional-layer fast paths is recorded in-repo. Runs the two
# micro harnesses (micro_trace: generator ns/instr + container op
# rates; micro_pipeline: per-cycle vs batched vs run-grain engine
# events/s with the hard equality checks — bitwise for batched,
# functional for run-grain — and the run-grain cycle decomposition)
# plus trace_tool --bench (live vs capture vs replay events/s with the
# hard replay bit-identity check, once per engine) and the daemon
# load harness (faded serving concurrent faded_client sessions over a
# unix socket, sessions/s) and collects every JSON line they emit into
# one file. Usage:
#
#   sh scripts/bench_baseline.sh [builddir] [outfile]
#
# Defaults: builddir=build, outfile=BENCH_pr10.json. Numbers are only
# comparable on the same host under the same load — see
# docs/BENCHMARKS.md for the measurement protocol. Both micro harnesses
# report the median of their in-harness repetitions (after a discarded
# host-warmup rep), so one invocation per harness suffices.
set -eu
cd "$(dirname "$0")/.."

builddir=${1:-build}
out=${2:-BENCH_pr10.json}

for bin in micro_trace micro_pipeline trace_tool faded faded_client; do
    if [ ! -x "$builddir/$bin" ]; then
        echo "missing $builddir/$bin — build first:" >&2
        echo "  cmake -B $builddir -S . && cmake --build $builddir -j" >&2
        exit 1
    fi
done

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== micro_trace (median of in-harness reps) =="
"$builddir/micro_trace" | tee -a "$tmp"

echo "== micro_pipeline (3 engines, median of in-harness reps) =="
"$builddir/micro_pipeline" | tee -a "$tmp"

echo "== trace_tool --bench (replay vs live, bit-identity checked) =="
for engine in percycle batched rungrain; do
    "$builddir/trace_tool" --bench --engine "$engine" | tee -a "$tmp"
done

echo "== faded session throughput (8 sessions, 4 concurrent clients) =="
sockdir=$(mktemp -d /tmp/faded_bench_XXXXXX)
"$builddir/faded" --socket "$sockdir/d.sock" --max-sessions 8 \
    --workers 2 > /dev/null 2>&1 &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$sockdir"; \
      rm -f "$tmp"' EXIT
"$builddir/faded_client" --socket "$sockdir/d.sock" \
    --monitor MemLeak --profile bzip --warm 1000 --instr 10000 \
    --sessions 8 --concurrency 4 | tee -a "$tmp"
kill -TERM "$daemon_pid"
wait "$daemon_pid"

grep '^{' "$tmp" > "$out"
echo "wrote $(grep -c . "$out") JSON lines to $out"
