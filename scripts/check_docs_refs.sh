#!/bin/sh
# Fail if maintained markdown files reference repo paths that no longer
# exist. The scanned file list is shared with check_md_links.sh
# (scripts/lib_md_files.sh): docs/*.md plus the maintained root
# documents.
#
# A "reference" is any backtick-quoted token that starts with a known
# top-level repo directory, contains a slash, and ends in a known
# source/doc extension — plain form `src/mem/cache.hh` or brace form
# `src/system/topology.{hh,cc}` (each expansion is checked). Absolute
# paths and glob patterns are skipped.
#
# Usage:
#   check_docs_refs.sh             check this repository
#   check_docs_refs.sh --selftest  verify the checker catches dangling
#                                  references (used by ctest/CI)
set -eu

. "$(dirname "$0")/lib_md_files.sh"

ref_dirs='src|docs|tests|bench|scripts|examples|\.github'
ref_exts='cc|hh|cpp|md|sh|yml|txt|json|ftrace'

# Print every referenced path in $1, one per line, brace forms
# expanded (`a.{hh,cc}` -> `a.hh` and `a.cc`).
refs_in() {
    grep -oE "\`($ref_dirs)/[A-Za-z0-9_./-]+\.($ref_exts)\`" "$1" |
        tr -d '\140' || true
    for b in $(grep -oE \
        "\`($ref_dirs)/[A-Za-z0-9_./-]+\.\{($ref_exts)(,($ref_exts))+\}\`" \
        "$1" | tr -d '\140' || true); do
        stem=${b%%.\{*}
        exts=${b#*.\{}
        exts=${exts%\}}
        for e in $(printf '%s' "$exts" | tr ',' ' '); do
            printf '%s.%s\n' "$stem" "$e"
        done
    done
}

# Check every maintained markdown file under $1; print dangling
# references and return nonzero if any were found.
check_tree() {
    root="$1"
    st=0
    for f in $(maintained_md_files "$root"); do
        for r in $(refs_in "$f" | sort -u); do
            case "$r" in
                *'*'*) continue ;; # glob pattern
            esac
            if [ ! -e "$root/$r" ]; then
                echo "${f#"$root"/}: dangling reference: $r" >&2
                st=1
            fi
        done
    done
    return $st
}

if [ "${1:-}" = "--selftest" ]; then
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    mkdir -p "$tmp/docs" "$tmp/src/mem"
    echo "int x;" > "$tmp/src/mem/cache.hh"
    echo "int y;" > "$tmp/src/mem/cache.cc"

    # A tree with only valid references (plain and brace form) must
    # pass.
    cat > "$tmp/docs/GOOD.md" <<'EOF'
See `src/mem/cache.hh`, `src/mem/cache.{hh,cc}`, and the glob
`src/*.cc`.
EOF
    if ! check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: clean tree reported dangling refs" >&2
        exit 1
    fi

    # Dangling src/... and docs/... references must fail, in docs/ and
    # in root documents alike — including one leg of a brace form.
    echo 'Broken: `src/mem/gone.cc`.' > "$tmp/docs/BAD.md"
    if check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: dangling src/ ref not caught" >&2
        exit 1
    fi
    echo 'Broken: `src/mem/gone.{hh,cc}`.' > "$tmp/docs/BAD.md"
    if check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: dangling brace-form ref not caught" >&2
        exit 1
    fi
    rm "$tmp/docs/BAD.md"
    echo 'Broken: `docs/GONE.md`.' > "$tmp/README.md"
    if check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: dangling docs/ ref in README not caught" >&2
        exit 1
    fi
    echo 'Stale: `scripts/gone.sh`.' > "$tmp/CHANGES.md"
    rm "$tmp/README.md"
    if check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: dangling ref in CHANGES not caught" >&2
        exit 1
    fi
    echo "docs references selftest OK"
    exit 0
fi

cd "$(dirname "$0")/.."
if check_tree .; then
    echo "docs references OK"
else
    exit 1
fi
