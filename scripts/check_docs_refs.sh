#!/bin/sh
# Fail if docs/*.md or README.md reference repo paths that no longer
# exist. A "reference" is any backtick-quoted token that contains a
# slash and a known source/doc extension, e.g. `src/mem/cache.hh` or
# `docs/ARCHITECTURE.md`. Absolute paths and glob patterns are skipped.
set -eu
cd "$(dirname "$0")/.."

status=0
for f in docs/*.md README.md; do
    [ -f "$f" ] || continue
    refs=$(grep -oE '`[A-Za-z0-9_./-]+\.(cc|hh|cpp|md|sh|yml|txt)`' \
               "$f" | tr -d '`' | sort -u) || refs=""
    for r in $refs; do
        case "$r" in
            /*) continue ;;     # absolute: not a repo path
            *'*'*) continue ;;  # glob pattern
            */*) ;;             # repo-relative path: check it
            *) continue ;;      # bare file name: too ambiguous
        esac
        if [ ! -e "$r" ]; then
            echo "$f: dangling reference: $r" >&2
            status=1
        fi
    done
done
if [ "$status" -eq 0 ]; then
    echo "docs references OK"
fi
exit $status
