#!/bin/sh
# Markdown link check, no network: every relative link target in the
# maintained markdown files (the list shared with check_docs_refs.sh
# via scripts/lib_md_files.sh) must exist — resolved relative to the
# linking file's directory, exactly as a renderer would. External
# links (http/https/mailto) and pure in-page anchors (#...) are
# skipped; anchors and optional "titles" on relative links are
# stripped before the existence check.
#
# Usage:
#   check_md_links.sh             check this repository
#   check_md_links.sh --selftest  verify the checker catches broken
#                                 links (used by ctest/CI)
set -eu

. "$(dirname "$0")/lib_md_files.sh"

check_tree() {
    root="$1"
    st=0
    for f in $(maintained_md_files "$root"); do
        # Inline links: [text](target) or [text](target "title").
        # Split the extracted list on newlines only, so targets that
        # contain spaces stay intact. Reference definitions are rare
        # here; extend when one appears.
        links=$(grep -oE '\]\([^)]+\)' "$f" |
                    sed -e 's/^](//' -e 's/)$//' | sort -u) || links=""
        base=$(dirname "$f")
        oldifs=$IFS
        IFS='
'
        for l in $links; do
            IFS=$oldifs
            case "$l" in
                http://*|https://*|mailto:*) continue ;;
                '#'*) continue ;;   # in-page anchor
            esac
            l=${l%% \"*}            # strip an optional "title"
            target=${l%%#*}         # strip anchor from relative link
            [ -n "$target" ] || continue
            # Resolve against the linking file's directory only — a
            # repo-root fallback would pass links that render broken.
            if [ ! -e "$base/$target" ]; then
                echo "${f#"$root"/}: broken link: $l" >&2
                st=1
            fi
        done
        IFS=$oldifs
    done
    return $st
}

if [ "${1:-}" = "--selftest" ]; then
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    mkdir -p "$tmp/docs"
    echo "# A" > "$tmp/docs/A.md"
    echo "# B" > "$tmp/docs/with space.md"
    cat > "$tmp/README.md" <<'EOF'
Good: [a](docs/A.md), [anchor](docs/A.md#a),
[titled](docs/A.md "design notes"), [spaced](docs/with space.md),
[ext](https://example.com), [page](#local).
EOF
    echo 'Sibling: [a](A.md).' > "$tmp/docs/GOOD.md"
    if ! check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: clean tree reported broken links" >&2
        exit 1
    fi
    echo '[gone](docs/GONE.md)' >> "$tmp/README.md"
    if check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: broken link not caught" >&2
        exit 1
    fi
    # Regenerate the clean fixture (portable; no in-place sed).
    cat > "$tmp/README.md" <<'EOF'
Good: [a](docs/A.md).
EOF
    # Root-relative links inside docs/ render broken: must be caught.
    echo 'Bad: [a](docs/A.md).' > "$tmp/docs/GOOD.md"
    if check_tree "$tmp" 2>/dev/null; then
        echo "selftest FAILED: root-relative link in docs/ not caught" >&2
        exit 1
    fi
    echo "markdown links selftest OK"
    exit 0
fi

cd "$(dirname "$0")/.."
if check_tree .; then
    echo "markdown links OK"
else
    exit 1
fi
