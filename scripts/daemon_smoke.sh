#!/bin/sh
# End-to-end daemon smoke: start faded on a fresh socket, run several
# concurrent client sessions with --check (each compares the daemon's
# result fingerprints bit-for-bit against a standalone in-process run
# of the same config), then SIGTERM the daemon and require a clean
# drain ("clean shutdown", exit 0). Exercises the real executables and
# a real socket — the layer above what tests/test_daemon.cc drives
# in-process. Usage:
#
#   sh scripts/daemon_smoke.sh [builddir]
#
# Default builddir=build. Fails (non-zero) on any fingerprint
# mismatch, client failure, or unclean daemon shutdown.
set -eu
cd "$(dirname "$0")/.."

builddir=${1:-build}

for bin in faded faded_client; do
    if [ ! -x "$builddir/$bin" ]; then
        echo "missing $builddir/$bin — build first:" >&2
        echo "  cmake -B $builddir -S . && cmake --build $builddir -j" >&2
        exit 1
    fi
done

dir=$(mktemp -d /tmp/faded_smoke_XXXXXX)
sock="$dir/d.sock"
log="$dir/faded.log"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

"$builddir/faded" --socket "$sock" --max-sessions 8 --workers 2 \
    > "$log" 2>&1 &
daemon_pid=$!

# Four concurrent sessions, distinct configs, each differentially
# checked against a standalone run.
echo "== 4 concurrent checked sessions =="
pids=""
fail=0
"$builddir/faded_client" --socket "$sock" --check \
    --monitor MemLeak --profile bzip --warm 1000 --instr 4000 &
pids="$pids $!"
"$builddir/faded_client" --socket "$sock" --check \
    --monitor AddrCheck --profile mcf --shards 2 --policy parallel \
    --warm 1000 --instr 4000 &
pids="$pids $!"
"$builddir/faded_client" --socket "$sock" --check \
    --monitor TaintCheck --profile astar --engine batched \
    --warm 1000 --instr 4000 &
pids="$pids $!"
"$builddir/faded_client" --socket "$sock" --check \
    --monitor RaceCheck --profile ocean-mt --shards 2 \
    --warm 1000 --instr 4000 &
pids="$pids $!"
for pid in $pids; do
    wait "$pid" || fail=1
done
[ "$fail" -eq 0 ] || { echo "smoke: a checked session failed" >&2
                       cat "$log" >&2; exit 1; }

echo "== clean shutdown =="
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "smoke: daemon exited non-zero" >&2
                        cat "$log" >&2; exit 1; }
grep -q "clean shutdown" "$log" || {
    echo "smoke: no clean-shutdown marker in daemon log:" >&2
    cat "$log" >&2
    exit 1
}
echo "daemon smoke OK"
