# Shared by check_docs_refs.sh and check_md_links.sh: the single list
# of maintained markdown files both checkers scan, so adding the next
# root document cannot silently fall out of one checker's coverage.
# Deliberately excluded: ISSUE.md (forward-looking task spec that
# names files before they exist) and PAPERS.md / SNIPPETS.md
# (retrieved artifacts quoting other repositories' paths).
#
# Usage: maintained_md_files <root>  — prints one path per line
# (missing entries are skipped).
maintained_md_files() {
    _root="$1"
    for _f in "$_root"/docs/*.md "$_root"/README.md \
              "$_root"/CHANGES.md "$_root"/ROADMAP.md \
              "$_root"/PAPER.md; do
        [ -f "$_f" ] && printf '%s\n' "$_f"
    done
    return 0
}
