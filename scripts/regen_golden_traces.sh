#!/usr/bin/env bash
# Regenerate the golden trace corpus under tests/golden/.
#
# Run this ONLY when the trace format version bumps or a deliberate
# behavioral change invalidates the recorded fingerprints; commit the
# regenerated .ftrace files together with the change that required
# them. CI replays the corpus on every push (trace_tool --verify), and
# tests/test_tracefile.cc GoldenCorpus checks each file's manifest
# hash, so a stale corpus fails loudly.
#
# Usage: scripts/regen_golden_traces.sh [build-dir]   (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
tool="$build/trace_tool"

if [[ ! -x "$tool" ]]; then
    echo "error: $tool not built (cmake --build $build --target trace_tool)" >&2
    exit 1
fi

mkdir -p tests/golden

# Small slices: the corpus exists to pin replay behavior, not to be a
# benchmark. ~1k warmup + 2k measured instructions per shard keeps each
# file in the tens of kilobytes and the CI replay under a second.
warm=1000
instr=2000

capture() { # name, extra trace_tool args...
    local name="$1"; shift
    "$tool" --capture "tests/golden/$name.ftrace" \
        --warm "$warm" --instr "$instr" "$@"
}

capture hmmer_memleak_n1    --monitor MemLeak   --profile hmmer
capture gcc_addrcheck_n4    --monitor AddrCheck --profile gcc   --shards 4
capture mcf_taintcheck_n1   --monitor TaintCheck --profile mcf
capture ocean_atomcheck_n2  --monitor AtomCheck --profile ocean --shards 2
capture astar_memcheck_2x2x2 --monitor MemCheck --profile astar \
    --shards 4 --clusters 2 --fades 2
# Multi-threaded process workload: 4 threads of one process spread
# over 4 shards in 2 clusters, race monitor attached.
capture ocean_mt4_racecheck_2x2 --monitor RaceCheck --profile ocean-mt \
    --shards 4 --clusters 2

"$tool" --verify tests/golden/*.ftrace
ls -l tests/golden/
