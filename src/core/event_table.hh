/**
 * @file
 * The programmable event table (Fig. 6(b) of the paper). One entry per
 * event ID holds the filtering rules: per-operand metadata descriptors,
 * the clean-check (CC) and redundant-update (RU) controls, multi-shot
 * chaining, the partial-filtering bit, the software handler PC, and the
 * Non-Blocking critical-metadata update rule. Entries are memory-mapped
 * and programmed once per monitoring application.
 */

#ifndef FADE_CORE_EVENT_TABLE_HH
#define FADE_CORE_EVENT_TABLE_HH

#include <array>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fade
{

/** Number of event table entries (Section 6: 128 entries). */
constexpr unsigned eventTableEntries = 128;

/**
 * Per-operand rule: which operands are evaluated, whether the operand is
 * the memory operand, how many metadata bytes to fetch, the bit mask to
 * extract the relevant bits, and the invariant register a clean check
 * compares against.
 */
struct OperandRule
{
    bool valid = false;
    bool mem = false;
    std::uint8_t mdBytes = 1;
    std::uint8_t mask = 0xff;
    std::uint8_t invId = 0;
};

/**
 * Redundant-update source composition (Fig. 6(b) "RU" field): with one
 * source the source metadata is compared directly to the destination
 * metadata; with two sources they are first composed with OR or AND.
 */
enum class RuOp : std::uint8_t
{
    None,    ///< entry does not perform an RU check
    CopyS1,  ///< compare md(s1) to md(d)
    OrS1S2,  ///< compare md(s1) | md(s2) to md(d)
    AndS1S2, ///< compare md(s1) & md(s2) to md(d)
};

/** How a multi-shot entry combines with the previous check's outcome. */
enum class MsCombine : std::uint8_t
{
    Or,  ///< filtered if previous check or this check passes
    And, ///< filtered only if previous and this check pass
};

/**
 * Non-Blocking critical-metadata update actions (Section 5.2, rules
 * 1-3). Rule 4 (conditional) is expressed by NbRule::conditional below.
 */
enum class NbAction : std::uint8_t
{
    None,     ///< no hardware update (blocking semantics for this event)
    CopyS1,   ///< md(d) = md(s1)
    CopyS2,   ///< md(d) = md(s2)
    Or,       ///< md(d) = md(s1) | md(s2)
    And,      ///< md(d) = md(s1) & md(s2)
    SetConst, ///< md(d) = INV[invId]
};

/** Comparison selecting between actions in a conditional NB rule. */
enum class NbCond : std::uint8_t
{
    S1EqS2,    ///< md(s1) == md(s2)
    S1EqD,     ///< md(s1) == md(d)
    S1EqConst, ///< md(s1) == INV[condInvId]
    S2EqConst, ///< md(s2) == INV[condInvId]
};

/**
 * Non-Blocking update rule attached to an event table entry: the action
 * applied to the destination's critical metadata when the event turns
 * out to be unfilterable. Conditional rules (paper rule 4) evaluate
 * @c cond and pick @c action or @c elseAction.
 */
struct NbRule
{
    NbAction action = NbAction::None;
    std::uint8_t invId = 0; ///< INV register for SetConst
    bool conditional = false;
    NbCond cond = NbCond::S1EqS2;
    std::uint8_t condInvId = 0;
    NbAction elseAction = NbAction::None;
    std::uint8_t elseInvId = 0;
};

/**
 * One 96-bit event table entry (Fig. 6(b)), widened into a convenient
 * in-memory representation. Exactly one of {cc, ru != None} is used per
 * entry; complex conditions chain entries via multiShot/nextEntry.
 *
 * Partial filtering (P bit): the hardware check never fully filters the
 * event; instead its outcome selects the software handler. A passing
 * check dispatches this entry's (short) handlerPc; a failing check
 * dispatches the (complex) handler PC of the entry at nextEntry. This
 * reuses the existing nextEntry field, keeping the entry within its
 * 96-bit budget.
 */
struct EventTableEntry
{
    bool valid = false;

    OperandRule s1, s2, d;

    /** Clean check: compare each valid operand to INV[op.invId]. */
    bool cc = false;

    /** Redundant update: compare composed sources to destination. */
    RuOp ru = RuOp::None;

    /** Multi-shot chaining. */
    bool multiShot = false;
    MsCombine msCombine = MsCombine::Or;
    std::uint8_t nextEntry = 0;

    /** Partial filtering. */
    bool partial = false;

    /** Software handler dispatched for unfiltered events. */
    Addr handlerPc = 0;

    /** Non-Blocking critical metadata update rule. */
    NbRule nb;
};

/**
 * The event table: a small SRAM indexed by event ID in the first
 * pipeline stage.
 */
class EventTable
{
  public:
    /** Install an entry (memory-mapped programming interface). */
    void
    program(unsigned idx, const EventTableEntry &e)
    {
        fatal_if(idx >= eventTableEntries,
                 "event table index ", idx, " out of range");
        entries_[idx] = e;
        entries_[idx].valid = true;
    }

    /** Invalidate an entry. */
    void
    invalidate(unsigned idx)
    {
        fatal_if(idx >= eventTableEntries,
                 "event table index ", idx, " out of range");
        entries_[idx] = EventTableEntry{};
    }

    /** Invalidate all entries (per-application reprogramming). */
    void
    clear()
    {
        entries_.fill(EventTableEntry{});
    }

    const EventTableEntry &
    lookup(unsigned idx) const
    {
        panic_if(idx >= eventTableEntries,
                 "event table lookup out of range");
        return entries_[idx];
    }

    bool
    validAt(unsigned idx) const
    {
        return idx < eventTableEntries && entries_[idx].valid;
    }

    /** Number of valid entries (used by the area model). */
    unsigned
    population() const
    {
        unsigned n = 0;
        for (const auto &e : entries_)
            n += e.valid;
        return n;
    }

  private:
    std::array<EventTableEntry, eventTableEntries> entries_{};
};

} // namespace fade

#endif // FADE_CORE_EVENT_TABLE_HH
