#include "core/fade.hh"

namespace fade
{

Fade::Fade(const FadeParams &p, MonitorContext &ctx, Cache *l2)
    : params_(p),
      ctx_(ctx),
      mdc_(p.mdCache, l2),
      logic_(inv_),
      fsq_(p.fsqEntries),
      suu_(mdc_, ctx.shadow, inv_, p.callInvId, p.retInvId)
{
}

void
Fade::bind(BoundedQueue<MonEvent> *eq, BoundedQueue<UnfilteredEvent> *ueq)
{
    eq_ = eq;
    ueq_ = ueq;
}

bool
Fade::pipelineEmpty() const
{
    return pipeOcc_ == 0;
}

bool
Fade::busy() const
{
    return !pipelineEmpty() || front_ != FrontState::Normal || blocked_ ||
           suu_.busy();
}

bool
Fade::quiesced() const
{
    return !busy() && outstanding_ == 0 && (!eq_ || eq_->empty());
}

void
Fade::popEventInto(MonEvent &dst)
{
    // One copy straight into the destination latch; popRun(1) retires
    // the head with exactly pop()'s accounting.
    const MonEvent &ev = eq_->front();
    if (ev.shard != shardId_)
        ++stats_.crossShardEvents;
    dst = ev;
    eq_->popRun(1);
}

OperandMd
Fade::gatherMd(const EventTableEntry &e, const MonEvent &ev) const
{
    const PipeSlot &mw = stage(SMw);
    OperandMd md;
    auto memRead = [&]() -> std::uint8_t {
        Addr a = mdAddrOf(ev.appAddr);
        if (params_.nonBlocking) {
            // Back-to-back dependence: forward from the Metadata Write
            // latch before it commits to the FSQ (Section 5.2).
            if (mw.valid && mw.nbVal && mw.nbDestIsMem &&
                mdAddrOf(mw.ev.appAddr) == a) {
                return *mw.nbVal;
            }
            // The FSQ is searched in parallel with the MD cache; a
            // matching entry satisfies the dependence (Section 5.2).
            if (!fsq_.empty()) {
                if (auto v = fsq_.lookup(a))
                    return *v;
            }
        }
        return ctx_.shadow.read(a);
    };
    auto regRead = [&](RegIndex r) -> std::uint8_t {
        if (params_.nonBlocking && mw.valid && mw.nbVal &&
            !mw.nbDestIsMem && mw.ev.tid == ev.tid &&
            mw.ev.hasDst && mw.ev.dst == r) {
            return *mw.nbVal;
        }
        return ctx_.regMd.read(ev.tid, r);
    };
    if (e.s1.valid)
        md.s1 = e.s1.mem ? memRead() : regRead(ev.src1);
    if (e.s2.valid)
        md.s2 = e.s2.mem ? memRead() : regRead(ev.src2);
    if (e.d.valid)
        md.d = e.d.mem ? memRead() : regRead(ev.dst);
    return md;
}

unsigned
Fade::mdReadLatency(const EventTableEntry &e, const MonEvent &ev)
{
    bool touchesMem = (e.s1.valid && e.s1.mem) ||
                      (e.s2.valid && e.s2.mem) || (e.d.valid && e.d.mem);
    if (!touchesMem)
        return 1;
    MdAccessResult r = mdc_.accessApp(ev.appAddr, false);
    return r.latency < 1 ? 1 : r.latency;
}

void
Fade::recordSoftwareBound(const MonEvent &ev)
{
    (void)ev;
    stats_.unfDistance.sample(sinceUnfiltered_);
    if (haveBurst_ && sinceUnfiltered_ <= 16) {
        ++curBurst_;
    } else {
        if (haveBurst_)
            stats_.unfBurst.sample(curBurst_);
        curBurst_ = 1;
        haveBurst_ = true;
    }
    sinceUnfiltered_ = 0;
}

void
Fade::finalizeBursts()
{
    if (haveBurst_) {
        stats_.unfBurst.sample(curBurst_);
        haveBurst_ = false;
        curBurst_ = 0;
    }
}

bool
Fade::advanceMw(Cycle now)
{
    (void)now;
    PipeSlot &mw = stage(SMw);
    if (!mw.valid)
        return true;
    if (mw.nbVal) {
        if (mw.nbDestIsMem) {
            if (fsq_.full()) {
                ++stats_.stallFsqFull;
                return false;
            }
            fsq_.push(mdAddrOf(mw.ev.appAddr), *mw.nbVal, mw.ev.seq);
        } else {
            ctx_.regMd.write(mw.ev.tid, mw.ev.dst, *mw.nbVal);
        }
    }
    latchDrain(mw);
    return true;
}

void
Fade::advanceFilter(Cycle now)
{
    (void)now;
    PipeSlot &filt = stage(SFilt);
    if (!filt.valid)
        return;
    if (filt.shotsLeft > 1) {
        --filt.shotsLeft;
        return;
    }

    const FilterOutcome &out = filt.out;
    if (out.filtered) {
        ++stats_.instEvents;
        ++stats_.filtered;
        if (filt.ev.eventId < numCanonicalEvents)
            ++stats_.filteredById[filt.ev.eventId];
        if (out.ccPassed)
            ++stats_.filteredCC;
        else if (out.ruPassed)
            ++stats_.filteredRU;
        ++sinceUnfiltered_;
        latchDrain(filt);
        return;
    }

    // Software processing required: forward through the unfiltered
    // event queue, respecting its backpressure.
    if (ueq_->full()) {
        ++stats_.stallUeqFull;
        return;
    }

    UnfilteredEvent *u = ueq_->pushSlot();
    u->ev = filt.ev;
    u->handlerPc = out.handlerPc;
    u->checkPassed = out.checkPassed;
    u->hwChecked = true;
    ++outstanding_;

    ++stats_.instEvents;
    if (filt.ev.eventId < numCanonicalEvents)
        ++stats_.softwareById[filt.ev.eventId];
    if (out.partial) {
        if (out.checkPassed)
            ++stats_.partialPass;
        else
            ++stats_.partialFail;
    } else {
        ++stats_.unfiltered;
    }
    recordSoftwareBound(filt.ev);

    if (params_.nonBlocking) {
        const EventTableEntry &e = table_.lookup(filt.ev.eventId);
        auto val = computeMdUpdate(e.nb, filt.md, inv_);
        if (val) {
            // MW latch takes the event: swap the (invalid) MW slot in
            // under FILTER instead of copying the payload across. The
            // moved slot keeps valid == true, the vacated one keeps
            // false — occupancy is unchanged by construction.
            shift(SFilt, SMw);
            PipeSlot &mw = stage(SMw);
            mw.nbVal = val;
            mw.nbDestIsMem = e.d.valid && e.d.mem;
            return;
        }
    } else {
        blocked_ = true;
        blockedSeq_ = filt.ev.seq;
    }
    latchDrain(filt);
}

void
Fade::advanceMdr(Cycle now)
{
    if (!stage(SMdr).valid || stage(SFilt).valid ||
        now < stage(SMdr).readyAt)
        return;
    // The event moves MDR -> FILTER by index swap; the vacated MDR
    // stage inherits the invalid slot FILTER held.
    shift(SMdr, SFilt);
    PipeSlot &filt = stage(SFilt);
    const EventTableEntry &e = table_.lookup(filt.ev.eventId);
    // Metadata is (re)gathered on Filter entry: this models the
    // MW-to-Filter forwarding path for back-to-back dependences.
    filt.md = gatherMd(e, filt.ev);
    filt.out = logic_.evaluate(table_, filt.ev.eventId, filt.md);
    filt.shotsLeft = filt.out.shots;
    stats_.shots += filt.out.shots;
    stats_.comparisons += filt.out.blocksUsed;
    // The swapped-in slot is already valid; occupancy unchanged.
}

void
Fade::advanceCtrl()
{
    if (!stage(SCtrl).valid || stage(SMdr).valid)
        return;
    shift(SCtrl, SMdr);
}

void
Fade::advanceEtr()
{
    if (!stage(SEtr).valid || stage(SCtrl).valid)
        return;
    shift(SEtr, SCtrl);
}

void
Fade::frontEnd(Cycle now)
{
    switch (front_) {
      case FrontState::Normal: {
        if (!eq_ || eq_->empty())
            return;
        const MonEvent &head = eq_->front();
        if (head.isInst()) {
            PipeSlot &etr = stage(SEtr);
            if (etr.valid)
                return;
            fatal_if(!table_.validAt(head.eventId),
                     "monitored event id ", unsigned(head.eventId),
                     " has no event table entry");
            // No full-slot reset: every other latch field is written
            // on stage entry before it is read (md/out/shotsLeft at
            // FILTER, nbVal/nbDestIsMem on the MW hand-off), and
            // readyAt is never written anywhere, so it stays at its
            // constructed 0.
            popEventInto(etr.ev);
            latchFill(etr);
        } else if (head.isStackUpdate()) {
            popEventInto(pendingFront_);
            ++stats_.stackEvents;
            front_ = FrontState::WaitDrainStack;
        } else {
            // High-level event (malloc/free/taint source): handled in
            // software. Order is preserved against in-flight
            // instruction events by waiting for the pipe to empty.
            if (params_.drainOnHighLevel) {
                popEventInto(pendingFront_);
                front_ = FrontState::WaitDrainHigh;
                return;
            }
            if (!pipelineEmpty()) {
                ++stats_.stallDrain;
                return;
            }
            if (ueq_->full()) {
                ++stats_.stallUeqFull;
                return;
            }
            UnfilteredEvent u;
            popEventInto(u.ev);
            ueq_->push(u);
            ++outstanding_;
            ++stats_.highLevelEvents;
            recordSoftwareBound(u.ev);
        }
        break;
      }
      case FrontState::WaitDrainStack: {
        // Pending unfiltered events may reference stack-frame metadata:
        // the unfiltered event queue must be drained (and outstanding
        // handlers completed) before the SUU runs (Section 5.2).
        if (!pipelineEmpty() || !ueq_->empty() || outstanding_ > 0) {
            ++stats_.stallDrain;
            return;
        }
        if (onStackUpdate)
            onStackUpdate(pendingFront_);
        suu_.start(pendingFront_.appAddr, pendingFront_.len,
                   pendingFront_.kind == EventKind::StackCall);
        front_ = FrontState::SuuActive;
        (void)now;
        break;
      }
      case FrontState::WaitDrainHigh: {
        if (!pipelineEmpty() || !ueq_->empty() || outstanding_ > 0) {
            ++stats_.stallDrain;
            return;
        }
        UnfilteredEvent u;
        u.ev = pendingFront_;
        ueq_->push(u);
        ++outstanding_;
        ++stats_.highLevelEvents;
        recordSoftwareBound(u.ev);
        front_ = FrontState::WaitHighDone;
        break;
      }
      case FrontState::WaitHighDone: {
        // Subsequent events may depend on the bulk metadata the
        // high-level handler writes (e.g., a taint source tainting a
        // buffer): filtering resumes only once it completes, so no
        // event is wrongly filtered against stale metadata.
        if (outstanding_ > 0) {
            ++stats_.stallDrain;
            return;
        }
        front_ = FrontState::Normal;
        break;
      }
      case FrontState::SuuActive:
        // Handled in tick().
        break;
    }
}

void
Fade::tick(Cycle now)
{
    bool active = !pipelineEmpty() || front_ != FrontState::Normal ||
                  blocked_ || suu_.busy() || (eq_ && !eq_->empty());
    if (!active) {
        // Fully idle: every latch invalid, front quiet, no queued work
        // — the stage advances and the front end would all no-op.
        ++stats_.idleCycles;
        return;
    }
    ++stats_.busyCycles;

    if (front_ == FrontState::SuuActive) {
        // Filtering is stopped while the SUU sets frame metadata.
        ++stats_.suuCycles;
        suu_.tick();
        if (!suu_.busy())
            front_ = FrontState::Normal;
        return;
    }

    if (blocked_) {
        // Baseline (blocking) FADE: filtering stalls until the software
        // handler of the unfiltered event completes.
        ++stats_.stallBlocking;
        return;
    }

    if (!advanceMw(now))
        return;
    advanceFilter(now);
    advanceMdr(now);
    advanceCtrl();
    advanceEtr();
    frontEnd(now);
}

bool
Fade::frontFrozen() const
{
    // frontEnd() in FrontState::Normal acts unless the event queue is
    // empty or its head is an instruction event with the ETR latch
    // already occupied. (Stack-update and high-level heads are popped
    // regardless of pipeline occupancy.)
    if (!eq_ || eq_->empty())
        return true;
    return eq_->front().isInst() && stage(SEtr).valid;
}

bool
Fade::frontInert(bool *drains) const
{
    // Would frontEnd() take no state-changing action this cycle, given
    // that at least one pipeline latch is occupied? Sets @p drains when
    // the inert front end still counts a drain-stall cycle.
    *drains = false;
    switch (front_) {
      case FrontState::Normal:
        return frontFrozen();
      case FrontState::WaitDrainStack:
      case FrontState::WaitDrainHigh:
        // A non-empty pipeline keeps the drain pending: stall counted,
        // nothing popped.
        *drains = true;
        return true;
      case FrontState::WaitHighDone:
        if (outstanding_ > 0) {
            *drains = true;
            return true;
        }
        return false; // transitions back to Normal: a state change
      case FrontState::SuuActive:
        return false; // handled before the pipeline advances
    }
    return false;
}

FadeStallProfile
Fade::stallProfile(Cycle now) const
{
    FadeStallProfile p;
    bool act = !pipelineEmpty() || front_ != FrontState::Normal ||
               blocked_ || suu_.busy() || (eq_ && !eq_->empty());
    if (!act) {
        // Fully idle: tick() only counts an idle cycle; an event-queue
        // push (application core) is the only wake-up.
        p.active = false;
        p.idle = true;
        return p;
    }
    p.busy = true;
    if (front_ == FrontState::SuuActive)
        return p; // the SUU issues a block write (or counts down) every
                  // cycle; treat as active
    if (blocked_) {
        // Baseline (blocking) FADE waiting on a software handler: tick
        // returns right after the stall accounting.
        p.active = false;
        p.blocking = true;
        return p;
    }
    const PipeSlot &mw = stage(SMw);
    const PipeSlot &filt = stage(SFilt);
    const PipeSlot &mdr = stage(SMdr);
    if (mw.valid) {
        if (mw.nbVal && mw.nbDestIsMem && fsq_.full()) {
            // MW stalled on a full FSQ: tick returns after the stall
            // count; released by handlerDone() (monitor side).
            p.active = false;
            p.fsqFull = true;
            return p;
        }
        return p; // MW commits this cycle
    }
    if (filt.valid) {
        bool drains = false;
        if (filt.shotsLeft <= 1 && !filt.out.filtered && ueq_ &&
            ueq_->full() && mdr.valid && stage(SCtrl).valid &&
            stage(SEtr).valid && frontInert(&drains)) {
            // Software-bound event stalled on UEQ backpressure with
            // every stage behind it occupied: nothing moves until the
            // monitor pops the UEQ.
            p.active = false;
            p.ueqFull = true;
            p.drain = drains;
            return p;
        }
        return p;
    }
    if (mdr.valid) {
        bool drains = false;
        if (mdr.readyAt > now && !(stage(SEtr).valid &&
                                   !stage(SCtrl).valid) &&
            frontInert(&drains)) {
            // Metadata read in flight (MD-cache miss latency), stages
            // behind it unable to move: pure wait until readyAt.
            p.active = false;
            p.wakeAt = mdr.readyAt;
            p.drain = drains;
            return p;
        }
        return p;
    }
    if (stage(SCtrl).valid || stage(SEtr).valid)
        return p; // latches advance by index swap
    // Pipeline empty; either the front end has queued work or it is
    // draining around a stack update / high-level event.
    switch (front_) {
      case FrontState::Normal:
        return p; // eq non-empty (else !act above): head gets popped
      case FrontState::WaitDrainStack:
      case FrontState::WaitDrainHigh:
        if ((ueq_ && !ueq_->empty()) || outstanding_ > 0) {
            p.active = false;
            p.drain = true;
            return p;
        }
        return p;
      case FrontState::WaitHighDone:
        if (outstanding_ > 0) {
            p.active = false;
            p.drain = true;
            return p;
        }
        return p;
      case FrontState::SuuActive:
        return p; // unreachable (handled above)
    }
    return p;
}

void
Fade::skipCycles(const FadeStallProfile &p, std::uint64_t n)
{
    if (p.busy)
        stats_.busyCycles += n;
    if (p.idle)
        stats_.idleCycles += n;
    if (p.ueqFull)
        stats_.stallUeqFull += n;
    if (p.blocking)
        stats_.stallBlocking += n;
    if (p.drain)
        stats_.stallDrain += n;
    if (p.fsqFull)
        stats_.stallFsqFull += n;
}

RunGrainEventOutcome
Fade::processEventRunGrain(const MonEvent &ev)
{
    // Eager-serialized traversal: the pipeline latches are empty and
    // no handler is outstanding (driver invariant), so every metadata
    // gather reads the canonical stores directly — which is exactly
    // the value the MW-latch / FSQ forwarding paths would supply,
    // since the in-flight updates they forward have already been
    // applied by the time this event is processed.
    panic_if(pipeOcc_ != 0 || front_ != FrontState::Normal,
             "run-grain event processing with the pipeline in flight");
    RunGrainEventOutcome o;
    if (ev.shard != shardId_)
        ++stats_.crossShardEvents;

    if (ev.isStackUpdate()) {
        o.kind = RunGrainEventOutcome::Kind::Stack;
        o.serialize = true;
        ++stats_.stackEvents;
        if (onStackUpdate)
            onStackUpdate(ev);
        suu_.start(ev.appAddr, ev.len,
                   ev.kind == EventKind::StackCall);
        unsigned cycles = 0;
        while (suu_.busy()) {
            suu_.tick();
            ++cycles;
        }
        o.suuCycles = cycles;
        stats_.suuCycles += cycles;
        return o;
    }

    if (!ev.isInst()) {
        // High-level / sync event: always software. With
        // drainOnHighLevel the unit additionally holds filtering until
        // the handler completes (the serialize flag; the order itself
        // is already preserved by the eager-serialized discipline).
        o.kind = RunGrainEventOutcome::Kind::HighLevel;
        o.software = true;
        o.serialize = params_.drainOnHighLevel;
        UnfilteredEvent *u = ueq_->pushSlot();
        panic_if(!u, "run-grain UEQ push rejected");
        *u = UnfilteredEvent{};
        u->ev = ev;
        ++outstanding_;
        ++stats_.highLevelEvents;
        recordSoftwareBound(ev);
        return o;
    }

    fatal_if(!table_.validAt(ev.eventId),
             "monitored event id ", unsigned(ev.eventId),
             " has no event table entry");
    const EventTableEntry &e = table_.lookup(ev.eventId);
    OperandMd md = gatherMd(e, ev);
    FilterOutcome out = logic_.evaluate(table_, ev.eventId, md);
    o.shots = out.shots;
    stats_.shots += out.shots;
    stats_.comparisons += out.blocksUsed;
    ++stats_.instEvents;

    if (out.filtered) {
        ++stats_.filtered;
        if (ev.eventId < numCanonicalEvents)
            ++stats_.filteredById[ev.eventId];
        if (out.ccPassed)
            ++stats_.filteredCC;
        else if (out.ruPassed)
            ++stats_.filteredRU;
        ++sinceUnfiltered_;
        return o;
    }

    o.software = true;
    UnfilteredEvent *u = ueq_->pushSlot();
    panic_if(!u, "run-grain UEQ push rejected");
    u->ev = ev;
    u->handlerPc = out.handlerPc;
    u->checkPassed = out.checkPassed;
    u->hwChecked = true;
    ++outstanding_;
    if (ev.eventId < numCanonicalEvents)
        ++stats_.softwareById[ev.eventId];
    if (out.partial) {
        if (out.checkPassed)
            ++stats_.partialPass;
        else
            ++stats_.partialFail;
    } else {
        ++stats_.unfiltered;
    }
    recordSoftwareBound(ev);

    if (params_.nonBlocking) {
        auto val = computeMdUpdate(e.nb, md, inv_);
        if (val) {
            if (e.d.valid && e.d.mem)
                fsq_.push(mdAddrOf(ev.appAddr), *val, ev.seq);
            else
                ctx_.regMd.write(ev.tid, ev.dst, *val);
        }
    } else {
        // Baseline blocking FADE: filtering stalls until the handler
        // completes. The stall itself lives in the engine's timing
        // model; functionally the handler runs next anyway.
        o.serialize = true;
    }
    return o;
}

void
Fade::handlerDone(std::uint64_t seq)
{
    panic_if(outstanding_ == 0, "handlerDone with no outstanding handler");
    --outstanding_;
    fsq_.release(seq);
    if (blocked_ && seq == blockedSeq_)
        blocked_ = false;
}

void
Fade::resetStats()
{
    stats_ = FadeStats{};
    sinceUnfiltered_ = 0;
    curBurst_ = 0;
    haveBurst_ = false;
    mdc_.resetStats();
    suu_.resetStats();
}

} // namespace fade
