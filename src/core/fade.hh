/**
 * @file
 * FADE: the Filtering Accelerator for Decoupled Event processing — the
 * paper's primary contribution. Combines the Filtering Unit pipeline
 * (Fig. 5: Event Table Read, Control, Metadata Read, Filter, plus the
 * Metadata Write stage for Non-Blocking filtering), the Stack-Update
 * Unit, the MD cache with its M-TLB, the filter store queue, and the
 * invariant/metadata register files.
 *
 * FADE dequeues one event per cycle from the event queue, evaluates the
 * programmable filtering rules, and either retires the event (filtered)
 * or forwards it to the unfiltered event queue for software processing.
 * In blocking mode the pipeline stalls from any unfiltered event until
 * its handler completes; in Non-Blocking mode the MD update logic
 * commits the critical metadata in hardware and filtering continues.
 */

#ifndef FADE_CORE_FADE_HH
#define FADE_CORE_FADE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "core/event_table.hh"
#include "core/filter_logic.hh"
#include "core/fsq.hh"
#include "core/md_update.hh"
#include "core/regfiles.hh"
#include "core/suu.hh"
#include "isa/event.hh"
#include "mem/mdcache.hh"
#include "monitor/context.hh"
#include "sim/queue.hh"
#include "sim/stats.hh"

namespace fade
{

/** Configuration of one FADE instance. */
struct FadeParams
{
    /** Non-Blocking filtering (Section 5); false = baseline FADE. */
    bool nonBlocking = true;
    /** Filter store queue capacity. */
    std::size_t fsqEntries = 16;
    /** MD cache / M-TLB geometry. */
    MdCacheParams mdCache;
    /** INV register holding the bulk value written on function calls. */
    unsigned callInvId = 6;
    /** INV register holding the bulk value written on returns. */
    unsigned retInvId = 7;
    /**
     * Drain in-flight work around high-level events (malloc / free /
     * taint source) and hold filtering until their handler completes.
     * Required for soundness: a taint source's bulk metadata update
     * must be visible before subsequent dependent events are filtered.
     * High-level events are rare (Section 3.3), so the cost is small;
     * the flag exists for the ablation study.
     */
    bool drainOnHighLevel = true;
};

/** Counters and distributions collected by one FADE instance. */
struct FadeStats
{
    std::uint64_t instEvents = 0;
    std::uint64_t filtered = 0;       ///< fully filtered (no software)
    std::uint64_t filteredCC = 0;     ///< attributed to clean checks
    std::uint64_t filteredRU = 0;     ///< attributed to redundant updates
    std::uint64_t partialPass = 0;    ///< partial check passed (short PC)
    std::uint64_t partialFail = 0;    ///< partial check failed (long PC)
    std::uint64_t unfiltered = 0;     ///< full software handler needed
    std::uint64_t stackEvents = 0;
    std::uint64_t highLevelEvents = 0;
    std::uint64_t shots = 0;          ///< filter-stage evaluation cycles
    std::uint64_t comparisons = 0;    ///< comparison blocks engaged

    /** Events dequeued whose shard tag differs from this instance's
     *  shard (must stay 0; nonzero means broken shard routing). */
    std::uint64_t crossShardEvents = 0;

    std::uint64_t stallUeqFull = 0;   ///< cycles stalled: UEQ backpressure
    std::uint64_t stallBlocking = 0;  ///< cycles stalled: blocking mode
    std::uint64_t stallDrain = 0;     ///< cycles waiting for drains
    std::uint64_t stallMdRead = 0;    ///< extra MDR cycles (MD misses)
    std::uint64_t stallFsqFull = 0;   ///< cycles stalled: FSQ full
    std::uint64_t suuCycles = 0;      ///< cycles the SUU owned the unit
    std::uint64_t busyCycles = 0;
    std::uint64_t idleCycles = 0;

    /** Distance (in filterable events) between software-bound events. */
    Log2Histogram unfDistance;
    /** Unfiltered burst sizes under the paper's <=16-distance rule. */
    Log2Histogram unfBurst;

    /** Per-event-ID outcome counters (analysis / debugging). */
    std::array<std::uint64_t, numCanonicalEvents> filteredById{};
    std::array<std::uint64_t, numCanonicalEvents> softwareById{};

    /**
     * Fraction of instruction-event handlers elided by hardware: fully
     * filtered events plus partial-filtering events whose check passed
     * (the full handler is replaced by the short update handler).
     */
    double
    filteringRatio() const
    {
        if (instEvents == 0)
            return 0.0;
        return static_cast<double>(filtered + partialPass) / instEvents;
    }

    /** Accumulate another instance's counters (multi-core rollups). */
    void
    merge(const FadeStats &o)
    {
        instEvents += o.instEvents;
        filtered += o.filtered;
        filteredCC += o.filteredCC;
        filteredRU += o.filteredRU;
        partialPass += o.partialPass;
        partialFail += o.partialFail;
        unfiltered += o.unfiltered;
        stackEvents += o.stackEvents;
        highLevelEvents += o.highLevelEvents;
        shots += o.shots;
        comparisons += o.comparisons;
        crossShardEvents += o.crossShardEvents;
        stallUeqFull += o.stallUeqFull;
        stallBlocking += o.stallBlocking;
        stallDrain += o.stallDrain;
        stallMdRead += o.stallMdRead;
        stallFsqFull += o.stallFsqFull;
        suuCycles += o.suuCycles;
        busyCycles += o.busyCycles;
        idleCycles += o.idleCycles;
        unfDistance.merge(o.unfDistance);
        unfBurst.merge(o.unfBurst);
        for (unsigned i = 0; i < numCanonicalEvents; ++i) {
            filteredById[i] += o.filteredById[i];
            softwareById[i] += o.softwareById[i];
        }
    }
};

/**
 * Batched-engine stall assessment of one FADE instance at one cycle
 * (system/pipeline.hh). When active is false, tick() is guaranteed to
 * change nothing but the flagged per-cycle counters until wakeAt (or
 * until an external input — queues, handler completions — changes),
 * so the driver may replace the ticks of a frozen span by one
 * skipCycles() call.
 */
struct FadeStallProfile
{
    /** tick() must run this cycle (it would change machine state). */
    bool active = true;
    /** First cycle the unit wakes by itself; invalidCycle = only an
     *  external change can wake it. */
    Cycle wakeAt = invalidCycle;
    /** Counters tick() would bump once per skipped cycle. */
    bool busy = false;
    bool idle = false;
    bool ueqFull = false;
    bool blocking = false;
    bool drain = false;
    bool fsqFull = false;
};

/**
 * What the run-grain engine (system/rungrain.hh) needs to know about
 * one event it just processed functionally: its class, how long the
 * Filter stage holds it (multi-shot evaluations), how long the SUU
 * owns the unit (stack updates), and whether a software handler was
 * forwarded. The engine folds these into its closed-form filter
 * pipeline algebra; every functional effect (verdict counters, UEQ
 * forward, metadata update, SUU writes) has already been applied.
 */
struct RunGrainEventOutcome
{
    enum class Kind : std::uint8_t { Inst, Stack, HighLevel };
    Kind kind = Kind::Inst;
    /** Filter-stage occupancy in cycles (instruction events). */
    unsigned shots = 0;
    /** Cycles the SUU owned the unit (stack updates). */
    unsigned suuCycles = 0;
    /** Event was forwarded to the UEQ for software processing. */
    bool software = false;
    /** Filtering must wait for the handler / the SUU before the next
     *  event (blocking mode, stack updates, drained high-level
     *  events). */
    bool serialize = false;
};

/**
 * The accelerator. The owning system binds the two decoupling queues,
 * ticks FADE once per cycle, and reports software handler completions
 * via handlerDone().
 */
class Fade
{
  public:
    /**
     * @param p    configuration
     * @param ctx  canonical metadata state shared with the monitor
     * @param l2   next memory level behind the MD cache (may be null)
     */
    Fade(const FadeParams &p, MonitorContext &ctx, Cache *l2);

    /** Non-copyable/movable: the stage pointers (at_) alias the
     *  instance's own latch storage. */
    Fade(const Fade &) = delete;
    Fade &operator=(const Fade &) = delete;

    /** Attach the event queue and the unfiltered event queue. */
    void bind(BoundedQueue<MonEvent> *eq,
              BoundedQueue<UnfilteredEvent> *ueq);

    /** Programming interfaces (memory-mapped in hardware). */
    EventTable &eventTable() { return table_; }
    InvRegFile &invRf() { return inv_; }
    MdCache &mdCache() { return mdc_; }
    const FilterStoreQueue &fsq() const { return fsq_; }
    StackUpdateUnit &suu() { return suu_; }
    const FadeParams &params() const { return params_; }

    /** Home shard of this instance (sharded multi-core systems). */
    void setShard(std::uint8_t s) { shardId_ = s; }
    std::uint8_t shard() const { return shardId_; }

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Would tick(@p now) do anything beyond the per-cycle accounting a
     * stall profile describes? Pure (no state change, no queue access
     * beyond peeking); see FadeStallProfile for the contract.
     */
    FadeStallProfile stallProfile(Cycle now) const;

    /**
     * Apply the per-cycle counters of @p p for @p n skipped cycles.
     * Only legal when stallProfile() returned @p p with active ==
     * false and no external input changed during the span.
     */
    void skipCycles(const FadeStallProfile &p, std::uint64_t n);

    /**
     * Run-grain engine (Engine::RunGrain): process @p ev functionally,
     * end to end, without ticking the pipeline — the eager-serialized
     * counterpart of one event's full traversal. Applies exactly the
     * functional effects and verdict/distribution counters the
     * per-cycle path applies (table lookup, metadata gather, filter
     * evaluation, NB metadata update / FSQ push, UEQ forward, SUU
     * writes, onStackUpdate bookkeeping) and returns the stage-time
     * inputs for the engine's timing algebra. Legal only with the
     * pipeline latches empty and at most one software handler in
     * flight, which the eager-serialized driver guarantees; the
     * caller runs the forwarded handler to completion (handlerDone())
     * before the next call, so metadata gathers observe exactly the
     * values the per-cycle forwarding paths (MW latch, FSQ) would
     * forward.
     */
    RunGrainEventOutcome processEventRunGrain(const MonEvent &ev);

    /** Run-grain engine: batch-apply modeled busy/idle unit cycles. */
    void
    runGrainAccountCycles(std::uint64_t busy, std::uint64_t idle)
    {
        stats_.busyCycles += busy;
        stats_.idleCycles += idle;
    }

    /** Software completed the handler of the event with @p seq. */
    void handlerDone(std::uint64_t seq);

    /** Anything in flight inside the accelerator? */
    bool busy() const;

    /** No in-flight events and no outstanding software handlers. */
    bool quiesced() const;

    std::uint64_t outstandingHandlers() const { return outstanding_; }

    /** Close out the trailing unfiltered burst at end of measurement. */
    void finalizeBursts();

    /**
     * Invoked when the SUU begins processing a stack-update event (the
     * unit has fully drained at this point). The owning system uses it
     * to apply the monitor's non-critical bookkeeping for the frame
     * (the critical metadata itself is written by the SUU hardware).
     */
    std::function<void(const MonEvent &)> onStackUpdate;

    const FadeStats &stats() const { return stats_; }
    void resetStats();

  private:
    /** One pipeline latch. */
    struct PipeSlot
    {
        bool valid = false;
        MonEvent ev;
        /** MDR: cycle the metadata read completes. */
        Cycle readyAt = 0;
        /** FILTER: remaining multi-shot cycles. */
        unsigned shotsLeft = 0;
        /** FILTER: evaluation result (computed on stage entry). */
        FilterOutcome out;
        OperandMd md;
        /** MW: pending non-blocking update. */
        std::optional<std::uint8_t> nbVal;
        bool nbDestIsMem = false;
    };

    /**
     * Stage names of the filtering unit pipeline (Fig. 5). Latches are
     * index-latched: each stage holds an index into slots_, and a
     * pipeline step advances an event by swapping two stage indices
     * instead of copying the latch payload forward (the vacated stage
     * inherits the invalid slot the destination stage held). The
     * reference transition "dst = src; src.valid = false" is exactly an
     * index swap whenever the destination slot is invalid — which every
     * advance guarantees before it fires.
     */
    enum StageIdx : std::uint8_t
    {
        SEtr = 0,  ///< Event Table Read
        SCtrl = 1, ///< Control
        SMdr = 2,  ///< Metadata Read
        SFilt = 3, ///< Filter
        SMw = 4,   ///< Metadata Write (Non-Blocking mode)
        numStages = 5,
    };

    PipeSlot &stage(StageIdx s) { return *at_[s]; }
    const PipeSlot &stage(StageIdx s) const { return *at_[s]; }

    /** Move the (valid) event in @p from into the (invalid) @p to
     *  latch: the index-latched equivalent of "to = from; from.valid =
     *  false". Occupancy is untouched — the event only changed stages. */
    void
    shift(StageIdx from, StageIdx to)
    {
        std::swap(at_[from], at_[to]);
    }

    /** An event entered the pipeline (a latch turned valid). */
    void
    latchFill(PipeSlot &s)
    {
        s.valid = true;
        ++pipeOcc_;
    }

    /** An event left the pipeline (a latch turned invalid). */
    void
    latchDrain(PipeSlot &s)
    {
        s.valid = false;
        --pipeOcc_;
    }

    /** Front-end state for stack updates and high-level events. */
    enum class FrontState : std::uint8_t
    {
        Normal,
        WaitDrainStack, ///< draining for a pending stack update
        WaitDrainHigh,  ///< draining for a pending high-level event
        WaitHighDone,   ///< waiting for the high-level handler to finish
        SuuActive,      ///< SUU owns the unit
    };

    bool pipelineEmpty() const;
    /** Front end provably takes no action this cycle (stall profile). */
    bool frontFrozen() const;
    /** frontFrozen() generalized over non-Normal front states; sets
     *  @p drains when the inert front still counts a drain stall. */
    bool frontInert(bool *drains) const;
    /** Dequeue the event-queue head into @p dst, checking its shard
     *  tag (single copy; accounting identical to pop()). */
    void popEventInto(MonEvent &dst);
    std::uint8_t readOperandMd(const OperandRule &rule, bool isDest,
                               const MonEvent &ev) const;
    OperandMd gatherMd(const EventTableEntry &e, const MonEvent &ev) const;
    unsigned mdReadLatency(const EventTableEntry &e, const MonEvent &ev);
    void recordSoftwareBound(const MonEvent &ev);
    void noteFiltered(const FilterOutcome &out);
    bool advanceMw(Cycle now);
    void advanceFilter(Cycle now);
    void advanceMdr(Cycle now);
    void advanceCtrl();
    void advanceEtr();
    void frontEnd(Cycle now);

    FadeParams params_;
    MonitorContext &ctx_;

    EventTable table_;
    InvRegFile inv_;
    MdCache mdc_;
    FilterLogic logic_;
    FilterStoreQueue fsq_;
    StackUpdateUnit suu_;

    BoundedQueue<MonEvent> *eq_ = nullptr;
    BoundedQueue<UnfilteredEvent> *ueq_ = nullptr;

    /** Latch storage + per-stage slot pointers (see StageIdx). */
    std::array<PipeSlot, numStages> slots_;
    std::array<PipeSlot *, numStages> at_{&slots_[0], &slots_[1],
                                          &slots_[2], &slots_[3],
                                          &slots_[4]};
    /** Number of valid latches (kept in lockstep with the valid flags
     *  by latchFill/latchDrain: pipelineEmpty is one compare). */
    unsigned pipeOcc_ = 0;

    FrontState front_ = FrontState::Normal;
    MonEvent pendingFront_;
    std::uint8_t shardId_ = 0;

    bool blocked_ = false;
    std::uint64_t blockedSeq_ = 0;
    std::uint64_t outstanding_ = 0;

    /** Filterable events since the last software-bound event. */
    std::uint64_t sinceUnfiltered_ = 0;
    std::uint64_t curBurst_ = 0;
    bool haveBurst_ = false;

    FadeStats stats_;
};

} // namespace fade

#endif // FADE_CORE_FADE_HH
