#include "core/filter_logic.hh"

namespace fade
{

ShotResult
FilterLogic::evaluateShot(const EventTableEntry &e,
                          const OperandMd &md) const
{
    ShotResult r;

    if (e.cc) {
        // Clean check: every valid operand's (masked) metadata must
        // match its invariant register. Up to three blocks engage, one
        // per operand (the most complex single-shot condition of
        // Fig. 7: three operands against three different invariants).
        bool pass = true;
        auto check = [&](const OperandRule &op, std::uint8_t v) {
            if (!op.valid)
                return;
            ++r.blocksUsed;
            if ((v & op.mask) != (inv_.read(op.invId) & op.mask))
                pass = false;
        };
        check(e.s1, md.s1);
        check(e.s2, md.s2);
        check(e.d, md.d);
        r.pass = pass && r.blocksUsed > 0;
        return r;
    }

    if (e.ru != RuOp::None) {
        // Redundant update: compose the source metadata and compare to
        // the destination; a match means the software update would
        // leave the metadata unchanged.
        std::uint8_t src = md.s1 & e.s1.mask;
        switch (e.ru) {
          case RuOp::CopyS1:
            break;
          case RuOp::OrS1S2:
            src = (md.s1 & e.s1.mask) | (md.s2 & e.s2.mask);
            break;
          case RuOp::AndS1S2:
            src = (md.s1 & e.s1.mask) & (md.s2 & e.s2.mask);
            break;
          default:
            break;
        }
        r.blocksUsed = 1;
        r.pass = src == (md.d & e.d.mask);
        return r;
    }

    // Entry with neither CC nor RU: never filters (pure dispatch).
    r.pass = false;
    return r;
}

FilterOutcome
FilterLogic::evaluate(const EventTable &table, std::uint8_t firstIdx,
                      const OperandMd &md) const
{
    FilterOutcome out;

    panic_if(!table.validAt(firstIdx),
             "filter evaluation on invalid event table entry ",
             unsigned(firstIdx));

    const EventTableEntry *e = &table.lookup(firstIdx);
    panic_if(e->partial && e->multiShot,
             "entry ", unsigned(firstIdx),
             ": partial entries terminate chains (nextEntry selects the"
             " alternate handler PC)");

    ShotResult shot = evaluateShot(*e, md);
    bool outcome = shot.pass;
    out.shots = 1;
    out.blocksUsed = shot.blocksUsed;
    out.ccPassed = shot.pass && e->cc;
    out.ruPassed = shot.pass && e->ru != RuOp::None;

    // Multi-shot: one additional cycle per chained entry; the chaining
    // register carries the running outcome into the next shot's mux.
    while (e->multiShot) {
        std::uint8_t next = e->nextEntry;
        panic_if(!table.validAt(next),
                 "multi-shot chain points at invalid entry ",
                 unsigned(next));
        panic_if(out.shots > eventTableEntries,
                 "multi-shot chain does not terminate");
        // Early termination: once the running outcome is absorbing for
        // every remaining link (true through OR links, false through
        // AND links), further shots cannot change it and the hardware
        // resolves immediately. This keeps the common case — a clean
        // check that passes on the first shot — at one event per cycle.
        bool absorbing = true;
        for (const EventTableEntry *scan = e; scan->multiShot;) {
            const EventTableEntry &link = table.lookup(scan->nextEntry);
            MsCombine c = link.msCombine;
            if ((outcome && c != MsCombine::Or) ||
                (!outcome && c != MsCombine::And)) {
                absorbing = false;
                break;
            }
            scan = &link;
        }
        if (absorbing)
            break;
        e = &table.lookup(next);
        shot = evaluateShot(*e, md);
        outcome = e->msCombine == MsCombine::Or ? (outcome || shot.pass)
                                                : (outcome && shot.pass);
        out.ccPassed = out.ccPassed || (shot.pass && e->cc);
        out.ruPassed = out.ruPassed || (shot.pass && e->ru != RuOp::None);
        ++out.shots;
        out.blocksUsed += shot.blocksUsed;
    }

    const EventTableEntry &first = table.lookup(firstIdx);
    if (first.partial) {
        // Partial filtering: the event always reaches software; the
        // check outcome selects between the short handler (this entry)
        // and the complex handler (the entry named by nextEntry).
        out.partial = true;
        out.checkPassed = outcome;
        out.filtered = false;
        if (outcome) {
            out.handlerPc = first.handlerPc;
        } else {
            panic_if(!table.validAt(first.nextEntry),
                     "partial entry's alternate handler entry invalid");
            out.handlerPc = table.lookup(first.nextEntry).handlerPc;
        }
        return out;
    }

    out.checkPassed = outcome;
    out.filtered = outcome;
    out.handlerPc = first.handlerPc;
    return out;
}

} // namespace fade
