/**
 * @file
 * The filter logic of the Filter stage (Fig. 7 of the paper): three
 * identical two-operand comparison blocks (f1, f2, f3), each comparing
 * one event operand's metadata to another operand or to an invariant,
 * plus the multi-shot chaining register and mux. Pure combinational
 * model; the pipeline charges one cycle per shot.
 */

#ifndef FADE_CORE_FILTER_LOGIC_HH
#define FADE_CORE_FILTER_LOGIC_HH

#include <cstdint>

#include "core/event_table.hh"
#include "core/regfiles.hh"

namespace fade
{

/** Metadata values of the (up to three) event operands. */
struct OperandMd
{
    std::uint8_t s1 = 0;
    std::uint8_t s2 = 0;
    std::uint8_t d = 0;
};

/** Result of evaluating one event table entry (one shot). */
struct ShotResult
{
    bool pass = false;
    /** Comparison blocks engaged (1..3), for the energy model. */
    unsigned blocksUsed = 0;
};

/** Final outcome of (possibly multi-shot) filter evaluation. */
struct FilterOutcome
{
    /** Event requires no software handler (fully filtered). */
    bool filtered = false;
    /** Entry was a partial-filtering entry. */
    bool partial = false;
    /** Hardware check passed (selects the short handler for partial). */
    bool checkPassed = false;
    /** Handler PC dispatched when the event reaches software. */
    Addr handlerPc = 0;
    /** Cycles spent in the Filter stage (one per shot). */
    unsigned shots = 1;
    /** Total comparison blocks engaged across shots. */
    unsigned blocksUsed = 0;
    /** A clean-check entry passed somewhere in the chain. */
    bool ccPassed = false;
    /** A redundant-update entry passed somewhere in the chain. */
    bool ruPassed = false;
};

/**
 * Combinational filter logic. Holds a reference to the INV RF, as the
 * hardware wires the invariant registers into the comparison blocks.
 */
class FilterLogic
{
  public:
    explicit FilterLogic(const InvRegFile &inv) : inv_(inv) {}

    /**
     * Evaluate a single entry against operand metadata: a clean check
     * compares each valid operand to its invariant register; a
     * redundant-update check composes the source metadata and compares
     * it to the destination metadata.
     */
    ShotResult evaluateShot(const EventTableEntry &e,
                            const OperandMd &md) const;

    /**
     * Full evaluation starting at @p firstIdx, walking multi-shot
     * chains (one shot per cycle in hardware) and resolving partial
     * filtering handler selection.
     */
    FilterOutcome evaluate(const EventTable &table, std::uint8_t firstIdx,
                           const OperandMd &md) const;

  private:
    const InvRegFile &inv_;
};

} // namespace fade

#endif // FADE_CORE_FILTER_LOGIC_HH
