/**
 * @file
 * Filter Store Queue (FSQ). For Non-Blocking filtering the Metadata
 * Write stage commits updated *memory* metadata of unfiltered events
 * into the FSQ; subsequent dependent events search the FSQ in parallel
 * with the MD cache during Metadata Read. An entry is discarded when the
 * software handler of the owning event completes (at which point the
 * metadata store holds the same value).
 */

#ifndef FADE_CORE_FSQ_HH
#define FADE_CORE_FSQ_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/types.hh"

namespace fade
{

/** One pending critical-metadata store. */
struct FsqEntry
{
    Addr mdAddr = 0;
    std::uint8_t value = 0;
    /** Sequence number of the unfiltered event that produced it. */
    std::uint64_t ownerSeq = 0;
};

/**
 * Small associatively-searched store queue. Youngest-match forwarding,
 * bounded capacity; the pipeline stalls the Metadata Write stage when
 * the FSQ is full.
 */
class FilterStoreQueue
{
  public:
    explicit FilterStoreQueue(std::size_t capacity = 16)
        : capacity_(capacity)
    {}

    bool full() const { return q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Insert a pending store; fails when full. */
    bool
    push(Addr mdAddr, std::uint8_t value, std::uint64_t ownerSeq)
    {
        if (full())
            return false;
        q_.push_back({mdAddr, value, ownerSeq});
        ++pushes_;
        if (q_.size() > maxOccupancy_)
            maxOccupancy_ = q_.size();
        return true;
    }

    /**
     * Forward the youngest pending value for @p mdAddr, searched in
     * parallel with the MD cache during Metadata Read.
     */
    std::optional<std::uint8_t>
    lookup(Addr mdAddr) const
    {
        for (auto it = q_.rbegin(); it != q_.rend(); ++it)
            if (it->mdAddr == mdAddr)
                return it->value;
        return std::nullopt;
    }

    /**
     * Discard all entries owned by the event whose handler completed;
     * the MD cache / metadata store now holds the updated values.
     */
    void
    release(std::uint64_t ownerSeq)
    {
        for (auto it = q_.begin(); it != q_.end();) {
            if (it->ownerSeq == ownerSeq)
                it = q_.erase(it);
            else
                ++it;
        }
    }

    void clear() { q_.clear(); }

    std::uint64_t pushes() const { return pushes_; }
    std::size_t maxOccupancy() const { return maxOccupancy_; }

  private:
    std::size_t capacity_;
    std::deque<FsqEntry> q_;
    std::uint64_t pushes_ = 0;
    std::size_t maxOccupancy_ = 0;
};

} // namespace fade

#endif // FADE_CORE_FSQ_HH
