#include "core/md_update.hh"

namespace fade
{

namespace
{

std::optional<std::uint8_t>
applyAction(NbAction a, std::uint8_t invId, const OperandMd &md,
            const InvRegFile &inv)
{
    switch (a) {
      case NbAction::None:
        return std::nullopt;
      case NbAction::CopyS1:
        return md.s1;
      case NbAction::CopyS2:
        return md.s2;
      case NbAction::Or:
        return static_cast<std::uint8_t>(md.s1 | md.s2);
      case NbAction::And:
        return static_cast<std::uint8_t>(md.s1 & md.s2);
      case NbAction::SetConst:
        return inv.read(invId);
    }
    return std::nullopt;
}

} // namespace

std::optional<std::uint8_t>
computeMdUpdate(const NbRule &rule, const OperandMd &md,
                const InvRegFile &inv)
{
    if (!rule.conditional)
        return applyAction(rule.action, rule.invId, md, inv);

    bool cond = false;
    switch (rule.cond) {
      case NbCond::S1EqS2:
        cond = md.s1 == md.s2;
        break;
      case NbCond::S1EqD:
        cond = md.s1 == md.d;
        break;
      case NbCond::S1EqConst:
        cond = md.s1 == inv.read(rule.condInvId);
        break;
      case NbCond::S2EqConst:
        cond = md.s2 == inv.read(rule.condInvId);
        break;
    }

    return cond ? applyAction(rule.action, rule.invId, md, inv)
                : applyAction(rule.elseAction, rule.elseInvId, md, inv);
}

} // namespace fade
