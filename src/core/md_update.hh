/**
 * @file
 * Non-Blocking MD update logic (Section 5.2 of the paper). For an
 * unfilterable event, computes the new value of the destination's
 * *critical* metadata from simple predefined rules so that filtering of
 * subsequent dependent events can proceed without waiting for the
 * software handler. Updates are non-speculative: the software handler
 * later writes the same critical value (plus non-critical state).
 */

#ifndef FADE_CORE_MD_UPDATE_HH
#define FADE_CORE_MD_UPDATE_HH

#include <cstdint>
#include <optional>

#include "core/event_table.hh"
#include "core/filter_logic.hh"
#include "core/regfiles.hh"

namespace fade
{

/**
 * Evaluate a Non-Blocking update rule.
 *
 * Supported rules (paper Section 5.2):
 *  1. propagate a source's metadata to the destination (CopyS1/CopyS2);
 *  2. compose the destination from both sources with OR or AND;
 *  3. set the destination to a constant held in an INV register;
 *  4. conditionally pick between two of the above after comparing the
 *     sources to each other, to the destination, or to a constant.
 *
 * @return the new destination metadata byte, or std::nullopt when the
 *         rule is NbAction::None (no hardware update; the event's
 *         dependents must wait for software in blocking fashion).
 */
std::optional<std::uint8_t> computeMdUpdate(const NbRule &rule,
                                            const OperandMd &md,
                                            const InvRegFile &inv);

} // namespace fade

#endif // FADE_CORE_MD_UPDATE_HH
