/**
 * @file
 * FADE's small register files: the Invariant Register File (INV RF)
 * holding monitor-specific invariant values, and the Metadata Register
 * File (MD RF) holding the critical metadata of the architectural
 * registers (per hardware-thread context).
 */

#ifndef FADE_CORE_REGFILES_HH
#define FADE_CORE_REGFILES_HH

#include <array>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fade
{

/** Number of invariant registers. */
constexpr unsigned numInvRegs = 8;

/** Maximum software threads the MD RF tracks (AtomCheck workloads). */
constexpr unsigned maxThreads = 4;

/**
 * Invariant register file. Monitors program it with the metadata
 * encodings their checks compare against (e.g., unallocated / allocated
 * / initialized for MemCheck) plus the two bulk values the Stack-Update
 * Unit writes on calls and returns. Memory-mapped; written at monitor
 * setup and on rare software events (e.g., thread switch for
 * AtomCheck's current-thread register).
 */
class InvRegFile
{
  public:
    std::uint8_t
    read(unsigned idx) const
    {
        panic_if(idx >= numInvRegs, "INV RF read out of range");
        return regs_[idx];
    }

    void
    write(unsigned idx, std::uint8_t v)
    {
        fatal_if(idx >= numInvRegs, "INV RF write out of range");
        regs_[idx] = v;
    }

    void clear() { regs_.fill(0); }

  private:
    std::array<std::uint8_t, numInvRegs> regs_{};
};

/**
 * Metadata register file: one critical-metadata byte per architectural
 * register per thread context. Written by the Non-Blocking MD update
 * logic in the Metadata Write stage, and by software handlers through
 * the memory-mapped interface.
 */
class MdRegFile
{
  public:
    std::uint8_t
    read(ThreadId tid, RegIndex r) const
    {
        panic_if(tid >= maxThreads || r >= numArchRegs,
                 "MD RF read out of range");
        return md_[tid][r];
    }

    void
    write(ThreadId tid, RegIndex r, std::uint8_t v)
    {
        panic_if(tid >= maxThreads || r >= numArchRegs,
                 "MD RF write out of range");
        md_[tid][r] = v;
    }

    /** Set every register of every context to @p v (monitor setup). */
    void
    fill(std::uint8_t v)
    {
        for (auto &ctx : md_)
            ctx.fill(v);
    }

  private:
    std::array<std::array<std::uint8_t, numArchRegs>, maxThreads> md_{};
};

} // namespace fade

#endif // FADE_CORE_REGFILES_HH
