/**
 * @file
 * Stack-Update Unit (Section 4.2 of the paper): a finite state machine
 * that, given a stack frame's starting address and length, computes the
 * covered metadata block addresses and issues one metadata block write
 * per cycle through the MD cache, setting the range to one of two
 * predefined INV RF values (one for calls, one for returns).
 */

#ifndef FADE_CORE_SUU_HH
#define FADE_CORE_SUU_HH

#include <cstdint>

#include "core/regfiles.hh"
#include "mem/mdcache.hh"
#include "mem/shadow.hh"
#include "sim/types.hh"

namespace fade
{

/**
 * The SUU state machine. While busy it owns the MD cache write port;
 * the filtering pipeline is stopped for the duration (Section 5.2:
 * filtering must stop on stack updates).
 */
class StackUpdateUnit
{
  public:
    /**
     * @param mdc        MD cache the writes go through
     * @param shadow     functional metadata store
     * @param inv        INV RF holding the two bulk values
     * @param callInvId  INV register written on function calls
     * @param retInvId   INV register written on function returns
     */
    StackUpdateUnit(MdCache &mdc, ShadowMemory &shadow, InvRegFile &inv,
                    unsigned callInvId, unsigned retInvId)
        : mdc_(mdc), shadow_(shadow), inv_(inv),
          callInvId_(callInvId), retInvId_(retInvId)
    {}

    /** Begin processing a stack-update event. */
    void
    start(Addr frameBase, std::uint32_t frameBytes, bool isCall)
    {
        panic_if(busy(), "SUU start while busy");
        if (frameBytes == 0)
            return;
        Addr firstWord = frameBase / wordSize;
        Addr lastWord = (frameBase + frameBytes - 1) / wordSize;
        curMd_ = mdBase + firstWord;
        endMd_ = mdBase + lastWord + 1;
        value_ = inv_.read(isCall ? callInvId_ : retInvId_);
        stall_ = 0;
        ++updates_;
    }

    bool busy() const { return curMd_ < endMd_ || stall_ > 0; }

    /**
     * Advance one cycle: issue one metadata block write, stalling for
     * MD cache miss latency when the block is not resident.
     */
    void
    tick()
    {
        if (stall_ > 0) {
            --stall_;
            ++busyCycles_;
            return;
        }
        if (curMd_ >= endMd_)
            return;

        ++busyCycles_;
        Addr blockEnd = blockAlign(curMd_) + blockSize;
        Addr writeEnd = blockEnd < endMd_ ? blockEnd : endMd_;

        MdAccessResult r = mdc_.accessMd(curMd_, true);
        if (r.latency > mdc_.params().latency)
            stall_ = r.latency - mdc_.params().latency;

        shadow_.fill(curMd_, writeEnd - curMd_, value_);
        ++blockWrites_;
        curMd_ = writeEnd;
    }

    std::uint64_t updates() const { return updates_; }
    std::uint64_t blockWrites() const { return blockWrites_; }
    std::uint64_t busyCycles() const { return busyCycles_; }

    void
    resetStats()
    {
        updates_ = blockWrites_ = busyCycles_ = 0;
    }

  private:
    MdCache &mdc_;
    ShadowMemory &shadow_;
    InvRegFile &inv_;
    unsigned callInvId_;
    unsigned retInvId_;

    Addr curMd_ = 0;
    Addr endMd_ = 0;
    std::uint8_t value_ = 0;
    unsigned stall_ = 0;

    std::uint64_t updates_ = 0;
    std::uint64_t blockWrites_ = 0;
    std::uint64_t busyCycles_ = 0;
};

} // namespace fade

#endif // FADE_CORE_SUU_HH
