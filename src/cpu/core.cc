#include "cpu/core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fade
{

CoreParams
inOrderParams()
{
    CoreParams p;
    p.name = "in-order";
    p.width = 1;
    p.robSize = 16;
    p.inOrder = true;
    p.mispredictPenalty = 4;
    return p;
}

CoreParams
leanOooParams()
{
    CoreParams p;
    p.name = "lean-ooo";
    p.width = 2;
    p.robSize = 48;
    p.inOrder = false;
    p.mispredictPenalty = 8;
    return p;
}

CoreParams
aggressiveOooParams()
{
    CoreParams p;
    p.name = "aggr-ooo";
    p.width = 4;
    p.robSize = 96;
    p.inOrder = false;
    p.mispredictPenalty = 8;
    return p;
}

void
RunGrainThread::configure(const CoreParams &p, unsigned robPartition)
{
    width_ = std::max(1u, p.width);
    // The recurrence indexes c_{k-W} inside the commit ring, so the
    // ring must cover at least one full dispatch group.
    robCap_ = std::max(std::max(1u, robPartition), width_);
    inOrder_ = p.inOrder;
    mispredictPenalty_ = p.mispredictPenalty;
    commitRing_.assign(robCap_, 0);
    dispatchRing_.assign(width_, 0);
    robIdx_ = 0;
    // First read when count_ == W must see (W - W) mod R == 0, so the
    // lagged cursor starts W increments behind that.
    robLagIdx_ = (robCap_ - width_ % robCap_) % robCap_;
    wIdx_ = 0;
}

RunGrainThread::Retire
RunGrainThread::retire(const Instruction &inst, unsigned execLat,
                       Cycle fetchGate, Cycle sinkGate)
{
    Retire out;

    // Dispatch: width pacing, branch redirect, then ROB-partition
    // space (the entry k-R must have committed; commit precedes
    // dispatch inside one reference tick, so the same cycle is legal).
    // Ring cursors: wIdx_ == count_ mod W (which also equals
    // (count_ - W) mod W, so the dispatch ring is read and written at
    // the same slot), robIdx_ == count_ mod R, robLagIdx_ ==
    // (count_ - W) mod R. Maintained by wrap-around increments below —
    // the hot path never divides (R defaults to 96, not a power of 2).
    Cycle base = std::max(fetchGate, lastDispatch_);
    if (count_ >= width_)
        base = std::max(base, dispatchRing_[wIdx_] + 1);
    Cycle afterStall = std::max(base, fetchStallUntil_);
    out.fetchWait = afterStall - base;
    Cycle d = afterStall;
    if (count_ >= robCap_)
        d = std::max(d, commitRing_[robIdx_]);
    out.robWait = d - afterStall;
    dispatchRing_[wIdx_] = d;
    lastDispatch_ = d;

    // Issue and complete (dispatchInst()'s timing math).
    Cycle exec = d + 1;
    if (inst.numSrc >= 1)
        exec = std::max(exec, regReady_[inst.src1]);
    if (inst.numSrc >= 2)
        exec = std::max(exec, regReady_[inst.src2]);
    if (inOrder_) {
        exec = std::max(exec, lastIssue_);
        lastIssue_ = exec;
    }
    Cycle r = exec + execLat;
    if (inst.hasDst)
        regReady_[inst.dst] = r;
    if (inst.mispredict)
        fetchStallUntil_ = r + mispredictPenalty_;

    // Commit: in order, width-paced, gated by the sink.
    Cycle cPre = std::max(r, lastCommit_);
    if (count_ >= width_)
        cPre = std::max(cPre, commitRing_[robLagIdx_] + 1);
    Cycle c = std::max(cPre, sinkGate);
    out.sinkWait = c - cPre;
    commitRing_[robIdx_] = c;
    lastCommit_ = c;
    ++count_;
    wIdx_ = (wIdx_ + 1 == width_) ? 0 : wIdx_ + 1;
    robIdx_ = (robIdx_ + 1 == robCap_) ? 0 : robIdx_ + 1;
    robLagIdx_ = (robLagIdx_ + 1 == robCap_) ? 0 : robLagIdx_ + 1;

    out.dispatched = d;
    out.ready = r;
    out.committed = c;
    return out;
}

Core::Core(const CoreParams &p, Cache *l1d)
    : params_(p), l1d_(l1d), robCap_(p.robSize)
{
    fatal_if(p.width == 0, "core width must be positive");
    fatal_if(p.robSize == 0, "ROB size must be positive");
}

unsigned
Core::addThread(InstSource *src, CommitSink *sink)
{
    fatal_if(threads_.size() >= 2, "at most two hardware threads");
    HwThread t;
    t.src = src;
    t.sink = sink;
    t.runSource = src && src->supportsRuns();
    t.freeSink = !sink || sink->alwaysCommits();
    // Size the ROB ring once for the full (unpartitioned) capacity so
    // it never grows on the dispatch path.
    t.rob = RingDeque<RobEntry>(params_.robSize);
    threads_.push_back(std::move(t));
    robCap_ = params_.robSize /
              std::max<unsigned>(1, unsigned(threads_.size()));
    return unsigned(threads_.size() - 1);
}

const ThreadStats &
Core::threadStats(unsigned t) const
{
    panic_if(t >= threads_.size(), "bad thread index");
    return threads_[t].stats;
}

ThreadStats &
Core::runGrainThreadStats(unsigned t)
{
    panic_if(t >= threads_.size(), "bad thread index");
    return threads_[t].stats;
}

unsigned
Core::runGrainExecLatency(const Instruction &inst)
{
    // Mirrors the latency selection (and the cache side effects) of
    // dispatchInst() exactly; the run-grain engine decides *when* the
    // access lands, this decides *what* it costs.
    if (inst.cls == InstClass::Load)
        return l1d_ ? l1d_->access(inst.memAddr, false) : 2;
    if (inst.cls == InstClass::Store) {
        if (l1d_)
            l1d_->access(inst.memAddr, true);
        return 1;
    }
    return execLatency(inst.cls);
}

unsigned
Core::robCapacity() const
{
    // Static partitioning between hardware threads (cached: this sits
    // on every commit/dispatch test).
    return robCap_;
}

bool
Core::tryCommitOne(HwThread &t, Cycle now)
{
    if (t.rob.empty())
        return false;
    RobEntry &head = t.rob.front();
    if (head.readyAt > now)
        return false;
    if (t.freeSink) {
        if (t.sink)
            t.sink->onCommit(head.inst);
    } else if (!t.sink->commitIfAllowed(head.inst)) {
        ++t.stats.sinkStallCycles;
        return false;
    }
    ++t.stats.retired;
    t.rob.pop_front();
    return true;
}

bool
Core::tryDispatchOne(HwThread &t, Cycle now, SrcProbe probe)
{
    if (t.rob.size() >= robCapacity())
        return false;
    if (now < t.fetchStallUntil)
        return false;
    // A None/Pure probe elides the availability call whose outcome the
    // pipeline driver already knows to be side-effect free (the
    // default, Effectful, is the reference behaviour).
    if (probe == SrcProbe::None)
        return false;
    // Run-replay fast path (sources that declared supportsRuns, i.e.
    // the monitor handler engine): instructions come straight out of
    // the prefetched handler run; a non-null fetchNext() certifies
    // available() would have been true and side-effect free, so the
    // per-instruction round-trip is elided. A null falls back to the
    // reference available()/fetch() protocol — pops and handler builds
    // happen at exactly the same points as before.
    // All checks passed: the dispatch is committed, so the instruction
    // lands straight in the claimed ROB slot (no staging copy).
    auto dispatch = [&](const Instruction *pre) {
        RobEntry &e = t.rob.pushSlot();
        e.inst = pre ? *pre : t.src->fetch();
        dispatchInst(t, now, e);
        return true;
    };
    if (t.runSource) {
        const Instruction *pre = t.src->fetchNext();
        if (!pre) {
            if (probe == SrcProbe::Effectful && !t.src->available())
                return false;
            pre = t.src->fetchNext();
        }
        return dispatch(pre);
    }
    if (probe == SrcProbe::Effectful && (!t.src || !t.src->available()))
        return false;
    return dispatch(nullptr);
}

void
Core::dispatchInst(HwThread &t, Cycle now, RobEntry &e)
{
    const Instruction &inst = e.inst;
    Cycle depReady = 0;
    if (inst.numSrc >= 1)
        depReady = std::max(depReady, t.regReady[inst.src1]);
    if (inst.numSrc >= 2)
        depReady = std::max(depReady, t.regReady[inst.src2]);
    // Loads and stores use a register-held address: model the address
    // dependence through src1 (already covered above).

    Cycle execStart = std::max<Cycle>(now + 1, depReady);
    if (params_.inOrder) {
        // Program-order issue: an instruction cannot begin execution
        // before its predecessor began.
        execStart = std::max(execStart, t.lastIssue);
        t.lastIssue = execStart;
    }

    unsigned lat;
    if (inst.cls == InstClass::Load) {
        lat = l1d_ ? l1d_->access(inst.memAddr, false) : 2;
    } else if (inst.cls == InstClass::Store) {
        // Stores retire through a store buffer: keep the tags warm but
        // do not stall the dependence chain.
        if (l1d_)
            l1d_->access(inst.memAddr, true);
        lat = 1;
    } else {
        lat = execLatency(inst.cls);
    }

    Cycle readyAt = execStart + lat;
    if (inst.hasDst)
        t.regReady[inst.dst] = readyAt;

    if (inst.mispredict)
        t.fetchStallUntil = readyAt + params_.mispredictPenalty;

    e.readyAt = readyAt;
}

void
Core::tick(Cycle now)
{
    ++cycles_;
    unsigned n = unsigned(threads_.size());
    if (n == 0)
        return;

    // Per-cycle condition accounting (before any state changes).
    for (auto &t : threads_) {
        if (t.rob.size() >= robCapacity())
            ++t.stats.robFullCycles;
        if (now < t.fetchStallUntil)
            ++t.stats.fetchBubbleCycles;
        if (t.rob.empty() && (!t.src || !t.src->available()))
            ++t.stats.idleCycles;
    }

    // Commit: up to `width` slots shared round-robin across threads.
    // A thread whose head is not ready (or is refused by its sink)
    // yields its slots to the other thread. (Identical slot sharing to
    // stepCycle(); kept allocation-free for the same reason.)
    {
        unsigned budget = params_.width;
        std::array<bool, 2> open{true, n > 1};
        unsigned t = commitRr_;
        while (budget > 0 && (open[0] || open[1])) {
            if (open[t]) {
                if (tryCommitOne(threads_[t], now))
                    --budget;
                else
                    open[t] = false;
            }
            if (++t == n)
                t = 0;
        }
        commitRr_ = commitRr_ + 1 == n ? 0 : commitRr_ + 1;
    }

    // Dispatch: same slot-by-slot sharing.
    {
        unsigned budget = params_.width;
        std::array<bool, 2> open{true, n > 1};
        unsigned t = dispatchRr_;
        while (budget > 0 && (open[0] || open[1])) {
            if (open[t]) {
                if (tryDispatchOne(threads_[t], now))
                    --budget;
                else
                    open[t] = false;
            }
            if (++t == n)
                t = 0;
        }
        dispatchRr_ = dispatchRr_ + 1 == n ? 0 : dispatchRr_ + 1;
    }
}

unsigned
Core::stepCycle(Cycle now, const SrcProbe *probes)
{
    // Exact mirror of tick() — same state transitions, same counters,
    // same call order — minus tick()'s per-cycle heap allocations and
    // minus source calls a None/Pure probe proves side-effect free.
    // tests/test_pipeline.cc holds the two paths bit-identical.
    ++cycles_;
    unsigned n = unsigned(threads_.size());
    if (n == 0)
        return 0;

    for (unsigned i = 0; i < n; ++i) {
        HwThread &t = threads_[i];
        if (t.rob.size() >= robCapacity())
            ++t.stats.robFullCycles;
        if (now < t.fetchStallUntil)
            ++t.stats.fetchBubbleCycles;
        if (t.rob.empty()) {
            bool avail = probes[i] == SrcProbe::Pure ||
                         (probes[i] == SrcProbe::Effectful && t.src &&
                          t.src->available());
            if (!avail)
                ++t.stats.idleCycles;
        }
    }

    unsigned activity = 0;
    {
        unsigned budget = params_.width;
        std::array<bool, 2> open{true, n > 1};
        unsigned t = commitRr_;
        while (budget > 0 && (open[0] || open[1])) {
            if (open[t]) {
                if (tryCommitOne(threads_[t], now)) {
                    --budget;
                    ++activity;
                } else {
                    open[t] = false;
                }
            }
            if (++t == n)
                t = 0;
        }
        commitRr_ = commitRr_ + 1 == n ? 0 : commitRr_ + 1;
    }

    {
        unsigned budget = params_.width;
        std::array<bool, 2> open{true, n > 1};
        unsigned t = dispatchRr_;
        while (budget > 0 && (open[0] || open[1])) {
            if (open[t]) {
                if (tryDispatchOne(threads_[t], now, probes[t])) {
                    --budget;
                    ++activity;
                } else {
                    open[t] = false;
                }
            }
            if (++t == n)
                t = 0;
        }
        dispatchRr_ = dispatchRr_ + 1 == n ? 0 : dispatchRr_ + 1;
    }
    return activity;
}

Cycle
Core::nextActivity(Cycle now, const SrcProbe *probes) const
{
    Cycle wake = invalidCycle;
    for (unsigned i = 0; i < threads_.size(); ++i) {
        const HwThread &t = threads_[i];
        // With an empty ROB and an effectful source, the idle-condition
        // accounting itself calls available() (which may pop work), so
        // the cycle cannot be skipped.
        if (t.rob.empty() && probes[i] == SrcProbe::Effectful)
            return now;
        if (!t.rob.empty()) {
            const RobEntry &head = t.rob.front();
            if (t.freeSink || t.sink->canCommit(head.inst)) {
                if (head.readyAt <= now)
                    return now;
                wake = std::min(wake, head.readyAt);
            }
            // A refused head never commits while external state is
            // frozen; only sinkStallCycles accrue (see skipCycles).
        }
        if (t.rob.size() < robCapacity() && probes[i] != SrcProbe::None) {
            if (now >= t.fetchStallUntil)
                return now;
            wake = std::min(wake, t.fetchStallUntil);
        }
    }
    return wake;
}

void
Core::skipCycles(Cycle from, std::uint64_t n, const SrcProbe *probes)
{
    cycles_ += n;
    unsigned nt = unsigned(threads_.size());
    if (nt == 0)
        return;
    for (unsigned i = 0; i < nt; ++i) {
        HwThread &t = threads_[i];
        if (t.rob.size() >= robCapacity())
            t.stats.robFullCycles += n;
        if (from < t.fetchStallUntil)
            t.stats.fetchBubbleCycles +=
                std::min<std::uint64_t>(n, t.fetchStallUntil - from);
        if (t.rob.empty() && probes[i] == SrcProbe::None)
            t.stats.idleCycles += n;
        if (!t.rob.empty() && !t.freeSink &&
            !t.sink->canCommit(t.rob.front().inst)) {
            // Refusal stalls count from the cycle the head is ready.
            Cycle readyFrom = std::max(t.rob.front().readyAt, from);
            if (readyFrom < from + n)
                t.stats.sinkStallCycles += from + n - readyFrom;
        }
    }
    commitRr_ = unsigned((commitRr_ + n) % nt);
    dispatchRr_ = unsigned((dispatchRr_ + n) % nt);
}

bool
Core::drained() const
{
    for (const auto &t : threads_) {
        if (!t.rob.empty())
            return false;
    }
    return true;
}

void
Core::resetStats()
{
    for (auto &t : threads_)
        t.stats = ThreadStats{};
    cycles_ = 0;
}

} // namespace fade
