/**
 * @file
 * Unified core timing model covering the paper's three design points
 * (Table 1): in-order 1-way, lean OoO 2-way/48-entry ROB, and aggressive
 * OoO 4-way/96-entry ROB, plus the fine-grained dual-threaded (SMT)
 * configuration used by the single-core monitoring system (Fig. 8(b)).
 *
 * The model dispatches up to `width` instructions per cycle into a
 * reorder buffer, computes each instruction's completion time from its
 * register dependences, execution latency, and data cache access, and
 * commits up to `width` completed instructions per cycle in order.
 * In-order cores additionally force monotonically non-decreasing issue
 * times in program order. Mispredicted branches stall fetch until the
 * branch resolves plus a redirect penalty. With two hardware threads the
 * fetch/dispatch and commit bandwidth is shared slot-by-slot round-robin
 * and the ROB is statically partitioned.
 */

#ifndef FADE_CPU_CORE_HH
#define FADE_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cpu/source.hh"
#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "sim/types.hh"

namespace fade
{

/** Core microarchitecture parameters. */
struct CoreParams
{
    std::string name = "core";
    unsigned width = 4;
    unsigned robSize = 96;
    bool inOrder = false;
    /** Fetch redirect penalty after a mispredicted branch resolves. */
    unsigned mispredictPenalty = 8;
};

/** Table 1 presets. */
CoreParams inOrderParams();
CoreParams leanOooParams();
CoreParams aggressiveOooParams();

/** Per-hardware-thread statistics. */
struct ThreadStats
{
    std::uint64_t retired = 0;
    /** Cycles a completed head-of-ROB was refused by the commit sink. */
    std::uint64_t sinkStallCycles = 0;
    /** Cycles with an empty ROB and no instruction supplied. */
    std::uint64_t idleCycles = 0;
    std::uint64_t robFullCycles = 0;
    std::uint64_t fetchBubbleCycles = 0;
};

/**
 * A core with one or two hardware threads sharing its pipeline.
 */
class Core
{
  public:
    /**
     * @param p    microarchitecture parameters
     * @param l1d  private L1 data cache (loads/stores consult it)
     */
    Core(const CoreParams &p, Cache *l1d);

    /**
     * Attach a hardware thread.
     * @return the hardware thread index.
     */
    unsigned addThread(InstSource *src, CommitSink *sink);

    /** Advance one cycle. */
    void tick(Cycle now);

    unsigned numThreads() const { return unsigned(threads_.size()); }
    const CoreParams &params() const { return params_; }
    const ThreadStats &threadStats(unsigned t) const;
    std::uint64_t cycles() const { return cycles_; }

    /** All ROBs empty and no source has work. */
    bool drained() const;

    void resetStats();

  private:
    struct RobEntry
    {
        Instruction inst;
        Cycle readyAt = 0;
    };

    struct HwThread
    {
        InstSource *src = nullptr;
        CommitSink *sink = nullptr;
        std::deque<RobEntry> rob;
        std::array<Cycle, numArchRegs> regReady{};
        /** In-order cores: issue time of the previously dispatched op. */
        Cycle lastIssue = 0;
        /** Fetch stalled until this cycle (branch redirect). */
        Cycle fetchStallUntil = 0;
        ThreadStats stats;
    };

    unsigned robCapacity() const;
    bool tryCommitOne(HwThread &t, Cycle now);
    bool tryDispatchOne(HwThread &t, Cycle now);

    CoreParams params_;
    Cache *l1d_;
    std::vector<HwThread> threads_;
    unsigned commitRr_ = 0;
    unsigned dispatchRr_ = 0;
    std::uint64_t cycles_ = 0;
};

} // namespace fade

#endif // FADE_CPU_CORE_HH
