/**
 * @file
 * Unified core timing model covering the paper's three design points
 * (Table 1): in-order 1-way, lean OoO 2-way/48-entry ROB, and aggressive
 * OoO 4-way/96-entry ROB, plus the fine-grained dual-threaded (SMT)
 * configuration used by the single-core monitoring system (Fig. 8(b)).
 *
 * The model dispatches up to `width` instructions per cycle into a
 * reorder buffer, computes each instruction's completion time from its
 * register dependences, execution latency, and data cache access, and
 * commits up to `width` completed instructions per cycle in order.
 * In-order cores additionally force monotonically non-decreasing issue
 * times in program order. Mispredicted branches stall fetch until the
 * branch resolves plus a redirect penalty. With two hardware threads the
 * fetch/dispatch and commit bandwidth is shared slot-by-slot round-robin
 * and the ROB is statically partitioned.
 */

#ifndef FADE_CPU_CORE_HH
#define FADE_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/source.hh"
#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace fade
{

/** Core microarchitecture parameters. */
struct CoreParams
{
    std::string name = "core";
    unsigned width = 4;
    unsigned robSize = 96;
    bool inOrder = false;
    /** Fetch redirect penalty after a mispredicted branch resolves. */
    unsigned mispredictPenalty = 8;
};

/** Table 1 presets. */
CoreParams inOrderParams();
CoreParams leanOooParams();
CoreParams aggressiveOooParams();

/** Per-hardware-thread statistics. */
struct ThreadStats
{
    std::uint64_t retired = 0;
    /** Cycles a completed head-of-ROB was refused by the commit sink. */
    std::uint64_t sinkStallCycles = 0;
    /** Cycles with an empty ROB and no instruction supplied. */
    std::uint64_t idleCycles = 0;
    std::uint64_t robFullCycles = 0;
    std::uint64_t fetchBubbleCycles = 0;
};

/**
 * Closed-form per-thread timing recurrence of the run-grain engine
 * (Engine::RunGrain, system/rungrain.hh). Models the same pipeline
 * resources as Core — dispatch/commit width, a partitioned ROB,
 * register dependences, in-order issue coupling, branch-redirect
 * stalls, commit-sink backpressure — but advances a whole instruction
 * run by recurrence instead of cycle-by-cycle state transitions. For
 * instruction k with width W and ROB partition R:
 *
 *   d_k = max(d_{k-1}, d_{k-W} + 1, redirect, c_{k-R})     dispatch
 *   e_k = max(d_k + 1, ready(srcs) [, e_{k-1} if in-order]) issue
 *   r_k = e_k + latency                                     complete
 *   c_k = max(r_k, c_{k-1}, c_{k-W} + 1, sinkGate)          commit
 *
 * The rings holding the last R commit and last W dispatch times are
 * the entire state: one instruction costs O(1) regardless of how many
 * cycles it spans. Each hardware thread gets dedicated width (the
 * per-cycle engine shares slots round-robin between SMT threads),
 * which is the engine's one structural timing divergence on
 * dual-threaded cores (docs/ARCHITECTURE.md, "Run-grain engine").
 */
class RunGrainThread
{
  public:
    /** Timing of one retired instruction. */
    struct Retire
    {
        Cycle dispatched = 0;
        Cycle ready = 0;
        Cycle committed = 0;
        /** Cycles dispatch waited on the full ROB partition. */
        std::uint64_t robWait = 0;
        /** Cycles dispatch waited on a branch redirect. */
        std::uint64_t fetchWait = 0;
        /** Cycles commit waited on the sink gate past readiness. */
        std::uint64_t sinkWait = 0;
    };

    /** Bind the model to a core geometry and a ROB partition size. */
    void configure(const CoreParams &p, unsigned robPartition);

    /**
     * Advance the recurrence by one instruction.
     * @param inst      the retiring instruction
     * @param execLat   execution latency (Core::runGrainExecLatency)
     * @param fetchGate earliest dispatch cycle (source availability)
     * @param sinkGate  earliest commit cycle (queue backpressure)
     */
    Retire retire(const Instruction &inst, unsigned execLat,
                  Cycle fetchGate, Cycle sinkGate);

    Cycle lastCommit() const { return lastCommit_; }
    std::uint64_t retired() const { return count_; }

  private:
    unsigned width_ = 1;
    unsigned robCap_ = 1;
    bool inOrder_ = false;
    unsigned mispredictPenalty_ = 0;
    /** Commit times of the last robCap_ instructions (ring, k mod R). */
    std::vector<Cycle> commitRing_;
    /** Dispatch times of the last width_ instructions (ring, k mod W). */
    std::vector<Cycle> dispatchRing_;
    /** Ring cursors maintained incrementally so the per-retire hot
     *  path never divides: count_ mod R, (count_ - W) mod R, and
     *  count_ mod W (identical to the mod expressions they replace). */
    unsigned robIdx_ = 0;
    unsigned robLagIdx_ = 0;
    unsigned wIdx_ = 0;
    std::array<Cycle, numArchRegs> regReady_{};
    Cycle lastIssue_ = 0;
    Cycle fetchStallUntil_ = 0;
    Cycle lastDispatch_ = 0;
    Cycle lastCommit_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * What the pipeline driver knows about one hardware thread's
 * instruction source for the current cycle (system/pipeline.hh). The
 * batched engine uses this to elide InstSource::available() calls whose
 * outcome is already known — legal only because the elided call would
 * have been side-effect free — and to predict thread activity across a
 * fast-forwarded span.
 */
enum class SrcProbe : std::uint8_t
{
    /** available() would return false, with no side effects. */
    None,
    /** available() would return true, with no side effects. */
    Pure,
    /** available() may mutate state (e.g. pop an input queue); it must
     *  be called exactly as the reference tick() would call it. */
    Effectful,
};

/**
 * A core with one or two hardware threads sharing its pipeline.
 */
class Core
{
  public:
    /**
     * @param p    microarchitecture parameters
     * @param l1d  private L1 data cache (loads/stores consult it)
     */
    Core(const CoreParams &p, Cache *l1d);

    /**
     * Attach a hardware thread.
     * @return the hardware thread index.
     */
    unsigned addThread(InstSource *src, CommitSink *sink);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Batched-engine cycle step (system/pipeline.hh): performs exactly
     * the state transitions and accounting of tick(), but without
     * tick()'s per-cycle heap allocations, and with the per-thread
     * source probes of @p probes (probes[t] for hardware thread t)
     * eliding InstSource::available() calls whose outcome the driver
     * already knows. With SrcProbe::Effectful for every thread the call
     * pattern is identical to tick(); with None/Pure it differs only in
     * skipped calls that would have been side-effect free.
     * @return the number of commits plus dispatches performed (0 means
     *         this cycle changed nothing but per-cycle counters).
     */
    unsigned stepCycle(Cycle now, const SrcProbe *probes);

    /**
     * Earliest cycle >= @p now at which ticking this core could do more
     * than per-cycle condition accounting, assuming every external
     * input (sources, sinks, queues) stays frozen. Returns @p now when
     * the core is active this cycle and invalidCycle when only an
     * external change can wake it. May invoke CommitSink::canCommit
     * (side-effect free by contract); never invokes
     * InstSource::available().
     */
    Cycle nextActivity(Cycle now, const SrcProbe *probes) const;

    /**
     * Account for @p n skipped cycles starting at @p from, during which
     * the driver has established (via nextActivity and frozen external
     * state) that tick() would have performed no commit and no
     * dispatch: applies exactly the per-cycle condition counters,
     * cycle count, and round-robin rotation those ticks would have.
     */
    void skipCycles(Cycle from, std::uint64_t n, const SrcProbe *probes);

    unsigned numThreads() const { return unsigned(threads_.size()); }
    const CoreParams &params() const { return params_; }
    const ThreadStats &threadStats(unsigned t) const;

    /**
     * Run-grain engine support: the execution latency dispatchInst()
     * would compute for @p inst, with the identical data-cache access
     * (loads probe the L1d for their latency; stores keep the tags
     * warm and complete through the store buffer in one cycle). The
     * cache state evolves exactly as a per-cycle dispatch would evolve
     * it; only the cycle the access lands on is modeled.
     */
    unsigned runGrainExecLatency(const Instruction &inst);

    /** Run-grain engine support: mutable per-thread statistics, for
     *  batch-applying modeled condition counters the way skipCycles()
     *  batch-applies frozen spans. */
    ThreadStats &runGrainThreadStats(unsigned t);

    /** Run-grain engine support: batch-apply @p n elapsed cycles. */
    void runGrainAddCycles(std::uint64_t n) { cycles_ += n; }

    /** The thread's ROB partition (run-grain model geometry). */
    unsigned robPartition() const { return robCap_; }
    std::uint64_t cycles() const { return cycles_; }

    /** All ROBs empty and no source has work. */
    bool drained() const;

    void resetStats();

  private:
    struct RobEntry
    {
        Instruction inst;
        Cycle readyAt = 0;
    };

    struct HwThread
    {
        InstSource *src = nullptr;
        CommitSink *sink = nullptr;
        /** Source declared supportsRuns(): dispatch pulls from its
         *  prefetched handler run via fetchNext(). */
        bool runSource = false;
        /** Sink declared alwaysCommits(): skip canCommit entirely. */
        bool freeSink = false;
        /** Reorder buffer: bounded FIFO in one contiguous ring (sized
         *  once in addThread; never reallocates afterwards). */
        RingDeque<RobEntry> rob;
        std::array<Cycle, numArchRegs> regReady{};
        /** In-order cores: issue time of the previously dispatched op. */
        Cycle lastIssue = 0;
        /** Fetch stalled until this cycle (branch redirect). */
        Cycle fetchStallUntil = 0;
        ThreadStats stats;
    };

    unsigned robCapacity() const;
    bool tryCommitOne(HwThread &t, Cycle now);
    bool tryDispatchOne(HwThread &t, Cycle now,
                        SrcProbe probe = SrcProbe::Effectful);
    /** Timing computation for the just-claimed ROB entry @p e (its
     *  instruction is already in place). */
    void dispatchInst(HwThread &t, Cycle now, RobEntry &e);

    CoreParams params_;
    Cache *l1d_;
    std::vector<HwThread> threads_;
    unsigned commitRr_ = 0;
    unsigned dispatchRr_ = 0;
    /** robSize / numThreads, cached off the per-cycle paths. */
    unsigned robCap_ = 0;
    std::uint64_t cycles_ = 0;
};

} // namespace fade

#endif // FADE_CPU_CORE_HH
