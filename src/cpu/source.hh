/**
 * @file
 * Interfaces between the core timing models and the components that
 * supply instructions (workload generator, monitor handler engine) and
 * observe retirement (event extraction, handler completion).
 */

#ifndef FADE_CPU_SOURCE_HH
#define FADE_CPU_SOURCE_HH

#include "isa/instruction.hh"

namespace fade
{

/** Supplies the dynamic instruction stream of one hardware thread. */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** An instruction is available for fetch this cycle. */
    virtual bool available() = 0;

    /** Fetch the next instruction; call only when available(). */
    virtual Instruction fetch() = 0;
};

/** Observes in-order retirement of one hardware thread. */
class CommitSink
{
  public:
    virtual ~CommitSink() = default;

    /**
     * May @p inst commit this cycle? Producers refuse when the event
     * queue has no room for the instruction's event (backpressure
     * stalls retirement, Section 3.2).
     */
    virtual bool canCommit(const Instruction &inst)
    {
        (void)inst;
        return true;
    }

    /** @p inst committed (retired in order). */
    virtual void onCommit(const Instruction &inst) { (void)inst; }
};

} // namespace fade

#endif // FADE_CPU_SOURCE_HH
