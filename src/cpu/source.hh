/**
 * @file
 * Interfaces between the core timing models and the components that
 * supply instructions (workload generator, monitor handler engine) and
 * observe retirement (event extraction, handler completion).
 */

#ifndef FADE_CPU_SOURCE_HH
#define FADE_CPU_SOURCE_HH

#include "isa/instruction.hh"

namespace fade
{

/**
 * A contiguous run of already-staged instructions handed out by
 * InstSource::fetchSpan(). The storage belongs to the source and stays
 * valid until the next fetch/stage call on it; consumers must finish
 * (or copy) the span before touching the source again.
 */
struct InstSpan
{
    const Instruction *data = nullptr;
    std::size_t count = 0;

    bool empty() const { return count == 0; }
    const Instruction *begin() const { return data; }
    const Instruction *end() const { return data + count; }
};

/** Supplies the dynamic instruction stream of one hardware thread. */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** An instruction is available for fetch this cycle. */
    virtual bool available() = 0;

    /** Fetch the next instruction; call only when available(). */
    virtual Instruction fetch() = 0;

    /**
     * Run-replay fast path: when the source holds a prefetched run of
     * instructions (a monitor handler sequence), consume and return a
     * pointer to the next one — valid until the next call on this
     * source. Returns nullptr, with NO side effects, when no prefetched
     * instruction exists; the caller must then fall back to the
     * available()/fetch() protocol. A non-null return is exactly
     * equivalent to available() (true, side-effect free here by
     * definition) followed by fetch() — cores use it to replay handler
     * runs without the per-instruction virtual round-trip.
     */
    virtual const Instruction *fetchNext() { return nullptr; }

    /** Static property: this source serves prefetched runs through
     *  fetchNext(). Cores skip the fetchNext probe entirely for
     *  sources that generate on demand. */
    virtual bool supportsRuns() const { return false; }

    /**
     * Ask the source to pre-produce up to @p n upcoming instructions
     * for run service through fetchNext(), without changing the stream:
     * staging must be bit-identical to on-demand generation (same
     * instructions, same internal draw order). Sources that cannot
     * stage return 0 — purely an optimization hint; the consumed
     * stream is identical either way. The run-grain engine
     * (system/rungrain.hh) stages one batch at a time and drains it
     * fully before returning control, so external stream edits (e.g.
     * TraceGenerator::injectBug) never interleave with staged work.
     */
    virtual std::size_t
    stageRun(std::size_t n)
    {
        (void)n;
        return 0;
    }

    /**
     * Consume up to @p max staged instructions as one contiguous span —
     * the bulk generalization of fetchNext(). A returned span of count
     * k is exactly equivalent to k successive fetchNext() calls (same
     * instructions, same side effects); an empty span means nothing is
     * staged contiguously and the caller falls back to fetchNext()/
     * fetch(). Span storage is owned by the source and is valid until
     * the next fetch or stage call, so batch consumers (the run-grain
     * driver) process a whole span without a per-instruction virtual
     * round-trip. Sources may return fewer than @p max instructions
     * (e.g. at a trace-block boundary); callers simply loop.
     */
    virtual InstSpan
    fetchSpan(std::size_t max)
    {
        (void)max;
        return {};
    }
};

/** Observes in-order retirement of one hardware thread. */
class CommitSink
{
  public:
    virtual ~CommitSink() = default;

    /**
     * May @p inst commit this cycle? Producers refuse when the event
     * queue has no room for the instruction's event (backpressure
     * stalls retirement, Section 3.2).
     */
    virtual bool canCommit(const Instruction &inst)
    {
        (void)inst;
        return true;
    }

    /** Static property: canCommit() is unconditionally true (the
     *  monitor handler engine never refuses retirement). Cores cache it
     *  and skip the per-instruction canCommit round-trip. */
    virtual bool alwaysCommits() const { return false; }

    /** @p inst committed (retired in order). */
    virtual void onCommit(const Instruction &inst) { (void)inst; }

    /**
     * Fused commit round-trip: canCommit() and, when allowed,
     * onCommit() in a single virtual dispatch (the per-retirement fast
     * path). Overrides must behave exactly like the default
     * composition.
     * @return false (and no effects) when the commit was refused.
     */
    virtual bool
    commitIfAllowed(const Instruction &inst)
    {
        if (!canCommit(inst))
            return false;
        onCommit(inst);
        return true;
    }
};

} // namespace fade

#endif // FADE_CPU_SOURCE_HH
