#include "daemon/client.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

namespace fade::daemon
{

namespace
{

/** Read one server frame, failing on EOF. */
std::vector<std::uint8_t>
nextFrame(int fd)
{
    std::vector<std::uint8_t> body;
    if (!readFrame(fd, body))
        throw ProtocolError("daemon closed the connection");
    return body;
}

} // namespace

DaemonClient::DaemonClient(const std::string &socketPath, int timeoutMs)
{
    fd_ = connectUnix(socketPath, timeoutMs);
    try {
        writeMagic(fd_);
        wire::Enc e;
        e.u8(std::uint8_t(FrameType::Hello));
        encodeHello(e, protocolVersion);
        writeFrame(fd_, e.out);

        std::vector<std::uint8_t> body = nextFrame(fd_);
        FrameType t = FrameType(body.at(0));
        if (t == FrameType::Rejected) {
            wire::Dec d = frameDec(body, "rejected");
            throw ProtocolError("handshake rejected: " +
                                decodeError(d).message);
        }
        if (t != FrameType::HelloOk)
            throw ProtocolError("expected HelloOk");
        wire::Dec d = frameDec(body, "hello-ok");
        hello_ = decodeHelloOk(d);
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
}

DaemonClient::~DaemonClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::optional<ErrorInfo>
DaemonClient::configure(const WireSessionConfig &wc,
                        const std::string &ftracePath)
{
    wire::Enc e;
    e.u8(std::uint8_t(FrameType::Configure));
    encodeConfig(e, wc);
    writeFrame(fd_, e.out);

    if (wc.upload) {
        std::FILE *f = std::fopen(ftracePath.c_str(), "rb");
        if (!f)
            throw ProtocolError("cannot open " + ftracePath);
        std::vector<std::uint8_t> chunk(64 * 1024);
        for (;;) {
            std::size_t n =
                std::fread(chunk.data() + 1, 1, chunk.size() - 1, f);
            if (n == 0)
                break;
            chunk[0] = std::uint8_t(FrameType::TraceData);
            std::vector<std::uint8_t> body(
                chunk.begin(), chunk.begin() + std::ptrdiff_t(n + 1));
            writeFrame(fd_, body);
        }
        std::fclose(f);
        writeFrame(fd_, {std::uint8_t(FrameType::TraceEnd)});
    }

    std::vector<std::uint8_t> body = nextFrame(fd_);
    FrameType t = FrameType(body.at(0));
    if (t == FrameType::Configured)
        return std::nullopt;
    if (t == FrameType::Rejected || t == FrameType::Error) {
        wire::Dec d = frameDec(body, "rejected");
        return decodeError(d);
    }
    throw ProtocolError("expected Configured/Rejected");
}

SessionOutcome
DaemonClient::run(int perFrameSleepMs)
{
    writeFrame(fd_, {std::uint8_t(FrameType::Run)});

    SessionOutcome o;
    for (;;) {
        std::vector<std::uint8_t> body = nextFrame(fd_);
        if (perFrameSleepMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(perFrameSleepMs));
        switch (FrameType(body.at(0))) {
          case FrameType::Started:
            break;
          case FrameType::Progress: {
            wire::Dec d = frameDec(body, "progress");
            o.progress.push_back(decodeProgress(d));
            break;
          }
          case FrameType::Result: {
            wire::Dec d = frameDec(body, "result");
            o.result = decodeResult(d);
            o.ok = true;
            break;
          }
          case FrameType::Bye:
            return o;
          case FrameType::Rejected:
          case FrameType::Error: {
            wire::Dec d = frameDec(body, "error");
            o.error = decodeError(d);
            o.ok = false;
            return o;
          }
          default:
            throw ProtocolError("unexpected server frame");
        }
    }
}

void
DaemonClient::close()
{
    if (fd_ < 0)
        return;
    try {
        writeFrame(fd_, {std::uint8_t(FrameType::Close)});
    } catch (const ProtocolError &) {
        // The daemon may already have gone away; closing is best
        // effort.
    }
    ::close(fd_);
    fd_ = -1;
}

} // namespace fade::daemon
