/**
 * @file
 * Client side of the daemon protocol: one connection, one session.
 * Shared by the differential tests (tests/test_daemon.cc) and the
 * faded_client CLI (bench/faded_client.cc), so both exercise the
 * exact byte stream the daemon speaks.
 */

#ifndef FADE_DAEMON_CLIENT_HH
#define FADE_DAEMON_CLIENT_HH

#include <optional>
#include <string>
#include <vector>

#include "daemon/protocol.hh"

namespace fade::daemon
{

/** Everything one session produced. */
struct SessionOutcome
{
    bool ok = false;
    ResultInfo result;
    /** Rejection / failure detail when !ok. */
    ErrorInfo error;
    /** Advisory progress frames observed before the result. */
    std::vector<ProgressInfo> progress;
};

class DaemonClient
{
  public:
    /** Connect and handshake (magic + Hello/HelloOk). Throws
     *  ProtocolError when the daemon is unreachable or rejects the
     *  protocol version. */
    explicit DaemonClient(const std::string &socketPath,
                          int timeoutMs = 5000);
    ~DaemonClient();

    DaemonClient(const DaemonClient &) = delete;
    DaemonClient &operator=(const DaemonClient &) = delete;

    const HelloInfo &hello() const { return hello_; }

    /**
     * Submit a configuration (uploading @p ftracePath first when
     * wc.upload is set). @return nothing on Configured, the typed
     * rejection on Rejected. Throws ProtocolError on transport
     * failures.
     */
    std::optional<ErrorInfo>
    configure(const WireSessionConfig &wc,
              const std::string &ftracePath = "");

    /** Start the configured session and block until it finishes
     *  (Result + Bye) or fails. @p perFrameSleepMs > 0 sleeps between
     *  received frames — the slow-reader knob the backpressure tests
     *  use to force the daemon to park this session. */
    SessionOutcome run(int perFrameSleepMs = 0);

    /** Orderly goodbye (Close frame); the destructor only closes the
     *  socket. */
    void close();

    /** Raw socket (fuzz tests inject malformed bytes directly). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    HelloInfo hello_;
};

} // namespace fade::daemon

#endif // FADE_DAEMON_CLIENT_HH
