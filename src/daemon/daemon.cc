#include "daemon/daemon.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include <sys/socket.h>
#include <unistd.h>

namespace fade::daemon
{

/**
 * One accepted connection: owns the socket, the output queue, and —
 * once Configure succeeds — the session (shared with the pool, which
 * may outlive the connection). The reader thread runs the protocol
 * state machine and joins the writer on its way out, so the daemon
 * only ever joins readers.
 */
struct Faded::Connection
{
    Connection(Faded &d, int fd)
        : daemon(d), fd(fd),
          queue(std::make_shared<OutQueue>(d.cfg_.outFrames))
    {
        writer = std::thread([this] { writerLoop(); });
        reader = std::thread([this] { readerLoop(); });
    }

    ~Connection()
    {
        if (reader.joinable())
            reader.join();
        if (fd >= 0)
            ::close(fd);
    }

    /** Unblock a blocked reader (and, when not draining, the writer). */
    void
    kick(bool drain)
    {
        ::shutdown(fd, drain ? SHUT_RD : SHUT_RDWR);
    }

    void
    send(FrameType t)
    {
        queue->forcePush(sealFrame(t));
    }

    void
    sendError(FrameType t, Reason r, const std::string &msg)
    {
        wire::Enc e;
        e.u8(std::uint8_t(t));
        encodeError(e, ErrorInfo{r, msg});
        queue->forcePush(sealFrame(e.out));
    }

    std::shared_ptr<Session>
    sessionRef()
    {
        std::lock_guard<std::mutex> lk(m);
        return session;
    }

    /** Abort a submitted, unfinished session (client gone / protocol
     *  violation mid-run); parked sessions must be unparked to run
     *  their teardown quantum. */
    void
    abortSession()
    {
        std::shared_ptr<Session> s = sessionRef();
        if (s && submitted.load() && !s->complete()) {
            s->abort();
            daemon.pool_.unpark(s.get());
        }
    }

    void
    writerLoop()
    {
        std::vector<std::uint8_t> frame;
        try {
            while (queue->pop(frame)) {
                writeAll(fd, frame.data(), frame.size());
                // The queue may have just dropped below its bound;
                // tell the pool (no-op unless the session is parked).
                if (std::shared_ptr<Session> s = sessionRef())
                    daemon.pool_.unpark(s.get());
            }
        } catch (const ProtocolError &) {
            // Client stopped reading (died mid-run): drop the stream
            // and fail only this session.
            queue->closeSink();
            abortSession();
        }
    }

    /** Receive TraceData frames into a temp file until TraceEnd.
     *  @return the file path. */
    std::string
    receiveUpload()
    {
        char tmpl[256];
        std::snprintf(tmpl, sizeof(tmpl), "%s/faded_upload_XXXXXX",
                      daemon.cfg_.uploadDir.c_str());
        int tfd = ::mkstemp(tmpl);
        if (tfd < 0)
            throw ProtocolError("cannot create upload temp file");
        std::string path = tmpl;
        try {
            std::uint64_t total = 0;
            std::vector<std::uint8_t> body;
            for (;;) {
                if (!readFrame(fd, body))
                    throw ProtocolError("disconnect mid-upload");
                FrameType t = FrameType(body.at(0));
                if (t == FrameType::TraceEnd)
                    break;
                if (t != FrameType::TraceData)
                    throw ProtocolError("expected TraceData/TraceEnd");
                total += body.size() - 1;
                if (total > maxUploadBytes)
                    throw ProtocolError("upload exceeds size cap");
                std::size_t n = body.size() - 1;
                if (n &&
                    ::write(tfd, body.data() + 1, n) != ssize_t(n))
                    throw ProtocolError("cannot write upload temp "
                                        "file");
            }
        } catch (...) {
            ::close(tfd);
            std::remove(path.c_str());
            throw;
        }
        ::close(tfd);
        return path;
    }

    /** Configure (+ optional upload) -> session construction. */
    void
    handleConfigure(const std::vector<std::uint8_t> &body)
    {
        wire::Dec d = frameDec(body, "configure");
        WireSessionConfig wc = decodeConfig(d);
        std::string tracePath;
        if (wc.upload)
            tracePath = receiveUpload();
        try {
            auto s = std::make_shared<Session>(
                daemon.nextSessionId_.fetch_add(1) + 1, wc, tracePath,
                queue);
            {
                std::lock_guard<std::mutex> lk(m);
                session = std::move(s);
            }
            send(FrameType::Configured);
        } catch (const SessionReject &e) {
            // The Session ctor owns the temp file only on success.
            if (!tracePath.empty())
                std::remove(tracePath.c_str());
            sendError(FrameType::Rejected, e.reason, e.what());
        }
    }

    void
    handleRun()
    {
        std::shared_ptr<Session> s = sessionRef();
        if (!s)
            throw ProtocolError("Run before a successful Configure");
        if (submitted.load())
            throw ProtocolError("Run sent twice");
        Reason r = daemon.pool_.submit(s);
        if (r != Reason::None) {
            sendError(FrameType::Rejected, r,
                      std::string("not admitted: ") + reasonName(r));
            return;
        }
        submitted.store(true);
        send(FrameType::Started);
    }

    void
    readerLoop()
    {
        bool clean = false;
        try {
            readMagic(fd);
            std::vector<std::uint8_t> body;
            if (!readFrame(fd, body) ||
                FrameType(body.at(0)) != FrameType::Hello)
                throw ProtocolError("expected Hello");
            wire::Dec d = frameDec(body, "hello");
            std::uint32_t version = decodeHello(d);
            if (version != protocolVersion) {
                sendError(FrameType::Rejected, Reason::Protocol,
                          "unsupported protocol version " +
                              std::to_string(version));
                throw ProtocolError("version mismatch");
            }
            {
                wire::Enc e;
                e.u8(std::uint8_t(FrameType::HelloOk));
                HelloInfo h;
                h.maxSessions = daemon.pool_.maxActive();
                h.activeSessions = daemon.pool_.active();
                encodeHelloOk(e, h);
                queue->forcePush(sealFrame(e.out));
            }

            while (readFrame(fd, body)) {
                switch (FrameType(body.at(0))) {
                  case FrameType::Configure:
                    if (sessionRef())
                        throw ProtocolError("Configure sent twice");
                    handleConfigure(body);
                    break;
                  case FrameType::Run:
                    handleRun();
                    break;
                  case FrameType::Close:
                    clean = true;
                    break;
                  default:
                    throw ProtocolError("unexpected frame type");
                }
                if (clean)
                    break;
            }
        } catch (const ProtocolError &e) {
            // Best-effort diagnostic; the peer may already be gone.
            sendError(FrameType::Error, Reason::Protocol, e.what());
        }

        // Teardown: a still-running session is aborted (client died or
        // closed early); otherwise just let the writer drain and exit.
        abortSession();
        queue->finish();
        if (writer.joinable())
            writer.join();
        // Half-close after the last frame: the peer sees a clean EOF
        // instead of an idle socket that only dies when reaped.
        ::shutdown(fd, SHUT_WR);
        done.store(true);
    }

    Faded &daemon;
    int fd;
    std::shared_ptr<OutQueue> queue;
    std::mutex m;
    std::shared_ptr<Session> session;
    std::atomic<bool> submitted{false};
    std::atomic<bool> done{false};
    std::thread writer;
    std::thread reader;
};

Faded::Faded(const FadedConfig &cfg) : cfg_(cfg), pool_(cfg.pool) {}

Faded::~Faded()
{
    stop(false);
}

void
Faded::start()
{
    listenFd_.store(listenUnix(cfg_.socketPath));
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Faded::acceptLoop()
{
    for (;;) {
        int lfd = listenFd_.load();
        if (lfd < 0)
            return;
        int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                return;
            if (errno == EINTR)
                continue;
            return;
        }
        std::lock_guard<std::mutex> lk(connMutex_);
        reapDone();
        conns_.push_back(std::make_unique<Connection>(*this, fd));
    }
}

void
Faded::reapDone()
{
    // connMutex_ held. ~Connection joins the reader, which has
    // already exited for done connections.
    for (auto it = conns_.begin(); it != conns_.end();)
        it = (*it)->done.load() ? conns_.erase(it) : std::next(it);
}

void
Faded::stop(bool drain)
{
    if (stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);
    int lfd = listenFd_.exchange(-1);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();

    // Finish (or abort) every in-flight session first: their terminal
    // frames land in the connection queues before any socket closes,
    // so a draining stop loses no results.
    pool_.shutdown(drain);

    std::lock_guard<std::mutex> lk(connMutex_);
    for (auto &c : conns_)
        c->kick(drain);
    conns_.clear();
    ::unlink(cfg_.socketPath.c_str());
}

} // namespace fade::daemon
