/**
 * @file
 * faded — the long-lived monitoring daemon. Listens on a unix stream
 * socket, speaks the framed protocol (daemon/protocol.hh), and runs
 * one session per connection on the shared session pool
 * (daemon/sessionpool.hh).
 *
 * Per connection: a reader thread drives the conversation state
 * machine (hello -> configure [-> upload] -> run -> close) and a
 * writer thread drains the session's bounded output queue to the
 * socket, reporting each drained frame to the pool so a parked
 * session becomes runnable again. Protocol violations answer with a
 * typed Error frame and tear down only that connection; a vanished
 * client aborts only its own session. stop() (default drain) stops
 * admission, lets every in-flight session finish and flush its
 * Result, then closes the connections; stop(false) aborts instead.
 */

#ifndef FADE_DAEMON_DAEMON_HH
#define FADE_DAEMON_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/sessionpool.hh"

namespace fade::daemon
{

/** Daemon knobs. */
struct FadedConfig
{
    /** Unix socket path (sockaddr_un: keep it short). */
    std::string socketPath;
    PoolConfig pool;
    /** Per-session output queue bound, in frames (backpressure
     *  threshold). */
    std::size_t outFrames = 64;
    /** Directory for uploaded .ftrace files (one temp file per
     *  upload, removed with the session). */
    std::string uploadDir = "/tmp";
};

class Faded
{
  public:
    explicit Faded(const FadedConfig &cfg);
    ~Faded();

    Faded(const Faded &) = delete;
    Faded &operator=(const Faded &) = delete;

    /** Bind, listen, and start accepting. Throws ProtocolError when
     *  the socket cannot be created. */
    void start();

    /** Stop accepting; drain (default) or abort in-flight sessions;
     *  close every connection and join all threads. Idempotent. */
    void stop(bool drain = true);

    unsigned activeSessions() const { return pool_.active(); }
    const std::string &socketPath() const { return cfg_.socketPath; }

  private:
    struct Connection;

    void acceptLoop();
    void reapDone();

    FadedConfig cfg_;
    SessionPool pool_;
    std::atomic<std::uint64_t> nextSessionId_{0};
    /** Atomic: stop() retires it while the accept loop reads it. */
    std::atomic<int> listenFd_{-1};
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;

    std::mutex connMutex_;
    std::vector<std::unique_ptr<Connection>> conns_;
};

} // namespace fade::daemon

#endif // FADE_DAEMON_DAEMON_HH
