#include "daemon/protocol.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fade::daemon
{

namespace
{

[[noreturn]] void
sysFail(const char *what)
{
    throw ProtocolError(std::string(what) + ": " +
                        std::strerror(errno));
}

} // namespace

const char *
reasonName(Reason r)
{
    switch (r) {
      case Reason::None:
        return "none";
      case Reason::AdmissionFull:
        return "admission-full";
      case Reason::BadConfig:
        return "bad-config";
      case Reason::Protocol:
        return "protocol";
      case Reason::BadTrace:
        return "bad-trace";
      case Reason::Shutdown:
        return "shutdown";
      case Reason::Aborted:
        return "aborted";
      case Reason::Internal:
        return "internal";
    }
    return "unknown";
}

void
protocolDecodeFail(const std::string &msg)
{
    throw ProtocolError("frame " + msg);
}

// ------------------------------------------------------------ payloads

void
encodeHello(wire::Enc &e, std::uint32_t version)
{
    e.varint(version);
}

std::uint32_t
decodeHello(wire::Dec &d)
{
    return std::uint32_t(d.varint());
}

void
encodeHelloOk(wire::Enc &e, const HelloInfo &h)
{
    e.varint(h.version);
    e.varint(h.maxSessions);
    e.varint(h.activeSessions);
}

HelloInfo
decodeHelloOk(wire::Dec &d)
{
    HelloInfo h;
    h.version = std::uint32_t(d.varint());
    h.maxSessions = std::uint32_t(d.varint());
    h.activeSessions = std::uint32_t(d.varint());
    return h;
}

void
encodeConfig(wire::Enc &e, const WireSessionConfig &c)
{
    e.str(c.monitor);
    e.varint(c.profiles.size());
    for (const std::string &p : c.profiles)
        e.str(p);
    e.varint(c.shards);
    e.varint(c.clusters);
    e.varint(c.fadesPerShard);
    e.varint(c.remoteLatency);
    e.varint(c.sliceTicks);
    e.u8(c.policy);
    e.u8(c.engine);
    e.varint(c.warmup);
    e.varint(c.measure);
    e.varint(c.seedOffset);
    e.u8(c.upload ? 1 : 0);
}

WireSessionConfig
decodeConfig(wire::Dec &d)
{
    WireSessionConfig c;
    c.monitor = d.str();
    std::uint64_t n = d.varint();
    if (n > 4096)
        d.fail("absurd profile count");
    c.profiles.clear();
    for (std::uint64_t i = 0; i < n; ++i)
        c.profiles.push_back(d.str());
    c.shards = std::uint32_t(d.varint());
    c.clusters = std::uint32_t(d.varint());
    c.fadesPerShard = std::uint32_t(d.varint());
    c.remoteLatency = std::uint32_t(d.varint());
    c.sliceTicks = d.varint();
    c.policy = d.u8();
    c.engine = d.u8();
    c.warmup = d.varint();
    c.measure = d.varint();
    c.seedOffset = d.varint();
    c.upload = d.u8() != 0;
    return c;
}

void
encodeProgress(wire::Enc &e, const ProgressInfo &p)
{
    e.u8(p.phase);
    e.varint(p.instructions);
    e.varint(p.events);
}

ProgressInfo
decodeProgress(wire::Dec &d)
{
    ProgressInfo p;
    p.phase = d.u8();
    p.instructions = d.varint();
    p.events = d.varint();
    return p;
}

void
encodeResult(wire::Enc &e, const ResultInfo &r)
{
    e.fixed64(r.hash);
    e.varint(r.resultFp.size());
    for (std::uint64_t v : r.resultFp)
        e.fixed64(v);
    e.varint(r.functionalFp.size());
    for (std::uint64_t v : r.functionalFp)
        e.fixed64(v);
    e.varint(r.instructions);
    e.varint(r.events);
    e.varint(r.cycles);
    e.varint(r.bugReports);
    e.varint(r.quanta);
    e.varint(r.parks);
    e.varint(r.completionSeq);
}

ResultInfo
decodeResult(wire::Dec &d)
{
    ResultInfo r;
    r.hash = d.fixed64();
    std::uint64_t n = d.varint();
    if (n * 8 > d.remaining())
        d.fail("truncated result fingerprint");
    for (std::uint64_t i = 0; i < n; ++i)
        r.resultFp.push_back(d.fixed64());
    n = d.varint();
    if (n * 8 > d.remaining())
        d.fail("truncated functional fingerprint");
    for (std::uint64_t i = 0; i < n; ++i)
        r.functionalFp.push_back(d.fixed64());
    r.instructions = d.varint();
    r.events = d.varint();
    r.cycles = d.varint();
    r.bugReports = d.varint();
    r.quanta = d.varint();
    r.parks = d.varint();
    r.completionSeq = d.varint();
    return r;
}

void
encodeError(wire::Enc &e, const ErrorInfo &err)
{
    e.u8(std::uint8_t(err.reason));
    e.str(err.message);
}

ErrorInfo
decodeError(wire::Dec &d)
{
    ErrorInfo err;
    err.reason = Reason(d.u8());
    err.message = d.str();
    return err;
}

// ------------------------------------------------------------- framing

std::vector<std::uint8_t>
sealFrame(const std::vector<std::uint8_t> &body)
{
    wire::Enc e;
    e.out.reserve(body.size() + 8);
    e.fixed32(std::uint32_t(body.size()));
    e.out.insert(e.out.end(), body.begin(), body.end());
    e.fixed32(wire::crc32(body.data(), body.size()));
    return std::move(e.out);
}

std::vector<std::uint8_t>
sealFrame(FrameType t)
{
    return sealFrame(std::vector<std::uint8_t>{std::uint8_t(t)});
}

// ------------------------------------------------------- socket plumbing

namespace
{

sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw ProtocolError("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

int
listenUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        sysFail("socket");
    sockaddr_un addr = unixAddr(path);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        sysFail("bind");
    }
    if (::listen(fd, 64) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        sysFail("listen");
    }
    return fd;
}

int
connectUnix(const std::string &path, int timeoutMs)
{
    sockaddr_un addr = unixAddr(path);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            sysFail("socket");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        int e = errno;
        ::close(fd);
        // The daemon may still be binding its socket; keep trying
        // until the caller's deadline.
        if ((e == ENOENT || e == ECONNREFUSED) &&
            std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
        }
        errno = e;
        sysFail(("connect " + path).c_str());
    }
}

void
writeAll(int fd, const void *p, std::size_t n)
{
    const std::uint8_t *b = static_cast<const std::uint8_t *>(p);
    while (n != 0) {
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here,
        // not kill the daemon with SIGPIPE.
        ssize_t w = ::send(fd, b, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            sysFail("send");
        }
        b += w;
        n -= std::size_t(w);
    }
}

namespace
{

/** Read exactly @p n bytes; returns false on EOF at offset 0 when
 *  @p eofOk, throws on every other short read or error. */
bool
readAll(int fd, void *p, std::size_t n, bool eofOk)
{
    std::uint8_t *b = static_cast<std::uint8_t *>(p);
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, b + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            sysFail("recv");
        }
        if (r == 0) {
            if (got == 0 && eofOk)
                return false;
            throw ProtocolError("connection truncated mid-frame");
        }
        got += std::size_t(r);
    }
    return true;
}

} // namespace

bool
readFrame(int fd, std::vector<std::uint8_t> &body)
{
    std::uint8_t lenBytes[4];
    if (!readAll(fd, lenBytes, 4, true))
        return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= std::uint32_t(lenBytes[i]) << (8 * i);
    if (len == 0 || len > maxFrameBytes)
        throw ProtocolError("frame length " + std::to_string(len) +
                            " out of range");
    body.resize(len);
    readAll(fd, body.data(), len, false);
    std::uint8_t crcBytes[4];
    readAll(fd, crcBytes, 4, false);
    std::uint32_t want = 0;
    for (int i = 0; i < 4; ++i)
        want |= std::uint32_t(crcBytes[i]) << (8 * i);
    std::uint32_t got = wire::crc32(body.data(), body.size());
    if (want != got)
        throw ProtocolError("frame CRC mismatch");
    return true;
}

void
writeFrame(int fd, const std::vector<std::uint8_t> &body)
{
    std::vector<std::uint8_t> sealed = sealFrame(body);
    writeAll(fd, sealed.data(), sealed.size());
}

void
readMagic(int fd)
{
    char magic[sizeof(connectionMagic)];
    if (!readAll(fd, magic, sizeof(magic), true))
        throw ProtocolError("connection closed before magic");
    if (std::memcmp(magic, connectionMagic, sizeof(magic)) != 0)
        throw ProtocolError("bad connection magic");
}

void
writeMagic(int fd)
{
    writeAll(fd, connectionMagic, sizeof(connectionMagic));
}

} // namespace fade::daemon
