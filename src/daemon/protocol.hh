/**
 * @file
 * Wire protocol of the monitoring daemon (faded): a length-prefixed,
 * CRC-protected frame stream over a SOCK_STREAM unix socket, built on
 * the same varint/CRC primitives as the .ftrace format
 * (trace/wire.hh).
 *
 * Connection layout:
 *
 *   preamble (client -> server): magic "FADEDMN1" (8 bytes)
 *   then frames, both directions:
 *     fixed32 length L of the body (1 <= L <= maxFrameBytes)
 *     body: u8 frame type, payload (type-specific, varint-encoded)
 *     fixed32 CRC32 of the body bytes
 *
 * The first client frame must be Hello carrying the protocol version;
 * the server answers HelloOk (or Rejected on a version it does not
 * speak). Versioning rule: any incompatible change to the framing or a
 * payload bumps protocolVersion; the server rejects versions it does
 * not know, like the trace reader rejects unknown .ftrace versions.
 *
 * Session conversation (one session per connection):
 *
 *   client                         server
 *   Hello{version}            ->
 *                             <-   HelloOk{version, limits}
 *   Configure{config}         ->       (live: answers immediately;
 *   [TraceData{bytes}...           upload: answers after TraceEnd
 *    TraceEnd{}]              ->       validates the uploaded file)
 *                             <-   Configured{} | Rejected{reason}
 *   Run{}                     ->
 *                             <-   Started{} | Rejected{reason}
 *                             <-   Progress{phase, insts, events}...
 *                             <-   Result{fingerprints, stats}
 *                             <-   Bye{}
 *   Close{}                   ->       (any time: orderly teardown)
 *
 * Robustness contract: malformed input of any kind — bad magic, a
 * declared length beyond maxFrameBytes, a CRC mismatch, a truncated
 * frame, an unknown type, a frame illegal in the session's state, or a
 * connection torn down mid-anything — yields a typed per-session error
 * (Rejected/Error frame when the socket still works, otherwise a clean
 * local teardown). It never crashes the daemon, never hangs another
 * session, and never leaks state across sessions
 * (tests/test_daemon.cc fuzzes exactly these cases under ASan/UBSan).
 */

#ifndef FADE_DAEMON_PROTOCOL_HH
#define FADE_DAEMON_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/wire.hh"

namespace fade::daemon
{

/** Bumped on any incompatible framing or payload change. */
constexpr std::uint32_t protocolVersion = 1;

/** Connection preamble sent by the client before the first frame. */
constexpr char connectionMagic[8] = {'F', 'A', 'D', 'E',
                                     'D', 'M', 'N', '1'};

/** Hard cap on one frame's body; a declared length beyond it is
 *  rejected before any allocation. Result frames of the largest legal
 *  session shape stay far below this. */
constexpr std::size_t maxFrameBytes = 4u << 20;

/** Malformed frame stream or socket failure. Always carries a
 *  human-readable diagnostic; the daemon maps it to a typed Error
 *  frame, the client surfaces it to the caller. */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Frame types. Client frames occupy 0x01..0x7F, server frames have
 *  the high bit set. */
enum class FrameType : std::uint8_t
{
    // client -> server
    Hello = 0x01,
    Configure = 0x02,
    TraceData = 0x03,
    TraceEnd = 0x04,
    Run = 0x05,
    Close = 0x06,
    // server -> client
    HelloOk = 0x81,
    Configured = 0x82,
    Rejected = 0x83,
    Started = 0x84,
    Progress = 0x85,
    Result = 0x86,
    Bye = 0x87,
    Error = 0x88,
};

/** Typed reasons carried by Rejected and Error frames. */
enum class Reason : std::uint8_t
{
    None = 0,
    /** Admission control: the session pool is at its in-flight limit. */
    AdmissionFull = 1,
    /** Configuration failed validation (unknown monitor/profile,
     *  illegal shape, instruction budget exceeded). */
    BadConfig = 2,
    /** Frame stream violated the protocol (framing, CRC, state). */
    Protocol = 3,
    /** Uploaded trace failed .ftrace validation. */
    BadTrace = 4,
    /** The daemon is shutting down and admits no new work. */
    Shutdown = 5,
    /** Client vanished / session torn down before completion. */
    Aborted = 6,
    /** Unexpected server-side failure. */
    Internal = 7,
};

const char *reasonName(Reason r);

/**
 * Session configuration as it crosses the wire. Names (monitor,
 * benchmark profiles) are resolved server-side against the same
 * factories the benchmark harnesses use, so a daemon session and a
 * standalone run of the same wire config are the same experiment
 * (daemon/session.hh: sessionMultiCoreConfig()).
 */
struct WireSessionConfig
{
    /** Lifeguard name ("" = unmonitored baseline). */
    std::string monitor = "MemLeak";
    /** Benchmark profile names, dealt round-robin over shards exactly
     *  like MultiCoreConfig::workloads ("-mt" names a multi-threaded
     *  process workload). Ignored (and must be empty) under upload. */
    std::vector<std::string> profiles;
    std::uint32_t shards = 1;
    std::uint32_t clusters = 1;
    std::uint32_t fadesPerShard = 1;
    std::uint32_t remoteLatency = 40;
    /** 0 keeps the scheduler default. */
    std::uint64_t sliceTicks = 0;
    /** SchedulerPolicy by value (0 = lockstep, 1 = parallel). */
    std::uint8_t policy = 0;
    /** Engine by value (0 = percycle, 1 = batched, 2 = rungrain). */
    std::uint8_t engine = 0;
    std::uint64_t warmup = 0;
    std::uint64_t measure = 0;
    /** Added to every profile's seed (load generators use it to run
     *  distinct sessions of one shape). */
    std::uint64_t seedOffset = 0;
    /** An .ftrace upload follows (TraceData* TraceEnd); the session
     *  replays it under the trace's own manifest config, with
     *  policy/engine above applied as overrides. */
    bool upload = false;
};

/** Server limits advertised in HelloOk. */
struct HelloInfo
{
    std::uint32_t version = protocolVersion;
    std::uint32_t maxSessions = 0;
    std::uint32_t activeSessions = 0;
};

/** Progress report of a running session. */
struct ProgressInfo
{
    std::uint8_t phase = 0; ///< 0 = warmup, 1 = measure
    std::uint64_t instructions = 0;
    std::uint64_t events = 0;
};

/** Final result of a completed session. */
struct ResultInfo
{
    /** fingerprintHash() of resultFp. */
    std::uint64_t hash = 0;
    /** resultFingerprint() of the measured run — every simulated
     *  value, bit-comparable against a standalone run. */
    std::vector<std::uint64_t> resultFp;
    /** MultiCoreSystem::functionalFingerprint(), taken after the
     *  measured run (engine-invariant functional results). */
    std::vector<std::uint64_t> functionalFp;
    std::uint64_t instructions = 0;
    std::uint64_t events = 0;
    std::uint64_t cycles = 0;
    std::uint64_t bugReports = 0;
    /** Scheduling telemetry: pool quanta executed and times the
     *  session was parked on a full output queue (backpressure). */
    std::uint64_t quanta = 0;
    std::uint64_t parks = 0;
    /** 1-based order of completion among the daemon's sessions. */
    std::uint64_t completionSeq = 0;
};

/** Rejected/Error payload. */
struct ErrorInfo
{
    Reason reason = Reason::None;
    std::string message;
};

// ------------------------------------------------------------ payloads
// Each frame body is the type byte followed by the payload encoded
// with these helpers. Decoders take a wire::Dec positioned after the
// type byte and fail through its handler (ProtocolError on both ends).

void encodeHello(wire::Enc &e, std::uint32_t version);
std::uint32_t decodeHello(wire::Dec &d);

void encodeHelloOk(wire::Enc &e, const HelloInfo &h);
HelloInfo decodeHelloOk(wire::Dec &d);

void encodeConfig(wire::Enc &e, const WireSessionConfig &c);
WireSessionConfig decodeConfig(wire::Dec &d);

void encodeProgress(wire::Enc &e, const ProgressInfo &p);
ProgressInfo decodeProgress(wire::Dec &d);

void encodeResult(wire::Enc &e, const ResultInfo &r);
ResultInfo decodeResult(wire::Dec &d);

void encodeError(wire::Enc &e, const ErrorInfo &err);
ErrorInfo decodeError(wire::Dec &d);

// ------------------------------------------------------------- framing

/** Encode a complete frame (length prefix + body + CRC) around
 *  @p body, which must start with the FrameType byte. */
std::vector<std::uint8_t> sealFrame(const std::vector<std::uint8_t> &body);

/** Build a frame with just a type byte and no payload. */
std::vector<std::uint8_t> sealFrame(FrameType t);

// ------------------------------------------------------- socket plumbing

/** Create, bind, and listen on a unix stream socket at @p path
 *  (unlinking a stale file first). Throws ProtocolError on failure. */
int listenUnix(const std::string &path);

/** Connect to the daemon at @p path, retrying while the socket does
 *  not exist / refuses, up to @p timeoutMs. Throws ProtocolError. */
int connectUnix(const std::string &path, int timeoutMs);

/** Write all of @p n bytes (MSG_NOSIGNAL; throws ProtocolError on any
 *  failure, including a peer that went away). */
void writeAll(int fd, const void *p, std::size_t n);

/**
 * Read one frame into @p body (the type byte + payload, CRC already
 * verified and stripped).
 * @return false on a clean end of stream before the first length
 * byte. Throws ProtocolError on oversized declared lengths, CRC
 * mismatches, truncation inside a frame, or socket errors.
 */
bool readFrame(int fd, std::vector<std::uint8_t> &body);

/** Seal and write one frame. */
void writeFrame(int fd, const std::vector<std::uint8_t> &body);

/** Read the 8-byte connection preamble; throws on mismatch or EOF. */
void readMagic(int fd);

/** Write the 8-byte connection preamble. */
void writeMagic(int fd);

/** The [[noreturn]] wire::Dec fail handler both ends use. */
[[noreturn]] void protocolDecodeFail(const std::string &msg);

/** Make a wire::Dec over a received frame body, positioned after the
 *  type byte. */
inline wire::Dec
frameDec(const std::vector<std::uint8_t> &body, const char *region)
{
    return wire::Dec(body.data() + 1, body.size() - 1, region,
                     &protocolDecodeFail);
}

} // namespace fade::daemon

#endif // FADE_DAEMON_PROTOCOL_HH
