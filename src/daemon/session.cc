#include "daemon/session.hh"

#include <algorithm>
#include <cstdio>

#include "monitor/factory.hh"
#include "trace/profile.hh"

namespace fade::daemon
{

namespace
{

bool
contains(const std::vector<std::string> &v, const std::string &n)
{
    return std::find(v.begin(), v.end(), n) != v.end();
}

bool
isThreadedName(const std::string &name)
{
    return name.size() > 3 &&
           name.compare(name.size() - 3, 3, "-mt") == 0;
}

/** Resolve a profile name exactly like the benchmark harnesses
 *  (bench/common.hh: profileFor), but reject unknown names instead of
 *  letting the profile factory fatal(). */
BenchProfile
resolveProfile(const std::string &monitor, const std::string &name)
{
    if (isThreadedName(name)) {
        std::string base = name.substr(0, name.size() - 3);
        if (!contains(parallelBenchmarks(), base))
            throw SessionReject(Reason::BadConfig,
                                "unknown -mt base benchmark: " + name);
        return threadedProfile(base);
    }
    if (monitor == "AtomCheck") {
        if (!contains(parallelBenchmarks(), name))
            throw SessionReject(Reason::BadConfig,
                                "unknown parallel benchmark: " + name);
        return parallelProfile(name);
    }
    if (!contains(specBenchmarks(), name))
        throw SessionReject(Reason::BadConfig,
                            "unknown benchmark profile: " + name);
    return specProfile(name);
}

void
checkShape(std::uint32_t shards, std::uint32_t clusters,
           std::uint32_t fadesPerShard)
{
    if (shards == 0 || shards > maxSessionShards)
        throw SessionReject(Reason::BadConfig,
                            "shards must be 1.." +
                                std::to_string(maxSessionShards));
    if (clusters == 0 || shards % clusters != 0)
        throw SessionReject(Reason::BadConfig,
                            "shards must divide evenly over clusters");
    if (fadesPerShard == 0 || fadesPerShard > maxFadesPerShard)
        throw SessionReject(Reason::BadConfig,
                            "fadesPerShard must be 1.." +
                                std::to_string(maxFadesPerShard));
}

void
checkKnobs(const WireSessionConfig &wc)
{
    if (wc.policy > 1)
        throw SessionReject(Reason::BadConfig,
                            "unknown scheduler policy value");
    if (wc.engine > 2)
        throw SessionReject(Reason::BadConfig, "unknown engine value");
    if (wc.sliceTicks != 0 &&
        (wc.sliceTicks < 16 || wc.sliceTicks > (1u << 20)))
        throw SessionReject(Reason::BadConfig,
                            "sliceTicks out of range (16..1M)");
}

void
checkBudget(std::uint64_t warmup, std::uint64_t measure)
{
    if (measure == 0)
        throw SessionReject(Reason::BadConfig,
                            "measure instructions must be >= 1");
    if (warmup > maxSessionInstructions ||
        measure > maxSessionInstructions ||
        warmup + measure > maxSessionInstructions)
        throw SessionReject(
            Reason::BadConfig,
            "instruction budget exceeds per-session cap of " +
                std::to_string(maxSessionInstructions));
}

void
applyOverrides(MultiCoreConfig &cfg, const WireSessionConfig &wc)
{
    cfg.scheduler.policy = wc.policy == 1
                               ? SchedulerPolicy::ParallelBatched
                               : SchedulerPolicy::Lockstep;
    if (wc.sliceTicks != 0)
        cfg.scheduler.sliceTicks = wc.sliceTicks;
    cfg.engine = Engine(wc.engine);
}

SessionPlan
livePlan(const WireSessionConfig &wc)
{
    if (wc.profiles.empty())
        throw SessionReject(Reason::BadConfig,
                            "a live session needs >= 1 profile");
    if (wc.profiles.size() > maxSessionShards)
        throw SessionReject(Reason::BadConfig, "too many profiles");
    if (!wc.monitor.empty() &&
        !contains(monitorNames(), wc.monitor))
        throw SessionReject(Reason::BadConfig,
                            "unknown monitor: " + wc.monitor);
    checkShape(wc.shards, wc.clusters, wc.fadesPerShard);
    checkKnobs(wc);
    checkBudget(wc.warmup, wc.measure);

    SessionPlan plan;
    plan.cfg.monitor = wc.monitor;
    for (const std::string &name : wc.profiles) {
        BenchProfile p = resolveProfile(wc.monitor, name);
        p.seed += wc.seedOffset;
        plan.cfg.workloads.push_back(p);
    }

    // Multi-threaded process workloads carry the same constraints the
    // system would fatal on: one process profile for the whole system,
    // at least one thread per shard. The cross-shard monitors only
    // make sense on one.
    const bool threaded = plan.cfg.workloads.front().procThreads > 0;
    for (const BenchProfile &p : plan.cfg.workloads)
        if ((p.procThreads > 0) != threaded ||
            (threaded && plan.cfg.workloads.size() > 1))
            throw SessionReject(Reason::BadConfig,
                                "a -mt process profile cannot mix "
                                "with other workloads");
    if (threaded &&
        wc.shards > plan.cfg.workloads.front().procThreads)
        throw SessionReject(Reason::BadConfig,
                            "more shards than process threads");
    if ((wc.monitor == "RaceCheck" || wc.monitor == "SharedTaint") &&
        !threaded)
        throw SessionReject(Reason::BadConfig,
                            wc.monitor +
                                " needs a -mt process workload");

    plan.cfg.numShards = wc.shards;
    plan.cfg.topology.clusters = wc.clusters;
    plan.cfg.topology.fadesPerShard = wc.fadesPerShard;
    plan.cfg.topology.remoteLatency = wc.remoteLatency;
    applyOverrides(plan.cfg, wc);
    plan.warmup = wc.warmup;
    plan.measure = wc.measure;
    return plan;
}

SessionPlan
uploadPlan(const WireSessionConfig &wc, const std::string &tracePath)
{
    if (!wc.profiles.empty())
        throw SessionReject(Reason::BadConfig,
                            "an upload session takes its workloads "
                            "from the trace, not the config");
    if (wc.warmup != 0 || wc.measure != 0 || wc.seedOffset != 0)
        throw SessionReject(Reason::BadConfig,
                            "an upload session takes its instruction "
                            "budget and seeds from the trace");
    if (tracePath.empty())
        throw SessionReject(Reason::BadTrace, "no trace was uploaded");
    checkKnobs(wc);

    SessionPlan plan;
    TraceManifest m;
    try {
        plan.cfg = replayConfig(tracePath);
        m = TraceReader(tracePath).manifest();
    } catch (const TraceError &e) {
        throw SessionReject(Reason::BadTrace, e.what());
    }
    if (!m.present)
        throw SessionReject(Reason::BadTrace,
                            "uploaded trace has no replay manifest");
    checkBudget(m.warmupInstructions, m.measureInstructions);
    if (m.numShards > maxSessionShards)
        throw SessionReject(Reason::BadTrace,
                            "uploaded trace exceeds the session "
                            "shard cap");
    applyOverrides(plan.cfg, wc);
    plan.warmup = m.warmupInstructions;
    plan.measure = m.measureInstructions;
    return plan;
}

std::uint64_t
sumBugReports(const MultiCoreResult &r)
{
    std::uint64_t n = 0;
    for (const ShardResult &s : r.shards)
        n += s.bugReports;
    return n;
}

/** Fingerprint a finished run into a Result payload; ordering (result
 *  fingerprint before the monitor-finishing functional fingerprint)
 *  matches the harnesses, so the vectors compare bit for bit. */
ResultInfo
fillResult(MultiCoreSystem &sys, const MultiCoreResult &res)
{
    ResultInfo r;
    r.resultFp = resultFingerprint(sys, res);
    r.hash = fingerprintHash(r.resultFp);
    r.functionalFp = sys.functionalFingerprint();
    r.instructions = res.totalInstructions;
    r.events = res.totalEvents;
    r.cycles = res.cycles;
    r.bugReports = sumBugReports(res);
    return r;
}

} // namespace

SessionPlan
sessionPlan(const WireSessionConfig &wc, const std::string &tracePath)
{
    return wc.upload ? uploadPlan(wc, tracePath) : livePlan(wc);
}

ResultInfo
standaloneRun(const WireSessionConfig &wc, const std::string &tracePath)
{
    SessionPlan plan = sessionPlan(wc, tracePath);
    MultiCoreSystem sys(plan.cfg);
    sys.warmup(plan.warmup);
    MultiCoreResult res = sys.run(plan.measure);
    return fillResult(sys, res);
}

// ------------------------------------------------------------- OutQueue

bool
OutQueue::tryPush(std::vector<std::uint8_t> frame)
{
    std::lock_guard<std::mutex> lk(m_);
    if (closed_ || finished_)
        return true;
    if (q_.size() >= cap_)
        return false;
    q_.push_back(std::move(frame));
    cv_.notify_one();
    return true;
}

void
OutQueue::forcePush(std::vector<std::uint8_t> frame)
{
    std::lock_guard<std::mutex> lk(m_);
    if (closed_ || finished_)
        return;
    q_.push_back(std::move(frame));
    cv_.notify_one();
}

void
OutQueue::finish()
{
    std::lock_guard<std::mutex> lk(m_);
    finished_ = true;
    cv_.notify_all();
}

void
OutQueue::closeSink()
{
    std::lock_guard<std::mutex> lk(m_);
    closed_ = true;
    q_.clear();
    cv_.notify_all();
}

bool
OutQueue::pop(std::vector<std::uint8_t> &frame)
{
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return !q_.empty() || finished_ || closed_; });
    if (closed_ || q_.empty())
        return false;
    frame = std::move(q_.front());
    q_.pop_front();
    return true;
}

bool
OutQueue::full() const
{
    std::lock_guard<std::mutex> lk(m_);
    return !closed_ && !finished_ && q_.size() >= cap_;
}

// -------------------------------------------------------------- Session

Session::Session(std::uint64_t id, const WireSessionConfig &wc,
                 const std::string &tracePath,
                 std::shared_ptr<OutQueue> out)
    : id_(id), plan_(sessionPlan(wc, tracePath)),
      tracePath_(tracePath), out_(std::move(out))
{
}

Session::~Session()
{
    if (!tracePath_.empty())
        std::remove(tracePath_.c_str());
}

void
Session::abort()
{
    aborted_.store(true);
    out_->closeSink();
}

void
Session::emitProgress()
{
    wire::Enc e;
    e.u8(std::uint8_t(FrameType::Progress));
    ProgressInfo p;
    p.phase = phase_ == Phase::Warm ? 0 : 1;
    p.instructions = sys_->retiredTotal();
    p.events = sys_->producedTotal();
    encodeProgress(e, p);
    out_->tryPush(sealFrame(e.out));
}

void
Session::finishRun()
{
    MultiCoreResult res = sys_->finishMeasure();
    ResultInfo r = fillResult(*sys_, res);
    r.quanta = quanta_;
    r.parks = parks_.load();
    if (seqCounter_)
        r.completionSeq = seqCounter_->fetch_add(1) + 1;

    wire::Enc e;
    e.u8(std::uint8_t(FrameType::Result));
    encodeResult(e, r);
    out_->forcePush(sealFrame(e.out));
    out_->forcePush(sealFrame(FrameType::Bye));
    sys_.reset();
    phase_ = Phase::Done;
    // Terminal state before finish(): anyone who drains the queue to
    // its end must already observe complete().
    complete_.store(true);
    out_->finish();
}

void
Session::failRun(Reason r, const std::string &msg)
{
    wire::Enc e;
    e.u8(std::uint8_t(FrameType::Error));
    encodeError(e, ErrorInfo{r, msg});
    out_->forcePush(sealFrame(e.out));
    sys_.reset();
    phase_ = Phase::Done;
    complete_.store(true);
    out_->finish();
}

bool
Session::step(std::uint64_t quantumEpochs)
{
    if (phase_ == Phase::Done)
        return true;
    if (aborted_.load()) {
        // Tear the simulator down on the worker (it may be large);
        // the sink is closed, so no frames are owed.
        sys_.reset();
        phase_ = Phase::Done;
        complete_.store(true);
        return true;
    }

    ++quanta_;
    try {
        switch (phase_) {
          case Phase::Build:
            sys_ = std::make_unique<MultiCoreSystem>(plan_.cfg);
            sys_->beginWarmup(plan_.warmup);
            phase_ = Phase::Warm;
            break;
          case Phase::Warm:
            if (sys_->advanceRun(quantumEpochs)) {
                sys_->finishWarmup();
                sys_->beginMeasure(plan_.measure);
                phase_ = Phase::Measure;
            }
            emitProgress();
            break;
          case Phase::Measure:
            if (sys_->advanceRun(quantumEpochs))
                finishRun();
            else
                emitProgress();
            break;
          case Phase::Done:
            break;
        }
    } catch (const TraceError &e) {
        // An uploaded trace can pass header validation and still turn
        // out corrupt when a block is decoded mid-run.
        failRun(Reason::BadTrace, e.what());
    } catch (const std::exception &e) {
        failRun(Reason::Internal, e.what());
    }
    return phase_ == Phase::Done;
}

} // namespace fade::daemon
