/**
 * @file
 * One daemon session: a client-supplied monitoring experiment — full
 * knob matrix (profile x monitor x shard count x scheduler policy x
 * engine x topology), live-generated or replayed from an uploaded
 * .ftrace — validated, built into a MultiCoreSystem, and executed in
 * bounded quanta under the session pool.
 *
 * Validation happens here, before any simulator object exists:
 * fatal()/panic() terminate the process by design, so every condition
 * the construction path would fatal on (unknown monitor or profile
 * names, shard/cluster divisibility, -mt process constraints, filter
 * unit bounds) is checked against client input first and surfaced as a
 * typed SessionReject instead. A config that passes sessionPlan()
 * cannot reach a fatal().
 *
 * Isolation argument, step by step: a Session owns its entire
 * simulator (MultiCoreSystem, monitors, workload generators, trace
 * reader) and shares nothing mutable with other sessions; the pool
 * steps a session on at most one worker at a time, with the handoff
 * between workers synchronized by the pool's run-queue mutex; and the
 * resumable phase protocol (MultiCoreSystem::beginWarmup/
 * beginMeasure/advanceRun) executes exactly the epochs the monolithic
 * warmup()/run() calls would have. Hence a session's fingerprints are
 * bit-identical to a standalone run of the same plan
 * (standaloneRun()), no matter how many sessions the daemon
 * interleaves — the property tests/test_daemon.cc enforces
 * differentially.
 */

#ifndef FADE_DAEMON_SESSION_HH
#define FADE_DAEMON_SESSION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/protocol.hh"
#include "system/multicore.hh"

namespace fade::daemon
{

/** A session config that failed validation or admission; carries the
 *  typed reason the Rejected frame reports. */
class SessionReject : public std::runtime_error
{
  public:
    SessionReject(Reason r, const std::string &msg)
        : std::runtime_error(msg), reason(r)
    {}

    const Reason reason;
};

/** Hard per-session resource bounds enforced by sessionPlan(). */
constexpr unsigned maxSessionShards = 64;
constexpr std::uint64_t maxSessionInstructions = 4'000'000;
constexpr std::uint64_t maxUploadBytes = 64u << 20;

/** A validated session: the system configuration plus the instruction
 *  budget to drive it with. */
struct SessionPlan
{
    MultiCoreConfig cfg;
    std::uint64_t warmup = 0;
    std::uint64_t measure = 0;
};

/**
 * Validate @p wc and map it to a runnable plan. @p tracePath names the
 * uploaded .ftrace file when wc.upload is set (the manifest supplies
 * the instruction budget and system shape, with wc's policy/engine/
 * sliceTicks applied as result-invariant overrides). Throws
 * SessionReject (BadConfig or BadTrace) on anything invalid; never
 * reaches a fatal().
 */
SessionPlan sessionPlan(const WireSessionConfig &wc,
                        const std::string &tracePath = "");

/**
 * Run @p wc's plan monolithically (plain warmup() + run()) and return
 * the same ResultInfo a daemon session produces, minus the scheduling
 * telemetry (quanta/parks/completionSeq stay 0). The differential
 * tests and `faded_client --check` compare daemon results against
 * this bit for bit.
 */
ResultInfo standaloneRun(const WireSessionConfig &wc,
                         const std::string &tracePath = "");

/**
 * Bounded queue of sealed output frames between a session (producer:
 * the pool worker stepping it) and its connection's writer thread
 * (consumer). The bound is the backpressure mechanism: the pool
 * refuses to step a session whose queue is full, parking it until the
 * writer drains — a slow reader therefore stalls only its own
 * session's progress, never a pool worker.
 */
class OutQueue
{
  public:
    explicit OutQueue(std::size_t capacity) : cap_(capacity) {}

    /** Push a sealed frame if there is room. @return false when the
     *  queue is full (frame dropped; progress frames are advisory).
     *  Accepted-and-dropped (true) once the sink is gone. */
    bool tryPush(std::vector<std::uint8_t> frame);

    /** Push a sealed frame regardless of capacity (terminal
     *  Result/Bye/Error frames must not be lost to backpressure). */
    void forcePush(std::vector<std::uint8_t> frame);

    /** Producer is done; pop() returns false once drained. */
    void finish();

    /** Consumer is gone (client died): drop everything, present and
     *  future, and unblock any pop(). */
    void closeSink();

    /** Block for the next frame. @return false when the stream is
     *  over (finished and drained, or sink closed). */
    bool pop(std::vector<std::uint8_t> &frame);

    /** A tryPush would fail right now. */
    bool full() const;

  private:
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::vector<std::uint8_t>> q_;
    const std::size_t cap_;
    bool finished_ = false;
    bool closed_ = false;
};

/**
 * One configured experiment moving through build -> warmup -> measure
 * -> done in bounded quanta. step() is called by exactly one pool
 * worker at a time (pool run-queue discipline); everything else is
 * called from connection threads and touches only atomics and the
 * queue.
 */
class Session
{
  public:
    /**
     * Validates @p wc (throws SessionReject). @p tracePath is the
     * uploaded trace file, owned by the session from here on (unlinked
     * in the destructor); "" for live sessions.
     */
    Session(std::uint64_t id, const WireSessionConfig &wc,
            const std::string &tracePath,
            std::shared_ptr<OutQueue> out);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Advance by at most @p quantumEpochs slice epochs (building the
     * system counts as the first quantum). Emits an advisory Progress
     * frame per quantum and, on completion, force-pushes Result + Bye
     * and finishes the queue. Mid-run failures (a corrupt uploaded
     * block surfacing lazily, any unexpected exception) become a
     * typed Error frame — the session fails, the daemon does not.
     * @return true when the session reached a terminal state.
     */
    bool step(std::uint64_t quantumEpochs);

    /**
     * Tear the session down early (client died, forced shutdown): the
     * next step() discards the simulator and completes without
     * emitting frames. Safe from any thread, any time.
     */
    void abort();

    bool aborted() const { return aborted_.load(); }
    /** The session reached a terminal state (result flushed, failed,
     *  or torn down after an abort). */
    bool complete() const { return complete_.load(); }
    std::uint64_t id() const { return id_; }
    OutQueue &out() { return *out_; }

    /** Pool bookkeeping (sessionpool.cc). parked_ is guarded by the
     *  pool mutex; parks_ is read into the Result frame. */
    bool parked_ = false;
    std::atomic<std::uint64_t> parks_{0};

    /** Set at submission; completed sessions stamp their Result frame
     *  with the next value (1-based completion order). */
    void
    setCompletionCounter(std::atomic<std::uint64_t> *c)
    {
        seqCounter_ = c;
    }

  private:
    enum class Phase : std::uint8_t
    {
        Build,
        Warm,
        Measure,
        Done,
    };

    void emitProgress();
    void finishRun();
    void failRun(Reason r, const std::string &msg);

    const std::uint64_t id_;
    SessionPlan plan_;
    std::string tracePath_;
    std::shared_ptr<OutQueue> out_;
    std::unique_ptr<MultiCoreSystem> sys_;
    Phase phase_ = Phase::Build;
    std::uint64_t quanta_ = 0;
    std::atomic<bool> aborted_{false};
    std::atomic<bool> complete_{false};
    std::atomic<std::uint64_t> *seqCounter_ = nullptr;
};

} // namespace fade::daemon

#endif // FADE_DAEMON_SESSION_HH
