#include "daemon/sessionpool.hh"

#include <algorithm>

namespace fade::daemon
{

SessionPool::SessionPool(const PoolConfig &cfg) : cfg_(cfg)
{
    unsigned n = std::max(1u, cfg_.workers);
    workers_.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

SessionPool::~SessionPool()
{
    shutdown(false);
}

Reason
SessionPool::submit(std::shared_ptr<Session> s)
{
    std::lock_guard<std::mutex> lk(m_);
    if (draining_ || stop_)
        return Reason::Shutdown;
    if (active_ >= cfg_.maxActive)
        return Reason::AdmissionFull;
    ++active_;
    s->setCompletionCounter(&seq_);
    ready_.push_back(std::move(s));
    cv_.notify_one();
    return Reason::None;
}

void
SessionPool::unpark(Session *s)
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = std::find_if(parked_.begin(), parked_.end(),
                           [&](const std::shared_ptr<Session> &p) {
                               return p.get() == s;
                           });
    if (it == parked_.end())
        return;
    (*it)->parked_ = false;
    ready_.push_back(std::move(*it));
    parked_.erase(it);
    cv_.notify_one();
}

void
SessionPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Session> s;
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] { return stop_ || !ready_.empty(); });
            if (stop_ && ready_.empty())
                return;
            s = std::move(ready_.front());
            ready_.pop_front();
        }

        // Backpressure gate: never step a session whose client has no
        // room for another frame. Park it; the connection's writer
        // unparks on drain (and an abort unparks too, so a vanished
        // client cannot strand it). The recheck under the pool mutex
        // closes the race with a concurrent drain: an unpark can only
        // run after we either parked the session or requeued it.
        if (s->out().full()) {
            std::lock_guard<std::mutex> lk(m_);
            if (s->out().full()) {
                s->parked_ = true;
                s->parks_.fetch_add(1);
                parked_.push_back(std::move(s));
                continue;
            }
            ready_.push_back(std::move(s));
            cv_.notify_one();
            continue;
        }

        bool done = s->step(cfg_.quantumEpochs);
        std::lock_guard<std::mutex> lk(m_);
        if (done) {
            --active_;
            idleCv_.notify_all();
        } else {
            ready_.push_back(std::move(s));
            cv_.notify_one();
        }
    }
}

void
SessionPool::shutdown(bool drain)
{
    {
        std::unique_lock<std::mutex> lk(m_);
        draining_ = true;
        if (!drain) {
            // Abort everything still in flight; parked sessions must
            // come back to the ready queue to run their teardown step.
            for (auto &s : ready_)
                s->abort();
            for (auto &s : parked_) {
                s->abort();
                s->parked_ = false;
                ready_.push_back(std::move(s));
            }
            parked_.clear();
            cv_.notify_all();
        }
        idleCv_.wait(lk, [&] { return active_ == 0; });
        stop_ = true;
        cv_.notify_all();
    }
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
}

unsigned
SessionPool::active() const
{
    std::lock_guard<std::mutex> lk(m_);
    return active_;
}

} // namespace fade::daemon
