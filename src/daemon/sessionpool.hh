/**
 * @file
 * The session pool: multiplexes every admitted session onto a small
 * worker pool in bounded quanta, the same bound-and-interleave move
 * the shard scheduler makes one level down. Admission control caps
 * the in-flight sessions (a typed AdmissionFull rejection beyond the
 * limit — the client retries, nothing queues unboundedly); the
 * per-session OutQueue bound provides backpressure (a session whose
 * client reads slowly is parked, not stepped, until its writer
 * drains, so it stalls only itself while the workers keep serving
 * everyone else).
 *
 * Scheduling discipline: a runnable session lives in exactly one
 * place — the ready queue, one worker's hands, or the parked state.
 * Workers pop a session, run one quantum (Session::step), and requeue
 * it; every handoff goes through the pool mutex, which is also what
 * makes one quantum's writes visible to whichever worker runs the
 * next. Fairness is round-robin by construction: the ready queue is
 * FIFO and a stepped session goes to the back.
 *
 * Shutdown drains: shutdown() stops admission (Rejected{Shutdown})
 * and by default waits until every in-flight session has pushed its
 * terminal frames; shutdown(false) aborts the stragglers instead.
 */

#ifndef FADE_DAEMON_SESSIONPOOL_HH
#define FADE_DAEMON_SESSIONPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "daemon/session.hh"

namespace fade::daemon
{

/** Pool knobs (FadedConfig::pool). */
struct PoolConfig
{
    /** In-flight session cap; submissions beyond it are rejected with
     *  Reason::AdmissionFull. */
    unsigned maxActive = 8;
    /** Worker threads stepping sessions. Each session's own scheduler
     *  may add nested workers; on small hosts those collapse to
     *  sequential (ShardScheduler::workerCount), so the daemon's
     *  thread count stays bounded by this knob. */
    unsigned workers = 2;
    /** Slice epochs per quantum: the yield granularity at which
     *  sessions interleave. Results are quantum-invariant
     *  (ShardScheduler::stepEpochs); only latency fairness moves. */
    std::uint64_t quantumEpochs = 8;
};

class SessionPool
{
  public:
    explicit SessionPool(const PoolConfig &cfg);
    ~SessionPool();

    SessionPool(const SessionPool &) = delete;
    SessionPool &operator=(const SessionPool &) = delete;

    /**
     * Admit @p s and start stepping it. @return Reason::None on
     * admission, AdmissionFull at the cap, Shutdown once draining.
     * The pool keeps the session alive (shared_ptr) until it
     * completes, even if its connection dies first.
     */
    Reason submit(std::shared_ptr<Session> s);

    /**
     * Make a parked @p s runnable again. Called by connection writer
     * threads after popping frames (the queue may have drained below
     * its bound) and after aborting a session (an aborted session
     * must be stepped once more to tear down and complete). No-op
     * unless the session is actually parked.
     */
    void unpark(Session *s);

    /** Stop admitting; wait for in-flight sessions to finish
     *  (@p drain) or abort them (!@p drain); join the workers.
     *  Idempotent. */
    void shutdown(bool drain = true);

    unsigned active() const;
    unsigned maxActive() const { return cfg_.maxActive; }

    /** The completion-order counter sessions stamp their Result
     *  frames with (1-based; deterministic backpressure tests order
     *  sessions by it). */
    std::atomic<std::uint64_t> &completionCounter() { return seq_; }

  private:
    void workerLoop();

    PoolConfig cfg_;
    std::atomic<std::uint64_t> seq_{0};

    mutable std::mutex m_;
    std::condition_variable cv_;     ///< workers wait for ready work
    std::condition_variable idleCv_; ///< shutdown waits for active==0
    std::deque<std::shared_ptr<Session>> ready_;
    /** Sessions parked on a full OutQueue (owned here while parked). */
    std::vector<std::shared_ptr<Session>> parked_;
    unsigned active_ = 0;
    bool draining_ = false;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace fade::daemon

#endif // FADE_DAEMON_SESSIONPOOL_HH
