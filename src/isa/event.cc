#include "isa/event.hh"

#include "sim/logging.hh"

namespace fade
{

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::IntAlu: return "IntAlu";
      case InstClass::IntMul: return "IntMul";
      case InstClass::Load: return "Load";
      case InstClass::Store: return "Store";
      case InstClass::FpAlu: return "FpAlu";
      case InstClass::Branch: return "Branch";
      case InstClass::JumpInd: return "JumpInd";
      case InstClass::Call: return "Call";
      case InstClass::Return: return "Return";
      case InstClass::HighLevel: return "HighLevel";
      case InstClass::Nop: return "Nop";
      default: return "Invalid";
    }
}

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Inst: return "Inst";
      case EventKind::StackCall: return "StackCall";
      case EventKind::StackReturn: return "StackReturn";
      case EventKind::Malloc: return "Malloc";
      case EventKind::Free: return "Free";
      case EventKind::TaintSource: return "TaintSource";
      case EventKind::LockAcquire: return "LockAcquire";
      case EventKind::LockRelease: return "LockRelease";
      case EventKind::ThreadCreate: return "ThreadCreate";
      case EventKind::ThreadJoin: return "ThreadJoin";
      default: return "Invalid";
    }
}

std::uint8_t
classifyEvent(const Instruction &inst)
{
    switch (inst.cls) {
      case InstClass::Load:
        return evLoad;
      case InstClass::Store:
        return evStore;
      case InstClass::IntAlu:
        return inst.numSrc >= 2 ? evAluRR : evAluRI;
      case InstClass::IntMul:
        return evMul;
      case InstClass::JumpInd:
        return evJumpInd;
      case InstClass::FpAlu:
        return evFp;
      case InstClass::Branch:
        return evBranch;
      default:
        panic("classifyEvent: class ", instClassName(inst.cls),
              " has no event id");
    }
}

MonEvent
makeInstEvent(const Instruction &inst, std::uint64_t seq)
{
    MonEvent ev;
    ev.kind = EventKind::Inst;
    ev.eventId = classifyEvent(inst);
    ev.appAddr = inst.memAddr;
    ev.appPc = inst.pc;
    ev.src1 = inst.src1;
    ev.src2 = inst.src2;
    ev.numSrc = inst.numSrc;
    ev.dst = inst.dst;
    ev.hasDst = inst.hasDst;
    ev.tid = inst.tid;
    ev.truth = inst.truth;
    ev.seq = seq;
    return ev;
}

MonEvent
makeHighLevelEvent(const Instruction &inst, std::uint64_t seq)
{
    panic_if(inst.cls != InstClass::HighLevel ||
                 inst.hlKind == EventKind::Inst,
             "makeHighLevelEvent on non high-level instruction");
    MonEvent ev;
    ev.kind = inst.hlKind;
    ev.appAddr = inst.frameBase;
    ev.appPc = inst.pc;
    ev.len = inst.frameBytes;
    ev.dst = inst.dst;
    ev.hasDst = inst.hasDst;
    ev.tid = inst.tid;
    ev.truth = inst.truth;
    ev.seq = seq;
    return ev;
}

MonEvent
makeStackEvent(const Instruction &inst, std::uint64_t seq)
{
    panic_if(!inst.isStackUpdate(),
             "makeStackEvent on non call/return instruction");
    MonEvent ev;
    ev.kind = inst.cls == InstClass::Call ? EventKind::StackCall
                                          : EventKind::StackReturn;
    ev.appAddr = inst.frameBase;
    ev.appPc = inst.pc;
    ev.len = inst.frameBytes;
    ev.tid = inst.tid;
    ev.truth = inst.truth;
    ev.seq = seq;
    return ev;
}

} // namespace fade
