/**
 * @file
 * Monitored-event records exchanged between the application core, FADE,
 * and the software monitor. The instruction-event payload follows the
 * paper's Fig. 6(a): event ID, application address, application PC, and
 * up to two source registers plus one destination register.
 */

#ifndef FADE_ISA_EVENT_HH
#define FADE_ISA_EVENT_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace fade
{

/**
 * Canonical instruction event IDs used to index the event table. The
 * event table has 128 entries (Section 6 of the paper); the IDs below
 * cover the heavily used subset of the modelled ISA, and monitors may
 * install additional chained entries at free indices for multi-shot
 * rules.
 */
enum EventId : std::uint8_t
{
    evLoad = 0,     ///< ld [mem] -> rd        (s1 = mem, d = rd)
    evStore = 1,    ///< st rs -> [mem]        (s1 = rs, d = mem)
    evAluRR = 2,    ///< alu rs1, rs2 -> rd
    evAluRI = 3,    ///< alu rs1, imm -> rd
    evMul = 4,      ///< mul/div rs1, rs2 -> rd
    evJumpInd = 5,  ///< jmp [rs1]
    evFp = 6,       ///< fp op (rarely monitored)
    evBranch = 7,   ///< conditional branch on rs1, rs2
    numCanonicalEvents,
    /** First event-table index free for monitor-installed chain entries. */
    firstChainEntry = 32,
};

/**
 * One event as carried by the event queue and the unfiltered event
 * queue. The instruction payload matches Fig. 6(a); stack and high-level
 * events reuse addr/len.
 */
struct MonEvent
{
    EventKind kind = EventKind::Inst;
    std::uint8_t eventId = 0;

    Addr appAddr = 0; ///< memory operand / frame base / block base
    Addr appPc = 0;

    RegIndex src1 = 0;
    RegIndex src2 = 0;
    std::uint8_t numSrc = 0;
    RegIndex dst = 0;
    bool hasDst = false;

    /** Frame / allocation / taint-buffer length in bytes. */
    std::uint32_t len = 0;

    ThreadId tid = 0;

    /** Shard (core slice) that produced the event. In a sharded
     *  multi-core system events must stay on their home shard; the
     *  consuming FADE instance checks this tag (routing invariant). */
    std::uint8_t shard = 0;

    /** Filter unit within the shard's FadeGroup the event was steered
     *  to (stamped by the group's round-robin steering; 0 in
     *  single-unit shards). Routes handler completions back to the
     *  forwarding unit (system/topology.hh). */
    std::uint8_t unit = 0;

    /** Oracle bits propagated from the instruction (tests only). */
    std::uint8_t truth = truthNone;

    /** Global sequence number (assigned by the producer). */
    std::uint64_t seq = 0;

    bool isInst() const { return kind == EventKind::Inst; }

    bool
    isStackUpdate() const
    {
        return kind == EventKind::StackCall ||
               kind == EventKind::StackReturn;
    }

    bool
    isHighLevel() const
    {
        return kind >= EventKind::Malloc;
    }

    /** Synchronization pseudo-event (lock/thread lifecycle). */
    bool
    isSync() const
    {
        return kind >= EventKind::LockAcquire;
    }
};

/**
 * An event forwarded to the software monitor, annotated with the
 * handler dispatch information the filtering accelerator resolved.
 */
struct UnfilteredEvent
{
    MonEvent ev;
    /** Software handler PC selected by the event table / partial bit. */
    Addr handlerPc = 0;
    /** Partial-filtering hardware check outcome (short vs long path). */
    bool checkPassed = false;
    /** The hardware already performed the filtering check. */
    bool hwChecked = false;
};

/**
 * Classify a retired instruction into its canonical event ID.
 * Only meaningful for classes that can be monitored.
 */
std::uint8_t classifyEvent(const Instruction &inst);

/** Build an event record from a retired monitored instruction. */
MonEvent makeInstEvent(const Instruction &inst, std::uint64_t seq);

/** Build a stack-update event from a retired call/return. */
MonEvent makeStackEvent(const Instruction &inst, std::uint64_t seq);

/** Build a high-level event from a retired HighLevel pseudo-op. */
MonEvent makeHighLevelEvent(const Instruction &inst, std::uint64_t seq);

} // namespace fade

#endif // FADE_ISA_EVENT_HH
