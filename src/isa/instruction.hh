/**
 * @file
 * SPARC-like instruction records. The workload generator emits these and
 * the core timing models execute them; monitored instructions are turned
 * into events (isa/event.hh) at retirement.
 */

#ifndef FADE_ISA_INSTRUCTION_HH
#define FADE_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace fade
{

/** Dynamic instruction classes relevant to monitoring and timing. */
enum class InstClass : std::uint8_t
{
    IntAlu,    ///< integer add/sub/logic/shift (may propagate md)
    IntMul,    ///< integer multiply/divide (long latency)
    Load,      ///< memory load
    Store,     ///< memory store
    FpAlu,     ///< floating point (never propagates pointers)
    Branch,    ///< conditional branch
    JumpInd,   ///< indirect jump / jump-register (taint-checked target)
    Call,      ///< function call (allocates a stack frame)
    Return,    ///< function return (deallocates a stack frame)
    HighLevel, ///< pseudo-op marking an instrumented high-level event
    Nop,       ///< no-op / other unmonitored work
    NumClasses,
};

/** Categories of events flowing through the monitoring system. */
enum class EventKind : std::uint8_t
{
    Inst,        ///< retired monitored instruction (filterable)
    StackCall,   ///< bulk metadata init on function call (SUU)
    StackReturn, ///< bulk metadata init on function return (SUU)
    Malloc,      ///< high-level allocation event (always software)
    Free,        ///< high-level deallocation event (always software)
    TaintSource, ///< high-level taint introduction (always software)
    LockAcquire, ///< synchronization: lock acquired (always software)
    LockRelease, ///< synchronization: lock released (always software)
    ThreadCreate, ///< synchronization: child thread spawned
    ThreadJoin,   ///< synchronization: child thread joined
};

/** Printable name of an event kind. */
const char *eventKindName(EventKind k);

/** Printable name of an instruction class. */
const char *instClassName(InstClass c);

/**
 * Ground-truth oracle bits attached by the workload generator when it
 * deliberately injects a bug. Monitors never read these; tests use them
 * to verify that each injected bug is detected (and nothing else is).
 */
enum TruthBits : std::uint8_t
{
    truthNone = 0,
    truthAccessUnallocated = 1 << 0, ///< touches unallocated memory
    truthUseUninit = 1 << 1,         ///< consumes uninitialized data
    truthTaintedJump = 1 << 2,       ///< jump target is attacker-tainted
    truthLeakDrop = 1 << 3,          ///< drops the last pointer to a block
    truthAtomViolation = 1 << 4,     ///< unserializable interleaving
    truthDataRace = 1 << 5,          ///< unsynchronized conflicting access
    truthCrossTaint = 1 << 6,        ///< reads another thread's taint
};

/**
 * One dynamic instruction. Plain aggregate for speed; the generator
 * fills every field it needs and leaves the rest zeroed.
 */
struct Instruction
{
    Addr pc = 0;
    InstClass cls = InstClass::Nop;

    RegIndex src1 = 0;
    RegIndex src2 = 0;
    std::uint8_t numSrc = 0;
    RegIndex dst = 0;
    bool hasDst = false;

    /** Effective address for Load/Store (word aligned). */
    Addr memAddr = 0;
    std::uint8_t memSize = 4;

    ThreadId tid = 0;

    /** Branch resolved as mispredicted: fetch bubble at the core. */
    bool mispredict = false;

    /**
     * Integer ALU ops: true when the operation can carry a pointer or
     * data value to its destination (add/sub/mov); false for flag
     * setting, comparisons, and other non-propagating forms that
     * monitors eliminate at the source.
     */
    bool mayPropagate = true;

    /** Call/Return: stack frame size in bytes. */
    std::uint32_t frameBytes = 0;
    /** Call/Return: frame base address (low address of the frame). */
    Addr frameBase = 0;

    /**
     * HighLevel pseudo-instructions: the instrumented runtime event
     * (Malloc/Free/TaintSource), reusing frameBase/frameBytes as the
     * affected region. Synchronization pseudo-ops reuse them too:
     * Lock{Acquire,Release} carry the lock address in frameBase and
     * the lock's global acquisition index in frameBytes;
     * Thread{Create,Join} carry the child thread object address in
     * frameBase and the child tid in frameBytes. EventKind::Inst
     * means "not a high-level op".
     */
    EventKind hlKind = EventKind::Inst;

    /** Test oracle bits (TruthBits); invisible to the modelled hardware. */
    std::uint8_t truth = truthNone;

    bool isMemRef() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }

    bool isStackUpdate() const
    {
        return cls == InstClass::Call || cls == InstClass::Return;
    }
};

/**
 * Execution latency of an instruction class, excluding memory access
 * time (which the cache hierarchy supplies for loads/stores).
 */
inline unsigned
execLatency(InstClass c)
{
    switch (c) {
      case InstClass::IntMul:
        return 6;
      case InstClass::FpAlu:
        return 4;
      default:
        return 1;
    }
}

} // namespace fade

#endif // FADE_ISA_INSTRUCTION_HH
