/**
 * @file
 * Application address-space layout (32-bit binaries, per the paper's
 * methodology). The workload generator allocates from these regions and
 * monitors use them to classify accesses (e.g., AddrCheck processes
 * only non-stack memory instructions; AtomCheck treats the stack as
 * thread-private).
 */

#ifndef FADE_ISA_LAYOUT_HH
#define FADE_ISA_LAYOUT_HH

#include "sim/types.hh"

namespace fade
{

/** Global/static data segment. */
constexpr Addr globalBase = 0x10000000;
constexpr Addr globalLimit = 0x20000000;

/** Heap segment (grows upward). */
constexpr Addr heapBase = 0x40000000;
constexpr Addr heapLimit = 0xA0000000;

/** Stack segment (grows downward from stackTop). */
constexpr Addr stackLimit = 0xE0000000;
constexpr Addr stackTop = 0xF0000000;

constexpr bool
isStackAddr(Addr a)
{
    return a >= stackLimit && a < stackTop;
}

constexpr bool
isHeapAddr(Addr a)
{
    return a >= heapBase && a < heapLimit;
}

constexpr bool
isGlobalAddr(Addr a)
{
    return a >= globalBase && a < globalLimit;
}

/**
 * Memory ranges live at program start (for monitor startup-state
 * initialization: the loader/startup code has already allocated and
 * initialized globals and the initial stack frames).
 */
struct WorkloadLayout
{
    Addr globalBase = 0;
    std::uint64_t globalLen = 0;
    Addr stackBase = 0; ///< lowest initially-live stack address
    std::uint64_t stackLen = 0;
};

} // namespace fade

#endif // FADE_ISA_LAYOUT_HH
