#include "mem/cache.hh"

#include "sim/logging.hh"

namespace fade
{

Cache::Cache(const CacheParams &p, Cache *next, unsigned memLatency)
    : params_(p), next_(next), memLatency_(memLatency)
{
    fatal_if(p.blockBytes == 0 || (p.blockBytes & (p.blockBytes - 1)),
             "cache ", p.name, ": block size must be a power of two");
    fatal_if(p.ways == 0, "cache ", p.name, ": needs at least one way");
    std::uint64_t blocks = p.sizeBytes / p.blockBytes;
    fatal_if(blocks % p.ways != 0,
             "cache ", p.name, ": size/block not divisible by ways");
    numSets_ = static_cast<unsigned>(blocks / p.ways);
    fatal_if(numSets_ == 0 || (numSets_ & (numSets_ - 1)),
             "cache ", p.name, ": set count must be a power of two");
    sets_.assign(numSets_, std::vector<Line>(p.ways));
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.blockBytes) &
                                 (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / params_.blockBytes) / numSets_;
}

unsigned
Cache::access(Addr addr, bool write)
{
    addr ^= addrSalt_;
    auto &set = sets_[setIndex(addr)];
    std::uint64_t tag = tagOf(addr);
    ++lruClock_;

    for (auto &line : set) {
        if (line.valid && line.tag == tag) {
            ++hits_;
            line.lru = lruClock_;
            return params_.latency;
        }
    }

    ++misses_;
    unsigned below = next_ ? next_->access(addr, write) : memLatency_;

    // Fill: evict the LRU way.
    Line *victim = &set[0];
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = lruClock_;

    return params_.latency + below;
}

bool
Cache::contains(Addr addr) const
{
    addr ^= addrSalt_;
    const auto &set = sets_[setIndex(addr)];
    std::uint64_t tag = tagOf(addr);
    for (const auto &line : set)
        if (line.valid && line.tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &set : sets_)
        for (auto &line : set)
            line.valid = false;
}

void
Cache::touch(Addr addr)
{
    addr ^= addrSalt_;
    auto &set = sets_[setIndex(addr)];
    std::uint64_t tag = tagOf(addr);
    ++lruClock_;
    for (auto &line : set) {
        if (line.valid && line.tag == tag) {
            line.lru = lruClock_;
            return;
        }
    }
    for (auto &line : set) {
        if (!line.valid) {
            line.valid = true;
            line.tag = tag;
            line.lru = lruClock_;
            return;
        }
    }
    Line *victim = &set[0];
    for (auto &line : set)
        if (line.lru < victim->lru)
            victim = &line;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = lruClock_;
}

CacheParams
l1Params(const std::string &name)
{
    CacheParams p;
    p.name = name;
    p.sizeBytes = 32 * 1024;
    p.ways = 2;
    p.blockBytes = 64;
    p.latency = 2;
    return p;
}

CacheParams
l2Params()
{
    CacheParams p;
    p.name = "l2";
    p.sizeBytes = 2 * 1024 * 1024;
    p.ways = 16;
    p.blockBytes = 64;
    p.latency = 10;
    return p;
}

} // namespace fade
