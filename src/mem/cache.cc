#include "mem/cache.hh"

#include "sim/logging.hh"

namespace fade
{

Cache::Cache(const CacheParams &p, MemPort *next, unsigned memLatency)
    : params_(p), next_(next), memLatency_(memLatency)
{
    fatal_if(p.blockBytes == 0 || (p.blockBytes & (p.blockBytes - 1)),
             "cache ", p.name, ": block size must be a power of two");
    fatal_if(p.ways == 0, "cache ", p.name, ": needs at least one way");
    std::uint64_t blocks = p.sizeBytes / p.blockBytes;
    fatal_if(blocks % p.ways != 0,
             "cache ", p.name, ": size/block not divisible by ways");
    numSets_ = static_cast<unsigned>(blocks / p.ways);
    fatal_if(numSets_ == 0 || (numSets_ & (numSets_ - 1)),
             "cache ", p.name, ": set count must be a power of two");
    // Both divisors are power-of-two-checked above: precompute shift
    // widths so the per-access index/tag math never divides.
    blockShift_ = log2of(p.blockBytes);
    setShift_ = log2of(numSets_);
    lines_.assign(std::size_t(numSets_) * p.ways, Line{});
}

unsigned
Cache::log2of(std::uint64_t powerOfTwo)
{
    unsigned s = 0;
    while ((std::uint64_t(1) << s) < powerOfTwo)
        ++s;
    return s;
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> blockShift_) & (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return addr >> (blockShift_ + setShift_);
}

bool
Cache::accessSet(Line *set, unsigned ways, std::uint64_t tag,
                 std::uint64_t lruClock)
{
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lru = lruClock;
            return true;
        }
    }
    Line *victim = &set[0];
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = set[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = lruClock;
    return false;
}

unsigned
Cache::access(Addr addr, bool write)
{
    addr ^= addrSalt_;
    ++lruClock_;
    if (accessSet(setLines(setIndex(addr)), params_.ways, tagOf(addr),
                  lruClock_)) {
        ++hits_;
        return params_.latency;
    }
    ++misses_;
    unsigned below = next_ ? next_->access(addr, write) : memLatency_;
    return params_.latency + below;
}

bool
Cache::contains(Addr addr) const
{
    addr ^= addrSalt_;
    const Line *set = setLines(setIndex(addr));
    std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
Cache::touch(Addr addr)
{
    addr ^= addrSalt_;
    ++lruClock_;
    accessSet(setLines(setIndex(addr)), params_.ways, tagOf(addr),
              lruClock_);
}

SliceL2View::SliceL2View(Cache &base) : base_(base)
{
    // A view freezes only its base; a miss that recursed into a lower
    // level would mutate shared state from worker threads.
    fatal_if(base.next_ != nullptr,
             "SliceL2View requires a last-level base cache");
    beginEpoch();
}

unsigned
SliceL2View::access(Addr addr, bool write)
{
    (void)write; // tag-only model: reads and writes age lines alike
    log_.push_back(addr);

    // Same salting and clocking as Cache::access, applied to the
    // copy-on-write copy of the set; the lookup/replacement policy
    // itself is the shared Cache::accessSet, so it cannot drift.
    Addr a = addr ^ base_.addrSalt_;
    unsigned si = base_.setIndex(a);
    auto it = cow_.find(si);
    if (it == cow_.end()) {
        const Cache::Line *src = base_.setLines(si);
        it = cow_.emplace(si, std::vector<Cache::Line>(
                                  src, src + base_.params_.ways))
                 .first;
    }
    ++lruClock_;

    if (Cache::accessSet(it->second.data(), base_.params_.ways,
                         base_.tagOf(a), lruClock_)) {
        ++hits_;
        return base_.params_.latency;
    }
    ++misses_;
    return base_.params_.latency + base_.memLatency_;
}

void
SliceL2View::commit()
{
    for (Addr addr : log_)
        base_.touch(addr);
    base_.hits_ += hits_;
    base_.misses_ += misses_;
    log_.clear();
}

void
SliceL2View::beginEpoch()
{
    cow_.clear();
    log_.clear();
    hits_ = misses_ = 0;
    lruClock_ = base_.lruClock_;
}

CacheParams
l1Params(const std::string &name)
{
    CacheParams p;
    p.name = name;
    p.sizeBytes = 32 * 1024;
    p.ways = 2;
    p.blockBytes = 64;
    p.latency = 2;
    return p;
}

CacheParams
l2Params()
{
    CacheParams p;
    p.name = "l2";
    p.sizeBytes = 2 * 1024 * 1024;
    p.ways = 16;
    p.blockBytes = 64;
    p.latency = 10;
    return p;
}

} // namespace fade
