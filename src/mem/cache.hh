/**
 * @file
 * Set-associative cache timing model with LRU replacement. Caches form a
 * linked hierarchy (L1 -> shared L2 -> DRAM latency), per Table 1 of the
 * paper: 32KB 2-way 2-cycle L1s, 2MB 16-way 10-cycle shared L2, 90-cycle
 * DRAM.
 */

#ifndef FADE_MEM_CACHE_HH
#define FADE_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fade
{

/** Configuration for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 2;
    unsigned blockBytes = 64;
    unsigned latency = 2; ///< hit latency in cycles
};

/**
 * Tag-only cache timing model. Data values live in functional state
 * elsewhere; this model only decides hit/miss and accumulates latency
 * down the hierarchy.
 */
class Cache
{
  public:
    /**
     * @param p           geometry and latency
     * @param next        next level, or nullptr for the last level
     * @param memLatency  miss latency past the last level (DRAM)
     */
    Cache(const CacheParams &p, Cache *next = nullptr,
          unsigned memLatency = 90);

    /**
     * Access a byte address. Allocates on miss (write-allocate).
     * @return total latency in cycles including lower levels.
     */
    unsigned access(Addr addr, bool write);

    /** Probe without updating state. */
    bool contains(Addr addr) const;

    /**
     * Disambiguate per-shard address spaces: a multi-core system gives
     * each shard's private caches a distinct salt (high bits above any
     * application address), XORed into every address before lookup and
     * before it propagates to the shared next level. Different shards'
     * identical virtual addresses then occupy distinct lines in the
     * shared L2, as distinct physical pages would.
     */
    void setAddrSalt(std::uint64_t salt) { addrSalt_ = salt; }
    std::uint64_t addrSalt() const { return addrSalt_; }

    /** Invalidate the whole cache (tests / reset). */
    void flush();

    /** Pre-load a block as resident (warmup support). */
    void touch(Addr addr);

    const CacheParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        std::uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

    void
    resetStats()
    {
        hits_ = misses_ = 0;
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    unsigned setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    CacheParams params_;
    Cache *next_;
    unsigned memLatency_;
    std::uint64_t addrSalt_ = 0;
    unsigned numSets_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Standard hierarchy parameters from Table 1. */
CacheParams l1Params(const std::string &name);
CacheParams l2Params();

/** DRAM latency from Table 1. */
constexpr unsigned dramLatency = 90;

} // namespace fade

#endif // FADE_MEM_CACHE_HH
