/**
 * @file
 * Set-associative cache timing model with LRU replacement. Caches form a
 * linked hierarchy (L1 -> shared L2 -> DRAM latency), per Table 1 of the
 * paper: 32KB 2-way 2-cycle L1s, 2MB 16-way 10-cycle shared L2, 90-cycle
 * DRAM.
 *
 * For the parallel shard scheduler, a level can be fronted by a
 * SliceL2View: a copy-on-write overlay that lets one shard run a bounded
 * slice against a frozen snapshot of the shared level while logging its
 * traffic, which the scheduler replays into the real level at the slice
 * barrier in fixed shard order (see system/scheduler.hh).
 */

#ifndef FADE_MEM_CACHE_HH
#define FADE_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace fade
{

/** Configuration for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 2;
    unsigned blockBytes = 64;
    unsigned latency = 2; ///< hit latency in cycles
};

/**
 * Anything that can service a timing access from the level above: a
 * Cache, or a SliceL2View interposed on the path to a shared cache.
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /**
     * Access a byte address.
     * @return total latency in cycles including lower levels.
     */
    virtual unsigned access(Addr addr, bool write) = 0;
};

/**
 * Tag-only cache timing model. Data values live in functional state
 * elsewhere; this model only decides hit/miss and accumulates latency
 * down the hierarchy.
 *
 * Thread-safety: none. A cache may only be accessed by one thread at a
 * time; the parallel shard scheduler keeps the shared L2 frozen during
 * slices (shards access it through per-shard SliceL2Views) and mutates
 * it only at slice barriers, on the scheduler thread.
 */
class Cache : public MemPort
{
  public:
    /**
     * @param p           geometry and latency
     * @param next        next level, or nullptr for the last level
     * @param memLatency  miss latency past the last level (DRAM)
     */
    Cache(const CacheParams &p, MemPort *next = nullptr,
          unsigned memLatency = 90);

    /**
     * Access a byte address. Allocates on miss (write-allocate).
     * @return total latency in cycles including lower levels.
     */
    unsigned access(Addr addr, bool write) override;

    /** Probe without updating state. */
    bool contains(Addr addr) const;

    /**
     * Disambiguate per-shard address spaces: a multi-core system gives
     * each shard's private caches a distinct salt (high bits above any
     * application address), XORed into every address before lookup and
     * before it propagates to the shared next level. Different shards'
     * identical virtual addresses then occupy distinct lines in the
     * shared L2, as distinct physical pages would.
     */
    void setAddrSalt(std::uint64_t salt) { addrSalt_ = salt; }
    std::uint64_t addrSalt() const { return addrSalt_; }

    /**
     * Retarget the next level. The shard scheduler uses this to swap a
     * SliceL2View onto the L1 -> L2 path for the duration of a
     * scheduled run and to restore the direct path afterwards.
     */
    void setNext(MemPort *next) { next_ = next; }

    /** Invalidate the whole cache (tests / reset). */
    void flush();

    /** Pre-load a block as resident (warmup support). Also the replay
     *  primitive of SliceL2View::commit: updates residency and LRU
     *  exactly like access() without touching hit/miss statistics. */
    void touch(Addr addr);

    const CacheParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        std::uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

    void
    resetStats()
    {
        hits_ = misses_ = 0;
    }

  private:
    friend class SliceL2View;

    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    static unsigned log2of(std::uint64_t powerOfTwo);
    unsigned setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    /**
     * The single lookup/replacement policy implementation, shared by
     * access(), touch() and SliceL2View::access so the three paths
     * cannot drift: LRU-bump on hit, else fill the first invalid way
     * or evict the LRU way. @p set points at @p ways contiguous lines.
     * @return true on hit.
     */
    static bool accessSet(Line *set, unsigned ways, std::uint64_t tag,
                          std::uint64_t lruClock);

    /** First line of a set (sets live back-to-back in one flat array,
     *  so an access touches one contiguous stretch of lines). */
    Line *setLines(unsigned setIdx) { return &lines_[setIdx * params_.ways]; }
    const Line *
    setLines(unsigned setIdx) const
    {
        return &lines_[setIdx * params_.ways];
    }

    CacheParams params_;
    MemPort *next_;
    unsigned memLatency_;
    std::uint64_t addrSalt_ = 0;
    unsigned numSets_;
    unsigned blockShift_ = 0; ///< log2(blockBytes)
    unsigned setShift_ = 0;   ///< log2(numSets_)
    std::vector<Line> lines_; ///< numSets_ * ways, set-major
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Slice-local view of a shared cache level, the concurrency mechanism
 * of the parallel shard scheduler (system/scheduler.hh).
 *
 * During a slice the underlying cache is frozen: the view services its
 * shard's accesses against copy-on-write copies of the sets it touches
 * (seeded from the base at first touch), applying exactly the lookup /
 * fill / LRU policy of Cache::access, and logs every access. At the
 * slice barrier the scheduler calls commit() on each view in fixed
 * shard order: the log is replayed into the base via Cache::touch and
 * the view's hit/miss counts are folded into the base counters. After
 * all views have committed, beginEpoch() rebases each view onto the
 * merged state for the next slice.
 *
 * Because a slice's outcome depends only on the base state at the slice
 * barrier plus the shard's own accesses, the merged result is identical
 * whether the slices of different shards execute sequentially or on
 * concurrent host threads — this is what makes the ParallelBatched
 * scheduler policy bit-identical to Lockstep. With a single shard the
 * view is exact: replaying the log reproduces precisely the state and
 * statistics direct execution would have produced, which keeps the N=1
 * sharded system bit-identical to the legacy single-core system.
 *
 * Thread-safety contract: between beginEpoch() and commit(), access()
 * may be called from one worker thread while other views of the same
 * base do the same; the base must not be mutated. commit() and
 * beginEpoch() must be called with all workers quiescent (the slice
 * barrier), from a single thread.
 */
class SliceL2View : public MemPort
{
  public:
    /** @param base  shared last-level cache (must have no next level) */
    explicit SliceL2View(Cache &base);

    /** Service one access against the overlay (worker thread). */
    unsigned access(Addr addr, bool write) override;

    /** Replay this slice's traffic into the base (barrier, shard
     *  order). */
    void commit();

    /** Drop the overlay and rebase on the merged state (barrier, after
     *  every view has committed). */
    void beginEpoch();

  private:
    Cache &base_;
    /** Copy-on-write set copies, keyed by set index. */
    std::unordered_map<unsigned, std::vector<Cache::Line>> cow_;
    /** Access log (original addresses, in order). */
    std::vector<Addr> log_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Standard hierarchy parameters from Table 1. */
CacheParams l1Params(const std::string &name);
CacheParams l2Params();

/** DRAM latency from Table 1. */
constexpr unsigned dramLatency = 90;

} // namespace fade

#endif // FADE_MEM_CACHE_HH
