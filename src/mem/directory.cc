#include "mem/directory.hh"

#include "sim/logging.hh"

namespace fade
{

HomeDirectory::HomeDirectory(const DirectoryParams &p) : params_(p)
{
    fatal_if(p.clusters == 0, "directory needs >= 1 cluster");
    fatal_if(p.slice.blockBytes == 0 ||
                 (p.slice.blockBytes & (p.slice.blockBytes - 1)),
             "directory: slice block size must be a power of two");
    blockShift_ = 0;
    while ((std::uint64_t(1) << blockShift_) < p.slice.blockBytes)
        ++blockShift_;
    for (unsigned c = 0; c < p.clusters; ++c) {
        CacheParams sp = p.slice;
        sp.name = p.slice.name + ".c" + std::to_string(c);
        slices_.push_back(
            std::make_unique<Cache>(sp, nullptr, p.memLatency));
    }
}

void
HomeDirectory::resetStats()
{
    for (auto &s : slices_)
        s->resetStats();
}

DirectoryPort::DirectoryPort(HomeDirectory &dir, unsigned home)
    : dir_(dir), my_(home)
{
    fatal_if(home >= dir.numSlices(),
             "directory port: home cluster ", home, " out of range");
    ports_.resize(dir.numSlices());
    routeToBase();
}

void
DirectoryPort::setSlicePort(unsigned c, MemPort *p)
{
    ports_.at(c) = p ? p : &dir_.slice(c);
}

void
DirectoryPort::routeToBase()
{
    for (unsigned c = 0; c < dir_.numSlices(); ++c)
        ports_[c] = &dir_.slice(c);
}

unsigned
DirectoryPort::access(Addr addr, bool write)
{
    unsigned h = dir_.home(addr);
    unsigned lat = ports_[h]->access(addr, write);
    if (h == my_) {
        ++stats_.localAccesses;
        return lat;
    }
    ++stats_.remoteAccesses;
    return lat + dir_.remoteLatency();
}

} // namespace fade
