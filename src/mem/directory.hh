/**
 * @file
 * NUMA-style home-node directory over address-interleaved shared-L2
 * slices. The flat multi-core system put every shard behind one shared
 * L2; the clustered topology (system/topology.hh) instead gives each
 * cluster of shards its own shared-L2 slice and routes every L2-bound
 * access to the *home* slice of its address:
 *
 *   home(addr) = hash(block address) mod clusters
 *
 * A shard reaching its own cluster's slice pays the slice's normal
 * latency; reaching a remote cluster's slice adds a fixed
 * cluster-interconnect penalty (DirectoryParams::remoteLatency). The
 * directory is a timing model only — like the caches it sits behind, it
 * tracks no data, just residency, latency, and routing counters.
 *
 * With one cluster the directory degenerates exactly to the flat
 * system: every address is home, the penalty is never added, and the
 * single slice sees the identical access stream — which is the
 * bit-identity argument for the 1-cluster case (docs/TOPOLOGY.md).
 *
 * Thread-safety contract: HomeDirectory is immutable during scheduler
 * slices (its slices are mutated only at slice barriers, like the flat
 * shared L2). Each shard routes through its own DirectoryPort, which is
 * only ever touched by the one thread driving that shard, so the
 * per-port routing counters need no synchronization.
 */

#ifndef FADE_MEM_DIRECTORY_HH
#define FADE_MEM_DIRECTORY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hh"

namespace fade
{

/** Geometry and latency of the clustered last-level cache. */
struct DirectoryParams
{
    /** Number of shared-L2 slices (one per cluster). */
    unsigned clusters = 1;
    /** Extra cycles for an access whose home slice is a remote
     *  cluster's (cluster-interconnect hop, both ways folded in). */
    unsigned remoteLatency = 40;
    /** Per-slice geometry (total LLC capacity scales with clusters,
     *  as each cluster brings its own slice). */
    CacheParams slice = l2Params();
    /** Miss latency past a slice (DRAM). */
    unsigned memLatency = dramLatency;
};

/**
 * The home-node directory: owns one last-level Cache slice per cluster
 * and maps block addresses to their home slice with a mixed hash, so
 * hot blocks spread across slices regardless of stride.
 */
class HomeDirectory
{
  public:
    explicit HomeDirectory(const DirectoryParams &p);

    unsigned numSlices() const { return unsigned(slices_.size()); }
    Cache &slice(unsigned c) { return *slices_.at(c); }
    const Cache &slice(unsigned c) const { return *slices_.at(c); }

    /** Home slice of @p addr (block-granular; pure). */
    unsigned
    home(Addr addr) const
    {
        if (slices_.size() == 1)
            return 0;
        // Fibonacci mix of the block number; high bits decide so that
        // strided block sequences do not all land on one slice.
        std::uint64_t h =
            (addr >> blockShift_) * 0x9E3779B97F4A7C15ULL;
        return unsigned((h >> 33) % slices_.size());
    }

    unsigned remoteLatency() const { return params_.remoteLatency; }
    const DirectoryParams &params() const { return params_; }

    /** Zero every slice's hit/miss counters. */
    void resetStats();

  private:
    DirectoryParams params_;
    unsigned blockShift_;
    std::vector<std::unique_ptr<Cache>> slices_;
};

/** Per-shard routing counters (deterministic simulated values). */
struct DirectoryPortStats
{
    /** Accesses whose home slice is the shard's own cluster's. */
    std::uint64_t localAccesses = 0;
    /** Accesses routed to a remote cluster's slice (penalty paid). */
    std::uint64_t remoteAccesses = 0;
};

/**
 * One shard's route into the clustered LLC. Sits where the flat system
 * put the shared L2: the shard's L1s and MD cache point at this port,
 * which forwards each access to the home slice — either the real slice
 * caches (direct mode, used outside scheduled runs) or the shard's
 * per-slice SliceL2Views (scheduler slices; see system/scheduler.hh).
 */
class DirectoryPort : public MemPort
{
  public:
    /**
     * @param dir   the directory (routing + real slices)
     * @param home  the cluster this shard belongs to
     */
    DirectoryPort(HomeDirectory &dir, unsigned home);

    /** Route slice @p c through @p p (a SliceL2View), or back to the
     *  real slice when @p p is null. */
    void setSlicePort(unsigned c, MemPort *p);

    /** Route every slice back to the real caches (direct mode). */
    void routeToBase();

    unsigned access(Addr addr, bool write) override;

    unsigned homeCluster() const { return my_; }
    const DirectoryPortStats &stats() const { return stats_; }
    void resetStats() { stats_ = DirectoryPortStats{}; }

  private:
    HomeDirectory &dir_;
    unsigned my_;
    std::vector<MemPort *> ports_;
    DirectoryPortStats stats_;
};

} // namespace fade

#endif // FADE_MEM_DIRECTORY_HH
