#include "mem/mdcache.hh"

namespace fade
{

MdCache::MdCache(const MdCacheParams &p, MemPort *nextLevel)
    : params_(p),
      cache_([&p] {
          CacheParams cp;
          cp.name = "mdcache";
          cp.sizeBytes = p.sizeBytes;
          cp.ways = p.ways;
          cp.blockBytes = p.blockBytes;
          cp.latency = p.latency;
          return cp;
      }(), nextLevel, dramLatency),
      tlb_(p.tlbEntries)
{
}

bool
MdCache::tlbLookup(Addr appPage)
{
    ++tlbClock_;
    for (auto &e : tlb_) {
        if (e.valid && e.appPage == appPage) {
            e.lru = tlbClock_;
            ++tlbHits_;
            return true;
        }
    }
    ++tlbMisses_;
    return false;
}

void
MdCache::tlbInsert(Addr appPage)
{
    TlbEntry *victim = &tlb_[0];
    for (auto &e : tlb_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->appPage = appPage;
    victim->lru = tlbClock_;
}

MdAccessResult
MdCache::accessApp(Addr appAddr, bool write)
{
    MdAccessResult r;
    Addr appPage = pageAlign(appAddr);
    if (!tlbLookup(appPage)) {
        r.tlbMiss = true;
        r.latency += params_.tlbMissPenalty;
        tlbInsert(appPage);
    }
    Addr mdAddr = mdAddrOf(appAddr);
    std::uint64_t before = cache_.misses();
    r.latency += cache_.access(mdAddr, write);
    r.cacheMiss = cache_.misses() != before;
    return r;
}

MdAccessResult
MdCache::accessMd(Addr mdAddr, bool write)
{
    MdAccessResult r;
    std::uint64_t before = cache_.misses();
    r.latency += cache_.access(mdAddr, write);
    r.cacheMiss = cache_.misses() != before;
    return r;
}

void
MdCache::warm(Addr appAddr)
{
    Addr appPage = pageAlign(appAddr);
    if (!tlbLookup(appPage))
        tlbInsert(appPage);
    cache_.touch(mdAddrOf(appAddr));
    // Warmup accesses should not perturb statistics.
    tlbHits_ = tlbMisses_ = 0;
}

void
MdCache::flush()
{
    cache_.flush();
    for (auto &e : tlb_)
        e.valid = false;
}

} // namespace fade
