/**
 * @file
 * The dedicated metadata cache (MD cache) with its metadata TLB, as in
 * Section 4.1 / Table 1 of the paper: 4KB, 2-way, one-cycle access, with
 * a 16-entry M-TLB translating application virtual pages to the monitor
 * pages holding the associated metadata. M-TLB misses are serviced in
 * software (modelled as a fixed penalty charged to the access).
 */

#ifndef FADE_MEM_MDCACHE_HH
#define FADE_MEM_MDCACHE_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"
#include "mem/shadow.hh"
#include "sim/types.hh"

namespace fade
{

/** Configuration for the MD cache and its TLB. */
struct MdCacheParams
{
    std::uint64_t sizeBytes = 4 * 1024;
    unsigned ways = 2;
    unsigned blockBytes = 64;
    unsigned latency = 1;
    unsigned tlbEntries = 16;
    /** Cycles to service an M-TLB miss in software. */
    unsigned tlbMissPenalty = 40;
};

/** Outcome of one MD cache access. */
struct MdAccessResult
{
    unsigned latency = 0;
    bool cacheMiss = false;
    bool tlbMiss = false;
};

/**
 * MD cache: a small cache indexed by metadata addresses, fronted by the
 * M-TLB that maps application pages to metadata pages. Backed by the
 * shared L2 on misses.
 */
class MdCache
{
  public:
    MdCache(const MdCacheParams &p, MemPort *nextLevel);

    /**
     * Access the metadata of an application address.
     * Folds the M-TLB translation into the access as the paper does.
     */
    MdAccessResult accessApp(Addr appAddr, bool write);

    /**
     * Access a raw metadata address (used by the SUU, which computes
     * metadata block addresses itself).
     */
    MdAccessResult accessMd(Addr mdAddr, bool write);

    /** Pre-warm translation and block residency. */
    void warm(Addr appAddr);

    /** Per-shard address-space salt (see Cache::setAddrSalt). */
    void setAddrSalt(std::uint64_t salt) { cache_.setAddrSalt(salt); }

    /** Retarget the backing level (slice scheduling; see
     *  Cache::setNext). */
    void setNext(MemPort *next) { cache_.setNext(next); }

    void flush();

    std::uint64_t tlbHits() const { return tlbHits_; }
    std::uint64_t tlbMisses() const { return tlbMisses_; }
    const Cache &cache() const { return cache_; }
    const MdCacheParams &params() const { return params_; }

    void
    resetStats()
    {
        tlbHits_ = tlbMisses_ = 0;
        cache_.resetStats();
    }

  private:
    bool tlbLookup(Addr appPage);
    void tlbInsert(Addr appPage);

    struct TlbEntry
    {
        Addr appPage = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    MdCacheParams params_;
    Cache cache_;
    std::vector<TlbEntry> tlb_;
    std::uint64_t tlbClock_ = 0;
    std::uint64_t tlbHits_ = 0;
    std::uint64_t tlbMisses_ = 0;
};

} // namespace fade

#endif // FADE_MEM_MDCACHE_HH
