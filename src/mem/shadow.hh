/**
 * @file
 * Sparse functional shadow (metadata) memory. Monitors keep one byte of
 * critical metadata per 32-bit application word, living in the monitor's
 * address space at mdBase + (appAddr / wordSize). This container is the
 * single source of truth for metadata values; the MD cache and the FSQ
 * are timing/coherence overlays on top of it.
 */

#ifndef FADE_MEM_SHADOW_HH
#define FADE_MEM_SHADOW_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/flatset.hh"
#include "sim/types.hh"

namespace fade
{

/** Base of the metadata region in the monitor's address space. */
constexpr Addr mdBase = Addr(1) << 32;

/** Metadata address holding the shadow byte for an application word. */
constexpr Addr
mdAddrOf(Addr appAddr)
{
    return mdBase + appAddr / wordSize;
}

/**
 * Page-granular sparse byte store. Unmapped bytes read as the
 * configurable default value (monitors set this to their "unallocated" /
 * "untainted" encoding). The page directory is a flat open-addressing
 * map (one probe per lookup, no node allocations), and bulk writes run
 * page-span-at-a-time: fill() memsets whole-page interiors instead of
 * probing the directory byte by byte.
 */
class ShadowMemory
{
  public:
    explicit ShadowMemory(std::uint8_t defaultValue = 0)
        : default_(defaultValue)
    {}

    std::uint8_t
    read(Addr mdAddr) const
    {
        Addr base = pageAlign(mdAddr);
        if (base == lastBase_ && lastPage_)
            return (*lastPage_)[mdAddr & (pageSize - 1)];
        const PagePtr *slot = pages_.find(base);
        if (!slot)
            return default_;
        lastBase_ = base;
        lastPage_ = slot->get();
        return (*lastPage_)[mdAddr & (pageSize - 1)];
    }

    void
    write(Addr mdAddr, std::uint8_t v)
    {
        page(mdAddr)[mdAddr & (pageSize - 1)] = v;
    }

    /** Set a contiguous metadata byte range to a value, one page span
     *  at a time (bulk metadata writes are the monitors' hottest
     *  shadow operation: malloc/free clears, stack-frame updates). */
    void
    fill(Addr mdAddr, std::uint64_t len, std::uint8_t v)
    {
        while (len > 0) {
            Page &p = page(mdAddr);
            std::uint64_t off = mdAddr & (pageSize - 1);
            std::uint64_t span = pageSize - off;
            if (span > len)
                span = len;
            std::memset(p.data() + off, v, std::size_t(span));
            mdAddr += span;
            len -= span;
        }
    }

    /** Convenience: read the shadow byte of an application word. */
    std::uint8_t
    readApp(Addr appAddr) const
    {
        return read(mdAddrOf(appAddr));
    }

    /** Convenience: write the shadow byte of an application word. */
    void
    writeApp(Addr appAddr, std::uint8_t v)
    {
        write(mdAddrOf(appAddr), v);
    }

    /** Set the shadow of an application byte range (word granular). */
    void
    fillApp(Addr appAddr, std::uint64_t lenBytes, std::uint8_t v)
    {
        Addr first = appAddr / wordSize;
        Addr last = (appAddr + (lenBytes ? lenBytes : 1) - 1) / wordSize;
        fill(mdBase + first, last - first + 1, v);
    }

    std::uint8_t defaultValue() const { return default_; }
    std::size_t mappedPages() const { return pages_.size(); }

    /** Pages parked in the reuse pool (diagnostics / tests). */
    std::size_t pooledPages() const { return pool_.size(); }

    void
    clear()
    {
        // Unmap everything but keep the page storage: repeated
        // warmup/measure iterations and system re-inits re-fault the
        // same footprint, so recycled pages skip the allocator (and the
        // kernel fault path) entirely.
        pages_.forEach([this](Addr, PagePtr &p) {
            pool_.push_back(std::move(p));
        });
        pages_.clear();
        lastBase_ = ~Addr(0);
        lastPage_ = nullptr;
    }

  private:
    using Page = std::array<std::uint8_t, pageSize>;
    using PagePtr = std::unique_ptr<Page>;

    Page &
    page(Addr mdAddr)
    {
        Addr base = pageAlign(mdAddr);
        if (base == lastBase_ && lastPage_)
            return *lastPage_;
        PagePtr &slot = pages_[base];
        if (!slot) {
            if (!pool_.empty()) {
                slot = std::move(pool_.back());
                pool_.pop_back();
            } else {
                slot = std::make_unique<Page>();
            }
            slot->fill(default_);
        }
        lastBase_ = base;
        lastPage_ = slot.get();
        return *slot;
    }

    std::uint8_t default_;
    AddrMap<PagePtr> pages_;
    /** Recycled pages (see clear()). */
    std::vector<PagePtr> pool_;
    /** Memo of the most recently touched page (purely an access
     *  accelerator: no functional state lives here). */
    mutable Addr lastBase_ = ~Addr(0);
    mutable Page *lastPage_ = nullptr;
};

} // namespace fade

#endif // FADE_MEM_SHADOW_HH
