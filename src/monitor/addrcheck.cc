#include "monitor/addrcheck.hh"

#include "isa/layout.hh"
#include "monitor/seq.hh"

namespace fade
{

namespace
{

constexpr Addr pcLoad = handlerCodeBase + 0x000;
constexpr Addr pcStore = handlerCodeBase + 0x100;

/** Bulk metadata fill loop: ~2 instructions per 8 metadata bytes. */
void
bulkFill(SeqBuilder &b, Addr appBase, std::uint64_t lenBytes)
{
    b.alu().alu().aluDep();
    std::uint64_t mdBytes = (lenBytes + wordSize - 1) / wordSize;
    Addr md = mdAddrOf(appBase);
    for (std::uint64_t off = 0; off < mdBytes; off += 8) {
        b.alu(1);
        b.store(md + off);
    }
    b.branch();
}

} // namespace

bool
AddrCheck::monitored(const Instruction &inst) const
{
    // AddrCheck processes only non-stack memory instructions
    // (Section 7.2), plus allocation events and stack updates.
    if (inst.isMemRef())
        return !isStackAddr(inst.memAddr);
    if (inst.isStackUpdate())
        return true;
    if (inst.cls == InstClass::HighLevel)
        return inst.hlKind == EventKind::Malloc ||
               inst.hlKind == EventKind::Free;
    return false;
}

void
AddrCheck::monitoredSpan(const Instruction *insts, std::size_t n,
                         std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = AddrCheck::monitored(insts[i]) ? 1 : 0;
}

void
AddrCheck::programFade(EventTable &table, InvRegFile &inv) const
{
    inv.write(0, mdAllocated);
    inv.write(6, mdAllocated);   // call: new frame is allocated
    inv.write(7, mdUnallocated); // return: frame is deallocated

    // Load: clean check on the memory operand's allocated bit.
    EventTableEntry ld;
    ld.s1 = OperandRule{true, true, 1, 0x01, 0};
    ld.cc = true;
    ld.handlerPc = pcLoad;
    table.program(evLoad, ld);

    // Store: destination is the memory operand.
    EventTableEntry st;
    st.d = OperandRule{true, true, 1, 0x01, 0};
    st.cc = true;
    st.handlerPc = pcStore;
    table.program(evStore, st);
}

void
AddrCheck::initShadow(MonitorContext &ctx, const WorkloadLayout &l) const
{
    ctx.shadow.fillApp(l.globalBase, l.globalLen, mdAllocated);
    ctx.shadow.fillApp(l.stackBase, l.stackLen, mdAllocated);
}

void
AddrCheck::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    switch (ev.kind) {
      case EventKind::Inst: {
        std::uint8_t md = ctx.shadow.readApp(ev.appAddr);
        if (!(md & mdAllocated)) {
            report("unallocated-access", ev);
            // Mark allocated to suppress repeated reports for the same
            // word (Valgrind-style once-per-origin reporting).
            ctx.shadow.writeApp(ev.appAddr, mdAllocated);
        }
        break;
      }
      case EventKind::Malloc:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdAllocated);
        break;
      case EventKind::Free:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUnallocated);
        break;
      case EventKind::StackCall:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdAllocated);
        break;
      case EventKind::StackReturn:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUnallocated);
        break;
      default:
        break;
    }
}

void
AddrCheck::buildHandlerSeq(const UnfilteredEvent &u,
                           const MonitorContext &ctx,
                           std::vector<Instruction> &out) const
{
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : pcLoad, 0);
    b.dispatch(ev.seq, 16);

    switch (ev.kind) {
      case EventKind::Inst: {
        if (!u.hwChecked) {
            // Software check path: load metadata, mask, branch.
            b.load(mdAddrOf(ev.appAddr));
            b.aluDep();
            b.branch();
        }
        bool bad = !(ctx.shadow.readApp(ev.appAddr) & mdAllocated);
        if (bad) {
            // Report path: format and record the error.
            b.load(monTableBase);
            b.aluDep().aluDep();
            b.store(monTableBase + 64);
            b.load(mdAddrOf(ev.appAddr));
            b.aluDep();
            b.store(mdAddrOf(ev.appAddr));
        }
        break;
      }
      case EventKind::Malloc:
      case EventKind::Free:
      case EventKind::StackCall:
      case EventKind::StackReturn:
        bulkFill(b, ev.appAddr, ev.len);
        break;
      default:
        b.alu();
        break;
    }
}

HandlerClass
AddrCheck::classifyHandler(const UnfilteredEvent &u,
                           const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    // AddrCheck instruction handlers only check; they update nothing.
    return HandlerClass::CheckOnly;
}

HandlerClass
AddrCheck::prepareHandler(const UnfilteredEvent &u,
                          const MonitorContext &ctx,
                          std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    AddrCheck::buildHandlerSeq(u, ctx, out);
    return AddrCheck::classifyHandler(u, ctx);
}

} // namespace fade
