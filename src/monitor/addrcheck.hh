/**
 * @file
 * AddrCheck (Nethercote & Seward): checks that every memory access
 * touches an allocated region. Critical metadata: one allocated bit per
 * application word. FADE filters accesses to allocated data through
 * clean checks; the paper reports a 99.5% filtering ratio and a 1.2x
 * average accelerated slowdown.
 */

#ifndef FADE_MONITOR_ADDRCHECK_HH
#define FADE_MONITOR_ADDRCHECK_HH

#include "monitor/monitor.hh"

namespace fade
{

/** Memory-tracking monitor: allocation checking. */
class AddrCheck : public Monitor
{
  public:
    /** Metadata encodings. */
    static constexpr std::uint8_t mdUnallocated = 0;
    static constexpr std::uint8_t mdAllocated = 1;

    const char *name() const override { return "AddrCheck"; }
    std::uint8_t shadowDefault() const override { return mdUnallocated; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void initShadow(MonitorContext &ctx,
                    const WorkloadLayout &l) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
};

} // namespace fade

#endif // FADE_MONITOR_ADDRCHECK_HH
