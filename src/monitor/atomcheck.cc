#include "monitor/atomcheck.hh"

#include "isa/layout.hh"
#include "monitor/seq.hh"

namespace fade
{

namespace
{

constexpr Addr pcShortLoad = handlerCodeBase + 0x4000;
constexpr Addr pcLongLoad = handlerCodeBase + 0x4100;
constexpr Addr pcShortStore = handlerCodeBase + 0x4200;
constexpr Addr pcLongStore = handlerCodeBase + 0x4300;

enum ChainSlot : unsigned
{
    chLoadAlt = firstChainEntry,  ///< holds the long-load handler PC
    chStoreAlt,                   ///< holds the long-store handler PC
};

} // namespace

bool
AtomCheck::unserializable(std::uint8_t p, std::uint8_t r, std::uint8_t c)
{
    return (p == accRead && r == accWrite && c == accRead) ||
           (p == accWrite && r == accWrite && c == accRead) ||
           (p == accWrite && r == accRead && c == accWrite) ||
           (p == accRead && r == accWrite && c == accWrite);
}

bool
AtomCheck::monitored(const Instruction &inst) const
{
    // Shared-memory accesses only; the stack is thread-private.
    if (inst.isMemRef())
        return !isStackAddr(inst.memAddr);
    if (inst.isStackUpdate())
        return true;
    return false;
}

void
AtomCheck::monitoredSpan(const Instruction *insts, std::size_t n,
                        std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = AtomCheck::monitored(insts[i]) ? 1 : 0;
}

void
AtomCheck::programFade(EventTable &table, InvRegFile &inv) const
{
    // INV[0] holds accessed|current-thread; rewritten on each context
    // switch by onThreadSwitch().
    inv.write(0, mdAccessed | 0);
    inv.write(6, 0); // call: clear per-frame access tracking
    inv.write(7, 0); // return: likewise

    // Loads and stores: partial filtering. The check compares the
    // location's full metadata byte (accessed | last tid) against the
    // current thread's INV value. The destination rule names the memory
    // operand for the Non-Blocking update but is masked out of the
    // clean check (mask 0).
    OperandRule locCheck{true, true, 1, 0xff, 0};
    OperandRule locDest{true, true, 1, 0x00, 0};

    EventTableEntry ld;
    ld.s1 = locCheck;
    ld.d = locDest;
    ld.cc = true;
    ld.partial = true;
    ld.nextEntry = chLoadAlt;
    ld.handlerPc = pcShortLoad;
    ld.nb.action = NbAction::SetConst;
    ld.nb.invId = 0;
    table.program(evLoad, ld);

    EventTableEntry ldAlt;
    ldAlt.handlerPc = pcLongLoad;
    table.program(chLoadAlt, ldAlt);

    EventTableEntry st;
    st.s1 = locCheck;
    st.d = locDest;
    st.cc = true;
    st.partial = true;
    st.nextEntry = chStoreAlt;
    st.handlerPc = pcShortStore;
    st.nb.action = NbAction::SetConst;
    st.nb.invId = 0;
    table.program(evStore, st);

    EventTableEntry stAlt;
    stAlt.handlerPc = pcLongStore;
    table.program(chStoreAlt, stAlt);
}

void
AtomCheck::onThreadSwitch(ThreadId tid, InvRegFile *inv)
{
    if (inv)
        inv->write(0, std::uint8_t(mdAccessed | (tid & mdTidMask)));
}

void
AtomCheck::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    switch (ev.kind) {
      case EventKind::Inst: {
        Addr w = ev.appAddr / wordSize;
        std::uint8_t md = ctx.shadow.readApp(ev.appAddr);
        std::uint8_t type =
            ev.eventId == evStore ? accWrite : accRead;
        LocState &loc = locs_[w];

        if (!(md & mdAccessed))
            ++firstAccesses;
        else if (ThreadId(md & mdTidMask) == ev.tid)
            ++sameThreadAccesses;
        else
            ++remoteAccesses;

        if (md & mdAccessed) {
            ThreadId prevTid = ThreadId(md & mdTidMask);
            if (prevTid != ev.tid) {
                std::uint8_t p = loc.lastType[ev.tid];
                std::uint8_t r = loc.lastType[prevTid];
                if (p != accNone && r != accNone &&
                    unserializable(p, r, type)) {
                    report("atomicity-violation", ev,
                           "unserializable access interleaving");
                }
            }
        }
        loc.lastType[ev.tid] = type;
        ctx.shadow.writeApp(ev.appAddr,
                            std::uint8_t(mdAccessed |
                                         (ev.tid & mdTidMask)));
        break;
      }
      case EventKind::StackCall:
      case EventKind::StackReturn: {
        ctx.shadow.fillApp(ev.appAddr, ev.len, 0);
        for (Addr a = ev.appAddr; a < ev.appAddr + ev.len; a += wordSize)
            locs_.erase(a / wordSize);
        break;
      }
      default:
        break;
    }
}

void
AtomCheck::buildHandlerSeq(const UnfilteredEvent &u,
                           const MonitorContext &ctx,
                           std::vector<Instruction> &out) const
{
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : pcShortLoad, 0);
    b.dispatch(ev.seq, 16);

    switch (ev.kind) {
      case EventKind::Inst: {
        bool shortPath;
        if (u.hwChecked) {
            shortPath = u.checkPassed;
        } else {
            // Software check path: load metadata, extract and compare
            // the thread bits, spill/restore around the analysis call,
            // and branch to the short or long path. Unaccelerated
            // AtomCheck events are costly (Section 7.2: numerous
            // monitoring actions per event).
            b.load(mdAddrOf(ev.appAddr));
            b.aluDep();
            b.aluDep();
            b.branch();
            for (int k = 0; k < 3; ++k) {
                b.alu(1);
                b.store(monTableBase + 0x30000 + k * 8);
            }
            b.load(monTableBase + 0x20000 + (ev.appAddr & 0xfff));
            b.aluDep();
            b.load(monTableBase + 0x20008 + (ev.appAddr & 0xfff));
            b.aluDep();
            b.aluDep();
            b.branch();
            b.alu().aluDep().branch();
            for (int k = 0; k < 3; ++k)
                b.load(monTableBase + 0x30000 + k * 8);
            b.aluDep();
            std::uint8_t md = ctx.shadow.readApp(ev.appAddr);
            shortPath = (md & mdAccessed) &&
                        ThreadId(md & mdTidMask) == ev.tid;
        }
        Addr typeTable = monTableBase + 0x20000 +
                         (ev.appAddr & 0xfff) * maxThreads;
        if (shortPath) {
            // Same thread: update the last-access type and metadata.
            b.alu(1);
            b.store(typeTable + ev.tid);
            b.alu(1);
            b.store(mdAddrOf(ev.appAddr));
        } else {
            // Interleaving analysis: gather the per-thread access
            // types, evaluate the serializability invariants, then
            // update metadata and the report buffer if needed.
            b.load(mdAddrOf(ev.appAddr));
            b.aluDep();
            b.load(typeTable + ev.tid);
            b.loadDep(typeTable);
            b.aluDep();
            b.aluDep();
            b.branch();
            b.alu();
            b.aluDep();
            b.branch();
            b.alu(1);
            b.store(typeTable + ev.tid);
            b.alu(1);
            b.store(mdAddrOf(ev.appAddr));
            b.alu();
        }
        break;
      }
      case EventKind::StackCall:
      case EventKind::StackReturn: {
        b.alu().alu().aluDep();
        std::uint64_t mdBytes = (ev.len + wordSize - 1) / wordSize;
        Addr md = mdAddrOf(ev.appAddr);
        for (std::uint64_t off = 0; off < mdBytes; off += 8) {
            b.alu(1);
            b.store(md + off);
        }
        b.branch();
        break;
      }
      default:
        b.alu();
        break;
    }
}

HandlerClass
AtomCheck::classifyHandler(const UnfilteredEvent &u,
                           const MonitorContext &ctx) const
{
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    if (u.hwChecked)
        return u.checkPassed ? HandlerClass::Update
                             : HandlerClass::CheckOnly;
    std::uint8_t md = ctx.shadow.readApp(u.ev.appAddr);
    bool same = (md & mdAccessed) &&
                ThreadId(md & mdTidMask) == u.ev.tid;
    return same ? HandlerClass::Update : HandlerClass::CheckOnly;
}

HandlerClass
AtomCheck::prepareHandler(const UnfilteredEvent &u,
                          const MonitorContext &ctx,
                          std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    AtomCheck::buildHandlerSeq(u, ctx, out);
    return AtomCheck::classifyHandler(u, ctx);
}

} // namespace fade
