/**
 * @file
 * AtomCheck (after AVIO, Lu et al.): detects atomicity violations by
 * checking access-interleaving invariants. Critical metadata: one byte
 * per application word holding an accessed bit (0x80) and the ID of the
 * last accessing thread (low bits). Non-critical metadata: the type
 * (read/write) of the last access by each thread, kept in per-thread
 * tables. FADE accommodates AtomCheck with Partial filtering: the
 * hardware checks whether the location was last referenced by the same
 * thread; a passing check dispatches a short update handler, a failing
 * check dispatches the interleaving-analysis handler.
 */

#ifndef FADE_MONITOR_ATOMCHECK_HH
#define FADE_MONITOR_ATOMCHECK_HH

#include <array>
#include <cstdint>

#include "monitor/monitor.hh"
#include "sim/flatset.hh"

namespace fade
{

/** Memory-tracking monitor: atomicity-violation detection. */
class AtomCheck : public Monitor
{
  public:
    /** Accessed-before flag in the metadata byte. */
    static constexpr std::uint8_t mdAccessed = 0x80;
    /** Thread-id mask in the metadata byte. */
    static constexpr std::uint8_t mdTidMask = 0x7f;

    /** Access types tracked per thread per location. */
    static constexpr std::uint8_t accNone = 0;
    static constexpr std::uint8_t accRead = 1;
    static constexpr std::uint8_t accWrite = 2;

    const char *name() const override { return "AtomCheck"; }
    std::uint8_t shadowDefault() const override { return 0; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
    void onThreadSwitch(ThreadId tid, InvRegFile *inv) override;

    /**
     * AVIO's unserializable interleavings: for (previous local access
     * p, remote interleaving access r, current access c), the patterns
     * (R,W,R), (W,W,R), (W,R,W), and (R,W,W) cannot be serialized.
     */
    static bool unserializable(std::uint8_t p, std::uint8_t r,
                               std::uint8_t c);

    /** Functional check outcome counters (analysis / tests). */
    std::uint64_t sameThreadAccesses = 0;
    std::uint64_t firstAccesses = 0;
    std::uint64_t remoteAccesses = 0;

  private:
    struct LocState
    {
        std::array<std::uint8_t, maxThreads> lastType{};
    };

    /** Per-word last-access-type table (flat: probed on every
     *  unfiltered shared access). */
    AddrMap<LocState> locs_;
};

} // namespace fade

#endif // FADE_MONITOR_ATOMCHECK_HH
