/**
 * @file
 * Shared monitoring state: the functional metadata store that both the
 * FADE hardware model and the software monitor operate on. The shadow
 * memory holds per-application-word critical metadata; the MD register
 * file holds per-architectural-register critical metadata. Software
 * handlers and FADE's Metadata Write stage update the same canonical
 * storage (the paper's Non-Blocking updates are non-speculative and
 * match what the handler later writes, so a single copy is faithful).
 */

#ifndef FADE_MONITOR_CONTEXT_HH
#define FADE_MONITOR_CONTEXT_HH

#include <cstdint>

#include "core/regfiles.hh"
#include "mem/shadow.hh"

namespace fade
{

/** Canonical critical-metadata state shared by hardware and software. */
struct MonitorContext
{
    explicit MonitorContext(std::uint8_t shadowDefault = 0)
        : shadow(shadowDefault)
    {}

    ShadowMemory shadow;
    MdRegFile regMd;
};

} // namespace fade

#endif // FADE_MONITOR_CONTEXT_HH
