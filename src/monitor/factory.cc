#include "monitor/factory.hh"

#include "monitor/addrcheck.hh"
#include "monitor/atomcheck.hh"
#include "monitor/memcheck.hh"
#include "monitor/memleak.hh"
#include "monitor/racecheck.hh"
#include "monitor/sharedtaint.hh"
#include "monitor/taintcheck.hh"
#include "sim/logging.hh"

namespace fade
{

std::unique_ptr<Monitor>
makeMonitor(const std::string &name)
{
    if (name == "AddrCheck")
        return std::make_unique<AddrCheck>();
    if (name == "MemCheck")
        return std::make_unique<MemCheck>();
    if (name == "TaintCheck")
        return std::make_unique<TaintCheck>();
    if (name == "MemLeak")
        return std::make_unique<MemLeak>();
    if (name == "AtomCheck")
        return std::make_unique<AtomCheck>();
    if (name == "RaceCheck")
        return std::make_unique<RaceCheck>();
    if (name == "SharedTaint")
        return std::make_unique<SharedTaint>();
    fatal("unknown monitor: ", name);
}

const std::vector<std::string> &
monitorNames()
{
    static const std::vector<std::string> v = {
        "AddrCheck", "AtomCheck", "MemCheck", "MemLeak", "RaceCheck",
        "SharedTaint", "TaintCheck",
    };
    return v;
}

const std::vector<std::string> &
paperMonitorNames()
{
    static const std::vector<std::string> v = {
        "AddrCheck", "AtomCheck", "MemCheck", "MemLeak", "TaintCheck",
    };
    return v;
}

bool
isPropagationMonitor(const std::string &name)
{
    return name == "MemCheck" || name == "MemLeak" ||
           name == "TaintCheck";
}

} // namespace fade
