/**
 * @file
 * Factory for the five lifeguards evaluated in the paper (Section 6).
 */

#ifndef FADE_MONITOR_FACTORY_HH
#define FADE_MONITOR_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.hh"

namespace fade
{

/** Instantiate a monitor by name (AddrCheck, MemCheck, TaintCheck,
 *  MemLeak, AtomCheck). Fatal on unknown names. */
std::unique_ptr<Monitor> makeMonitor(const std::string &name);

/** All monitor names, including the cross-shard thread monitors. */
const std::vector<std::string> &monitorNames();

/** The five lifeguards evaluated in the paper (Section 6), in its
 *  presentation order. The figure/table harnesses that print measured
 *  values next to published ones iterate these — the cross-shard
 *  thread monitors have no paper counterpart. */
const std::vector<std::string> &paperMonitorNames();

/** True for the propagation-tracking monitors (Section 3.1). */
bool isPropagationMonitor(const std::string &name);

} // namespace fade

#endif // FADE_MONITOR_FACTORY_HH
