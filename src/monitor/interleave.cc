#include "monitor/interleave.hh"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

namespace fade
{

namespace
{

/** One schedule slot: thread and its per-thread op index. */
struct Slot
{
    unsigned tid;
    std::uint32_t idx;
};

/**
 * Merge the per-thread logs into the canonical schedule: repeatedly
 * sweep the threads, processing each thread's next op when it is ready
 * (program-order predecessor processed; an acquire waits for the
 * release of the previous acquisition of its lock; ops of a created
 * thread wait for the create; a join waits for the child's whole log).
 * The generator constructs the plan in one total order consistent with
 * all of these edges, so a sweep always makes progress until every
 * processable op is scheduled — no arrival-order input, hence the same
 * schedule on every shard of every topology.
 */
std::vector<Slot>
canonicalSchedule(const ProcessShared &ps)
{
    const unsigned T = ps.threads();
    std::vector<std::size_t> next(T, 0);
    std::vector<bool> started(T, false);

    // Threads nobody creates (the main thread; every thread when logs
    // are truncated before the spawn) run from the start.
    std::vector<bool> created(T, false);
    for (const auto &log : ps.logs)
        for (const ThreadOp &op : log)
            if (op.kind == ThreadOp::Kind::Create && op.aux < T)
                created[op.aux] = true;
    for (unsigned t = 0; t < T; ++t)
        started[t] = !created[t];

    std::unordered_map<Addr, std::uint32_t> nextAcq;
    std::vector<Slot> out;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned t = 0; t < T; ++t) {
            while (started[t] && next[t] < ps.logs[t].size()) {
                const ThreadOp &op = ps.logs[t][next[t]];
                if (op.kind == ThreadOp::Kind::Acquire) {
                    auto it = nextAcq.find(op.addr);
                    std::uint32_t cur =
                        it == nextAcq.end() ? 0 : it->second;
                    if (op.aux != cur)
                        break;
                } else if (op.kind == ThreadOp::Kind::Join) {
                    if (op.aux < T && next[op.aux] < ps.logs[op.aux].size())
                        break;
                }
                if (op.kind == ThreadOp::Kind::Release)
                    nextAcq[op.addr] = op.aux + 1;
                if (op.kind == ThreadOp::Kind::Create && op.aux < T)
                    started[op.aux] = true;
                out.push_back({t, std::uint32_t(next[t])});
                ++next[t];
                progress = true;
            }
        }
    }
    return out;
}

/** Placement-invariant report key: thread and per-thread op index. */
std::uint64_t
opSeq(unsigned tid, std::uint32_t idx)
{
    return (std::uint64_t(tid) << 32) | idx;
}

std::string
opLabel(unsigned tid, std::uint32_t idx)
{
    return "t" + std::to_string(tid) + "#" + std::to_string(idx);
}

using VectorClock = std::vector<std::uint32_t>;

void
joinInto(VectorClock &dst, const VectorClock &src)
{
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

/** FastTrack-style access epoch: (tid, that thread's clock). */
struct Access
{
    bool valid = false;
    unsigned tid = 0;
    std::uint32_t clk = 0;
    std::uint32_t idx = 0;
    bool write = false;
};

} // namespace

std::vector<BugReport>
analyzeRaces(const ProcessShared &ps)
{
    const unsigned T = ps.threads();
    std::vector<Slot> sched = canonicalSchedule(ps);

    std::vector<VectorClock> vc(T, VectorClock(T, 0));
    std::unordered_map<Addr, VectorClock> lockClock;

    struct WordState
    {
        Access write;
        std::vector<Access> reads; ///< one slot per thread
    };
    std::unordered_map<Addr, WordState> words;
    std::set<Addr> reported; ///< one race report per word
    std::vector<BugReport> out;

    auto ordered = [&](const Access &a, unsigned t) {
        return a.clk <= vc[t][a.tid];
    };
    auto raceWith = [&](const Access &prev, const ThreadOp &op,
                        unsigned t, std::uint32_t idx, Addr word) {
        if (!reported.insert(word).second)
            return;
        BugReport r;
        r.kind = "data-race";
        r.pc = op.pc;
        r.addr = word;
        r.seq = opSeq(t, idx);
        r.detail = opLabel(prev.tid, prev.idx) +
                   (prev.write ? " write" : " read") + " vs " +
                   opLabel(t, idx) +
                   (op.kind == ThreadOp::Kind::Read ? " read"
                                                    : " write");
        out.push_back(std::move(r));
    };
    auto touchWrite = [&](const ThreadOp &op, unsigned t,
                          std::uint32_t idx, Addr word) {
        WordState &w = words[word];
        if (w.reads.empty())
            w.reads.resize(T);
        if (w.write.valid && w.write.tid != t && !ordered(w.write, t))
            raceWith(w.write, op, t, idx, word);
        for (unsigned u = 0; u < T; ++u)
            if (u != t && w.reads[u].valid && !ordered(w.reads[u], t))
                raceWith(w.reads[u], op, t, idx, word);
        w.write = Access{true, t, vc[t][t], idx, true};
        for (Access &a : w.reads)
            a.valid = false;
    };

    for (const Slot &s : sched) {
        const unsigned t = s.tid;
        const ThreadOp &op = ps.logs[t][s.idx];
        ++vc[t][t];
        switch (op.kind) {
          case ThreadOp::Kind::Acquire: {
            auto it = lockClock.find(op.addr);
            if (it != lockClock.end())
                joinInto(vc[t], it->second);
            break;
          }
          case ThreadOp::Kind::Release:
            lockClock[op.addr] = vc[t];
            break;
          case ThreadOp::Kind::Create:
            if (op.aux < T)
                joinInto(vc[op.aux], vc[t]);
            break;
          case ThreadOp::Kind::Join:
            if (op.aux < T)
                joinInto(vc[t], vc[op.aux]);
            break;
          case ThreadOp::Kind::Read: {
            WordState &w = words[op.addr];
            if (w.reads.empty())
                w.reads.resize(T);
            if (w.write.valid && w.write.tid != t &&
                !ordered(w.write, t))
                raceWith(w.write, op, t, s.idx, op.addr);
            w.reads[t] = Access{true, t, vc[t][t], s.idx, false};
            break;
          }
          case ThreadOp::Kind::Write:
            touchWrite(op, t, s.idx, op.addr);
            break;
          case ThreadOp::Kind::Taint: {
            std::uint32_t len = op.aux ? op.aux : 4;
            for (Addr w = op.addr; w < op.addr + len; w += 4)
                touchWrite(op, t, s.idx, w);
            break;
          }
        }
    }
    return out;
}

std::vector<BugReport>
analyzeTaintFlows(const ProcessShared &ps)
{
    const unsigned T = ps.threads();
    std::vector<Slot> sched = canonicalSchedule(ps);

    struct TaintState
    {
        unsigned tid = 0;
        std::uint32_t idx = 0;
    };
    std::unordered_map<Addr, TaintState> taint;
    std::set<std::pair<Addr, unsigned>> reported;
    std::vector<BugReport> out;

    for (const Slot &s : sched) {
        const unsigned t = s.tid;
        const ThreadOp &op = ps.logs[t][s.idx];
        switch (op.kind) {
          case ThreadOp::Kind::Taint: {
            std::uint32_t len = op.aux ? op.aux : 4;
            for (Addr w = op.addr; w < op.addr + len; w += 4)
                taint[w] = TaintState{t, s.idx};
            break;
          }
          case ThreadOp::Kind::Write:
            taint.erase(op.addr);
            break;
          case ThreadOp::Kind::Read: {
            auto it = taint.find(op.addr);
            if (it == taint.end() || it->second.tid == t)
                break;
            if (!reported.insert({op.addr, t}).second)
                break;
            BugReport r;
            r.kind = "cross-thread-taint";
            r.pc = op.pc;
            r.addr = op.addr;
            r.seq = opSeq(t, s.idx);
            r.detail = "tainted by " +
                       opLabel(it->second.tid, it->second.idx);
            out.push_back(std::move(r));
            break;
          }
          default:
            break;
        }
    }
    return out;
}

} // namespace fade
