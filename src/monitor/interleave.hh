/**
 * @file
 * Shared per-process monitor state for multi-threaded workloads
 * (trace/threads.hh) and the canonical interleaving analyses over it:
 * a vector-clock happens-before race detector and a cross-thread taint
 * flow detector.
 *
 * Each shard's monitor instance appends the operations of the threads
 * it hosts to that thread's log — logs are written by exactly one
 * shard each (disjoint writers; the scheduler barrier orders writes
 * before any cross-thread read at finish()). The analyses then merge
 * the per-thread logs into ONE canonical schedule driven purely by the
 * synchronization structure (program order, per-lock acquisition
 * indices, create/join edges), not by arrival order, so every shard
 * derives identical reports regardless of thread placement, scheduler
 * policy, or execution engine. Reports carry placement-invariant keys
 * (planned pc, address, (tid, per-thread op index) as seq), which is
 * what the differential matrix in tests/test_threads.cc fingerprints.
 */

#ifndef FADE_MONITOR_INTERLEAVE_HH
#define FADE_MONITOR_INTERLEAVE_HH

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "monitor/monitor.hh"
#include "sim/types.hh"

namespace fade
{

/** One logged operation of one thread (per-thread program order). */
struct ThreadOp
{
    enum class Kind : std::uint8_t
    {
        Read,    ///< shared-heap load (addr = word)
        Write,   ///< shared-heap store (addr = word)
        Acquire, ///< lock acquire (addr = lock, aux = acquisition idx)
        Release, ///< lock release (addr = lock, aux = acquisition idx)
        Create,  ///< thread create (aux = child tid)
        Join,    ///< thread join (aux = child tid)
        Taint,   ///< taint source (addr = buffer, aux = length)
    };

    Kind kind = Kind::Read;
    ThreadId tid = 0;
    Addr addr = 0;
    Addr pc = 0;
    std::uint32_t aux = 0;
};

/** Per-process state shared by the monitor instances of all shards
 *  hosting the process's threads. */
struct ProcessShared
{
    explicit ProcessShared(unsigned threads) : logs(threads) {}

    unsigned threads() const { return unsigned(logs.size()); }

    /** logs[t] is written only by the shard hosting thread t. */
    std::vector<std::vector<ThreadOp>> logs;
};

/** Happens-before + lockset race detection over the canonical
 *  schedule. Reports are in canonical order with invariant keys. */
std::vector<BugReport> analyzeRaces(const ProcessShared &ps);

/** Cross-thread taint flows: a taint source published by one thread
 *  and read by another (plain writes clear the taint). */
std::vector<BugReport> analyzeTaintFlows(const ProcessShared &ps);

/**
 * Common machinery of the cross-shard process monitors (RaceCheck,
 * SharedTaint): logging events into the bound ProcessShared and
 * depositing analysis reports exactly once, on the shard hosting the
 * reported thread (so the union of all shards' reports is the analysis
 * output with no duplicates, for any shard count).
 */
class ProcessMonitorBase : public Monitor
{
  public:
    void
    bindProcess(ProcessShared *ps, unsigned shardId,
                unsigned numShards) override
    {
        ps_ = ps;
        shardId_ = shardId;
        procShards_ = numShards ? numShards : 1;
    }

  protected:
    void
    logOp(const MonEvent &ev, ThreadOp::Kind k)
    {
        if (!ps_ || ev.tid >= ps_->threads())
            return;
        ThreadOp op;
        op.kind = k;
        op.tid = ev.tid;
        op.addr = ev.appAddr;
        op.pc = ev.appPc;
        op.aux = ev.len;
        ps_->logs[ev.tid].push_back(op);
    }

    /** finish() may run once per slice; reports must not repeat. */
    void
    depositNew(std::vector<BugReport> rs)
    {
        for (BugReport &r : rs) {
            unsigned tid = unsigned(r.seq >> 32);
            if (tid % procShards_ != shardId_)
                continue;
            if (!deposited_.insert({r.addr, r.seq}).second)
                continue;
            deposit(std::move(r));
        }
    }

    ProcessShared *ps_ = nullptr;

  private:
    unsigned shardId_ = 0;
    unsigned procShards_ = 1;
    std::set<std::pair<Addr, std::uint64_t>> deposited_;
};

} // namespace fade

#endif // FADE_MONITOR_INTERLEAVE_HH
