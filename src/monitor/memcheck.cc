#include "monitor/memcheck.hh"

#include "monitor/seq.hh"

namespace fade
{

namespace
{

constexpr Addr
handlerPcFor(unsigned eventId)
{
    return handlerCodeBase + 0x1000 + eventId * 0x100;
}

/** Chain-entry slots used by MemCheck's multi-shot rules. */
enum ChainSlot : unsigned
{
    chLoad = firstChainEntry,
    chStore,
    chAluRR,
    chAluRI,
    chMul,
    chLoadAlloc,  ///< allocated-bit check terminating the load chain
    chStoreAlloc, ///< allocated-bit check terminating the store chain
};

void
bulkFill(SeqBuilder &b, Addr appBase, std::uint64_t lenBytes)
{
    b.alu().alu().aluDep();
    std::uint64_t mdBytes = (lenBytes + wordSize - 1) / wordSize;
    Addr md = mdAddrOf(appBase);
    for (std::uint64_t off = 0; off < mdBytes; off += 8) {
        b.alu(1);
        b.store(md + off);
    }
    b.branch();
}

} // namespace

bool
MemCheck::monitored(const Instruction &inst) const
{
    switch (inst.cls) {
      case InstClass::IntAlu:
        return inst.mayPropagate;
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::IntMul:
      case InstClass::JumpInd:
        return true;
      case InstClass::Call:
      case InstClass::Return:
        return true;
      case InstClass::HighLevel:
        // Input routines (TaintSource) write their buffer: MemCheck
        // instruments them to mark the region initialized.
        return inst.hlKind == EventKind::Malloc ||
               inst.hlKind == EventKind::Free ||
               inst.hlKind == EventKind::TaintSource;
      default:
        return false;
    }
}

void
MemCheck::monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = MemCheck::monitored(insts[i]) ? 1 : 0;
}

void
MemCheck::programFade(EventTable &table, InvRegFile &inv) const
{
    inv.write(0, mdInit);
    inv.write(6, mdUninit);      // call: allocated but uninitialized
    inv.write(7, mdUnallocated); // return: unallocated

    auto ccThenRu = [&](unsigned id, unsigned chain, OperandRule s1,
                        OperandRule s2, OperandRule d, RuOp ru,
                        NbAction nb, unsigned allocChain = 0,
                        bool memIsS1 = true) {
        EventTableEntry e;
        e.s1 = s1;
        e.s2 = s2;
        e.d = d;
        e.cc = true;
        e.multiShot = true;
        e.nextEntry = std::uint8_t(chain);
        e.handlerPc = handlerPcFor(id);
        e.nb.action = nb;
        table.program(id, e);

        EventTableEntry c;
        c.s1 = s1;
        c.s2 = s2;
        c.d = d;
        c.ru = ru;
        c.msCombine = MsCombine::Or;
        c.handlerPc = handlerPcFor(id);
        if (allocChain) {
            // Memory events filter as (CC-init OR RU) AND allocated:
            // the final allocated-bit check keeps accesses to
            // unallocated memory unfiltered even when the propagation
            // would be redundant — an invalid access must reach the
            // software handler to be reported.
            c.multiShot = true;
            c.nextEntry = std::uint8_t(allocChain);
        }
        table.program(chain, c);
        if (allocChain) {
            EventTableEntry a;
            OperandRule loc{true, true, 1, 0x01, 0};
            if (memIsS1)
                a.s1 = loc;
            else
                a.d = loc;
            a.cc = true;
            a.msCombine = MsCombine::And;
            a.handlerPc = handlerPcFor(id);
            table.program(allocChain, a);
        }
    };

    OperandRule mem{true, true, 1, 0xff, 0};
    OperandRule reg{true, false, 1, 0xff, 0};
    OperandRule off{};

    ccThenRu(evLoad, chLoad, mem, off, reg, RuOp::CopyS1,
             NbAction::CopyS1, chLoadAlloc, true);
    ccThenRu(evStore, chStore, reg, off, mem, RuOp::CopyS1,
             NbAction::CopyS1, chStoreAlloc, false);
    ccThenRu(evAluRR, chAluRR, reg, reg, reg, RuOp::AndS1S2,
             NbAction::And);
    ccThenRu(evAluRI, chAluRI, reg, off, reg, RuOp::CopyS1,
             NbAction::CopyS1);
    ccThenRu(evMul, chMul, reg, reg, reg, RuOp::AndS1S2, NbAction::And);

    // Branches and indirect jumps: pure clean checks on the consumed
    // registers (a failing check is a potential uninitialized use).
    EventTableEntry br;
    br.s1 = reg;
    br.s2 = reg;
    br.cc = true;
    br.handlerPc = handlerPcFor(evBranch);
    table.program(evBranch, br);

    EventTableEntry jmp;
    jmp.s1 = reg;
    jmp.cc = true;
    jmp.handlerPc = handlerPcFor(evJumpInd);
    table.program(evJumpInd, jmp);
}

void
MemCheck::initShadow(MonitorContext &ctx, const WorkloadLayout &l) const
{
    ctx.shadow.fillApp(l.globalBase, l.globalLen, mdInit);
    ctx.shadow.fillApp(l.stackBase, l.stackLen, mdInit);
}

void
MemCheck::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    auto regRead = [&](RegIndex r) { return ctx.regMd.read(ev.tid, r); };
    auto regWrite = [&](RegIndex r, std::uint8_t v) {
        ctx.regMd.write(ev.tid, r, v);
    };

    switch (ev.kind) {
      case EventKind::Inst:
        switch (ev.eventId) {
          case evLoad: {
            std::uint8_t m = ctx.shadow.readApp(ev.appAddr);
            if (!(m & 0x01)) {
                report("invalid-read", ev, "load from unallocated memory");
                m = mdInit;
                ctx.shadow.writeApp(ev.appAddr, m);
            }
            regWrite(ev.dst, m);
            break;
          }
          case evStore: {
            std::uint8_t m = ctx.shadow.readApp(ev.appAddr);
            if (!(m & 0x01))
                report("invalid-write", ev, "store to unallocated memory");
            ctx.shadow.writeApp(ev.appAddr, regRead(ev.src1));
            break;
          }
          case evAluRR:
          case evMul:
            regWrite(ev.dst,
                     std::uint8_t(regRead(ev.src1) & regRead(ev.src2)));
            break;
          case evAluRI:
            regWrite(ev.dst, regRead(ev.src1));
            break;
          case evBranch: {
            // The hardware verdict is authoritative: an unfiltered
            // check-only event failed its clean check at event time.
            bool bad = u.hwChecked
                           ? true
                           : (regRead(ev.src1) & 0x02) == 0 ||
                                 (ev.numSrc > 1 &&
                                  (regRead(ev.src2) & 0x02) == 0);
            if (bad) {
                report("uninit-use", ev, "branch on uninitialized value");
                regWrite(ev.src1, mdInit);
                if (ev.numSrc > 1)
                    regWrite(ev.src2, mdInit);
            }
            break;
          }
          case evJumpInd: {
            bool bad = u.hwChecked
                           ? true
                           : (regRead(ev.src1) & 0x02) == 0;
            if (bad) {
                report("uninit-use", ev, "jump on uninitialized value");
                regWrite(ev.src1, mdInit);
            }
            break;
          }
          default:
            break;
        }
        break;
      case EventKind::Malloc:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUninit);
        break;
      case EventKind::Free:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUnallocated);
        break;
      case EventKind::TaintSource:
        // An input routine filled the buffer.
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdInit);
        break;
      case EventKind::StackCall:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUninit);
        break;
      case EventKind::StackReturn:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUnallocated);
        break;
      default:
        break;
    }
}

void
MemCheck::buildHandlerSeq(const UnfilteredEvent &u,
                          const MonitorContext &ctx,
                          std::vector<Instruction> &out) const
{
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : handlerPcFor(0), 0);
    b.dispatch(ev.seq, 16);
    (void)ctx;

    switch (ev.kind) {
      case EventKind::Inst: {
        bool isMem = ev.eventId == evLoad || ev.eventId == evStore;
        if (!u.hwChecked) {
            // Software check: read the operand metadata and compare.
            if (isMem)
                b.load(mdAddrOf(ev.appAddr));
            else
                b.load(monTableBase + ev.src1 * 8);
            b.aluDep();
            b.branch();
        }
        // Update path: propagate definedness to the destination.
        if (ev.eventId == evBranch || ev.eventId == evJumpInd) {
            b.alu();
        } else {
            b.load(isMem ? mdAddrOf(ev.appAddr)
                         : monTableBase + ev.src1 * 8);
            b.aluDep();
            if (ev.eventId == evStore)
                b.store(mdAddrOf(ev.appAddr));
            else
                b.store(monTableBase + ev.dst * 8);
            b.alu();
        }
        break;
      }
      case EventKind::Malloc:
      case EventKind::Free:
      case EventKind::StackCall:
      case EventKind::StackReturn:
        bulkFill(b, ev.appAddr, ev.len);
        break;
      default:
        b.alu();
        break;
    }
}

HandlerClass
MemCheck::classifyHandler(const UnfilteredEvent &u,
                          const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    if (u.ev.eventId == evBranch || u.ev.eventId == evJumpInd)
        return HandlerClass::CheckOnly;
    return HandlerClass::Update;
}

HandlerClass
MemCheck::prepareHandler(const UnfilteredEvent &u,
                         const MonitorContext &ctx,
                         std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    MemCheck::buildHandlerSeq(u, ctx, out);
    return MemCheck::classifyHandler(u, ctx);
}

} // namespace fade
