/**
 * @file
 * MemCheck (Nethercote & Seward): extends AddrCheck to detect uses of
 * uninitialized values. Critical metadata: two bits per application
 * word/register — allocated (bit 0) and initialized (bit 1) — giving
 * the three states the paper names (unallocated, uninitialized,
 * initialized). FADE performs clean checks for legitimate accesses and
 * filters redundant updates when metadata remain unchanged.
 */

#ifndef FADE_MONITOR_MEMCHECK_HH
#define FADE_MONITOR_MEMCHECK_HH

#include "monitor/monitor.hh"

namespace fade
{

/** Propagation-tracking monitor: definedness checking. */
class MemCheck : public Monitor
{
  public:
    static constexpr std::uint8_t mdUnallocated = 0x00;
    static constexpr std::uint8_t mdUninit = 0x01;
    static constexpr std::uint8_t mdInit = 0x03;

    const char *name() const override { return "MemCheck"; }
    std::uint8_t shadowDefault() const override { return mdUnallocated; }
    std::uint8_t regMdInit() const override { return mdInit; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void initShadow(MonitorContext &ctx,
                    const WorkloadLayout &l) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
};

} // namespace fade

#endif // FADE_MONITOR_MEMCHECK_HH
