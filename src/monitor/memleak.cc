#include "monitor/memleak.hh"

#include "monitor/seq.hh"
#include "sim/logging.hh"

namespace fade
{

namespace
{

constexpr Addr
handlerPcFor(unsigned eventId)
{
    return handlerCodeBase + 0x3000 + eventId * 0x100;
}

void
bulkFill(SeqBuilder &b, Addr appBase, std::uint64_t lenBytes)
{
    b.alu().alu().aluDep();
    std::uint64_t mdBytes = (lenBytes + wordSize - 1) / wordSize;
    Addr md = mdAddrOf(appBase);
    for (std::uint64_t off = 0; off < mdBytes; off += 8) {
        b.alu(1);
        b.store(md + off);
    }
    b.branch();
}

} // namespace

bool
MemLeak::monitored(const Instruction &inst) const
{
    // MemLeak monitors instructions that may propagate a pointer value
    // (arithmetic and loads/stores) and eliminates floating-point
    // instructions (Section 3.1).
    switch (inst.cls) {
      case InstClass::IntAlu:
        return inst.mayPropagate;
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::IntMul:
      case InstClass::Call:
      case InstClass::Return:
        return true;
      case InstClass::HighLevel:
        // Input routines overwrite their buffer with non-pointer data.
        return inst.hlKind == EventKind::Malloc ||
               inst.hlKind == EventKind::Free ||
               inst.hlKind == EventKind::TaintSource;
      default:
        return false;
    }
}

void
MemLeak::monitoredSpan(const Instruction *insts, std::size_t n,
                      std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = MemLeak::monitored(insts[i]) ? 1 : 0;
}

void
MemLeak::programFade(EventTable &table, InvRegFile &inv) const
{
    inv.write(0, mdNonPointer);
    inv.write(6, mdNonPointer); // call: frame words hold no pointers
    inv.write(7, mdNonPointer); // return: likewise

    OperandRule mem{true, true, 1, 0x01, 0};
    OperandRule reg{true, false, 1, 0x01, 0};

    // All rules are single-shot clean checks against the non-pointer
    // invariant (Fig. 6(b)'s first example row).
    EventTableEntry ld;
    ld.s1 = mem;
    ld.d = reg;
    ld.cc = true;
    ld.handlerPc = handlerPcFor(evLoad);
    ld.nb.action = NbAction::CopyS1;
    table.program(evLoad, ld);

    EventTableEntry st;
    st.s1 = reg;
    st.d = mem;
    st.cc = true;
    st.handlerPc = handlerPcFor(evStore);
    st.nb.action = NbAction::CopyS1;
    table.program(evStore, st);

    EventTableEntry rr;
    rr.s1 = reg;
    rr.s2 = reg;
    rr.d = reg;
    rr.cc = true;
    rr.handlerPc = handlerPcFor(evAluRR);
    rr.nb.action = NbAction::Or;
    table.program(evAluRR, rr);

    EventTableEntry ri;
    ri.s1 = reg;
    ri.d = reg;
    ri.cc = true;
    ri.handlerPc = handlerPcFor(evAluRI);
    ri.nb.action = NbAction::CopyS1;
    table.program(evAluRI, ri);

    // Multiplying a pointer yields a non-pointer: the result metadata
    // is a constant (NB rule 3).
    EventTableEntry mul;
    mul.s1 = reg;
    mul.s2 = reg;
    mul.d = reg;
    mul.cc = true;
    mul.handlerPc = handlerPcFor(evMul);
    mul.nb.action = NbAction::SetConst;
    mul.nb.invId = 0;
    table.program(evMul, mul);
}

std::uint32_t
MemLeak::ctxOfSlot(Addr appAddr) const
{
    const std::uint32_t *p = slotCtx_.find(appAddr / wordSize);
    return p ? *p : 0;
}

void
MemLeak::setSlotCtx(Addr appAddr, std::uint32_t id)
{
    Addr w = appAddr / wordSize;
    const std::uint32_t *p = slotCtx_.find(w);
    std::uint32_t old = p ? *p : 0;
    if (old == id)
        return;
    if (id == 0)
        slotCtx_.erase(w);
    else
        slotCtx_[w] = id;
    if (id)
        incRef(id);
    if (old) {
        MonEvent dummy;
        decRef(old, dummy);
    }
}

void
MemLeak::setRegCtx(ThreadId tid, RegIndex r, std::uint32_t id)
{
    std::uint32_t old = regCtx_[tid][r];
    if (old == id)
        return;
    regCtx_[tid][r] = id;
    if (id)
        incRef(id);
    if (old) {
        MonEvent dummy;
        decRef(old, dummy);
    }
}

void
MemLeak::incRef(std::uint32_t id)
{
    panic_if(id == 0 || id > ctxs_.size(), "bad MemLeak context id");
    ++ctxs_[id - 1].refs;
}

void
MemLeak::decRef(std::uint32_t id, const MonEvent &ev)
{
    panic_if(id == 0 || id > ctxs_.size(), "bad MemLeak context id");
    AllocCtx &c = ctxs_[id - 1];
    panic_if(c.refs <= 0, "MemLeak reference count underflow");
    if (--c.refs == 0 && !c.freed && !c.leakReported) {
        c.leakReported = true;
        ++leaks_;
        MonEvent rep = ev;
        rep.appAddr = c.base;
        report("memory-leak", rep,
               "last reference to unfreed allocation dropped");
    }
}

void
MemLeak::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    auto regMd = [&](RegIndex r) { return ctx.regMd.read(ev.tid, r); };

    switch (ev.kind) {
      case EventKind::Inst:
        switch (ev.eventId) {
          case evLoad: {
            std::uint32_t id = ctxOfSlot(ev.appAddr);
            setRegCtx(ev.tid, ev.dst, id);
            ctx.regMd.write(ev.tid, ev.dst,
                            ctx.shadow.readApp(ev.appAddr));
            break;
          }
          case evStore: {
            std::uint32_t id = regCtx_[ev.tid][ev.src1];
            setSlotCtx(ev.appAddr, id);
            ctx.shadow.writeApp(ev.appAddr, regMd(ev.src1));
            break;
          }
          case evAluRR: {
            // Pointer arithmetic: the result references whichever
            // source was a pointer (at most one in well-formed code).
            std::uint32_t id = regCtx_[ev.tid][ev.src1]
                                   ? regCtx_[ev.tid][ev.src1]
                                   : regCtx_[ev.tid][ev.src2];
            setRegCtx(ev.tid, ev.dst, id);
            ctx.regMd.write(ev.tid, ev.dst,
                            std::uint8_t(regMd(ev.src1) |
                                         regMd(ev.src2)));
            break;
          }
          case evAluRI: {
            setRegCtx(ev.tid, ev.dst, regCtx_[ev.tid][ev.src1]);
            ctx.regMd.write(ev.tid, ev.dst, regMd(ev.src1));
            break;
          }
          case evMul: {
            setRegCtx(ev.tid, ev.dst, 0);
            ctx.regMd.write(ev.tid, ev.dst, mdNonPointer);
            break;
          }
          default:
            break;
        }
        break;
      case EventKind::Malloc: {
        AllocCtx c;
        c.id = std::uint32_t(ctxs_.size() + 1);
        c.pc = ev.appPc;
        c.base = ev.appAddr;
        c.len = ev.len;
        ctxs_.push_back(c);
        baseToCtx_[ev.appAddr] = c.id;
        // Fresh region: no pointers inside, and the returned pointer
        // lands in the destination register.
        for (Addr a = ev.appAddr; a < ev.appAddr + ev.len; a += wordSize)
            setSlotCtx(a, 0);
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdNonPointer);
        setRegCtx(ev.tid, ev.dst, c.id);
        ctx.regMd.write(ev.tid, ev.dst, mdPointer);
        break;
      }
      case EventKind::Free: {
        const std::uint32_t *ctxId = baseToCtx_.find(ev.appAddr);
        if (ctxId) {
            AllocCtx &c = ctxs_[*ctxId - 1];
            c.freed = true;
            // References held inside the freed block die with it.
            for (Addr a = c.base; a < c.base + c.len; a += wordSize)
                setSlotCtx(a, 0);
            ctx.shadow.fillApp(c.base, c.len, mdNonPointer);
        }
        break;
      }
      case EventKind::TaintSource: {
        // Input data overwrote the buffer: references inside it die.
        for (Addr a = ev.appAddr; a < ev.appAddr + ev.len; a += wordSize)
            setSlotCtx(a, 0);
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdNonPointer);
        break;
      }
      case EventKind::StackCall:
      case EventKind::StackReturn: {
        // Frame words die: drop any references they held. This is the
        // moment most leaks become detectable (the last pointer to an
        // allocation often lives in a local variable).
        for (Addr a = ev.appAddr; a < ev.appAddr + ev.len; a += wordSize)
            setSlotCtx(a, 0);
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdNonPointer);
        break;
      }
      default:
        break;
    }
}

void
MemLeak::buildHandlerSeq(const UnfilteredEvent &u,
                         const MonitorContext &ctx,
                         std::vector<Instruction> &out) const
{
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : handlerPcFor(0), 0);
    b.dispatch(ev.seq, 16);
    (void)ctx;

    switch (ev.kind) {
      case EventKind::Inst: {
        bool isMem = ev.eventId == evLoad || ev.eventId == evStore;
        if (!u.hwChecked) {
            // Software fast-path check: pointer bits of the operands.
            if (isMem)
                b.load(mdAddrOf(ev.appAddr));
            else
                b.load(monTableBase + ev.src1 * 8);
            b.load(monTableBase + ev.dst * 8);
            b.aluDep();
            b.branch();
        }
        // Reference-counting slow path: look up both contexts, adjust
        // two reference counters, store the new context and metadata.
        Addr ctxTable = monTableBase + 0x10000;
        b.load(isMem ? mdAddrOf(ev.appAddr)
                     : monTableBase + ev.src1 * 8);
        b.loadDep(ctxTable + (ev.appAddr & 0x3f) * 16);
        b.aluDep();
        b.load(ctxTable + (ev.dst & 0x3f) * 16);
        b.aluDep();
        b.branch();
        b.load(ctxTable + (ev.appAddr & 0x3f) * 16 + 8);
        b.aluDep();
        b.store(ctxTable + (ev.appAddr & 0x3f) * 16 + 8);
        b.load(ctxTable + (ev.dst & 0x3f) * 16 + 8);
        b.aluDep();
        b.branch();
        b.store(ctxTable + (ev.dst & 0x3f) * 16 + 8);
        b.alu();
        if (ev.eventId == evStore)
            b.store(mdAddrOf(ev.appAddr));
        else
            b.store(monTableBase + (ev.hasDst ? ev.dst : 0) * 8);
        break;
      }
      case EventKind::Malloc: {
        // Create the context, clear the region metadata.
        b.alu().aluDep().store(monTableBase + 0x10000);
        b.alu().store(monTableBase + 0x10008);
        bulkFill(b, ev.appAddr, ev.len);
        break;
      }
      case EventKind::Free: {
        b.load(monTableBase + 0x10000);
        b.aluDep().branch();
        bulkFill(b, ev.appAddr, ev.len);
        break;
      }
      case EventKind::StackCall:
      case EventKind::StackReturn:
        bulkFill(b, ev.appAddr, ev.len);
        break;
      default:
        b.alu();
        break;
    }
}

HandlerClass
MemLeak::classifyHandler(const UnfilteredEvent &u,
                         const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    return HandlerClass::Update;
}

void
MemLeak::finish()
{
    // Allocations still referenced at exit are "still reachable", not
    // leaks; nothing further to report under reference counting.
}

HandlerClass
MemLeak::prepareHandler(const UnfilteredEvent &u,
                        const MonitorContext &ctx,
                        std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    MemLeak::buildHandlerSeq(u, ctx, out);
    return MemLeak::classifyHandler(u, ctx);
}

} // namespace fade
