/**
 * @file
 * MemLeak (Maebe et al.): precise memory-leak detection via reference
 * counting. Critical metadata: the pointer/non-pointer status of each
 * register and memory word. Non-critical metadata: a pointer to the
 * corresponding malloc's context (unique ID, PC, reference counter). A
 * leak is reported the moment the last reference to an unfreed
 * allocation disappears. FADE filters events whose operands are all
 * non-pointers through clean checks.
 */

#ifndef FADE_MONITOR_MEMLEAK_HH
#define FADE_MONITOR_MEMLEAK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "monitor/monitor.hh"
#include "sim/flatset.hh"

namespace fade
{

/** Propagation-tracking monitor: leak detection by reference counting. */
class MemLeak : public Monitor
{
  public:
    static constexpr std::uint8_t mdNonPointer = 0x00;
    static constexpr std::uint8_t mdPointer = 0x01;

    /** Allocation context (the paper's per-malloc bookkeeping). */
    struct AllocCtx
    {
        std::uint32_t id = 0;
        Addr pc = 0;
        Addr base = 0;
        std::uint32_t len = 0;
        std::int64_t refs = 0;
        bool freed = false;
        bool leakReported = false;
    };

    const char *name() const override { return "MemLeak"; }
    std::uint8_t shadowDefault() const override { return mdNonPointer; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
    void finish() override;

    /** Allocation contexts created so far (inspection / tests). */
    const std::vector<AllocCtx> &contexts() const { return ctxs_; }
    std::uint64_t leaksDetected() const { return leaks_; }

  private:
    std::uint32_t ctxOfSlot(Addr appAddr) const;
    void setSlotCtx(Addr appAddr, std::uint32_t id);
    void setRegCtx(ThreadId tid, RegIndex r, std::uint32_t id);
    void incRef(std::uint32_t id);
    void decRef(std::uint32_t id, const MonEvent &ev);

    std::vector<AllocCtx> ctxs_; ///< index = id - 1
    /** Word -> owning allocation context (flat: probed per event). */
    AddrMap<std::uint32_t> slotCtx_;
    AddrMap<std::uint32_t> baseToCtx_;
    std::array<std::array<std::uint32_t, numArchRegs>, maxThreads>
        regCtx_{};
    std::uint64_t leaks_ = 0;
};

} // namespace fade

#endif // FADE_MONITOR_MEMLEAK_HH
