#include "monitor/monitor.hh"

namespace fade
{

HandlerClass
Monitor::classifyHandler(const UnfilteredEvent &u,
                         const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    return HandlerClass::Update;
}

} // namespace fade
