/**
 * @file
 * Base class for instruction-grain monitors (lifeguards). A monitor
 * defines: which instructions are monitored (producer-side selection),
 * how FADE is programmed for it (event table + INV RF contents), the
 * functional software handlers that maintain metadata and detect bugs,
 * and the handler instruction sequences executed on the monitor core's
 * timing model.
 */

#ifndef FADE_MONITOR_MONITOR_HH
#define FADE_MONITOR_MONITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_table.hh"
#include "core/regfiles.hh"
#include "isa/event.hh"
#include "isa/instruction.hh"
#include "isa/layout.hh"
#include "monitor/context.hh"

namespace fade
{

struct ProcessShared;

/** A detected bug / security alert. */
struct BugReport
{
    std::string kind;
    Addr pc = 0;
    Addr addr = 0;
    std::uint64_t seq = 0;
    std::string detail;
};

/** Handler classes for the Fig. 4(a) execution-time breakdown. */
enum class HandlerClass : std::uint8_t
{
    CheckOnly,   ///< clean-check style handler (no metadata update)
    Update,      ///< performs metadata updates (redundant-update style)
    StackUpdate, ///< bulk frame metadata initialization
    HighLevel,   ///< malloc / free / taint-source handling
};

/**
 * Abstract monitor. Subclasses implement the five lifeguards evaluated
 * in the paper (Section 6): AddrCheck, MemCheck, TaintCheck, MemLeak,
 * and AtomCheck.
 */
class Monitor
{
  public:
    virtual ~Monitor() = default;

    virtual const char *name() const = 0;

    /** Default (unmapped) shadow metadata byte. */
    virtual std::uint8_t shadowDefault() const = 0;

    /** Initial critical metadata of architectural registers. */
    virtual std::uint8_t regMdInit() const { return shadowDefault(); }

    /**
     * Producer-side event selection: true when the retired instruction
     * generates a monitored event (Section 3.1). High-level pseudo
     * instructions query this too.
     */
    virtual bool monitored(const Instruction &inst) const = 0;

    /**
     * Batch event selection: write the monitored() verdict of each of
     * @p n instructions into @p out (1 = monitored). Exactly
     * equivalent to n monitored() calls — monitored() is a pure
     * function of the instruction, so subclasses override this with a
     * devirtualized loop and batch consumers (the run-grain span path)
     * pay one virtual dispatch per span instead of one per
     * instruction.
     */
    virtual void
    monitoredSpan(const Instruction *insts, std::size_t n,
                  std::uint8_t *out) const
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = monitored(insts[i]) ? 1 : 0;
    }

    /** Program the event table and INV RF for this monitor. */
    virtual void programFade(EventTable &table, InvRegFile &inv) const = 0;

    /**
     * Establish the startup metadata state: globals and the initial
     * stack frames have been allocated/initialized by the loader and
     * startup code before monitoring begins.
     */
    virtual void
    initShadow(MonitorContext &ctx, const WorkloadLayout &l) const
    {
        (void)ctx;
        (void)l;
    }

    /**
     * Functional software handler: apply the canonical metadata
     * transition for the event and report any detected bug. Called when
     * the handler completes on the monitor core (and for every
     * monitored event in unaccelerated systems). Must be idempotent
     * with respect to hardware-filtered events: a filtered event's
     * transition never changes metadata.
     */
    virtual void handleEvent(const UnfilteredEvent &u,
                             MonitorContext &ctx) = 0;

    /**
     * Append the handler's dynamic instruction sequence for the monitor
     * core's timing model. When @p u.hwChecked is false (unaccelerated
     * system) the sequence includes the software check path that FADE
     * would otherwise elide.
     */
    virtual void buildHandlerSeq(const UnfilteredEvent &u,
                                 const MonitorContext &ctx,
                                 std::vector<Instruction> &out) const = 0;

    /** Classify the handler for the Fig. 4(a) time breakdown. */
    virtual HandlerClass classifyHandler(const UnfilteredEvent &u,
                                         const MonitorContext &ctx) const;

    /**
     * Batched replay entry point: start the software handler for @p u
     * by appending its dynamic instruction sequence to @p out and
     * returning its class — one virtual call per handler where the
     * replay engine previously made separate buildHandlerSeq and
     * classifyHandler round-trips. Subclasses override with qualified
     * (devirtualized) calls to their own implementations; results must
     * equal the two-call composition below.
     */
    virtual HandlerClass
    prepareHandler(const UnfilteredEvent &u, const MonitorContext &ctx,
                   std::vector<Instruction> &out) const
    {
        buildHandlerSeq(u, ctx, out);
        return classifyHandler(u, ctx);
    }

    /**
     * A software thread switch occurred (time-sliced multithreaded
     * workloads). AtomCheck updates the current-thread INV register.
     */
    virtual void
    onThreadSwitch(ThreadId tid, InvRegFile *inv)
    {
        (void)tid;
        (void)inv;
    }

    /** End of run (MemLeak's final reachability accounting). */
    virtual void finish() {}

    /**
     * Bind the per-process shared state of a multi-threaded workload
     * (monitor/interleave.hh). Called by MultiCoreSystem after
     * construction for monitors of process-mode workloads; @p shardId /
     * @p numShards tell the monitor which threads it hosts (thread t
     * lives on shard t % numShards). Monitors of single-threaded
     * workloads ignore it.
     */
    virtual void
    bindProcess(ProcessShared *ps, unsigned shardId, unsigned numShards)
    {
        (void)ps;
        (void)shardId;
        (void)numShards;
    }

    const std::vector<BugReport> &reports() const { return reports_; }
    void clearReports() { reports_.clear(); }

  protected:
    void
    report(std::string kind, const MonEvent &ev, std::string detail = "")
    {
        BugReport r;
        r.kind = std::move(kind);
        r.pc = ev.appPc;
        r.addr = ev.appAddr;
        r.seq = ev.seq;
        r.detail = std::move(detail);
        reports_.push_back(std::move(r));
    }

    /** Deposit a fully-built report (analyses that construct reports
     *  with placement-invariant fields rather than from an event). */
    void deposit(BugReport r) { reports_.push_back(std::move(r)); }

  private:
    std::vector<BugReport> reports_;
};

} // namespace fade

#endif // FADE_MONITOR_MONITOR_HH
