#include "monitor/process.hh"

#include "sim/logging.hh"

namespace fade
{

MonitorProcess::MonitorProcess(Monitor &m, MonitorContext &ctx,
                               FadeGroup *fades,
                               BoundedQueue<UnfilteredEvent> *ueq,
                               BoundedQueue<MonEvent> *eq)
    : mon_(m), ctx_(ctx), fades_(fades), ueq_(ueq), eq_(eq)
{
    fatal_if(!!ueq == !!eq,
             "MonitorProcess needs exactly one input queue");
}

bool
MonitorProcess::startNextHandler()
{
    // Empty-input probe first: this is the per-cycle no-work path of an
    // idle monitor thread, and must not construct an event for nothing.
    if (ueq_ ? ueq_->empty() : eq_->empty())
        return false;

    UnfilteredEvent u;
    if (ueq_) {
        u = ueq_->pop();
    } else {
        u.ev = eq_->pop();
        u.hwChecked = false;
    }

    seq_.clear();
    fetchIdx_ = 0;
    PendingHandler p;
    p.u = u;
    // Single dispatch starts the handler: sequence build +
    // classification in one virtual call (batched replay path).
    p.cls = mon_.prepareHandler(u, ctx_, seq_);
    panic_if(seq_.empty(), "monitor handler sequence must be non-empty");
    p.remaining = seq_.size();
    pending_.push_back(std::move(p));
    return true;
}

bool
MonitorProcess::available()
{
    if (fetchIdx_ < seq_.size())
        return true;
    return startNextHandler();
}

Instruction
MonitorProcess::fetch()
{
    panic_if(fetchIdx_ >= seq_.size(), "fetch beyond handler sequence");
    return seq_[fetchIdx_++];
}

void
MonitorProcess::onCommit(const Instruction &inst)
{
    (void)inst;
    panic_if(pending_.empty(), "monitor commit with no pending handler");
    ++stats_.instructions;
    PendingHandler &head = pending_.front();
    ++stats_.instrByClass[static_cast<unsigned>(head.cls)];
    panic_if(head.remaining == 0, "pending handler underflow");
    if (--head.remaining == 0) {
        // Handler complete: apply its functional effects and notify the
        // forwarding filter unit so it can release FSQ entries /
        // unblock (the event's unit tag routes the completion).
        mon_.handleEvent(head.u, ctx_);
        if (fades_)
            fades_->handlerDone(head.u.ev);
        ++stats_.handlers;
        pending_.pop_front();
    }
}

bool
MonitorProcess::idle() const
{
    bool inputEmpty = ueq_ ? ueq_->empty() : eq_->empty();
    return pending_.empty() && fetchIdx_ >= seq_.size() && inputEmpty;
}

} // namespace fade
