/**
 * @file
 * The monitor software process: the unfiltered event consumer of Fig. 1.
 * Runs on a core (or hardware thread) as an instruction source/sink
 * pair: it pops events from its input queue, supplies the handler's
 * dynamic instruction sequence to the core's timing model, and — when
 * the handler's last instruction commits — applies the handler's
 * functional effects and notifies FADE of the completion (releasing FSQ
 * entries / unblocking the baseline pipeline).
 *
 * In accelerated systems the input is the unfiltered event queue fed by
 * FADE; in unaccelerated systems it is the event queue itself, and each
 * handler additionally includes the check path FADE would have elided.
 */

#ifndef FADE_MONITOR_PROCESS_HH
#define FADE_MONITOR_PROCESS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/source.hh"
#include "isa/event.hh"
#include "monitor/monitor.hh"
#include "sim/queue.hh"
#include "sim/ring.hh"
#include "system/topology.hh"

namespace fade
{

/** Statistics of the monitor software process. */
struct MonitorProcessStats
{
    std::uint64_t handlers = 0;
    std::uint64_t instructions = 0;
    /** Committed handler instructions by handler class (Fig. 4(a)). */
    std::array<std::uint64_t, 4> instrByClass{};
};

/**
 * Software monitor execution engine. Implements InstSource (handler
 * instruction supply) and CommitSink (handler completion detection) for
 * the monitor hardware thread.
 */
class MonitorProcess : public InstSource, public CommitSink
{
  public:
    /**
     * @param m      the lifeguard
     * @param ctx    canonical metadata state
     * @param fades  filter-unit group to notify of completions (each
     *               completion routes to the unit that forwarded the
     *               event; may be null)
     * @param ueq    unfiltered event queue (accelerated systems)
     * @param eq     raw event queue (unaccelerated systems)
     *
     * Exactly one of @p ueq / @p eq must be non-null.
     */
    MonitorProcess(Monitor &m, MonitorContext &ctx, FadeGroup *fades,
                   BoundedQueue<UnfilteredEvent> *ueq,
                   BoundedQueue<MonEvent> *eq);

    bool available() override;
    Instruction fetch() override;
    /** Run replay: hand out the current handler sequence in place —
     *  cores consume whole handler runs without the per-instruction
     *  available()/fetch() virtual round-trip (cpu/source.hh). */
    const Instruction *
    fetchNext() override
    {
        if (fetchIdx_ >= seq_.size())
            return nullptr;
        return &seq_[fetchIdx_++];
    }
    bool supportsRuns() const override { return true; }
    bool alwaysCommits() const override { return true; }
    void onCommit(const Instruction &inst) override;

    /** No handler in flight and the input queue is empty. */
    bool idle() const;

    /**
     * Source-probe helpers for the pipeline driver (system/pipeline.hh):
     * when handler instructions remain fetchable, available() is true
     * without side effects; when none remain and the input queue is
     * empty, available() is false without side effects; otherwise
     * available() pops the input queue and must really be called.
     */
    bool fetchPending() const { return fetchIdx_ < seq_.size(); }
    bool inputEmpty() const { return ueq_ ? ueq_->empty() : eq_->empty(); }

    const MonitorProcessStats &stats() const { return stats_; }
    void resetStats() { stats_ = MonitorProcessStats{}; }

  private:
    /** Pop the next event and build its handler sequence. */
    bool startNextHandler();

    struct PendingHandler
    {
        UnfilteredEvent u;
        std::uint64_t remaining = 0; ///< instructions not yet committed
        HandlerClass cls = HandlerClass::Update;
    };

    Monitor &mon_;
    MonitorContext &ctx_;
    FadeGroup *fades_;
    BoundedQueue<UnfilteredEvent> *ueq_;
    BoundedQueue<MonEvent> *eq_;

    std::vector<Instruction> seq_;
    std::size_t fetchIdx_ = 0;
    /** Handlers whose instructions are (partly) in flight. */
    RingDeque<PendingHandler> pending_;

    ThreadId lastTid_ = 0;
    bool seenTid_ = false;

    MonitorProcessStats stats_;
};

} // namespace fade

#endif // FADE_MONITOR_PROCESS_HH
