#include "monitor/racecheck.hh"

#include "monitor/seq.hh"
#include "trace/threads.hh"

namespace fade
{

namespace
{

constexpr Addr pcAccess = handlerCodeBase + 0x5000;
constexpr Addr pcSync = handlerCodeBase + 0x5100;

} // namespace

bool
RaceCheck::monitored(const Instruction &inst) const
{
    // Shared-heap accesses of the process plus every synchronization
    // pseudo-op (the happens-before evidence). Private data cannot
    // race and is left unmonitored.
    if (inst.isMemRef())
        return isProcSharedData(inst.memAddr);
    if (inst.cls == InstClass::HighLevel)
        return inst.hlKind >= EventKind::LockAcquire;
    return false;
}

void
RaceCheck::monitoredSpan(const Instruction *insts, std::size_t n,
                        std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = RaceCheck::monitored(insts[i]) ? 1 : 0;
}

void
RaceCheck::programFade(EventTable &table, InvRegFile &inv) const
{
    inv.write(0, 0);

    // Pure dispatch: the memory operand rule makes the hardware fetch
    // the word's metadata (last-accessor byte — the cross-shard
    // directory traffic), but with neither CC nor RU the entry never
    // filters: every access is ordering evidence the software analysis
    // must see.
    OperandRule loc{true, true, 1, 0x00, 0};

    EventTableEntry ld;
    ld.s1 = loc;
    ld.handlerPc = pcAccess;
    table.program(evLoad, ld);

    EventTableEntry st;
    st.s1 = loc;
    st.handlerPc = pcAccess;
    table.program(evStore, st);
}

void
RaceCheck::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    switch (ev.kind) {
      case EventKind::Inst:
        logOp(ev, ev.eventId == evStore ? ThreadOp::Kind::Write
                                        : ThreadOp::Kind::Read);
        ctx.shadow.writeApp(ev.appAddr,
                            std::uint8_t(mdAccessed | ev.tid));
        break;
      case EventKind::LockAcquire:
        logOp(ev, ThreadOp::Kind::Acquire);
        ctx.shadow.writeApp(ev.appAddr, std::uint8_t(0x40 | ev.tid));
        break;
      case EventKind::LockRelease:
        logOp(ev, ThreadOp::Kind::Release);
        ctx.shadow.writeApp(ev.appAddr, 0);
        break;
      case EventKind::ThreadCreate:
        logOp(ev, ThreadOp::Kind::Create);
        break;
      case EventKind::ThreadJoin:
        logOp(ev, ThreadOp::Kind::Join);
        break;
      default:
        break;
    }
}

void
RaceCheck::finish()
{
    if (ps_)
        depositNew(analyzeRaces(*ps_));
}

void
RaceCheck::buildHandlerSeq(const UnfilteredEvent &u,
                           const MonitorContext &ctx,
                           std::vector<Instruction> &out) const
{
    (void)ctx;
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : pcAccess, 0);
    b.dispatch(ev.seq, 16);

    if (ev.kind == EventKind::Inst) {
        // Epoch check against the word's access history, then the
        // last-accessor update.
        b.load(mdAddrOf(ev.appAddr));
        b.aluDep();
        b.aluDep();
        b.branch();
        b.alu(1);
        b.store(mdAddrOf(ev.appAddr));
    } else if (ev.isSync()) {
        // Vector-clock join/copy against the lock's clock (one word
        // per possible thread) plus the lock metadata update.
        b.alu().aluDep();
        for (unsigned t = 0; t < maxThreads; ++t) {
            b.load(monTableBase + 0x40000 + (ev.appAddr & 0xfff) * 8 +
                   t * 8);
            b.aluDep();
        }
        b.alu(1);
        b.store(mdAddrOf(ev.appAddr));
        b.branch();
    } else {
        b.alu();
    }
}

HandlerClass
RaceCheck::classifyHandler(const UnfilteredEvent &u,
                           const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    return HandlerClass::Update;
}

HandlerClass
RaceCheck::prepareHandler(const UnfilteredEvent &u,
                          const MonitorContext &ctx,
                          std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    RaceCheck::buildHandlerSeq(u, ctx, out);
    return RaceCheck::classifyHandler(u, ctx);
}

} // namespace fade
