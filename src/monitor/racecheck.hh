/**
 * @file
 * RaceCheck: happens-before + lockset data-race detection for
 * multi-threaded process workloads (trace/threads.hh), in the style of
 * FastTrack/Eraser. Monitored events — shared-heap accesses and the
 * synchronization pseudo-ops — are forwarded unfiltered (pure-dispatch
 * event table entries: ordering evidence can never be elided) and
 * logged into the process-wide per-thread logs; detection runs as the
 * canonical vector-clock analysis over those logs at finish()
 * (monitor/interleave.hh), so every placement of threads onto shards
 * produces bit-identical reports. Per-word shadow bytes track the last
 * accessor (accessed | tid), giving the FADE metadata path and the
 * handler timing model realistic cross-shard traffic through the home
 * directory.
 */

#ifndef FADE_MONITOR_RACECHECK_HH
#define FADE_MONITOR_RACECHECK_HH

#include "monitor/interleave.hh"

namespace fade
{

/** Cross-shard lockset/happens-before race detector. */
class RaceCheck : public ProcessMonitorBase
{
  public:
    /** Accessed-before flag in the per-word metadata byte. */
    static constexpr std::uint8_t mdAccessed = 0x80;

    const char *name() const override { return "RaceCheck"; }
    std::uint8_t shadowDefault() const override { return 0; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
    void finish() override;
};

} // namespace fade

#endif // FADE_MONITOR_RACECHECK_HH
