/**
 * @file
 * Builder for software handler instruction sequences. Handlers are
 * modelled as short dynamic instruction sequences with realistic
 * register dependences and metadata/queue memory references, so the
 * monitor core's timing model (and its caches) see representative
 * work: high-locality, ILP-rich code that runs markedly faster on wide
 * OoO cores than in-order ones — the core-type sensitivity the paper
 * observes in Fig. 10.
 */

#ifndef FADE_MONITOR_SEQ_HH
#define FADE_MONITOR_SEQ_HH

#include <vector>

#include "isa/event.hh"
#include "isa/instruction.hh"
#include "mem/shadow.hh"

namespace fade
{

/** Monitor-address-space region holding the event queue buffers. */
constexpr Addr ueqBufBase = Addr(2) << 32;
/** Monitor-address-space region holding private monitor tables. */
constexpr Addr monTableBase = Addr(3) << 32;
/** Monitor handler code region (handler PCs live here). */
constexpr Addr handlerCodeBase = Addr(4) << 32;

/** Fluent builder appending instructions to a handler sequence. */
class SeqBuilder
{
  public:
    SeqBuilder(std::vector<Instruction> &out, Addr pc, ThreadId tid)
        : out_(out), pc_(pc), tid_(tid)
    {}

    /** Independent ALU op (short dependence chains, ILP-friendly). */
    SeqBuilder &
    alu(unsigned nsrc = 2)
    {
        Instruction i = base(InstClass::IntAlu);
        i.numSrc = std::uint8_t(nsrc);
        i.src1 = cursor(3);
        i.src2 = cursor(5);
        i.hasDst = true;
        i.dst = nextDst();
        out_.push_back(i);
        return *this;
    }

    /** ALU op consuming the previous instruction's result. */
    SeqBuilder &
    aluDep()
    {
        Instruction i = base(InstClass::IntAlu);
        i.numSrc = 2;
        i.src1 = lastDst_;
        i.src2 = cursor(5);
        i.hasDst = true;
        i.dst = nextDst();
        out_.push_back(i);
        return *this;
    }

    /** Load from @p addr; result starts a new dependence chain. */
    SeqBuilder &
    load(Addr addr)
    {
        Instruction i = base(InstClass::Load);
        i.memAddr = addr;
        i.numSrc = 1;
        i.src1 = cursor(3);
        i.hasDst = true;
        i.dst = nextDst();
        out_.push_back(i);
        return *this;
    }

    /** Load whose address depends on the previous result. */
    SeqBuilder &
    loadDep(Addr addr)
    {
        Instruction i = base(InstClass::Load);
        i.memAddr = addr;
        i.numSrc = 1;
        i.src1 = lastDst_;
        i.hasDst = true;
        i.dst = nextDst();
        out_.push_back(i);
        return *this;
    }

    /** Store the previous result to @p addr. */
    SeqBuilder &
    store(Addr addr)
    {
        Instruction i = base(InstClass::Store);
        i.memAddr = addr;
        i.numSrc = 2;
        i.src1 = lastDst_;
        i.src2 = cursor(3);
        out_.push_back(i);
        return *this;
    }

    /** Conditional branch consuming the previous result. */
    SeqBuilder &
    branch(bool mispredict = false)
    {
        Instruction i = base(InstClass::Branch);
        i.numSrc = 1;
        i.src1 = lastDst_;
        i.mispredict = mispredict;
        out_.push_back(i);
        return *this;
    }

    /** Indirect jump (handler dispatch) on the previous result. */
    SeqBuilder &
    jumpInd()
    {
        Instruction i = base(InstClass::JumpInd);
        i.numSrc = 1;
        i.src1 = lastDst_;
        out_.push_back(i);
        return *this;
    }

    std::size_t size() const { return out_.size(); }

    /**
     * Standard handler dispatch prologue: read the queue slot, decode
     * the event, and jump to the handler.
     */
    SeqBuilder &
    dispatch(std::uint64_t seq, std::size_t qcap)
    {
        Addr slot = ueqBufBase + (seq % (qcap ? qcap : 16)) * 32;
        load(slot);
        loadDep(slot + 8);
        aluDep();
        jumpInd();
        return *this;
    }

  private:
    Instruction
    base(InstClass c)
    {
        Instruction i;
        i.cls = c;
        i.pc = pc_;
        i.tid = tid_;
        pc_ += 4;
        return i;
    }

    RegIndex
    nextDst()
    {
        // Rotate destinations over r1..r10 so consecutive ops form
        // short, mostly independent chains.
        rr_ = RegIndex(rr_ % 10 + 1);
        lastDst_ = rr_;
        return rr_;
    }

    RegIndex
    cursor(unsigned stride) const
    {
        return RegIndex((rr_ + stride) % 10 + 1);
    }

    std::vector<Instruction> &out_;
    Addr pc_;
    ThreadId tid_;
    RegIndex rr_ = 1;
    RegIndex lastDst_ = 1;
};

} // namespace fade

#endif // FADE_MONITOR_SEQ_HH
