#include "monitor/sharedtaint.hh"

#include "monitor/seq.hh"
#include "trace/threads.hh"

namespace fade
{

namespace
{

constexpr Addr pcAccess = handlerCodeBase + 0x6000;
constexpr Addr pcHighLevel = handlerCodeBase + 0x6100;

} // namespace

bool
SharedTaint::monitored(const Instruction &inst) const
{
    // Shared-heap accesses, taint sources, and the synchronization
    // pseudo-ops (the flow analysis orders hand-offs along them).
    if (inst.isMemRef())
        return isProcSharedData(inst.memAddr);
    if (inst.cls == InstClass::HighLevel)
        return inst.hlKind == EventKind::TaintSource ||
               inst.hlKind >= EventKind::LockAcquire;
    return false;
}

void
SharedTaint::monitoredSpan(const Instruction *insts, std::size_t n,
                          std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = SharedTaint::monitored(insts[i]) ? 1 : 0;
}

void
SharedTaint::programFade(EventTable &table, InvRegFile &inv) const
{
    inv.write(0, 0);

    // Pure dispatch with a metadata fetch of the word's taint byte
    // (see RaceCheck::programFade): every shared access is a potential
    // flow endpoint and must reach the software analysis.
    OperandRule loc{true, true, 1, 0x00, 0};

    EventTableEntry ld;
    ld.s1 = loc;
    ld.handlerPc = pcAccess;
    table.program(evLoad, ld);

    EventTableEntry st;
    st.s1 = loc;
    st.handlerPc = pcAccess;
    table.program(evStore, st);
}

void
SharedTaint::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    switch (ev.kind) {
      case EventKind::Inst:
        if (ev.eventId == evStore) {
            logOp(ev, ThreadOp::Kind::Write);
            ctx.shadow.writeApp(ev.appAddr, 0);
        } else {
            logOp(ev, ThreadOp::Kind::Read);
            if (ctx.shadow.readApp(ev.appAddr) & mdTainted)
                ++taintedReads;
        }
        break;
      case EventKind::TaintSource:
        logOp(ev, ThreadOp::Kind::Taint);
        ctx.shadow.fillApp(ev.appAddr, ev.len ? ev.len : 4, mdTainted);
        break;
      case EventKind::LockAcquire:
        logOp(ev, ThreadOp::Kind::Acquire);
        break;
      case EventKind::LockRelease:
        logOp(ev, ThreadOp::Kind::Release);
        break;
      case EventKind::ThreadCreate:
        logOp(ev, ThreadOp::Kind::Create);
        break;
      case EventKind::ThreadJoin:
        logOp(ev, ThreadOp::Kind::Join);
        break;
      default:
        break;
    }
}

void
SharedTaint::finish()
{
    if (ps_)
        depositNew(analyzeTaintFlows(*ps_));
}

void
SharedTaint::buildHandlerSeq(const UnfilteredEvent &u,
                             const MonitorContext &ctx,
                             std::vector<Instruction> &out) const
{
    (void)ctx;
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : pcAccess, 0);
    b.dispatch(ev.seq, 16);

    switch (ev.kind) {
      case EventKind::Inst:
        // Taint-byte check / update of the accessed word.
        b.load(mdAddrOf(ev.appAddr));
        b.aluDep();
        b.branch();
        b.alu(1);
        b.store(mdAddrOf(ev.appAddr));
        break;
      case EventKind::TaintSource: {
        // Bulk taint fill over the published buffer.
        b.alu().aluDep();
        std::uint32_t len = ev.len ? ev.len : 4;
        Addr md = mdAddrOf(ev.appAddr);
        for (std::uint32_t off = 0; off < len; off += 8) {
            b.alu(1);
            b.store(md + off);
        }
        b.branch();
        break;
      }
      default:
        if (ev.isSync()) {
            // Hand-off bookkeeping at synchronization points.
            b.alu().aluDep();
            b.load(mdAddrOf(ev.appAddr));
            b.aluDep();
            b.store(monTableBase + 0x50000 + (ev.appAddr & 0xfff));
            b.branch();
        } else {
            b.alu();
        }
        break;
    }
}

HandlerClass
SharedTaint::classifyHandler(const UnfilteredEvent &u,
                             const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    return HandlerClass::Update;
}

HandlerClass
SharedTaint::prepareHandler(const UnfilteredEvent &u,
                            const MonitorContext &ctx,
                            std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    SharedTaint::buildHandlerSeq(u, ctx, out);
    return SharedTaint::classifyHandler(u, ctx);
}

} // namespace fade
