/**
 * @file
 * SharedTaint: inter-thread taint propagation for multi-threaded
 * process workloads (trace/threads.hh) — taint published into the
 * shared heap by one thread and observed by another. Shadow bytes hold
 * the taint bit per word (sources set it, plain stores clear it);
 * detection runs as the canonical log analysis at finish()
 * (monitor/interleave.hh), merging per-thread logs along the
 * synchronization order so reports are identical for every placement
 * of threads onto shards.
 */

#ifndef FADE_MONITOR_SHAREDTAINT_HH
#define FADE_MONITOR_SHAREDTAINT_HH

#include "monitor/interleave.hh"

namespace fade
{

/** Cross-thread taint flow detector. */
class SharedTaint : public ProcessMonitorBase
{
  public:
    /** Tainted bit in the per-word metadata byte. */
    static constexpr std::uint8_t mdTainted = 0x01;

    const char *name() const override { return "SharedTaint"; }
    std::uint8_t shadowDefault() const override { return 0; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
    void finish() override;

    /** Functional shadow observations (tests): tainted words read. */
    std::uint64_t taintedReads = 0;
};

} // namespace fade

#endif // FADE_MONITOR_SHAREDTAINT_HH
