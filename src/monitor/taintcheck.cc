#include "monitor/taintcheck.hh"

#include "monitor/seq.hh"

namespace fade
{

namespace
{

constexpr Addr
handlerPcFor(unsigned eventId)
{
    return handlerCodeBase + 0x2000 + eventId * 0x100;
}

enum ChainSlot : unsigned
{
    chLoad = firstChainEntry,
    chStore,
    chAluRR,
    chAluRI,
    chMul,
};

void
bulkFill(SeqBuilder &b, Addr appBase, std::uint64_t lenBytes)
{
    b.alu().alu().aluDep();
    std::uint64_t mdBytes = (lenBytes + wordSize - 1) / wordSize;
    Addr md = mdAddrOf(appBase);
    for (std::uint64_t off = 0; off < mdBytes; off += 8) {
        b.alu(1);
        b.store(md + off);
    }
    b.branch();
}

} // namespace

bool
TaintCheck::monitored(const Instruction &inst) const
{
    switch (inst.cls) {
      case InstClass::IntAlu:
        return inst.mayPropagate;
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::IntMul:
      case InstClass::JumpInd:
      case InstClass::Call:
      case InstClass::Return:
        return true;
      case InstClass::HighLevel:
        return inst.hlKind == EventKind::TaintSource ||
               inst.hlKind == EventKind::Free;
      default:
        return false;
    }
}

void
TaintCheck::monitoredSpan(const Instruction *insts, std::size_t n,
                         std::uint8_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = TaintCheck::monitored(insts[i]) ? 1 : 0;
}

void
TaintCheck::programFade(EventTable &table, InvRegFile &inv) const
{
    inv.write(0, mdUntainted);
    inv.write(6, mdUntainted); // call: fresh frame is untainted
    inv.write(7, mdUntainted); // return: clear taint with the frame

    auto ccThenRu = [&](unsigned id, unsigned chain, OperandRule s1,
                        OperandRule s2, OperandRule d, RuOp ru,
                        NbAction nb) {
        EventTableEntry e;
        e.s1 = s1;
        e.s2 = s2;
        e.d = d;
        e.cc = true;
        e.multiShot = true;
        e.nextEntry = std::uint8_t(chain);
        e.handlerPc = handlerPcFor(id);
        e.nb.action = nb;
        table.program(id, e);

        EventTableEntry c;
        c.s1 = s1;
        c.s2 = s2;
        c.d = d;
        c.ru = ru;
        c.msCombine = MsCombine::Or;
        c.handlerPc = handlerPcFor(id);
        table.program(chain, c);
    };

    OperandRule mem{true, true, 1, 0x01, 0};
    OperandRule reg{true, false, 1, 0x01, 0};
    OperandRule off{};

    ccThenRu(evLoad, chLoad, mem, off, reg, RuOp::CopyS1,
             NbAction::CopyS1);
    ccThenRu(evStore, chStore, reg, off, mem, RuOp::CopyS1,
             NbAction::CopyS1);
    ccThenRu(evAluRR, chAluRR, reg, reg, reg, RuOp::OrS1S2, NbAction::Or);
    ccThenRu(evAluRI, chAluRI, reg, off, reg, RuOp::CopyS1,
             NbAction::CopyS1);
    ccThenRu(evMul, chMul, reg, reg, reg, RuOp::OrS1S2, NbAction::Or);

    // Indirect jump: alert when the target register is tainted.
    EventTableEntry jmp;
    jmp.s1 = reg;
    jmp.cc = true;
    jmp.handlerPc = handlerPcFor(evJumpInd);
    table.program(evJumpInd, jmp);
}

void
TaintCheck::handleEvent(const UnfilteredEvent &u, MonitorContext &ctx)
{
    const MonEvent &ev = u.ev;
    auto regRead = [&](RegIndex r) { return ctx.regMd.read(ev.tid, r); };
    auto regWrite = [&](RegIndex r, std::uint8_t v) {
        ctx.regMd.write(ev.tid, r, v);
    };

    switch (ev.kind) {
      case EventKind::Inst:
        switch (ev.eventId) {
          case evLoad:
            regWrite(ev.dst, ctx.shadow.readApp(ev.appAddr));
            break;
          case evStore:
            ctx.shadow.writeApp(ev.appAddr, regRead(ev.src1));
            break;
          case evAluRR:
          case evMul:
            regWrite(ev.dst,
                     std::uint8_t(regRead(ev.src1) | regRead(ev.src2)));
            break;
          case evAluRI:
            regWrite(ev.dst, regRead(ev.src1));
            break;
          case evJumpInd: {
            // When the hardware already performed the clean check, an
            // unfiltered jump means the target WAS tainted at event
            // time (later events' non-blocking updates may have since
            // overwritten the register metadata).
            bool tainted = u.hwChecked
                               ? true
                               : (regRead(ev.src1) & mdTainted) != 0;
            if (tainted) {
                report("tainted-jump", ev,
                       "indirect jump to attacker-controlled target");
                // Clear the taint so one exploit yields one alert.
                regWrite(ev.src1, mdUntainted);
            }
            break;
          }
          default:
            break;
        }
        break;
      case EventKind::TaintSource:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdTainted);
        break;
      case EventKind::Free:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUntainted);
        break;
      case EventKind::StackCall:
      case EventKind::StackReturn:
        ctx.shadow.fillApp(ev.appAddr, ev.len, mdUntainted);
        break;
      default:
        break;
    }
}

void
TaintCheck::buildHandlerSeq(const UnfilteredEvent &u,
                            const MonitorContext &ctx,
                            std::vector<Instruction> &out) const
{
    const MonEvent &ev = u.ev;
    SeqBuilder b(out, u.handlerPc ? u.handlerPc : handlerPcFor(0), 0);
    b.dispatch(ev.seq, 16);
    (void)ctx;

    switch (ev.kind) {
      case EventKind::Inst: {
        bool isMem = ev.eventId == evLoad || ev.eventId == evStore;
        if (!u.hwChecked) {
            if (isMem)
                b.load(mdAddrOf(ev.appAddr));
            else
                b.load(monTableBase + ev.src1 * 8);
            b.aluDep();
            b.branch();
        }
        if (ev.eventId == evJumpInd) {
            // Alert path: record the exploit attempt.
            b.load(monTableBase);
            b.aluDep().aluDep();
            b.store(monTableBase + 64);
        } else {
            // Propagate: read source taint, combine, write destination.
            b.load(isMem ? mdAddrOf(ev.appAddr)
                         : monTableBase + ev.src1 * 8);
            if (ev.numSrc > 1) {
                b.load(monTableBase + ev.src2 * 8);
                b.aluDep();
            }
            b.aluDep();
            if (ev.eventId == evStore)
                b.store(mdAddrOf(ev.appAddr));
            else
                b.store(monTableBase + ev.dst * 8);
        }
        break;
      }
      case EventKind::TaintSource:
      case EventKind::Free:
      case EventKind::StackCall:
      case EventKind::StackReturn:
        bulkFill(b, ev.appAddr, ev.len);
        break;
      default:
        b.alu();
        break;
    }
}

HandlerClass
TaintCheck::classifyHandler(const UnfilteredEvent &u,
                            const MonitorContext &ctx) const
{
    (void)ctx;
    if (u.ev.isStackUpdate())
        return HandlerClass::StackUpdate;
    if (u.ev.isHighLevel())
        return HandlerClass::HighLevel;
    if (u.ev.eventId == evJumpInd)
        return HandlerClass::CheckOnly;
    return HandlerClass::Update;
}

HandlerClass
TaintCheck::prepareHandler(const UnfilteredEvent &u,
                           const MonitorContext &ctx,
                           std::vector<Instruction> &out) const
{
    // Qualified calls: devirtualized single-dispatch replay path.
    TaintCheck::buildHandlerSeq(u, ctx, out);
    return TaintCheck::classifyHandler(u, ctx);
}

} // namespace fade
