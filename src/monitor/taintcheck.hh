/**
 * @file
 * TaintCheck (Newsome & Song): dynamic taint analysis detecting
 * overwrite-based security exploits. Critical metadata: one taint bit
 * per application word/register. Taint enters through instrumented
 * input routines (TaintSource events), propagates through loads,
 * stores, and arithmetic, and an alert fires when an indirect jump
 * target is tainted.
 */

#ifndef FADE_MONITOR_TAINTCHECK_HH
#define FADE_MONITOR_TAINTCHECK_HH

#include "monitor/monitor.hh"

namespace fade
{

/** Propagation-tracking monitor: taint-flow analysis. */
class TaintCheck : public Monitor
{
  public:
    static constexpr std::uint8_t mdUntainted = 0x00;
    static constexpr std::uint8_t mdTainted = 0x01;

    const char *name() const override { return "TaintCheck"; }
    std::uint8_t shadowDefault() const override { return mdUntainted; }

    bool monitored(const Instruction &inst) const override;
    void monitoredSpan(const Instruction *insts, std::size_t n,
                       std::uint8_t *out) const override;
    void programFade(EventTable &table, InvRegFile &inv) const override;
    void handleEvent(const UnfilteredEvent &u, MonitorContext &ctx) override;
    void buildHandlerSeq(const UnfilteredEvent &u, const MonitorContext &ctx,
                         std::vector<Instruction> &out) const override;
    HandlerClass classifyHandler(const UnfilteredEvent &u,
                                 const MonitorContext &ctx) const override;
    HandlerClass prepareHandler(const UnfilteredEvent &u,
                                const MonitorContext &ctx,
                                std::vector<Instruction> &out) const override;
};

} // namespace fade

#endif // FADE_MONITOR_TAINTCHECK_HH
