#include "power/model.hh"

#include <cmath>

namespace fade
{

FadeInventory
inventoryFor(const FadeParams &p, std::size_t eqEntries,
             std::size_t ueqEntries)
{
    FadeInventory inv;
    inv.eventQueueEntries = unsigned(eqEntries);
    inv.unfilteredQueueEntries = unsigned(ueqEntries);
    inv.fsqEntries = unsigned(p.fsqEntries);
    if (!p.nonBlocking) {
        // Baseline FADE omits the striped structures of Fig. 5.
        inv.fsqEntries = 0;
        inv.mdUpdateGates = 0;
        inv.pipelineLatchBits = 4 * 220;
    }
    return inv;
}

namespace
{

AreaPower
flopArray(const std::string &name, std::uint64_t bits,
          const TechParams &t)
{
    AreaPower ap;
    ap.component = name;
    ap.areaMm2 = bits * t.flopAreaUm2 * 1e-6;
    ap.powerMw = bits * t.flopPowerUw * 1e-3 * (1.0 + t.clockOverhead) *
                 (t.frequencyGhz / 2.0);
    return ap;
}

AreaPower
logicBlock(const std::string &name, std::uint64_t gates,
           const TechParams &t)
{
    AreaPower ap;
    ap.component = name;
    ap.areaMm2 = gates * t.gateAreaUm2 * 1e-6;
    ap.powerMw = gates * t.gatePowerUw * 1e-3 * (t.frequencyGhz / 2.0);
    return ap;
}

} // namespace

std::vector<AreaPower>
fadeLogicBreakdown(const FadeInventory &inv, const TechParams &tech)
{
    std::vector<AreaPower> v;
    v.push_back(flopArray(
        "event table",
        std::uint64_t(inv.eventTableEntries) * inv.eventTableEntryBits,
        tech));
    v.push_back(flopArray(
        "event queue",
        std::uint64_t(inv.eventQueueEntries) * inv.eventQueueEntryBits,
        tech));
    v.push_back(flopArray("unfiltered queue",
                          std::uint64_t(inv.unfilteredQueueEntries) *
                              inv.unfilteredQueueEntryBits,
                          tech));
    v.push_back(flopArray("INV RF",
                          std::uint64_t(inv.invRegs) * inv.invRegBits,
                          tech));
    v.push_back(flopArray("MD RF",
                          std::uint64_t(inv.mdRfEntries) * inv.mdRfBits,
                          tech));
    v.push_back(flopArray("FSQ",
                          std::uint64_t(inv.fsqEntries) * inv.fsqEntryBits,
                          tech));
    v.push_back(
        flopArray("pipeline latches", inv.pipelineLatchBits, tech));
    v.push_back(logicBlock("filter logic",
                           std::uint64_t(inv.comparatorBlocks) *
                               inv.gatesPerComparator,
                           tech));
    v.push_back(logicBlock("control", inv.controlGates, tech));
    v.push_back(logicBlock("SUU", inv.suuGates, tech));
    v.push_back(logicBlock("MD update logic", inv.mdUpdateGates, tech));
    return v;
}

AreaPower
fadeLogicTotal(const FadeInventory &inv, const TechParams &tech)
{
    AreaPower total;
    total.component = "FADE logic";
    for (const auto &c : fadeLogicBreakdown(inv, tech)) {
        total.areaMm2 += c.areaMm2;
        total.powerMw += c.powerMw;
    }
    return total;
}

AreaPower
mdCacheAreaPower(const MdCacheParams &p, const TechParams &tech)
{
    AreaPower ap;
    ap.component = "MD cache";
    std::uint64_t dataBits = p.sizeBytes * 8;
    // Tag bits: one tag per block; ~20 tag+state bits each.
    std::uint64_t blocks = p.sizeBytes / p.blockBytes;
    std::uint64_t tagBits = blocks * 20;
    // TLB: ~64 bits per entry (VPN + PPN + state).
    std::uint64_t tlbBits = std::uint64_t(p.tlbEntries) * 64;
    std::uint64_t bits = dataBits + tagBits + tlbBits;
    ap.areaMm2 = bits * tech.sramBitAreaUm2 * 1e-6;
    ap.powerMw = bits * tech.sramBitPowerUw * 1e-3 *
                 (tech.frequencyGhz / 2.0);
    return ap;
}

double
mdCacheAccessNs(const MdCacheParams &p, const TechParams &tech)
{
    // CACTI-like sqrt-of-capacity scaling, anchored at 0.3ns for the
    // paper's 4KB design point.
    double kb = double(p.sizeBytes) / 1024.0;
    return tech.sramAccessNsPerKb * 4.0 * std::sqrt(kb / 4.0) + 0.012;
}

} // namespace fade
