/**
 * @file
 * Analytical 40nm area/power model for FADE (Section 7.6 of the paper).
 * The paper synthesizes a VHDL implementation with Synopsys DC in TSMC
 * 40nm at 2GHz and reports 0.09 mm^2 / 122 mW for the FADE logic and,
 * via CACTI 6.5, 0.03 mm^2 / 151 mW / 0.3 ns for the 4KB MD cache. We
 * replace the proprietary flow with an inventory-based model: flop and
 * gate cost coefficients (fitted to the paper's synthesis results, see
 * DESIGN.md) applied to the exact storage/logic inventory of our
 * configuration, plus a CACTI-style SRAM model for the MD cache.
 */

#ifndef FADE_POWER_MODEL_HH
#define FADE_POWER_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/fade.hh"
#include "mem/mdcache.hh"

namespace fade
{

/** Area (mm^2) and peak power (mW) of one component. */
struct AreaPower
{
    std::string component;
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** 40nm technology coefficients (fitted; see file header). */
struct TechParams
{
    double flopAreaUm2 = 4.55;     ///< flip-flop incl. routing overhead
    double gateAreaUm2 = 0.70;    ///< NAND2-equivalent logic gate
    double flopPowerUw = 5.75;     ///< peak dynamic+leakage per flop @2GHz
    double gatePowerUw = 1.05;    ///< peak per gate @2GHz
    double clockOverhead = 0.05;  ///< clock tree power fraction
    double sramBitAreaUm2 = 0.85; ///< SRAM bit incl. periphery
    double sramBitPowerUw = 4.3;  ///< peak per bit @2GHz (CACTI-style)
    double sramAccessNsPerKb = 0.072; ///< fitted to 0.3ns at 4KB
    double frequencyGhz = 2.0;
};

/** Geometry of the modelled FADE instance. */
struct FadeInventory
{
    unsigned eventTableEntries = 128;
    unsigned eventTableEntryBits = 96;
    unsigned eventQueueEntries = 32;
    unsigned eventQueueEntryBits = 85; ///< Fig. 6(a): 6+32+32+5+5+5
    unsigned unfilteredQueueEntries = 16;
    unsigned unfilteredQueueEntryBits = 96;
    unsigned invRegs = 8;
    unsigned invRegBits = 8;
    unsigned mdRfEntries = 32;
    unsigned mdRfBits = 8;
    unsigned fsqEntries = 16;
    unsigned fsqEntryBits = 48; ///< md address + value + owner tag
    unsigned pipelineLatchBits = 5 * 220;
    unsigned comparatorBlocks = 3; ///< Fig. 7: f1, f2, f3
    unsigned gatesPerComparator = 260;
    unsigned controlGates = 4200;
    unsigned suuGates = 1800;
    unsigned mdUpdateGates = 900;
};

/** Build the inventory matching a runtime configuration. */
FadeInventory inventoryFor(const FadeParams &p, std::size_t eqEntries,
                           std::size_t ueqEntries);

/** Per-component and total area/power for the FADE logic. */
std::vector<AreaPower> fadeLogicBreakdown(const FadeInventory &inv,
                                          const TechParams &tech = {});

/** Aggregate of fadeLogicBreakdown. */
AreaPower fadeLogicTotal(const FadeInventory &inv,
                         const TechParams &tech = {});

/** CACTI-style MD cache model. */
AreaPower mdCacheAreaPower(const MdCacheParams &p,
                           const TechParams &tech = {});

/** MD cache access latency in ns. */
double mdCacheAccessNs(const MdCacheParams &p,
                       const TechParams &tech = {});

} // namespace fade

#endif // FADE_POWER_MODEL_HH
