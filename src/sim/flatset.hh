/**
 * @file
 * Open-addressing hash containers for the functional hot paths.
 *
 * The simulator's per-instruction bookkeeping (the generator's
 * pointer/taint word mirrors, the monitors' per-word side tables, the
 * shadow memory's page directory) was built on libstdc++'s node-based
 * `std::unordered_{set,map}`, which allocates one heap node per element
 * and chases a pointer per lookup. AddrSet / AddrMap replace them with
 * flat power-of-two tables: Fibonacci hashing, linear probing, and
 * backward-shift deletion (no tombstones), so the common
 * insert/count/erase cycle touches one or two contiguous cache lines
 * and never allocates after the table has grown to its working size.
 *
 * Determinism contract: these containers are used only through
 * order-independent operations (insert/erase/count/find/size). Nothing
 * simulation-visible may depend on slot order; forEach() exists for
 * tests and whole-table maintenance whose outcome is order-invariant.
 */

#ifndef FADE_SIM_FLATSET_HH
#define FADE_SIM_FLATSET_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fade
{

namespace flat_detail
{

/** Fibonacci (multiplicative) hash of an address key. */
constexpr std::uint64_t
mixAddr(Addr k)
{
    return k * 0x9E3779B97F4A7C15ULL;
}

} // namespace flat_detail

/**
 * Flat hash set of addresses. Capacity is a power of two; the key
 * ~Addr(0) is reserved as the empty-slot sentinel (no simulator address
 * space uses it: application addresses stay far below 2^63 and metadata
 * addresses live at mdBase + appAddr/wordSize).
 */
class AddrSet
{
  public:
    explicit AddrSet(std::size_t expected = 0)
    {
        rehash(tableFor(expected));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool
    contains(Addr k) const
    {
        std::size_t i = home(k);
        while (slots_[i] != kEmpty) {
            if (slots_[i] == k)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** unordered_set-compatible membership test (0 or 1). */
    std::size_t count(Addr k) const { return contains(k) ? 1 : 0; }

    /** @return true when @p k was newly inserted. */
    bool
    insert(Addr k)
    {
        panic_if(k == kEmpty, "AddrSet: reserved sentinel key");
        std::size_t i = home(k);
        while (slots_[i] != kEmpty) {
            if (slots_[i] == k)
                return false;
            i = (i + 1) & mask_;
        }
        slots_[i] = k;
        ++size_;
        if (overloaded()) {
            rehash(slots_.size() * 2);
        }
        return true;
    }

    /** @return true when @p k was present and removed. */
    bool
    erase(Addr k)
    {
        panic_if(k == kEmpty, "AddrSet: reserved sentinel key");
        std::size_t i = home(k);
        while (slots_[i] != k) {
            if (slots_[i] == kEmpty)
                return false;
            i = (i + 1) & mask_;
        }
        shiftErase(i);
        --size_;
        return true;
    }

    /**
     * Erase every key in [lo, hi) that lies on the @p stride grid
     * anchored at @p lo. Equivalent to `for (a = lo; a < hi; a +=
     * stride) erase(a)`, but when the range holds more grid points than
     * the set holds keys, the table is scanned once instead of probing
     * per grid point — large frees and deep stack pops stop paying per
     * untouched word. The resulting set is identical either way.
     */
    void
    eraseRange(Addr lo, Addr hi, Addr stride)
    {
        if (hi <= lo || size_ == 0)
            return;
        // Probing visits ~2 scattered lines per grid point; a scan
        // walks the whole table sequentially once. Cross over when the
        // range is a sizable fraction of the table.
        std::uint64_t points = (hi - lo + stride - 1) / stride;
        if (points * 4 <= slots_.size()) {
            for (Addr a = lo; a < hi; a += stride)
                erase(a);
            return;
        }
        // Scan mode: collect matches first (backward-shift erase moves
        // survivors between slots, so erasing during the scan could
        // skip keys that wrap around the table), then erase them.
        scratch_.clear();
        for (Addr k : slots_) {
            if (k != kEmpty && k >= lo && k < hi &&
                (k - lo) % stride == 0) {
                scratch_.push_back(k);
            }
        }
        for (Addr k : scratch_)
            erase(k);
    }

    void
    clear()
    {
        if (size_ == 0)
            return;
        slots_.assign(slots_.size(), kEmpty);
        size_ = 0;
    }

    /** Visit every key (order unspecified; tests / maintenance only —
     *  nothing simulation-visible may depend on the visit order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (Addr k : slots_) {
            if (k != kEmpty)
                fn(k);
        }
    }

    /** Slots allocated (diagnostics). */
    std::size_t capacity() const { return slots_.size(); }

  private:
    static constexpr Addr kEmpty = ~Addr(0);
    static constexpr std::size_t kMinSlots = 16;

    static std::size_t
    tableFor(std::size_t expected)
    {
        std::size_t n = kMinSlots;
        // Grow threshold is 5/8 load; size the table below it.
        while (expected * 8 >= n * 5)
            n *= 2;
        return n;
    }

    std::size_t home(Addr k) const
    {
        return std::size_t(flat_detail::mixAddr(k)) & mask_;
    }

    bool overloaded() const { return size_ * 8 >= slots_.size() * 5; }

    /** Backward-shift deletion: close the hole at @p i by moving each
     *  following cluster element whose home lies at or before the hole
     *  (cyclically), preserving every probe invariant without
     *  tombstones. */
    void
    shiftErase(std::size_t i)
    {
        std::size_t hole = i;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            Addr k = slots_[j];
            if (k == kEmpty)
                break;
            std::size_t h = home(k);
            // Move k into the hole unless its home lies cyclically
            // inside (hole, j] — then k is already at or past home.
            if (((j - h) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = k;
                hole = j;
            }
        }
        slots_[hole] = kEmpty;
    }

    void
    rehash(std::size_t newSlots)
    {
        std::vector<Addr> old = std::move(slots_);
        slots_.assign(newSlots, kEmpty);
        mask_ = newSlots - 1;
        for (Addr k : old) {
            if (k == kEmpty)
                continue;
            std::size_t i = home(k);
            while (slots_[i] != kEmpty)
                i = (i + 1) & mask_;
            slots_[i] = k;
        }
    }

    std::vector<Addr> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    /** Reused by eraseRange's scan mode (no per-call allocation). */
    std::vector<Addr> scratch_;
};

/**
 * Flat hash map from addresses to @p V, with the same table layout and
 * deletion scheme as AddrSet. V must be default-constructible and
 * movable (values move during rehash and backward-shift deletion).
 */
template <typename V>
class AddrMap
{
  public:
    explicit AddrMap(std::size_t expected = 0)
    {
        rehash(tableFor(expected));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    V *
    find(Addr k)
    {
        std::size_t i = probe(k);
        return i == npos ? nullptr : &vals_[i];
    }

    const V *
    find(Addr k) const
    {
        std::size_t i = probe(k);
        return i == npos ? nullptr : &vals_[i];
    }

    bool contains(Addr k) const { return probe(k) != npos; }

    /** Value for @p k, default-constructed on first touch. */
    V &
    operator[](Addr k)
    {
        panic_if(k == kEmpty, "AddrMap: reserved sentinel key");
        std::size_t i = home(k);
        while (keys_[i] != kEmpty) {
            if (keys_[i] == k)
                return vals_[i];
            i = (i + 1) & mask_;
        }
        keys_[i] = k;
        vals_[i] = V{};
        ++size_;
        if (overloaded()) {
            rehash(keys_.size() * 2);
            i = probe(k);
        }
        return vals_[i];
    }

    /** @return true when @p k was present and removed. */
    bool
    erase(Addr k)
    {
        panic_if(k == kEmpty, "AddrMap: reserved sentinel key");
        std::size_t i = home(k);
        while (keys_[i] != k) {
            if (keys_[i] == kEmpty)
                return false;
            i = (i + 1) & mask_;
        }
        shiftErase(i);
        --size_;
        return true;
    }

    void
    clear()
    {
        if (size_ == 0)
            return;
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmpty)
                vals_[i] = V{};
        }
        keys_.assign(keys_.size(), kEmpty);
        size_ = 0;
    }

    /** Visit every (key, value) pair (order unspecified; see AddrSet). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmpty)
                fn(keys_[i], vals_[i]);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmpty)
                fn(keys_[i], vals_[i]);
        }
    }

  private:
    static constexpr Addr kEmpty = ~Addr(0);
    static constexpr std::size_t kMinSlots = 16;
    static constexpr std::size_t npos = ~std::size_t(0);

    static std::size_t
    tableFor(std::size_t expected)
    {
        std::size_t n = kMinSlots;
        while (expected * 8 >= n * 5)
            n *= 2;
        return n;
    }

    std::size_t home(Addr k) const
    {
        return std::size_t(flat_detail::mixAddr(k)) & mask_;
    }

    bool overloaded() const { return size_ * 8 >= keys_.size() * 5; }

    std::size_t
    probe(Addr k) const
    {
        std::size_t i = home(k);
        while (keys_[i] != kEmpty) {
            if (keys_[i] == k)
                return i;
            i = (i + 1) & mask_;
        }
        return npos;
    }

    void
    shiftErase(std::size_t i)
    {
        std::size_t hole = i;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            Addr k = keys_[j];
            if (k == kEmpty)
                break;
            std::size_t h = home(k);
            if (((j - h) & mask_) >= ((j - hole) & mask_)) {
                keys_[hole] = k;
                vals_[hole] = std::move(vals_[j]);
                hole = j;
            }
        }
        keys_[hole] = kEmpty;
        vals_[hole] = V{};
    }

    void
    rehash(std::size_t newSlots)
    {
        std::vector<Addr> oldKeys = std::move(keys_);
        std::vector<V> oldVals = std::move(vals_);
        keys_.assign(newSlots, kEmpty);
        vals_.clear();
        vals_.resize(newSlots);
        mask_ = newSlots - 1;
        for (std::size_t s = 0; s < oldKeys.size(); ++s) {
            Addr k = oldKeys[s];
            if (k == kEmpty)
                continue;
            std::size_t i = home(k);
            while (keys_[i] != kEmpty)
                i = (i + 1) & mask_;
            keys_[i] = k;
            vals_[i] = std::move(oldVals[s]);
        }
    }

    std::vector<Addr> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace fade

#endif // FADE_SIM_FLATSET_HH
