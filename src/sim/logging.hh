/**
 * @file
 * Error and status reporting in the gem5 idiom: panic() for internal
 * simulator bugs, fatal() for user/configuration errors, warn() and
 * inform() for status messages that never stop the simulation.
 */

#ifndef FADE_SIM_LOGGING_HH
#define FADE_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fade
{

namespace log_detail
{

inline void
format(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format(os, rest...);
}

template <typename... Args>
std::string
str(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

[[noreturn]] inline void
exitPanic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
exitFatal(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace log_detail

/** Report an internal invariant violation (a simulator bug) and abort. */
#define panic(...)                                                         \
    ::fade::log_detail::exitPanic(::fade::log_detail::str(__VA_ARGS__),    \
                                  __FILE__, __LINE__)

/** Report an unrecoverable user/configuration error and exit(1). */
#define fatal(...)                                                         \
    ::fade::log_detail::exitFatal(::fade::log_detail::str(__VA_ARGS__),    \
                                  __FILE__, __LINE__)

/** Panic if @p cond does not hold. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** Fatal if @p cond does not hold. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            fatal(__VA_ARGS__);                                            \
    } while (0)

/** Status message about possibly-degraded functionality. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n", log_detail::str(args...).c_str());
}

/** Purely informative status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n", log_detail::str(args...).c_str());
}

} // namespace fade

#endif // FADE_SIM_LOGGING_HH
