/**
 * @file
 * Bounded FIFO with occupancy instrumentation. Models the decoupling
 * queues of the monitoring system: the 32-entry event queue between the
 * application core and FADE, and the 16-entry unfiltered event queue
 * between FADE and the monitor (Sections 3.2 and 3.4 of the paper).
 *
 * Storage is a ring buffer (bounded queues allocate exactly once, at
 * construction; unbounded queues grow by doubling), replacing the
 * per-block churn of the previous std::deque implementation on the
 * event-transport hot path. pushRun()/popRun() provide the bulk
 * transport used by the run-to-stall pipeline engine
 * (system/pipeline.hh); both are element-for-element equivalent to a
 * loop of push()/pop() calls — identical rejection accounting and
 * identical per-event occupancy sampling — so engines built on bulk
 * transport stay bit-identical to per-cycle execution.
 */

#ifndef FADE_SIM_QUEUE_HH
#define FADE_SIM_QUEUE_HH

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace fade
{

/**
 * A bounded FIFO. Capacity 0 means unbounded (used for the infinite
 * event-queue occupancy study of Fig. 3(a,b)). Occupancy is sampled into
 * a log2 histogram on every push, matching the paper's methodology of
 * recording the queue depth seen by each arriving event.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity = 0)
        : capacity_(capacity), buf_(capacity ? capacity : minUnboundedSlots)
    {}

    /** True when a push would be rejected. */
    bool
    full() const
    {
        return capacity_ != 0 && count_ >= capacity_;
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Append an entry.
     * @return false (and counts a rejection) when the queue is full.
     */
    bool
    push(const T &v)
    {
        T *slot = pushSlot();
        if (!slot)
            return false;
        *slot = v;
        return true;
    }

    /**
     * Claim the next back slot for in-place construction — the single
     * accounting path push() delegates to (rejection count when full,
     * occupancy sample on acceptance). The caller owns filling the
     * slot before the entry is observed.
     * @return the slot, or nullptr (and one counted rejection) when
     *         full.
     */
    T *
    pushSlot()
    {
        if (full()) {
            ++rejects_;
            return nullptr;
        }
        if (count_ == buf_.size())
            grow();
        T *slot = &buf_[wrap(head_ + count_)];
        ++count_;
        ++pushes_;
        occupancy_.sample(count_);
        return slot;
    }

    /**
     * Append a run of entries, each with exactly the accounting of an
     * individual push(): entries are accepted until the queue fills,
     * every accepted entry samples the occupancy it observes, and every
     * entry past the fill point counts one rejection.
     * @return the number of entries accepted.
     */
    template <typename InputIt>
    std::size_t
    pushRun(InputIt first, InputIt last)
    {
        std::size_t accepted = 0;
        for (; first != last; ++first)
            if (push(*first))
                ++accepted;
        return accepted;
    }

    /** Front entry; queue must be non-empty. */
    const T &
    front() const
    {
        panic_if(empty(), "front() on empty queue");
        return buf_[head_];
    }

    T &
    front()
    {
        panic_if(empty(), "front() on empty queue");
        return buf_[head_];
    }

    /** Remove and return the front entry; queue must be non-empty. */
    T
    pop()
    {
        panic_if(empty(), "pop() on empty queue");
        T v = std::move(buf_[head_]);
        head_ = wrap(head_ + 1);
        --count_;
        ++pops_;
        return v;
    }

    /**
     * Remove up to @p n front entries, discarding them. Equivalent to
     * (and accounted exactly as) min(n, size()) pop() calls; pops never
     * sample the occupancy histogram. Used by the batched engine to
     * drain a queue across a fast-forwarded span in one call.
     * @return the number of entries removed.
     */
    std::size_t
    popRun(std::size_t n)
    {
        std::size_t k = n < count_ ? n : count_;
        head_ = wrap(head_ + k);
        count_ -= k;
        pops_ += k;
        return k;
    }

    /** Remove up to @p n front entries into @p out (FIFO order). */
    template <typename OutputIt>
    std::size_t
    popRun(std::size_t n, OutputIt out)
    {
        std::size_t k = n < count_ ? n : count_;
        for (std::size_t i = 0; i < k; ++i) {
            *out++ = std::move(buf_[head_]);
            head_ = wrap(head_ + 1);
        }
        count_ -= k;
        pops_ += k;
        return k;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Iteration support (associative searches in tests/tools). */
    template <typename Q, typename V>
    class Iter
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = V *;
        using reference = V &;

        Iter(Q *q, std::size_t i) : q_(q), i_(i) {}
        V &operator*() const { return q_->buf_[q_->wrap(q_->head_ + i_)]; }
        V *operator->() const { return &**this; }
        Iter &
        operator++()
        {
            ++i_;
            return *this;
        }
        bool
        operator==(const Iter &o) const
        {
            return q_ == o.q_ && i_ == o.i_;
        }
        bool operator!=(const Iter &o) const { return !(*this == o); }

      private:
        Q *q_;
        std::size_t i_;
    };
    using iterator = Iter<BoundedQueue, T>;
    using const_iterator = Iter<const BoundedQueue, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count_}; }

    /**
     * Account one entry that transited this queue without ever being
     * stored in it: one push, one pop, and an occupancy sample of
     * @p occupancy — the depth the run-grain engine's timing model
     * computed for the arrival (system/rungrain.hh). The engine moves
     * events through a private staging slot, so the architectural
     * queue's statistics are driven from modeled time instead of the
     * (always-empty) host-side state.
     */
    void
    accountTransit(std::size_t occupancy)
    {
        ++pushes_;
        ++pops_;
        occupancy_.sample(occupancy);
    }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t rejects() const { return rejects_; }
    const Log2Histogram &occupancy() const { return occupancy_; }

    void
    resetStats()
    {
        pushes_ = pops_ = rejects_ = 0;
        occupancy_.reset();
    }

  private:
    static constexpr std::size_t minUnboundedSlots = 16;

    std::size_t
    wrap(std::size_t i) const
    {
        return i >= buf_.size() ? i - buf_.size() : i;
    }

    /** Unbounded queues double their storage, re-linearized. */
    void
    grow()
    {
        std::vector<T> next(buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(buf_[wrap(head_ + i)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::size_t capacity_;
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t rejects_ = 0;
    Log2Histogram occupancy_;
};

} // namespace fade

#endif // FADE_SIM_QUEUE_HH
