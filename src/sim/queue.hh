/**
 * @file
 * Bounded FIFO with occupancy instrumentation. Models the decoupling
 * queues of the monitoring system: the 32-entry event queue between the
 * application core and FADE, and the 16-entry unfiltered event queue
 * between FADE and the monitor (Sections 3.2 and 3.4 of the paper).
 */

#ifndef FADE_SIM_QUEUE_HH
#define FADE_SIM_QUEUE_HH

#include <cstddef>
#include <deque>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace fade
{

/**
 * A bounded FIFO. Capacity 0 means unbounded (used for the infinite
 * event-queue occupancy study of Fig. 3(a,b)). Occupancy is sampled into
 * a log2 histogram on every push, matching the paper's methodology of
 * recording the queue depth seen by each arriving event.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity = 0)
        : capacity_(capacity)
    {}

    /** True when a push would be rejected. */
    bool
    full() const
    {
        return capacity_ != 0 && q_.size() >= capacity_;
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Append an entry.
     * @return false (and counts a rejection) when the queue is full.
     */
    bool
    push(const T &v)
    {
        if (full()) {
            ++rejects_;
            return false;
        }
        q_.push_back(v);
        ++pushes_;
        occupancy_.sample(q_.size());
        return true;
    }

    /** Front entry; queue must be non-empty. */
    const T &
    front() const
    {
        panic_if(q_.empty(), "front() on empty queue");
        return q_.front();
    }

    T &
    front()
    {
        panic_if(q_.empty(), "front() on empty queue");
        return q_.front();
    }

    /** Remove and return the front entry; queue must be non-empty. */
    T
    pop()
    {
        panic_if(q_.empty(), "pop() on empty queue");
        T v = q_.front();
        q_.pop_front();
        ++pops_;
        return v;
    }

    void
    clear()
    {
        q_.clear();
    }

    /** Iteration support (the FSQ searches its entries associatively). */
    auto begin() { return q_.begin(); }
    auto end() { return q_.end(); }
    auto begin() const { return q_.begin(); }
    auto end() const { return q_.end(); }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t rejects() const { return rejects_; }
    const Log2Histogram &occupancy() const { return occupancy_; }

    void
    resetStats()
    {
        pushes_ = pops_ = rejects_ = 0;
        occupancy_.reset();
    }

  private:
    std::size_t capacity_;
    std::deque<T> q_;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t rejects_ = 0;
    Log2Histogram occupancy_;
};

} // namespace fade

#endif // FADE_SIM_QUEUE_HH
