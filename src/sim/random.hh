/**
 * @file
 * Deterministic pseudo-random number generation (PCG32). Every stochastic
 * decision in the simulator draws from an explicitly seeded Rng so that
 * experiments are exactly reproducible.
 */

#ifndef FADE_SIM_RANDOM_HH
#define FADE_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace fade
{

/**
 * PCG32 generator (O'Neill). Small state, good statistical quality, and
 * cheap enough for per-instruction decisions in the workload generator.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (seq << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Uniform in [0, n). Returns 0 when n == 0. */
    std::uint32_t
    range(std::uint32_t n)
    {
        if (n == 0)
            return 0;
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(next()) * n) >> 32);
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric number of trials until success with parameter @p p,
     * clamped to at least 1 (and at most @p cap when cap > 0).
     */
    unsigned
    geometric(double p, unsigned cap = 0)
    {
        if (p >= 1.0)
            return 1;
        if (p <= 0.0)
            return cap ? cap : 1;
        double u = uniform();
        double v = std::log1p(-u) / std::log1p(-p);
        auto n = static_cast<unsigned>(v) + 1;
        if (cap && n > cap)
            n = cap;
        return n;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Precompiled Bernoulli trial: the threshold of Rng::chance(p) hoisted
 * out of the per-draw path, so a draw is one PCG step and one integer
 * compare instead of an int->double conversion, multiply, and FP
 * compare per call.
 *
 * Exactness: uniform() returns next() * 2^-32, which is an exact
 * double (a 32-bit integer scaled by a power of two). Hence
 * uniform() < p  <=>  next() < p * 2^32  <=>  next() < ceil(p * 2^32)
 * for the integer next(), and draw() consumes exactly one next() —
 * the same draw count and the same verdict as chance(p), bit for bit.
 */
class Bernoulli
{
  public:
    Bernoulli() = default;

    explicit Bernoulli(double p)
    {
        if (p <= 0.0)
            thr_ = 0;
        else if (p >= 1.0)
            thr_ = std::uint64_t(1) << 32;
        else
            thr_ = std::uint64_t(std::ceil(p * 4294967296.0));
    }

    bool draw(Rng &rng) const { return rng.next() < thr_; }

  private:
    std::uint64_t thr_ = 0;
};

} // namespace fade

#endif // FADE_SIM_RANDOM_HH
