/**
 * @file
 * Growable ring-buffer deque. The trace generator stages pending
 * instructions (allocator bookkeeping, init stores, spills) through a
 * FIFO that sees one push and one pop for a large fraction of all
 * generated instructions, and every core keeps its reorder buffer in
 * one; std::deque pays block-map indirection and block churn on exactly
 * those paths. RingDeque keeps the live window in one contiguous
 * power-of-two buffer: push/pop are an index bump against a cached
 * mask, and the buffer doubles (rarely) when full. Mid-insertion is
 * supported for the generator's cold splice paths (startup mallocs,
 * bug injection).
 */

#ifndef FADE_SIM_RING_HH
#define FADE_SIM_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace fade
{

/** FIFO ring with amortized O(1) push_back/pop_front. */
template <typename T>
class RingDeque
{
  public:
    explicit RingDeque(std::size_t initialSlots = 64)
        : buf_(roundUp(initialSlots)), mask_(buf_.size() - 1)
    {}

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &
    front()
    {
        panic_if(empty(), "front() on empty RingDeque");
        return buf_[head_];
    }

    const T &
    front() const
    {
        panic_if(empty(), "front() on empty RingDeque");
        return buf_[head_];
    }

    void
    pop_front()
    {
        panic_if(empty(), "pop_front() on empty RingDeque");
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void
    push_back(const T &v)
    {
        if (count_ > mask_)
            grow();
        buf_[(head_ + count_) & mask_] = v;
        ++count_;
    }

    void
    push_back(T &&v)
    {
        if (count_ > mask_)
            grow();
        buf_[(head_ + count_) & mask_] = std::move(v);
        ++count_;
    }

    /** Claim the next back slot and return it for in-place filling —
     *  spares the temporary of push_back({...}) on hot paths. */
    T &
    pushSlot()
    {
        if (count_ > mask_)
            grow();
        T &slot = buf_[(head_ + count_) & mask_];
        ++count_;
        return slot;
    }

    /** Element @p i positions behind the front (0 = front). */
    T &
    at(std::size_t i)
    {
        panic_if(i >= count_, "RingDeque index out of range");
        return buf_[(head_ + i) & mask_];
    }

    /**
     * Insert @p v so it becomes element @p idx (0 = new front). Cold
     * path — O(n) shift — used only for stream splices (startup
     * allocations, injected bugs).
     */
    void
    insert(std::size_t idx, const T &v)
    {
        panic_if(idx > count_, "RingDeque insert out of range");
        push_back(v); // reserves space; value overwritten below
        for (std::size_t i = count_ - 1; i > idx; --i)
            at(i) = std::move(at(i - 1));
        at(idx) = v;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    static std::size_t
    roundUp(std::size_t n)
    {
        std::size_t p = 16;
        while (p < n)
            p *= 2;
        return p;
    }

    void
    grow()
    {
        std::vector<T> next(buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(buf_[(head_ + i) & mask_]);
        buf_ = std::move(next);
        mask_ = buf_.size() - 1;
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t mask_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace fade

#endif // FADE_SIM_RING_HH
