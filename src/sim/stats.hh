/**
 * @file
 * Lightweight statistics containers: running scalar statistics, log2
 * histograms (used for queue-occupancy CDFs, Fig. 3 of the paper), and
 * linear histograms for burst/distance distributions (Fig. 4).
 *
 * Thread-safety contract: none of these types lock. The multi-core
 * path keeps every container shard-private while worker threads run
 * and folds them together only at slice barriers or end of run, on a
 * single thread, via the merge() members (merge-at-barrier rollups).
 * Each merge() is order-independent across operands, so rolling up in
 * fixed shard order yields bit-identical aggregates no matter how the
 * slices were executed.
 */

#ifndef FADE_SIM_STATS_HH
#define FADE_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fade
{

/** Mean / min / max / stddev over a stream of samples. */
class RunningStat
{
  public:
    void
    sample(double v)
    {
        ++n_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        double m = mean();
        double var = sumSq_ / n_ - m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /** Fold another stream's moments into this one (shard rollups /
     *  merge-at-barrier; equivalent to having sampled both streams). */
    void
    merge(const RunningStat &o)
    {
        n_ += o.n_;
        sum_ += o.sum_;
        sumSq_ += o.sumSq_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    void
    reset()
    {
        n_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram with power-of-two bucket boundaries: bucket k counts samples
 * in [2^(k-1), 2^k), with bucket 0 counting exact zeros and bucket 1
 * counting exact ones. Mirrors the paper's Fig. 3/4 log-scale axes.
 */
class Log2Histogram
{
  public:
    void
    sample(std::uint64_t v, std::uint64_t weight = 1)
    {
        unsigned b = bucketOf(v);
        if (b >= counts_.size())
            counts_.resize(b + 1, 0);
        counts_[b] += weight;
        total_ += weight;
        max_ = std::max(max_, v);
    }

    /** Bucket index for a value: 0 for 0, else floor(log2(v)) + 1
     *  (single count-leading-zeros; same buckets as the shift loop it
     *  replaced — this sits on every queue push). */
    static unsigned
    bucketOf(std::uint64_t v)
    {
        if (v == 0)
            return 0;
        return 64 - unsigned(__builtin_clzll(v));
    }

    /** Upper bound (inclusive) of bucket b: 0, 1, 2, 4, 8, ... */
    static std::uint64_t
    bucketUpper(unsigned b)
    {
        return b == 0 ? 0 : (std::uint64_t(1) << (b - 1));
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t maxValue() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Fold another histogram's buckets into this one (shard rollups). */
    void
    merge(const Log2Histogram &o)
    {
        if (o.counts_.size() > counts_.size())
            counts_.resize(o.counts_.size(), 0);
        for (std::size_t b = 0; b < o.counts_.size(); ++b)
            counts_[b] += o.counts_[b];
        total_ += o.total_;
        max_ = std::max(max_, o.max_);
    }

    /** Fraction of samples with value <= @p v. */
    double
    cdfAt(std::uint64_t v) const
    {
        if (total_ == 0)
            return 1.0;
        std::uint64_t acc = 0;
        for (unsigned b = 0; b < counts_.size(); ++b) {
            if (bucketUpper(b) > v)
                break;
            acc += counts_[b];
        }
        return static_cast<double>(acc) / total_;
    }

    /** Smallest power-of-two bucket bound covering fraction @p p. */
    std::uint64_t
    percentile(double p) const
    {
        if (total_ == 0)
            return 0;
        std::uint64_t need =
            static_cast<std::uint64_t>(std::ceil(p * total_));
        std::uint64_t acc = 0;
        for (unsigned b = 0; b < counts_.size(); ++b) {
            acc += counts_[b];
            if (acc >= need)
                return bucketUpper(b);
        }
        return bucketUpper(counts_.empty() ? 0
                                           : unsigned(counts_.size() - 1));
    }

    void
    reset()
    {
        counts_.clear();
        total_ = 0;
        max_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t max_ = 0;
};

/** Fixed-width linear histogram with an overflow bucket. */
class LinearHistogram
{
  public:
    explicit LinearHistogram(std::uint64_t bucketWidth = 1,
                             unsigned numBuckets = 64)
        : width_(bucketWidth ? bucketWidth : 1),
          counts_(numBuckets + 1, 0)
    {}

    void
    sample(std::uint64_t v, std::uint64_t weight = 1)
    {
        std::uint64_t b = v / width_;
        if (b >= counts_.size() - 1)
            b = counts_.size() - 1;
        counts_[b] += weight;
        total_ += weight;
        stat_.sample(static_cast<double>(v));
    }

    std::uint64_t total() const { return total_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    const RunningStat &stat() const { return stat_; }

    /**
     * Fraction of samples falling in buckets wholly at or below @p v
     * (the overflow bucket is never included).
     */
    double
    cdfAt(std::uint64_t v) const
    {
        if (total_ == 0)
            return 1.0;
        std::uint64_t acc = 0;
        for (std::size_t b = 0; b + 1 < counts_.size(); ++b) {
            if ((b + 1) * width_ - 1 <= v)
                acc += counts_[b];
        }
        return static_cast<double>(acc) / total_;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        stat_.reset();
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    RunningStat stat_;
};

/** Geometric mean over a set of ratios (the paper reports gmeans). */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / xs.size());
}

} // namespace fade

#endif // FADE_SIM_STATS_HH
