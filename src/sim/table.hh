/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-vs-measured rows for every reproduced figure and table.
 */

#ifndef FADE_SIM_TABLE_HH
#define FADE_SIM_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace fade
{

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cols)
    {
        header_ = std::move(cols);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cols)
    {
        rows_.push_back(std::move(cols));
    }

    /** Render with two-space gutters and a rule under the header. */
    std::string
    str() const
    {
        std::vector<std::size_t> w;
        auto grow = [&](const std::vector<std::string> &r) {
            if (r.size() > w.size())
                w.resize(r.size(), 0);
            for (std::size_t i = 0; i < r.size(); ++i)
                w[i] = std::max(w[i], r[i].size());
        };
        grow(header_);
        for (const auto &r : rows_)
            grow(r);

        std::string out;
        auto emit = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < w.size(); ++i) {
                std::string cell = i < r.size() ? r[i] : "";
                out += cell;
                if (i + 1 < w.size())
                    out += std::string(w[i] - cell.size() + 2, ' ');
            }
            out += '\n';
        };
        emit(header_);
        std::size_t rule = 0;
        for (std::size_t i = 0; i < w.size(); ++i)
            rule += w[i] + (i + 1 < w.size() ? 2 : 0);
        out += std::string(rule, '-') + '\n';
        for (const auto &r : rows_)
            emit(r);
        return out;
    }

    void
    print() const
    {
        std::fputs(str().c_str(), stdout);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *spec, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

/** Format a ratio like "1.42x". */
inline std::string
fmtX(double v)
{
    return fmt("%.2f", v) + "x";
}

/** Format a fraction as a percentage like "98.5%". */
inline std::string
fmtPct(double v)
{
    return fmt("%.1f", v * 100.0) + "%";
}

} // namespace fade

#endif // FADE_SIM_TABLE_HH
