/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 */

#ifndef FADE_SIM_TYPES_HH
#define FADE_SIM_TYPES_HH

#include <cstdint>

namespace fade
{

/** A point in simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** An address in the application's (virtual) address space. */
using Addr = std::uint64_t;

/** Architectural register index (SPARC-like: 32 integer registers). */
using RegIndex = std::uint8_t;

/** Hardware thread / software thread identifier. */
using ThreadId = std::uint8_t;

/** Number of architectural integer registers modelled. */
constexpr unsigned numArchRegs = 32;

/** Application word size in bytes (the paper uses 32-bit binaries). */
constexpr Addr wordSize = 4;

/** Cache block size used throughout the hierarchy (Table 1). */
constexpr Addr blockSize = 64;

/** Page size used by the metadata TLB translation. */
constexpr Addr pageSize = 4096;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle invalidCycle = ~Cycle(0);

/** Round an address down to its containing cache block. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(blockSize - 1);
}

/** Round an address down to its containing page. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(pageSize - 1);
}

} // namespace fade

#endif // FADE_SIM_TYPES_HH
