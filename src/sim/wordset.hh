/**
 * @file
 * Paged word-membership bitmap. The trace generator mirrors which
 * application words currently hold pointer / tainted values; the access
 * mix is per-instruction membership tests and single-word updates,
 * punctuated by bulk range erases on every free and function return.
 * A hash set — even a flat one (sim/flatset.hh) — pays per-word probes
 * on exactly those range erases, and they dominated the generator
 * profile. WordSet stores one bit per application word in 4KB pages
 * (each covering 128KB of address space) behind a flat page directory,
 * so membership is a page probe plus a bit test, and a range erase
 * masks partial edge words and zero-fills whole-page interiors.
 *
 * Determinism contract: order-independent operations only (the visit
 * order of forEach is address-ordered within a page but page order is
 * unspecified; tests must not depend on it).
 */

#ifndef FADE_SIM_WORDSET_HH
#define FADE_SIM_WORDSET_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>

#include "sim/flatset.hh"
#include "sim/types.hh"

namespace fade
{

/** Set of word-aligned application addresses, one bit per word. */
class WordSet
{
  public:
    bool
    contains(Addr a) const
    {
        const Page *p = pageOf(a);
        if (!p)
            return false;
        std::uint64_t bit = bitIndex(a);
        return ((*p)[bit >> 6] >> (bit & 63)) & 1;
    }

    std::size_t count(Addr a) const { return contains(a) ? 1 : 0; }

    void
    insert(Addr a)
    {
        Page &p = page(a);
        std::uint64_t bit = bitIndex(a);
        std::uint64_t &w = p[bit >> 6];
        std::uint64_t m = std::uint64_t(1) << (bit & 63);
        size_ += !(w & m);
        w |= m;
    }

    void
    erase(Addr a)
    {
        Page *p = pageOf(a);
        if (!p)
            return;
        std::uint64_t bit = bitIndex(a);
        std::uint64_t &w = (*p)[bit >> 6];
        std::uint64_t m = std::uint64_t(1) << (bit & 63);
        size_ -= (w & m) != 0;
        w &= ~m;
    }

    /**
     * Remove every word in the byte range [@p lo, @p hi): mask the
     * partial 64-word edge groups and zero whole groups in between.
     * Pages the range never touched stay unmapped (no allocation).
     */
    void
    eraseRange(Addr lo, Addr hi)
    {
        if (hi <= lo || size_ == 0)
            return;
        std::uint64_t first = (lo / wordSize); // inclusive word index
        std::uint64_t last = (hi - 1) / wordSize; // inclusive
        while (first <= last) {
            Addr addr = first * wordSize;
            Page *p = pageOf(addr);
            // Word index one past this page's coverage.
            std::uint64_t pageEnd =
                (first / wordsPerPage + 1) * wordsPerPage;
            std::uint64_t stop = last + 1 < pageEnd ? last + 1 : pageEnd;
            if (p)
                clearSpan(*p, first % wordsPerPage,
                          stop - 1 - (first / wordsPerPage) *
                                         wordsPerPage);
            first = stop;
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        pages_.forEach([](Addr, PagePtr &p) {
            if (p)
                p->fill(0);
        });
        size_ = 0;
    }

    /** Visit every member address (tests / order-invariant checks). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        pages_.forEach([&](Addr base, const PagePtr &p) {
            if (!p)
                return;
            for (std::size_t g = 0; g < p->size(); ++g) {
                std::uint64_t w = (*p)[g];
                while (w) {
                    unsigned b = unsigned(__builtin_ctzll(w));
                    w &= w - 1;
                    fn(base + (g * 64 + b) * wordSize);
                }
            }
        });
    }

  private:
    /** 4KB of bits = 32768 words = 128KB of application bytes. */
    static constexpr std::uint64_t wordsPerPage = pageSize * 8;
    static constexpr Addr spanBytes = wordsPerPage * wordSize;

    using Page = std::array<std::uint64_t, pageSize / 8>;
    using PagePtr = std::unique_ptr<Page>;

    static Addr pageBase(Addr a) { return a & ~(spanBytes - 1); }
    static std::uint64_t
    bitIndex(Addr a)
    {
        return (a / wordSize) % wordsPerPage;
    }

    const Page *
    pageOf(Addr a) const
    {
        Addr base = pageBase(a);
        if (base == lastBase_ && lastPage_)
            return lastPage_;
        const PagePtr *slot = pages_.find(base);
        if (!slot)
            return nullptr;
        lastBase_ = base;
        lastPage_ = slot->get();
        return lastPage_;
    }

    Page *
    pageOf(Addr a)
    {
        return const_cast<Page *>(
            static_cast<const WordSet *>(this)->pageOf(a));
    }

    Page &
    page(Addr a)
    {
        Addr base = pageBase(a);
        // The memo never aliases anything actually const: all pages are
        // owned mutably by pages_.
        if (base == lastBase_ && lastPage_)
            return *const_cast<Page *>(lastPage_);
        PagePtr &slot = pages_[base];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        lastBase_ = base;
        lastPage_ = slot.get();
        return *slot;
    }

    /** Clear bits [firstWord, lastWord] (page-local word indices),
     *  keeping size_ exact via popcounts of what is dropped. */
    void
    clearSpan(Page &p, std::uint64_t firstWord, std::uint64_t lastWord)
    {
        std::uint64_t g0 = firstWord >> 6;
        std::uint64_t g1 = lastWord >> 6;
        std::uint64_t headMask = ~std::uint64_t(0) << (firstWord & 63);
        std::uint64_t tailMask =
            ~std::uint64_t(0) >> (63 - (lastWord & 63));
        if (g0 == g1) {
            std::uint64_t m = headMask & tailMask;
            size_ -= std::size_t(__builtin_popcountll(p[g0] & m));
            p[g0] &= ~m;
            return;
        }
        size_ -= std::size_t(__builtin_popcountll(p[g0] & headMask));
        p[g0] &= ~headMask;
        for (std::uint64_t g = g0 + 1; g < g1; ++g) {
            size_ -= std::size_t(__builtin_popcountll(p[g]));
            p[g] = 0;
        }
        size_ -= std::size_t(__builtin_popcountll(p[g1] & tailMask));
        p[g1] &= ~tailMask;
    }

    AddrMap<PagePtr> pages_;
    std::size_t size_ = 0;
    /** Most-recently-touched page memo (access accelerator only). */
    mutable Addr lastBase_ = ~Addr(0);
    mutable const Page *lastPage_ = nullptr;
};

} // namespace fade

#endif // FADE_SIM_WORDSET_HH
