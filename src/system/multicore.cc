#include "system/multicore.hh"

#include "monitor/factory.hh"
#include "monitor/interleave.hh"
#include "sim/logging.hh"

namespace fade
{

BenchProfile
shardWorkload(const std::vector<BenchProfile> &workloads, unsigned idx)
{
    fatal_if(workloads.empty(), "multi-core system needs >= 1 workload");
    unsigned pos = idx % unsigned(workloads.size());
    BenchProfile p = workloads[pos];
    // Threads of one multi-threaded process share the plan seed: every
    // shard must rebuild the identical SyncPlan (trace/threads.hh), so
    // process profiles are exempt from repeat decorrelation — the
    // per-thread filler RNGs already decorrelate the shards' private
    // streams.
    if (p.procThreads > 0)
        return p;
    // Repeated profiles decorrelate via a per-shard seed offset —
    // whether the repeat comes from round-robin wraparound or from a
    // duplicate entry in the workload list itself. The first
    // occurrence keeps its profile verbatim, so the N=1 system
    // reproduces the single-core run exactly.
    bool repeat = idx >= workloads.size();
    for (unsigned j = 0; !repeat && j < pos; ++j)
        repeat = workloads[j].name == p.name &&
                 workloads[j].seed == p.seed;
    if (repeat) {
        // Multiplicative mix, not a linear offset: two list entries
        // with nearby seeds must not land on the same value when
        // bumped by nearby shard indices.
        p.seed += std::uint64_t(idx) * 0x9E3779B97F4A7C15ULL;
        p.name += "#s" + std::to_string(idx);
    }
    return p;
}

namespace
{

DirectoryParams
directoryParams(const MultiCoreConfig &cfg)
{
    DirectoryParams p;
    p.clusters = cfg.topology.clusters;
    p.remoteLatency = cfg.topology.remoteLatency;
    p.slice = l2Params();
    p.memLatency = dramLatency;
    return p;
}

} // namespace

MultiCoreSystem::MultiCoreSystem(const MultiCoreConfig &cfg)
    : cfg_(cfg), dir_(directoryParams(cfg))
{
    // Resolve the cluster shape against numShards (validates that the
    // shards split evenly across clusters) and make it authoritative.
    cfg_.numShards = cfg_.topology.resolveShards(cfg_.numShards);
    fatal_if(cfg_.numShards > 256, "shard tag is 8 bits (max 256 shards)");
    unsigned perCluster = cfg_.numShards / cfg_.topology.clusters;

    if (!cfg_.traceIn.empty()) {
        reader_ = std::make_unique<TraceReader>(cfg_.traceIn);
        fatal_if(reader_->numStreams() != cfg_.numShards,
                 "trace '", cfg_.traceIn, "' holds ",
                 reader_->numStreams(), " streams but this system has ",
                 cfg_.numShards, " shards");
    }
    if (!cfg_.traceOut.empty()) {
        writer_ = std::make_unique<TraceWriter>(cfg_.traceOut);
        writer_->setConfigFingerprint(traceConfigFingerprint(cfg_));
    }

    // Multi-threaded process mode: every shard hosts threads of ONE
    // process (thread t on shard t % numShards), so a process profile
    // cannot share the system with unrelated workloads, and the thread
    // count must cover (and divide across) the shards.
    const unsigned procThreads =
        cfg_.workloads.empty() ? 0 : cfg_.workloads.front().procThreads;
    for (const BenchProfile &p : cfg_.workloads)
        fatal_if((p.procThreads > 0) != (procThreads > 0) ||
                     (p.procThreads > 0 &&
                      (p.procThreads != procThreads ||
                       p.name != cfg_.workloads.front().name ||
                       p.seed != cfg_.workloads.front().seed)),
                 "a multi-threaded process profile cannot mix with "
                 "other workloads");
    if (procThreads > 0) {
        fatal_if(cfg_.numShards > procThreads, "more shards (",
                 cfg_.numShards, ") than process threads (", procThreads,
                 ")");
        procShared_ = std::make_unique<ProcessShared>(procThreads);
    }

    for (unsigned i = 0; i < cfg_.numShards; ++i) {
        BenchProfile prof = shardWorkload(cfg_.workloads, i);
        if (procThreads > 0) {
            prof.procShardId = i;
            prof.procShards = cfg_.numShards;
        }
        workloadNames_.push_back(prof.name);

        monitors_.push_back(cfg_.monitor.empty()
                                ? nullptr
                                : makeMonitor(cfg_.monitor));
        if (procShared_ && monitors_.back())
            monitors_.back()->bindProcess(procShared_.get(), i,
                                          cfg_.numShards);

        SystemConfig scfg = cfg_.shard;
        scfg.shardId = std::uint8_t(i);
        scfg.engine = cfg_.engine;
        scfg.fadesPerShard = cfg_.topology.fadesPerShard;
        scfg.traceIn = reader_.get();
        scfg.traceOut = writer_.get();
        unsigned cluster = cfg_.topology.clusterOf(i, perCluster);
        shardClusters_.push_back(cluster);
        // The shard's nominal L2 is its own cluster's slice; all
        // L2-bound traffic actually routes through the shard's
        // DirectoryPort (installed by its ShardRunner) so the home
        // hash and remote penalty apply from the first access.
        shards_.push_back(std::make_unique<MonitoringSystem>(
            scfg, prof, monitors_.back().get(), &dir_.slice(cluster)));
    }

    std::vector<MonitoringSystem *> raw;
    for (auto &s : shards_)
        raw.push_back(s.get());
    sched_ = std::make_unique<ShardScheduler>(cfg_.scheduler,
                                              std::move(raw), dir_,
                                              shardClusters_);
    // Route every shard through its directory port from the start
    // (construction leaves the L1s pointed straight at the cluster
    // slice; the port adds home hashing + the remote penalty).
    for (unsigned i = 0; i < cfg_.numShards; ++i)
        sched_->runner(i).detach();
}

MultiCoreSystem::~MultiCoreSystem() = default;

namespace
{

// The fingerprint below hand-enumerates every FadeStats / RunResult
// field; a field added without extending appendFade/appendRun would
// silently escape the scheduler bit-equality checks. These asserts
// trip on the CI platform when either struct grows: extend the
// matching append helper (and FadeStats::merge), then update the size.
#if defined(__linux__) && defined(__x86_64__)
static_assert(sizeof(FadeStats) == 368,
              "FadeStats changed: update appendFade + this size");
static_assert(sizeof(RunResult) == 72,
              "RunResult changed: update appendRun + this size");
#endif

void
appendHist(std::vector<std::uint64_t> &fp, const Log2Histogram &h)
{
    fp.push_back(h.total());
    fp.push_back(h.maxValue());
    for (std::uint64_t b : h.buckets())
        fp.push_back(b);
}

void
appendFade(std::vector<std::uint64_t> &fp, const FadeStats &f)
{
    fp.insert(fp.end(),
              {f.instEvents, f.filtered, f.filteredCC, f.filteredRU,
               f.partialPass, f.partialFail, f.unfiltered, f.stackEvents,
               f.highLevelEvents, f.shots, f.comparisons,
               f.crossShardEvents, f.stallUeqFull, f.stallBlocking,
               f.stallDrain, f.stallMdRead, f.stallFsqFull, f.suuCycles,
               f.busyCycles, f.idleCycles});
    appendHist(fp, f.unfDistance);
    appendHist(fp, f.unfBurst);
    for (std::uint64_t c : f.filteredById)
        fp.push_back(c);
    for (std::uint64_t c : f.softwareById)
        fp.push_back(c);
}

void
appendRun(std::vector<std::uint64_t> &fp, const RunResult &r)
{
    fp.insert(fp.end(),
              {r.appInstructions, r.cycles, r.monitoredEvents,
               r.appStallCycles, r.monIdleCycles, r.handlerInstructions,
               r.handlersRun});
}

} // namespace

std::vector<std::uint64_t>
resultFingerprint(MultiCoreSystem &sys, const MultiCoreResult &r)
{
    std::vector<std::uint64_t> fp;
    fp.insert(fp.end(), {r.cycles, r.totalInstructions, r.totalEvents});
    appendFade(fp, r.fade);
    appendHist(fp, r.eqOccupancy);
    for (const ShardResult &s : r.shards) {
        appendRun(fp, s.run);
        appendFade(fp, s.fade);
        appendHist(fp, s.eqOccupancy);
        fp.push_back(s.bugReports);
    }
    for (unsigned i = 0; i < sys.numShards(); ++i)
        fp.push_back(sys.monitor(i) ? sys.monitor(i)->reports().size()
                                    : 0);
    // Per-slice LLC counters; with one cluster this is exactly the
    // {hits, misses} pair the flat fingerprint always ended with, so
    // flat fingerprints stay comparable across the topology refactor.
    for (unsigned c = 0; c < sys.numClusters(); ++c) {
        fp.push_back(sys.directory().slice(c).hits());
        fp.push_back(sys.directory().slice(c).misses());
    }
    // Clustered topologies additionally pin the routing decisions.
    if (sys.numClusters() > 1) {
        for (const ShardResult &s : r.shards) {
            fp.push_back(s.l2Local);
            fp.push_back(s.l2Remote);
        }
    }
    return fp;
}

std::vector<std::uint64_t>
MultiCoreSystem::functionalFingerprint()
{
    for (auto &s : shards_)
        s->drain();
    std::vector<std::uint64_t> fp;
    for (auto &s : shards_) {
        std::vector<std::uint64_t> sf = s->functionalFingerprint();
        fp.insert(fp.end(), sf.begin(), sf.end());
    }
    return fp;
}

void
MultiCoreSystem::beginWarmup(std::uint64_t instructions)
{
    panic_if(phase_ != Phase::Idle, "beginWarmup() with a phase active");
    capturedWarmup_ += instructions;
    sched_->beginRun(instructions, "warmup");
    phase_ = Phase::Warmup;
}

bool
MultiCoreSystem::advanceRun(std::uint64_t maxEpochs)
{
    panic_if(phase_ == Phase::Idle, "advanceRun() with no phase armed");
    return sched_->stepEpochs(maxEpochs);
}

void
MultiCoreSystem::finishWarmup()
{
    panic_if(phase_ != Phase::Warmup || sched_->runActive(),
             "finishWarmup() before the warmup target was reached");
    for (auto &s : shards_)
        s->drain();
    for (auto &s : shards_)
        s->resetStats();
    dir_.resetStats();
    phase_ = Phase::Idle;
}

std::uint64_t
MultiCoreSystem::retiredTotal() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->retired();
    return n;
}

std::uint64_t
MultiCoreSystem::producedTotal() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->produced();
    return n;
}

void
MultiCoreSystem::warmup(std::uint64_t instructions)
{
    beginWarmup(instructions);
    while (!advanceRun(~std::uint64_t(0))) {
    }
    finishWarmup();
}

void
MultiCoreSystem::beginMeasure(std::uint64_t instructions)
{
    panic_if(phase_ != Phase::Idle, "beginMeasure() with a phase active");
    capturedRun_ += instructions;
    reportsBefore_.assign(shards_.size(), 0);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shards_[i]->beginSlice();
        sched_->runner(unsigned(i)).resetRouteStats();
        if (monitors_[i])
            reportsBefore_[i] = monitors_[i]->reports().size();
    }
    dir_.resetStats();
    sched_->beginRun(instructions, "run");
    phase_ = Phase::Measure;
}

MultiCoreResult
MultiCoreSystem::finishMeasure()
{
    panic_if(phase_ != Phase::Measure || sched_->runActive(),
             "finishMeasure() before the measure target was reached");
    MultiCoreResult agg;
    double ipcSum = 0.0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardResult sr;
        sr.shard = unsigned(i);
        sr.workload = workloadNames_[i];
        sr.run = shards_[i]->endSlice();
        sr.fade = shards_[i]->fadeStats();
        sr.filteringRatio = sr.fade.filteringRatio();
        sr.eqOccupancy = shards_[i]->eventQueue().occupancy();
        if (monitors_[i])
            sr.bugReports =
                monitors_[i]->reports().size() - reportsBefore_[i];
        sr.cluster = shardClusters_[i];
        const DirectoryPortStats &route =
            sched_->runner(unsigned(i)).routeStats();
        sr.l2Local = route.localAccesses;
        sr.l2Remote = route.remoteAccesses;

        agg.cycles = std::max(agg.cycles, sr.run.cycles);
        agg.totalInstructions += sr.run.appInstructions;
        agg.totalEvents += sr.run.monitoredEvents;
        ipcSum += sr.run.appIpc;
        agg.fade.merge(sr.fade);
        agg.eqOccupancy.merge(sr.eqOccupancy);
        agg.l2LocalAccesses += sr.l2Local;
        agg.l2RemoteAccesses += sr.l2Remote;
        agg.shards.push_back(std::move(sr));
    }
    agg.aggregateIpc =
        agg.cycles ? double(agg.totalInstructions) / double(agg.cycles)
                   : 0.0;
    agg.meanShardIpc =
        shards_.empty() ? 0.0 : ipcSum / double(shards_.size());
    agg.filteringRatio = agg.fade.filteringRatio();
    phase_ = Phase::Idle;
    return agg;
}

MultiCoreResult
MultiCoreSystem::run(std::uint64_t instructions)
{
    beginMeasure(instructions);
    while (!advanceRun(~std::uint64_t(0))) {
    }
    return finishMeasure();
}

void
MultiCoreSystem::finishTrace(bool hasResult, std::uint64_t resultHash)
{
    panic_if(!writer_, "closeTrace() without an active capture");
    TraceManifest m;
    m.present = true;
    m.monitor = cfg_.monitor;
    m.warmupInstructions = capturedWarmup_;
    m.measureInstructions = capturedRun_;
    m.numShards = cfg_.numShards;
    m.clusters = cfg_.topology.clusters;
    m.shardsPerCluster = cfg_.numShards / cfg_.topology.clusters;
    m.fadesPerShard = cfg_.topology.fadesPerShard;
    m.remoteLatency = cfg_.topology.remoteLatency;
    m.sliceTicks = cfg_.scheduler.sliceTicks;
    m.eqCapacity = cfg_.shard.eqCapacity;
    m.ueqCapacity = cfg_.shard.ueqCapacity;
    m.coreName = cfg_.shard.core.name;
    m.coreWidth = cfg_.shard.core.width;
    m.robSize = cfg_.shard.core.robSize;
    m.inOrder = cfg_.shard.core.inOrder;
    m.mispredictPenalty = cfg_.shard.core.mispredictPenalty;
    m.accelerated = cfg_.shard.accelerated;
    m.twoCore = cfg_.shard.twoCore;
    m.perfectConsumer = cfg_.shard.perfectConsumer;
    m.hasFingerprint = hasResult;
    m.fingerprintHash = resultHash;
    writer_->setManifest(m);
    writer_->close();
}

void
MultiCoreSystem::closeTrace()
{
    finishTrace(false, 0);
}

void
MultiCoreSystem::closeTrace(std::uint64_t resultHash)
{
    finishTrace(true, resultHash);
}

std::uint64_t
traceConfigFingerprint(const MultiCoreConfig &cfg)
{
    std::vector<std::uint64_t> v;
    auto str = [&v](const std::string &s) {
        v.push_back(s.size());
        for (char c : s)
            v.push_back(std::uint8_t(c));
    };
    v.push_back(cfg.numShards);
    v.push_back(cfg.topology.clusters);
    v.push_back(cfg.topology.shardsPerCluster);
    v.push_back(cfg.topology.fadesPerShard);
    v.push_back(cfg.topology.remoteLatency);
    v.push_back(cfg.scheduler.sliceTicks);
    v.push_back(cfg.shard.eqCapacity);
    v.push_back(cfg.shard.ueqCapacity);
    str(cfg.shard.core.name);
    v.push_back(cfg.shard.core.width);
    v.push_back(cfg.shard.core.robSize);
    v.push_back(cfg.shard.core.inOrder);
    v.push_back(cfg.shard.core.mispredictPenalty);
    v.push_back(cfg.shard.accelerated);
    v.push_back(cfg.shard.twoCore);
    v.push_back(cfg.shard.perfectConsumer);
    str(cfg.monitor);
    for (const BenchProfile &p : cfg.workloads) {
        str(p.name);
        v.push_back(p.seed);
        v.push_back(p.numThreads);
        v.push_back(p.procThreads);
    }
    return fingerprintHash(v);
}

MultiCoreConfig
replayConfig(const std::string &path)
{
    TraceReader r(path);
    const TraceManifest &m = r.manifest();
    if (!m.present)
        throw TraceError("'" + path + "' carries no replay manifest "
                         "(capture was not finished with closeTrace)");

    MultiCoreConfig cfg;
    cfg.traceIn = path;
    cfg.monitor = m.monitor;
    cfg.numShards = unsigned(m.numShards);
    cfg.topology.clusters = unsigned(m.clusters);
    cfg.topology.shardsPerCluster = unsigned(m.shardsPerCluster);
    cfg.topology.fadesPerShard = unsigned(m.fadesPerShard);
    cfg.topology.remoteLatency = unsigned(m.remoteLatency);
    cfg.scheduler.sliceTicks = m.sliceTicks;
    cfg.shard.eqCapacity = std::size_t(m.eqCapacity);
    cfg.shard.ueqCapacity = std::size_t(m.ueqCapacity);
    cfg.shard.core.name = m.coreName;
    cfg.shard.core.width = unsigned(m.coreWidth);
    cfg.shard.core.robSize = unsigned(m.robSize);
    cfg.shard.core.inOrder = m.inOrder;
    cfg.shard.core.mispredictPenalty = unsigned(m.mispredictPenalty);
    cfg.shard.accelerated = m.accelerated;
    cfg.shard.twoCore = m.twoCore;
    cfg.shard.perfectConsumer = m.perfectConsumer;
    // One workload per stream, exactly as captured. Repeated profiles
    // were renamed/reseeded at capture time (shardWorkload), so the
    // reconstructed list round-trips through shardWorkload verbatim.
    for (unsigned s = 0; s < r.numStreams(); ++s) {
        const TraceStreamMeta &sm = r.stream(s);
        BenchProfile p;
        p.name = sm.profile;
        p.seed = sm.seed;
        p.numThreads = sm.numThreads;
        p.procThreads = sm.procThreads;
        cfg.workloads.push_back(std::move(p));
    }
    return cfg;
}

} // namespace fade
