#include "system/multicore.hh"

#include "monitor/factory.hh"
#include "sim/logging.hh"

namespace fade
{

BenchProfile
shardWorkload(const std::vector<BenchProfile> &workloads, unsigned idx)
{
    fatal_if(workloads.empty(), "multi-core system needs >= 1 workload");
    unsigned pos = idx % unsigned(workloads.size());
    BenchProfile p = workloads[pos];
    // Repeated profiles decorrelate via a per-shard seed offset —
    // whether the repeat comes from round-robin wraparound or from a
    // duplicate entry in the workload list itself. The first
    // occurrence keeps its profile verbatim, so the N=1 system
    // reproduces the single-core run exactly.
    bool repeat = idx >= workloads.size();
    for (unsigned j = 0; !repeat && j < pos; ++j)
        repeat = workloads[j].name == p.name &&
                 workloads[j].seed == p.seed;
    if (repeat) {
        // Multiplicative mix, not a linear offset: two list entries
        // with nearby seeds must not land on the same value when
        // bumped by nearby shard indices.
        p.seed += std::uint64_t(idx) * 0x9E3779B97F4A7C15ULL;
        p.name += "#s" + std::to_string(idx);
    }
    return p;
}

MultiCoreSystem::MultiCoreSystem(const MultiCoreConfig &cfg)
    : cfg_(cfg), l2_(l2Params(), nullptr, dramLatency)
{
    fatal_if(cfg_.numShards == 0, "numShards must be >= 1");
    fatal_if(cfg_.numShards > 256, "shard tag is 8 bits (max 256 shards)");

    for (unsigned i = 0; i < cfg_.numShards; ++i) {
        BenchProfile prof = shardWorkload(cfg_.workloads, i);
        workloadNames_.push_back(prof.name);

        monitors_.push_back(cfg_.monitor.empty()
                                ? nullptr
                                : makeMonitor(cfg_.monitor));

        SystemConfig scfg = cfg_.shard;
        scfg.shardId = std::uint8_t(i);
        shards_.push_back(std::make_unique<MonitoringSystem>(
            scfg, prof, monitors_.back().get(), &l2_));
    }
}

MultiCoreSystem::~MultiCoreSystem() = default;

void
MultiCoreSystem::runRounds(std::uint64_t instructions, const char *what)
{
    std::vector<std::uint64_t> target(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i)
        target[i] = shards_[i]->retired() + instructions;

    // Lockstep interleave: one cycle per shard per round, in fixed
    // shard order. Shards interact only through the shared L2, so this
    // order makes the whole simulation deterministic. A shard that has
    // retired its quota stops ticking while the rest complete, like
    // the per-slice termination of the single-core run() loop.
    std::uint64_t round = 0;
    std::uint64_t limit = sliceCycleLimit(instructions);
    bool anyLeft = true;
    while (anyLeft && round < limit) {
        anyLeft = false;
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            if (shards_[i]->retired() < target[i]) {
                shards_[i]->tickOnce();
                anyLeft = true;
            }
        }
        ++round;
    }
    panic_if(anyLeft, "multi-core ", what,
             " failed to make progress");
}

void
MultiCoreSystem::warmup(std::uint64_t instructions)
{
    runRounds(instructions, "warmup");
    for (auto &s : shards_)
        s->drain();
    for (auto &s : shards_)
        s->resetStats();
    l2_.resetStats();
}

MultiCoreResult
MultiCoreSystem::run(std::uint64_t instructions)
{
    std::vector<std::size_t> reportsBefore(shards_.size(), 0);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shards_[i]->beginSlice();
        if (monitors_[i])
            reportsBefore[i] = monitors_[i]->reports().size();
    }
    l2_.resetStats();

    runRounds(instructions, "run");

    MultiCoreResult agg;
    double ipcSum = 0.0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardResult sr;
        sr.shard = unsigned(i);
        sr.workload = workloadNames_[i];
        sr.run = shards_[i]->endSlice();
        if (shards_[i]->fade())
            sr.fade = shards_[i]->fade()->stats();
        sr.filteringRatio = sr.fade.filteringRatio();
        sr.eqOccupancy = shards_[i]->eventQueue().occupancy();
        if (monitors_[i])
            sr.bugReports =
                monitors_[i]->reports().size() - reportsBefore[i];

        agg.cycles = std::max(agg.cycles, sr.run.cycles);
        agg.totalInstructions += sr.run.appInstructions;
        agg.totalEvents += sr.run.monitoredEvents;
        ipcSum += sr.run.appIpc;
        agg.fade.merge(sr.fade);
        agg.eqOccupancy.merge(sr.eqOccupancy);
        agg.shards.push_back(std::move(sr));
    }
    agg.aggregateIpc =
        agg.cycles ? double(agg.totalInstructions) / double(agg.cycles)
                   : 0.0;
    agg.meanShardIpc =
        shards_.empty() ? 0.0 : ipcSum / double(shards_.size());
    agg.filteringRatio = agg.fade.filteringRatio();
    return agg;
}

} // namespace fade
