/**
 * @file
 * Sharded multi-core monitoring system. The paper evaluates FADE per
 * core and argues the design replicates across a CMP (Section 7); this
 * subsystem models that scaling point: N shards, each a full
 * {application core, event queue, FADE, MD cache, monitor} slice as in
 * Fig. 8, sharing one L2/DRAM model. Workloads are distributed to
 * shards round-robin from the benchmark profile list, shards advance in
 * lockstep (fixed shard order, so runs are exactly reproducible), and
 * statistics roll up into per-shard plus aggregate results.
 *
 * The single-core MonitoringSystem is exactly the N=1 case: shard 0
 * runs the unmodified profile, so its results are bit-identical to a
 * standalone MonitoringSystem with a private L2 of the same geometry.
 */

#ifndef FADE_SYSTEM_MULTICORE_HH
#define FADE_SYSTEM_MULTICORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "system/system.hh"

namespace fade
{

/** Configuration of the sharded system. */
struct MultiCoreConfig
{
    /** Number of {core, FADE, MD cache} shards. */
    unsigned numShards = 1;
    /** Per-shard system configuration (shardId is assigned per shard). */
    SystemConfig shard;
    /** Lifeguard instantiated per shard ("" = unmonitored baseline). */
    std::string monitor = "MemLeak";
    /**
     * Workload profiles, dealt round-robin: shard i runs
     * workloads[i % workloads.size()]. When a profile is reused by more
     * than one shard its RNG seed is offset by the shard index so the
     * copies decorrelate; shard 0 always runs its profile verbatim.
     */
    std::vector<BenchProfile> workloads;
};

/** One shard's slice of a measured run. */
struct ShardResult
{
    unsigned shard = 0;
    std::string workload;
    RunResult run;
    FadeStats fade;
    double filteringRatio = 0.0;
    /** Event-queue occupancy distribution of this shard's slice. */
    Log2Histogram eqOccupancy;
    /** Bug reports raised during the measured slice (not warmup). */
    std::uint64_t bugReports = 0;
};

/** Aggregated results of one measured multi-core run. */
struct MultiCoreResult
{
    std::vector<ShardResult> shards;

    /** Makespan: cycles until the slowest shard finished its quota. */
    std::uint64_t cycles = 0;
    std::uint64_t totalInstructions = 0;
    std::uint64_t totalEvents = 0;
    /** System throughput: total instructions / makespan. */
    double aggregateIpc = 0.0;
    /** Unweighted mean of per-shard IPCs. */
    double meanShardIpc = 0.0;
    /** Event-weighted filtering ratio across shards. */
    double filteringRatio = 0.0;
    /** FADE counters summed over all shards. */
    FadeStats fade;
    /** Event-queue occupancy merged over all shards. */
    Log2Histogram eqOccupancy;
};

/**
 * N MonitoringSystem shards behind one shared L2. Shards tick in
 * lockstep round-robin; a shard that has retired its instruction quota
 * stops ticking while the rest complete, exactly like the per-slice
 * termination of the single-core run() loop.
 */
class MultiCoreSystem
{
  public:
    explicit MultiCoreSystem(const MultiCoreConfig &cfg);
    ~MultiCoreSystem();

    /** Warm every shard with @p instructions app instructions, then
     *  drain and zero statistics. */
    void warmup(std::uint64_t instructions);

    /** Run a measured slice of @p instructions per shard. */
    MultiCoreResult run(std::uint64_t instructions);

    unsigned numShards() const { return unsigned(shards_.size()); }
    MonitoringSystem &shard(unsigned i) { return *shards_.at(i); }
    const MonitoringSystem &shard(unsigned i) const
    {
        return *shards_.at(i);
    }
    Monitor *monitor(unsigned i) { return monitors_.at(i).get(); }

  private:
    /** Lockstep-tick every shard until each retires @p instructions. */
    void runRounds(std::uint64_t instructions, const char *what);

    MultiCoreConfig cfg_;
    Cache l2_;
    std::vector<std::unique_ptr<Monitor>> monitors_;
    std::vector<std::unique_ptr<MonitoringSystem>> shards_;
    std::vector<std::string> workloadNames_;
};

/**
 * The profile shard @p idx runs under round-robin distribution of
 * @p workloads (seed-offset applied for repeated profiles).
 */
BenchProfile shardWorkload(const std::vector<BenchProfile> &workloads,
                           unsigned idx);

} // namespace fade

#endif // FADE_SYSTEM_MULTICORE_HH
