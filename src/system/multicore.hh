/**
 * @file
 * Sharded multi-core monitoring system. The paper evaluates FADE per
 * core and argues the design replicates across a CMP (Section 7); this
 * subsystem models that scaling point: N shards, each a full
 * {application core, event queue, FADE, MD cache, monitor} slice as in
 * Fig. 8, sharing one L2/DRAM model. Workloads are distributed to
 * shards round-robin from the benchmark profile list, shards advance
 * in bounded slices under the shard scheduler (system/scheduler.hh) —
 * sequentially (Lockstep) or on parallel host threads
 * (ParallelBatched), with bit-identical results either way — and
 * statistics roll up into per-shard plus aggregate results.
 *
 * The single-core MonitoringSystem is exactly the N=1 case: shard 0
 * runs the unmodified profile, so its results are bit-identical to a
 * standalone MonitoringSystem with a private L2 of the same geometry,
 * for every scheduler policy and slice length.
 *
 * MultiCoreConfig::topology generalizes the memory side into a
 * NUMA-style clustered system (system/topology.hh, mem/directory.hh):
 * `clusters x shardsPerCluster` shards, each cluster with its own
 * shared-L2 slice, addresses routed to their home slice by the
 * directory with a remote-cluster penalty, and optionally K filter
 * units per shard (FadeGroup). The flat defaults (`clusters = 1,
 * fadesPerShard = 1`) reproduce the pre-topology system bit for bit
 * (tests/test_topology.cc, docs/TOPOLOGY.md).
 */

#ifndef FADE_SYSTEM_MULTICORE_HH
#define FADE_SYSTEM_MULTICORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/directory.hh"
#include "system/scheduler.hh"
#include "system/system.hh"
#include "system/topology.hh"
#include "trace/tracefile.hh"

namespace fade
{

struct ProcessShared;

/** Configuration of the sharded system. */
struct MultiCoreConfig
{
    /** Number of {core, FADE, MD cache} shards. */
    unsigned numShards = 1;
    /** Per-shard system configuration (shardId is assigned per shard). */
    SystemConfig shard;
    /** Lifeguard instantiated per shard ("" = unmonitored baseline). */
    std::string monitor = "MemLeak";
    /**
     * Workload profiles, dealt round-robin: shard i runs
     * workloads[i % workloads.size()]. When a profile is reused by more
     * than one shard its RNG seed is offset by the shard index so the
     * copies decorrelate; shard 0 always runs its profile verbatim.
     */
    std::vector<BenchProfile> workloads;
    /** Execution policy, slice length and worker count. Affects wall
     *  clock only (plus interference granularity via sliceTicks);
     *  simulated results are policy- and thread-count-invariant. */
    SchedulerConfig scheduler;
    /**
     * Intra-shard execution engine, applied to every shard (overrides
     * shard.engine). Engine::Batched runs each shard's slice through
     * the run-to-stall pipeline driver; results are bit-identical to
     * Engine::PerCycle (tests/test_pipeline.cc), only wall clock
     * changes.
     */
    Engine engine = Engine::PerCycle;
    /**
     * Cluster shape: shared-L2 slices, shards per cluster, filter
     * units per shard, remote-slice penalty (system/topology.hh).
     * When topology.shardsPerCluster is nonzero it determines the
     * shard count and numShards is ignored; otherwise numShards is
     * split evenly across topology.clusters. topology.fadesPerShard
     * overrides shard.fadesPerShard on every shard, like engine.
     */
    Topology topology;
    /**
     * Replay: drive every shard from this captured trace file instead
     * of live generators ("" = live). Stream i feeds shard i; the
     * trace must hold exactly numShards streams and the workload list
     * must match the captured streams — replayConfig() reconstructs a
     * matching config from the trace itself.
     */
    std::string traceIn;
    /**
     * Capture: tee every shard's application stream to this trace
     * file ("" = no capture). Finish the file with closeTrace() after
     * the measured run; a writer torn down without it still produces
     * a readable trace, but without the replay manifest.
     */
    std::string traceOut;
};

/** One shard's slice of a measured run. */
struct ShardResult
{
    unsigned shard = 0;
    std::string workload;
    RunResult run;
    FadeStats fade;
    double filteringRatio = 0.0;
    /** Event-queue occupancy distribution of this shard's slice. */
    Log2Histogram eqOccupancy;
    /** Bug reports raised during the measured slice (not warmup). */
    std::uint64_t bugReports = 0;
    /** Home cluster of this shard. */
    unsigned cluster = 0;
    /** L2-bound accesses routed to the shard's own cluster's slice /
     *  to a remote slice (remote penalty paid). In the flat 1-cluster
     *  system every access is local, so l2Remote is always 0. */
    std::uint64_t l2Local = 0;
    std::uint64_t l2Remote = 0;
};

/** Aggregated results of one measured multi-core run. */
struct MultiCoreResult
{
    std::vector<ShardResult> shards;

    /** Makespan: cycles until the slowest shard finished its quota. */
    std::uint64_t cycles = 0;
    std::uint64_t totalInstructions = 0;
    std::uint64_t totalEvents = 0;
    /** System throughput: total instructions / makespan. */
    double aggregateIpc = 0.0;
    /** Unweighted mean of per-shard IPCs. */
    double meanShardIpc = 0.0;
    /** Event-weighted filtering ratio across shards. */
    double filteringRatio = 0.0;
    /** FADE counters summed over all shards (and, within each shard,
     *  over its filter units). */
    FadeStats fade;
    /** Event-queue occupancy merged over all shards. */
    Log2Histogram eqOccupancy;
    /** Directory routing totals (every access is local — remote 0 —
     *  in the flat 1-cluster system). */
    std::uint64_t l2LocalAccesses = 0;
    std::uint64_t l2RemoteAccesses = 0;
};

/**
 * N MonitoringSystem shards behind one shared L2, driven by the shard
 * scheduler in bounded slices; a shard that has retired its
 * instruction quota stops ticking while the rest complete, exactly
 * like the per-slice termination of the single-core run() loop.
 *
 * Thread-safety contract: the public interface is single-threaded.
 * Under SchedulerPolicy::ParallelBatched the scheduler internally
 * drives shards on worker threads, but warmup()/run() only return once
 * the workers are quiescent, and results do not depend on the policy
 * (see system/scheduler.hh for the determinism argument).
 */
class MultiCoreSystem
{
  public:
    explicit MultiCoreSystem(const MultiCoreConfig &cfg);
    ~MultiCoreSystem();

    /** Warm every shard with @p instructions app instructions, then
     *  drain and zero statistics. */
    void warmup(std::uint64_t instructions);

    /** Run a measured slice of @p instructions per shard. */
    MultiCoreResult run(std::uint64_t instructions);

    /**
     * Resumable phase protocol — warmup() and run() split into arm /
     * advance / finish so an external driver (the monitoring daemon's
     * session pool) can interleave many systems at slice-epoch
     * granularity. Results are bit-identical to the monolithic calls:
     * advanceRun() executes exactly the epochs the one-shot loop would
     * have (ShardScheduler::stepEpochs), and the finish step performs
     * the very same drain/reset (warmup) or aggregation (measure).
     *
     *   beginWarmup(w); while (!advanceRun(k)) ...; finishWarmup();
     *   beginMeasure(m); while (!advanceRun(k)) ...;
     *   MultiCoreResult r = finishMeasure();
     *
     * One phase may be active at a time; warmup()/run() are these
     * calls composed.
     */
    void beginWarmup(std::uint64_t instructions);
    void beginMeasure(std::uint64_t instructions);
    /** Advance the armed phase by at most @p maxEpochs slice epochs;
     *  true when the phase's instruction target is reached. */
    bool advanceRun(std::uint64_t maxEpochs);
    void finishWarmup();
    MultiCoreResult finishMeasure();

    /** App instructions retired across all shards since the current
     *  phase's statistics baseline (progress reporting). */
    std::uint64_t retiredTotal() const;
    /** Monitored events produced across all shards since the same
     *  baseline. */
    std::uint64_t producedTotal() const;

    /**
     * Drain every shard, then concatenate the shards' engine-invariant
     * functional fingerprints (MonitoringSystem::functionalFingerprint
     * — retirement/event counts, filter verdicts, handler work,
     * monitor reports; no cycle-dependent values). The run-grain
     * engine reproduces this vector bit for bit against the per-cycle
     * reference when both engines cover the same per-shard instruction
     * windows — e.g. replaying a run-grain-captured trace, whose
     * streams end at exact retirement quotas (tests/test_tracefile.cc).
     * Finishes the monitors; call once, after the last run() slice.
     */
    std::vector<std::uint64_t> functionalFingerprint();

    unsigned numShards() const { return unsigned(shards_.size()); }
    MonitoringSystem &shard(unsigned i) { return *shards_.at(i); }
    const MonitoringSystem &shard(unsigned i) const
    {
        return *shards_.at(i);
    }
    Monitor *monitor(unsigned i) { return monitors_.at(i).get(); }

    /** Shared-L2 slice 0 — the whole shared L2 in the flat 1-cluster
     *  system; use directory() for the other slices. */
    const Cache &sharedL2() const { return dir_.slice(0); }

    /** The clustered last-level cache behind all shards. */
    HomeDirectory &directory() { return dir_; }
    const HomeDirectory &directory() const { return dir_; }

    unsigned numClusters() const { return dir_.numSlices(); }
    /** Home cluster of shard @p i. */
    unsigned clusterOf(unsigned i) const { return shardClusters_.at(i); }

    /** The shard scheduler (host-side wall-clock accounting). */
    ShardScheduler &scheduler() { return *sched_; }
    const ShardScheduler &scheduler() const { return *sched_; }

    /** Per-process monitor state shared by all shards' monitor
     *  instances, or nullptr for non-process workloads
     *  (monitor/interleave.hh). */
    ProcessShared *processShared() { return procShared_.get(); }

    /** The capture writer (nullptr when traceOut is empty). */
    TraceWriter *traceWriter() { return writer_.get(); }
    /** The replay reader (nullptr when traceIn is empty). */
    const TraceReader *traceReader() const { return reader_.get(); }

    /**
     * Finish a capture (traceOut configured): write the replay
     * manifest — the warmup/measure instruction counts driven so far
     * and every result-affecting knob — into the footer and close the
     * file. The overload records @p resultHash (fingerprintHash() of
     * the measured run) so replays can be hard-checked against the
     * capture (`trace_tool --verify`).
     */
    void closeTrace();
    void closeTrace(std::uint64_t resultHash);

  private:
    void finishTrace(bool hasResult, std::uint64_t resultHash);

    /** Active resumable phase (beginWarmup/beginMeasure). */
    enum class Phase : std::uint8_t
    {
        Idle,
        Warmup,
        Measure,
    };

    MultiCoreConfig cfg_;
    Phase phase_ = Phase::Idle;
    /** Monitor report counts at beginMeasure() (per-shard deltas). */
    std::vector<std::size_t> reportsBefore_;
    std::unique_ptr<TraceReader> reader_;
    std::unique_ptr<TraceWriter> writer_;
    /** Instructions driven so far (recorded in the capture manifest). */
    std::uint64_t capturedWarmup_ = 0;
    std::uint64_t capturedRun_ = 0;
    HomeDirectory dir_;
    std::vector<unsigned> shardClusters_;
    /** Shared log/analysis state of a multi-threaded process workload
     *  (null otherwise); outlives the shards' monitor bindings. */
    std::unique_ptr<ProcessShared> procShared_;
    std::vector<std::unique_ptr<Monitor>> monitors_;
    std::vector<std::unique_ptr<MonitoringSystem>> shards_;
    std::vector<std::string> workloadNames_;
    std::unique_ptr<ShardScheduler> sched_;
};

/**
 * The profile shard @p idx runs under round-robin distribution of
 * @p workloads (seed-offset applied for repeated profiles).
 */
BenchProfile shardWorkload(const std::vector<BenchProfile> &workloads,
                           unsigned idx);

/**
 * Every simulated value a measured run produced — aggregate and
 * per-shard results, all FADE counters (merged over each shard's
 * filter units), occupancy histograms, bug-report counts, per-slice
 * LLC hit/miss counters, and (for clustered topologies) per-shard
 * directory routing counters — flattened into one comparable vector.
 * The flat 1-cluster layout is unchanged from the pre-topology system,
 * so flat fingerprints stay comparable across the refactor. Two runs
 * are bit-identical iff their fingerprints compare equal; the
 * scheduler/topology tests and the fig12 harness use this to assert
 * ParallelBatched == Lockstep and batched == per-cycle on every shape.
 */
std::vector<std::uint64_t> resultFingerprint(MultiCoreSystem &sys,
                                             const MultiCoreResult &r);

/**
 * Hash of the result-affecting capture configuration, stamped into the
 * trace header at capture time. Engine, scheduler policy, and host
 * thread count are deliberately excluded: they are proven
 * result-invariant (tests/test_scheduler.cc, test_pipeline.cc), so a
 * trace captured under any of them replays under all of them.
 */
std::uint64_t traceConfigFingerprint(const MultiCoreConfig &cfg);

/**
 * Reconstruct the run configuration of a captured trace from its
 * manifest and per-stream metadata: shape, monitor, queue/core knobs,
 * and one workload entry per stream (name/seed/threads exactly as
 * captured — the behavioural profile fields are irrelevant under
 * replay, where no generator runs). The returned config has traceIn
 * set, so constructing a MultiCoreSystem from it replays the capture;
 * drive it with the manifest's warmup/measure instruction counts to
 * reproduce the recorded run bit for bit. Throws TraceError when the
 * file is unreadable or carries no manifest.
 */
MultiCoreConfig replayConfig(const std::string &path);

} // namespace fade

#endif // FADE_SYSTEM_MULTICORE_HH
