#include "system/pipeline.hh"

#include <algorithm>

#include "monitor/process.hh"
#include "system/producer.hh"

namespace fade
{

PipelineDriver::PipelineDriver(MonitoringSystem &sys)
    : sys_(sys),
      appCore_(sys.appCore_.get()),
      monCore_(sys.monCore_.get()),
      fades_(sys.fades_.get()),
      eq_(&sys.eq_),
      producer_(sys.producer_.get()),
      mproc_(sys.mproc_.get()),
      monOnApp_(sys.mproc_ && !sys.monCore_),
      monReadsEq_(!sys.cfg_.accelerated),
      perfect_(sys.cfg_.perfectConsumer)
{
}

SrcProbe
PipelineDriver::monProbe() const
{
    if (!mproc_)
        return SrcProbe::None;
    // A probe must hold for the whole cycle. Pure never does for the
    // monitor process: even with instructions currently fetchable, a
    // handler can drain mid-cycle, after which the next availability
    // call pops the input queue — so any fetchable/poppable state must
    // keep the real calls (Effectful).
    if (mproc_->fetchPending())
        return SrcProbe::Effectful;
    // Unaccelerated systems feed the monitor from the event queue,
    // which the application thread can grow within the same core tick
    // (commit slots precede dispatch slots); the availability call must
    // then really be made.
    if (monReadsEq_)
        return SrcProbe::Effectful;
    // Accelerated: the unfiltered event queue only changes between
    // core ticks (FADE runs after the core), so the pre-tick state
    // decides: with an empty input and no fetchable instructions,
    // available() is false for the whole cycle with no side effects.
    return mproc_->inputEmpty() ? SrcProbe::None : SrcProbe::Effectful;
}

bool
PipelineDriver::tryJump(Cycle end, const SrcProbe *appProbes,
                        const SrcProbe *monProbes)
{
    Cycle now = sys_.now_;
    FadeGroupStallProfile fp;
    fp.active = false;
    if (fades_) {
        fp = fades_->stallProfile(now);
        if (fp.active)
            return false;
    }
    // The perfect consumer's pops can lift producer backpressure, so a
    // full event queue pins the refusal-frozen argument only without
    // it.
    if (perfect_ && eq_->full())
        return false;

    Cycle wake = appCore_->nextActivity(now, appProbes);
    if (wake <= now)
        return false;
    if (monCore_) {
        Cycle mw = monCore_->nextActivity(now, monProbes);
        if (mw <= now)
            return false;
        wake = std::min(wake, mw);
    }
    if (fades_)
        wake = std::min(wake, fp.wakeAt);
    wake = std::min(wake, end);
    if (wake <= now)
        return false;

    std::uint64_t n = wake - now;
    appCore_->skipCycles(now, n, appProbes);
    if (fades_)
        fades_->skipCycles(fp, n);
    if (monCore_)
        monCore_->skipCycles(now, n, monProbes);
    if (perfect_)
        sys_.perfectConsumed_ += eq_->popRun(n);
    sys_.now_ = wake;
    stats_.skippedCycles += n;
    ++stats_.jumps;
    return true;
}

std::uint64_t
PipelineDriver::runUntil(std::uint64_t maxCycles,
                         std::uint64_t targetRetired)
{
    Cycle start = sys_.now_;
    Cycle end = start + maxCycles;
    // The application thread's trace generator is always available and
    // side-effect free to probe; the monitor thread's probe is
    // refreshed every cycle.
    SrcProbe appProbes[2] = {SrcProbe::Pure, SrcProbe::None};
    SrcProbe monProbes[2] = {SrcProbe::Pure, SrcProbe::None};
    // Whether the previous fused cycle performed any commit/dispatch;
    // a jump can only become possible after a do-nothing cycle.
    bool quiet = false;

    while (sys_.now_ < end && producer_->retired() < targetRetired) {
        // The monitor's probe is valid for the components that tick
        // before its input can change: the app core ticks before FADE,
        // so a pre-cycle probe holds for the SMT thread; the monitor
        // core ticks after FADE, so its probe is refreshed below. For
        // jump eligibility a pre-cycle probe is always valid — a jump
        // requires FADE inert, so no push can intervene.
        if (monOnApp_)
            appProbes[1] = monProbe();
        else if (monCore_)
            monProbes[0] = monProbe();

        if (quiet && tryJump(end, appProbes, monProbes))
            continue;

        // Fused step: exactly tickAll()'s component order.
        Cycle now = sys_.now_;
        unsigned act = appCore_->stepCycle(now, appProbes);
        if (fades_)
            fades_->tick(now);
        if (monCore_) {
            monProbes[0] = monProbe();
            act += monCore_->stepCycle(now, monProbes);
        }
        if (perfect_ && !eq_->empty()) {
            eq_->pop();
            ++sys_.perfectConsumed_;
        }
        ++sys_.now_;
        ++stats_.fusedCycles;
        quiet = act == 0;
    }
    return sys_.now_ - start;
}

} // namespace fade
