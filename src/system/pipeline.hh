/**
 * @file
 * Run-to-stall batched pipeline engine for one shard.
 *
 * The per-cycle reference engine (MonitoringSystem::tickOnce) walks
 * core -> event queue -> FADE -> unfiltered event queue -> MD cache ->
 * monitor every cycle, even when most components are idle or the whole
 * shard is waiting out a long memory latency. This driver advances the
 * same components through the same cycles with the same semantics, but
 * in two cheaper ways:
 *
 *  - Active cycles run through a fused step (Core::stepCycle +
 *    Fade::tick in the exact tickOnce() order) that eliminates the
 *    reference path's per-cycle heap allocations and elides source
 *    calls whose outcome is already known to be side-effect free
 *    (SrcProbe).
 *
 *  - Frozen spans — every component stalled with provably constant
 *    inputs (ROB head waiting on a cache miss, FADE waiting on an
 *    MD-cache fill or on backpressure, monitor idle) — are skipped in
 *    one jump to the earliest wake-up cycle, with each component
 *    batch-applying exactly the per-cycle condition counters the
 *    skipped ticks would have recorded (Core::skipCycles,
 *    Fade::skipCycles, BoundedQueue::popRun for the perfect consumer).
 *
 * Because every fused step performs the reference transition for its
 * cycle and every jump is taken only when the reference ticks of the
 * span are proven to change nothing but the batch-applied counters,
 * the engine is bit-identical to per-cycle execution — same cycle
 * counts, same statistics, same RNG/functional state — for every
 * configuration. docs/ARCHITECTURE.md gives the stall-condition table
 * and the equality argument; tests/test_pipeline.cc enforces it across
 * the full profile x monitor x shard-count x policy matrix.
 */

#ifndef FADE_SYSTEM_PIPELINE_HH
#define FADE_SYSTEM_PIPELINE_HH

#include <cstdint>

#include "cpu/core.hh"
#include "system/system.hh"

namespace fade
{

/** Host-side accounting of one driver (simulation-invisible). */
struct PipelineDriverStats
{
    /** Cycles executed through the fused step. */
    std::uint64_t fusedCycles = 0;
    /** Cycles fast-forwarded without execution. */
    std::uint64_t skippedCycles = 0;
    /** Jumps taken (each skips >= 1 cycle). */
    std::uint64_t jumps = 0;
};

/**
 * Drives one MonitoringSystem in run-to-stall batches. Owned by the
 * system when SystemConfig::engine == Engine::Batched; stateless
 * between calls except for cached component pointers, so it composes
 * with the shard scheduler's bounded slices exactly like the per-cycle
 * loop (a slice boundary is just a cycle limit).
 */
class PipelineDriver
{
  public:
    explicit PipelineDriver(MonitoringSystem &sys);

    /**
     * Advance until @p maxCycles cycles are consumed or the producer
     * has retired @p targetRetired instructions, whichever first —
     * semantically identical to that many tickOnce() calls.
     * @return the number of simulated cycles consumed.
     */
    std::uint64_t runUntil(std::uint64_t maxCycles,
                           std::uint64_t targetRetired);

    const PipelineDriverStats &stats() const { return stats_; }

  private:
    /** Source probe for the monitor software process this cycle. */
    SrcProbe monProbe() const;

    /**
     * Try to fast-forward a frozen span starting at the current cycle.
     * @return true (with state batch-updated and the clock advanced)
     *         when a span of at least one cycle was skipped.
     */
    bool tryJump(Cycle end, const SrcProbe *appProbes,
                 const SrcProbe *monProbes);

    MonitoringSystem &sys_;
    Core *appCore_;
    Core *monCore_;
    FadeGroup *fades_;
    BoundedQueue<MonEvent> *eq_;
    EventProducer *producer_;
    MonitorProcess *mproc_;
    /** The monitor process runs as hardware thread 1 of the app core
     *  (single-core SMT config). */
    bool monOnApp_;
    /** The monitor process consumes the event queue directly
     *  (unaccelerated config): its input can grow mid-core-tick, so
     *  its source may never be probed away. */
    bool monReadsEq_;
    bool perfect_;
    PipelineDriverStats stats_;
};

} // namespace fade

#endif // FADE_SYSTEM_PIPELINE_HH
