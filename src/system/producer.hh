/**
 * @file
 * Producer-side event extraction (the "event producer" of Fig. 1). As
 * monitored instructions retire on the application core, events are
 * built and enqueued into the event queue; unmonitored instructions are
 * eliminated at the source. A full event queue stalls retirement
 * (backpressure, Section 3.2).
 */

#ifndef FADE_SYSTEM_PRODUCER_HH
#define FADE_SYSTEM_PRODUCER_HH

#include <cstdint>

#include "cpu/source.hh"
#include "isa/event.hh"
#include "monitor/monitor.hh"
#include "sim/queue.hh"
#include "system/topology.hh"

namespace fade
{

/** Retirement-side event extraction for the application thread. */
class EventProducer : public CommitSink
{
  public:
    /**
     * @param mon    event-selection policy (null = unmonitored baseline)
     * @param eq     event queue (null = unmonitored baseline)
     * @param fades  filter-unit group whose INV RFs see thread switches
     * @param shard  home shard tag stamped into every produced event
     */
    EventProducer(Monitor *mon, BoundedQueue<MonEvent> *eq,
                  FadeGroup *fades, std::uint8_t shard = 0)
        : mon_(mon), eq_(eq), fades_(fades), shard_(shard)
    {}

    bool
    canCommit(const Instruction &inst) override
    {
        if (!mon_ || !eq_ || !mon_->monitored(inst))
            return true;
        if (paused_)
            return false;
        return !eq_->full();
    }

    /** Stall monitored retirement (used to drain the monitoring side). */
    void pause(bool p) { paused_ = p; }

    /**
     * Retarget event emission at @p eq (run-grain engine): the driver
     * points the producer at a private staging slot it drains after
     * every retirement, so the architectural event queue's statistics
     * can be driven from modeled time (BoundedQueue::accountTransit)
     * instead of host-side pushes. Passing the original queue restores
     * the per-cycle wiring. Only legal between slices, with no event
     * in flight.
     */
    void rebindQueue(BoundedQueue<MonEvent> *eq) { eq_ = eq; }

    /**
     * Run-grain fast path: retire @p inst with the monitored verdict
     * already decided by the caller (one Monitor::monitored() query per
     * retirement, exactly like commitIfAllowed). The caller has already
     * applied event-queue backpressure in its timing model, so the
     * commit always succeeds.
     */
    void
    commitDecided(const Instruction &inst, bool monitored)
    {
        ++retired_;
        if (mon_ && eq_)
            produce(inst, monitored);
    }

    /**
     * Bulk span extraction (run-grain span path): retire @p n
     * instructions at once, with verdicts @p mv already decided
     * (Monitor::monitoredSpan), building the events of every monitored
     * one into @p out instead of the bound queue. Returns the number
     * of events written. Functionally identical to n commitDecided()
     * calls — same retired/produced accounting, same seq numbering,
     * same per-instruction thread-switch tracking — except that the
     * events land in the caller's flat buffer: the caller owns the
     * modeled queue accounting (the run-grain driver drives the
     * architectural EQ statistics from modeled time) and must process
     * the events in order. Callers segment spans at thread switches
     * when INV-RF updates must stay ordered against event processing
     * (system/rungrain.cc does).
     */
    std::size_t
    commitSpan(const Instruction *insts, const std::uint8_t *mv,
               std::size_t n, MonEvent *out)
    {
        retired_ += n;
        if (!mon_ || !eq_)
            return 0;
        std::size_t ev = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Instruction &inst = insts[i];
            noteTid(inst);
            if (!mv[i])
                continue;
            MonEvent &slot = out[ev++];
            if (inst.isStackUpdate())
                slot = makeStackEvent(inst, seq_);
            else if (inst.cls == InstClass::HighLevel)
                slot = makeHighLevelEvent(inst, seq_);
            else
                slot = makeInstEvent(inst, seq_);
            slot.shard = shard_;
            ++seq_;
            ++produced_;
        }
        return ev;
    }

    void
    onCommit(const Instruction &inst) override
    {
        ++retired_;
        if (mon_ && eq_)
            produce(inst, mon_->monitored(inst));
    }

    /** Fused fast path: one virtual dispatch and one monitored() query
     *  per retirement instead of the canCommit/onCommit round-trip. */
    bool
    commitIfAllowed(const Instruction &inst) override
    {
        if (!mon_ || !eq_) {
            ++retired_;
            return true;
        }
        bool monitored = mon_->monitored(inst);
        if (monitored && (paused_ || eq_->full()))
            return false;
        ++retired_;
        produce(inst, monitored);
        return true;
    }

    std::uint64_t retired() const { return retired_; }
    std::uint64_t produced() const { return produced_; }

    void
    resetStats()
    {
        retired_ = 0;
        produced_ = 0;
    }

  private:
    /** Thread-switch tracking for one retirement. */
    void
    noteTid(const Instruction &inst)
    {
        if (seenTid_ && inst.tid != lastTid_) {
            // Context switch: the monitor updates its current-thread
            // invariant register — in every filter unit, since the
            // group steers the new thread's events across all of them.
            if (fades_)
                for (unsigned u = 0; u < fades_->size(); ++u)
                    mon_->onThreadSwitch(inst.tid,
                                         &fades_->unit(u).invRf());
            else
                mon_->onThreadSwitch(inst.tid, nullptr);
        }
        lastTid_ = inst.tid;
        seenTid_ = true;
    }

    /** Thread-switch tracking + event emission for one retirement
     *  (the monitored verdict is already decided). */
    void
    produce(const Instruction &inst, bool monitored)
    {
        noteTid(inst);

        if (!monitored)
            return;

        // Build the event in place in the queue slot (accounting is
        // identical to push(); see BoundedQueue::pushSlot).
        MonEvent *slot = eq_->pushSlot();
        panic_if(!slot, "event queue push after canCommit check");
        if (inst.isStackUpdate())
            *slot = makeStackEvent(inst, seq_);
        else if (inst.cls == InstClass::HighLevel)
            *slot = makeHighLevelEvent(inst, seq_);
        else
            *slot = makeInstEvent(inst, seq_);
        slot->shard = shard_;
        ++seq_;
        ++produced_;
    }

    Monitor *mon_;
    BoundedQueue<MonEvent> *eq_;
    FadeGroup *fades_;
    std::uint8_t shard_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t produced_ = 0;
    ThreadId lastTid_ = 0;
    bool seenTid_ = false;
    bool paused_ = false;
};

} // namespace fade

#endif // FADE_SYSTEM_PRODUCER_HH
