#include "system/rungrain.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"
#include "trace/threads.hh"
#include "trace/tracefile.hh"

namespace fade
{

RunGrainDriver::RunGrainDriver(MonitoringSystem &sys)
    : sys_(sys),
      appCore_(sys.appCore_.get()),
      monHost_(sys.monCore_ ? sys.monCore_.get() : sys.appCore_.get()),
      fades_(sys.fades_.get()),
      producer_(sys.producer_.get()),
      mproc_(sys.mproc_.get()),
      stage_(0)
{
    // The application source, exactly as the core sees it (the capture
    // tee outermost, so staged runs are recorded at consumption).
    if (sys.capture_)
        appSrc_ = sys.capture_.get();
    else if (sys.replay_)
        appSrc_ = sys.replay_.get();
    else if (sys.tgen_)
        appSrc_ = sys.tgen_.get();
    else
        appSrc_ = sys.gen_.get();
    srcRuns_ = appSrc_->supportsRuns();

    perfect_ = sys.cfg_.perfectConsumer && sys.mon_ != nullptr;
    unaccel_ = mproc_ != nullptr && fades_ == nullptr;
    monPopDelay_ = (fades_ && !sys.monCore_) ? 1 : 0;

    appT_.configure(sys.cfg_.core, appCore_->robPartition());
    if (mproc_)
        monT_.configure(sys.cfg_.core, monHost_->robPartition());

    if (sys.cfg_.eqCapacity)
        eqPopRing_.assign(sys.cfg_.eqCapacity, 0);
    if (sys.cfg_.ueqCapacity)
        ueqStartRing_.assign(sys.cfg_.ueqCapacity, 0);
    if (fades_)
        pipes_.assign(fades_->size(), UnitPipe{});

    // Events route through the driver's staging slot whenever nothing
    // pops the architectural EQ eagerly on the host side; the real
    // queue's statistics are then driven from modeled time
    // (BoundedQueue::accountTransit). The unaccelerated configuration
    // keeps the real binding: the monitor process pops the EQ
    // directly, and the driver drains it after every retirement.
    if (sys.mon_ && (fades_ || perfect_))
        producer_->rebindQueue(&stage_);

    // Span fast path: bulk extraction needs the producer bound to the
    // driver (accelerated / perfect) or no events at all; the
    // unaccelerated monitor process pops the real EQ after every
    // retirement, so it keeps the per-instruction interleaving.
    spanPath_ = srcRuns_ && sys.cfg_.spanFastPath &&
                std::getenv("FADE_NO_SPAN") == nullptr &&
                (sys.mon_ == nullptr || fades_ || perfect_);
}

Cycle
RunGrainDriver::eqGate() const
{
    if (eqPopRing_.empty() || eqCount_ < eqPopRing_.size())
        return 0;
    return eqPopRing_[eqIdx_] + 1;
}

Cycle
RunGrainDriver::ueqGate() const
{
    if (ueqStartRing_.empty() || ueqCount_ < ueqStartRing_.size())
        return 0;
    return ueqStartRing_[ueqIdx_] + 1;
}

void
RunGrainDriver::recordEqPop(Cycle popAt)
{
    eqPending_.push_back(popAt);
    if (!eqPopRing_.empty()) {
        eqPopRing_[eqIdx_] = popAt;
        eqIdx_ = (eqIdx_ + 1 == eqPopRing_.size()) ? 0 : eqIdx_ + 1;
    }
    ++eqCount_;
    lastEqPop_ = popAt;
}

void
RunGrainDriver::accountEqPush(Cycle pushAt)
{
    // Modeled occupancy seen by the arriving event: every earlier
    // event whose pop lands at or after the push cycle is still
    // queued (a same-cycle pop happens later in the cycle than the
    // push), plus the event itself.
    while (!eqPending_.empty() && eqPending_.front() < pushAt)
        eqPending_.pop_front();
    sys_.eq_.accountTransit(eqPending_.size() + 1);
}

Cycle
RunGrainDriver::unitQuiesce(const UnitPipe &u) const
{
    return std::max({u.pipeClear, u.handlerClear, u.freeAt});
}

Cycle
RunGrainDriver::groupQuiesce() const
{
    Cycle q = groupFree_;
    for (const UnitPipe &u : pipes_)
        q = std::max(q, unitQuiesce(u));
    return q;
}

RunGrainDriver::HandlerSpan
RunGrainDriver::runHandler(Cycle avail)
{
    panic_if(!mproc_ || !mproc_->available(),
             "run-grain handler expected but none pending");
    HandlerSpan span;
    ThreadStats &ms = monHost_->runGrainThreadStats(sys_.monCore_ ? 0 : 1);
    bool first = true;
    Cycle gate = avail + monPopDelay_;
    while (const Instruction *hi = mproc_->fetchNext()) {
        unsigned lat = monHost_->runGrainExecLatency(*hi);
        RunGrainThread::Retire r =
            monT_.retire(*hi, lat, first ? gate : 0, 0);
        if (first) {
            span.start = r.dispatched;
            first = false;
        }
        ++ms.retired;
        ms.robFullCycles += r.robWait;
        ms.fetchBubbleCycles += r.fetchWait;
        stats_.cyclesFastForwarded += r.robWait + r.fetchWait;
        mproc_->onCommit(*hi);
    }
    panic_if(first, "run-grain handler with no instructions");
    span.done = monT_.lastCommit();

    // Busy-interval union for idle accounting (handlers pipeline, so
    // spans can overlap).
    Cycle s = std::max(span.start, monBusyUntil_);
    if (span.done > s)
        busySlice_ += span.done - s;
    monBusyUntil_ = std::max(monBusyUntil_, span.done);
    ++stats_.handlers;
    return span;
}

void
RunGrainDriver::processEvent(const MonEvent &ev, Cycle commit)
{
    ++stats_.events;
    accountEqPush(commit);

    if (perfect_) {
        // Ideal consumer: one pop per cycle, in order.
        Cycle pop = std::max(commit, lastPerfectPop_ + 1);
        lastPerfectPop_ = pop;
        recordEqPop(pop);
        ++sys_.perfectConsumed_;
        return;
    }

    bool multi = fades_->size() > 1;
    FadeGroup::RunGrainSteered st = fades_->processEventRunGrain(ev);
    UnitPipe &u = pipes_[st.unit];
    const RunGrainEventOutcome &oc = st.outcome;

    if (oc.kind == RunGrainEventOutcome::Kind::Inst) {
        Cycle etr = std::max({commit, u.ctrl, u.freeAt, groupFree_,
                              lastEqPop_});
        Cycle ctrl = std::max(etr + 1, u.mdr);
        Cycle mdr = std::max(ctrl + 1, u.filt);
        Cycle filt = std::max(mdr + 1, u.resolve);
        Cycle resolve = filt + std::max(1u, oc.shots);
        u.ctrl = ctrl;
        u.mdr = mdr;
        u.filt = filt;
        u.resolve = resolve;
        recordEqPop(etr);
        if (!oc.software) {
            u.pipeClear = std::max(u.pipeClear, resolve);
            return;
        }
        // Software-bound: UEQ admission, then the handler. The +1 on
        // pipeClear covers the Metadata Write latch draining the cycle
        // after the filter verdict.
        Cycle uPush = std::max(resolve, ueqGate());
        u.pipeClear = std::max(u.pipeClear, resolve + 1);
        HandlerSpan h = runHandler(uPush);
        if (!ueqStartRing_.empty()) {
            ueqStartRing_[ueqIdx_] = h.start;
            ueqIdx_ = (ueqIdx_ + 1 == ueqStartRing_.size()) ? 0 : ueqIdx_ + 1;
        }
        ++ueqCount_;
        u.handlerClear = std::max(u.handlerClear, h.done);
        if (oc.serialize) // blocking FADE: filter stalls to completion
            u.freeAt = std::max(u.freeAt, h.done + 1);
        return;
    }

    if (oc.kind == RunGrainEventOutcome::Kind::Stack) {
        // Popped at the head immediately, then the unit (or, behind
        // group steering, every unit) drains before the SUU runs.
        Cycle pop = std::max({commit, u.freeAt, groupFree_, lastEqPop_});
        if (multi)
            pop = std::max(pop, groupQuiesce());
        Cycle suuStart = std::max(pop, unitQuiesce(u));
        Cycle done = suuStart + oc.suuCycles;
        stats_.cyclesStepped += oc.suuCycles;
        recordEqPop(pop);
        u.freeAt = std::max(u.freeAt, done + 1);
        if (multi)
            groupFree_ = std::max(groupFree_, done + 1);
        return;
    }

    // High-level event: always a software handler; with drain
    // semantics the unit additionally quiesces first and holds
    // filtering until the handler completes.
    Cycle pop = std::max({commit, u.freeAt, groupFree_, lastEqPop_});
    if (multi)
        pop = std::max(pop, groupQuiesce());
    Cycle uPush;
    if (oc.serialize)
        uPush = std::max(std::max(pop, unitQuiesce(u)), ueqGate());
    else
        uPush = std::max(std::max(pop, u.pipeClear), ueqGate());
    recordEqPop(pop);
    HandlerSpan h = runHandler(uPush);
    if (!ueqStartRing_.empty()) {
        ueqStartRing_[ueqIdx_] = h.start;
        ueqIdx_ = (ueqIdx_ + 1 == ueqStartRing_.size()) ? 0 : ueqIdx_ + 1;
    }
    ++ueqCount_;
    u.handlerClear = std::max(u.handlerClear, h.done);
    if (oc.serialize)
        u.freeAt = std::max(u.freeAt, h.done + 1);
    if (multi)
        groupFree_ = std::max(groupFree_, h.done + 1);
}

bool
RunGrainDriver::processOne()
{
    const Instruction *ip = srcRuns_ ? appSrc_->fetchNext() : nullptr;
    Instruction local;
    if (!ip) {
        if (!appSrc_->available())
            return false;
        local = appSrc_->fetch();
        ip = &local;
    }
    processInst(*ip);
    return true;
}

void
RunGrainDriver::processInst(const Instruction &inst)
{
    bool monitored =
        sys_.mon_ != nullptr && sys_.mon_->monitored(inst);
    unsigned lat = appCore_->runGrainExecLatency(inst);
    Cycle sinkGate = monitored ? eqGate() : 0;
    RunGrainThread::Retire r = appT_.retire(inst, lat, 0, sinkGate);

    ThreadStats &as = appCore_->runGrainThreadStats(0);
    ++as.retired;
    as.sinkStallCycles += r.sinkWait;
    as.robFullCycles += r.robWait;
    as.fetchBubbleCycles += r.fetchWait;
    stats_.cyclesFastForwarded += r.sinkWait + r.robWait + r.fetchWait;
    ++stats_.instructions;

    producer_->commitDecided(inst, monitored);

    if (!monitored)
        return;

    if (unaccel_) {
        // The monitor process pops the raw EQ itself; its handler
        // start is the modeled pop.
        ++stats_.events;
        HandlerSpan h = runHandler(r.committed);
        recordEqPop(h.start);
        return;
    }
    if (!stage_.empty())
        processEvent(stage_.pop(), r.committed);
}

void
RunGrainDriver::processSpan(const Instruction *insts, std::size_t n)
{
    Monitor *mon = sys_.mon_;
    if (mon)
        mon->monitoredSpan(insts, n, verdicts_);

    ThreadStats &as = appCore_->runGrainThreadStats(0);
    std::uint64_t ff = 0;

    std::size_t s = 0;
    while (s < n) {
        // Maximal same-tid segment: within it no INV-RF thread-switch
        // update can occur, so the whole segment's events may be
        // extracted before any of them is processed.
        std::size_t e = s + 1;
        ThreadId tid = insts[s].tid;
        while (e < n && insts[e].tid == tid)
            ++e;

        // Functional: bulk event extraction for the segment.
        std::size_t nev = producer_->commitSpan(
            insts + s, verdicts_ + s, e - s, spanEvents_);
        (void)nev;

        // Timing: retire recurrences with each event processed at its
        // own retire point (eqGate() ordering).
        std::size_t ev = 0;
        if (!mon) {
            for (std::size_t i = s; i < e; ++i) {
                unsigned lat = appCore_->runGrainExecLatency(insts[i]);
                RunGrainThread::Retire r =
                    appT_.retire(insts[i], lat, 0, 0);
                as.sinkStallCycles += r.sinkWait;
                as.robFullCycles += r.robWait;
                as.fetchBubbleCycles += r.fetchWait;
                ff += r.sinkWait + r.robWait + r.fetchWait;
            }
        } else {
            for (std::size_t i = s; i < e; ++i) {
                bool monitored = verdicts_[i] != 0;
                unsigned lat = appCore_->runGrainExecLatency(insts[i]);
                Cycle sinkGate = monitored ? eqGate() : 0;
                RunGrainThread::Retire r =
                    appT_.retire(insts[i], lat, 0, sinkGate);
                as.sinkStallCycles += r.sinkWait;
                as.robFullCycles += r.robWait;
                as.fetchBubbleCycles += r.fetchWait;
                ff += r.sinkWait + r.robWait + r.fetchWait;
                if (monitored)
                    processEvent(spanEvents_[ev++], r.committed);
            }
        }
        s = e;
    }

    as.retired += n;
    stats_.cyclesFastForwarded += ff;
    stats_.instructions += n;
}

std::uint64_t
RunGrainDriver::runUntil(std::uint64_t maxCycles,
                         std::uint64_t targetRetired)
{
    Cycle start = sys_.now_;
    Cycle end = start + maxCycles;
    std::uint64_t ffBefore = stats_.cyclesFastForwarded;
    std::uint64_t stepBefore = stats_.cyclesStepped;

    bool dry = false;
    while (producer_->retired() < targetRetired && !dry) {
        // Catch-up: the modeled frontier already fills this window.
        if (appT_.lastCommit() >= end)
            break;
        std::uint64_t want = targetRetired - producer_->retired();
        std::size_t batch =
            std::size_t(std::min<std::uint64_t>(want, kStageRun));
        appSrc_->stageRun(batch);
        if (spanPath_) {
            // Batched fast path: one span per batch (possibly shorter
            // at a trace-block boundary — the outer loop re-stages).
            InstSpan span = appSrc_->fetchSpan(batch);
            if (!span.empty()) {
                processSpan(span.data, span.count);
                continue;
            }
        }
        // Drain the whole batch: any staged instructions are consumed
        // before control returns (stream edits such as injectBug()
        // must never interleave with staged work).
        for (std::size_t k = 0; k < batch; ++k) {
            if (!processOne()) {
                dry = true;
                break;
            }
        }
    }

    Cycle frontier = appT_.lastCommit() + 1;
    if (producer_->retired() >= targetRetired)
        sys_.now_ = std::max(sys_.now_, frontier);
    else
        sys_.now_ = end;

    std::uint64_t elapsed = sys_.now_ - start;
    appCore_->runGrainAddCycles(elapsed);
    if (sys_.monCore_)
        sys_.monCore_->runGrainAddCycles(elapsed);
    std::uint64_t ff = stats_.cyclesFastForwarded - ffBefore;
    std::uint64_t stepped = stats_.cyclesStepped - stepBefore;
    if (elapsed > ff + stepped)
        stats_.cyclesClosedFormed += elapsed - ff - stepped;
    return elapsed;
}

void
RunGrainDriver::onResetStats()
{
    busySlice_ = 0;
}

void
RunGrainDriver::finalizeSlice()
{
    if (!mproc_)
        return;
    std::uint64_t elapsed = sys_.now_ - sys_.sliceStart_;
    ThreadStats &ms = monHost_->runGrainThreadStats(sys_.monCore_ ? 0 : 1);
    ms.idleCycles = elapsed > busySlice_ ? elapsed - busySlice_ : 0;
}

} // namespace fade
