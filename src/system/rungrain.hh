/**
 * @file
 * Run-grain engine for one shard (Engine::RunGrain).
 *
 * The per-cycle reference engine and the batched engine both advance
 * every component cycle by cycle (the batched engine merely skips
 * provably frozen spans). This driver abandons per-cycle stepping
 * altogether: it processes the shard *eagerly and serially* — fetch an
 * application instruction, extract its event, filter it, run its
 * handler to completion, repeat — while computing all timing with
 * closed-form recurrences over whole instruction runs
 * (cpu/core.hh:RunGrainThread) and a stage-time algebra for the FADE
 * pipeline. One instruction costs O(1) host work regardless of how
 * many simulated cycles it spans.
 *
 * Functional/timing split (docs/ARCHITECTURE.md, "Run-grain engine"):
 *
 *  - FUNCTIONAL results are produced by the same components the
 *    per-cycle engine uses, invoked in eager-serialized order: the
 *    same instruction source calls, the same EventProducer emission,
 *    Fade::processEventRunGrain (gather/evaluate/counters verbatim,
 *    SUU ticked to completion), the same MonitorProcess handler
 *    construction and Monitor functional calls. Instruction stream,
 *    event stream, filter verdicts, handler counts and bug reports
 *    are bit-identical to PerCycle (MultiCoreSystem::
 *    functionalFingerprint, enforced by tests/test_pipeline.cc).
 *
 *  - TIMING is modeled: per-thread dispatch/commit recurrences, a
 *    per-unit ETR/CTRL/MDR/FILTER entry-time algebra, modeled queue
 *    occupancy and backpressure gates, and closed-form handler-thread
 *    scheduling. The model is deterministic and policy-invariant but
 *    intentionally NOT cycle-identical to PerCycle; its values are
 *    pinned by RunGrain's own golden fingerprints.
 *
 * The driver keeps absolute modeled clocks that may run ahead of the
 * system's now_: advance() processes instructions until the retirement
 * target is met or the modeled commit frontier passes the cycle
 * window, then settles now_ (catching up over later calls when the
 * frontier overshoots a bounded slice).
 */

#ifndef FADE_SYSTEM_RUNGRAIN_HH
#define FADE_SYSTEM_RUNGRAIN_HH

#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "sim/queue.hh"
#include "sim/ring.hh"
#include "system/system.hh"
#include "system/topology.hh"

namespace fade
{

/** Host-side accounting of one run-grain driver (simulation-invisible).
 *  Not reset by resetStats (same convention as PipelineDriverStats):
 *  totals accumulate over the driver's lifetime. */
struct RunGrainDriverStats
{
    /** Application instructions retired through the closed forms. */
    std::uint64_t instructions = 0;
    /** Monitored events processed. */
    std::uint64_t events = 0;
    /** Software handlers run to completion. */
    std::uint64_t handlers = 0;
    /**
     * Decomposition of simulated cycles (docs/BENCHMARKS.md):
     *  - cyclesStepped: cycles still executed one at a time (the SUU's
     *    block-write loop is the only per-cycle machinery left).
     *  - cyclesFastForwarded: stall cycles jumped in one max() — the
     *    sum of ROB-full, fetch-redirect and commit-gate waits the
     *    recurrences computed without stepping them.
     *  - cyclesClosedFormed: everything else — elapsed simulated
     *    cycles attributed to closed-form evaluation, accumulated per
     *    advance() call as elapsed - fastForwarded - stepped (floored
     *    at 0 when modeled stalls overlap).
     */
    std::uint64_t cyclesClosedFormed = 0;
    std::uint64_t cyclesFastForwarded = 0;
    std::uint64_t cyclesStepped = 0;
};

/**
 * Drives one MonitoringSystem at run grain. Owned by the system when
 * SystemConfig::engine == Engine::RunGrain. Supports every system
 * shape: accelerated (single/multi-unit FadeGroup), unaccelerated,
 * perfect-consumer, unmonitored, two-core and SMT.
 */
class RunGrainDriver
{
  public:
    explicit RunGrainDriver(MonitoringSystem &sys);

    /**
     * Advance until @p maxCycles cycles are consumed or the producer
     * has retired @p targetRetired instructions. Instruction
     * processing is batched (kStageRun at a time, clamped to the
     * remaining target so the source's staging ring is always drained
     * on return); when the target is met the clock settles on the
     * modeled commit frontier, which may overshoot the window by up to
     * one batch (documented divergence from the per-cycle engines).
     * @return the number of simulated cycles consumed.
     */
    std::uint64_t runUntil(std::uint64_t maxCycles,
                           std::uint64_t targetRetired);

    /** Statistics-window hooks (called by MonitoringSystem). */
    void onResetStats();
    /** Write modeled per-slice aggregates (monitor-thread idle, core
     *  cycle counters) into the component stats endSlice() reads. */
    void finalizeSlice();

    const RunGrainDriverStats &stats() const { return stats_; }

  private:
    /** Instructions staged/processed per batch. The batch size is
     *  functionally and temporally invisible (staging is draw-for-draw
     *  identical to on-demand synthesis and the timing recurrences are
     *  per-instruction); it only sets span length and scratch sizing.
     *  64 keeps the whole span working set (staged instructions,
     *  verdicts, extracted events) L1-resident. */
    static constexpr std::size_t kStageRun = 64;

    /** Per-filter-unit modeled pipeline state (absolute cycles). */
    struct UnitPipe
    {
        /** Stage entry time of the unit's most recent event. An event
         *  leaves a stage the cycle its successor stage entry happens,
         *  so each field doubles as "when the stage frees". */
        Cycle ctrl = 0;
        Cycle mdr = 0;
        Cycle filt = 0;
        Cycle resolve = 0;
        /** All pipeline latches (incl. MW) clear of past events. */
        Cycle pipeClear = 0;
        /** Last software handler of this unit completes. */
        Cycle handlerClear = 0;
        /** Front end serialized (SUU / drain / blocking) until then. */
        Cycle freeAt = 0;
    };

    /** Process one application instruction end to end (timing
     *  recurrence, event extraction, filtering, handler).
     *  @return false when the source has no instruction. */
    bool processOne();

    /** The body of processOne() after the instruction is in hand
     *  (shared by the fetch and span paths). */
    void processInst(const Instruction &inst);

    /**
     * Batched span path: process @p n staged instructions. Verdicts
     * are decided for the whole span up front (monitoredSpan), events
     * are extracted in bulk per same-tid segment (commitSpan into the
     * flat event buffer), and the timing recurrences then run over the
     * span with the events processed at their retire points — the
     * exact interleaving the per-instruction path produces (eqGate()
     * for a monitored instruction must see the modeled pops of every
     * earlier event, and INV-RF thread switches must stay ordered
     * against event processing, hence the tid segmentation).
     */
    void processSpan(const Instruction *insts, std::size_t n);

    /** Accelerated path: one produced event through the FadeGroup. */
    void processEvent(const MonEvent &ev, Cycle commit);

    /** Run the pending software handler to completion on the monitor
     *  thread. @p avail is the cycle its event becomes visible to the
     *  monitor process. @return {firstDispatch, lastCommit}. */
    struct HandlerSpan
    {
        Cycle start = 0;
        Cycle done = 0;
    };
    HandlerSpan runHandler(Cycle avail);

    /** Commit gate from event-queue backpressure for the next
     *  monitored event (0 when the queue cannot refuse). */
    Cycle eqGate() const;
    /** Unfiltered-queue admission gate for the next software event. */
    Cycle ueqGate() const;
    /** Record the modeled EQ pop of the event just admitted. */
    void recordEqPop(Cycle popAt);
    /** Modeled EQ occupancy sample for a push at @p pushAt. */
    void accountEqPush(Cycle pushAt);

    Cycle unitQuiesce(const UnitPipe &u) const;
    Cycle groupQuiesce() const;

    MonitoringSystem &sys_;
    Core *appCore_;
    /** Core hosting the monitor thread (monCore_ or the SMT core). */
    Core *monHost_;
    FadeGroup *fades_;
    EventProducer *producer_;
    MonitorProcess *mproc_;
    InstSource *appSrc_;

    bool srcRuns_ = false;
    /** Span fast path usable: source serves spans and the shard shape
     *  lets events be extracted in bulk (accelerated / perfect /
     *  unmonitored; the unaccelerated monitor process pops the real EQ
     *  per retirement, so it stays on the per-instruction path). */
    bool spanPath_ = false;
    bool perfect_ = false;
    /** Monitor process consumes the raw EQ (unaccelerated). */
    bool unaccel_ = false;
    /** Monitor thread shares the application core (SMT): queue pushes
     *  become visible to it one cycle later than on a dedicated core
     *  ticked after FADE. */
    unsigned monPopDelay_ = 0;

    RunGrainThread appT_;
    RunGrainThread monT_;

    /** Private staging slot the producer is rebound to (accelerated /
     *  perfect-consumer): drained after every retirement, so the
     *  architectural EQ statistics are driven from modeled time. */
    BoundedQueue<MonEvent> stage_;

    /** Modeled EQ: pop times of events still queued in modeled time. */
    RingDeque<Cycle> eqPending_;
    /** Pop times of the last eqCapacity events (backpressure ring). */
    std::vector<Cycle> eqPopRing_;
    std::uint64_t eqCount_ = 0;
    /** eqCount_ mod eqPopRing_.size(), maintained incrementally so the
     *  per-event gate/record pair never divides. */
    std::size_t eqIdx_ = 0;
    /** Handler start (UEQ pop) times of the last ueqCapacity software
     *  events (admission ring). */
    std::vector<Cycle> ueqStartRing_;
    std::uint64_t ueqCount_ = 0;
    /** ueqCount_ mod ueqStartRing_.size(), maintained incrementally. */
    std::size_t ueqIdx_ = 0;
    Cycle lastEqPop_ = 0;
    Cycle lastPerfectPop_ = 0;

    std::vector<UnitPipe> pipes_;
    /** Group-serialized steering gate (multi-unit groups). */
    Cycle groupFree_ = 0;

    /** Span-path scratch: per-instruction verdicts and the bulk-
     *  extracted events of the current span (≤ kStageRun each). */
    std::uint8_t verdicts_[kStageRun];
    MonEvent spanEvents_[kStageRun];

    /** Monitor-thread busy-interval union (idle accounting). */
    Cycle monBusyUntil_ = 0;
    std::uint64_t busySlice_ = 0;

    RunGrainDriverStats stats_;
};

} // namespace fade

#endif // FADE_SYSTEM_RUNGRAIN_HH
