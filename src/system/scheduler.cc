#include "system/scheduler.hh"

#include <algorithm>
#include <chrono>

#include "sim/logging.hh"

namespace fade
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

ShardRunner::ShardRunner(MonitoringSystem &sys, HomeDirectory &dir,
                         unsigned cluster)
    : sys_(sys), port_(dir, cluster)
{
    for (unsigned c = 0; c < dir.numSlices(); ++c)
        views_.push_back(std::make_unique<SliceL2View>(dir.slice(c)));
}

void
ShardRunner::beginRun(std::uint64_t instructions)
{
    target_ = sys_.retired() + instructions;
    ticksUsed_ = 0;
}

void
ShardRunner::runSlice(std::uint64_t maxTicks)
{
    // The engine behind advance() is the shard's own choice (per-cycle
    // reference loop or the run-to-stall pipeline driver); both consume
    // exactly the cycles the legacy tickOnce() loop would have.
    ticksUsed_ += sys_.advance(maxTicks, target_);
}

void
ShardRunner::commitSlice()
{
    for (auto &v : views_)
        v->commit();
    // Trace-capture block boundaries land on slice barriers: this runs
    // on one thread in fixed shard order, so the byte stream of a
    // captured trace is identical for every scheduler policy and
    // worker count.
    sys_.flushCapture();
}

void
ShardRunner::beginEpoch()
{
    for (auto &v : views_)
        v->beginEpoch();
}

void
ShardRunner::attach()
{
    for (unsigned c = 0; c < unsigned(views_.size()); ++c)
        port_.setSlicePort(c, views_[c].get());
    sys_.setL2Port(&port_);
}

void
ShardRunner::detach()
{
    // Keep routing through the directory (home hashing + remote
    // penalty stay in effect for unscheduled work such as drains), but
    // against the real merged slices.
    port_.routeToBase();
    sys_.setL2Port(&port_);
}

ShardScheduler::ShardScheduler(const SchedulerConfig &cfg,
                               std::vector<MonitoringSystem *> shards,
                               HomeDirectory &dir,
                               const std::vector<unsigned> &clusters)
    : cfg_(cfg)
{
    fatal_if(shards.empty(), "scheduler needs >= 1 shard");
    fatal_if(clusters.size() != shards.size(),
             "scheduler needs one home cluster per shard");
    fatal_if(cfg_.sliceTicks == 0, "sliceTicks must be >= 1");
    for (std::size_t i = 0; i < shards.size(); ++i)
        runners_.push_back(std::make_unique<ShardRunner>(
            *shards[i], dir, clusters[i]));
}

ShardScheduler::~ShardScheduler()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

unsigned
ShardScheduler::workerCount() const
{
    if (cfg_.policy != SchedulerPolicy::ParallelBatched ||
        runners_.size() < 2)
        return 1;
    // An explicit hostThreads is honored even past the hardware
    // concurrency (oversubscription changes wall clock, never
    // results); the default uses one worker per shard up to the
    // host's parallelism.
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    unsigned want = cfg_.hostThreads ? cfg_.hostThreads : hw;
    return std::max(1u, std::min(want, unsigned(runners_.size())));
}

void
ShardScheduler::startWorkers()
{
    unsigned n = workerCount();
    if (n < 2 || !workers_.empty())
        return;
    workers_.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ShardScheduler::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t ticks;
        {
            std::unique_lock<std::mutex> lk(m_);
            workCv_.wait(lk,
                         [&] { return stop_ || epochSeq_ != seen; });
            if (stop_)
                return;
            seen = epochSeq_;
            ticks = epochTicks_;
        }
        // Static striping: worker w owns shards w, w+W, w+2W, ... so a
        // shard is touched by exactly one thread per epoch. (Shard
        // results cannot depend on this assignment; see file header.)
        for (std::size_t i = worker; i < runners_.size();
             i += workers_.size())
            if (!runners_[i]->done())
                runners_[i]->runSlice(ticks);
        {
            std::lock_guard<std::mutex> lk(m_);
            if (--pending_ == 0)
                doneCv_.notify_one();
        }
    }
}

void
ShardScheduler::runEpoch()
{
    if (workers_.empty()) {
        // Lockstep policy (or a parallel pool collapsed to one
        // worker): the same slice protocol, sequential in shard order.
        for (auto &r : runners_)
            if (!r->done())
                r->runSlice(cfg_.sliceTicks);
    } else {
        {
            std::lock_guard<std::mutex> lk(m_);
            epochTicks_ = cfg_.sliceTicks;
            pending_ = unsigned(workers_.size());
            ++epochSeq_;
        }
        workCv_.notify_all();
        std::unique_lock<std::mutex> lk(m_);
        doneCv_.wait(lk, [&] { return pending_ == 0; });
    }

    // Barrier: merge L2 traffic in fixed shard order, then rebase
    // every view on the merged state. Single-threaded by design.
    for (auto &r : runners_)
        r->commitSlice();
    for (auto &r : runners_)
        r->beginEpoch();
}

void
ShardScheduler::beginRun(std::uint64_t instructions, const char *what)
{
    panic_if(running_, "beginRun() while a run is already armed");
    runT0_ = std::chrono::steady_clock::now();
    what_ = what;
    cycleLimit_ = sliceCycleLimit(instructions);
    if (cfg_.policy == SchedulerPolicy::ParallelBatched)
        startWorkers();

    for (auto &r : runners_)
        r->beginRun(instructions);
    for (auto &r : runners_)
        r->attach();
    for (auto &r : runners_)
        r->beginEpoch();
    running_ = true;
}

bool
ShardScheduler::stepEpochs(std::uint64_t maxEpochs)
{
    panic_if(!running_, "stepEpochs() without an armed run");
    auto left = [&] {
        unsigned n = 0;
        for (auto &r : runners_)
            if (!r->done())
                ++n;
        return n;
    };

    unsigned n = left();
    for (std::uint64_t e = 0; n != 0 && e < maxEpochs; ++e, n = left()) {
        for (auto &r : runners_)
            panic_if(!r->done() && r->ticksUsed() >= cycleLimit_,
                     "multi-core ", what_, " failed to make progress");
        auto e0 = std::chrono::steady_clock::now();
        runEpoch();
        stats_.epochWall.sample(secondsSince(e0));
        ++stats_.epochs;
        stats_.slices += n;
    }
    if (n != 0)
        return false;

    for (auto &r : runners_) {
        r->detach();
        stats_.ticks += r->ticksUsed();
    }
    stats_.wallSeconds += secondsSince(runT0_);
    running_ = false;
    return true;
}

void
ShardScheduler::run(std::uint64_t instructions, const char *what)
{
    beginRun(instructions, what);
    while (!stepEpochs(~std::uint64_t(0))) {
    }
}

} // namespace fade
