/**
 * @file
 * Parallel batched shard scheduler. PR 1's MultiCoreSystem ticked its
 * shards in lockstep on one host thread, so simulated cores scaled
 * while wall-clock did not. This scheduler decouples the shards the
 * same way FADE decouples the application core from the monitor —
 * through bounded buffering with deferred, ordered merging:
 *
 *  - Each {core, event queue, FADE, MD cache, monitor} shard advances
 *    in bounded slices (SchedulerConfig::sliceTicks cycles per slice).
 *  - Within a slice a shard is fully self-contained: the shared
 *    last-level cache — one slice per cluster behind the home-node
 *    directory (mem/directory.hh) — is reached through the shard's
 *    DirectoryPort routing into one SliceL2View per slice
 *    (mem/cache.hh), each reading a frozen snapshot and logging the
 *    shard's traffic.
 *  - At the slice barrier the scheduler replays every shard's logs
 *    into the real slices in fixed shard order (slices in index order
 *    within a shard) and folds the slice's hit/miss counts into the
 *    shared counters, then rebases all views on the merged state.
 *
 * Determinism argument: a slice's outcome is a pure function of (L2
 * state at the last barrier, the shard's own private state), so the
 * interleaving of host threads cannot influence any simulated value,
 * and the barrier merge is executed in fixed shard order on one
 * thread. Hence SchedulerPolicy::ParallelBatched produces bit-identical
 * per-shard and aggregate statistics to SchedulerPolicy::Lockstep,
 * which runs the very same slice protocol sequentially. Cross-shard L2
 * interference (evictions between shards) is modelled at slice
 * granularity rather than cycle granularity — the standard
 * bound-and-weave trade made by parallel architecture simulators.
 *
 * With one shard the slice protocol is exact, not just deterministic:
 * the merged L2 state and statistics equal direct execution bit for
 * bit, which keeps the N=1 sharded system identical to the legacy
 * single-core MonitoringSystem for every policy and slice size.
 */

#ifndef FADE_SYSTEM_SCHEDULER_HH
#define FADE_SYSTEM_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "sim/stats.hh"
#include "system/system.hh"

namespace fade
{

/** How the scheduler executes the slices of one epoch. */
enum class SchedulerPolicy : std::uint8_t
{
    /** Slices run sequentially in shard order on the calling thread.
     *  The reference semantics; zero threading. */
    Lockstep,
    /** Slices run concurrently on a persistent worker pool; merge at
     *  the barrier is unchanged. Bit-identical to Lockstep. */
    ParallelBatched,
};

/** Scheduler knobs (MultiCoreConfig::scheduler). */
struct SchedulerConfig
{
    SchedulerPolicy policy = SchedulerPolicy::Lockstep;
    /**
     * Cycles each shard advances between barriers. Larger slices
     * amortize barrier synchronization (better host scaling) but
     * coarsen cross-shard L2 interference; 1k-10k is the useful range.
     * Simulated results depend on this value (interference
     * granularity) but never on the policy or host thread count.
     */
    std::uint64_t sliceTicks = 4096;
    /** Worker threads for ParallelBatched; 0 = one per shard, capped
     *  at the host's hardware concurrency. */
    unsigned hostThreads = 0;
};

/** Host-side accounting of one scheduler (simulation-invisible). */
struct SchedulerStats
{
    /** Slice barriers executed. */
    std::uint64_t epochs = 0;
    /** Shard-slices executed (<= epochs * shards). */
    std::uint64_t slices = 0;
    /** Total shard cycles ticked under the scheduler. */
    std::uint64_t ticks = 0;
    /** Wall-clock seconds spent inside run(). */
    double wallSeconds = 0.0;
    /** Per-epoch wall-clock seconds (mean/min/max/stddev). */
    RunningStat epochWall;
};

/**
 * Drives one shard in bounded slices against its per-slice
 * SliceL2Views, reached through the shard's DirectoryPort. The
 * scheduler owns one runner per shard; runSlice() is the only method
 * invoked from worker threads.
 */
class ShardRunner
{
  public:
    /**
     * @param sys      the shard (not owned)
     * @param dir      the clustered LLC the views overlay
     * @param cluster  the shard's home cluster
     */
    ShardRunner(MonitoringSystem &sys, HomeDirectory &dir,
                unsigned cluster);

    /** Arm a run: retire @p instructions more, with a fresh tick
     *  budget. */
    void beginRun(std::uint64_t instructions);

    /** Has this shard retired its run target? */
    bool
    done() const
    {
        return sys_.retired() >= target_;
    }

    /**
     * Advance the shard by at most @p maxTicks cycles, stopping early
     * at the run target. Worker-thread safe: touches only this shard's
     * state and the frozen L2 snapshot through the view.
     */
    void runSlice(std::uint64_t maxTicks);

    /** Replay this slice's L2 traffic (barrier; fixed shard order,
     *  slices in index order). */
    void commitSlice();

    /** Rebase the views on the merged slices (barrier, after all
     *  commits). */
    void beginEpoch();

    /**
     * Route the shard's L2 traffic through the per-slice views / back
     * to the real slices. Both paths go through the DirectoryPort, so
     * home routing and the remote-cluster penalty apply identically
     * inside and outside scheduled runs.
     */
    void attach();
    void detach();

    /** Cycles ticked since beginRun() (deadlock accounting). */
    std::uint64_t ticksUsed() const { return ticksUsed_; }

    /** Local/remote slice routing counters of this shard's port. */
    const DirectoryPortStats &routeStats() const { return port_.stats(); }
    void resetRouteStats() { port_.resetStats(); }

  private:
    MonitoringSystem &sys_;
    DirectoryPort port_;
    /** One COW view per LLC slice (index = cluster). */
    std::vector<std::unique_ptr<SliceL2View>> views_;
    std::uint64_t target_ = 0;
    std::uint64_t ticksUsed_ = 0;
};

/**
 * Runs N shards to a per-shard instruction target under the configured
 * policy. Construction is cheap; the ParallelBatched worker pool is
 * started lazily on the first parallel run() and joined in the
 * destructor.
 *
 * Thread-safety contract: run(), resetStats() and stats() must be
 * called from one thread (the owner's). Workers only ever execute
 * ShardRunner::runSlice between barriers; every merge step
 * (commitSlice, beginEpoch, stat rollups) happens on the calling
 * thread with workers quiescent, so simulated state needs no locks.
 */
class ShardScheduler
{
  public:
    /**
     * @param cfg       policy, slice length, worker count
     * @param shards    one MonitoringSystem per shard (not owned)
     * @param dir       the clustered LLC behind all shards
     * @param clusters  home cluster of each shard (same length as
     *                  @p shards)
     */
    ShardScheduler(const SchedulerConfig &cfg,
                   std::vector<MonitoringSystem *> shards,
                   HomeDirectory &dir,
                   const std::vector<unsigned> &clusters);
    ~ShardScheduler();

    ShardScheduler(const ShardScheduler &) = delete;
    ShardScheduler &operator=(const ShardScheduler &) = delete;

    /**
     * Advance every shard by @p instructions retired instructions,
     * slicing and merging per the policy. Panics (like the legacy
     * lockstep loop) if a shard exceeds sliceCycleLimit() without
     * reaching its target. @p what names the phase in diagnostics.
     * Equivalent to beginRun() + stepEpochs(until done).
     */
    void run(std::uint64_t instructions, const char *what);

    /**
     * Resumable form of run(): arm a run toward @p instructions more
     * retired instructions per shard, then advance it with
     * stepEpochs(). Epoch boundaries — and therefore every simulated
     * value — are identical whether the run is stepped in one call or
     * many: stepEpochs(k) executes exactly the first k epochs the
     * monolithic loop would have. The monitoring daemon interleaves
     * many sessions this way, yielding between sessions at epoch
     * granularity (daemon/sessionpool.hh).
     */
    void beginRun(std::uint64_t instructions, const char *what);

    /**
     * Execute at most @p maxEpochs slice epochs of the armed run.
     * @return true when every shard has reached its target (the run is
     * finished and detached; wall-clock accounting is folded into
     * stats()). Panics if called without an armed run.
     */
    bool stepEpochs(std::uint64_t maxEpochs);

    /** An armed run has not finished yet (beginRun() called, last
     *  stepEpochs() returned false). */
    bool runActive() const { return running_; }

    const SchedulerConfig &config() const { return cfg_; }
    const SchedulerStats &stats() const { return stats_; }
    void resetStats() { stats_ = SchedulerStats{}; }

    /** Shard @p i's runner (route-stat collection). */
    ShardRunner &runner(unsigned i) { return *runners_.at(i); }

    /** Worker threads a parallel epoch uses (1 when sequential). */
    unsigned workerCount() const;

  private:
    void runEpoch();
    void startWorkers();
    void workerLoop(unsigned worker);

    SchedulerConfig cfg_;
    std::vector<std::unique_ptr<ShardRunner>> runners_;
    SchedulerStats stats_;

    /** Armed-run state (beginRun()/stepEpochs()). */
    bool running_ = false;
    const char *what_ = "";
    std::uint64_t cycleLimit_ = 0;
    std::chrono::steady_clock::time_point runT0_;

    /** Worker pool (ParallelBatched only; empty until first use). */
    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::uint64_t epochSeq_ = 0;
    std::uint64_t epochTicks_ = 0;
    unsigned pending_ = 0;
    bool stop_ = false;
};

} // namespace fade

#endif // FADE_SYSTEM_SCHEDULER_HH
