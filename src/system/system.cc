#include "system/system.hh"

#include "sim/logging.hh"
#include "system/pipeline.hh"
#include "system/rungrain.hh"
#include "trace/threads.hh"
#include "trace/tracefile.hh"

namespace fade
{

MonitoringSystem::MonitoringSystem(const SystemConfig &cfg,
                                   const BenchProfile &profile,
                                   Monitor *mon)
    : MonitoringSystem(cfg, profile, mon, nullptr)
{
}

MonitoringSystem::MonitoringSystem(const SystemConfig &cfg,
                                   const BenchProfile &profile,
                                   Monitor *mon, Cache *sharedL2)
    : cfg_(cfg),
      mon_(mon),
      ctx_(mon ? mon->shadowDefault() : 0),
      ownedL2_(sharedL2 ? nullptr
                        : std::make_unique<Cache>(l2Params(), nullptr,
                                                  dramLatency)),
      l2_(sharedL2 ? sharedL2 : ownedL2_.get()),
      appL1_(l1Params("app-l1d"), l2_),
      monL1_(l1Params("mon-l1d"), l2_),
      eq_(cfg.eqCapacity),
      ueq_(cfg.ueqCapacity)
{
    // Shards reuse the same virtual address ranges; salt every timing
    // access so identical addresses from different shards occupy
    // distinct lines in the shared L2 (as distinct physical pages
    // would). The high bits keep shard spaces disjoint; the hashed
    // bits [6,32) spread each shard's hot blocks across cache sets so
    // same-address lines do not all pile into one L2 set. Low 6 bits
    // stay clear to preserve block alignment. Shard 0 is salt-free,
    // keeping the legacy path identical.
    std::uint64_t salt =
        (std::uint64_t(cfg_.shardId) << 40) |
        ((std::uint64_t(cfg_.shardId) * 0x9E3779B97F4A7C15ULL) &
         0xFFFFFFC0ULL);
    // Threads of one multi-threaded process share an address space:
    // identical addresses on different shards ARE the same physical
    // data (the shared heap), so process-mode shards run salt-free.
    if (profile.procThreads > 0)
        salt = 0;
    appL1_.setAddrSalt(salt);
    monL1_.setAddrSalt(salt);

    // The application instruction source: a captured trace stream when
    // replaying, the synthetic generator otherwise, optionally teed to
    // a capture file. The core sees one InstSource either way, and the
    // capture tee forwards every call verbatim, so neither mode
    // perturbs timing or the generator's RNG draw order.
    InstSource *appSrc = nullptr;
    WorkloadLayout layout;
    if (cfg_.traceIn) {
        fatal_if(cfg_.shardId >= cfg_.traceIn->numStreams(),
                 "trace '", cfg_.traceIn->path(), "' has ",
                 cfg_.traceIn->numStreams(), " streams, no stream for "
                 "shard ", unsigned(cfg_.shardId));
        const TraceStreamMeta &m = cfg_.traceIn->stream(cfg_.shardId);
        fatal_if(m.profile != profile.name || m.seed != profile.seed ||
                     m.numThreads != profile.numThreads ||
                     m.procThreads != profile.procThreads,
                 "trace stream ", unsigned(cfg_.shardId),
                 " was captured from workload '", m.profile, "' (seed ",
                 m.seed, ", ", m.numThreads, " threads, ",
                 m.procThreads, " process threads) but this shard "
                 "runs '", profile.name, "' (seed ", profile.seed, ", ",
                 profile.numThreads, " threads, ", profile.procThreads,
                 " process threads)");
        replay_ = std::make_unique<ReplaySource>(*cfg_.traceIn,
                                                 cfg_.shardId);
        appSrc = replay_.get();
        layout = m.layout;
    } else if (profile.procThreads > 0) {
        tgen_ = std::make_unique<ThreadedSource>(profile);
        appSrc = tgen_.get();
        layout = tgen_->layout();
    } else {
        gen_ = std::make_unique<TraceGenerator>(profile);
        appSrc = gen_.get();
        layout = gen_->layout();
    }
    if (cfg_.traceOut) {
        TraceStreamMeta meta;
        meta.profile = profile.name;
        meta.seed = profile.seed;
        meta.numThreads = profile.numThreads;
        meta.procThreads = profile.procThreads;
        meta.layout = layout;
        unsigned sid = cfg_.traceOut->addStream(meta);
        panic_if(sid != cfg_.shardId,
                 "capture stream ", sid, " registered for shard ",
                 unsigned(cfg_.shardId),
                 " (shards built out of order?)");
        capture_ = std::make_unique<CaptureSource>(*appSrc,
                                                   *cfg_.traceOut, sid);
        appSrc = capture_.get();
    }

    if (mon_) {
        ctx_.regMd.fill(mon_->regMdInit());
        mon_->initShadow(ctx_, layout);
    }

    if (mon_ && cfg_.accelerated && !cfg_.perfectConsumer) {
        fades_ = std::make_unique<FadeGroup>(cfg_.fadesPerShard,
                                             cfg_.fade, ctx_, l2_,
                                             cfg_.shardId);
        for (unsigned u = 0; u < fades_->size(); ++u) {
            Fade &f = fades_->unit(u);
            f.mdCache().setAddrSalt(salt);
            mon_->programFade(f.eventTable(), f.invRf());
            // Non-critical bookkeeping for SUU-handled stack updates.
            f.onStackUpdate = [this](const MonEvent &ev) {
                UnfilteredEvent u;
                u.ev = ev;
                mon_->handleEvent(u, ctx_);
            };
        }
        fades_->bind(&eq_, &ueq_);
    }

    producer_ = std::make_unique<EventProducer>(
        mon_, mon_ ? &eq_ : nullptr, fades_.get(), cfg_.shardId);

    if (mon_ && !cfg_.perfectConsumer) {
        if (cfg_.accelerated) {
            mproc_ = std::make_unique<MonitorProcess>(
                *mon_, ctx_, fades_.get(), &ueq_, nullptr);
        } else {
            mproc_ = std::make_unique<MonitorProcess>(*mon_, ctx_,
                                                      nullptr, nullptr,
                                                      &eq_);
        }
    }

    if (cfg_.twoCore && mproc_) {
        appCore_ = std::make_unique<Core>(cfg_.core, &appL1_);
        appCore_->addThread(appSrc, producer_.get());
        monCore_ = std::make_unique<Core>(cfg_.core, &monL1_);
        monCore_->addThread(mproc_.get(), mproc_.get());
    } else {
        appCore_ = std::make_unique<Core>(cfg_.core, &appL1_);
        appCore_->addThread(appSrc, producer_.get());
        if (mproc_)
            appCore_->addThread(mproc_.get(), mproc_.get());
    }

    if (cfg_.engine == Engine::Batched)
        driver_ = std::make_unique<PipelineDriver>(*this);
    else if (cfg_.engine == Engine::RunGrain)
        rg_ = std::make_unique<RunGrainDriver>(*this);
}

const char *
engineName(Engine e)
{
    switch (e) {
      case Engine::PerCycle:
        return "percycle";
      case Engine::Batched:
        return "batched";
      case Engine::RunGrain:
        return "rungrain";
    }
    return "unknown";
}

Engine
parseEngine(const std::string &name)
{
    if (name == "percycle")
        return Engine::PerCycle;
    if (name == "batched")
        return Engine::Batched;
    if (name == "rungrain")
        return Engine::RunGrain;
    fatal("unknown engine '", name,
          "' (expected percycle, batched or rungrain)");
}

MonitoringSystem::~MonitoringSystem() = default;

TraceGenerator &
MonitoringSystem::generator()
{
    panic_if(!gen_, "no trace generator (replay-driven system)");
    return *gen_;
}

void
MonitoringSystem::flushCapture()
{
    if (capture_)
        capture_->flush();
}

void
MonitoringSystem::tickAll()
{
    appCore_->tick(now_);
    if (fades_)
        fades_->tick(now_);
    if (monCore_)
        monCore_->tick(now_);
    if (cfg_.perfectConsumer && !eq_.empty()) {
        eq_.pop();
        ++perfectConsumed_;
    }
    ++now_;
}

void
MonitoringSystem::tickOnce()
{
    tickAll();
}

void
MonitoringSystem::drain()
{
    // Let in-flight events and handlers complete so that measurement
    // boundaries do not leak work across slices. Monitored retirement
    // is paused so the (infinite) application stream stops producing.
    producer_->pause(true);
    Cycle limit = now_ + 2000000;
    auto quiet = [this] {
        if (!eq_.empty() || !ueq_.empty())
            return false;
        if (fades_ && !fades_->quiesced())
            return false;
        if (mproc_ && !mproc_->idle())
            return false;
        return true;
    };
    while (!quiet() && now_ < limit)
        tickAll();
    producer_->pause(false);
    panic_if(!quiet(), "monitoring system failed to drain");
}

void
MonitoringSystem::setL2Port(MemPort *port)
{
    MemPort *p = port ? port : l2_;
    appL1_.setNext(p);
    monL1_.setNext(p);
    if (fades_)
        fades_->setNext(p);
}

void
MonitoringSystem::resetStats()
{
    appCore_->resetStats();
    if (monCore_)
        monCore_->resetStats();
    if (fades_)
        fades_->resetStats();
    if (mproc_)
        mproc_->resetStats();
    producer_->resetStats();
    eq_.resetStats();
    ueq_.resetStats();
    appL1_.resetStats();
    monL1_.resetStats();
    if (ownedL2_)
        ownedL2_->resetStats();
    perfectConsumed_ = 0;
    if (rg_)
        rg_->onResetStats();
}

std::uint64_t
MonitoringSystem::retired() const
{
    return producer_->retired();
}

std::uint64_t
MonitoringSystem::produced() const
{
    return producer_->produced();
}

std::vector<std::uint64_t>
MonitoringSystem::functionalFingerprint()
{
    std::vector<std::uint64_t> fp = {producer_->retired(),
                                     producer_->produced()};
    if (mproc_) {
        fp.push_back(mproc_->stats().instructions);
        fp.push_back(mproc_->stats().handlers);
    } else {
        fp.insert(fp.end(), {0, 0});
    }
    if (fades_)
        fades_->finalizeBursts();
    const FadeStats f = fadeStats();
    fp.insert(fp.end(),
              {f.instEvents, f.filtered, f.filteredCC, f.filteredRU,
               f.partialPass, f.partialFail, f.unfiltered, f.stackEvents,
               f.highLevelEvents, f.shots, f.comparisons,
               f.crossShardEvents, f.suuCycles});
    auto hist = [&fp](const Log2Histogram &h) {
        fp.push_back(h.total());
        fp.push_back(h.maxValue());
        for (std::uint64_t b : h.buckets())
            fp.push_back(b);
    };
    hist(f.unfDistance);
    hist(f.unfBurst);
    for (std::uint64_t c : f.filteredById)
        fp.push_back(c);
    for (std::uint64_t c : f.softwareById)
        fp.push_back(c);
    if (mon_) {
        mon_->finish();
        fp.push_back(mon_->reports().size());
    } else {
        fp.push_back(0);
    }
    return fp;
}

void
MonitoringSystem::beginSlice()
{
    resetStats();
    sliceStart_ = now_;
}

RunResult
MonitoringSystem::endSlice()
{
    RunResult r;
    if (rg_)
        rg_->finalizeSlice();
    r.appInstructions = producer_->retired();
    r.cycles = now_ - sliceStart_;
    r.monitoredEvents = producer_->produced();
    r.appIpc = double(r.appInstructions) / double(r.cycles);
    r.monitoredIpc = double(r.monitoredEvents) / double(r.cycles);
    r.appStallCycles = appCore_->threadStats(0).sinkStallCycles;
    if (mproc_) {
        const Core &mc = monCore_ ? *monCore_ : *appCore_;
        unsigned monTid = monCore_ ? 0 : 1;
        r.monIdleCycles = mc.threadStats(monTid).idleCycles;
        r.handlerInstructions = mproc_->stats().instructions;
        r.handlersRun = mproc_->stats().handlers;
    }
    if (fades_)
        fades_->finalizeBursts();
    if (mon_)
        mon_->finish();
    return r;
}

std::uint64_t
MonitoringSystem::advance(std::uint64_t maxCycles,
                          std::uint64_t targetRetired)
{
    if (rg_)
        return rg_->runUntil(maxCycles, targetRetired);
    if (driver_)
        return driver_->runUntil(maxCycles, targetRetired);
    Cycle start = now_;
    Cycle end = now_ + maxCycles;
    while (now_ < end && producer_->retired() < targetRetired)
        tickAll();
    return now_ - start;
}

void
MonitoringSystem::runUntilRetired(std::uint64_t instructions,
                                  const char *what)
{
    std::uint64_t target = producer_->retired() + instructions;
    advance(sliceCycleLimit(instructions), target);
    panic_if(producer_->retired() < target,
             what, " failed to make progress (deadlock?)");
}

void
MonitoringSystem::warmup(std::uint64_t instructions)
{
    runUntilRetired(instructions, "warmup");
    drain();
    resetStats();
}

RunResult
MonitoringSystem::run(std::uint64_t instructions)
{
    beginSlice();
    runUntilRetired(instructions, "run");
    return endSlice();
}

} // namespace fade
