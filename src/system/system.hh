/**
 * @file
 * End-to-end monitoring system assembly (Fig. 8 of the paper). Supports
 * four configurations:
 *  - two-core, single-threaded cores: application core + monitor core,
 *    FADE next to the monitor core (Fig. 8(a));
 *  - single-core, dual-threaded: one SMT core hosting both the
 *    application and the monitor thread (Fig. 8(b));
 *  - the unaccelerated variants of both, where the application and the
 *    monitor communicate through a single queue; and
 *  - the unmonitored baseline used for slowdown normalization.
 *
 * Methodology mirrors the paper: a warmup slice runs first (caches,
 * MD cache, and metadata state warm), statistics are then reset, and
 * the measurement slice follows.
 */

#ifndef FADE_SYSTEM_SYSTEM_HH
#define FADE_SYSTEM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fade.hh"
#include "cpu/core.hh"
#include "mem/cache.hh"
#include "monitor/context.hh"
#include "monitor/monitor.hh"
#include "monitor/process.hh"
#include "sim/queue.hh"
#include "system/producer.hh"
#include "system/topology.hh"
#include "trace/generator.hh"

namespace fade
{

class CaptureSource;
class PipelineDriver;
class RunGrainDriver;
class ReplaySource;
class ThreadedSource;
class TraceReader;
class TraceWriter;

/**
 * Intra-shard execution engine. PerCycle and Batched produce
 * bit-identical statistics (tests/test_pipeline.cc) and differ only in
 * wall-clock cost. RunGrain additionally replaces per-cycle timing with
 * closed-form recurrences between monitor-visible events: it preserves
 * every functional result bit for bit (instruction stream, event
 * stream, filter verdicts, handler counts, bug reports — the
 * functionalFingerprint() subset) but models timing counters with its
 * own deterministic equations (docs/ARCHITECTURE.md, "Run-grain
 * engine").
 */
enum class Engine : std::uint8_t
{
    /** Reference semantics: every component ticks every cycle
     *  (tickOnce()). */
    PerCycle,
    /** Run-to-stall batched engine: the pipeline driver
     *  (system/pipeline.hh) steps components through active cycles
     *  with allocation-free fused stepping and fast-forwards provably
     *  frozen spans with exact batch accounting. */
    Batched,
    /** Run-grain engine (system/rungrain.hh): closed-form dispatch /
     *  commit / filter-pipeline timing between monitor-visible events;
     *  functional results identical to PerCycle, timing counters
     *  modeled (deterministic, pinned by their own goldens). */
    RunGrain,
};

/** Printable engine name ("percycle", "batched", "rungrain"). */
const char *engineName(Engine e);

/** Parse an engine name as printed by engineName(); fatal on junk. */
Engine parseEngine(const std::string &name);

/** Full system configuration. */
struct SystemConfig
{
    CoreParams core = aggressiveOooParams();
    /** FADE present (false = unaccelerated software monitoring). */
    bool accelerated = true;
    /** Two cores (app + monitor) vs one dual-threaded core. */
    bool twoCore = false;
    /** Replace the consumer with an ideal 1-event/cycle sink (the
     *  Fig. 3 queue-occupancy study). */
    bool perfectConsumer = false;
    FadeParams fade;
    std::size_t eqCapacity = 32;  ///< 0 = unbounded
    std::size_t ueqCapacity = 16;
    /** Home shard id in a sharded multi-core system (0 = single-core).
     *  Stamped into every produced event and checked by FADE. */
    std::uint8_t shardId = 0;
    /** Intra-shard execution engine (results are engine-invariant). */
    Engine engine = Engine::PerCycle;
    /**
     * Run-grain batched functional fast path: consume staged
     * instruction spans (InstSource::fetchSpan) with bulk event
     * extraction (EventProducer::commitSpan) instead of per-
     * instruction round-trips. Results are bit-identical either way
     * (enforced by tests and the release CI fingerprint check); false
     * forces the per-instruction path. The FADE_NO_SPAN environment
     * variable (any value) also forces it off, so benchmarks can A/B
     * the two paths without a config plumb-through.
     */
    bool spanFastPath = true;
    /**
     * Filter units behind this shard's event queue (FadeGroup,
     * system/topology.hh). 1 = the classic single-FADE shard,
     * unchanged bit for bit; > 1 adds round-robin event steering
     * across K units with group-serialized stack/high-level events.
     * Ignored (no units built) in unaccelerated / perfect-consumer /
     * unmonitored configurations.
     */
    unsigned fadesPerShard = 1;
    /**
     * Replay: serve the application instruction stream from stream
     * `shardId` of this captured trace (trace/tracefile.hh) instead of
     * synthesizing it — no TraceGenerator is built, and the stream's
     * recorded workload must match the profile the system is given
     * (fatal on mismatch). Not owned.
     */
    const TraceReader *traceIn = nullptr;
    /**
     * Capture: tee the application stream to stream `shardId` of this
     * writer (the system registers the stream during construction, so
     * shards must be built in shard-id order). Composes with traceIn
     * (re-capturing a replay). Not owned.
     */
    TraceWriter *traceOut = nullptr;
};

/**
 * Deadlock bound for driving a warmup or measured slice: a generous
 * cycles-per-instruction cap after which the driver panics instead of
 * spinning forever. Shared by the single-core run loops and the
 * multi-core lockstep rounds (one round = one cycle per shard).
 */
constexpr Cycle
sliceCycleLimit(std::uint64_t instructions)
{
    return instructions * 400 + 1000000;
}

/** Results of one measured run. */
struct RunResult
{
    std::uint64_t appInstructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t monitoredEvents = 0;
    double appIpc = 0.0;
    double monitoredIpc = 0.0;
    /** Cycles the app thread stalled on a full event queue. */
    std::uint64_t appStallCycles = 0;
    /** Cycles the monitor thread had no work. */
    std::uint64_t monIdleCycles = 0;
    std::uint64_t handlerInstructions = 0;
    std::uint64_t handlersRun = 0;
};

/**
 * One monitored (or baseline) system instance. The monitor is owned by
 * the caller so its accumulated functional state (bug reports, leak
 * contexts) can outlive the system.
 */
class MonitoringSystem
{
  public:
    /**
     * @param cfg      system configuration
     * @param profile  workload profile for the trace generator
     * @param mon      lifeguard, or nullptr for the unmonitored baseline
     */
    MonitoringSystem(const SystemConfig &cfg, const BenchProfile &profile,
                     Monitor *mon);

    /**
     * Shard constructor: identical to the above, but the L2 is shared
     * with other shards instead of privately owned (multi-core CMP).
     * @param sharedL2  shared last-level cache (nullptr = private L2)
     */
    MonitoringSystem(const SystemConfig &cfg, const BenchProfile &profile,
                     Monitor *mon, Cache *sharedL2);

    ~MonitoringSystem();

    /** Run @p instructions app instructions without collecting stats. */
    void warmup(std::uint64_t instructions);

    /** Run a measured slice of @p instructions app instructions. */
    RunResult run(std::uint64_t instructions);

    /**
     * Externally driven slice protocol (used by the shard scheduler,
     * which drives shards in bounded slices): beginSlice() zeroes
     * statistics and marks the slice start; the driver then ticks via
     * tickOnce() until retired() reaches its target; endSlice()
     * collects the results exactly as run() does. run() itself is
     * implemented on top of these.
     *
     * Thread-safety contract: a system instance is single-threaded.
     * The parallel scheduler may call tickOnce() from a worker thread
     * because each shard is self-contained except for the shared L2,
     * which it reaches through a SliceL2View (see setL2Port); the L2
     * itself is only mutated at slice barriers. beginSlice(),
     * endSlice(), drain() and resetStats() must be called with no
     * worker driving the instance.
     */
    void beginSlice();
    RunResult endSlice();

    /**
     * Redirect every L2-facing port of this shard (both L1s and the
     * MD cache) to @p port, or back to the real L2 when @p port is
     * null. The shard scheduler installs a SliceL2View here for the
     * duration of a scheduled run so that concurrent shard slices
     * never touch the shared L2 directly.
     */
    void setL2Port(MemPort *port);

    /** App instructions retired since the last statistics reset. */
    std::uint64_t retired() const;

    /** Monitored events produced since the last statistics reset. */
    std::uint64_t produced() const;

    /** Let in-flight events and handlers complete (producer paused). */
    void drain();

    /**
     * The engine-invariant functional fingerprint: every value a run
     * produces that does not depend on the timing model — retirement
     * and event counts, filter verdicts, SUU work, handler work, the
     * event-indexed unfiltered histograms, and monitor reports. The
     * run-grain engine reproduces this vector bit for bit against the
     * per-cycle reference when both cover the same instruction window
     * (docs/ARCHITECTURE.md, "Run-grain engine"). Call it once, after
     * the system is quiesced with drain(): it finishes the monitor
     * (end-of-run sweeps such as MemLeak's) before reading reports.
     */
    std::vector<std::uint64_t> functionalFingerprint();

    /** Zero every statistics counter in the system. */
    void resetStats();

    /** The trace generator (bug injection for examples/tests).
     *  Panics on a replay-driven system, which has none. */
    TraceGenerator &generator();

    /** The replay source, or nullptr when generating live. */
    ReplaySource *replaySource() { return replay_.get(); }

    /** Emit this shard's buffered capture records as one trace block
     *  (no-op without capture). The shard scheduler calls this at
     *  every slice barrier so captured files are byte-identical
     *  across scheduler policies and worker counts. */
    void flushCapture();

    /** First filter unit, or nullptr when unaccelerated. With
     *  fadesPerShard > 1 this is unit 0 only — use fadeGroup() /
     *  fadeStats() for whole-shard filtering state. */
    Fade *fade() { return fades_ ? &fades_->unit(0) : nullptr; }
    /** The shard's filter-unit group (nullptr when unaccelerated). */
    FadeGroup *fadeGroup() { return fades_.get(); }
    const FadeGroup *fadeGroup() const { return fades_.get(); }
    /** Filtering counters merged over all units (empty when
     *  unaccelerated). */
    FadeStats fadeStats() const
    {
        return fades_ ? fades_->stats() : FadeStats{};
    }
    Monitor *monitor() { return mon_; }
    MonitorContext &context() { return ctx_; }
    const BoundedQueue<MonEvent> &eventQueue() const { return eq_; }
    const BoundedQueue<UnfilteredEvent> &unfilteredQueue() const
    {
        return ueq_;
    }
    const MonitorProcess *monitorProcess() const { return mproc_.get(); }
    Cycle now() const { return now_; }

    /** The run-to-stall driver, or nullptr under Engine::PerCycle
     *  (host-side accounting; include system/pipeline.hh to use). */
    const PipelineDriver *pipelineDriver() const { return driver_.get(); }

    /** The run-grain driver, or nullptr unless Engine::RunGrain
     *  (include system/rungrain.hh to use). */
    const RunGrainDriver *runGrainDriver() const { return rg_.get(); }

    /** Advance the whole system by one cycle (tests). */
    void tickOnce();

    /**
     * Advance by at most @p maxCycles cycles, stopping as soon as
     * @p targetRetired app instructions have retired since the last
     * statistics reset — through the configured engine: the per-cycle
     * reference loop, or the run-to-stall pipeline driver. Both stop at
     * exactly the same cycle with exactly the same machine state.
     * Used by run()/warmup() and by the shard scheduler's bounded
     * slices (ShardRunner::runSlice).
     * @return the number of simulated cycles consumed.
     */
    std::uint64_t advance(std::uint64_t maxCycles,
                          std::uint64_t targetRetired);

  private:
    friend class PipelineDriver;
    friend class RunGrainDriver;

    void tickAll();
    /** Tick until @p instructions more retire (shared by warmup/run). */
    void runUntilRetired(std::uint64_t instructions, const char *what);

    SystemConfig cfg_;
    Monitor *mon_;
    MonitorContext ctx_;

    /** Private L2 when not sharing one with other shards. */
    std::unique_ptr<Cache> ownedL2_;
    Cache *l2_;
    Cache appL1_;
    Cache monL1_;

    std::unique_ptr<TraceGenerator> gen_;
    /** Multi-threaded process source (profile.procThreads > 0). */
    std::unique_ptr<ThreadedSource> tgen_;
    /** Trace-driven replacements/decorators of gen_ (traceIn/Out). */
    std::unique_ptr<ReplaySource> replay_;
    std::unique_ptr<CaptureSource> capture_;
    BoundedQueue<MonEvent> eq_;
    BoundedQueue<UnfilteredEvent> ueq_;

    std::unique_ptr<FadeGroup> fades_;
    std::unique_ptr<MonitorProcess> mproc_;
    std::unique_ptr<EventProducer> producer_;

    std::unique_ptr<Core> appCore_; ///< also the single shared core
    std::unique_ptr<Core> monCore_; ///< two-core config only

    /** Run-to-stall driver (Engine::Batched only). */
    std::unique_ptr<PipelineDriver> driver_;
    /** Run-grain driver (Engine::RunGrain only). */
    std::unique_ptr<RunGrainDriver> rg_;

    Cycle now_ = 0;
    Cycle sliceStart_ = 0;
    std::uint64_t perfectConsumed_ = 0;
};

} // namespace fade

#endif // FADE_SYSTEM_SYSTEM_HH
