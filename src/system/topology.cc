#include "system/topology.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fade
{

namespace
{

/** Inlet depth per unit: a staging pair, enough to overlap steering
 *  with the unit's ETR pop without buffering whole bursts ahead of the
 *  rotation (which would blur the strict round-robin order the model
 *  promises). */
constexpr std::size_t inletCapacity = 2;

} // namespace

unsigned
Topology::resolveShards(unsigned numShards) const
{
    fatal_if(clusters == 0, "topology: clusters must be >= 1");
    fatal_if(fadesPerShard == 0 || fadesPerShard > maxFadesPerShard,
             "topology: fadesPerShard must be in [1, ",
             maxFadesPerShard, "]");
    if (shardsPerCluster != 0)
        return clusters * shardsPerCluster;
    fatal_if(numShards == 0, "topology: numShards must be >= 1");
    fatal_if(numShards % clusters != 0,
             "topology: numShards (", numShards,
             ") must divide evenly across ", clusters, " clusters");
    return numShards;
}

FadeGroup::FadeGroup(unsigned units, const FadeParams &p,
                     MonitorContext &ctx, Cache *l2,
                     std::uint8_t shardId)
{
    fatal_if(units == 0 || units > maxFadesPerShard,
             "FadeGroup: unit count must be in [1, ", maxFadesPerShard,
             "]");
    for (unsigned u = 0; u < units; ++u) {
        units_.push_back(std::make_unique<Fade>(p, ctx, l2));
        units_.back()->setShard(shardId);
    }
    steered_.assign(units, 0);
}

void
FadeGroup::bind(BoundedQueue<MonEvent> *eq,
                BoundedQueue<UnfilteredEvent> *ueq)
{
    eq_ = eq;
    ueq_ = ueq;
    if (units_.size() == 1) {
        // Transparent single-unit wiring: the unit consumes the
        // shard's EQ directly, exactly like the pre-topology system.
        units_[0]->bind(eq, ueq);
        return;
    }
    for (auto &u : units_) {
        inlets_.push_back(
            std::make_unique<BoundedQueue<MonEvent>>(inletCapacity));
        u->bind(inlets_.back().get(), ueq);
    }
}

bool
FadeGroup::allQuiesced() const
{
    for (const auto &u : units_)
        if (!u->quiesced())
            return false;
    return true;
}

void
FadeGroup::steer()
{
    // Strict rotation: event i of the shard's stream goes to unit
    // i mod K, at most one event per unit per cycle, head-of-line
    // blocking on a full inlet. Stack-update and high-level events
    // serialize the whole group (class comment / docs/TOPOLOGY.md).
    for (unsigned moved = 0; moved < units_.size(); ++moved) {
        if (serialUnit_ >= 0) {
            if (!units_[unsigned(serialUnit_)]->quiesced())
                return;
            serialUnit_ = -1;
        }
        if (eq_->empty())
            return;
        const MonEvent &head = eq_->front();
        bool serial = !head.isInst();
        if (serial && !allQuiesced())
            return;
        BoundedQueue<MonEvent> &inlet = *inlets_[rr_];
        if (inlet.full())
            return;
        MonEvent *slot = inlet.pushSlot();
        *slot = head;
        slot->unit = std::uint8_t(rr_);
        eq_->popRun(1);
        ++steered_[rr_];
        if (serial) {
            serialUnit_ = int(rr_);
            ++serialized_;
        }
        rr_ = rr_ + 1 == units_.size() ? 0 : rr_ + 1;
    }
}

void
FadeGroup::tick(Cycle now)
{
    if (units_.size() == 1) {
        units_[0]->tick(now);
        return;
    }
    // Steer first so an event can traverse EQ -> inlet -> ETR in the
    // same cycle it would have traversed EQ -> ETR with one unit.
    steer();
    for (auto &u : units_)
        u->tick(now);
}

bool
FadeGroup::steeringActive() const
{
    if (eq_->empty())
        return false;
    if (serialUnit_ >= 0 && !units_[unsigned(serialUnit_)]->quiesced())
        return false; // gate closed until the unit settles
    const MonEvent &head = eq_->front();
    if (!head.isInst())
        return allQuiesced(); // serializer steers only into a quiet group
    return !inlets_[rr_]->full();
}

FadeGroupStallProfile
FadeGroup::stallProfile(Cycle now) const
{
    FadeGroupStallProfile g;
    if (units_.size() == 1) {
        g.units[0] = units_[0]->stallProfile(now);
        g.active = g.units[0].active;
        g.wakeAt = g.units[0].wakeAt;
        return g;
    }
    if (steeringActive())
        return g; // active = true
    g.active = false;
    for (unsigned i = 0; i < units_.size(); ++i) {
        g.units[i] = units_[i]->stallProfile(now);
        if (g.units[i].active) {
            g.active = true;
            return g;
        }
        g.wakeAt = std::min(g.wakeAt, g.units[i].wakeAt);
    }
    return g;
}

void
FadeGroup::skipCycles(const FadeGroupStallProfile &p, std::uint64_t n)
{
    for (unsigned i = 0; i < units_.size(); ++i)
        units_[i]->skipCycles(p.units[i], n);
}

FadeGroup::RunGrainSteered
FadeGroup::processEventRunGrain(MonEvent ev)
{
    RunGrainSteered s;
    if (units_.size() == 1) {
        // Transparent wrapper: no steering, no steered_ accounting
        // (matches the per-cycle single-unit group exactly).
        s.unit = 0;
        s.outcome = units_[0]->processEventRunGrain(ev);
        return s;
    }
    // Strict rotation, serial events included: with the group quiescent
    // between calls, steer() would pass its serializer/allQuiesced/
    // inlet gates immediately and pick rr_ for every event class.
    s.unit = rr_;
    ev.unit = std::uint8_t(rr_);
    ++steered_[rr_];
    if (!ev.isInst())
        ++serialized_;
    rr_ = rr_ + 1 == units_.size() ? 0 : rr_ + 1;
    s.outcome = units_[s.unit]->processEventRunGrain(ev);
    return s;
}

bool
FadeGroup::quiesced() const
{
    // A unit's quiesced() covers its own input queue, which for K > 1
    // is its inlet — so allQuiesced() covers the inlets too.
    return allQuiesced();
}

FadeStats
FadeGroup::stats() const
{
    FadeStats s = units_[0]->stats();
    for (unsigned i = 1; i < units_.size(); ++i)
        s.merge(units_[i]->stats());
    return s;
}

void
FadeGroup::resetStats()
{
    for (auto &u : units_)
        u->resetStats();
    std::fill(steered_.begin(), steered_.end(), 0);
    serialized_ = 0;
}

void
FadeGroup::finalizeBursts()
{
    for (auto &u : units_)
        u->finalizeBursts();
}

void
FadeGroup::setNext(MemPort *port)
{
    for (auto &u : units_)
        u->mdCache().setNext(port);
}

} // namespace fade
