/**
 * @file
 * Clustered system topology: the layer between shards and memory.
 *
 * The flat MultiCoreSystem of PRs 1-4 is one cluster: N shards behind
 * one shared L2, one FADE per shard. This header generalizes both axes
 * (docs/TOPOLOGY.md):
 *
 *  - Topology — `clusters x shardsPerCluster` shards, each cluster with
 *    its own shared-L2 slice behind a home-node directory
 *    (mem/directory.hh) that routes by address hash and charges a
 *    remote-cluster penalty.
 *  - FadeGroup — K filter units per shard behind the shard's one event
 *    queue, with deterministic strict round-robin event steering,
 *    group-serialized stack/high-level events, and merged statistics.
 *
 * Both degenerate exactly: `clusters = 1, fadesPerShard = 1` is the
 * flat system bit for bit (tests/test_topology.cc pins this against
 * pre-refactor golden fingerprints).
 */

#ifndef FADE_SYSTEM_TOPOLOGY_HH
#define FADE_SYSTEM_TOPOLOGY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/fade.hh"
#include "sim/queue.hh"

namespace fade
{

/**
 * Shape of a clustered multi-core monitoring system
 * (MultiCoreConfig::topology). The flat defaults reproduce the
 * pre-topology system exactly.
 */
struct Topology
{
    /** Shared-L2 clusters (each with its own LLC slice). */
    unsigned clusters = 1;
    /**
     * Shards per cluster; 0 derives it from MultiCoreConfig::numShards
     * (which must then divide evenly by @ref clusters). When nonzero it
     * is authoritative: the system has clusters * shardsPerCluster
     * shards regardless of numShards.
     */
    unsigned shardsPerCluster = 0;
    /** Filter units per shard (FadeGroup size), 1..maxFadesPerShard. */
    unsigned fadesPerShard = 1;
    /** Extra cycles to reach a remote cluster's L2 slice. */
    unsigned remoteLatency = 40;

    /** Total shards this topology describes given @p numShards from
     *  the config; validates divisibility (fatal on mismatch). */
    unsigned resolveShards(unsigned numShards) const;

    /** Cluster of @p shard under block assignment: shards
     *  [c*spc, (c+1)*spc) form cluster c. */
    unsigned
    clusterOf(unsigned shard, unsigned shardsPerClusterResolved) const
    {
        return shard / shardsPerClusterResolved;
    }
};

/** Hard cap on Topology::fadesPerShard (sizes the stall profile). */
constexpr unsigned maxFadesPerShard = 8;

/**
 * Aggregate stall assessment of a FadeGroup at one cycle (batched
 * engine). Inert (`active == false`) only when steering provably does
 * nothing and every unit's own profile is inert; `units[i]` then holds
 * unit i's profile for batch-applying the skipped cycles' counters.
 */
struct FadeGroupStallProfile
{
    bool active = true;
    Cycle wakeAt = invalidCycle;
    std::array<FadeStallProfile, maxFadesPerShard> units;
};

/**
 * K FADE filter units behind one event queue.
 *
 * With one unit the group is a transparent wrapper: the unit binds
 * directly to the shard's EQ/UEQ and every group call delegates, so the
 * single-FADE system is unchanged bit for bit.
 *
 * With K > 1 units, a steering stage distributes the EQ in strict
 * round-robin order: event i goes to unit i mod K through a small
 * per-unit inlet queue (the unit's private EQ), at most one event per
 * unit per cycle, head-of-line blocking when the destined inlet is
 * full. All units share the shard's unfiltered event queue; units tick
 * in fixed index order, so UEQ arrival order — and with it every
 * simulated statistic — is deterministic.
 *
 * Ordering model: instruction events from different units filter
 * concurrently (relaxed inter-unit order, the throughput point of a
 * multi-unit filter). Stack-update and high-level events serialize at
 * the *group* level: steering holds them at the EQ head until every
 * unit is quiesced (pipelines empty, inlets empty, no outstanding
 * handlers — which implies the shared UEQ is empty), hands the event to
 * the round-robin unit, and steers nothing further until that unit is
 * quiesced again. This generalizes the single-FADE drain protocol
 * (Section 5.2 of the paper) and keeps allocation, stack-frame, and
 * taint-source metadata updates globally ordered against all filtering;
 * see docs/TOPOLOGY.md for the full argument.
 */
class FadeGroup
{
  public:
    /**
     * @param units    filter units (1..maxFadesPerShard)
     * @param p        per-unit configuration
     * @param ctx      canonical metadata state shared with the monitor
     * @param l2       next memory level behind each unit's MD cache
     * @param shardId  home shard stamped into / checked on events
     */
    FadeGroup(unsigned units, const FadeParams &p, MonitorContext &ctx,
              Cache *l2, std::uint8_t shardId);

    /** Attach the shard's event queue and unfiltered event queue. */
    void bind(BoundedQueue<MonEvent> *eq,
              BoundedQueue<UnfilteredEvent> *ueq);

    unsigned size() const { return unsigned(units_.size()); }
    Fade &unit(unsigned i) { return *units_.at(i); }
    const Fade &unit(unsigned i) const { return *units_.at(i); }

    /** Advance one cycle: steer (K > 1), then tick units in order. */
    void tick(Cycle now);

    /**
     * Would tick(@p now) change anything beyond per-cycle counters?
     * Pure; conservative (claims active whenever steering might act).
     */
    FadeGroupStallProfile stallProfile(Cycle now) const;

    /** Batch-apply @p n skipped cycles' counters to every unit. Only
     *  legal when stallProfile() returned @p p with active == false
     *  and no external input changed during the span. */
    void skipCycles(const FadeGroupStallProfile &p, std::uint64_t n);

    /** Software completed the handler of @p ev: route the completion
     *  to the unit that forwarded it (ev.unit, stamped by steering). */
    void
    handlerDone(const MonEvent &ev)
    {
        units_[ev.unit]->handlerDone(ev.seq);
    }

    /** Outcome of one eager-steered event (run-grain engine). */
    struct RunGrainSteered
    {
        RunGrainEventOutcome outcome;
        /** Unit the rotation chose (timing model: per-unit pipes). */
        unsigned unit = 0;
    };

    /**
     * Run-grain engine: steer @p ev with the identical strict rotation
     * steer() applies — same unit choice, same unit stamp, same
     * steered/serialized accounting — and process it to completion in
     * that unit (Fade::processEventRunGrain). The group is quiescent
     * between calls by the driver's eager-serialized discipline, so
     * the per-cycle serializer gates (allQuiesced, inlet capacity) are
     * satisfied trivially and the rotation order is preserved exactly.
     */
    RunGrainSteered processEventRunGrain(MonEvent ev);

    /** Every unit quiesced and every inlet drained (the shard's EQ is
     *  the caller's to check). */
    bool quiesced() const;

    /** Counters merged over all units. */
    FadeStats stats() const;

    void resetStats();
    void finalizeBursts();

    /** Retarget every unit's MD cache at @p port (L2 path swap). */
    void setNext(MemPort *port);

    /** Events steered to unit @p i. Group accounting for K > 1 only:
     *  a single-unit group consumes the shard EQ directly, so no
     *  steering happens and this stays 0. */
    std::uint64_t steeredTo(unsigned i) const { return steered_.at(i); }
    /** Serializing (stack/high-level) events steered so far. */
    std::uint64_t serialized() const { return serialized_; }

  private:
    bool allQuiesced() const;
    /** Steering provably takes no action this cycle (stall profile). */
    bool steeringActive() const;
    void steer();

    std::vector<std::unique_ptr<Fade>> units_;
    /** Per-unit inlet queues (K > 1 only; unit i's private EQ). */
    std::vector<std::unique_ptr<BoundedQueue<MonEvent>>> inlets_;
    BoundedQueue<MonEvent> *eq_ = nullptr;
    BoundedQueue<UnfilteredEvent> *ueq_ = nullptr;

    /** Next unit in the strict rotation. */
    unsigned rr_ = 0;
    /** Unit holding the in-flight serialized event, or -1. Cleared
     *  lazily by steer() once the unit is quiesced again. */
    int serialUnit_ = -1;

    std::vector<std::uint64_t> steered_;
    std::uint64_t serialized_ = 0;
};

} // namespace fade

#endif // FADE_SYSTEM_TOPOLOGY_HH
