#include "trace/generator.hh"

#include <algorithm>

#include "core/regfiles.hh"
#include "sim/logging.hh"

namespace fade
{

namespace
{

/** Per-thread stack carve-out (far larger than any call stack grows). */
constexpr Addr threadStackSpan = 0x400000;

/** Ring-buffer capacity for pointer/taint slot tracking. */
constexpr std::size_t slotRingCap = 256;

void
ringPush(TraceGenerator::SlotRing &ring, Addr a)
{
    ring.sig |= TraceGenerator::SlotRing::granuleBit(a);
    if (ring.v.size() < slotRingCap) {
        ring.v.push_back(a);
    } else {
        ring.v[a / wordSize % slotRingCap] = a;
    }
}

/** recentShared variant (plain vector: never range-pruned). */
void
ringPush(std::vector<Addr> &ring, Addr a)
{
    if (ring.size() < slotRingCap) {
        ring.push_back(a);
    } else {
        ring[a / wordSize % slotRingCap] = a;
    }
}

/** Drop ring entries inside [base, base+len): the region died. */
void
ringPrune(TraceGenerator::SlotRing &ring, Addr base, std::uint64_t len)
{
    // Signature fast-out: no granule of the dead range was ever
    // pushed, so no entry can match (see SlotRing).
    if ((ring.sig & TraceGenerator::SlotRing::rangeMask(base, len)) == 0)
        return;
    std::uint64_t survivors = 0;
    for (std::size_t k = 0; k < ring.v.size();) {
        if (ring.v[k] >= base && ring.v[k] < base + len) {
            ring.v[k] = ring.v.back();
            ring.v.pop_back();
        } else {
            survivors |= TraceGenerator::SlotRing::granuleBit(ring.v[k]);
            ++k;
        }
    }
    ring.sig = survivors;
}

} // namespace

void
TraceGenerator::eraseWordRange(Addr base, std::uint64_t lenBytes)
{
    // Page-span bitmap clear: large frees and deep stack pops mask two
    // edge groups and zero-fill the interior instead of probing
    // word-by-word.
    ptrWords_.eraseRange(wordKey(base), base + lenBytes);
    taintWords_.eraseRange(wordKey(base), base + lenBytes);
}

TraceGenerator::TraceGenerator(const BenchProfile &profile)
    : profile_(profile), rng_(profile.seed, 0x9e3779b97f4a7c15ULL)
{
    fatal_if(profile_.numThreads == 0 || profile_.numThreads > maxThreads,
             "profile thread count out of range");

    // Hoist every per-instruction Bernoulli threshold out of the fetch
    // loop (bit-identical to rng_.chance of the same fractions).
    draws_.call = Bernoulli(profile_.callRate * 2.0);
    draws_.malloc_ = Bernoulli(profile_.mallocRate);
    draws_.taintSrc = Bernoulli(profile_.taintSourceRate);
    draws_.taintOp = Bernoulli(profile_.taintOpFrac);
    draws_.ptrOp = Bernoulli(profile_.ptrOpFrac);
    draws_.seq = Bernoulli(profile_.seqFrac);
    draws_.hot = Bernoulli(profile_.hotFrac);
    draws_.fresh = Bernoulli(profile_.freshSlotFrac);
    draws_.aluImm = Bernoulli(profile_.aluImmFrac);
    draws_.prop = Bernoulli(profile_.propAluFrac);
    draws_.misp = Bernoulli(profile_.mispredictRate);
    draws_.mispHalf = Bernoulli(profile_.mispredictRate * 0.5);
    draws_.misp03 = Bernoulli(profile_.mispredictRate * 0.3);
    draws_.highPhase = Bernoulli(profile_.highPhaseFrac);
    draws_.free_ = Bernoulli(profile_.freeFrac);
    draws_.ptrAlloc = Bernoulli(profile_.ptrAllocFrac);
    draws_.half = Bernoulli(0.5);
    draws_.p85 = Bernoulli(0.85);
    draws_.p25 = Bernoulli(0.25);
    draws_.p04 = Bernoulli(0.04);
    draws_.remote = Bernoulli(profile_.remoteConflictFrac);
    draws_.shared = Bernoulli(profile_.sharedFrac);

    // Integer cut-points for the two selection cascades (see DrawSet):
    // cutsFor(chain)[k] is the smallest draw whose chain branch exceeds
    // k, found by binary search — legal because each chain's branch
    // index is monotone nondecreasing in the draw value.
    auto cutsFor = [](unsigned branches, auto &&chain, std::uint64_t *out) {
        for (unsigned k = 0; k + 1 < branches; ++k) {
            std::uint64_t lo = 0, hi = std::uint64_t(1) << 32;
            while (lo < hi) {
                std::uint64_t mid = (lo + hi) / 2;
                if (chain(std::uint32_t(mid)) > k)
                    hi = mid;
                else
                    lo = mid + 1;
            }
            out[k] = lo;
        }
    };
    auto mixChain = [](const InstMix &m) {
        // The exact double-arithmetic cascade of fetch(), preserved
        // operation for operation.
        return [&m](std::uint32_t x) -> unsigned {
            double u = x * (1.0 / 4294967296.0);
            if ((u -= m.load) < 0)
                return 0;
            if ((u -= m.store) < 0)
                return 1;
            if ((u -= m.alu) < 0)
                return 2;
            if ((u -= m.mul) < 0)
                return 3;
            if ((u -= m.fp) < 0)
                return 4;
            if ((u -= m.branch) < 0)
                return 5;
            if ((u -= m.jumpInd) < 0)
                return 6;
            return 7;
        };
    };
    cutsFor(8, mixChain(profile_.highMix), draws_.mixHighCuts.data());
    cutsFor(8, mixChain(profile_.lowMix), draws_.mixLowCuts.data());
    {
        // pickMemAddr's region cascade, same preservation.
        double total = profile_.memStackFrac + profile_.memHeapFrac +
                       profile_.memGlobalFrac;
        auto memChain = [&](std::uint32_t x) -> unsigned {
            double u = x * (1.0 / 4294967296.0) * total;
            if (u < profile_.memStackFrac)
                return 0;
            if (u < profile_.memStackFrac + profile_.memHeapFrac)
                return 1;
            return 2;
        };
        cutsFor(3, memChain, draws_.memCuts.data());
    }

    globalLen_ = std::min<std::uint64_t>(
        std::uint64_t(1) << profile_.globalWsLog2,
        globalLimit - globalBase);
    layout_.globalBase = globalBase;
    layout_.globalLen = globalLen_;
    sharedBase_ = globalBase + globalLen_ / 2;
    sharedLen_ = globalLen_ / 2;

    threads_.resize(profile_.numThreads);
    setCurThread(0);
    Addr minSp = stackTop;
    for (unsigned t = 0; t < profile_.numThreads; ++t) {
        ThreadState &ts = threads_[t];
        ts.sp = stackTop - t * threadStackSpan;
        // Initial call stack: targetDepth live frames.
        for (unsigned d = 0; d < profile_.targetDepth; ++d) {
            unsigned words =
                profile_.frameWordsMin +
                rng_.range(profile_.frameWordsMax - profile_.frameWordsMin +
                           1);
            ts.sp -= words * wordSize;
            ts.stack.push_back(
                {ts.sp, words, std::min(profile_.spillSlots, words)});
        }
        ts.pc = 0x1000 + t * 0x100000;
        minSp = std::min(minSp, ts.sp);
    }
    layout_.stackBase = minSp;
    layout_.stackLen = stackTop - minSp;

    // Startup allocations so the heap has live data before measurement
    // (these flow through the event stream as ordinary malloc events).
    unsigned warmAllocs = std::max(24u, 4 * profile_.numThreads);
    for (unsigned i = 0; i < warmAllocs; ++i) {
        // Spread startup allocations across threads so parallel
        // workloads keep their heap data thread-private.
        setCurThread(i % profile_.numThreads);
        // The first four allocations per thread seed the dedicated
        // base-pointer registers r28..r31.
        RegIndex forceDst =
            i < 4 * profile_.numThreads
                ? RegIndex(28 + i / profile_.numThreads)
                : RegIndex(0);
        // emitMalloc() appends the allocation's init stores to
        // pending_; the malloc itself must precede them.
        auto at = std::ptrdiff_t(pending_.size());
        Instruction m = emitMalloc(i >= 4 * profile_.numThreads, forceDst);
        pending_.insert(std::size_t(at), m);
    }
    setCurThread(0);
}

Instruction
TraceGenerator::make(InstClass cls)
{
    Instruction i;
    i.cls = cls;
    i.pc = cur().pc;
    cur().pc += 4;
    i.tid = ThreadId(curThread_);
    return i;
}

RegIndex
TraceGenerator::pickPtrReg(bool transientOnly)
{
    ThreadState &ts = cur();
    // Half the time use a dedicated base register (r28..r31): compiled
    // code keeps object/frame base pointers live in registers for long
    // stretches, which sustains pointer activity even when transient
    // pointer registers have been clobbered.
    if (!transientOnly && draws_.half.draw(rng_)) {
        RegIndex r = RegIndex(28 + rng_.range(4));
        if (ts.regPtr[r])
            return r;
    }
    unsigned start = rng_.range(numArchRegs);
    for (unsigned k = 0; k < numArchRegs; ++k) {
        RegIndex r = RegIndex((start + k) % numArchRegs);
        if (transientOnly && (r >= 28 || r == 0))
            continue;
        if (r != 0 && ts.regPtr[r])
            return r;
    }
    if (transientOnly)
        return 0;
    RegIndex r = RegIndex(28 + rng_.range(4));
    return ts.regPtr[r] ? r : 0;
}

RegIndex
TraceGenerator::pickTaintReg()
{
    ThreadState &ts = cur();
    unsigned start = rng_.range(numArchRegs);
    for (unsigned k = 0; k < numArchRegs; ++k) {
        RegIndex r = RegIndex((start + k) % numArchRegs);
        if (r != 0 && ts.regTaint[r])
            return r;
    }
    return 0;
}

Addr
TraceGenerator::pickStackAddr(bool forWrite)
{
    ThreadState &ts = cur();
    if (ts.stack.empty())
        return pickGlobalAddr();
    Frame &f = ts.stack.back();
    unsigned slot;
    if (forWrite && f.spilled < f.words &&
        (f.spilled == 0 || draws_.fresh.draw(rng_))) {
        slot = f.spilled++;
    } else {
        slot = rng_.range(std::max(1u, f.spilled));
    }
    return f.base + slot * wordSize;
}

Addr
TraceGenerator::pickHeapAddr(bool forWrite)
{
    if (liveAllocs_.empty())
        return pickGlobalAddr();
    // Allocations are thread-private in parallel workloads: scan for
    // one owned by the current thread (sharing goes through the
    // dedicated shared region instead).
    unsigned n = unsigned(liveAllocs_.size());
    unsigned start = rng_.range(n);
    Alloc *a = nullptr;
    for (unsigned k = 0; k < n; ++k) {
        // (start + k) mod n without the division: both terms are < n.
        unsigned idx = start + k;
        if (idx >= n)
            idx -= n;
        Alloc &cand = liveAllocs_[idx];
        if (cand.noWalk)
            continue;
        if (profile_.numThreads > 1 && cand.owner != curThread_) {
            if (!a)
                a = &cand;
            continue;
        }
        a = &cand;
        break;
    }
    if (!a)
        return pickGlobalAddr();

    if (forWrite) {
        // Mostly rewrite initialized data; occasionally extend the
        // initialized prefix contiguously (programs write before they
        // read, and initialization is sequential).
        if (a->initWords < a->words &&
            (a->initWords == 0 || draws_.p04.draw(rng_))) {
            return a->base + (a->initWords++) * wordSize;
        }
    }
    unsigned limit = a->initWords;
    if (limit == 0)
        return pickGlobalAddr();

    // Spatial locality: sequential accesses continue a stride-1 walk
    // through the current allocation; random accesses (and run ends)
    // jump elsewhere.
    auto &run = cur().heapRun;
    if (draws_.seq.draw(rng_)) {
        if (run.next != 0 && run.next < run.end) {
            Addr addr = run.next;
            run.next += wordSize;
            return addr;
        }
        unsigned word = randomWord(limit);
        run.next = a->base + word * wordSize + wordSize;
        run.end = a->base + limit * wordSize;
        return a->base + word * wordSize;
    }
    return a->base + randomWord(limit) * wordSize;
}

Addr
TraceGenerator::pickPtrStoreAddr()
{
    // Pointers live in node pools (linked structures) or stack slots,
    // not in the flat data arrays the walks traverse.
    for (unsigned k = 0; k < liveAllocs_.size(); ++k) {
        Alloc &cand = liveAllocs_[rng_.range(unsigned(liveAllocs_.size()))];
        if (cand.noWalk &&
            (profile_.numThreads <= 1 || cand.owner == curThread_)) {
            if (cand.initWords == 0)
                cand.initWords = 1;
            return cand.base + rng_.range(cand.initWords) * wordSize;
        }
    }
    return pickStackAddr(true);
}

Addr
TraceGenerator::pickGlobalAddr()
{
    // Parallel workloads: each thread works in a private slice of the
    // non-shared half of the global segment.
    Addr base = globalBase;
    std::uint64_t len = globalLen_;
    if (profile_.numThreads > 1) {
        len = (globalLen_ / 2) / profile_.numThreads;
        base = globalBase + curThread_ * len;
    }
    std::uint64_t words = std::max<std::uint64_t>(1, len / wordSize);
    auto &run = cur().globalRun;
    if (draws_.seq.draw(rng_)) {
        if (run.next != 0 && run.next < run.end) {
            Addr addr = run.next;
            run.next += wordSize;
            return addr;
        }
        std::uint64_t w = randomWord(words);
        run.next = base + w * wordSize + wordSize;
        run.end = base + len;
        return base + w * wordSize;
    }
    return base + randomWord(words) * wordSize;
}

Addr
TraceGenerator::pickSharedAddr()
{
    ThreadState &ts = cur();
    // Conflict: touch a word another thread recently owned.
    if (draws_.remote.draw(rng_) &&
        profile_.numThreads > 1) {
        unsigned other =
            (curThread_ + 1 + rng_.range(profile_.numThreads - 1)) %
            profile_.numThreads;
        auto &ring = threads_[other].recentShared;
        if (!ring.empty()) {
            Addr a = ring[rng_.range(unsigned(ring.size()))];
            ringPush(ts.recentShared, a);
            return a;
        }
    }
    // Temporal affinity: threads mostly re-touch the shared words they
    // worked on recently within their quantum.
    if (!ts.recentShared.empty() && draws_.p85.draw(rng_))
        return ts.recentShared[rng_.range(unsigned(ts.recentShared.size()))];

    std::uint64_t words = std::max<std::uint64_t>(1, sharedLen_ / wordSize);
    Addr a = sharedBase_ + (rng_.next64() % words) * wordSize;
    if (ts.recentShared.size() < 64)
        ts.recentShared.push_back(a);
    else
        ts.recentShared[rng_.range(64)] = a;
    return a;
}

Addr
TraceGenerator::pickMemAddr(bool forWrite)
{
    if (profile_.numThreads > 1 && draws_.shared.draw(rng_))
        return pickSharedAddr();
    // Integer cut-point selection, bit-identical to the double cascade
    // it replaced (see DrawSet::memCuts).
    std::uint32_t x = rng_.next();
    if (x < draws_.memCuts[0])
        return pickStackAddr(forWrite);
    if (x < draws_.memCuts[1])
        return pickHeapAddr(forWrite);
    return pickGlobalAddr();
}

Instruction
TraceGenerator::makeLoad()
{
    Instruction i = make(InstClass::Load);
    bool taintOp = taintActive() && !cur().taintSlots.empty() &&
                   draws_.taintOp.draw(rng_);
    bool ptrOp = !taintOp && !cur().ptrSlots.empty() &&
                 draws_.ptrOp.draw(rng_);
    Addr a;
    if (taintOp)
        a = cur().taintSlots[rng_.range(unsigned(cur().taintSlots.size()))];
    else if (ptrOp)
        a = cur().ptrSlots[rng_.range(unsigned(cur().ptrSlots.size()))];
    else
        a = pickMemAddr(false);
    i.memAddr = wordKey(a);
    i.numSrc = 1;
    i.src1 = pickSrcReg();
    i.hasDst = true;
    i.dst = pickDstReg();
    // The destination's semantic state follows what the slot actually
    // holds (monitors will compute exactly this from the event).
    noteWrite(i.dst, ptrWords_.contains(i.memAddr),
              taintWords_.contains(i.memAddr));
    return i;
}

Instruction
TraceGenerator::makeStore()
{
    Instruction i = make(InstClass::Store);
    RegIndex taintReg = 0;
    RegIndex ptrReg = 0;
    if (taintActive() && draws_.taintOp.draw(rng_))
        taintReg = pickTaintReg();
    if (!taintReg && draws_.ptrOp.draw(rng_))
        ptrReg = pickPtrReg();

    Addr a = ptrReg ? pickPtrStoreAddr() : pickMemAddr(true);
    i.memAddr = wordKey(a);
    i.numSrc = 2;
    i.src2 = pickSrcReg(); // address register
    if (taintReg) {
        i.src1 = taintReg;
        ringPush(cur().taintSlots, i.memAddr);
        taintWords_.insert(i.memAddr);
        ptrWords_.erase(i.memAddr);
    } else if (ptrReg) {
        i.src1 = ptrReg;
        ringPush(cur().ptrSlots, i.memAddr);
        ptrWords_.insert(i.memAddr);
        taintWords_.erase(i.memAddr);
    } else {
        i.src1 = pickDataReg();
        ptrWords_.erase(i.memAddr);
        taintWords_.erase(i.memAddr);
    }
    return i;
}

Instruction
TraceGenerator::makeAlu(bool imm)
{
    Instruction i = make(InstClass::IntAlu);
    i.hasDst = true;

    bool taintOp = taintActive() && draws_.taintOp.draw(rng_);
    RegIndex tr = taintOp ? pickTaintReg() : 0;
    bool ptrOp = !tr && draws_.ptrOp.draw(rng_);
    RegIndex pr = ptrOp ? pickPtrReg() : 0;

    if (pr && pr < 28 && draws_.p25.draw(rng_)) {
        // Overwrite a pointer register with data: drops a reference
        // (how most leaks become detectable).
        i.numSrc = imm ? 1 : 2;
        i.src1 = pickDataReg();
        i.src2 = imm ? RegIndex(0) : pickDataReg();
        i.dst = pr;
        noteWrite(pr, false, false);
        return i;
    }

    if (tr) {
        // Taint propagation arithmetic.
        i.numSrc = imm ? 1 : 2;
        i.src1 = tr;
        i.src2 = imm ? RegIndex(0) : pickDataReg();
        i.dst = pickDstReg();
        noteWrite(i.dst, false, true);
        return i;
    }

    if (pr) {
        // Pointer arithmetic increments in place (p += stride): the
        // register stays a pointer and no new pointer registers are
        // sprayed across the register file.
        i.numSrc = imm ? 1 : 2;
        i.src1 = pr;
        i.src2 = imm ? RegIndex(0) : pickDataReg();
        i.dst = pr;
        noteWrite(pr, true, false);
        return i;
    }

    i.numSrc = imm ? 1 : 2;
    i.src1 = pickDataReg();
    i.src2 = imm ? RegIndex(0) : pickDataReg();
    i.mayPropagate = draws_.prop.draw(rng_);
    if (i.mayPropagate) {
        i.dst = pickDstReg();
        noteWrite(i.dst, false, false);
    } else {
        // Compare/flag-setting form: writes condition codes, not an
        // integer register, so monitors can eliminate it at the source
        // without losing propagation coverage.
        i.hasDst = false;
    }
    return i;
}

Instruction
TraceGenerator::makeMul()
{
    Instruction i = make(InstClass::IntMul);
    i.numSrc = 2;
    i.src1 = pickDataReg();
    i.src2 = pickDataReg();
    i.hasDst = true;
    i.dst = pickDstReg();
    noteWrite(i.dst, false, cur().regTaint[i.src1] ||
                                cur().regTaint[i.src2]);
    return i;
}

Instruction
TraceGenerator::makeFp()
{
    Instruction i = make(InstClass::FpAlu);
    // FP results live in the (disjoint) FP register file; they never
    // carry pointers or taint into the integer registers the monitors
    // shadow.
    i.numSrc = 2;
    i.src1 = pickDataReg();
    i.src2 = pickDataReg();
    i.hasDst = false;
    return i;
}

Instruction
TraceGenerator::makeBranch()
{
    Instruction i = make(InstClass::Branch);
    i.numSrc = 2;
    i.src1 = pickDataReg();
    i.src2 = pickDataReg();
    i.mispredict = draws_.misp.draw(rng_);
    return i;
}

Instruction
TraceGenerator::makeJumpInd()
{
    Instruction i = make(InstClass::JumpInd);
    i.numSrc = 1;
    // Well-behaved code jumps through untainted function pointers;
    // avoid tainted registers so only injected exploits alert. r1 is
    // never a destination, so it is always clean as a fallback.
    RegIndex r = pickDataReg();
    for (unsigned k = 0; k < 4 && cur().regTaint[r]; ++k)
        r = pickDataReg();
    if (cur().regTaint[r])
        r = 1;
    i.src1 = r;
    i.mispredict = draws_.mispHalf.draw(rng_);
    return i;
}

Instruction
TraceGenerator::emitCall()
{
    ThreadState &ts = cur();
    unsigned words =
        profile_.frameWordsMin +
        rng_.range(profile_.frameWordsMax - profile_.frameWordsMin + 1);
    Addr base = ts.sp - words * wordSize;

    Instruction i = make(InstClass::Call);
    i.frameBase = base;
    i.frameBytes = words * wordSize;

    ts.sp = base;
    unsigned spills = std::min(profile_.spillSlots, words);
    ts.stack.push_back({base, words, spills});

    // Prologue: spill registers into the fresh frame.
    for (unsigned s = 0; s < spills; ++s) {
        Instruction st = make(InstClass::Store);
        st.memAddr = wordKey(base + s * wordSize);
        st.numSrc = 2;
        st.src2 = pickSrcReg();
        RegIndex pr =
            draws_.ptrOp.draw(rng_) ? pickPtrReg() : RegIndex(0);
        if (pr) {
            st.src1 = pr;
            ringPush(cur().ptrSlots, st.memAddr);
            ptrWords_.insert(st.memAddr);
        } else {
            st.src1 = pickDataReg();
            ptrWords_.erase(st.memAddr);
        }
        pending_.push_back(st);
    }
    return i;
}

Instruction
TraceGenerator::emitReturn()
{
    ThreadState &ts = cur();
    panic_if(ts.stack.empty(), "return with empty call stack");
    Frame f = ts.stack.back();
    ts.stack.pop_back();
    ts.sp = f.base + f.words * wordSize;

    // Slots in the dying frame no longer hold live pointers/taint.
    ringPrune(cur().ptrSlots, f.base, std::uint64_t(f.words) * wordSize);
    ringPrune(cur().taintSlots, f.base, std::uint64_t(f.words) * wordSize);
    eraseWordRange(f.base, std::uint64_t(f.words) * wordSize);

    Instruction i = make(InstClass::Return);
    i.frameBase = f.base;
    i.frameBytes = f.words * wordSize;
    i.mispredict = draws_.misp03.draw(rng_);
    return i;
}

Instruction
TraceGenerator::emitMalloc(bool allowFree, RegIndex forceDst)
{
    unsigned words =
        profile_.allocWordsMin +
        rng_.range(profile_.allocWordsMax - profile_.allocWordsMin + 1);

    // Reuse a freed block when possible (first fit, preferring blocks
    // this thread freed, as arena allocators do), else bump the cursor.
    Addr base = 0;
    std::size_t pick = freeList_.size();
    for (std::size_t k = 0; k < freeList_.size(); ++k) {
        if (freeList_[k].words < words)
            continue;
        if (freeList_[k].owner == curThread_) {
            pick = k;
            break;
        }
        if (pick == freeList_.size())
            pick = k;
    }
    if (pick < freeList_.size() &&
        (freeList_[pick].owner == curThread_ ||
         profile_.numThreads == 1)) {
        base = freeList_[pick].base;
        freeList_[pick] = freeList_.back();
        freeList_.pop_back();
    }
    if (base == 0) {
        base = heapCursor_;
        heapCursor_ += words * wordSize;
        fatal_if(heapCursor_ >= heapLimit,
                 "synthetic heap exhausted; lower mallocRate");
    }

    bool ptrPool = draws_.ptrAlloc.draw(rng_);
    liveAllocs_.push_back({base, words, 0, curThread_, ptrPool});
    eraseWordRange(base, std::uint64_t(words) * wordSize);

    Instruction i = make(InstClass::HighLevel);
    i.hlKind = EventKind::Malloc;
    i.frameBase = base;
    i.frameBytes = words * wordSize;
    i.hasDst = true;
    i.dst = forceDst ? forceDst : pickDstReg();
    if (forceDst)
        cur().regPtr[forceDst] = true;
    else
        noteWrite(i.dst, true, false);

    // Allocator bookkeeping runs between the malloc event and the
    // first initialization store (free-list search, header setup);
    // by the time the stores arrive, the monitor's malloc handler has
    // marked the region allocated.
    for (unsigned k = 0; k < 28; ++k)
        pending_.push_back(makeAlu(k % 3 != 0));

    // Initialize a prefix of the allocation.
    unsigned initWords = unsigned(profile_.initStoreFrac * words);
    initWords = std::min(initWords, 64u);
    Alloc &a = liveAllocs_.back();
    for (unsigned w = 0; w < initWords; ++w) {
        Instruction st = make(InstClass::Store);
        st.memAddr = base + w * wordSize;
        st.numSrc = 2;
        st.src1 = pickSrcReg();
        st.src2 = pickSrcReg();
        pending_.push_back(st);
    }
    a.initWords = initWords;

    if (allowFree && draws_.free_.draw(rng_)) {
        std::uint64_t due =
            emitted_ +
            rng_.geometric(1.0 / profile_.allocLifetimeMean, 1u << 22);
        pendingFrees_.push({due, base});
    }
    return i;
}

Instruction
TraceGenerator::emitFree(Addr base)
{
    unsigned words = 0;
    for (std::size_t k = 0; k < liveAllocs_.size(); ++k) {
        if (liveAllocs_[k].base == base) {
            words = liveAllocs_[k].words;
            liveAllocs_[k] = liveAllocs_.back();
            liveAllocs_.pop_back();
            break;
        }
    }
    if (words == 0) {
        // Already recycled (should not happen); emit a nop instead.
        return make(InstClass::Nop);
    }
    if (freeList_.size() < 256)
        freeList_.push_back({base, words, curThread_});
    for (auto &ts : threads_) {
        ringPrune(ts.ptrSlots, base, std::uint64_t(words) * wordSize);
        ringPrune(ts.taintSlots, base, std::uint64_t(words) * wordSize);
        // A stride-1 heap walk established inside this block must not
        // continue into it after the free: that is exactly the kind of
        // use-after-free a clean stream may not contain.
        Addr end = base + std::uint64_t(words) * wordSize;
        if (ts.heapRun.next >= base && ts.heapRun.next < end)
            ts.heapRun = {};
    }
    eraseWordRange(base, std::uint64_t(words) * wordSize);

    Instruction i = make(InstClass::HighLevel);
    i.hlKind = EventKind::Free;
    i.frameBase = base;
    i.frameBytes = words * wordSize;

    pending_.push_back(makeAlu(true));
    return i;
}

Instruction
TraceGenerator::emitTaintSource()
{
    // Taint an input buffer: a live allocation prefix, else globals.
    Addr base;
    unsigned words = profile_.taintBufWords;
    if (!liveAllocs_.empty()) {
        Alloc &a = liveAllocs_[rng_.range(unsigned(liveAllocs_.size()))];
        words = std::min(words, a.words);
        base = a.base;
        a.initWords = std::max(a.initWords, words);
        a.noWalk = true; // IO buffer: only explicit taint ops touch it
    } else {
        base = pickGlobalAddr() & ~Addr(63);
    }

    Instruction i = make(InstClass::HighLevel);
    i.hlKind = EventKind::TaintSource;
    i.frameBase = base;
    i.frameBytes = words * wordSize;

    for (unsigned w = 0; w < words; ++w) {
        taintWords_.insert(wordKey(base + w * wordSize));
        if (w < 32)
            ringPush(cur().taintSlots, base + w * wordSize);
    }
    taintLiveUntil_ = emitted_ + 20000;
    return i;
}

void
TraceGenerator::injectBug(TruthBits kind)
{
    switch (kind) {
      case truthAccessUnallocated: {
        Instruction ld = make(InstClass::Load);
        ld.memAddr = heapLimit - 0x1000;
        ld.numSrc = 1;
        ld.src1 = pickSrcReg();
        ld.hasDst = true;
        ld.dst = pickDstReg();
        ld.truth = truthAccessUnallocated;
        pending_.push_back(ld);
        break;
      }
      case truthUseUninit: {
        // Load an uninitialized heap word, then jump through it.
        Addr addr = 0;
        for (auto &a : liveAllocs_) {
            if (a.initWords < a.words) {
                addr = a.base + a.initWords * wordSize;
                break;
            }
        }
        if (addr == 0) {
            auto at = std::ptrdiff_t(pending_.size());
            Instruction m = emitMalloc(false);
            pending_.insert(std::size_t(at), m);
            addr = liveAllocs_.back().base +
                   liveAllocs_.back().initWords * wordSize;
        }
        Instruction ld = make(InstClass::Load);
        ld.memAddr = addr;
        ld.numSrc = 1;
        ld.src1 = pickSrcReg();
        ld.hasDst = true;
        ld.dst = 9;
        pending_.push_back(ld);
        Instruction jmp = make(InstClass::JumpInd);
        jmp.numSrc = 1;
        jmp.src1 = 9;
        jmp.truth = truthUseUninit;
        pending_.push_back(jmp);
        break;
      }
      case truthTaintedJump: {
        pending_.push_back(emitTaintSource());
        Addr src = cur().taintSlots.empty() ? globalBase
                                           : cur().taintSlots.back();
        Instruction ld = make(InstClass::Load);
        ld.memAddr = src;
        ld.numSrc = 1;
        ld.src1 = pickSrcReg();
        ld.hasDst = true;
        ld.dst = 9;
        pending_.push_back(ld);
        Instruction jmp = make(InstClass::JumpInd);
        jmp.numSrc = 1;
        jmp.src1 = 9;
        jmp.truth = truthTaintedJump;
        pending_.push_back(jmp);
        break;
      }
      case truthLeakDrop: {
        // Allocate, never free, then clobber the only pointer.
        auto at = std::ptrdiff_t(pending_.size());
        Instruction m = emitMalloc(false);
        RegIndex ptr = m.dst;
        pending_.insert(std::size_t(at), m);
        Instruction kill = make(InstClass::IntAlu);
        kill.numSrc = 2;
        kill.src1 = pickSrcReg();
        kill.src2 = pickSrcReg();
        kill.hasDst = true;
        kill.dst = ptr;
        kill.truth = truthLeakDrop;
        pending_.push_back(kill);
        cur().regPtr[ptr] = false;
        break;
      }
      case truthAtomViolation: {
        // Unserializable (R, remote W, R) interleaving on one word.
        Addr a = sharedBase_ ? sharedBase_ + 0x40
                             : globalBase + 0x40;
        ThreadId t0 = ThreadId(curThread_);
        ThreadId t1 = ThreadId((curThread_ + 1) %
                               std::max(2u, profile_.numThreads));
        Instruction r1 = make(InstClass::Load);
        r1.memAddr = a;
        r1.numSrc = 1;
        r1.src1 = 2;
        r1.hasDst = true;
        r1.dst = 3;
        r1.tid = t0;
        pending_.push_back(r1);
        Instruction w = make(InstClass::Store);
        w.memAddr = a;
        w.numSrc = 2;
        w.src1 = 4;
        w.src2 = 5;
        w.tid = t1;
        pending_.push_back(w);
        Instruction r2 = r1;
        r2.pc += 8;
        r2.truth = truthAtomViolation;
        pending_.push_back(r2);
        break;
      }
      default:
        break;
    }
}

Instruction
TraceGenerator::fetch()
{
    if (stagedHead_ != staged_.size()) {
        // Already counted into emitted_ at synthesis time (stageRun).
        return staged_[stagedHead_++];
    }
    return synthOne();
}

std::size_t
TraceGenerator::stageRun(std::size_t n)
{
    // Block synthesis into the flat staging array. Identical draw
    // order to n on-demand synthOne() calls: the pending-splice drain
    // and the fresh-synthesis calls interleave exactly as the
    // per-instruction path would (pending_ is checked before every
    // fresh synthesis, and fresh synthesis may refill it).
    if (stagedHead_ == staged_.size()) {
        staged_.clear();
        stagedHead_ = 0;
    }
    staged_.reserve(staged_.size() + n);
    std::size_t k = 0;
    while (k < n) {
        while (k < n && !pending_.empty()) {
            ++emitted_;
            staged_.push_back(pending_.front());
            pending_.pop_front();
            ++k;
        }
        if (k == n)
            break;
        ++emitted_;
        staged_.push_back(synthFresh());
        ++k;
    }
    return n;
}

Instruction
TraceGenerator::synthOne()
{
    ++emitted_;

    if (!pending_.empty()) {
        Instruction i = pending_.front();
        pending_.pop_front();
        return i;
    }
    return synthFresh();
}

Instruction
TraceGenerator::synthFresh()
{
    maybeSwitchThread();
    maybeFlipPhase();

    // Due frees take priority so allocation lifetimes stay calibrated.
    if (!pendingFrees_.empty() && pendingFrees_.top().first <= emitted_) {
        Addr base = pendingFrees_.top().second;
        pendingFrees_.pop();
        return emitFree(base);
    }

    if (draws_.call.draw(rng_)) {
        unsigned depth = unsigned(cur().stack.size());
        double pReturn = double(depth) / (2.0 * profile_.targetDepth);
        if (depth > 1 && rng_.chance(pReturn))
            return emitReturn();
        if (depth < 64)
            return emitCall();
        return emitReturn();
    }

    if (draws_.malloc_.draw(rng_))
        return emitMalloc();

    if (profile_.taintSourceRate > 0 &&
        draws_.taintSrc.draw(rng_))
        return emitTaintSource();

    // Integer cut-point selection, bit-identical to the double cascade
    // it replaced (see DrawSet::mix*Cuts).
    const std::array<std::uint64_t, 7> &cuts =
        highPhase_ ? draws_.mixHighCuts : draws_.mixLowCuts;
    std::uint32_t x = rng_.next();
    if (x < cuts[0])
        return makeLoad();
    if (x < cuts[1])
        return makeStore();
    if (x < cuts[2])
        return makeAlu(draws_.aluImm.draw(rng_));
    if (x < cuts[3])
        return makeMul();
    if (x < cuts[4])
        return makeFp();
    if (x < cuts[5])
        return makeBranch();
    if (x < cuts[6])
        return makeJumpInd();
    return make(InstClass::Nop);
}

} // namespace fade
