/**
 * @file
 * Synthetic workload generator: produces a semantically coherent,
 * deterministic dynamic instruction stream from a benchmark profile.
 * The generator maintains a functional program skeleton — a call stack
 * with frames, live heap allocations, registers and memory slots known
 * to hold pointers or tainted data — so that the event stream the
 * monitors observe is self-consistent (pointers really flow from
 * mallocs, taint really flows from taint sources, loads really target
 * allocated and initialized data).
 *
 * Bug injection: tests and examples call injectBug() to splice a
 * deliberate violation into the stream; the offending instruction
 * carries a ground-truth oracle bit that monitors never see.
 */

#ifndef FADE_TRACE_GENERATOR_HH
#define FADE_TRACE_GENERATOR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_set>
#include <vector>

#include "cpu/source.hh"
#include "isa/instruction.hh"
#include "isa/layout.hh"
#include "sim/random.hh"
#include "trace/profile.hh"

namespace fade
{

/** Deterministic synthetic instruction stream for one benchmark. */
class TraceGenerator : public InstSource
{
  public:
    explicit TraceGenerator(const BenchProfile &profile);

    bool available() override { return true; }
    Instruction fetch() override;

    /** Splice an injected bug into the upcoming stream. */
    void injectBug(TruthBits kind);

    /** Startup memory ranges for Monitor::initShadow. */
    const WorkloadLayout &layout() const { return layout_; }

    const BenchProfile &profile() const { return profile_; }
    std::uint64_t emitted() const { return emitted_; }

    /** Ground-truth oracles (tests): current semantic register state. */
    bool regIsPtr(unsigned tid, RegIndex r) const
    {
        return threads_[tid].regPtr[r];
    }
    bool regIsTainted(unsigned tid, RegIndex r) const
    {
        return threads_[tid].regTaint[r];
    }
    /** Ground-truth oracle: does this word hold a pointer right now? */
    bool wordIsPtr(Addr a) const { return ptrWords_.count(a & ~Addr(3)); }
    bool wordIsTainted(Addr a) const
    {
        return taintWords_.count(a & ~Addr(3));
    }

  private:
    struct Frame
    {
        Addr base = 0;        ///< low address
        unsigned words = 0;   ///< frame size in words
        unsigned spilled = 0; ///< slots written so far
    };

    struct Alloc
    {
        Addr base = 0;
        unsigned words = 0;
        unsigned initWords = 0; ///< initialized prefix length
        unsigned owner = 0;     ///< allocating thread
        /** Pointer pool / IO buffer: excluded from plain data walks. */
        bool noWalk = false;
    };

    struct ThreadState
    {
        std::vector<Frame> stack;
        Addr sp = 0;
        std::array<bool, numArchRegs> regPtr{};
        std::array<bool, numArchRegs> regTaint{};
        std::vector<RegIndex> recentRegs;
        std::vector<Addr> recentShared;
        std::vector<Addr> ptrSlots;   ///< slots holding pointer values
        std::vector<Addr> taintSlots; ///< slots holding tainted data
        /** Active sequential-walk run (spatial locality model). */
        struct SeqRun
        {
            Addr next = 0;
            Addr end = 0;
        };
        SeqRun heapRun, globalRun;
        Addr pc = 0x1000;
        std::uint8_t rot = 0;
    };

    Instruction make(InstClass cls);
    Instruction makeLoad();
    Instruction makeStore();
    Instruction makeAlu(bool imm);
    Instruction makeMul();
    Instruction makeFp();
    Instruction makeBranch();
    Instruction makeJumpInd();
    Instruction emitCall();
    Instruction emitReturn();
    Instruction emitMalloc(bool allowFree = true, RegIndex forceDst = 0);
    Instruction emitFree(Addr base);
    Instruction emitTaintSource();

    unsigned randomWord(std::uint64_t limitWords);
    Addr pickStackAddr(bool forWrite);
    Addr pickHeapAddr(bool forWrite);
    /** A slot inside a pointer-bearing allocation (or stack). */
    Addr pickPtrStoreAddr();
    Addr pickGlobalAddr();
    Addr pickSharedAddr();
    Addr pickMemAddr(bool forWrite);

    RegIndex pickSrcReg();
    /** A recently-written register holding plain data (ordinary ops
     *  avoid pointer/taint registers; r1 is the always-data fallback). */
    RegIndex pickDataReg();
    RegIndex pickDstReg();
    /** A register currently holding a pointer, or 0 when none. When
     *  @p transientOnly, only rotating registers qualify (so dedicated
     *  base registers r28..r31 are never clobbered/dropped). */
    RegIndex pickPtrReg(bool transientOnly = false);
    /** A register currently holding tainted data, or 0 when none. */
    RegIndex pickTaintReg();
    void noteWrite(RegIndex r, bool isPtr, bool isTaint);

    bool taintActive() const { return emitted_ < taintLiveUntil_; }

    ThreadState &cur() { return threads_[curThread_]; }
    void maybeSwitchThread();
    void maybeFlipPhase();
    const InstMix &mix() const;

    BenchProfile profile_;
    Rng rng_;

    std::vector<ThreadState> threads_;
    unsigned curThread_ = 0;
    unsigned sinceSwitch_ = 0;

    bool highPhase_ = true;
    std::uint64_t phaseLeft_ = 1000;

    std::vector<Alloc> liveAllocs_;
    struct FreeBlock
    {
        Addr base = 0;
        unsigned words = 0;
        unsigned owner = 0;
    };
    std::vector<FreeBlock> freeList_;
    Addr heapCursor_ = heapBase;
    using FreeDue = std::pair<std::uint64_t, Addr>;
    std::priority_queue<FreeDue, std::vector<FreeDue>,
                        std::greater<FreeDue>>
        pendingFrees_;

    std::uint64_t taintLiveUntil_ = 0;

    /**
     * Ground-truth critical metadata mirrors: the exact set of word
     * addresses currently holding pointer / tainted values. These keep
     * the generator's register hints coherent with what a monitor's
     * shadow propagation will compute from the event stream.
     */
    std::unordered_set<Addr> ptrWords_;
    std::unordered_set<Addr> taintWords_;

    void eraseWordRange(Addr base, std::uint64_t lenBytes);

    std::deque<Instruction> pending_;
    std::uint64_t emitted_ = 0;
    std::uint64_t seqTick_ = 0;

    WorkloadLayout layout_;
    std::uint64_t globalLen_ = 0;
    Addr sharedBase_ = 0;
    std::uint64_t sharedLen_ = 0;
};

} // namespace fade

#endif // FADE_TRACE_GENERATOR_HH
