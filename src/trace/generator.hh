/**
 * @file
 * Synthetic workload generator: produces a semantically coherent,
 * deterministic dynamic instruction stream from a benchmark profile.
 * The generator maintains a functional program skeleton — a call stack
 * with frames, live heap allocations, registers and memory slots known
 * to hold pointers or tainted data — so that the event stream the
 * monitors observe is self-consistent (pointers really flow from
 * mallocs, taint really flows from taint sources, loads really target
 * allocated and initialized data).
 *
 * Bug injection: tests and examples call injectBug() to splice a
 * deliberate violation into the stream; the offending instruction
 * carries a ground-truth oracle bit that monitors never see.
 */

#ifndef FADE_TRACE_GENERATOR_HH
#define FADE_TRACE_GENERATOR_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "cpu/source.hh"
#include "isa/instruction.hh"
#include "isa/layout.hh"
#include "sim/random.hh"
#include "sim/ring.hh"
#include "sim/wordset.hh"
#include "trace/profile.hh"

namespace fade
{

/** Deterministic synthetic instruction stream for one benchmark. */
class TraceGenerator : public InstSource
{
  public:
    explicit TraceGenerator(const BenchProfile &profile);

    bool available() override { return true; }
    Instruction fetch() override;

    /**
     * Run-replay fast path (cpu/source.hh): staged and pending
     * instructions (pre-synthesized runs, allocator bookkeeping, init
     * stores, spills) are handed out in place — the core copies
     * straight into its ROB slot with no intermediate copy.
     * Bit-identical to fetch(); a nullptr falls back to fetch() for
     * on-demand generation.
     */
    const Instruction *
    fetchNext() override
    {
        if (stagedHead_ != staged_.size()) {
            // Counted into emitted_ when synthesized (stageRun).
            return &staged_[stagedHead_++];
        }
        if (pending_.empty())
            return nullptr;
        ++emitted_;
        const Instruction *i = &pending_.front();
        pending_.pop_front();
        return i;
    }
    bool supportsRuns() const override { return true; }

    /**
     * Bulk generalization of fetchNext(): the staged block is a flat
     * array, so a whole run of staged instructions is consumed as one
     * contiguous span (valid until the next stage/fetch call). Only
     * staged instructions are spanned; pending splices still go
     * through fetchNext() so their emitted_ accounting is per-draw.
     */
    InstSpan
    fetchSpan(std::size_t max) override
    {
        std::size_t n = std::min(max, staged_.size() - stagedHead_);
        InstSpan s{staged_.data() + stagedHead_, n};
        stagedHead_ += n;
        return s;
    }

    /**
     * Pre-synthesize the next @p n instructions of the stream into the
     * staging ring, to be served by fetchNext()/fetch() before any
     * on-demand synthesis. The staged instructions are produced by the
     * exact fetch() path — same RNG draw order, same emitted_
     * accounting, same pending-queue handling — so the consumed stream
     * is bit-identical to unstaged generation. Callers must drain the
     * stage before any injectBug() call: a bug splices at the synthesis
     * point, which staging moves ahead of consumption (the run-grain
     * driver stages only what it consumes within one batch).
     * @return the number of instructions staged (always @p n here).
     */
    std::size_t stageRun(std::size_t n) override;

    /** Splice an injected bug into the upcoming stream. */
    void injectBug(TruthBits kind);

    /** Startup memory ranges for Monitor::initShadow. */
    const WorkloadLayout &layout() const { return layout_; }

    const BenchProfile &profile() const { return profile_; }
    std::uint64_t emitted() const { return emitted_; }

    /** Ground-truth oracles (tests): current semantic register state. */
    bool regIsPtr(unsigned tid, RegIndex r) const
    {
        return threads_[tid].regPtr[r];
    }
    bool regIsTainted(unsigned tid, RegIndex r) const
    {
        return threads_[tid].regTaint[r];
    }
    /** Ground-truth oracle: does this word hold a pointer right now? */
    bool wordIsPtr(Addr a) const { return ptrWords_.contains(wordKey(a)); }
    bool wordIsTainted(Addr a) const
    {
        return taintWords_.contains(wordKey(a));
    }

    /** Canonical key of the word containing @p a: every
     *  ptrWords_/taintWords_ site stores and probes this form, so the
     *  mirrors cannot split one word across distinct keys. */
    static constexpr Addr wordKey(Addr a) { return a & ~Addr(3); }

    /** Ground-truth word mirrors (tests: alignment / coherence). */
    const WordSet &ptrWords() const { return ptrWords_; }
    const WordSet &taintWords() const { return taintWords_; }

    /**
     * Bounded ring of live slot addresses plus a conservative 16KB-
     * granule signature of everything ever pushed. Pruning a dead
     * range first tests the signature: ranges whose granules were
     * never pushed skip the scan (the common case — returns prune
     * stack granules while the rings mostly hold heap-pool slots).
     * Overwritten entries leave stale signature bits, so the signature
     * is a superset — skips are always sound — and each real scan
     * rebuilds it exactly from the survivors.
     */
    struct SlotRing
    {
        std::vector<Addr> v;
        std::uint64_t sig = 0;

        bool empty() const { return v.empty(); }
        std::size_t size() const { return v.size(); }
        Addr operator[](std::size_t i) const { return v[i]; }
        Addr back() const { return v.back(); }

        static std::uint64_t
        granuleBit(Addr a)
        {
            return std::uint64_t(1) << ((a >> 14) & 63);
        }

        static std::uint64_t
        rangeMask(Addr base, std::uint64_t len)
        {
            std::uint64_t g0 = base >> 14;
            std::uint64_t g1 = (base + (len ? len : 1) - 1) >> 14;
            if (g1 - g0 >= 63)
                return ~std::uint64_t(0);
            std::uint64_t mask = 0;
            for (std::uint64_t g = g0; g <= g1; ++g)
                mask |= std::uint64_t(1) << (g & 63);
            return mask;
        }
    };

  private:
    struct Frame
    {
        Addr base = 0;        ///< low address
        unsigned words = 0;   ///< frame size in words
        unsigned spilled = 0; ///< slots written so far
    };

    struct Alloc
    {
        Addr base = 0;
        unsigned words = 0;
        unsigned initWords = 0; ///< initialized prefix length
        unsigned owner = 0;     ///< allocating thread
        /** Pointer pool / IO buffer: excluded from plain data walks. */
        bool noWalk = false;
    };

    struct ThreadState
    {
        std::vector<Frame> stack;
        Addr sp = 0;
        std::array<bool, numArchRegs> regPtr{};
        std::array<bool, numArchRegs> regTaint{};
        std::vector<RegIndex> recentRegs;
        std::vector<Addr> recentShared;
        SlotRing ptrSlots;   ///< slots holding pointer values
        SlotRing taintSlots; ///< slots holding tainted data
        /** Active sequential-walk run (spatial locality model). */
        struct SeqRun
        {
            Addr next = 0;
            Addr end = 0;
        };
        SeqRun heapRun, globalRun;
        Addr pc = 0x1000;
        std::uint8_t rot = 0;
    };

    Instruction make(InstClass cls);
    Instruction makeLoad();
    Instruction makeStore();
    Instruction makeAlu(bool imm);
    Instruction makeMul();
    Instruction makeFp();
    Instruction makeBranch();
    Instruction makeJumpInd();
    Instruction emitCall();
    Instruction emitReturn();
    Instruction emitMalloc(bool allowFree = true, RegIndex forceDst = 0);
    Instruction emitFree(Addr base);
    Instruction emitTaintSource();

    /** Skewed random word index (defined inline below: called for
     *  nearly every generated memory reference). */
    unsigned randomWord(std::uint64_t limitWords);
    Addr pickStackAddr(bool forWrite);
    Addr pickHeapAddr(bool forWrite);
    /** A slot inside a pointer-bearing allocation (or stack). */
    Addr pickPtrStoreAddr();
    Addr pickGlobalAddr();
    Addr pickSharedAddr();
    Addr pickMemAddr(bool forWrite);

    RegIndex pickSrcReg();
    /** A recently-written register holding plain data (ordinary ops
     *  avoid pointer/taint registers; r1 is the always-data fallback). */
    RegIndex pickDataReg();
    RegIndex pickDstReg();
    /** A register currently holding a pointer, or 0 when none. When
     *  @p transientOnly, only rotating registers qualify (so dedicated
     *  base registers r28..r31 are never clobbered/dropped). */
    RegIndex pickPtrReg(bool transientOnly = false);
    /** A register currently holding tainted data, or 0 when none. */
    RegIndex pickTaintReg();
    void noteWrite(RegIndex r, bool isPtr, bool isTaint);

    bool taintActive() const { return emitted_ < taintLiveUntil_; }

    /** Current thread state (pointer cached across fetches: cur() runs
     *  ~10x per generated instruction). */
    ThreadState &cur() { return *cur_; }
    void
    setCurThread(unsigned t)
    {
        curThread_ = t;
        cur_ = &threads_[t];
    }
    void maybeSwitchThread();
    void maybeFlipPhase();

    BenchProfile profile_;
    Rng rng_;

    /**
     * Precompiled Bernoulli thresholds for the per-instruction draws —
     * exactly equivalent (same draw count, same verdicts) to
     * rng_.chance() of the corresponding profile fractions; see
     * sim/random.hh.
     */
    struct DrawSet
    {
        Bernoulli call, malloc_, taintSrc, taintOp, ptrOp, seq, hot,
            fresh, aluImm, prop, misp, mispHalf, misp03, highPhase,
            free_, ptrAlloc, half, p85, p25, p04, remote, shared;
        /**
         * Integer cut-points replacing the floating-point selection
         * cascades, computed in the constructor by binary-searching
         * the original double-arithmetic chain over all 2^32 draw
         * values (the chains are monotone in the draw): the selected
         * branch is identical for every possible draw, and exactly one
         * next() is consumed either way.
         */
        std::array<std::uint64_t, 7> mixHighCuts{}, mixLowCuts{};
        std::array<std::uint64_t, 2> memCuts{};
    };
    DrawSet draws_;

    std::vector<ThreadState> threads_;
    unsigned curThread_ = 0;
    ThreadState *cur_ = nullptr;
    unsigned sinceSwitch_ = 0;

    bool highPhase_ = true;
    std::uint64_t phaseLeft_ = 1000;

    std::vector<Alloc> liveAllocs_;
    struct FreeBlock
    {
        Addr base = 0;
        unsigned words = 0;
        unsigned owner = 0;
    };
    std::vector<FreeBlock> freeList_;
    Addr heapCursor_ = heapBase;
    using FreeDue = std::pair<std::uint64_t, Addr>;
    std::priority_queue<FreeDue, std::vector<FreeDue>,
                        std::greater<FreeDue>>
        pendingFrees_;

    std::uint64_t taintLiveUntil_ = 0;

    /**
     * Ground-truth critical metadata mirrors: the exact set of word
     * addresses currently holding pointer / tainted values. These keep
     * the generator's register hints coherent with what a monitor's
     * shadow propagation will compute from the event stream. Keys are
     * canonically word-aligned (wordKey); stored as paged word bitmaps
     * (sim/wordset.hh) — this is the hottest per-instruction
     * bookkeeping in the whole functional layer, and the bulk erases
     * on free/return want page-span clears, not per-word probes.
     */
    WordSet ptrWords_;
    WordSet taintWords_;

    void eraseWordRange(Addr base, std::uint64_t lenBytes);

    /** One synthesized instruction: the former fetch() body (the
     *  pending-queue branch plus on-demand synthesis). */
    Instruction synthOne();
    /** On-demand synthesis of one fresh instruction; the caller has
     *  already counted emitted_ and drained pending_. */
    Instruction synthFresh();

    RingDeque<Instruction> pending_;
    /** Flat staged block (stageRun), served before pending_; a vector
     *  plus head index rather than a ring so fetchSpan() can hand out
     *  contiguous runs. Compacted whenever fully drained. */
    std::vector<Instruction> staged_;
    std::size_t stagedHead_ = 0;
    std::uint64_t emitted_ = 0;
    std::uint64_t seqTick_ = 0;

    WorkloadLayout layout_;
    std::uint64_t globalLen_ = 0;
    Addr sharedBase_ = 0;
    std::uint64_t sharedLen_ = 0;
};

// The helpers below run for (nearly) every generated instruction; they
// live in the header so the fetch() fast path compiles into straight
// code instead of a chain of per-instruction calls. Their RNG draw
// sequences are part of the determinism contract — do not reorder.

inline RegIndex
TraceGenerator::pickSrcReg()
{
    ThreadState &ts = cur();
    if (ts.recentRegs.empty())
        return RegIndex(1 + rng_.range(26));
    unsigned w = std::min<unsigned>(profile_.ilpWindow,
                                    unsigned(ts.recentRegs.size()));
    return ts.recentRegs[ts.recentRegs.size() - 1 - rng_.range(w)];
}

inline RegIndex
TraceGenerator::pickDataReg()
{
    ThreadState &ts = cur();
    for (unsigned tries = 0; tries < 4; ++tries) {
        RegIndex r = pickSrcReg();
        if (!ts.regPtr[r] && !ts.regTaint[r])
            return r;
    }
    return 1;
}

inline RegIndex
TraceGenerator::pickDstReg()
{
    ThreadState &ts = cur();
    ts.rot = std::uint8_t(ts.rot % 26 + 1);
    return RegIndex(ts.rot + 1);
}

inline void
TraceGenerator::noteWrite(RegIndex r, bool isPtr, bool isTaint)
{
    ThreadState &ts = cur();
    ts.regPtr[r] = isPtr;
    ts.regTaint[r] = isTaint;
    ts.recentRegs.push_back(r);
    if (ts.recentRegs.size() > 32)
        ts.recentRegs.erase(ts.recentRegs.begin(),
                            ts.recentRegs.begin() + 16);
}

inline unsigned
TraceGenerator::randomWord(std::uint64_t limitWords)
{
    // Skewed reuse: most random accesses land in the hot prefix of the
    // region; the rest sweep the full footprint.
    std::uint64_t hot = (std::uint64_t(1) << profile_.hotWsLog2) / wordSize;
    if (hot < limitWords && draws_.hot.draw(rng_))
        return unsigned(rng_.next64() % hot);
    return unsigned(rng_.next64() % limitWords);
}

inline void
TraceGenerator::maybeSwitchThread()
{
    if (profile_.numThreads <= 1)
        return;
    if (++sinceSwitch_ >= profile_.switchQuantum) {
        sinceSwitch_ = 0;
        setCurThread((curThread_ + 1) % profile_.numThreads);
    }
}

inline void
TraceGenerator::maybeFlipPhase()
{
    if (phaseLeft_ > 0) {
        --phaseLeft_;
        return;
    }
    highPhase_ = draws_.highPhase.draw(rng_);
    phaseLeft_ = rng_.geometric(1.0 / profile_.phaseLenMean, 1u << 20);
}

} // namespace fade

#endif // FADE_TRACE_GENERATOR_HH
