/**
 * @file
 * Benchmark profiles for the synthetic workload generator. Each profile
 * captures the monitoring-relevant behaviour of one benchmark from the
 * paper's suite (SPEC2006-int for the single-threaded monitors,
 * SPLASH-2/PARSEC for AtomCheck): instruction mix, ILP and branch
 * behaviour, working-set/locality, function call and stack-frame
 * statistics, allocation lifetimes, pointer and taint densities, and
 * (for parallel workloads) sharing behaviour.
 *
 * Profiles are calibrated against the per-benchmark numbers the paper
 * reports (e.g., MemLeak monitored IPC: bzip 1.2, mcf 0.2, average
 * 0.68; AddrCheck average 0.24) so that event rates, filtering ratios,
 * and queue dynamics reproduce the paper's shapes.
 */

#ifndef FADE_TRACE_PROFILE_HH
#define FADE_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fade
{

/** Instruction-class mix (fractions; the remainder becomes Nop). */
struct InstMix
{
    double load = 0.20;
    double store = 0.10;
    double alu = 0.35;
    double mul = 0.02;
    double fp = 0.05;
    double branch = 0.12;
    double jumpInd = 0.01;
};

/** Full workload profile for one benchmark. */
struct BenchProfile
{
    std::string name = "generic";

    /** Phase behaviour: the generator alternates low/high phases. */
    InstMix lowMix;
    InstMix highMix;
    double highPhaseFrac = 0.5;
    unsigned phaseLenMean = 2000;

    /** Fraction of ALU ops with an immediate (single source). */
    double aluImmFrac = 0.4;
    double mispredictRate = 0.05;
    /** Register reuse distance; larger = more ILP. */
    unsigned ilpWindow = 6;

    /** Memory reference region weights (normalized internally). */
    double memStackFrac = 0.25;
    double memHeapFrac = 0.45;
    double memGlobalFrac = 0.30;
    /** Heap / global working set sizes (log2 bytes). */
    unsigned heapWsLog2 = 20;
    unsigned globalWsLog2 = 18;
    /** Sequential (strided) vs random addressing within a region. */
    double seqFrac = 0.6;
    /** Random accesses: fraction targeting the hot subset of a region
     *  (skewed/Zipf-like reuse). */
    double hotFrac = 0.85;
    /** Hot-subset size (log2 bytes). */
    unsigned hotWsLog2 = 14;

    /** Function calls per instruction. */
    double callRate = 0.008;
    unsigned frameWordsMin = 8;
    unsigned frameWordsMax = 48;
    /** Stores into fresh frame slots right after a call. */
    unsigned spillSlots = 3;
    /** Fraction of stack stores that touch a previously unused slot. */
    double freshSlotFrac = 0.05;
    /** Target call-stack depth (random walk is biased toward it). */
    unsigned targetDepth = 12;

    /** Heap allocations per instruction. */
    double mallocRate = 0.0006;
    unsigned allocWordsMin = 16;
    unsigned allocWordsMax = 256;
    /** Probability an allocation is eventually freed. */
    double freeFrac = 0.85;
    /** Mean instructions between a malloc and its free. */
    unsigned allocLifetimeMean = 20000;
    /** Fraction of a fresh allocation initialized immediately. */
    double initStoreFrac = 0.5;

    /** Fraction of monitored ops that manipulate pointer values. */
    double ptrOpFrac = 0.10;
    /** Fraction of integer ALU ops that can propagate a value (the
     *  rest are comparisons/flag ops the monitors eliminate). */
    double propAluFrac = 0.55;
    /** Fraction of allocations that hold pointers (node pools). */
    double ptrAllocFrac = 0.15;

    /** Taint-source events per instruction (TaintCheck workloads). */
    double taintSourceRate = 0.0;
    unsigned taintBufWords = 64;
    /** Fraction of ops that touch tainted data while taint is live. */
    double taintOpFrac = 0.0;

    /** Multithreading (AtomCheck workloads). */
    unsigned numThreads = 1;
    unsigned switchQuantum = 0;
    /** Fraction of non-stack refs going to the shared region. */
    double sharedFrac = 0.0;
    /** Of shared refs: chance to touch a word another thread owns. */
    double remoteConflictFrac = 0.0;

    /**
     * Multi-threaded process mode (trace/threads.hh): total threads of
     * ONE process spread across the shards of a multi-core system.
     * 0 keeps the classic per-shard single-process generator. When
     * set, the generator emits synchronization pseudo-ops
     * (lock/thread lifecycle) and shared-heap accesses from a
     * deterministic plan derived from the seed alone, so every shard
     * of the process sees the same global schedule regardless of how
     * threads are placed.
     */
    unsigned procThreads = 0;
    /** Locks guarding the shared heap (plan construction). */
    unsigned procLocks = 4;
    /** Planned critical sections across all threads. */
    unsigned procSections = 48;
    /** Deterministically injected unsynchronized access pairs. */
    unsigned injectRaces = 0;
    /** Deterministically injected cross-thread taint flows. */
    unsigned injectTaintFlows = 0;
    /** Placement (assigned by MultiCoreSystem): this shard's index and
     *  the process's shard count. Thread t runs on shard
     *  t % procShards. */
    unsigned procShardId = 0;
    unsigned procShards = 1;

    std::uint64_t seed = 1;
};

/** Profile for one of the eight SPEC2006-int benchmarks modelled. */
BenchProfile specProfile(const std::string &name);

/** Profile for one of the five parallel benchmarks modelled. */
BenchProfile parallelProfile(const std::string &name);

/**
 * Multi-threaded process profile ("<base>-mt"): @p base is one of the
 * parallel benchmarks; the result runs @p threads threads of one
 * process across the shards of a multi-core system (RaceCheck /
 * SharedTaint workloads, trace/threads.hh).
 */
BenchProfile threadedProfile(const std::string &base,
                             unsigned threads = 4);

/** Names of the modelled SPEC2006-int benchmarks. */
const std::vector<std::string> &specBenchmarks();

/** Benchmarks with taint propagation (used for TaintCheck, Sec. 6). */
const std::vector<std::string> &taintBenchmarks();

/** Names of the modelled parallel benchmarks (AtomCheck, Sec. 6). */
const std::vector<std::string> &parallelBenchmarks();

/**
 * Multiprogrammed workload for a sharded multi-core system: the first
 * profile is @p anchor (so the N=1 sharded system reproduces the
 * single-core run of that benchmark exactly), followed by the remaining
 * SPEC benchmarks in suite order.
 */
std::vector<BenchProfile> multiprogramWorkloads(const std::string &anchor);

} // namespace fade

#endif // FADE_TRACE_PROFILE_HH
