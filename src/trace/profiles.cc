#include "trace/profile.hh"

#include "sim/logging.hh"

namespace fade
{

namespace
{

/** Hash a name into a stable per-benchmark seed. */
std::uint64_t
seedOf(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name) {
        h ^= std::uint64_t(std::uint8_t(c));
        h *= 1099511628211ULL;
    }
    return h | 1;
}

} // namespace

const std::vector<std::string> &
specBenchmarks()
{
    static const std::vector<std::string> v = {
        "astar", "bzip", "gcc", "gobmk", "hmmer", "libquantum", "mcf",
        "omnetpp",
    };
    return v;
}

const std::vector<std::string> &
taintBenchmarks()
{
    // The paper uses the benchmarks with tainting propagation.
    static const std::vector<std::string> v = {
        "astar", "bzip", "mcf", "omnetpp",
    };
    return v;
}

const std::vector<std::string> &
parallelBenchmarks()
{
    static const std::vector<std::string> v = {
        "water", "ocean", "blackscholes", "streamcluster",
        "fluidanimate",
    };
    return v;
}

std::vector<BenchProfile>
multiprogramWorkloads(const std::string &anchor)
{
    std::vector<BenchProfile> v;
    v.push_back(specProfile(anchor));
    for (const std::string &b : specBenchmarks())
        if (b != anchor)
            v.push_back(specProfile(b));
    return v;
}

BenchProfile
specProfile(const std::string &name)
{
    BenchProfile p;
    p.name = name;
    p.seed = seedOf(name);

    // Baseline mixes: the low phase is control/FP heavy with a light
    // monitored footprint; the high phase is the pointer/data loop
    // kernel that dominates the monitored event stream.
    p.lowMix = InstMix{0.14, 0.06, 0.28, 0.02, 0.10, 0.16, 0.01};
    p.highMix = InstMix{0.24, 0.12, 0.40, 0.02, 0.02, 0.10, 0.01};

    if (name == "astar") {
        // Path-finding: pointer-chasing over grid nodes, frequent
        // calls; low filtering ratio for MemLeak (paper: ~70%).
        p.highPhaseFrac = 0.55;
        p.highMix = InstMix{0.26, 0.10, 0.38, 0.01, 0.03, 0.11, 0.01};
        p.heapWsLog2 = 22;
        p.seqFrac = 0.35;
        p.ilpWindow = 5;
        p.mispredictRate = 0.06;
        p.callRate = 0.008;
        p.spillSlots = 2;
        p.ptrOpFrac = 0.085;
        p.mallocRate = 0.0005;
        p.taintSourceRate = 0.00005;
        p.taintOpFrac = 0.085;
    } else if (name == "bzip") {
        // Compression: extremely regular, ILP-rich loops; monitored
        // IPC above 1.0 for MemLeak (paper: 1.2).
        p.highPhaseFrac = 0.92;
        p.highMix = InstMix{0.27, 0.15, 0.45, 0.01, 0.00, 0.07, 0.00};
        p.lowMix = InstMix{0.20, 0.10, 0.40, 0.02, 0.02, 0.12, 0.01};
        p.heapWsLog2 = 19;
        p.seqFrac = 0.90;
        p.ilpWindow = 10;
        p.mispredictRate = 0.012;
        p.callRate = 0.002;
        p.spillSlots = 2;
        p.ptrOpFrac = 0.015;
        p.mallocRate = 0.0001;
        p.allocWordsMin = 256;
        p.allocWordsMax = 2048;
        p.taintSourceRate = 0.00004;
        p.taintOpFrac = 0.075;
    } else if (name == "gcc") {
        // Compiler: call-heavy, allocation-heavy, irregular control;
        // low MemLeak filtering ratio (paper: ~70%) and sensitivity to
        // call/return drains.
        p.highPhaseFrac = 0.55;
        p.heapWsLog2 = 22;
        p.seqFrac = 0.45;
        p.ilpWindow = 6;
        p.mispredictRate = 0.055;
        p.callRate = 0.011;
        p.spillSlots = 2;
        p.frameWordsMax = 64;
        p.ptrOpFrac = 0.09;
        p.mallocRate = 0.0009;
        p.allocWordsMin = 8;
        p.allocWordsMax = 96;
        p.initStoreFrac = 0.5;
    } else if (name == "gobmk") {
        // Go engine: branchy search with moderate pointer use.
        p.highPhaseFrac = 0.6;
        p.heapWsLog2 = 20;
        p.seqFrac = 0.5;
        p.ilpWindow = 5;
        p.mispredictRate = 0.075;
        p.callRate = 0.009;
        p.spillSlots = 3;
        p.ptrOpFrac = 0.02;
        p.mallocRate = 0.0004;
        p.phaseLenMean = 6000;
    } else if (name == "hmmer") {
        // HMM search: regular dynamic-programming inner loops.
        p.highPhaseFrac = 0.85;
        p.highMix = InstMix{0.28, 0.13, 0.42, 0.02, 0.01, 0.08, 0.00};
        p.heapWsLog2 = 19;
        p.seqFrac = 0.85;
        p.ilpWindow = 9;
        p.mispredictRate = 0.015;
        p.callRate = 0.003;
        p.spillSlots = 2;
        p.ptrOpFrac = 0.012;
        p.mallocRate = 0.0002;
    } else if (name == "libquantum") {
        // Quantum simulation: streaming over a large amplitude array.
        p.highPhaseFrac = 0.8;
        p.highMix = InstMix{0.25, 0.09, 0.41, 0.02, 0.04, 0.10, 0.00};
        p.heapWsLog2 = 23;
        p.seqFrac = 0.95;
        p.ilpWindow = 8;
        p.mispredictRate = 0.02;
        p.callRate = 0.004;
        p.spillSlots = 2;
        p.ptrOpFrac = 0.012;
        p.mallocRate = 0.0001;
        p.allocWordsMin = 1024;
        p.allocWordsMax = 4096;
    } else if (name == "mcf") {
        // Network simplex: huge working set, pointer chasing, memory
        // bound; lowest monitored IPC (paper: ~0.2 for MemLeak).
        p.highPhaseFrac = 0.5;
        p.highMix = InstMix{0.30, 0.08, 0.30, 0.01, 0.02, 0.12, 0.01};
        p.heapWsLog2 = 26;
        p.seqFrac = 0.12;
        p.hotFrac = 0.25;
        p.hotWsLog2 = 16;
        p.ilpWindow = 3;
        p.mispredictRate = 0.07;
        p.callRate = 0.004;
        p.spillSlots = 2;
        p.ptrOpFrac = 0.026;
        p.mallocRate = 0.0002;
        p.allocWordsMin = 64;
        p.allocWordsMax = 512;
        p.taintSourceRate = 0.00003;
        p.taintOpFrac = 0.085;
    } else if (name == "omnetpp") {
        // Discrete-event simulation: sustained allocation/message
        // traffic, long propagation-heavy phases (the paper's deepest
        // event-queue bursts: up to 8K entries).
        p.highPhaseFrac = 0.75;
        p.highMix = InstMix{0.26, 0.13, 0.42, 0.01, 0.01, 0.09, 0.01};
        p.phaseLenMean = 12000;
        p.heapWsLog2 = 22;
        p.seqFrac = 0.5;
        p.ilpWindow = 7;
        p.mispredictRate = 0.03;
        p.callRate = 0.006;
        p.spillSlots = 2;
        p.ptrOpFrac = 0.03;
        p.mallocRate = 0.0010;
        p.allocWordsMin = 16;
        p.allocWordsMax = 128;
        p.initStoreFrac = 0.35;
        p.freeFrac = 0.95;
        p.allocLifetimeMean = 30000;
        p.taintSourceRate = 0.00005;
        p.taintOpFrac = 0.085;
    } else {
        fatal("unknown SPEC benchmark profile: ", name);
    }
    return p;
}

BenchProfile
parallelProfile(const std::string &name)
{
    BenchProfile p;
    p.name = name;
    p.seed = seedOf(name);
    p.numThreads = 4;
    p.switchQuantum = 8000;
    p.lowMix = InstMix{0.11, 0.05, 0.28, 0.02, 0.16, 0.16, 0.01};
    p.highMix = InstMix{0.15, 0.08, 0.34, 0.02, 0.12, 0.13, 0.01};
    p.ilpWindow = 3;
    p.mispredictRate = 0.085;
    p.memStackFrac = 0.20;
    p.memHeapFrac = 0.40;
    p.memGlobalFrac = 0.40;
    p.callRate = 0.006;
    p.mallocRate = 0.0002;
    p.ptrOpFrac = 0.012;
    // Per-thread hot sets are small: most accesses re-touch data the
    // thread recently used (keeps AtomCheck's same-thread check hot).
    p.globalWsLog2 = 14;
    p.seqFrac = 0.85;

    if (name == "water") {
        // Molecular dynamics: mostly private data, light sharing.
        p.sharedFrac = 0.14;
        p.remoteConflictFrac = 0.28;
        p.heapWsLog2 = 19;
        p.seqFrac = 0.7;
    } else if (name == "ocean") {
        // Grid solver: large shared grids, boundary sharing.
        p.sharedFrac = 0.26;
        p.remoteConflictFrac = 0.26;
        p.heapWsLog2 = 23;
        p.seqFrac = 0.85;
    } else if (name == "blackscholes") {
        // Embarrassingly parallel options pricing: minimal sharing.
        p.sharedFrac = 0.05;
        p.remoteConflictFrac = 0.20;
        p.heapWsLog2 = 20;
        p.seqFrac = 0.9;
        p.ilpWindow = 4;
        p.mispredictRate = 0.05;
    } else if (name == "streamcluster") {
        // Clustering: shared centroid tables, frequent conflicts.
        p.sharedFrac = 0.30;
        p.remoteConflictFrac = 0.28;
        p.heapWsLog2 = 21;
        p.seqFrac = 0.6;
    } else if (name == "fluidanimate") {
        // Particle simulation: neighbour-cell sharing.
        p.sharedFrac = 0.20;
        p.remoteConflictFrac = 0.26;
        p.heapWsLog2 = 22;
        p.seqFrac = 0.55;
        p.mispredictRate = 0.04;
    } else {
        fatal("unknown parallel benchmark profile: ", name);
    }
    return p;
}

BenchProfile
threadedProfile(const std::string &base, unsigned threads)
{
    // Start from the parallel benchmark's character (sharing level,
    // working sets), then switch the generator into process mode: the
    // sync/shared-access plan is derived from the seed alone, so every
    // shard hosting threads of this process rebuilds the same plan.
    BenchProfile p = parallelProfile(base);
    p.name = base + "-mt";
    p.seed = seedOf(p.name);
    p.procThreads = threads;
    p.numThreads = threads;
    p.switchQuantum = 64;
    if (base == "ocean" || base == "streamcluster") {
        // Heavier sharing: more critical sections over more locks.
        p.procLocks = 6;
        p.procSections = 72;
    }
    return p;
}

} // namespace fade
