#include "trace/threads.hh"

#include <algorithm>

#include "core/regfiles.hh"
#include "sim/logging.hh"

namespace fade
{

namespace
{

constexpr Addr fillerPcBase = 0x1000;
constexpr Addr fillerPcStride = 0x100000;
constexpr Addr privStride = 0x100000;
constexpr unsigned privWords = 4096;

Addr
lockAddr(unsigned l)
{
    return procLockBase + Addr(l) * 64;
}

Addr
threadObjAddr(unsigned t)
{
    return procThreadObjBase + Addr(t) * 64;
}

RegIndex
pickReg(Rng &rng)
{
    return RegIndex(1 + rng.range(27));
}

/** Plan-construction state: appends planned instructions to per-thread
 *  scripts, assigning each a pc from the global plan-order region and
 *  a small deterministic filler gap. */
struct PlanBuilder
{
    SyncPlan plan;
    Rng rng;
    std::uint64_t nextPcIdx = 0;
    std::vector<std::uint32_t> acq; ///< per-lock acquisition counter

    PlanBuilder(const BenchProfile &p, unsigned locks)
        : rng(p.seed ^ 0x74687265616473ULL), acq(locks, 0)
    {
        plan.perThread.resize(p.procThreads);
    }

    Instruction &
    add(unsigned t, InstClass cls)
    {
        SyncPlan::Step s;
        s.gap = 1 + rng.range(6);
        s.inst.cls = cls;
        s.inst.pc = procPlanPcBase + 4 * nextPcIdx++;
        s.inst.tid = ThreadId(t);
        plan.perThread[t].push_back(s);
        return plan.perThread[t].back().inst;
    }

    Instruction &
    sync(unsigned t, EventKind kind, Addr obj, std::uint32_t aux)
    {
        Instruction &i = add(t, InstClass::HighLevel);
        i.hlKind = kind;
        i.frameBase = obj;
        i.frameBytes = aux;
        return i;
    }

    void
    acquire(unsigned t, unsigned l)
    {
        sync(t, EventKind::LockAcquire, lockAddr(l), acq[l]++);
    }

    void
    release(unsigned t, unsigned l)
    {
        sync(t, EventKind::LockRelease, lockAddr(l), acq[l] - 1);
    }

    Instruction &
    access(unsigned t, Addr word, bool store)
    {
        Instruction &i =
            add(t, store ? InstClass::Store : InstClass::IntAlu);
        if (!store) {
            i.cls = InstClass::Load;
            i.dst = pickReg(rng);
            i.hasDst = true;
        }
        i.src1 = pickReg(rng);
        i.numSrc = 1;
        i.memAddr = word;
        return i;
    }
};

} // namespace

SyncPlan
SyncPlan::build(const BenchProfile &p)
{
    const unsigned T = p.procThreads;
    const unsigned L = p.procLocks ? p.procLocks : 1;
    panic_if(T == 0, "SyncPlan::build on a non-process profile");
    panic_if(Addr(L) * procWordsPerLock * 4 >
                 procRaceBase - procSharedBase,
             "procLocks spill out of the lock-guarded shared region");

    PlanBuilder b(p, L);

    // Thread 0 spawns every other thread before any of their planned
    // work (the create edge every later happens-before path builds on).
    for (unsigned c = 1; c < T; ++c)
        b.sync(0, EventKind::ThreadCreate, threadObjAddr(c), c);

    // Lock-guarded critical sections over disjoint per-lock word
    // slices: correctly synchronized by construction, so clean runs
    // must stay quiet.
    for (unsigned s = 0; s < p.procSections; ++s) {
        unsigned t = b.rng.range(T);
        unsigned l = b.rng.range(L);
        b.acquire(t, l);
        unsigned n = 1 + b.rng.range(3);
        for (unsigned k = 0; k < n; ++k) {
            Addr word = procSharedBase +
                        4 * (Addr(l) * procWordsPerLock +
                             b.rng.range(procWordsPerLock));
            b.access(t, word, b.rng.chance(0.5));
        }
        b.release(t, l);
    }

    // Injected cross-thread taint flows: thread a publishes a tainted
    // buffer under a lock, thread b reads it under the same lock in a
    // later critical section (happens-before ordered hand-off).
    for (unsigned f = 0; T >= 2 && f < p.injectTaintFlows; ++f) {
        unsigned a = b.rng.range(T);
        unsigned bb = (a + 1 + b.rng.range(T - 1)) % T;
        unsigned l = b.rng.range(L);
        Addr buf = procTaintBase + Addr(f) * 64;
        b.acquire(a, l);
        b.sync(a, EventKind::TaintSource, buf, 8);
        b.release(a, l);
        b.acquire(bb, l);
        b.access(bb, buf, false).truth |= truthCrossTaint;
        b.release(bb, l);
    }

    // Injected races: two threads hit the same word with no
    // synchronization between them (dedicated words, so the clean
    // sections can never alias them).
    for (unsigned r = 0; T >= 2 && r < p.injectRaces; ++r) {
        unsigned a = b.rng.range(T);
        unsigned bb = (a + 1 + b.rng.range(T - 1)) % T;
        Addr word = procRaceBase + Addr(r) * 64;
        b.access(a, word, true);
        b.access(bb, word, b.rng.chance(0.5)).truth |= truthDataRace;
    }

    // Thread 0 joins every child after all planned work.
    for (unsigned c = 1; c < T; ++c)
        b.sync(0, EventKind::ThreadJoin, threadObjAddr(c), c);

    return std::move(b.plan);
}

std::uint64_t
threadedPlanHorizon(const BenchProfile &p)
{
    SyncPlan plan = SyncPlan::build(p);
    std::uint64_t horizon = 0;
    for (const auto &script : plan.perThread) {
        std::uint64_t len = 0;
        for (const SyncPlan::Step &s : script)
            len += s.gap + 1;
        horizon = std::max(horizon, len);
    }
    return horizon;
}

ThreadedSource::ThreadedSource(const BenchProfile &p)
{
    const unsigned T = p.procThreads;
    fatal_if(T == 0, "ThreadedSource on a non-process profile");
    fatal_if(T > maxThreads, "process has ", T,
             " threads but the MD register file supports ",
             unsigned(maxThreads));
    fatal_if(p.procShards == 0 || p.procShardId >= p.procShards,
             "invalid process placement: shard ", p.procShardId,
             " of ", p.procShards);
    fatal_if(T % p.procShards != 0, "process threads (", T,
             ") must divide evenly across shards (", p.procShards, ")");

    SyncPlan plan = SyncPlan::build(p);
    for (unsigned t = p.procShardId; t < T; t += p.procShards) {
        Hosted h;
        h.tid = ThreadId(t);
        h.rng = Rng(p.seed ^ (0x9E3779B97F4A7C15ULL * (t + 1)));
        h.pc = fillerPcBase + Addr(t) * fillerPcStride;
        h.priv = globalBase + Addr(t) * privStride;
        h.script = std::move(plan.perThread[t]);
        h.gapLeft = h.script.empty() ? 0 : h.script.front().gap;
        h.propFrac = p.propAluFrac;
        h.mispredict = p.mispredictRate;
        hosted_.push_back(std::move(h));
    }

    quantum_ = p.switchQuantum ? p.switchQuantum : 64;
    left_ = quantum_;

    layout_.globalBase = globalBase;
    layout_.globalLen = std::uint64_t(T) * privStride;
    layout_.stackBase = stackLimit;
    layout_.stackLen = 0x4000;
}

Instruction
ThreadedSource::filler(Hosted &h)
{
    Instruction i;
    i.pc = h.pc;
    h.pc += 4;
    i.tid = h.tid;

    unsigned r = h.rng.range(100);
    if (r < 55) {
        i.cls = InstClass::IntAlu;
        i.src1 = pickReg(h.rng);
        i.src2 = pickReg(h.rng);
        i.numSrc = 2;
        i.dst = pickReg(h.rng);
        i.hasDst = true;
        i.mayPropagate = h.rng.chance(h.propFrac);
    } else if (r < 80) {
        bool store = r >= 70;
        i.cls = store ? InstClass::Store : InstClass::Load;
        i.memAddr = h.priv + 4 * h.rng.range(privWords);
        i.src1 = pickReg(h.rng);
        i.numSrc = 1;
        if (!store) {
            i.dst = pickReg(h.rng);
            i.hasDst = true;
        }
    } else if (r < 90) {
        i.cls = InstClass::Branch;
        i.src1 = pickReg(h.rng);
        i.numSrc = 1;
        i.mispredict = h.rng.chance(h.mispredict);
    } else {
        i.cls = InstClass::Nop;
    }
    return i;
}

Instruction
ThreadedSource::fetch()
{
    if (stagedHead_ != staged_.size())
        return staged_[stagedHead_++];
    return synthOne();
}

std::size_t
ThreadedSource::stageRun(std::size_t n)
{
    if (stagedHead_ == staged_.size()) {
        staged_.clear();
        stagedHead_ = 0;
    }
    staged_.reserve(staged_.size() + n);
    for (std::size_t k = 0; k < n; ++k)
        staged_.push_back(synthOne());
    return n;
}

Instruction
ThreadedSource::synthOne()
{
    Hosted &h = hosted_[cur_];
    Instruction i;
    if (h.gapLeft > 0) {
        --h.gapLeft;
        i = filler(h);
    } else if (h.step < h.script.size()) {
        i = h.script[h.step].inst;
        ++h.step;
        if (h.step < h.script.size())
            h.gapLeft = h.script[h.step].gap;
    } else {
        i = filler(h);
    }

    if (--left_ == 0) {
        left_ = quantum_;
        cur_ = (cur_ + 1) % hosted_.size();
    }
    return i;
}

} // namespace fade
