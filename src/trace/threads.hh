/**
 * @file
 * Deterministic multi-threaded process generator: threads of ONE
 * process placed on different shards of a multi-core system, sharing a
 * heap and synchronizing through locks and thread lifecycle pseudo-ops
 * (EventKind::LockAcquire .. ThreadJoin).
 *
 * The central property is placement invariance: the monitored part of
 * every thread's instruction stream — synchronization pseudo-ops and
 * shared-heap accesses — is a pure function of (profile.seed, tid),
 * spliced from a SyncPlan that every shard rebuilds identically from
 * the seed alone. Unmonitored filler between planned operations comes
 * from a per-thread RNG and touches only thread-private data, so race
 * and taint monitors observe exactly the planned operations in exactly
 * per-thread program order regardless of how threads are distributed
 * across shards, scheduler policy, or execution engine. That is what
 * lets tests demand bit-identical report fingerprints across the whole
 * N x policy x engine x topology matrix (tests/test_threads.cc).
 */

#ifndef FADE_TRACE_THREADS_HH
#define FADE_TRACE_THREADS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cpu/source.hh"
#include "isa/layout.hh"
#include "sim/random.hh"
#include "trace/profile.hh"

namespace fade
{

/** Shared-heap layout of a process-mode workload. All shards of one
 *  process address the same physical pages (MonitoringSystem disables
 *  its per-shard address salt for these workloads). */
constexpr Addr procSharedBase = heapBase;          ///< lock-guarded words
constexpr Addr procRaceBase = heapBase + 0x10000;  ///< unsynchronized words
constexpr Addr procTaintBase = heapBase + 0x20000; ///< taint hand-off
constexpr Addr procSharedEnd = heapBase + 0x30000;
constexpr Addr procLockBase = heapBase + 0x40000;      ///< lock objects
constexpr Addr procThreadObjBase = heapBase + 0x50000; ///< thread objects

/** Words guarded by one lock (disjoint 4 KiB slices of the shared
 *  region, so lock-ordered accesses can never race). */
constexpr unsigned procWordsPerLock = 1024;

/** Data the cross-shard monitors watch (shared heap of the process). */
constexpr bool
isProcSharedData(Addr a)
{
    return a >= procSharedBase && a < procSharedEnd;
}

/** PCs of planned operations (one global code region, indexed by plan
 *  construction order — invariant across placements). */
constexpr Addr procPlanPcBase = 0x00800000;

/**
 * The process's global synchronization/sharing plan: per-thread scripts
 * of planned instructions, each preceded by a fixed number of filler
 * instructions. Built identically on every shard from the profile seed.
 * Plan construction order is a total order consistent with per-thread
 * program order, per-lock acquisition order, and create/join edges, so
 * a greedy readiness-driven merge of the per-thread logs always makes
 * progress (monitor/interleave.cc relies on this).
 */
struct SyncPlan
{
    struct Step
    {
        unsigned gap = 0; ///< filler instructions before inst
        Instruction inst;
    };

    std::vector<std::vector<Step>> perThread;

    static SyncPlan build(const BenchProfile &p);
};

/** Instructions one thread must execute (filler included) to finish
 *  every planned operation of its script. Tests size their runs so
 *  every hosted thread crosses this horizon on every shard count. */
std::uint64_t threadedPlanHorizon(const BenchProfile &p);

/**
 * Instruction source for the threads a shard hosts: thread t of the
 * process runs on shard t % procShards, hosted threads interleave on
 * the shard's core in fixed round-robin quanta (the classic time-slice
 * model, as TraceGenerator's multithreaded profiles).
 */
class ThreadedSource : public InstSource
{
  public:
    explicit ThreadedSource(const BenchProfile &p);

    bool available() override { return true; }
    Instruction fetch() override;

    /**
     * Run-replay fast path (cpu/source.hh): staged instructions are
     * handed out in place, bit-identical to fetch() — staging calls
     * the exact fetch() synthesis (same per-thread RNG draw order,
     * same quantum rotation).
     */
    const Instruction *
    fetchNext() override
    {
        if (stagedHead_ == staged_.size())
            return nullptr;
        return &staged_[stagedHead_++];
    }
    bool supportsRuns() const override { return true; }
    std::size_t stageRun(std::size_t n) override;

    /** Bulk fetchNext(): consume staged instructions as one
     *  contiguous span (valid until the next stage/fetch call). */
    InstSpan
    fetchSpan(std::size_t max) override
    {
        std::size_t n = std::min(max, staged_.size() - stagedHead_);
        InstSpan s{staged_.data() + stagedHead_, n};
        stagedHead_ += n;
        return s;
    }

    const WorkloadLayout &layout() const { return layout_; }

  private:
    struct Hosted
    {
        ThreadId tid = 0;
        Rng rng{1};    ///< filler stream, seeded from (seed, tid)
        Addr pc = 0;   ///< filler pc cursor (per-thread code region)
        Addr priv = 0; ///< thread-private data region
        std::vector<SyncPlan::Step> script;
        std::size_t step = 0;   ///< next planned op
        unsigned gapLeft = 0;   ///< filler before the next planned op
        double propFrac = 0.55; ///< mayPropagate fraction for filler
        double mispredict = 0.05;
    };

    Instruction filler(Hosted &h);
    /** One synthesized instruction (the round-robin fetch() body). */
    Instruction synthOne();

    std::vector<Hosted> hosted_;
    /** Flat staged block (stageRun); see TraceGenerator::staged_. */
    std::vector<Instruction> staged_;
    std::size_t stagedHead_ = 0;
    std::size_t cur_ = 0;
    unsigned quantum_ = 64;
    unsigned left_ = 64;
    WorkloadLayout layout_;
};

} // namespace fade

#endif // FADE_TRACE_THREADS_HH
