/**
 * @file
 * Trace file encoding and decoding. See tracefile.hh for the format
 * contract; this file owns the wire details: LEB128 varints, zigzag
 * deltas, the per-record flag layout, CRC32, and the structural
 * validation the reader performs before any cursor runs.
 */

#include "trace/tracefile.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "trace/wire.hh"

namespace fade
{

namespace
{

const char headMagic[8] = {'F', 'A', 'D', 'E', 'T', 'R', 'C', '1'};
const char endMagic[8] = {'F', 'A', 'D', 'E', 'E', 'N', 'D', '1'};

constexpr std::uint8_t tagBlock = 0x01;
constexpr std::uint8_t tagFooter = 0x02;

/**
 * Per-record flag bytes. flags0 packs the two enums (class in the low
 * nibble, high-level event kind in the high nibble); flags1 is bools
 * and presence bits. Presence bits are derived purely from field
 * values (a field at its default is simply absent), so
 * encode(decode(x)) == x field for field. Format v2 widened hlKind to
 * the full high nibble (room for the synchronization pseudo-ops) and
 * moved the branch outcome to flags1 bit 7, which v1 kept reserved.
 */
constexpr std::uint8_t f1HasDst = 1 << 0;
constexpr std::uint8_t f1MayPropagate = 1 << 1;
constexpr std::uint8_t f1HasRegs = 1 << 2;
constexpr std::uint8_t f1HasMem = 1 << 3;
constexpr std::uint8_t f1HasFrame = 1 << 4;
constexpr std::uint8_t f1HasTruth = 1 << 5;
constexpr std::uint8_t f1TidChanged = 1 << 6;
constexpr std::uint8_t f1Mispredict = 1 << 7;

using wire::Enc;
using wire::crc32;

/** wire::Dec bound to the trace reader's error contract: every decode
 *  failure surfaces as TraceError with the "trace <region>: ..."
 *  diagnostic the reader documents. */
[[noreturn]] void
traceDecodeFail(const std::string &msg)
{
    throw TraceError("trace " + msg);
}

struct Dec : wire::Dec
{
    Dec(const std::uint8_t *begin, std::size_t n, const char *region)
        : wire::Dec(begin, n, region, &traceDecodeFail)
    {}
};

/** Delta state, reset at every block boundary so blocks decode
 *  independently. */
struct DeltaState
{
    Addr pc = 0;
    Addr memAddr = 0;
    Addr frameBase = 0;
    ThreadId tid = 0;
};

void
encodeRecord(Enc &e, DeltaState &d, const Instruction &in)
{
    bool hasRegs = in.src1 || in.src2 || in.numSrc || in.dst;
    bool hasMem = in.memAddr != 0 || in.memSize != 4;
    bool hasFrame = in.frameBytes != 0 || in.frameBase != 0;
    bool hasTruth = in.truth != truthNone;
    bool tidChanged = in.tid != d.tid;

    std::uint8_t flags0 = std::uint8_t(in.cls) |
                          (std::uint8_t(in.hlKind) << 4);
    std::uint8_t flags1 = (in.mispredict ? f1Mispredict : 0) |
                          (in.hasDst ? f1HasDst : 0) |
                          (in.mayPropagate ? f1MayPropagate : 0) |
                          (hasRegs ? f1HasRegs : 0) |
                          (hasMem ? f1HasMem : 0) |
                          (hasFrame ? f1HasFrame : 0) |
                          (hasTruth ? f1HasTruth : 0) |
                          (tidChanged ? f1TidChanged : 0);

    e.u8(flags0);
    e.u8(flags1);
    e.svarint(in.pc - d.pc);
    d.pc = in.pc;
    if (hasRegs) {
        e.u8(in.src1);
        e.u8(in.src2);
        e.u8(in.numSrc);
        e.u8(in.dst);
    }
    if (hasMem) {
        e.svarint(in.memAddr - d.memAddr);
        d.memAddr = in.memAddr;
        e.u8(in.memSize);
    }
    if (hasFrame) {
        e.varint(in.frameBytes);
        e.svarint(in.frameBase - d.frameBase);
        d.frameBase = in.frameBase;
    }
    if (hasTruth)
        e.u8(in.truth);
    if (tidChanged) {
        e.u8(in.tid);
        d.tid = in.tid;
    }
}

void
decodeRecord(Dec &d, DeltaState &st, Instruction &out)
{
    std::uint8_t flags0 = d.u8();
    std::uint8_t flags1 = d.u8();

    std::uint8_t cls = flags0 & 0x0F;
    std::uint8_t hl = (flags0 >> 4) & 0x0F;
    if (cls >= std::uint8_t(InstClass::NumClasses))
        d.fail("invalid instruction class " + std::to_string(cls));
    if (hl > std::uint8_t(EventKind::ThreadJoin))
        d.fail("invalid high-level event kind " + std::to_string(hl));

    out = Instruction{};
    out.cls = InstClass(cls);
    out.hlKind = EventKind(hl);
    out.mispredict = (flags1 & f1Mispredict) != 0;
    out.hasDst = (flags1 & f1HasDst) != 0;
    out.mayPropagate = (flags1 & f1MayPropagate) != 0;

    st.pc += d.svarint();
    out.pc = st.pc;
    if (flags1 & f1HasRegs) {
        out.src1 = d.u8();
        out.src2 = d.u8();
        out.numSrc = d.u8();
        out.dst = d.u8();
    }
    if (flags1 & f1HasMem) {
        st.memAddr += d.svarint();
        out.memAddr = st.memAddr;
        out.memSize = d.u8();
    }
    if (flags1 & f1HasFrame) {
        std::uint64_t fb = d.varint();
        if (fb > 0xFFFFFFFFull)
            d.fail("frame size exceeds 32 bits");
        out.frameBytes = std::uint32_t(fb);
        st.frameBase += d.svarint();
        out.frameBase = st.frameBase;
    }
    if (flags1 & f1HasTruth)
        out.truth = d.u8();
    if (flags1 & f1TidChanged)
        st.tid = d.u8();
    out.tid = st.tid;
}

void
encodeManifest(Enc &e, const TraceManifest &m)
{
    e.u8(m.present ? 1 : 0);
    if (!m.present)
        return;
    e.str(m.monitor);
    e.varint(m.warmupInstructions);
    e.varint(m.measureInstructions);
    e.varint(m.numShards);
    e.varint(m.clusters);
    e.varint(m.shardsPerCluster);
    e.varint(m.fadesPerShard);
    e.varint(m.remoteLatency);
    e.varint(m.sliceTicks);
    e.varint(m.eqCapacity);
    e.varint(m.ueqCapacity);
    e.str(m.coreName);
    e.varint(m.coreWidth);
    e.varint(m.robSize);
    e.u8(m.inOrder ? 1 : 0);
    e.varint(m.mispredictPenalty);
    e.u8((m.accelerated ? 1 : 0) | (m.twoCore ? 2 : 0) |
         (m.perfectConsumer ? 4 : 0));
    e.u8(m.hasFingerprint ? 1 : 0);
    if (m.hasFingerprint)
        e.fixed64(m.fingerprintHash);
}

TraceManifest
decodeManifest(Dec &d)
{
    TraceManifest m;
    std::uint8_t present = d.u8();
    if (present > 1)
        d.fail("invalid manifest presence byte");
    m.present = present != 0;
    if (!m.present)
        return m;
    m.monitor = d.str();
    m.warmupInstructions = d.varint();
    m.measureInstructions = d.varint();
    m.numShards = d.varint();
    m.clusters = d.varint();
    m.shardsPerCluster = d.varint();
    m.fadesPerShard = d.varint();
    m.remoteLatency = d.varint();
    m.sliceTicks = d.varint();
    m.eqCapacity = d.varint();
    m.ueqCapacity = d.varint();
    m.coreName = d.str();
    m.coreWidth = d.varint();
    m.robSize = d.varint();
    m.inOrder = d.u8() != 0;
    m.mispredictPenalty = d.varint();
    std::uint8_t sys = d.u8();
    if (sys & ~0x07)
        d.fail("invalid manifest system flags");
    m.accelerated = (sys & 1) != 0;
    m.twoCore = (sys & 2) != 0;
    m.perfectConsumer = (sys & 4) != 0;
    std::uint8_t hasFp = d.u8();
    if (hasFp > 1)
        d.fail("invalid manifest fingerprint flag");
    m.hasFingerprint = hasFp != 0;
    if (m.hasFingerprint)
        m.fingerprintHash = d.fixed64();
    return m;
}

} // namespace

std::uint64_t
fingerprintHash(const std::vector<std::uint64_t> &v)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t w : v)
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= 1099511628211ULL;
        }
    return h;
}

//
// TraceWriter
//

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        throw TraceError("cannot open '" + path + "' for writing");
}

TraceWriter::~TraceWriter()
{
    if (closed_)
        return;
    try {
        close();
    } catch (const TraceError &e) {
        warn("trace writer shutdown: ", e.what());
    }
}

unsigned
TraceWriter::addStream(const TraceStreamMeta &meta)
{
    panic_if(headerWritten_, "trace stream added after first record");
    streams_.push_back(Stream{meta, {}, 0});
    return unsigned(streams_.size() - 1);
}

void
TraceWriter::setConfigFingerprint(std::uint64_t fp)
{
    panic_if(headerWritten_, "trace config fingerprint set after header");
    configFp_ = fp;
}

void
TraceWriter::writeBytes(const void *p, std::size_t n)
{
    if (std::fwrite(p, 1, n, f_) != n)
        throw TraceError("short write to '" + path_ + "'");
}

void
TraceWriter::writeHeader()
{
    writeBytes(headMagic, sizeof(headMagic));
    Enc e;
    e.varint(traceFormatVersion);
    e.varint(streams_.size());
    for (const Stream &s : streams_) {
        e.str(s.meta.profile);
        e.varint(s.meta.seed);
        e.varint(s.meta.numThreads);
        e.varint(s.meta.procThreads);
        e.varint(s.meta.layout.globalBase);
        e.varint(s.meta.layout.globalLen);
        e.varint(s.meta.layout.stackBase);
        e.varint(s.meta.layout.stackLen);
    }
    e.fixed64(configFp_);
    std::uint32_t crc = crc32(e.out.data(), e.out.size());
    e.fixed32(crc);
    writeBytes(e.out.data(), e.out.size());
    headerWritten_ = true;
}

void
TraceWriter::append(unsigned stream, const Instruction &inst)
{
    panic_if(stream >= streams_.size(), "trace append to unknown stream ",
             stream);
    Stream &s = streams_[stream];
    s.buf.push_back(inst);
    if (s.buf.size() >= maxBlockRecords)
        flush(stream);
}

void
TraceWriter::flush(unsigned stream)
{
    panic_if(stream >= streams_.size(), "trace flush of unknown stream ",
             stream);
    Stream &s = streams_[stream];
    if (s.buf.empty())
        return;

    Enc payload;
    DeltaState d;
    for (const Instruction &inst : s.buf)
        encodeRecord(payload, d, inst);

    Enc block;
    block.u8(tagBlock);
    block.varint(stream);
    block.varint(s.buf.size());
    block.varint(payload.out.size());

    std::uint32_t crc = crc32(payload.out.data(), payload.out.size());

    {
        std::lock_guard<std::mutex> lock(fileMutex_);
        if (!headerWritten_)
            writeHeader();
        writeBytes(block.out.data(), block.out.size());
        writeBytes(payload.out.data(), payload.out.size());
        Enc tail;
        tail.fixed32(crc);
        writeBytes(tail.out.data(), tail.out.size());
    }

    s.records += s.buf.size();
    s.buf.clear();
}

void
TraceWriter::setManifest(const TraceManifest &m)
{
    manifest_ = m;
}

std::uint64_t
TraceWriter::records(unsigned stream) const
{
    panic_if(stream >= streams_.size(), "trace records of unknown stream ",
             stream);
    const Stream &s = streams_[stream];
    return s.records + s.buf.size();
}

void
TraceWriter::close()
{
    panic_if(closed_, "trace writer closed twice");
    for (unsigned i = 0; i < streams_.size(); ++i)
        flush(i);
    if (!headerWritten_)
        writeHeader();

    Enc body;
    body.varint(streams_.size());
    for (const Stream &s : streams_)
        body.varint(s.records);
    encodeManifest(body, manifest_);

    Enc footer;
    footer.u8(tagFooter);
    footer.out.insert(footer.out.end(), body.out.begin(), body.out.end());
    footer.fixed32(crc32(body.out.data(), body.out.size()));
    writeBytes(footer.out.data(), footer.out.size());
    writeBytes(endMagic, sizeof(endMagic));

    if (std::fclose(f_) != 0) {
        f_ = nullptr;
        closed_ = true;
        throw TraceError("error closing '" + path_ + "'");
    }
    f_ = nullptr;
    closed_ = true;
}

//
// TraceReader
//

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw TraceError("cannot open '" + path + "' for reading");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        throw TraceError("cannot size '" + path + "'");
    }
    bytes_.resize(std::size_t(size));
    std::size_t got = bytes_.empty()
                          ? 0
                          : std::fread(bytes_.data(), 1, bytes_.size(), f);
    std::fclose(f);
    if (got != bytes_.size())
        throw TraceError("short read from '" + path + "'");

    if (bytes_.size() < sizeof(headMagic) ||
        std::memcmp(bytes_.data(), headMagic, sizeof(headMagic)) != 0)
        throw TraceError("'" + path + "' is not a FADE trace (bad magic)");

    Dec d(bytes_.data() + sizeof(headMagic),
          bytes_.size() - sizeof(headMagic), "header");

    // Header: parse, then CRC-check the exact bytes just consumed.
    const std::uint8_t *headerStart = d.p;
    std::uint64_t version = d.varint();
    if (version != traceFormatVersion)
        throw TraceError("unsupported trace version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(traceFormatVersion) + ")");
    version_ = std::uint32_t(version);
    std::uint64_t nstreams = d.varint();
    if (nstreams == 0 || nstreams > 4096)
        d.fail("implausible stream count " + std::to_string(nstreams));
    for (std::uint64_t i = 0; i < nstreams; ++i) {
        TraceStreamMeta m;
        m.profile = d.str();
        m.seed = d.varint();
        std::uint64_t threads = d.varint();
        if (threads == 0 || threads > 256)
            d.fail("implausible thread count");
        m.numThreads = unsigned(threads);
        std::uint64_t proc = d.varint();
        if (proc > 256)
            d.fail("implausible process thread count");
        m.procThreads = unsigned(proc);
        m.layout.globalBase = d.varint();
        m.layout.globalLen = d.varint();
        m.layout.stackBase = d.varint();
        m.layout.stackLen = d.varint();
        streams_.push_back(std::move(m));
    }
    configFp_ = d.fixed64();
    std::uint32_t wantCrc =
        crc32(headerStart, std::size_t(d.p - headerStart));
    if (d.fixed32() != wantCrc)
        d.fail("header CRC mismatch");

    blocks_.resize(streams_.size());
    std::vector<std::uint64_t> counted(streams_.size(), 0);

    // Blocks until the footer tag; every payload is CRC-checked now so
    // cursors can decode later without re-validating integrity.
    bool sawFooter = false;
    while (!sawFooter) {
        Dec b(d.p, d.remaining(), "block");
        std::uint8_t tag = b.u8();
        if (tag == tagBlock) {
            std::uint64_t stream = b.varint();
            if (stream >= streams_.size())
                b.fail("block for unknown stream " +
                       std::to_string(stream));
            std::uint64_t nrec = b.varint();
            std::uint64_t len = b.varint();
            if (len > b.remaining())
                b.fail("truncated block payload");
            std::uint64_t offset =
                std::uint64_t(b.p - bytes_.data());
            std::uint32_t crc = crc32(b.p, std::size_t(len));
            b.p += len;
            if (b.fixed32() != crc)
                b.fail("block CRC mismatch (stream " +
                       std::to_string(stream) + ")");
            blocks_[stream].push_back(BlockRef{offset, len, nrec});
            counted[stream] += nrec;
            d.p = b.p;
        } else if (tag == tagFooter) {
            const std::uint8_t *bodyStart = b.p;
            std::uint64_t n = b.varint();
            if (n != streams_.size())
                b.fail("footer stream count mismatch");
            for (std::size_t i = 0; i < streams_.size(); ++i) {
                streams_[i].records = b.varint();
                if (streams_[i].records != counted[i])
                    b.fail("stream " + std::to_string(i) +
                           " record count mismatch (footer says " +
                           std::to_string(streams_[i].records) +
                           ", blocks hold " +
                           std::to_string(counted[i]) + ")");
            }
            manifest_ = decodeManifest(b);
            std::uint32_t bodyCrc =
                crc32(bodyStart, std::size_t(b.p - bodyStart));
            if (b.fixed32() != bodyCrc)
                b.fail("footer CRC mismatch");
            if (b.remaining() != sizeof(endMagic) ||
                std::memcmp(b.p, endMagic, sizeof(endMagic)) != 0)
                b.fail("missing end marker (file truncated?)");
            sawFooter = true;
        } else {
            b.fail("unknown section tag " + std::to_string(tag));
        }
    }
}

std::uint64_t
TraceReader::streamBytes(unsigned s) const
{
    stream(s); // bounds check
    std::uint64_t n = 0;
    for (const BlockRef &b : blocks_[s])
        n += b.length;
    return n;
}

std::uint64_t
TraceReader::streamBlocks(unsigned s) const
{
    stream(s); // bounds check
    return blocks_[s].size();
}

const TraceStreamMeta &
TraceReader::stream(unsigned s) const
{
    if (s >= streams_.size())
        throw TraceError("no stream " + std::to_string(s) + " in '" +
                         path_ + "'");
    return streams_[s];
}

TraceReader::Cursor::Cursor(const TraceReader &r, unsigned stream)
    : r_(&r), stream_(stream), remaining_(r.stream(stream).records)
{
}

void
TraceReader::Cursor::loadBlock()
{
    const BlockRef &blk = r_->blocks_[stream_][blockIdx_++];
    Dec d(r_->bytes_.data() + blk.offset, std::size_t(blk.length),
          "record");
    DeltaState st;
    recs_.clear();
    recs_.resize(std::size_t(blk.nrec));
    for (std::uint64_t i = 0; i < blk.nrec; ++i)
        decodeRecord(d, st, recs_[std::size_t(i)]);
    if (d.remaining() != 0)
        d.fail("trailing bytes after last record in block");
    i_ = 0;
}

bool
TraceReader::Cursor::next(Instruction &out)
{
    const Instruction *p = nextRef();
    if (!p)
        return false;
    out = *p;
    return true;
}

const Instruction *
TraceReader::Cursor::nextRef()
{
    if (remaining_ == 0)
        return nullptr;
    while (i_ == recs_.size())
        loadBlock();
    --remaining_;
    return &recs_[i_++];
}

InstSpan
TraceReader::Cursor::run(std::size_t max)
{
    if (remaining_ == 0)
        return {};
    while (i_ == recs_.size())
        loadBlock();
    std::size_t n = std::min(max, recs_.size() - i_);
    InstSpan s{recs_.data() + i_, n};
    i_ += n;
    remaining_ -= n;
    return s;
}

std::size_t
TraceReader::Cursor::prepare(std::size_t n)
{
    if (remaining_ == 0)
        return 0;
    while (i_ == recs_.size())
        loadBlock();
    return std::min(n, recs_.size() - i_);
}

//
// ReplaySource
//

ReplaySource::ReplaySource(const TraceReader &reader, unsigned stream)
    : cursor_(reader.cursor(stream)), stream_(stream)
{
}

const Instruction *
ReplaySource::fetchNext()
{
    const Instruction *p = cursor_.nextRef();
    if (p)
        ++consumed_;
    return p;
}

Instruction
ReplaySource::fetch()
{
    const Instruction *i = fetchNext();
    panic_if(!i, "replay stream ", stream_, " exhausted after ", consumed_,
             " records; the run demands more instructions than were "
             "captured (config mismatch?)");
    return *i;
}

} // namespace fade
