/**
 * @file
 * Compact versioned binary trace format ("ftrace") plus the
 * capture/replay sources that turn a monitored run into a reproducible
 * artifact. A trace file holds the dynamic application instruction
 * streams of one run — one stream per shard — exactly as the cores
 * fetched them from the workload generator, so feeding a stream back
 * through ReplaySource reproduces the run bit for bit (same events,
 * same filtering, same statistics, same bug reports) without paying
 * the generator's RNG and bookkeeping cost, and without the generator
 * having to exist at all on the replay side.
 *
 * File layout (all multi-byte integers are LEB128 varints unless noted
 * as fixed-width little-endian):
 *
 *   magic "FADETRC1" (8 bytes)
 *   header: version, stream count, per-stream metadata (profile name,
 *           seed, thread count, startup layout), config fingerprint
 *           (fixed u64), CRC32 of the header bytes (fixed u32)
 *   blocks: tag 0x01, stream id, record count, payload length,
 *           payload (delta/varint-encoded records), CRC32 of the
 *           payload (fixed u32)
 *   footer: tag 0x02, per-stream record counts, replay manifest
 *           (monitor, slice lengths, topology/core/queue knobs,
 *           expected result-fingerprint hash), CRC32 (fixed u32)
 *   magic "FADEEND1" (8 bytes)
 *
 * Records are delta-encoded against the previous record of the same
 * block (pc, memAddr, frameBase, tid), and every block resets that
 * state, so blocks decode independently and a corrupt block never
 * poisons its neighbours. The reader validates structure, CRCs, and
 * counts up front and throws TraceError — never UB — on malformed
 * input (tests/test_tracefile.cc fuzzes corruption and truncation
 * under ASan/UBSan).
 *
 * Versioning rule: any change to the record encoding, the header, or
 * the footer bumps traceFormatVersion; readers reject versions they do
 * not know. Old golden traces under tests/golden/ are regenerated when
 * the version bumps (docs/BENCHMARKS.md).
 */

#ifndef FADE_TRACE_TRACEFILE_HH
#define FADE_TRACE_TRACEFILE_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/source.hh"
#include "isa/instruction.hh"
#include "isa/layout.hh"

namespace fade
{

/** Malformed or unreadable trace file (reader), or I/O failure
 *  (writer). Always carries a human-readable diagnostic. */
class TraceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Bumped on any incompatible change to the encoding. v2: hlKind
 *  widened to four bits (synchronization pseudo-ops), mispredict moved
 *  to the previously reserved flags1 bit, and per-stream metadata
 *  gained the owning process's total thread count. */
constexpr std::uint32_t traceFormatVersion = 2;

/** Per-stream metadata: what produced this instruction stream and the
 *  startup state a monitor needs to replay it (Monitor::initShadow
 *  reads the layout from here on the replay side). */
struct TraceStreamMeta
{
    std::string profile;
    std::uint64_t seed = 0;
    unsigned numThreads = 1;
    /** Total threads of the owning multi-threaded process, spread
     *  across all shards (trace/threads.hh); 0 for the classic
     *  single-process-per-shard workloads. */
    unsigned procThreads = 0;
    WorkloadLayout layout;
    /** Total records in the stream (filled in by the reader; ignored
     *  by TraceWriter::addStream). */
    std::uint64_t records = 0;
};

/**
 * Replay manifest: everything needed to re-run the captured experiment
 * and hard-check the result. Written into the footer by closeTrace();
 * a trace captured without one (present == false) still replays
 * through the config knobs, but trace_tool --verify requires it.
 */
struct TraceManifest
{
    bool present = false;

    std::string monitor; ///< "" = unmonitored baseline
    std::uint64_t warmupInstructions = 0;
    std::uint64_t measureInstructions = 0;

    /** System shape (result-affecting knobs only; engine/policy are
     *  proven result-invariant and deliberately excluded). */
    std::uint64_t numShards = 1;
    std::uint64_t clusters = 1;
    std::uint64_t shardsPerCluster = 0;
    std::uint64_t fadesPerShard = 1;
    std::uint64_t remoteLatency = 0;
    std::uint64_t sliceTicks = 0;
    std::uint64_t eqCapacity = 0;
    std::uint64_t ueqCapacity = 0;
    std::string coreName;
    std::uint64_t coreWidth = 0;
    std::uint64_t robSize = 0;
    bool inOrder = false;
    std::uint64_t mispredictPenalty = 0;
    bool accelerated = true;
    bool twoCore = false;
    bool perfectConsumer = false;

    /** FNV-1a hash of the run's resultFingerprint vector; valid only
     *  when hasFingerprint. */
    bool hasFingerprint = false;
    std::uint64_t fingerprintHash = 0;
};

/** FNV-1a over a fingerprint vector (the hash stored in manifests and
 *  golden-trace checks; same function the topology golden tests use). */
std::uint64_t fingerprintHash(const std::vector<std::uint64_t> &v);

/**
 * Streaming trace writer. Streams are registered once (before the
 * first record), records are buffered per stream and emitted as
 * CRC-protected blocks — either when a buffer reaches maxBlockRecords
 * or at an explicit flush() (the shard scheduler flushes at every
 * slice barrier, which keeps capture files byte-identical across
 * scheduler policies). close() writes the footer; a writer destroyed
 * without close() closes itself (best effort, errors swallowed).
 *
 * Thread-safety: append()/flush() for different streams may run on
 * different threads (each stream's buffer is touched only by the
 * thread driving that shard; the file append is serialized
 * internally). addStream(), setManifest() and close() are
 * owner-thread only.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Register a stream; returns its id (dense, in call order). */
    unsigned addStream(const TraceStreamMeta &meta);

    /** Record the capture config hash (header field; see
     *  traceConfigFingerprint in system/multicore.hh). Must precede
     *  the first append/flush. */
    void setConfigFingerprint(std::uint64_t fp);

    /** Append one fetched instruction to @p stream. */
    void append(unsigned stream, const Instruction &inst);

    /** Emit @p stream's buffered records as one block (no-op when the
     *  buffer is empty). */
    void flush(unsigned stream);

    /** Attach the replay manifest written into the footer. */
    void setManifest(const TraceManifest &m);

    /** Flush every stream, write footer + end magic, close the file. */
    void close();

    bool closed() const { return closed_; }
    const std::string &path() const { return path_; }
    std::uint64_t records(unsigned stream) const;

    /** Auto-flush threshold (bounds buffer memory on sliceless runs;
     *  scheduler slices flush well below it). */
    static constexpr std::size_t maxBlockRecords = 65536;

  private:
    void writeHeader();
    void writeBytes(const void *p, std::size_t n);

    struct Stream
    {
        TraceStreamMeta meta;
        std::vector<Instruction> buf;
        std::uint64_t records = 0;
    };

    std::string path_;
    std::FILE *f_ = nullptr;
    std::vector<Stream> streams_;
    TraceManifest manifest_;
    std::uint64_t configFp_ = 0;
    bool headerWritten_ = false;
    bool closed_ = false;
    /** Serializes block appends from concurrent shard flushes. */
    std::mutex fileMutex_;
};

/**
 * Validating trace reader. The constructor parses the whole file —
 * magic, header, every block header + CRC, footer, record counts —
 * and throws TraceError with a diagnostic on any inconsistency;
 * record payloads are decoded lazily, block by block, by cursors.
 * Immutable after construction, so any number of cursors (one per
 * replaying shard, possibly on different threads) may read
 * concurrently.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    std::uint32_t version() const { return version_; }
    unsigned numStreams() const { return unsigned(streams_.size()); }
    const TraceStreamMeta &stream(unsigned s) const;
    const TraceManifest &manifest() const { return manifest_; }
    std::uint64_t configFingerprint() const { return configFp_; }
    std::uint64_t fileBytes() const { return bytes_.size(); }
    /** Encoded payload bytes of @p s's records (sum over blocks). */
    std::uint64_t streamBytes(unsigned s) const;
    /** Number of blocks holding @p s's records. */
    std::uint64_t streamBlocks(unsigned s) const;
    const std::string &path() const { return path_; }

    /** Sequential decoder over one stream's records. */
    class Cursor
    {
      public:
        /** Decode the next record into @p out.
         *  @return false at end of stream. */
        bool next(Instruction &out);

        /** Consume the next record by reference: a pointer into the
         *  decoded block, valid until the block is drained and another
         *  record is requested. nullptr at end of stream. */
        const Instruction *nextRef();

        /** Consume up to @p max records as one contiguous span of the
         *  decoded block (block-decode fast path: no per-record copy).
         *  Spans never cross block boundaries; empty at end of
         *  stream. Storage valid until the block is drained and
         *  another record is requested. */
        InstSpan run(std::size_t max);

        /** Ensure the next records are decoded; @return how many are
         *  ready to be served contiguously (min of @p n and the
         *  current block's remainder; 0 at end of stream). */
        std::size_t prepare(std::size_t n);

        std::uint64_t remaining() const { return remaining_; }

      private:
        friend class TraceReader;
        Cursor(const TraceReader &r, unsigned stream);
        void loadBlock();

        const TraceReader *r_;
        unsigned stream_;
        std::size_t blockIdx_ = 0;
        std::vector<Instruction> recs_;
        std::size_t i_ = 0;
        std::uint64_t remaining_;
    };

    Cursor cursor(unsigned stream) const { return Cursor(*this, stream); }

  private:
    friend class Cursor;

    struct BlockRef
    {
        std::uint64_t offset; ///< payload offset into bytes_
        std::uint64_t length; ///< payload length
        std::uint64_t nrec;
    };

    std::string path_;
    std::vector<std::uint8_t> bytes_;
    std::uint32_t version_ = 0;
    std::vector<TraceStreamMeta> streams_;
    std::vector<std::vector<BlockRef>> blocks_; ///< per stream
    TraceManifest manifest_;
    std::uint64_t configFp_ = 0;
};

/**
 * Replays one captured stream as the application core's InstSource.
 * Every record is served through the run-replay fast path (fetchNext),
 * which the core treats exactly like an available()/fetch() round trip
 * (cpu/source.hh), so replay timing is bit-identical to the live
 * generator's. At end of stream the source reports unavailable; a
 * fetch past the end is a panic with the stream position (it means the
 * run was driven further than the capture, i.e. a config mismatch).
 */
class ReplaySource : public InstSource
{
  public:
    ReplaySource(const TraceReader &reader, unsigned stream);

    bool available() override { return cursor_.remaining() != 0; }
    Instruction fetch() override;
    const Instruction *fetchNext() override;
    bool supportsRuns() const override { return true; }

    /** Records are pre-decoded per block; staging just makes sure the
     *  next block is decoded (a hint — the consumed stream is
     *  identical either way). */
    std::size_t
    stageRun(std::size_t n) override
    {
        return cursor_.prepare(n);
    }

    /** Bulk fetchNext(): serve a contiguous run of decoded records
     *  straight from the block buffer, no per-record copy. */
    InstSpan
    fetchSpan(std::size_t max) override
    {
        InstSpan s = cursor_.run(max);
        consumed_ += s.count;
        return s;
    }

    /** Records consumed so far. */
    std::uint64_t consumed() const { return consumed_; }
    std::uint64_t remaining() const { return cursor_.remaining(); }

  private:
    TraceReader::Cursor cursor_;
    unsigned stream_;
    std::uint64_t consumed_ = 0;
};

/**
 * Tees a live InstSource to a trace writer without perturbing it: every
 * call forwards to the inner source (same call sequence, same RNG draw
 * order) and every fetched instruction is appended to the stream. The
 * monitoring system interposes this between the generator and the app
 * core when capture is enabled.
 */
class CaptureSource : public InstSource
{
  public:
    CaptureSource(InstSource &inner, TraceWriter &writer, unsigned stream)
        : inner_(inner), writer_(writer), stream_(stream)
    {}

    bool available() override { return inner_.available(); }

    Instruction
    fetch() override
    {
        Instruction i = inner_.fetch();
        writer_.append(stream_, i);
        return i;
    }

    const Instruction *
    fetchNext() override
    {
        const Instruction *i = inner_.fetchNext();
        if (i)
            writer_.append(stream_, *i);
        return i;
    }

    bool supportsRuns() const override { return inner_.supportsRuns(); }

    /** Staging happens in the inner source; the tee appends records at
     *  consumption time (fetch/fetchNext/fetchSpan), so capture order
     *  is unaffected. */
    std::size_t stageRun(std::size_t n) override
    {
        return inner_.stageRun(n);
    }

    InstSpan
    fetchSpan(std::size_t max) override
    {
        InstSpan s = inner_.fetchSpan(max);
        for (std::size_t i = 0; i < s.count; ++i)
            writer_.append(stream_, s.data[i]);
        return s;
    }

    /** Emit buffered records as a block (slice-barrier hook). */
    void flush() { writer_.flush(stream_); }

    unsigned stream() const { return stream_; }

  private:
    InstSource &inner_;
    TraceWriter &writer_;
    unsigned stream_;
};

} // namespace fade

#endif // FADE_TRACE_TRACEFILE_HH
