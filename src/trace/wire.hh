/**
 * @file
 * Shared wire-format primitives: IEEE CRC32, zigzag, and the LEB128
 * varint encoder/decoder pair behind both binary surfaces of the
 * system — the .ftrace trace files (trace/tracefile.cc) and the
 * monitoring daemon's framed socket protocol (daemon/protocol.hh).
 * Factored out of tracefile.cc so the two formats cannot drift apart
 * on the primitives they share.
 *
 * Dec reports malformed input through a caller-supplied [[noreturn]]
 * fail handler instead of a fixed exception type: the trace reader
 * throws TraceError, the daemon throws ProtocolError, and both keep
 * their documented error contracts while sharing the bounds checks.
 */

#ifndef FADE_TRACE_WIRE_HH
#define FADE_TRACE_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fade::wire
{

/** IEEE CRC32 (reflected, poly 0xEDB88320), table-driven. */
inline const std::uint32_t *
crcTable()
{
    static const auto table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

inline std::uint32_t
crc32(const std::uint8_t *p, std::size_t n)
{
    const std::uint32_t *t = crcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/**
 * Zigzag over two's-complement deltas held in uint64 (all delta
 * arithmetic stays unsigned-wrapping, so extreme addresses — 0,
 * 2^64 - 1 — never hit signed overflow).
 */
inline std::uint64_t
zigzag(std::uint64_t v)
{
    return (v << 1) ^ ((v >> 63) ? ~std::uint64_t(0) : 0);
}

inline std::uint64_t
unzigzag(std::uint64_t v)
{
    return (v >> 1) ^ ((v & 1) ? ~std::uint64_t(0) : 0);
}

/** Byte-buffer encoder (LEB128 varints + fixed-width words). */
struct Enc
{
    std::vector<std::uint8_t> out;

    void u8(std::uint8_t v) { out.push_back(v); }

    void
    varint(std::uint64_t v)
    {
        while (v >= 0x80) {
            out.push_back(std::uint8_t(v) | 0x80);
            v >>= 7;
        }
        out.push_back(std::uint8_t(v));
    }

    /** Two's-complement delta in a uint64. */
    void svarint(std::uint64_t delta) { varint(zigzag(delta)); }

    void
    fixed32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(std::uint8_t(v >> (8 * i)));
    }

    void
    fixed64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(std::uint8_t(v >> (8 * i)));
    }

    void
    str(const std::string &s)
    {
        varint(s.size());
        out.insert(out.end(), s.begin(), s.end());
    }
};

/** Bounds-checked decoder over a byte range; reports any overrun or
 *  malformed varint through the fail handler instead of reading past
 *  the end. */
struct Dec
{
    /** Must not return (throw the caller's error type). The message
     *  already names the region. */
    using FailFn = void (*)(const std::string &msg);

    const std::uint8_t *p;
    const std::uint8_t *end;
    const char *what; ///< region name for diagnostics
    FailFn onFail;

    Dec(const std::uint8_t *begin, std::size_t n, const char *region,
        FailFn fail)
        : p(begin), end(begin + n), what(region), onFail(fail)
    {}

    std::size_t remaining() const { return std::size_t(end - p); }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        onFail(std::string(what) + ": " + msg);
        // The handler's contract is [[noreturn]]; if it ever returns
        // the decode must still not continue on poisoned state.
        std::abort();
    }

    std::uint8_t
    u8()
    {
        if (p == end)
            fail("truncated (need 1 byte)");
        return *p++;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (p == end)
                fail("truncated varint");
            std::uint8_t b = *p++;
            v |= std::uint64_t(b & 0x7F) << shift;
            if (!(b & 0x80))
                return v;
        }
        fail("varint longer than 64 bits");
    }

    /** Two's-complement delta in a uint64. */
    std::uint64_t svarint() { return unzigzag(varint()); }

    std::uint32_t
    fixed32()
    {
        if (remaining() < 4)
            fail("truncated u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    fixed64()
    {
        if (remaining() < 8)
            fail("truncated u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(*p++) << (8 * i);
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = varint();
        if (n > remaining())
            fail("truncated string");
        std::string s(reinterpret_cast<const char *>(p), std::size_t(n));
        p += n;
        return s;
    }
};

} // namespace fade::wire

#endif // FADE_TRACE_WIRE_HH
