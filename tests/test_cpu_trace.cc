/** @file Tests for the core timing models and the workload generator. */

#include <gtest/gtest.h>

#include <set>

#include "cpu/core.hh"
#include "trace/generator.hh"

namespace fade
{

namespace
{

/** Fixed instruction list source. */
class ListSource : public InstSource
{
  public:
    explicit ListSource(std::vector<Instruction> v) : v_(std::move(v)) {}

    bool available() override { return i_ < v_.size(); }
    Instruction fetch() override { return v_[i_++]; }

  private:
    std::vector<Instruction> v_;
    std::size_t i_ = 0;
};

/** Counting sink with optional commit throttle. */
class CountSink : public CommitSink
{
  public:
    bool
    canCommit(const Instruction &) override
    {
        return !blocked;
    }

    void onCommit(const Instruction &) override { ++committed; }

    bool blocked = false;
    std::uint64_t committed = 0;
};

Instruction
alu(RegIndex s1, RegIndex s2, RegIndex d)
{
    Instruction i;
    i.cls = InstClass::IntAlu;
    i.numSrc = 2;
    i.src1 = s1;
    i.src2 = s2;
    i.dst = d;
    i.hasDst = true;
    return i;
}

Instruction
load(Addr a, RegIndex d)
{
    Instruction i;
    i.cls = InstClass::Load;
    i.memAddr = a;
    i.numSrc = 1;
    i.src1 = 1;
    i.dst = d;
    i.hasDst = true;
    return i;
}

std::uint64_t
runToCompletion(Core &core, CountSink &sink, std::uint64_t expect,
                std::uint64_t limit = 100000)
{
    Cycle now = 0;
    while (sink.committed < expect && now < limit)
        core.tick(now++);
    return now;
}

} // namespace

TEST(CoreModel, IndependentAluReachesFullWidth)
{
    std::vector<Instruction> insts;
    for (int i = 0; i < 4000; ++i)
        insts.push_back(alu(RegIndex(1 + i % 8), RegIndex(9 + i % 8),
                            RegIndex(17 + i % 8)));
    // Writing a register before reading it would create dependences;
    // use disjoint src/dst banks above.
    ListSource src(insts);
    CountSink sink;
    Core core(aggressiveOooParams(), nullptr);
    core.addThread(&src, &sink);
    std::uint64_t cycles = runToCompletion(core, sink, 4000);
    double ipc = 4000.0 / cycles;
    EXPECT_GT(ipc, 3.5);
}

TEST(CoreModel, SerialChainLimitsIpc)
{
    std::vector<Instruction> insts;
    for (int i = 0; i < 2000; ++i)
        insts.push_back(alu(5, 5, 5)); // fully serial
    ListSource src(insts);
    CountSink sink;
    Core core(aggressiveOooParams(), nullptr);
    core.addThread(&src, &sink);
    std::uint64_t cycles = runToCompletion(core, sink, 2000);
    double ipc = 2000.0 / cycles;
    EXPECT_LT(ipc, 1.1) << "1-cycle serial chain caps IPC at 1";
    EXPECT_GT(ipc, 0.9);
}

TEST(CoreModel, InOrderSlowerThanOoOOnMisses)
{
    auto mkInsts = [] {
        std::vector<Instruction> v;
        for (int i = 0; i < 2000; ++i) {
            // Alternate a missing load with independent ALU work.
            if (i % 8 == 0) {
                Instruction ld = load(Addr(i) * 4096, RegIndex(1 + i % 4));
                ld.src1 = 14; // address register never written: the
                              // misses are independent of each other
                v.push_back(ld);
            }
            else
                v.push_back(alu(RegIndex(9 + i % 4), 14,
                                RegIndex(17 + i % 4)));
        }
        return v;
    };

    Cache l2a(l2Params(), nullptr, dramLatency);
    Cache l1a(l1Params("a"), &l2a);
    ListSource srcA(mkInsts());
    CountSink sinkA;
    Core ooo(aggressiveOooParams(), &l1a);
    ooo.addThread(&srcA, &sinkA);
    std::uint64_t oooCycles = runToCompletion(ooo, sinkA, 2000);

    Cache l2b(l2Params(), nullptr, dramLatency);
    Cache l1b(l1Params("b"), &l2b);
    ListSource srcB(mkInsts());
    CountSink sinkB;
    Core io(inOrderParams(), &l1b);
    io.addThread(&srcB, &sinkB);
    std::uint64_t ioCycles = runToCompletion(io, sinkB, 2000);

    EXPECT_GT(ioCycles, oooCycles * 2)
        << "OoO overlaps misses with independent work";
}

TEST(CoreModel, LeanBetweenInOrderAndAggressive)
{
    auto mkInsts = [] {
        std::vector<Instruction> v;
        for (int i = 0; i < 3000; ++i)
            v.push_back(alu(RegIndex(1 + i % 12), RegIndex(13 + i % 12),
                            RegIndex(1 + (i + 5) % 12)));
        return v;
    };
    std::array<std::uint64_t, 3> cycles{};
    std::array<CoreParams, 3> cores = {inOrderParams(), leanOooParams(),
                                       aggressiveOooParams()};
    for (int k = 0; k < 3; ++k) {
        ListSource src(mkInsts());
        CountSink sink;
        Core c(cores[k], nullptr);
        c.addThread(&src, &sink);
        cycles[k] = runToCompletion(c, sink, 3000);
    }
    EXPECT_GT(cycles[0], cycles[1]);
    EXPECT_GE(cycles[1], cycles[2]);
}

TEST(CoreModel, SinkBackpressureStallsRetirement)
{
    std::vector<Instruction> insts(100, alu(1, 2, 3));
    ListSource src(insts);
    CountSink sink;
    sink.blocked = true;
    Core core(aggressiveOooParams(), nullptr);
    core.addThread(&src, &sink);
    Cycle now = 0;
    for (; now < 200; ++now)
        core.tick(now);
    EXPECT_EQ(sink.committed, 0u);
    EXPECT_GT(core.threadStats(0).sinkStallCycles, 0u);
    sink.blocked = false;
    runToCompletion(core, sink, 100, 10000);
    EXPECT_EQ(sink.committed, 100u);
}

TEST(CoreModel, MispredictStallsFetch)
{
    std::vector<Instruction> clean, pred;
    for (int i = 0; i < 1000; ++i) {
        Instruction b;
        b.cls = InstClass::Branch;
        b.numSrc = 1;
        b.src1 = RegIndex(1 + i % 4);
        b.mispredict = false;
        clean.push_back(b);
        b.mispredict = (i % 10 == 0);
        pred.push_back(b);
    }
    ListSource srcA(clean), srcB(pred);
    CountSink sa, sb;
    Core ca(aggressiveOooParams(), nullptr);
    ca.addThread(&srcA, &sa);
    Core cb(aggressiveOooParams(), nullptr);
    cb.addThread(&srcB, &sb);
    std::uint64_t a = runToCompletion(ca, sa, 1000);
    std::uint64_t b = runToCompletion(cb, sb, 1000);
    EXPECT_GT(b, a + 500) << "10% mispredicts cost redirect bubbles";
}

TEST(CoreModel, SmtSharesBandwidthFairly)
{
    std::vector<Instruction> insts(4000, alu(1, 2, 3));
    // Give each thread a serial chain: with round-robin slot sharing
    // both threads should make similar progress.
    ListSource srcA(insts), srcB(insts);
    CountSink sa, sb;
    Core core(aggressiveOooParams(), nullptr);
    core.addThread(&srcA, &sa);
    core.addThread(&srcB, &sb);
    for (Cycle now = 0; now < 3000; ++now)
        core.tick(now);
    EXPECT_GT(sa.committed, 1000u);
    EXPECT_GT(sb.committed, 1000u);
    double ratio = double(sa.committed) / double(sb.committed);
    EXPECT_NEAR(ratio, 1.0, 0.2);
}

TEST(CoreModel, AtMostTwoThreads)
{
    Core core(aggressiveOooParams(), nullptr);
    ListSource s1({}), s2({}), s3({});
    core.addThread(&s1, nullptr);
    core.addThread(&s2, nullptr);
    EXPECT_EXIT(core.addThread(&s3, nullptr),
                ::testing::ExitedWithCode(1), "two hardware threads");
}

// ------------------------------------------------------------- trace

TEST(TraceGen, DeterministicStreams)
{
    BenchProfile p = specProfile("hmmer");
    TraceGenerator a(p), b(p);
    for (int i = 0; i < 20000; ++i) {
        Instruction x = a.fetch();
        Instruction y = b.fetch();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(int(x.cls), int(y.cls));
        ASSERT_EQ(x.memAddr, y.memAddr);
        ASSERT_EQ(x.dst, y.dst);
    }
}

TEST(TraceGen, AddressesStayInRegions)
{
    for (const auto &name : specBenchmarks()) {
        BenchProfile p = specProfile(name);
        TraceGenerator g(p);
        for (int i = 0; i < 30000; ++i) {
            Instruction inst = g.fetch();
            if (!inst.isMemRef())
                continue;
            bool ok = isStackAddr(inst.memAddr) ||
                      isHeapAddr(inst.memAddr) ||
                      isGlobalAddr(inst.memAddr);
            ASSERT_TRUE(ok) << name << " addr " << std::hex
                            << inst.memAddr;
        }
    }
}

TEST(TraceGen, CallReturnWellNested)
{
    BenchProfile p = specProfile("gcc");
    TraceGenerator g(p);
    std::vector<std::pair<Addr, std::uint32_t>> frames;
    for (int i = 0; i < 100000; ++i) {
        Instruction inst = g.fetch();
        if (inst.cls == InstClass::Call) {
            frames.push_back({inst.frameBase, inst.frameBytes});
        } else if (inst.cls == InstClass::Return) {
            // Returns may pop frames created before observation began;
            // nesting is only checkable for frames we saw pushed.
            if (!frames.empty()) {
                EXPECT_EQ(inst.frameBase, frames.back().first);
                EXPECT_EQ(inst.frameBytes, frames.back().second);
                frames.pop_back();
            }
        }
    }
}

TEST(TraceGen, MallocFreeBalance)
{
    BenchProfile p = specProfile("omnetpp");
    TraceGenerator g(p);
    std::set<Addr> live;
    int mallocs = 0, frees = 0;
    for (int i = 0; i < 200000; ++i) {
        Instruction inst = g.fetch();
        if (inst.cls != InstClass::HighLevel)
            continue;
        if (inst.hlKind == EventKind::Malloc) {
            ++mallocs;
            live.insert(inst.frameBase);
        } else if (inst.hlKind == EventKind::Free) {
            ++frees;
            ASSERT_TRUE(live.count(inst.frameBase))
                << "free of unknown block";
            live.erase(inst.frameBase);
        }
    }
    EXPECT_GT(mallocs, 20);
    EXPECT_GT(frees, 10);
    EXPECT_LE(frees, mallocs);
}

TEST(TraceGen, ThreadsTimeSliced)
{
    BenchProfile p = parallelProfile("water");
    TraceGenerator g(p);
    std::set<ThreadId> seen;
    ThreadId last = 255;
    int switches = 0;
    for (int i = 0; i < 100000; ++i) {
        Instruction inst = g.fetch();
        seen.insert(inst.tid);
        if (inst.tid != last && last != 255)
            ++switches;
        last = inst.tid;
    }
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_GE(switches, 8);
    EXPECT_LE(switches, 200) << "quantum-grained, not per-instruction";
}

TEST(TraceGen, MixRoughlyMatchesProfile)
{
    BenchProfile p = specProfile("hmmer");
    TraceGenerator g(p);
    std::uint64_t loads = 0, total = 200000;
    for (std::uint64_t i = 0; i < total; ++i)
        loads += g.fetch().cls == InstClass::Load;
    double f = double(loads) / total;
    // Blend of high/low phase load fractions plus pendings.
    EXPECT_GT(f, 0.15);
    EXPECT_LT(f, 0.35);
}

TEST(TraceGen, InjectedBugsCarryTruthBits)
{
    BenchProfile p = specProfile("astar");
    TraceGenerator g(p);
    for (int i = 0; i < 1000; ++i)
        g.fetch();
    g.injectBug(truthAccessUnallocated);
    g.injectBug(truthTaintedJump);
    g.injectBug(truthLeakDrop);
    std::uint8_t seen = 0;
    for (int i = 0; i < 2000; ++i)
        seen |= g.fetch().truth;
    EXPECT_TRUE(seen & truthAccessUnallocated);
    EXPECT_TRUE(seen & truthTaintedJump);
    EXPECT_TRUE(seen & truthLeakDrop);
}

TEST(TraceGen, PointerTruthIsSelfConsistent)
{
    // Ground truth invariant: a load from a word the generator knows
    // holds a pointer marks the destination register as a pointer.
    BenchProfile p = specProfile("gcc");
    TraceGenerator g(p);
    for (int i = 0; i < 100000; ++i) {
        Instruction inst = g.fetch();
        if (inst.cls == InstClass::Load && inst.hasDst) {
            bool slotPtr = g.wordIsPtr(inst.memAddr);
            ASSERT_EQ(g.regIsPtr(inst.tid, inst.dst), slotPtr);
        }
    }
}

TEST(TraceGen, LayoutCoversInitialState)
{
    BenchProfile p = specProfile("mcf");
    TraceGenerator g(p);
    const WorkloadLayout &l = g.layout();
    EXPECT_EQ(l.globalBase, globalBase);
    EXPECT_GT(l.globalLen, 0u);
    EXPECT_GE(l.stackBase, stackLimit);
    EXPECT_LT(l.stackBase, stackTop);
}

class TraceProfileSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceProfileSweep, StreamsAreWellFormed)
{
    bool parallel =
        std::find(parallelBenchmarks().begin(), parallelBenchmarks().end(),
                  GetParam()) != parallelBenchmarks().end();
    BenchProfile p =
        parallel ? parallelProfile(GetParam()) : specProfile(GetParam());
    TraceGenerator g(p);
    for (int i = 0; i < 30000; ++i) {
        Instruction inst = g.fetch();
        ASSERT_LT(int(inst.cls), int(InstClass::NumClasses));
        if (inst.hasDst)
            ASSERT_LT(inst.dst, numArchRegs);
        if (inst.numSrc >= 1)
            ASSERT_LT(inst.src1, numArchRegs);
        if (inst.isMemRef())
            ASSERT_EQ(inst.memAddr % 4, 0u) << "word aligned";
        if (inst.isStackUpdate()) {
            ASSERT_GT(inst.frameBytes, 0u);
            ASSERT_TRUE(isStackAddr(inst.frameBase));
        }
        ASSERT_LT(inst.tid, p.numThreads);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, TraceProfileSweep,
    ::testing::Values("astar", "bzip", "gcc", "gobmk", "hmmer",
                      "libquantum", "mcf", "omnetpp", "water", "ocean",
                      "blackscholes", "streamcluster", "fluidanimate"));

} // namespace fade
