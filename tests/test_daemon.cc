/**
 * @file
 * The monitoring daemon, proven session-isolated by differential
 * testing (src/daemon/):
 *
 *  - DaemonDifferential.*: K concurrent sessions with distinct
 *    configs — across scheduler policy, engine, topology, and a
 *    multi-threaded process workload — over a real unix socket, each
 *    required to produce result and functional fingerprints
 *    bit-identical to a standalone (daemon-free) run of the same
 *    config; live-generated and replayed-from-upload; repeated for
 *    determinism. Runs under the TSan CI job: any cross-session
 *    data sharing is both a fingerprint mismatch and a race report.
 *
 *  - DaemonFuzz.*: protocol robustness under ASan/UBSan — malformed
 *    magic, oversized declared lengths, bit-flipped CRCs, truncated
 *    frames, garbage floods, disconnects mid-upload and mid-run. The
 *    contract: a typed per-session error, never a daemon crash, hang,
 *    or contamination of the next session (every case ends by running
 *    a clean session against the same daemon).
 *
 *  - DaemonAdmission.* / DaemonBackpressure.*: the pool's admission
 *    cap rejects with a typed reason; a slow reader parks only its
 *    own session while others complete; shutdown drains in-flight
 *    sessions to completed results.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hh"
#include "daemon/daemon.hh"
#include "daemon/session.hh"
#include "daemon/sessionpool.hh"
#include "system/multicore.hh"
#include "testutil.hh"
#include "trace/profile.hh"
#include "trace/tracefile.hh"

using namespace fade;
using namespace fade::daemon;
using fade::test::TempDir;
using fade::test::UniqueSocketPath;

namespace
{

/** Small instruction budgets: the differential suite runs every
 *  config twice (daemon + standalone) on the CI host. */
constexpr std::uint64_t kWarm = 1000;
constexpr std::uint64_t kMeasure = 4000;

WireSessionConfig
liveConfig(const std::string &monitor, const std::string &profile,
           std::uint32_t shards = 1, std::uint8_t policy = 0,
           std::uint8_t engine = 0, std::uint32_t clusters = 1)
{
    WireSessionConfig wc;
    wc.monitor = monitor;
    wc.profiles = {profile};
    wc.shards = shards;
    wc.clusters = clusters;
    wc.policy = policy;
    wc.engine = engine;
    wc.warmup = kWarm;
    wc.measure = kMeasure;
    return wc;
}

/** The differential knob matrix: distinct monitor x profile x shape x
 *  policy x engine combinations, including a clustered topology and a
 *  multi-threaded process workload with a cross-shard monitor. */
std::vector<WireSessionConfig>
differentialMatrix()
{
    std::vector<WireSessionConfig> m;
    m.push_back(liveConfig("MemLeak", "bzip"));
    m.push_back(liveConfig("AddrCheck", "mcf", 2, 1, 0));
    m.push_back(liveConfig("MemLeak", "gcc", 2, 0, 1, 2));
    m.push_back(liveConfig("TaintCheck", "astar", 1, 0, 0));
    m.push_back(liveConfig("AtomCheck", "ocean", 2, 1, 1));
    m.push_back(liveConfig("RaceCheck", "ocean-mt", 2, 1, 0));
    m.push_back(liveConfig("SharedTaint", "streamcluster-mt", 4, 0, 0));
    m.push_back(liveConfig("MemLeak", "bzip", 1, 0, 2));
    return m;
}

void
expectSameExperiment(const ResultInfo &daemonSide,
                     const ResultInfo &standalone, const char *what)
{
    EXPECT_EQ(daemonSide.hash, standalone.hash) << what;
    EXPECT_EQ(daemonSide.resultFp, standalone.resultFp) << what;
    EXPECT_EQ(daemonSide.functionalFp, standalone.functionalFp)
        << what;
    EXPECT_EQ(daemonSide.instructions, standalone.instructions)
        << what;
    EXPECT_EQ(daemonSide.events, standalone.events) << what;
    EXPECT_EQ(daemonSide.bugReports, standalone.bugReports) << what;
}

/** Run one session against @p socket and return its outcome. */
SessionOutcome
runSession(const std::string &socket, const WireSessionConfig &wc,
           const std::string &upload = "", int slowMs = 0)
{
    DaemonClient client(socket);
    auto rej = client.configure(wc, upload);
    if (rej) {
        SessionOutcome o;
        o.error = *rej;
        return o;
    }
    SessionOutcome o = client.run(slowMs);
    client.close();
    return o;
}

/** Assert a clean session still works against @p socket — the
 *  daemon-is-alive probe every fuzz case ends with. */
void
expectDaemonServes(const std::string &socket)
{
    WireSessionConfig wc = liveConfig("MemLeak", "bzip");
    wc.warmup = 200;
    wc.measure = 1000;
    SessionOutcome o = runSession(socket, wc);
    ASSERT_TRUE(o.ok) << o.error.message;
    EXPECT_GE(o.result.instructions, 1000u);
}

/** Raw misbehaving client: connect and write arbitrary bytes. */
int
rawConnect(const std::string &socket)
{
    return connectUnix(socket, 5000);
}

void
rawWrite(int fd, const std::vector<std::uint8_t> &bytes)
{
    // Failures are fine — the daemon may hang up mid-write.
    try {
        writeAll(fd, bytes.data(), bytes.size());
    } catch (const ProtocolError &) {
    }
}

std::vector<std::uint8_t>
helloFrameBytes()
{
    wire::Enc e;
    e.u8(std::uint8_t(FrameType::Hello));
    encodeHello(e, protocolVersion);
    return sealFrame(e.out);
}

} // namespace

// ===================================================== differential

TEST(DaemonDifferential, ConcurrentSessionsMatchStandalone)
{
    std::vector<WireSessionConfig> matrix = differentialMatrix();

    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    cfg.pool.maxActive = unsigned(matrix.size());
    cfg.pool.workers = 2;
    cfg.pool.quantumEpochs = 4;
    Faded daemon(cfg);
    daemon.start();

    // All sessions in flight at once, each on its own connection.
    std::vector<SessionOutcome> outcomes(matrix.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < matrix.size(); ++i)
        clients.emplace_back([&, i] {
            outcomes[i] = runSession(sock.path(), matrix[i]);
        });
    for (std::thread &t : clients)
        t.join();

    // Each must equal its standalone (daemon-free) run bit for bit:
    // interleaving K sessions on 2 workers changed nothing.
    std::vector<bool> seqSeen(matrix.size() + 1, false);
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok)
            << matrix[i].monitor << "/" << matrix[i].profiles[0]
            << ": " << outcomes[i].error.message;
        ResultInfo local = standaloneRun(matrix[i]);
        expectSameExperiment(outcomes[i].result, local,
                             matrix[i].profiles[0].c_str());
        // Completion order is some permutation of 1..K.
        std::uint64_t seq = outcomes[i].result.completionSeq;
        ASSERT_GE(seq, 1u);
        ASSERT_LE(seq, matrix.size());
        EXPECT_FALSE(seqSeen[std::size_t(seq)]);
        seqSeen[std::size_t(seq)] = true;
    }

    daemon.stop();
    EXPECT_EQ(daemon.activeSessions(), 0u);
}

TEST(DaemonDifferential, RepeatedRunsAreDeterministic)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    WireSessionConfig wc = liveConfig("AddrCheck", "mcf", 2, 1, 1);
    SessionOutcome a = runSession(sock.path(), wc);
    SessionOutcome b = runSession(sock.path(), wc);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    expectSameExperiment(a.result, b.result, "repeat");
    daemon.stop();
}

TEST(DaemonDifferential, UploadReplayMatchesStandalone)
{
    // Capture a two-shard trace with a sealed manifest.
    TempDir dir;
    std::string trace = dir.file("capture.ftrace");
    {
        MultiCoreConfig cap;
        cap.monitor = "MemLeak";
        cap.numShards = 2;
        cap.workloads = {specProfile("bzip"), specProfile("mcf")};
        cap.traceOut = trace;
        MultiCoreSystem sys(cap);
        sys.warmup(kWarm);
        MultiCoreResult r = sys.run(kMeasure);
        sys.closeTrace(fingerprintHash(resultFingerprint(sys, r)));
    }

    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    // Replay daemon-side from an upload, under two scheduler
    // policies; both must equal the standalone replay bit for bit.
    for (std::uint8_t policy : {0, 1}) {
        WireSessionConfig wc;
        wc.upload = true;
        wc.policy = policy;
        SessionOutcome o = runSession(sock.path(), wc, trace);
        ASSERT_TRUE(o.ok) << o.error.message;
        ResultInfo local = standaloneRun(wc, trace);
        expectSameExperiment(o.result, local, "upload-replay");
        // And the replay reproduces the capture-time result hash.
        TraceManifest m = TraceReader(trace).manifest();
        ASSERT_TRUE(m.hasFingerprint);
        EXPECT_EQ(o.result.hash, m.fingerprintHash);
    }
    daemon.stop();
}

TEST(DaemonDifferential, ThreadedProcessUploadReplay)
{
    // A multi-threaded process workload (cross-shard RaceCheck)
    // captured, uploaded, and replayed daemon-side.
    TempDir dir;
    std::string trace = dir.file("race.ftrace");
    {
        MultiCoreConfig cap;
        cap.monitor = "RaceCheck";
        cap.numShards = 2;
        cap.workloads = {threadedProfile("ocean")};
        cap.traceOut = trace;
        MultiCoreSystem sys(cap);
        sys.warmup(kWarm);
        MultiCoreResult r = sys.run(kMeasure);
        sys.closeTrace(fingerprintHash(resultFingerprint(sys, r)));
    }

    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    WireSessionConfig wc;
    wc.upload = true;
    SessionOutcome o = runSession(sock.path(), wc, trace);
    ASSERT_TRUE(o.ok) << o.error.message;
    ResultInfo local = standaloneRun(wc, trace);
    expectSameExperiment(o.result, local, "threaded-upload");
    daemon.stop();
}

// ============================================================= fuzz

TEST(DaemonFuzz, BadMagicGetsRejected)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    int fd = rawConnect(sock.path());
    rawWrite(fd, {'N', 'O', 'T', 'M', 'A', 'G', 'I', 'C'});
    // The daemon answers with an Error frame (or hangs up); it must
    // not crash or leave the connection dangling.
    std::vector<std::uint8_t> body;
    try {
        while (readFrame(fd, body)) {
        }
    } catch (const ProtocolError &) {
    }
    ::close(fd);

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, OversizedFrameLengthRejected)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    int fd = rawConnect(sock.path());
    writeMagic(fd);
    // Declared length far beyond maxFrameBytes: must be rejected
    // before any allocation, not malloc'd.
    rawWrite(fd, {0xFF, 0xFF, 0xFF, 0xFF});
    std::vector<std::uint8_t> body;
    bool sawError = false;
    try {
        while (readFrame(fd, body))
            if (FrameType(body.at(0)) == FrameType::Error) {
                wire::Dec d = frameDec(body, "error");
                EXPECT_EQ(decodeError(d).reason, Reason::Protocol);
                sawError = true;
            }
    } catch (const ProtocolError &) {
    }
    EXPECT_TRUE(sawError);
    ::close(fd);

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, BitFlippedCrcRejected)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    int fd = rawConnect(sock.path());
    writeMagic(fd);
    std::vector<std::uint8_t> frame = helloFrameBytes();
    frame.back() ^= 0x01; // corrupt the CRC trailer
    rawWrite(fd, frame);

    // The daemon must detect the corruption, answer with an Error
    // frame naming the CRC, and hang up.
    std::vector<std::uint8_t> body;
    bool sawError = false;
    try {
        while (readFrame(fd, body))
            if (FrameType(body.at(0)) == FrameType::Error) {
                wire::Dec d = frameDec(body, "error");
                ErrorInfo e = decodeError(d);
                EXPECT_EQ(e.reason, Reason::Protocol);
                EXPECT_NE(e.message.find("CRC"), std::string::npos);
                sawError = true;
            }
    } catch (const ProtocolError &) {
    }
    EXPECT_TRUE(sawError);
    ::close(fd);

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, PayloadBitFlipsNeverCrash)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    // Flip every bit of a valid Hello body in turn, resealing the
    // frame each time so the corruption reaches the payload decoder
    // rather than the CRC check.
    wire::Enc hello;
    hello.u8(std::uint8_t(FrameType::Hello));
    encodeHello(hello, protocolVersion);
    for (std::size_t bit = 0; bit < hello.out.size() * 8; ++bit) {
        std::vector<std::uint8_t> body = hello.out;
        body[bit / 8] ^= std::uint8_t(1u << (bit % 8));
        int fd = rawConnect(sock.path());
        writeMagic(fd);
        rawWrite(fd, sealFrame(body));
        std::vector<std::uint8_t> reply;
        try {
            while (readFrame(fd, reply)) {
            }
        } catch (const ProtocolError &) {
        }
        ::close(fd);
    }

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, TruncatedFrameThenDisconnect)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    int fd = rawConnect(sock.path());
    writeMagic(fd);
    // Declare 100 body bytes, deliver 10, vanish.
    rawWrite(fd, {100, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    ::close(fd);

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, GarbageFloodSurvived)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    // A deterministic xorshift byte stream, in a few chunk sizes.
    std::uint64_t x = 0x243F6A8885A308D3ull;
    for (std::size_t chunk : {7u, 64u, 4096u}) {
        int fd = rawConnect(sock.path());
        std::vector<std::uint8_t> junk(chunk);
        for (int rounds = 0; rounds < 8; ++rounds) {
            for (auto &b : junk) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                b = std::uint8_t(x);
            }
            rawWrite(fd, junk);
        }
        ::close(fd);
    }

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, DisconnectMidUpload)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    int fd = rawConnect(sock.path());
    writeMagic(fd);
    rawWrite(fd, helloFrameBytes());
    // Valid Configure announcing an upload...
    wire::Enc e;
    e.u8(std::uint8_t(FrameType::Configure));
    WireSessionConfig wc;
    wc.upload = true;
    wc.warmup = 0;
    wc.measure = 0;
    encodeConfig(e, wc);
    rawWrite(fd, sealFrame(e.out));
    // ...one TraceData frame, then gone mid-upload.
    wire::Enc data;
    data.u8(std::uint8_t(FrameType::TraceData));
    for (int i = 0; i < 100; ++i)
        data.u8(std::uint8_t(i));
    rawWrite(fd, sealFrame(data.out));
    ::close(fd);

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, ClientDeathMidRunAbortsOnlyThatSession)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    cfg.pool.quantumEpochs = 1; // many quanta: the abort lands mid-run
    Faded daemon(cfg);
    daemon.start();

    {
        DaemonClient dying(sock.path());
        WireSessionConfig wc = liveConfig("MemLeak", "gcc");
        wc.measure = maxSessionInstructions / 2; // long-running
        ASSERT_FALSE(dying.configure(wc).has_value());
        writeFrame(dying.fd(), {std::uint8_t(FrameType::Run)});
        // Abrupt death: the destructor closes the socket with the
        // session running and frames in flight.
    }

    // The daemon must reap the aborted session (no leak of the
    // admission slot) and keep serving others.
    for (int spin = 0; spin < 500 && daemon.activeSessions() > 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(daemon.activeSessions(), 0u);

    expectDaemonServes(sock.path());
    daemon.stop();
}

TEST(DaemonFuzz, BadConfigsGetTypedRejections)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    Faded daemon(cfg);
    daemon.start();

    struct Case
    {
        const char *what;
        WireSessionConfig wc;
        Reason reason;
    };
    std::vector<Case> cases;
    cases.push_back({"unknown monitor",
                     liveConfig("NoSuchMonitor", "bzip"),
                     Reason::BadConfig});
    cases.push_back({"unknown profile",
                     liveConfig("MemLeak", "nosuchbench"),
                     Reason::BadConfig});
    cases.push_back({"shards not divisible by clusters",
                     liveConfig("MemLeak", "bzip", 3, 0, 0, 2),
                     Reason::BadConfig});
    cases.push_back({"race monitor without -mt workload",
                     liveConfig("RaceCheck", "ocean"),
                     Reason::BadConfig});
    cases.push_back({"more shards than process threads",
                     liveConfig("RaceCheck", "ocean-mt", 8),
                     Reason::BadConfig});
    {
        WireSessionConfig wc = liveConfig("MemLeak", "bzip");
        wc.measure = maxSessionInstructions + 1;
        cases.push_back({"budget cap", wc, Reason::BadConfig});
    }
    {
        WireSessionConfig wc = liveConfig("MemLeak", "bzip");
        wc.engine = 7;
        cases.push_back({"unknown engine", wc, Reason::BadConfig});
    }

    for (const Case &c : cases) {
        DaemonClient client(sock.path());
        auto rej = client.configure(c.wc);
        ASSERT_TRUE(rej.has_value()) << c.what;
        EXPECT_EQ(rej->reason, c.reason) << c.what;
        client.close();
    }

    expectDaemonServes(sock.path());
    daemon.stop();
}

// ======================================================== admission

TEST(DaemonAdmission, TypedRejectionBeyondLimit)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    cfg.pool.maxActive = 1;
    cfg.pool.workers = 1;
    cfg.pool.quantumEpochs = 1;
    Faded daemon(cfg);
    daemon.start();

    // Occupy the only slot with a long-running session.
    WireSessionConfig longWc = liveConfig("MemLeak", "bzip");
    longWc.measure = maxSessionInstructions / 4;
    SessionOutcome held;
    std::thread holder(
        [&] { held = runSession(sock.path(), longWc); });
    while (daemon.activeSessions() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // The second submission is rejected with the typed reason, not
    // queued and not crashed.
    WireSessionConfig smallWc = liveConfig("MemLeak", "mcf");
    smallWc.warmup = 200;
    smallWc.measure = 1000;
    SessionOutcome rejected = runSession(sock.path(), smallWc);
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.error.reason, Reason::AdmissionFull);

    // The holder finishes; the slot frees; the retry is admitted.
    // (The worker decrements the active count just after pushing the
    // terminal frames, so wait for the slot, as a real client would.)
    holder.join();
    ASSERT_TRUE(held.ok) << held.error.message;
    while (daemon.activeSessions() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    SessionOutcome retry = runSession(sock.path(), smallWc);
    ASSERT_TRUE(retry.ok) << retry.error.message;
    expectSameExperiment(retry.result, standaloneRun(smallWc),
                         "post-rejection retry");

    daemon.stop();
}

TEST(DaemonAdmission, ShutdownDrainsInFlightSessions)
{
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    cfg.pool.quantumEpochs = 2;
    Faded daemon(cfg);
    daemon.start();

    // Start two sessions, then stop the daemon from another thread
    // while they run: both must still deliver complete, correct
    // results (drain semantics), after which the daemon is down.
    std::vector<WireSessionConfig> wcs = {
        liveConfig("MemLeak", "bzip"),
        liveConfig("AddrCheck", "mcf", 2, 1, 0),
    };
    std::vector<SessionOutcome> outcomes(wcs.size());
    std::vector<std::thread> clients;
    std::atomic<unsigned> started{0};
    for (std::size_t i = 0; i < wcs.size(); ++i)
        clients.emplace_back([&, i] {
            DaemonClient client(sock.path());
            if (client.configure(wcs[i])) {
                started.fetch_add(1);
                return;
            }
            started.fetch_add(1);
            outcomes[i] = client.run();
            client.close();
        });
    while (started.load() < wcs.size())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    daemon.stop(true);
    for (std::thread &t : clients)
        t.join();

    for (std::size_t i = 0; i < wcs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error.message;
        expectSameExperiment(outcomes[i].result,
                             standaloneRun(wcs[i]), "drained");
    }
}

TEST(DaemonAdmission, PoolRejectsSubmissionsWhileDraining)
{
    // Pool-level unit test, no sockets: a session submitted after
    // shutdown() began gets the typed Shutdown rejection.
    SessionPool pool(PoolConfig{2, 1, 4});
    pool.shutdown(true);

    WireSessionConfig wc = liveConfig("MemLeak", "bzip");
    auto q = std::make_shared<OutQueue>(8);
    auto s = std::make_shared<Session>(1, wc, "", q);
    EXPECT_EQ(pool.submit(s), Reason::Shutdown);
}

// ===================================================== backpressure

TEST(DaemonBackpressure, OutQueueBoundAndTerminalOverride)
{
    OutQueue q(2);
    EXPECT_TRUE(q.tryPush(sealFrame(FrameType::Progress)));
    EXPECT_TRUE(q.tryPush(sealFrame(FrameType::Progress)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.tryPush(sealFrame(FrameType::Progress)));
    // Terminal frames bypass the bound.
    q.forcePush(sealFrame(FrameType::Result));
    q.forcePush(sealFrame(FrameType::Bye));
    q.finish();

    std::vector<std::uint8_t> f;
    int n = 0;
    while (q.pop(f))
        ++n;
    EXPECT_EQ(n, 4);
    // After closeSink, pushes are swallowed.
    OutQueue dead(2);
    dead.closeSink();
    EXPECT_TRUE(dead.tryPush(sealFrame(FrameType::Progress)));
    EXPECT_FALSE(dead.full());
    EXPECT_FALSE(dead.pop(f));
}

TEST(DaemonBackpressure, ParkedSessionYieldsWorkerToOthers)
{
    // Pool-level, no sockets, no kernel buffers: session A's queue has
    // no consumer, so after two advisory frames the single worker must
    // park A — not spin on it — and run session B to completion.
    // Draining A's queue afterwards unparks it and it completes too,
    // with both Result frames bit-identical to standalone runs:
    // backpressure moved scheduling, not results.
    SessionPool pool(PoolConfig{2, 1, 1});

    WireSessionConfig wcA = liveConfig("MemLeak", "bzip");
    WireSessionConfig wcB = liveConfig("AddrCheck", "mcf");
    auto qa = std::make_shared<OutQueue>(2);
    auto qb = std::make_shared<OutQueue>(2);
    auto a = std::make_shared<Session>(1, wcA, "", qa);
    auto b = std::make_shared<Session>(2, wcB, "", qb);

    // B's consumer drains continuously (a healthy client).
    std::vector<std::vector<std::uint8_t>> framesB;
    std::thread consumerB([&] {
        std::vector<std::uint8_t> f;
        while (qb->pop(f)) {
            framesB.push_back(f);
            pool.unpark(b.get());
        }
    });

    ASSERT_EQ(pool.submit(a), Reason::None);
    ASSERT_EQ(pool.submit(b), Reason::None);

    // B finishes while A sits parked on its full queue.
    consumerB.join();
    EXPECT_FALSE(a->complete());
    EXPECT_GE(a->parks_.load(), 1u);

    // A's client finally reads: drain + unpark until A completes.
    std::vector<std::vector<std::uint8_t>> framesA;
    std::vector<std::uint8_t> f;
    while (qa->pop(f)) {
        framesA.push_back(f);
        pool.unpark(a.get());
    }
    EXPECT_TRUE(a->complete());
    pool.shutdown(true);

    // Decode each session's Result frame; B completed first. Queue
    // frames are sealed (fixed32 length + body + fixed32 CRC), so
    // strip the framing the connection writer would put on the wire.
    auto unseal = [](const std::vector<std::uint8_t> &frame) {
        std::uint32_t len = std::uint32_t(frame.at(0)) |
                            std::uint32_t(frame.at(1)) << 8 |
                            std::uint32_t(frame.at(2)) << 16 |
                            std::uint32_t(frame.at(3)) << 24;
        return std::vector<std::uint8_t>(frame.begin() + 4,
                                         frame.begin() + 4 + len);
    };
    auto resultOf = [&](std::vector<std::vector<std::uint8_t>> &frames)
        -> ResultInfo {
        for (auto &raw : frames) {
            std::vector<std::uint8_t> body = unseal(raw);
            if (FrameType(body.at(0)) == FrameType::Result) {
                wire::Dec d = frameDec(body, "result");
                return decodeResult(d);
            }
        }
        ADD_FAILURE() << "no Result frame";
        return ResultInfo{};
    };
    ResultInfo ra = resultOf(framesA);
    ResultInfo rb = resultOf(framesB);
    EXPECT_EQ(rb.completionSeq, 1u);
    EXPECT_EQ(ra.completionSeq, 2u);
    EXPECT_GE(ra.parks, 1u);
    expectSameExperiment(ra, standaloneRun(wcA), "parked session");
    expectSameExperiment(rb, standaloneRun(wcB), "healthy session");
}

TEST(DaemonBackpressure, SlowReaderDoesNotPerturbOthers)
{
    // Socket-level: a client that sleeps between frames shares the
    // single worker with a fast client; both must complete with
    // results bit-identical to standalone runs.
    UniqueSocketPath sock;
    FadedConfig cfg;
    cfg.socketPath = sock.path();
    cfg.pool.workers = 1;
    cfg.pool.quantumEpochs = 1; // a progress frame per epoch
    cfg.outFrames = 2;          // tiny bound
    Faded daemon(cfg);
    daemon.start();

    WireSessionConfig slowWc = liveConfig("MemLeak", "bzip");
    WireSessionConfig fastWc = liveConfig("MemLeak", "mcf");
    SessionOutcome slow, fast;
    std::thread slowT(
        [&] { slow = runSession(sock.path(), slowWc, "", 5); });
    std::thread fastT(
        [&] { fast = runSession(sock.path(), fastWc); });
    slowT.join();
    fastT.join();

    ASSERT_TRUE(slow.ok) << slow.error.message;
    ASSERT_TRUE(fast.ok) << fast.error.message;
    expectSameExperiment(slow.result, standaloneRun(slowWc),
                         "slow session");
    expectSameExperiment(fast.result, standaloneRun(fastWc),
                         "fast session");

    daemon.stop();
}
