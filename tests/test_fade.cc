/** @file Integration tests for the FADE accelerator pipeline. */

#include <gtest/gtest.h>

#include "core/fade.hh"
#include "monitor/factory.hh"

namespace fade
{

namespace
{

/** Harness owning a FADE instance with queues and context. */
struct FadeHarness
{
    MonitorContext ctx;
    Cache l2;
    Fade fade;
    BoundedQueue<MonEvent> eq;
    BoundedQueue<UnfilteredEvent> ueq;
    Cycle now = 0;
    std::uint64_t seq = 0;

    explicit FadeHarness(FadeParams p = {}, std::uint8_t shadowDefault = 0)
        : ctx(shadowDefault),
          l2(l2Params(), nullptr, dramLatency),
          fade(p, ctx, &l2),
          eq(32),
          ueq(16)
    {
        fade.bind(&eq, &ueq);
    }

    void
    programMonitor(const std::string &name)
    {
        auto m = makeMonitor(name);
        m->programFade(fade.eventTable(), fade.invRf());
        ctx.regMd.fill(m->regMdInit());
    }

    MonEvent
    loadEvent(Addr addr, RegIndex dst = 5)
    {
        MonEvent ev;
        ev.kind = EventKind::Inst;
        ev.eventId = evLoad;
        ev.appAddr = addr;
        ev.src1 = 1;
        ev.numSrc = 1;
        ev.dst = dst;
        ev.hasDst = true;
        ev.seq = seq++;
        return ev;
    }

    MonEvent
    storeEvent(Addr addr, RegIndex src = 4)
    {
        MonEvent ev;
        ev.kind = EventKind::Inst;
        ev.eventId = evStore;
        ev.appAddr = addr;
        ev.src1 = src;
        ev.numSrc = 1;
        ev.seq = seq++;
        return ev;
    }

    MonEvent
    stackEvent(bool call, Addr base, std::uint32_t bytes)
    {
        MonEvent ev;
        ev.kind = call ? EventKind::StackCall : EventKind::StackReturn;
        ev.appAddr = base;
        ev.len = bytes;
        ev.seq = seq++;
        return ev;
    }

    /** Tick until the pipe drains or the limit is hit. */
    void
    run(unsigned maxCycles = 1000)
    {
        for (unsigned i = 0; i < maxCycles; ++i) {
            fade.tick(now++);
            if (eq.empty() && !fade.busy())
                break;
        }
    }

    /** Pop and complete one software handler (monitor side). */
    bool
    completeOne()
    {
        if (ueq.empty())
            return false;
        UnfilteredEvent u = ueq.pop();
        fade.handlerDone(u.ev.seq);
        return true;
    }
};

} // namespace

TEST(FadePipeline, FiltersCleanLoad)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.eq.push(h.loadEvent(0x1000));
    h.run();
    EXPECT_EQ(h.fade.stats().instEvents, 1u);
    EXPECT_EQ(h.fade.stats().filtered, 1u);
    EXPECT_TRUE(h.ueq.empty());
}

TEST(FadePipeline, UnfilteredGoesToSoftware)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.ctx.shadow.writeApp(0x1000, 1); // pointer in memory
    h.eq.push(h.loadEvent(0x1000));
    h.run();
    EXPECT_EQ(h.fade.stats().unfiltered, 1u);
    ASSERT_EQ(h.ueq.size(), 1u);
    EXPECT_EQ(h.fade.outstandingHandlers(), 1u);
    h.completeOne();
    EXPECT_EQ(h.fade.outstandingHandlers(), 0u);
}

TEST(FadePipeline, NonBlockingUpdatesRegisterMetadata)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.ctx.shadow.writeApp(0x1000, 1);
    h.eq.push(h.loadEvent(0x1000, 7));
    h.run();
    // The MD update logic propagated the pointer bit to r7 without
    // waiting for the software handler.
    EXPECT_EQ(h.ctx.regMd.read(0, 7), 1);
    EXPECT_EQ(h.fade.outstandingHandlers(), 1u);
}

TEST(FadePipeline, NonBlockingMemoryUpdateViaFsq)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.ctx.regMd.write(0, 4, 1); // r4 holds a pointer
    h.eq.push(h.storeEvent(0x2000, 4));
    h.eq.push(h.loadEvent(0x2000, 9)); // dependent load
    h.run();
    // Store unfiltered; its critical update sits in the FSQ. The
    // dependent load reads the forwarded value, is unfiltered (pointer
    // load), and propagates the pointer bit to r9.
    EXPECT_EQ(h.fade.stats().unfiltered, 2u);
    EXPECT_EQ(h.ctx.regMd.read(0, 9), 1);
    // Only the store's update targets memory (the load's destination
    // is a register, written directly in the MD RF).
    EXPECT_EQ(h.fade.fsq().size(), 1u);
    // Handlers complete in order: FSQ entries are released.
    h.completeOne();
    h.completeOne();
    EXPECT_TRUE(h.fade.fsq().empty());
}

TEST(FadePipeline, BlockingModeStallsUntilHandlerDone)
{
    FadeParams p;
    p.nonBlocking = false;
    FadeHarness h(p);
    h.programMonitor("MemLeak");
    h.ctx.shadow.writeApp(0x1000, 1);
    h.eq.push(h.loadEvent(0x1000));
    h.eq.push(h.loadEvent(0x3000)); // clean: would filter
    for (int i = 0; i < 50; ++i)
        h.fade.tick(h.now++);
    // The clean load is stuck behind the blocked pipe.
    EXPECT_EQ(h.fade.stats().filtered, 0u);
    EXPECT_GT(h.fade.stats().stallBlocking, 0u);
    ASSERT_EQ(h.ueq.size(), 1u);
    h.completeOne();
    h.run();
    EXPECT_EQ(h.fade.stats().filtered, 1u);
}

TEST(FadePipeline, ThroughputOneEventPerCycle)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    // Feed 200 clean events, one per cycle.
    unsigned fed = 0;
    for (unsigned c = 0; c < 300; ++c) {
        if (fed < 200 && !h.eq.full()) {
            h.eq.push(h.loadEvent(0x1000 + 4 * (fed % 64)));
            ++fed;
        }
        h.fade.tick(h.now++);
    }
    EXPECT_EQ(h.fade.stats().filtered, 200u);
    // 200 events retire within 300 cycles: sustained ~1/cycle after
    // the pipeline fill.
}

TEST(FadePipeline, StackUpdateDrainsThenRunsSuu)
{
    FadeHarness h;
    h.programMonitor("MemCheck"); // INV[6] = uninit (0x01) on call
    h.eq.push(h.stackEvent(true, 0xE0001000, 64));
    h.run();
    EXPECT_EQ(h.fade.stats().stackEvents, 1u);
    EXPECT_EQ(h.fade.suu().updates(), 1u);
    // 64 bytes = 16 metadata bytes set to the call value.
    for (Addr a = 0xE0001000; a < 0xE0001040; a += 4)
        ASSERT_EQ(h.ctx.shadow.readApp(a), 0x01);
    EXPECT_EQ(h.ctx.shadow.readApp(0xE0001040), 0x00);
}

TEST(FadePipeline, StackUpdateWaitsForOutstandingHandlers)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.ctx.shadow.writeApp(0x1000, 1);
    h.eq.push(h.loadEvent(0x1000));            // unfiltered
    h.eq.push(h.stackEvent(true, 0xE0000000, 32));
    for (int i = 0; i < 100; ++i)
        h.fade.tick(h.now++);
    // The SUU must not run while the handler is outstanding.
    EXPECT_EQ(h.fade.suu().updates(), 0u);
    EXPECT_GT(h.fade.stats().stallDrain, 0u);
    h.completeOne();
    h.run();
    EXPECT_EQ(h.fade.suu().updates(), 1u);
}

TEST(FadePipeline, HighLevelEventBypassesFiltering)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    MonEvent ev;
    ev.kind = EventKind::Malloc;
    ev.appAddr = 0x40000000;
    ev.len = 256;
    ev.dst = 3;
    ev.hasDst = true;
    ev.seq = h.seq++;
    h.eq.push(ev);
    h.run();
    EXPECT_EQ(h.fade.stats().highLevelEvents, 1u);
    ASSERT_EQ(h.ueq.size(), 1u);
    EXPECT_FALSE(h.ueq.front().hwChecked);
}

TEST(FadePipeline, OrderPreservedAcrossHighLevel)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.ctx.shadow.writeApp(0x1000, 1);
    h.eq.push(h.loadEvent(0x1000)); // unfiltered, seq 0
    MonEvent m;
    m.kind = EventKind::Free;
    m.appAddr = 0x5000;
    m.seq = h.seq++;
    h.eq.push(m);
    h.eq.push(h.loadEvent(0x1000)); // seq 2
    // Filtering holds until each high-level handler completes, so
    // drain the queue as software would, recording arrival order.
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 200 && order.size() < 3; ++i) {
        h.fade.tick(h.now++);
        if (!h.ueq.empty()) {
            UnfilteredEvent u = h.ueq.pop();
            order.push_back(u.ev.seq);
            h.fade.handlerDone(u.ev.seq);
        }
    }
    ASSERT_EQ(order.size(), 3u);
    EXPECT_LT(order[0], order[1]);
    EXPECT_LT(order[1], order[2]);
}

TEST(FadePipeline, UeqBackpressureStallsFiltering)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    // 20 unfilterable events exceed the 16-entry UEQ.
    for (int i = 0; i < 20; ++i) {
        h.ctx.shadow.writeApp(0x1000 + 4 * i, 1);
        h.eq.push(h.loadEvent(0x1000 + 4 * i));
    }
    for (int i = 0; i < 200; ++i)
        h.fade.tick(h.now++);
    EXPECT_EQ(h.ueq.size(), 16u);
    EXPECT_GT(h.fade.stats().stallUeqFull, 0u);
    // Draining the queue lets the rest through.
    while (h.completeOne()) {}
    h.run();
    while (h.completeOne()) {}
    h.run();
    EXPECT_EQ(h.fade.stats().unfiltered, 20u);
}

TEST(FadePipeline, PartialFilteringDispatchesSelectedHandler)
{
    FadeHarness h;
    h.programMonitor("AtomCheck");
    h.fade.invRf().write(0, 0x80); // current thread 0
    h.ctx.shadow.writeApp(0x1000, 0x80); // last accessed by thread 0
    h.eq.push(h.loadEvent(0x1000));
    h.run();
    ASSERT_EQ(h.ueq.size(), 1u);
    EXPECT_TRUE(h.ueq.front().checkPassed);
    EXPECT_EQ(h.fade.stats().partialPass, 1u);
    h.completeOne();

    h.ctx.shadow.writeApp(0x2000, 0x81); // last accessed by thread 1
    h.eq.push(h.loadEvent(0x2000));
    h.run();
    ASSERT_EQ(h.ueq.size(), 1u);
    EXPECT_FALSE(h.ueq.front().checkPassed);
    EXPECT_EQ(h.fade.stats().partialFail, 1u);
}

TEST(FadePipeline, FilteringRatioAccounting)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    for (int i = 0; i < 8; ++i)
        h.eq.push(h.loadEvent(0x1000));
    h.ctx.shadow.writeApp(0x2000, 1);
    h.eq.push(h.loadEvent(0x2000));
    h.run();
    h.completeOne();
    const FadeStats &s = h.fade.stats();
    EXPECT_EQ(s.instEvents, 9u);
    EXPECT_EQ(s.filtered, 8u);
    EXPECT_EQ(s.unfiltered, 1u);
    EXPECT_NEAR(s.filteringRatio(), 8.0 / 9.0, 1e-9);
}

TEST(FadePipeline, UnfilteredDistanceHistogram)
{
    FadeHarness h;
    h.programMonitor("MemLeak");
    h.ctx.shadow.writeApp(0x2000, 1);
    // unfiltered, 3 filtered, unfiltered
    h.eq.push(h.loadEvent(0x2000, 5));
    h.run();
    h.completeOne();
    h.ctx.regMd.write(0, 5, 0); // clear propagated pointer bit
    for (int i = 0; i < 3; ++i) {
        h.eq.push(h.loadEvent(0x1000));
        h.run();
    }
    h.ctx.shadow.writeApp(0x2000, 1);
    h.eq.push(h.loadEvent(0x2000, 6));
    h.run();
    h.completeOne();
    h.fade.finalizeBursts();
    EXPECT_EQ(h.fade.stats().unfDistance.total(), 2u);
    EXPECT_DOUBLE_EQ(h.fade.stats().unfDistance.cdfAt(4), 1.0);
    // Two software-bound events within distance 16: one burst of 2.
    EXPECT_EQ(h.fade.stats().unfBurst.total(), 1u);
}

TEST(FadePipeline, InvalidEventIdIsFatal)
{
    FadeHarness h;
    // Nothing programmed: a monitored event with no entry is a
    // configuration error.
    MonEvent ev;
    ev.kind = EventKind::Inst;
    ev.eventId = 13;
    h.eq.push(ev);
    EXPECT_EXIT(
        {
            for (int i = 0; i < 10; ++i)
                h.fade.tick(h.now++);
        },
        ::testing::ExitedWithCode(1), "no event table entry");
}

TEST(Suu, BulkWriteBlocks)
{
    MonitorContext ctx(0);
    Cache l2(l2Params(), nullptr, dramLatency);
    MdCache mdc(MdCacheParams{}, &l2);
    InvRegFile inv;
    inv.write(6, 0xAB);
    inv.write(7, 0xCD);
    StackUpdateUnit suu(mdc, ctx.shadow, inv, 6, 7);

    suu.start(0xE0000000, 1024, true); // 256 md bytes = 4 blocks
    unsigned ticks = 0;
    while (suu.busy() && ticks < 1000) {
        suu.tick();
        ++ticks;
    }
    EXPECT_EQ(suu.blockWrites(), 4u);
    for (Addr a = 0xE0000000; a < 0xE0000400; a += 4)
        ASSERT_EQ(ctx.shadow.readApp(a), 0xAB);

    suu.start(0xE0000000, 1024, false);
    while (suu.busy())
        suu.tick();
    EXPECT_EQ(ctx.shadow.readApp(0xE0000000), 0xCD);
}

TEST(Suu, ZeroLengthFrameIsNoop)
{
    MonitorContext ctx(0);
    Cache l2(l2Params(), nullptr, dramLatency);
    MdCache mdc(MdCacheParams{}, &l2);
    InvRegFile inv;
    StackUpdateUnit suu(mdc, ctx.shadow, inv, 6, 7);
    suu.start(0xE0000000, 0, true);
    EXPECT_FALSE(suu.busy());
}

} // namespace fade
