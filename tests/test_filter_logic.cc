/** @file Unit and property tests for the filter logic (Fig. 7). */

#include <gtest/gtest.h>

#include "core/filter_logic.hh"
#include "core/fsq.hh"
#include "core/md_update.hh"
#include "sim/random.hh"

namespace fade
{

class FilterLogicTest : public ::testing::Test
{
  protected:
    EventTable table;
    InvRegFile inv;
};

TEST_F(FilterLogicTest, CleanCheckSingleOperandPass)
{
    inv.write(0, 0x03);
    EventTableEntry e;
    e.s1 = OperandRule{true, true, 1, 0xff, 0};
    e.cc = true;
    table.program(5, e);
    FilterLogic logic(inv);
    OperandMd md{0x03, 0, 0};
    FilterOutcome out = logic.evaluate(table, 5, md);
    EXPECT_TRUE(out.filtered);
    EXPECT_TRUE(out.ccPassed);
    EXPECT_EQ(out.shots, 1u);
    EXPECT_EQ(out.blocksUsed, 1u);
}

TEST_F(FilterLogicTest, CleanCheckFails)
{
    inv.write(0, 0x03);
    EventTableEntry e;
    e.s1 = OperandRule{true, true, 1, 0xff, 0};
    e.cc = true;
    e.handlerPc = 0xBEEF;
    table.program(5, e);
    FilterLogic logic(inv);
    OperandMd md{0x01, 0, 0};
    FilterOutcome out = logic.evaluate(table, 5, md);
    EXPECT_FALSE(out.filtered);
    EXPECT_EQ(out.handlerPc, 0xBEEFu);
}

TEST_F(FilterLogicTest, CleanCheckThreeOperandsThreeInvariants)
{
    // The most complex single-shot condition of Fig. 7: each operand
    // compared against a different invariant register.
    inv.write(0, 0xAA);
    inv.write(1, 0xBB);
    inv.write(2, 0xCC);
    EventTableEntry e;
    e.s1 = OperandRule{true, false, 1, 0xff, 0};
    e.s2 = OperandRule{true, false, 1, 0xff, 1};
    e.d = OperandRule{true, false, 1, 0xff, 2};
    e.cc = true;
    table.program(3, e);
    FilterLogic logic(inv);

    FilterOutcome pass = logic.evaluate(table, 3, {0xAA, 0xBB, 0xCC});
    EXPECT_TRUE(pass.filtered);
    EXPECT_EQ(pass.blocksUsed, 3u);
    EXPECT_EQ(pass.shots, 1u);

    EXPECT_FALSE(logic.evaluate(table, 3, {0xAA, 0xBB, 0xCD}).filtered);
    EXPECT_FALSE(logic.evaluate(table, 3, {0xAB, 0xBB, 0xCC}).filtered);
}

TEST_F(FilterLogicTest, MaskExtractsRelevantBits)
{
    // AtomCheck-style thread-id comparison under mask 0x7f.
    inv.write(0, 0x85);
    EventTableEntry e;
    e.s1 = OperandRule{true, true, 1, 0x7f, 0};
    e.cc = true;
    table.program(1, e);
    FilterLogic logic(inv);
    EXPECT_TRUE(logic.evaluate(table, 1, {0x05, 0, 0}).filtered)
        << "bit 7 masked out";
    EXPECT_TRUE(logic.evaluate(table, 1, {0x85, 0, 0}).filtered);
    EXPECT_FALSE(logic.evaluate(table, 1, {0x06, 0, 0}).filtered);
}

TEST_F(FilterLogicTest, ZeroMaskAlwaysMatches)
{
    inv.write(0, 0xFF);
    EventTableEntry e;
    e.s1 = OperandRule{true, true, 1, 0x00, 0};
    e.cc = true;
    table.program(1, e);
    FilterLogic logic(inv);
    EXPECT_TRUE(logic.evaluate(table, 1, {0x12, 0, 0}).filtered);
}

TEST_F(FilterLogicTest, RedundantUpdateCopy)
{
    EventTableEntry e;
    e.s1 = OperandRule{true, true, 1, 0xff, 0};
    e.d = OperandRule{true, false, 1, 0xff, 0};
    e.ru = RuOp::CopyS1;
    table.program(2, e);
    FilterLogic logic(inv);
    EXPECT_TRUE(logic.evaluate(table, 2, {0x07, 0, 0x07}).filtered);
    FilterOutcome out = logic.evaluate(table, 2, {0x07, 0, 0x06});
    EXPECT_FALSE(out.filtered);
    EXPECT_FALSE(out.ruPassed);
}

TEST_F(FilterLogicTest, RedundantUpdateOrAndCompose)
{
    EventTableEntry e;
    e.s1 = OperandRule{true, false, 1, 0xff, 0};
    e.s2 = OperandRule{true, false, 1, 0xff, 0};
    e.d = OperandRule{true, false, 1, 0xff, 0};
    e.ru = RuOp::OrS1S2;
    table.program(2, e);
    FilterLogic logic(inv);
    EXPECT_TRUE(logic.evaluate(table, 2, {0x01, 0x02, 0x03}).filtered);
    EXPECT_FALSE(logic.evaluate(table, 2, {0x01, 0x02, 0x01}).filtered);

    e.ru = RuOp::AndS1S2;
    table.program(2, e);
    EXPECT_TRUE(logic.evaluate(table, 2, {0x03, 0x01, 0x01}).filtered);
    EXPECT_FALSE(logic.evaluate(table, 2, {0x03, 0x01, 0x03}).filtered);
}

TEST_F(FilterLogicTest, MultiShotOrChain)
{
    // CC (fails) OR RU (passes) => filtered in two shots.
    inv.write(0, 0x03);
    EventTableEntry first;
    first.s1 = OperandRule{true, true, 1, 0xff, 0};
    first.d = OperandRule{true, false, 1, 0xff, 0};
    first.cc = true;
    first.multiShot = true;
    first.nextEntry = 40;
    table.program(4, first);

    EventTableEntry chain;
    chain.s1 = OperandRule{true, true, 1, 0xff, 0};
    chain.d = OperandRule{true, false, 1, 0xff, 0};
    chain.ru = RuOp::CopyS1;
    chain.msCombine = MsCombine::Or;
    table.program(40, chain);

    FilterLogic logic(inv);
    // Uninit load into uninit reg: CC fails, RU passes.
    FilterOutcome out = logic.evaluate(table, 4, {0x01, 0, 0x01});
    EXPECT_TRUE(out.filtered);
    EXPECT_TRUE(out.ruPassed);
    EXPECT_FALSE(out.ccPassed);
    EXPECT_EQ(out.shots, 2u);

    // Both fail.
    EXPECT_FALSE(logic.evaluate(table, 4, {0x01, 0, 0x03}).filtered);
}

TEST_F(FilterLogicTest, MultiShotEarlyTermination)
{
    // Once the outcome is absorbing for the rest of an OR chain, the
    // hardware resolves without burning further shots.
    inv.write(0, 0x03);
    EventTableEntry first;
    first.s1 = OperandRule{true, true, 1, 0xff, 0};
    first.cc = true;
    first.multiShot = true;
    first.nextEntry = 41;
    table.program(4, first);

    EventTableEntry chain;
    chain.s1 = OperandRule{true, true, 1, 0xff, 0};
    chain.d = OperandRule{true, false, 1, 0xff, 0};
    chain.ru = RuOp::CopyS1;
    chain.msCombine = MsCombine::Or;
    table.program(41, chain);

    FilterLogic logic(inv);
    FilterOutcome out = logic.evaluate(table, 4, {0x03, 0, 0x00});
    EXPECT_TRUE(out.filtered);
    EXPECT_EQ(out.shots, 1u) << "CC passed; OR chain cannot unfilter";
}

TEST_F(FilterLogicTest, MultiShotAndChain)
{
    inv.write(0, 0x01);
    inv.write(1, 0x02);
    EventTableEntry first;
    first.s1 = OperandRule{true, true, 1, 0x01, 0};
    first.cc = true;
    first.multiShot = true;
    first.nextEntry = 42;
    table.program(6, first);

    EventTableEntry chain;
    chain.s2 = OperandRule{true, false, 1, 0x02, 1};
    chain.cc = true;
    chain.msCombine = MsCombine::And;
    table.program(42, chain);

    FilterLogic logic(inv);
    EXPECT_TRUE(logic.evaluate(table, 6, {0x01, 0x02, 0}).filtered);
    EXPECT_FALSE(logic.evaluate(table, 6, {0x01, 0x00, 0}).filtered);
    // First check fails: AND chain short-circuits to unfiltered.
    FilterOutcome out = logic.evaluate(table, 6, {0x00, 0x02, 0});
    EXPECT_FALSE(out.filtered);
    EXPECT_EQ(out.shots, 1u);
}

TEST_F(FilterLogicTest, PartialFilteringSelectsHandlerPc)
{
    inv.write(0, 0x80);
    EventTableEntry e;
    e.s1 = OperandRule{true, true, 1, 0xff, 0};
    e.cc = true;
    e.partial = true;
    e.handlerPc = 0x1000; // short handler
    e.nextEntry = 50;
    table.program(7, e);

    EventTableEntry alt;
    alt.handlerPc = 0x2000; // complex handler
    table.program(50, alt);

    FilterLogic logic(inv);
    FilterOutcome pass = logic.evaluate(table, 7, {0x80, 0, 0});
    EXPECT_FALSE(pass.filtered) << "partial events always reach software";
    EXPECT_TRUE(pass.partial);
    EXPECT_TRUE(pass.checkPassed);
    EXPECT_EQ(pass.handlerPc, 0x1000u);

    FilterOutcome fail = logic.evaluate(table, 7, {0x81, 0, 0});
    EXPECT_FALSE(fail.filtered);
    EXPECT_FALSE(fail.checkPassed);
    EXPECT_EQ(fail.handlerPc, 0x2000u);
}

TEST_F(FilterLogicTest, DispatchOnlyEntryNeverFilters)
{
    EventTableEntry e;
    e.handlerPc = 0x3000;
    table.program(8, e);
    FilterLogic logic(inv);
    FilterOutcome out = logic.evaluate(table, 8, {0, 0, 0});
    EXPECT_FALSE(out.filtered);
    EXPECT_EQ(out.handlerPc, 0x3000u);
}

TEST(EventTableTest, ProgramAndInvalidate)
{
    EventTable t;
    EXPECT_FALSE(t.validAt(10));
    EventTableEntry e;
    e.handlerPc = 0x42;
    t.program(10, e);
    EXPECT_TRUE(t.validAt(10));
    EXPECT_EQ(t.lookup(10).handlerPc, 0x42u);
    EXPECT_EQ(t.population(), 1u);
    t.invalidate(10);
    EXPECT_FALSE(t.validAt(10));
    EXPECT_EQ(t.population(), 0u);
}

TEST(EventTableTest, ClearAll)
{
    EventTable t;
    for (unsigned i = 0; i < 16; ++i)
        t.program(i, EventTableEntry{});
    EXPECT_EQ(t.population(), 16u);
    t.clear();
    EXPECT_EQ(t.population(), 0u);
}

/** Property: NB update rules compute exactly their definitions. */
class MdUpdateSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MdUpdateSweep, RulesMatchDefinitions)
{
    Rng rng(GetParam());
    InvRegFile inv;
    for (unsigned i = 0; i < numInvRegs; ++i)
        inv.write(i, std::uint8_t(rng.next()));
    for (int iter = 0; iter < 500; ++iter) {
        OperandMd md{std::uint8_t(rng.next()), std::uint8_t(rng.next()),
                     std::uint8_t(rng.next())};
        NbRule r;
        r.invId = rng.range(numInvRegs);

        r.action = NbAction::None;
        EXPECT_FALSE(computeMdUpdate(r, md, inv).has_value());
        r.action = NbAction::CopyS1;
        EXPECT_EQ(*computeMdUpdate(r, md, inv), md.s1);
        r.action = NbAction::CopyS2;
        EXPECT_EQ(*computeMdUpdate(r, md, inv), md.s2);
        r.action = NbAction::Or;
        EXPECT_EQ(*computeMdUpdate(r, md, inv),
                  std::uint8_t(md.s1 | md.s2));
        r.action = NbAction::And;
        EXPECT_EQ(*computeMdUpdate(r, md, inv),
                  std::uint8_t(md.s1 & md.s2));
        r.action = NbAction::SetConst;
        EXPECT_EQ(*computeMdUpdate(r, md, inv), inv.read(r.invId));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MdUpdateSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(MdUpdateConditional, PicksActionByComparison)
{
    InvRegFile inv;
    inv.write(3, 0x11);
    NbRule r;
    r.conditional = true;
    r.cond = NbCond::S1EqS2;
    r.action = NbAction::CopyS1;
    r.elseAction = NbAction::SetConst;
    r.elseInvId = 3;
    OperandMd same{0x5, 0x5, 0x9};
    EXPECT_EQ(*computeMdUpdate(r, same, inv), 0x5);
    OperandMd diff{0x5, 0x6, 0x9};
    EXPECT_EQ(*computeMdUpdate(r, diff, inv), 0x11);

    r.cond = NbCond::S1EqD;
    OperandMd eqd{0x9, 0x1, 0x9};
    EXPECT_EQ(*computeMdUpdate(r, eqd, inv), 0x9);

    r.cond = NbCond::S1EqConst;
    r.condInvId = 3;
    OperandMd eqc{0x11, 0x1, 0x2};
    EXPECT_EQ(*computeMdUpdate(r, eqc, inv), 0x11);

    r.cond = NbCond::S2EqConst;
    OperandMd s2c{0x1, 0x11, 0x2};
    EXPECT_EQ(*computeMdUpdate(r, s2c, inv), 0x1);
    OperandMd s2no{0x1, 0x12, 0x2};
    EXPECT_EQ(*computeMdUpdate(r, s2no, inv), 0x11);
}

TEST(FsqTest, YoungestMatchWins)
{
    FilterStoreQueue fsq(4);
    fsq.push(100, 1, 10);
    fsq.push(100, 2, 11);
    fsq.push(200, 3, 12);
    EXPECT_EQ(*fsq.lookup(100), 2);
    EXPECT_EQ(*fsq.lookup(200), 3);
    EXPECT_FALSE(fsq.lookup(300).has_value());
}

TEST(FsqTest, ReleaseByOwner)
{
    FilterStoreQueue fsq(4);
    fsq.push(100, 1, 10);
    fsq.push(100, 2, 11);
    fsq.release(11);
    EXPECT_EQ(*fsq.lookup(100), 1);
    fsq.release(10);
    EXPECT_FALSE(fsq.lookup(100).has_value());
    EXPECT_TRUE(fsq.empty());
}

TEST(FsqTest, CapacityAndStats)
{
    FilterStoreQueue fsq(2);
    EXPECT_TRUE(fsq.push(1, 1, 1));
    EXPECT_TRUE(fsq.push(2, 2, 2));
    EXPECT_TRUE(fsq.full());
    EXPECT_FALSE(fsq.push(3, 3, 3));
    EXPECT_EQ(fsq.pushes(), 2u);
    EXPECT_EQ(fsq.maxOccupancy(), 2u);
}

} // namespace fade
