/**
 * @file
 * Tests for the functional-layer fast-path containers (sim/flatset.hh,
 * sim/wordset.hh, sim/ring.hh) and for the trace generator invariants
 * that ride on them: randomized differential equality against the
 * standard containers they replaced, erase-during-growth and
 * backward-shift edge cases, canonical word alignment of the
 * generator's ground-truth mirrors, and generator-oracle coherence
 * across every SPEC profile with bug injection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/shadow.hh"
#include "sim/flatset.hh"
#include "sim/random.hh"
#include "sim/ring.hh"
#include "sim/wordset.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

std::vector<Addr>
sortedKeys(const AddrSet &s)
{
    std::vector<Addr> v;
    s.forEach([&](Addr k) { v.push_back(k); });
    std::sort(v.begin(), v.end());
    return v;
}

std::vector<Addr>
sortedKeys(const std::unordered_set<Addr> &s)
{
    std::vector<Addr> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
}

std::vector<Addr>
sortedKeys(const WordSet &s)
{
    std::vector<Addr> v;
    s.forEach([&](Addr k) { v.push_back(k); });
    std::sort(v.begin(), v.end());
    return v;
}

} // namespace

TEST(AddrSet, RandomizedDifferentialAgainstStdSet)
{
    Rng rng(7);
    AddrSet flat;
    std::unordered_set<Addr> ref;
    // Small key space: dense collisions, long probe chains, repeated
    // erase/reinsert of the same keys across several growth steps.
    for (int k = 0; k < 200000; ++k) {
        Addr key = Addr(rng.range(4096)) * wordSize;
        switch (rng.range(3)) {
          case 0:
            ASSERT_EQ(flat.insert(key), ref.insert(key).second);
            break;
          case 1:
            ASSERT_EQ(flat.erase(key), ref.erase(key) != 0);
            break;
          default:
            ASSERT_EQ(flat.count(key), ref.count(key));
            break;
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
    EXPECT_EQ(sortedKeys(flat), sortedKeys(ref));
}

TEST(AddrSet, EraseDuringGrowth)
{
    // Interleave erases with the inserts that drive every growth step:
    // backward-shift deletion must stay correct while clusters are
    // rebuilt, including around the rehash boundaries.
    AddrSet flat;
    std::unordered_set<Addr> ref;
    for (Addr i = 0; i < 20000; ++i) {
        Addr key = i * wordSize;
        flat.insert(key);
        ref.insert(key);
        if (i % 2 == 1) {
            Addr dead = (i / 2) * wordSize;
            ASSERT_EQ(flat.erase(dead), ref.erase(dead) != 0);
        }
        if (i % 1024 == 0) {
            ASSERT_EQ(flat.size(), ref.size());
        }
    }
    EXPECT_EQ(sortedKeys(flat), sortedKeys(ref));
    // Everything erased exactly once more.
    std::size_t erased = 0;
    for (Addr i = 0; i < 20000; ++i)
        erased += flat.erase(i * wordSize);
    EXPECT_EQ(erased, ref.size());
    EXPECT_TRUE(flat.empty());
}

TEST(AddrSet, EraseRangeMatchesPerWordErase)
{
    // Both strategies (probe-per-point and table scan) must yield the
    // set a per-word erase loop yields.
    for (std::uint64_t rangeWords : {8ull, 64ull, 4096ull}) {
        Rng rng(11);
        AddrSet a;
        std::unordered_set<Addr> ref;
        for (int k = 0; k < 5000; ++k) {
            Addr key = Addr(rng.range(1u << 14)) * wordSize;
            a.insert(key);
            ref.insert(key);
        }
        Addr lo = 1024 * wordSize;
        Addr hi = lo + rangeWords * wordSize;
        a.eraseRange(lo, hi, wordSize);
        for (Addr w = lo; w < hi; w += wordSize)
            ref.erase(w);
        EXPECT_EQ(sortedKeys(a), sortedKeys(ref)) << rangeWords;
    }
}

TEST(AddrMap, RandomizedDifferentialAgainstStdMap)
{
    Rng rng(23);
    AddrMap<std::uint32_t> flat;
    std::unordered_map<Addr, std::uint32_t> ref;
    for (int k = 0; k < 100000; ++k) {
        Addr key = Addr(rng.range(2048));
        switch (rng.range(4)) {
          case 0: {
            std::uint32_t v = rng.next();
            flat[key] = v;
            ref[key] = v;
            break;
          }
          case 1:
            ASSERT_EQ(flat.erase(key), ref.erase(key) != 0);
            break;
          case 2:
            ASSERT_EQ(flat.contains(key), ref.count(key) != 0);
            break;
          default: {
            const std::uint32_t *p = flat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(p != nullptr, it != ref.end());
            if (p) {
                ASSERT_EQ(*p, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
}

TEST(WordSet, RandomizedDifferentialWithRangeErase)
{
    Rng rng(31);
    WordSet ws;
    std::unordered_set<Addr> ref;
    for (int k = 0; k < 50000; ++k) {
        Addr key = heapBase + Addr(rng.range(1u << 15)) * wordSize;
        switch (rng.range(4)) {
          case 0:
            ws.insert(key);
            ref.insert(key);
            break;
          case 1:
            ws.erase(key);
            ref.erase(key);
            break;
          case 2: {
            // Ranges sized like frames and frees, including spans that
            // cross the 128KB page boundary.
            Addr lo = heapBase + Addr(rng.range(1u << 15)) * wordSize;
            std::uint64_t bytes = (1 + rng.range(40000)) * wordSize;
            ws.eraseRange(lo, lo + bytes);
            for (Addr a = lo; a < lo + bytes; a += wordSize)
                ref.erase(a);
            break;
          }
          default:
            ASSERT_EQ(ws.count(key), ref.count(key));
            break;
        }
        ASSERT_EQ(ws.size(), ref.size());
    }
    EXPECT_EQ(sortedKeys(ws), sortedKeys(ref));
}

TEST(WordSet, EraseRangeNeverMapsPages)
{
    WordSet ws;
    ws.eraseRange(heapBase, heapBase + (1 << 22));
    EXPECT_EQ(ws.size(), 0u);
    ws.insert(heapBase);
    EXPECT_TRUE(ws.contains(heapBase));
    ws.eraseRange(heapBase, heapBase + wordSize);
    EXPECT_FALSE(ws.contains(heapBase));
    EXPECT_TRUE(ws.empty());
}

TEST(RingDeque, MatchesStdDeque)
{
    Rng rng(47);
    RingDeque<int> ring(4);
    std::deque<int> ref;
    for (int k = 0; k < 100000; ++k) {
        switch (rng.range(3)) {
          case 0: {
            int v = int(rng.next());
            ring.push_back(v);
            ref.push_back(v);
            break;
          }
          case 1:
            if (!ref.empty()) {
                ASSERT_EQ(ring.front(), ref.front());
                ring.pop_front();
                ref.pop_front();
            }
            break;
          default: {
            std::size_t at = rng.range(unsigned(ref.size() + 1));
            int v = int(rng.next());
            ring.insert(at, v);
            ref.insert(ref.begin() + std::ptrdiff_t(at), v);
            break;
          }
        }
        ASSERT_EQ(ring.size(), ref.size());
        if (!ref.empty()) {
            ASSERT_EQ(ring.front(), ref.front());
        }
    }
    while (!ref.empty()) {
        ASSERT_EQ(ring.front(), ref.front());
        ring.pop_front();
        ref.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(ShadowPool, ClearRecyclesPagesAndValuesStayCorrect)
{
    ShadowMemory sh(0xaa);
    sh.fillApp(heapBase, 1 << 20, 0x11);
    std::size_t mapped = sh.mappedPages();
    EXPECT_GT(mapped, 0u);
    EXPECT_EQ(sh.pooledPages(), 0u);

    sh.clear();
    EXPECT_EQ(sh.mappedPages(), 0u);
    EXPECT_EQ(sh.pooledPages(), mapped);
    // Unmapped reads fall back to the default byte.
    EXPECT_EQ(sh.readApp(heapBase), 0xaa);

    // Re-faulting reuses pooled pages and re-initializes them.
    sh.fillApp(heapBase, 1 << 20, 0x22);
    EXPECT_EQ(sh.mappedPages(), mapped);
    EXPECT_EQ(sh.pooledPages(), 0u);
    EXPECT_EQ(sh.readApp(heapBase), 0x22);
    EXPECT_EQ(sh.readApp(heapBase + (1 << 20) - wordSize), 0x22);
    // A word just past the filled range reads default again (page
    // content was re-initialized, not recycled dirty).
    EXPECT_EQ(sh.readApp(heapBase + (1 << 20) + pageSize * wordSize),
              0xaa);
}

TEST(ShadowFill, PageSpanFillMatchesPerByteWrites)
{
    ShadowMemory bulk(0x00), loop(0x00);
    // Spans chosen to cover: inside one page, exact page, crossing two
    // and three pages, unaligned edges.
    struct Span
    {
        Addr md;
        std::uint64_t len;
        std::uint8_t v;
    };
    const Span spans[] = {
        {mdBase + 10, 5, 1},           {mdBase + 4090, 12, 2},
        {mdBase + pageSize, pageSize, 3}, {mdBase + 100, 3 * pageSize, 4},
        {mdBase + 8191, 1, 5},
    };
    for (const Span &s : spans) {
        bulk.fill(s.md, s.len, s.v);
        for (std::uint64_t i = 0; i < s.len; ++i)
            loop.write(s.md + i, s.v);
    }
    ASSERT_EQ(bulk.mappedPages(), loop.mappedPages());
    for (Addr a = mdBase; a < mdBase + 4 * pageSize; ++a)
        ASSERT_EQ(bulk.read(a), loop.read(a)) << a - mdBase;
}

class GeneratorOracleSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorOracleSweep, OracleCoherentAndKeysAlignedWithBugs)
{
    TraceGenerator g(specProfile(GetParam()));
    std::uint64_t loadsChecked = 0;
    std::uint8_t truthSeen = 0;
    for (int i = 0; i < 60000; ++i) {
        // Splice bugs mid-stream: the mirrors must regain coherence
        // once the injected sequence has drained.
        if (i == 20000) {
            g.injectBug(truthAccessUnallocated);
            g.injectBug(truthLeakDrop);
            g.injectBug(truthTaintedJump);
        }
        Instruction inst = g.fetch();
        truthSeen |= inst.truth;
        // The spliced instructions (and their helper loads) bypass
        // noteWrite by design; give the splice a drain window before
        // re-asserting the invariant.
        if (i >= 20000 && i < 20500)
            continue;
        if (inst.cls == InstClass::Load && inst.hasDst) {
            // A load's destination register mirrors exactly what the
            // loaded word holds — the invariant FADE's clean checks
            // (and the monitors' shadow propagation) rely on.
            ASSERT_EQ(g.regIsPtr(inst.tid, inst.dst),
                      g.wordIsPtr(inst.memAddr));
            ASSERT_EQ(g.regIsTainted(inst.tid, inst.dst),
                      g.wordIsTainted(inst.memAddr));
            ++loadsChecked;
        }
    }
    EXPECT_GT(loadsChecked, 1000u);
    EXPECT_TRUE(truthSeen & truthAccessUnallocated);
    EXPECT_TRUE(truthSeen & truthLeakDrop);
    EXPECT_TRUE(truthSeen & truthTaintedJump);

    // Canonical word alignment of every mirror key (the oracle masks
    // with wordKey; insert/erase sites must have used the same form).
    g.ptrWords().forEach([](Addr w) { ASSERT_EQ(w & 3, 0u); });
    g.taintWords().forEach([](Addr w) { ASSERT_EQ(w & 3, 0u); });
}

INSTANTIATE_TEST_SUITE_P(AllSpecProfiles, GeneratorOracleSweep,
                         ::testing::ValuesIn(specBenchmarks()));

} // namespace fade
