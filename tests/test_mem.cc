/** @file Unit tests for the memory hierarchy and shadow memory. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/mdcache.hh"
#include "mem/shadow.hh"
#include "sim/random.hh"

namespace fade
{

TEST(Cache, HitAfterMiss)
{
    Cache c(l1Params("t"), nullptr, 90);
    unsigned first = c.access(0x1000, false);
    unsigned second = c.access(0x1000, false);
    EXPECT_EQ(first, 2u + 90u);
    EXPECT_EQ(second, 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, BlockGranularity)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.access(0x1000, false);
    EXPECT_EQ(c.access(0x103F, false), 2u) << "same 64B block hits";
    EXPECT_GT(c.access(0x1040, false), 2u) << "next block misses";
}

TEST(Cache, LruEviction)
{
    CacheParams p;
    p.sizeBytes = 2 * 64; // 1 set, 2 ways
    p.ways = 2;
    p.blockBytes = 64;
    p.latency = 1;
    Cache c(p, nullptr, 10);
    c.access(0 * 64, false);
    c.access(1 * 64, false);
    c.access(0 * 64, false); // touch 0: 1 becomes LRU
    c.access(2 * 64, false); // evicts 1
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
    EXPECT_TRUE(c.contains(2 * 64));
}

TEST(Cache, HierarchyLatencyComposition)
{
    Cache l2(l2Params(), nullptr, 90);
    Cache l1(l1Params("l1"), &l2, 90);
    // Cold: L1 miss (2) + L2 miss (10) + DRAM (90).
    EXPECT_EQ(l1.access(0x4000, false), 2u + 10u + 90u);
    // L1 hit after fill.
    EXPECT_EQ(l1.access(0x4000, false), 2u);
    l1.flush();
    // L1 miss, L2 hit.
    EXPECT_EQ(l1.access(0x4000, false), 2u + 10u);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.access(0x1000, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(Cache, TouchWarmsWithoutStats)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.touch(0x2000);
    EXPECT_TRUE(c.contains(0x2000));
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.access(0x2000, false), 2u);
}

TEST(Cache, MissRate)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

/** Property: working sets within capacity never miss after warmup. */
class CacheWorkingSetSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheWorkingSetSweep, ResidentSetStaysResident)
{
    unsigned blocks = GetParam();
    Cache c(l1Params("t"), nullptr, 90);
    // 32KB/64B = 512 blocks; use contiguous blocks (no conflict).
    for (unsigned i = 0; i < blocks; ++i)
        c.access(i * 64, false);
    c.resetStats();
    for (int pass = 0; pass < 3; ++pass)
        for (unsigned i = 0; i < blocks; ++i)
            c.access(i * 64, false);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.hits(), std::uint64_t(3 * blocks));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheWorkingSetSweep,
                         ::testing::Values(1, 16, 128, 512));

TEST(Shadow, DefaultValue)
{
    ShadowMemory s(0x2a);
    EXPECT_EQ(s.read(mdBase + 12345), 0x2a);
}

TEST(Shadow, ReadBackWrite)
{
    ShadowMemory s(0);
    s.write(mdBase + 100, 7);
    EXPECT_EQ(s.read(mdBase + 100), 7);
    EXPECT_EQ(s.read(mdBase + 101), 0);
}

TEST(Shadow, AppWordMapping)
{
    ShadowMemory s(0);
    s.writeApp(0x1000, 3);
    EXPECT_EQ(s.readApp(0x1000), 3);
    EXPECT_EQ(s.readApp(0x1001), 3) << "same word";
    EXPECT_EQ(s.readApp(0x1003), 3) << "same word";
    EXPECT_EQ(s.readApp(0x1004), 0) << "next word";
    EXPECT_EQ(s.read(mdAddrOf(0x1000)), 3);
}

TEST(Shadow, FillAppRange)
{
    ShadowMemory s(0);
    s.fillApp(0x2000, 64, 1); // 16 words
    for (Addr a = 0x2000; a < 0x2040; a += 4)
        ASSERT_EQ(s.readApp(a), 1);
    EXPECT_EQ(s.readApp(0x2040), 0);
    EXPECT_EQ(s.readApp(0x1FFC), 0);
}

TEST(Shadow, FillUnalignedRangeCoversTouchedWords)
{
    ShadowMemory s(0);
    s.fillApp(0x1002, 4, 1); // touches words at 0x1000 and 0x1004
    EXPECT_EQ(s.readApp(0x1000), 1);
    EXPECT_EQ(s.readApp(0x1004), 1);
    EXPECT_EQ(s.readApp(0x1008), 0);
}

TEST(Shadow, CrossPageFill)
{
    ShadowMemory s(0);
    Addr start = 4 * (pageSize - 2); // md range spans a page boundary
    s.fillApp(start, 16, 5);
    for (Addr a = start; a < start + 16; a += 4)
        ASSERT_EQ(s.readApp(a), 5);
    EXPECT_GE(s.mappedPages(), 2u);
}

TEST(MdCacheTest, TlbMissThenHit)
{
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    MdAccessResult r1 = mdc.accessApp(0x5000, false);
    EXPECT_TRUE(r1.tlbMiss);
    EXPECT_GE(r1.latency, MdCacheParams{}.tlbMissPenalty);
    MdAccessResult r2 = mdc.accessApp(0x5004, false);
    EXPECT_FALSE(r2.tlbMiss) << "same page translation cached";
}

TEST(MdCacheTest, OneCycleHit)
{
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    mdc.accessApp(0x5000, false);
    MdAccessResult r = mdc.accessApp(0x5000, false);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_FALSE(r.cacheMiss);
}

TEST(MdCacheTest, TlbLruEviction)
{
    MdCacheParams p;
    p.tlbEntries = 2;
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(p, &l2);
    mdc.accessApp(0 * pageSize, false);
    mdc.accessApp(1 * pageSize, false);
    mdc.accessApp(0 * pageSize, false); // page 1 becomes LRU
    mdc.accessApp(2 * pageSize, false); // evicts page 1
    EXPECT_EQ(mdc.tlbMisses(), 3u);
    MdAccessResult r = mdc.accessApp(1 * pageSize, false);
    EXPECT_TRUE(r.tlbMiss);
}

TEST(MdCacheTest, MetadataCompression)
{
    // Metadata is 1 byte per 4-byte word: one MD block covers 256
    // application bytes, so consecutive app blocks share MD blocks.
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    mdc.accessApp(0x8000, false);
    std::uint64_t misses = mdc.cache().misses();
    mdc.accessApp(0x8040, false);
    mdc.accessApp(0x8080, false);
    mdc.accessApp(0x80FC, false);
    EXPECT_EQ(mdc.cache().misses(), misses)
        << "accesses within 256 app bytes share one metadata block";
}

namespace
{

DirectoryParams
dirParams(unsigned clusters)
{
    DirectoryParams p;
    p.clusters = clusters;
    return p;
}

/** First address in stride order whose home is @p cluster. */
Addr
addrHomedAt(const HomeDirectory &d, unsigned cluster)
{
    for (Addr a = 0;; a += d.params().slice.blockBytes)
        if (d.home(a) == cluster)
            return a;
}

/** MemPort stub recording every access (slice-view stand-in). */
struct RecordingPort : MemPort
{
    unsigned
    access(Addr addr, bool write) override
    {
        accesses.push_back(addr);
        (void)write;
        return 5;
    }

    std::vector<Addr> accesses;
};

} // namespace

TEST(HomeDirectoryTest, SingleClusterDegenerates)
{
    HomeDirectory d(dirParams(1));
    EXPECT_EQ(d.numSlices(), 1u);
    for (Addr a : {Addr(0), Addr(0x1000), Addr(0x12345678),
                   ~Addr(0) - 63})
        EXPECT_EQ(d.home(a), 0u);

    // Flat-case port: every access local, no penalty ever added.
    DirectoryPort port(d, 0);
    unsigned cold = port.access(0x4000, false);
    unsigned warm = port.access(0x4000, false);
    EXPECT_EQ(cold, d.slice(0).params().latency + d.params().memLatency);
    EXPECT_EQ(warm, d.slice(0).params().latency);
    EXPECT_EQ(port.stats().localAccesses, 2u);
    EXPECT_EQ(port.stats().remoteAccesses, 0u);
}

TEST(HomeDirectoryTest, HomeIsBlockGranularAndPure)
{
    HomeDirectory d(dirParams(4));
    const Addr block = d.params().slice.blockBytes;
    for (Addr base : {Addr(0), Addr(0x40000000), Addr(0xE0000000)}) {
        unsigned h = d.home(base);
        EXPECT_EQ(d.home(base + 1), h);
        EXPECT_EQ(d.home(base + block - 1), h);
        EXPECT_EQ(d.home(base), h) << "home() must be pure";
    }
}

/** home(addr) spreads strided block sequences evenly (the Fibonacci
 *  mix exists so strides do not pile onto one slice). */
class HomeDistribution : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HomeDistribution, BalancedAcrossSlices)
{
    const unsigned clusters = GetParam();
    HomeDirectory d(dirParams(clusters));
    const Addr block = d.params().slice.blockBytes;
    const unsigned n = 4096;
    std::vector<unsigned> count(clusters, 0);
    for (unsigned i = 0; i < n; ++i)
        ++count[d.home(Addr(0x40000000) + Addr(i) * block)];
    const unsigned ideal = n / clusters;
    for (unsigned c = 0; c < clusters; ++c) {
        EXPECT_GT(count[c], ideal * 7 / 10) << "slice " << c;
        EXPECT_LT(count[c], ideal * 13 / 10) << "slice " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(Clusters, HomeDistribution,
                         ::testing::Values(2, 4));

TEST(DirectoryPortTest, RoutesByHomeAndCountsLocalRemote)
{
    HomeDirectory d(dirParams(2));
    DirectoryPort port(d, 0);
    const Addr local = addrHomedAt(d, 0);
    const Addr remote = addrHomedAt(d, 1);
    const unsigned sliceLat = d.slice(0).params().latency;
    const unsigned mem = d.params().memLatency;

    EXPECT_EQ(port.access(local, false), sliceLat + mem);
    EXPECT_EQ(port.access(local, false), sliceLat);
    EXPECT_EQ(port.access(remote, false),
              sliceLat + mem + d.remoteLatency());
    EXPECT_EQ(port.access(remote, false), sliceLat + d.remoteLatency());

    EXPECT_EQ(port.stats().localAccesses, 2u);
    EXPECT_EQ(port.stats().remoteAccesses, 2u);
    EXPECT_TRUE(d.slice(0).contains(local));
    EXPECT_FALSE(d.slice(0).contains(remote));
    EXPECT_TRUE(d.slice(1).contains(remote));

    // A port homed on cluster 1 sees the mirror-image counts and pays
    // the penalty on the other address.
    DirectoryPort other(d, 1);
    EXPECT_EQ(other.access(remote, false), sliceLat);
    EXPECT_EQ(other.access(local, false),
              sliceLat + d.remoteLatency());
    EXPECT_EQ(other.stats().localAccesses, 1u);
    EXPECT_EQ(other.stats().remoteAccesses, 1u);

    port.resetStats();
    EXPECT_EQ(port.stats().localAccesses, 0u);
    EXPECT_EQ(port.stats().remoteAccesses, 0u);
}

TEST(DirectoryPortTest, SliceRedirectAndRouteToBase)
{
    // Scheduler slices detach a port from the real slice caches onto
    // per-shard views and drain back at the barrier; model the view
    // with a recording stub.
    HomeDirectory d(dirParams(2));
    DirectoryPort port(d, 0);
    RecordingPort view;
    const Addr local = addrHomedAt(d, 0);
    const Addr remote = addrHomedAt(d, 1);

    port.setSlicePort(1, &view);
    EXPECT_EQ(port.access(remote, false), 5u + d.remoteLatency())
        << "redirected slice supplies the latency; penalty stays";
    ASSERT_EQ(view.accesses.size(), 1u);
    EXPECT_EQ(view.accesses[0], remote);
    EXPECT_FALSE(d.slice(1).contains(remote))
        << "real slice must not see detached traffic";

    port.access(local, false);
    EXPECT_EQ(view.accesses.size(), 1u)
        << "local slice still routes to the real cache";
    EXPECT_TRUE(d.slice(0).contains(local));

    // Null restores the real slice, as does routeToBase().
    port.setSlicePort(1, nullptr);
    port.access(remote, false);
    EXPECT_TRUE(d.slice(1).contains(remote));

    port.setSlicePort(0, &view);
    port.routeToBase();
    port.access(local, false);
    EXPECT_EQ(view.accesses.size(), 1u);

    EXPECT_EQ(port.stats().localAccesses, 2u);
    EXPECT_EQ(port.stats().remoteAccesses, 2u);
}

TEST(HomeDirectoryTest, ResetStatsClearsEverySlice)
{
    HomeDirectory d(dirParams(2));
    DirectoryPort port(d, 0);
    port.access(addrHomedAt(d, 0), false);
    port.access(addrHomedAt(d, 1), false);
    EXPECT_GT(d.slice(0).misses() + d.slice(1).misses(), 0u);
    d.resetStats();
    EXPECT_EQ(d.slice(0).misses(), 0u);
    EXPECT_EQ(d.slice(1).misses(), 0u);
    EXPECT_EQ(d.slice(0).hits(), 0u);
    EXPECT_EQ(d.slice(1).hits(), 0u);
}

TEST(MdCacheTest, WarmDoesNotCountStats)
{
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    mdc.warm(0x9000);
    EXPECT_EQ(mdc.tlbMisses(), 0u);
    MdAccessResult r = mdc.accessApp(0x9000, false);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_FALSE(r.tlbMiss);
}

} // namespace fade
