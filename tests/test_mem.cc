/** @file Unit tests for the memory hierarchy and shadow memory. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/mdcache.hh"
#include "mem/shadow.hh"
#include "sim/random.hh"

namespace fade
{

TEST(Cache, HitAfterMiss)
{
    Cache c(l1Params("t"), nullptr, 90);
    unsigned first = c.access(0x1000, false);
    unsigned second = c.access(0x1000, false);
    EXPECT_EQ(first, 2u + 90u);
    EXPECT_EQ(second, 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, BlockGranularity)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.access(0x1000, false);
    EXPECT_EQ(c.access(0x103F, false), 2u) << "same 64B block hits";
    EXPECT_GT(c.access(0x1040, false), 2u) << "next block misses";
}

TEST(Cache, LruEviction)
{
    CacheParams p;
    p.sizeBytes = 2 * 64; // 1 set, 2 ways
    p.ways = 2;
    p.blockBytes = 64;
    p.latency = 1;
    Cache c(p, nullptr, 10);
    c.access(0 * 64, false);
    c.access(1 * 64, false);
    c.access(0 * 64, false); // touch 0: 1 becomes LRU
    c.access(2 * 64, false); // evicts 1
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
    EXPECT_TRUE(c.contains(2 * 64));
}

TEST(Cache, HierarchyLatencyComposition)
{
    Cache l2(l2Params(), nullptr, 90);
    Cache l1(l1Params("l1"), &l2, 90);
    // Cold: L1 miss (2) + L2 miss (10) + DRAM (90).
    EXPECT_EQ(l1.access(0x4000, false), 2u + 10u + 90u);
    // L1 hit after fill.
    EXPECT_EQ(l1.access(0x4000, false), 2u);
    l1.flush();
    // L1 miss, L2 hit.
    EXPECT_EQ(l1.access(0x4000, false), 2u + 10u);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.access(0x1000, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(Cache, TouchWarmsWithoutStats)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.touch(0x2000);
    EXPECT_TRUE(c.contains(0x2000));
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.access(0x2000, false), 2u);
}

TEST(Cache, MissRate)
{
    Cache c(l1Params("t"), nullptr, 90);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

/** Property: working sets within capacity never miss after warmup. */
class CacheWorkingSetSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheWorkingSetSweep, ResidentSetStaysResident)
{
    unsigned blocks = GetParam();
    Cache c(l1Params("t"), nullptr, 90);
    // 32KB/64B = 512 blocks; use contiguous blocks (no conflict).
    for (unsigned i = 0; i < blocks; ++i)
        c.access(i * 64, false);
    c.resetStats();
    for (int pass = 0; pass < 3; ++pass)
        for (unsigned i = 0; i < blocks; ++i)
            c.access(i * 64, false);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.hits(), std::uint64_t(3 * blocks));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheWorkingSetSweep,
                         ::testing::Values(1, 16, 128, 512));

TEST(Shadow, DefaultValue)
{
    ShadowMemory s(0x2a);
    EXPECT_EQ(s.read(mdBase + 12345), 0x2a);
}

TEST(Shadow, ReadBackWrite)
{
    ShadowMemory s(0);
    s.write(mdBase + 100, 7);
    EXPECT_EQ(s.read(mdBase + 100), 7);
    EXPECT_EQ(s.read(mdBase + 101), 0);
}

TEST(Shadow, AppWordMapping)
{
    ShadowMemory s(0);
    s.writeApp(0x1000, 3);
    EXPECT_EQ(s.readApp(0x1000), 3);
    EXPECT_EQ(s.readApp(0x1001), 3) << "same word";
    EXPECT_EQ(s.readApp(0x1003), 3) << "same word";
    EXPECT_EQ(s.readApp(0x1004), 0) << "next word";
    EXPECT_EQ(s.read(mdAddrOf(0x1000)), 3);
}

TEST(Shadow, FillAppRange)
{
    ShadowMemory s(0);
    s.fillApp(0x2000, 64, 1); // 16 words
    for (Addr a = 0x2000; a < 0x2040; a += 4)
        ASSERT_EQ(s.readApp(a), 1);
    EXPECT_EQ(s.readApp(0x2040), 0);
    EXPECT_EQ(s.readApp(0x1FFC), 0);
}

TEST(Shadow, FillUnalignedRangeCoversTouchedWords)
{
    ShadowMemory s(0);
    s.fillApp(0x1002, 4, 1); // touches words at 0x1000 and 0x1004
    EXPECT_EQ(s.readApp(0x1000), 1);
    EXPECT_EQ(s.readApp(0x1004), 1);
    EXPECT_EQ(s.readApp(0x1008), 0);
}

TEST(Shadow, CrossPageFill)
{
    ShadowMemory s(0);
    Addr start = 4 * (pageSize - 2); // md range spans a page boundary
    s.fillApp(start, 16, 5);
    for (Addr a = start; a < start + 16; a += 4)
        ASSERT_EQ(s.readApp(a), 5);
    EXPECT_GE(s.mappedPages(), 2u);
}

TEST(MdCacheTest, TlbMissThenHit)
{
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    MdAccessResult r1 = mdc.accessApp(0x5000, false);
    EXPECT_TRUE(r1.tlbMiss);
    EXPECT_GE(r1.latency, MdCacheParams{}.tlbMissPenalty);
    MdAccessResult r2 = mdc.accessApp(0x5004, false);
    EXPECT_FALSE(r2.tlbMiss) << "same page translation cached";
}

TEST(MdCacheTest, OneCycleHit)
{
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    mdc.accessApp(0x5000, false);
    MdAccessResult r = mdc.accessApp(0x5000, false);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_FALSE(r.cacheMiss);
}

TEST(MdCacheTest, TlbLruEviction)
{
    MdCacheParams p;
    p.tlbEntries = 2;
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(p, &l2);
    mdc.accessApp(0 * pageSize, false);
    mdc.accessApp(1 * pageSize, false);
    mdc.accessApp(0 * pageSize, false); // page 1 becomes LRU
    mdc.accessApp(2 * pageSize, false); // evicts page 1
    EXPECT_EQ(mdc.tlbMisses(), 3u);
    MdAccessResult r = mdc.accessApp(1 * pageSize, false);
    EXPECT_TRUE(r.tlbMiss);
}

TEST(MdCacheTest, MetadataCompression)
{
    // Metadata is 1 byte per 4-byte word: one MD block covers 256
    // application bytes, so consecutive app blocks share MD blocks.
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    mdc.accessApp(0x8000, false);
    std::uint64_t misses = mdc.cache().misses();
    mdc.accessApp(0x8040, false);
    mdc.accessApp(0x8080, false);
    mdc.accessApp(0x80FC, false);
    EXPECT_EQ(mdc.cache().misses(), misses)
        << "accesses within 256 app bytes share one metadata block";
}

TEST(MdCacheTest, WarmDoesNotCountStats)
{
    Cache l2(l2Params(), nullptr, 90);
    MdCache mdc(MdCacheParams{}, &l2);
    mdc.warm(0x9000);
    EXPECT_EQ(mdc.tlbMisses(), 0u);
    MdAccessResult r = mdc.accessApp(0x9000, false);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_FALSE(r.tlbMiss);
}

} // namespace fade
