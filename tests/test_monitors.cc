/** @file Functional tests for the five lifeguards. */

#include <gtest/gtest.h>

#include "core/filter_logic.hh"
#include "sim/random.hh"
#include "monitor/addrcheck.hh"
#include "monitor/atomcheck.hh"
#include "monitor/factory.hh"
#include "monitor/memcheck.hh"
#include "monitor/memleak.hh"
#include "monitor/taintcheck.hh"
#include "system/system.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

UnfilteredEvent
instEvent(std::uint8_t id, Addr addr, RegIndex s1, RegIndex s2,
          RegIndex dst, std::uint8_t nsrc, ThreadId tid = 0)
{
    UnfilteredEvent u;
    u.ev.kind = EventKind::Inst;
    u.ev.eventId = id;
    u.ev.appAddr = addr;
    u.ev.src1 = s1;
    u.ev.src2 = s2;
    u.ev.numSrc = nsrc;
    u.ev.dst = dst;
    u.ev.hasDst = true;
    u.ev.tid = tid;
    return u;
}

UnfilteredEvent
highLevel(EventKind k, Addr base, std::uint32_t len, RegIndex dst = 2)
{
    UnfilteredEvent u;
    u.ev.kind = k;
    u.ev.appAddr = base;
    u.ev.len = len;
    u.ev.dst = dst;
    u.ev.hasDst = true;
    return u;
}

} // namespace

TEST(Factory, AllMonitorsConstructible)
{
    for (const auto &name : monitorNames()) {
        auto m = makeMonitor(name);
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->name(), name);
    }
}

TEST(Factory, Classification)
{
    EXPECT_TRUE(isPropagationMonitor("MemLeak"));
    EXPECT_TRUE(isPropagationMonitor("MemCheck"));
    EXPECT_TRUE(isPropagationMonitor("TaintCheck"));
    EXPECT_FALSE(isPropagationMonitor("AddrCheck"));
    EXPECT_FALSE(isPropagationMonitor("AtomCheck"));
}

// ---------------------------------------------------------------- Addr

TEST(AddrCheckTest, DetectsUnallocatedAccess)
{
    AddrCheck m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(instEvent(evLoad, 0x9000, 1, 0, 5, 1), ctx);
    ASSERT_EQ(m.reports().size(), 1u);
    EXPECT_EQ(m.reports()[0].kind, "unallocated-access");
    // Suppression: the same word does not report twice.
    m.handleEvent(instEvent(evLoad, 0x9000, 1, 0, 5, 1), ctx);
    EXPECT_EQ(m.reports().size(), 1u);
}

TEST(AddrCheckTest, MallocFreeLifecycle)
{
    AddrCheck m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 64), ctx);
    m.handleEvent(instEvent(evStore, 0x40000010, 4, 0, 0, 1), ctx);
    EXPECT_TRUE(m.reports().empty());
    m.handleEvent(highLevel(EventKind::Free, 0x40000000, 64), ctx);
    m.handleEvent(instEvent(evLoad, 0x40000010, 1, 0, 5, 1), ctx);
    ASSERT_EQ(m.reports().size(), 1u) << "use after free detected";
}

TEST(AddrCheckTest, StackFrameLifecycle)
{
    AddrCheck m;
    MonitorContext ctx(m.shadowDefault());
    UnfilteredEvent call;
    call.ev.kind = EventKind::StackCall;
    call.ev.appAddr = 0xE0000100;
    call.ev.len = 32;
    m.handleEvent(call, ctx);
    EXPECT_EQ(ctx.shadow.readApp(0xE0000100), AddrCheck::mdAllocated);
    UnfilteredEvent ret = call;
    ret.ev.kind = EventKind::StackReturn;
    m.handleEvent(ret, ctx);
    EXPECT_EQ(ctx.shadow.readApp(0xE0000100), AddrCheck::mdUnallocated);
}

TEST(AddrCheckTest, MonitorsOnlyNonStackMemRefs)
{
    AddrCheck m;
    Instruction ld;
    ld.cls = InstClass::Load;
    ld.memAddr = 0x40000000;
    EXPECT_TRUE(m.monitored(ld));
    ld.memAddr = stackTop - 64;
    EXPECT_FALSE(m.monitored(ld)) << "stack accesses are eliminated";
    Instruction alu;
    alu.cls = InstClass::IntAlu;
    EXPECT_FALSE(m.monitored(alu));
}

TEST(AddrCheckTest, CleanRunsQuietOnAllSpecProfiles)
{
    // Regression for a generator edge case: a stride-1 heap walk could
    // continue into a block freed after the walk began, which AddrCheck
    // correctly flagged as use-after-free — but no clean (no-injection)
    // stream may contain one. astar tripped it first; at longer slices
    // five of the eight profiles did.
    for (const std::string &bench : specBenchmarks()) {
        SCOPED_TRACE(bench);
        auto mon = makeMonitor("AddrCheck");
        MonitoringSystem sys(SystemConfig{}, specProfile(bench),
                             mon.get());
        sys.warmup(25000);
        sys.run(60000);
        EXPECT_TRUE(mon->reports().empty())
            << mon->reports().size() << " spurious report(s), first: "
            << (mon->reports().empty() ? ""
                                       : mon->reports().front().kind);
    }
}

// ---------------------------------------------------------------- Mem

TEST(MemCheckTest, PropagatesDefinedness)
{
    MemCheck m;
    MonitorContext ctx(m.shadowDefault());
    ctx.regMd.fill(m.regMdInit());
    // Load from uninit memory makes the register uninit.
    ctx.shadow.writeApp(0x1000, MemCheck::mdUninit);
    m.handleEvent(instEvent(evLoad, 0x1000, 1, 0, 5, 1), ctx);
    EXPECT_EQ(ctx.regMd.read(0, 5), MemCheck::mdUninit);
    // ALU on uninit source taints the destination.
    m.handleEvent(instEvent(evAluRR, 0, 5, 6, 7, 2), ctx);
    EXPECT_EQ(ctx.regMd.read(0, 7), MemCheck::mdUninit);
    // Jump through the uninit register reports.
    m.handleEvent(instEvent(evJumpInd, 0, 7, 0, 0, 1), ctx);
    ASSERT_EQ(m.reports().size(), 1u);
    EXPECT_EQ(m.reports()[0].kind, "uninit-use");
}

TEST(MemCheckTest, StoreInitializesMemory)
{
    MemCheck m;
    MonitorContext ctx(m.shadowDefault());
    ctx.regMd.fill(m.regMdInit());
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 32), ctx);
    EXPECT_EQ(ctx.shadow.readApp(0x40000000), MemCheck::mdUninit);
    m.handleEvent(instEvent(evStore, 0x40000000, 4, 0, 0, 1), ctx);
    EXPECT_EQ(ctx.shadow.readApp(0x40000000), MemCheck::mdInit);
}

TEST(MemCheckTest, ReportsInvalidAccess)
{
    MemCheck m;
    MonitorContext ctx(m.shadowDefault());
    ctx.regMd.fill(m.regMdInit());
    m.handleEvent(instEvent(evLoad, 0x7000, 1, 0, 5, 1), ctx);
    ASSERT_EQ(m.reports().size(), 1u);
    EXPECT_EQ(m.reports()[0].kind, "invalid-read");
}

TEST(MemCheckTest, TaintSourceInitializesBuffer)
{
    MemCheck m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(highLevel(EventKind::TaintSource, 0x40001000, 64), ctx);
    EXPECT_EQ(ctx.shadow.readApp(0x40001000), MemCheck::mdInit);
}

// --------------------------------------------------------------- Taint

TEST(TaintCheckTest, TaintFlowsToExploit)
{
    TaintCheck m;
    MonitorContext ctx(m.shadowDefault());
    // Network input taints a buffer.
    m.handleEvent(highLevel(EventKind::TaintSource, 0x40002000, 64), ctx);
    EXPECT_EQ(ctx.shadow.readApp(0x40002000), TaintCheck::mdTainted);
    // Load brings taint into r5, arithmetic spreads to r7.
    m.handleEvent(instEvent(evLoad, 0x40002000, 1, 0, 5, 1), ctx);
    m.handleEvent(instEvent(evAluRR, 0, 5, 6, 7, 2), ctx);
    EXPECT_EQ(ctx.regMd.read(0, 7), TaintCheck::mdTainted);
    // Indirect jump through the tainted register: alert.
    m.handleEvent(instEvent(evJumpInd, 0, 7, 0, 0, 1), ctx);
    ASSERT_EQ(m.reports().size(), 1u);
    EXPECT_EQ(m.reports()[0].kind, "tainted-jump");
}

TEST(TaintCheckTest, UntaintedJumpIsSilent)
{
    TaintCheck m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(instEvent(evJumpInd, 0, 3, 0, 0, 1), ctx);
    EXPECT_TRUE(m.reports().empty());
}

TEST(TaintCheckTest, StoreAndClearOnFree)
{
    TaintCheck m;
    MonitorContext ctx(m.shadowDefault());
    ctx.regMd.write(0, 4, TaintCheck::mdTainted);
    m.handleEvent(instEvent(evStore, 0x40003000, 4, 0, 0, 1), ctx);
    EXPECT_EQ(ctx.shadow.readApp(0x40003000), TaintCheck::mdTainted);
    m.handleEvent(highLevel(EventKind::Free, 0x40003000, 16), ctx);
    EXPECT_EQ(ctx.shadow.readApp(0x40003000), TaintCheck::mdUntainted);
}

// -------------------------------------------------------------- Leak

TEST(MemLeakTest, DetectsDroppedLastReference)
{
    MemLeak m;
    MonitorContext ctx(m.shadowDefault());
    // malloc -> pointer in r2 (refcount 1)
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 64, 2), ctx);
    EXPECT_EQ(ctx.regMd.read(0, 2), MemLeak::mdPointer);
    ASSERT_EQ(m.contexts().size(), 1u);
    EXPECT_EQ(m.contexts()[0].refs, 1);
    // Overwrite r2 with data: the only reference dies -> leak.
    m.handleEvent(instEvent(evAluRR, 0, 6, 7, 2, 2), ctx);
    EXPECT_EQ(m.leaksDetected(), 1u);
    ASSERT_EQ(m.reports().size(), 1u);
    EXPECT_EQ(m.reports()[0].kind, "memory-leak");
}

TEST(MemLeakTest, NoLeakWhenFreed)
{
    MemLeak m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 64, 2), ctx);
    m.handleEvent(highLevel(EventKind::Free, 0x40000000, 64), ctx);
    m.handleEvent(instEvent(evAluRR, 0, 6, 7, 2, 2), ctx);
    EXPECT_EQ(m.leaksDetected(), 0u);
}

TEST(MemLeakTest, ReferenceCountingThroughMemory)
{
    MemLeak m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 64, 2), ctx);
    // Store the pointer to memory: refcount 2.
    m.handleEvent(instEvent(evStore, 0x50000000, 2, 0, 0, 1), ctx);
    EXPECT_EQ(m.contexts()[0].refs, 2);
    EXPECT_EQ(ctx.shadow.readApp(0x50000000), MemLeak::mdPointer);
    // Overwrite the register: refcount 1, no leak yet.
    m.handleEvent(instEvent(evAluRR, 0, 6, 7, 2, 2), ctx);
    EXPECT_EQ(m.contexts()[0].refs, 1);
    EXPECT_EQ(m.leaksDetected(), 0u);
    // Load it back: refcount 2 again.
    m.handleEvent(instEvent(evLoad, 0x50000000, 1, 0, 9, 1), ctx);
    EXPECT_EQ(m.contexts()[0].refs, 2);
    EXPECT_EQ(ctx.regMd.read(0, 9), MemLeak::mdPointer);
    // Kill both references: leak.
    m.handleEvent(instEvent(evAluRI, 0, 6, 0, 9, 1), ctx);
    UnfilteredEvent st = instEvent(evStore, 0x50000000, 6, 0, 0, 1);
    m.handleEvent(st, ctx);
    EXPECT_EQ(m.leaksDetected(), 1u);
}

TEST(MemLeakTest, StackFrameDeathDropsReferences)
{
    MemLeak m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 64, 2), ctx);
    // Spill the pointer into a local, then clobber the register.
    m.handleEvent(instEvent(evStore, 0xE0000010, 2, 0, 0, 1), ctx);
    m.handleEvent(instEvent(evAluRR, 0, 6, 7, 2, 2), ctx);
    EXPECT_EQ(m.leaksDetected(), 0u) << "local still references block";
    // Frame dies: the last reference goes with it.
    UnfilteredEvent ret;
    ret.ev.kind = EventKind::StackReturn;
    ret.ev.appAddr = 0xE0000000;
    ret.ev.len = 64;
    m.handleEvent(ret, ctx);
    EXPECT_EQ(m.leaksDetected(), 1u);
}

TEST(MemLeakTest, PointerArithmeticKeepsReference)
{
    MemLeak m;
    MonitorContext ctx(m.shadowDefault());
    m.handleEvent(highLevel(EventKind::Malloc, 0x40000000, 64, 2), ctx);
    // p' = p + offset into r3: both reference the block.
    m.handleEvent(instEvent(evAluRR, 0, 2, 6, 3, 2), ctx);
    EXPECT_EQ(m.contexts()[0].refs, 2);
    EXPECT_EQ(ctx.regMd.read(0, 3), MemLeak::mdPointer);
    // Multiply destroys pointerness.
    m.handleEvent(instEvent(evMul, 0, 3, 6, 3, 2), ctx);
    EXPECT_EQ(m.contexts()[0].refs, 1);
    EXPECT_EQ(ctx.regMd.read(0, 3), MemLeak::mdNonPointer);
}

// -------------------------------------------------------------- Atom

TEST(AtomCheckTest, UnserializablePatterns)
{
    EXPECT_TRUE(AtomCheck::unserializable(AtomCheck::accRead,
                                          AtomCheck::accWrite,
                                          AtomCheck::accRead));
    EXPECT_TRUE(AtomCheck::unserializable(AtomCheck::accWrite,
                                          AtomCheck::accWrite,
                                          AtomCheck::accRead));
    EXPECT_TRUE(AtomCheck::unserializable(AtomCheck::accWrite,
                                          AtomCheck::accRead,
                                          AtomCheck::accWrite));
    EXPECT_TRUE(AtomCheck::unserializable(AtomCheck::accRead,
                                          AtomCheck::accWrite,
                                          AtomCheck::accWrite));
    // Serializable ones.
    EXPECT_FALSE(AtomCheck::unserializable(AtomCheck::accRead,
                                           AtomCheck::accRead,
                                           AtomCheck::accRead));
    EXPECT_FALSE(AtomCheck::unserializable(AtomCheck::accWrite,
                                           AtomCheck::accRead,
                                           AtomCheck::accRead));
}

TEST(AtomCheckTest, DetectsReadWriteReadInterleaving)
{
    AtomCheck m;
    MonitorContext ctx(m.shadowDefault());
    Addr a = 0x40000100;
    m.handleEvent(instEvent(evLoad, a, 1, 0, 5, 1, 0), ctx);  // T0 read
    m.handleEvent(instEvent(evStore, a, 4, 0, 0, 1, 1), ctx); // T1 write
    m.handleEvent(instEvent(evLoad, a, 1, 0, 5, 1, 0), ctx);  // T0 read
    ASSERT_EQ(m.reports().size(), 1u);
    EXPECT_EQ(m.reports()[0].kind, "atomicity-violation");
}

TEST(AtomCheckTest, SameThreadSequenceIsSilent)
{
    AtomCheck m;
    MonitorContext ctx(m.shadowDefault());
    Addr a = 0x40000200;
    for (int i = 0; i < 10; ++i) {
        m.handleEvent(instEvent(i % 2 ? evStore : evLoad, a, 1, 0, 5, 1,
                                0), ctx);
    }
    EXPECT_TRUE(m.reports().empty());
    EXPECT_EQ(m.sameThreadAccesses, 9u);
}

TEST(AtomCheckTest, ReadReadInterleavingIsSerializable)
{
    AtomCheck m;
    MonitorContext ctx(m.shadowDefault());
    Addr a = 0x40000300;
    m.handleEvent(instEvent(evLoad, a, 1, 0, 5, 1, 0), ctx);
    m.handleEvent(instEvent(evLoad, a, 1, 0, 5, 1, 1), ctx);
    m.handleEvent(instEvent(evLoad, a, 1, 0, 5, 1, 0), ctx);
    EXPECT_TRUE(m.reports().empty());
}

TEST(AtomCheckTest, MetadataTracksLastAccessor)
{
    AtomCheck m;
    MonitorContext ctx(m.shadowDefault());
    Addr a = 0x40000400;
    m.handleEvent(instEvent(evStore, a, 4, 0, 0, 1, 2), ctx);
    EXPECT_EQ(ctx.shadow.readApp(a),
              AtomCheck::mdAccessed | 2);
}

TEST(AtomCheckTest, ThreadSwitchUpdatesInvariantRegister)
{
    AtomCheck m;
    InvRegFile inv;
    m.onThreadSwitch(3, &inv);
    EXPECT_EQ(inv.read(0), AtomCheck::mdAccessed | 3);
    m.onThreadSwitch(0, nullptr); // must not crash
}

// ------------------------------------------------- handler sequences

class HandlerSeqSweep
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(HandlerSeqSweep, SequencesAreNonEmptyAndBounded)
{
    auto [name, hwChecked] = GetParam();
    auto m = makeMonitor(name);
    MonitorContext ctx(m->shadowDefault());
    std::vector<Instruction> seq;

    for (std::uint8_t id :
         {evLoad, evStore, evAluRR, evAluRI, evMul}) {
        if (name == "AddrCheck" && id > evStore)
            continue;
        if (name == "AtomCheck" && id > evStore)
            continue;
        UnfilteredEvent u = instEvent(id, 0x40000000, 1, 2, 5, 2);
        u.hwChecked = hwChecked;
        seq.clear();
        m->buildHandlerSeq(u, ctx, seq);
        EXPECT_GE(seq.size(), 4u) << name << " id " << int(id);
        EXPECT_LE(seq.size(), 64u) << name << " id " << int(id);
    }

    // Bulk handlers scale with region size.
    std::vector<Instruction> small, large;
    m->buildHandlerSeq(highLevel(EventKind::StackCall, 0xE0000000, 64),
                       ctx, small);
    m->buildHandlerSeq(highLevel(EventKind::StackCall, 0xE0000000, 4096),
                       ctx, large);
    EXPECT_GT(large.size(), small.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMonitors, HandlerSeqSweep,
    ::testing::Combine(::testing::Values("AddrCheck", "MemCheck",
                                         "TaintCheck", "MemLeak",
                                         "AtomCheck"),
                       ::testing::Bool()));

/** Property: filtered events never change critical metadata. */
class FilterSoundness : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FilterSoundness, FilteredImpliesNoMetadataChange)
{
    // For every monitor: if FADE's filter logic declares an event
    // filtered, applying the software handler must leave the critical
    // metadata unchanged (the paper's core soundness argument).
    auto m = makeMonitor(GetParam());
    MonitorContext ctx(m->shadowDefault());
    ctx.regMd.fill(m->regMdInit());
    EventTable table;
    InvRegFile inv;
    m->programFade(table, inv);
    FilterLogic logic(inv);
    Rng rng(99);

    for (int iter = 0; iter < 2000; ++iter) {
        std::uint8_t id = std::uint8_t(rng.range(5)); // load..mul
        if (!table.validAt(id))
            continue;
        UnfilteredEvent u = instEvent(
            id, 0x40000000 + rng.range(64) * 4,
            RegIndex(1 + rng.range(27)), RegIndex(1 + rng.range(27)),
            RegIndex(1 + rng.range(27)), 2, 0);
        // Randomize metadata state.
        if (rng.chance(0.3))
            ctx.shadow.writeApp(u.ev.appAddr, std::uint8_t(rng.range(2)));
        if (rng.chance(0.3))
            ctx.regMd.write(0, u.ev.src1, std::uint8_t(rng.range(2)));

        const EventTableEntry &e = table.lookup(id);
        OperandMd md;
        auto readOp = [&](const OperandRule &r, RegIndex reg) {
            if (!r.valid)
                return std::uint8_t(0);
            return r.mem ? ctx.shadow.readApp(u.ev.appAddr)
                         : ctx.regMd.read(0, reg);
        };
        md.s1 = readOp(e.s1, u.ev.src1);
        md.s2 = readOp(e.s2, u.ev.src2);
        md.d = readOp(e.d, u.ev.dst);

        FilterOutcome out = logic.evaluate(table, id, md);
        if (!out.filtered)
            continue;

        std::uint8_t memBefore = ctx.shadow.readApp(u.ev.appAddr);
        std::uint8_t dstBefore = ctx.regMd.read(0, u.ev.dst);
        m->handleEvent(u, ctx);
        EXPECT_EQ(ctx.shadow.readApp(u.ev.appAddr), memBefore)
            << GetParam() << " id " << int(id);
        EXPECT_EQ(ctx.regMd.read(0, u.ev.dst), dstBefore)
            << GetParam() << " id " << int(id);
    }
}

INSTANTIATE_TEST_SUITE_P(Monitors, FilterSoundness,
                         ::testing::Values("AddrCheck", "MemCheck",
                                           "TaintCheck", "MemLeak"));

} // namespace fade
