/** @file Sharded multi-core system tests: routing, rollups, determinism. */

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "monitor/factory.hh"
#include "system/multicore.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 10000;
constexpr std::uint64_t kRun = 20000;

MultiCoreConfig
memLeakConfig(unsigned shards)
{
    MultiCoreConfig cfg;
    cfg.numShards = shards;
    cfg.monitor = "MemLeak";
    cfg.workloads = multiprogramWorkloads("hmmer");
    return cfg;
}

} // namespace

TEST(ShardWorkload, RoundRobinWithSeedDecorrelation)
{
    std::vector<BenchProfile> w = {specProfile("hmmer"),
                                   specProfile("gcc")};
    // First pass through the list: profiles verbatim.
    EXPECT_EQ(shardWorkload(w, 0).name, "hmmer");
    EXPECT_EQ(shardWorkload(w, 0).seed, w[0].seed);
    EXPECT_EQ(shardWorkload(w, 1).name, "gcc");
    EXPECT_EQ(shardWorkload(w, 1).seed, w[1].seed);
    // Second pass: same benchmarks, decorrelated seeds.
    EXPECT_EQ(shardWorkload(w, 2).name, "hmmer#s2");
    EXPECT_NE(shardWorkload(w, 2).seed, w[0].seed);
    EXPECT_EQ(shardWorkload(w, 3).name, "gcc#s3");
    EXPECT_NE(shardWorkload(w, 3).seed, w[1].seed);
    // Duplicate entries in the list itself also decorrelate.
    std::vector<BenchProfile> dup = {specProfile("hmmer"),
                                     specProfile("hmmer")};
    EXPECT_EQ(shardWorkload(dup, 0).seed, dup[0].seed);
    EXPECT_NE(shardWorkload(dup, 1).seed, dup[1].seed);
    EXPECT_EQ(shardWorkload(dup, 1).name, "hmmer#s1");
}

TEST(MultiCore, SingleShardMatchesLegacySystem)
{
    // The legacy single-core MonitoringSystem must be exactly the N=1
    // case of the sharded system: same cycles, events, stalls, filter
    // decisions, and bug reports.
    SystemConfig scfg;
    auto legacyMon = makeMonitor("MemLeak");
    MonitoringSystem legacy(scfg, specProfile("hmmer"), legacyMon.get());
    legacy.warmup(kWarm);
    RunResult lr = legacy.run(kRun);

    MultiCoreConfig mcfg = memLeakConfig(1);
    MultiCoreSystem mc(mcfg);
    mc.warmup(kWarm);
    MultiCoreResult mr = mc.run(kRun);

    ASSERT_EQ(mr.shards.size(), 1u);
    const RunResult &sr = mr.shards[0].run;
    EXPECT_EQ(sr.cycles, lr.cycles);
    EXPECT_EQ(sr.appInstructions, lr.appInstructions);
    EXPECT_EQ(sr.monitoredEvents, lr.monitoredEvents);
    EXPECT_EQ(sr.appStallCycles, lr.appStallCycles);
    EXPECT_EQ(sr.handlerInstructions, lr.handlerInstructions);
    EXPECT_EQ(sr.handlersRun, lr.handlersRun);

    const FadeStats &lf = legacy.fade()->stats();
    const FadeStats &mf = mr.shards[0].fade;
    EXPECT_EQ(mf.instEvents, lf.instEvents);
    EXPECT_EQ(mf.filtered, lf.filtered);
    EXPECT_EQ(mf.unfiltered, lf.unfiltered);
    EXPECT_EQ(mf.partialPass, lf.partialPass);
    EXPECT_EQ(mf.partialFail, lf.partialFail);

    EXPECT_EQ(mc.monitor(0)->reports().size(),
              legacyMon->reports().size());

    EXPECT_EQ(mr.cycles, lr.cycles);
    EXPECT_EQ(mr.totalInstructions, lr.appInstructions);
    EXPECT_DOUBLE_EQ(mr.aggregateIpc, lr.appIpc);
}

TEST(MultiCore, EventsNeverCrossShards)
{
    MultiCoreConfig cfg = memLeakConfig(4);
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    MultiCoreResult r = sys.run(kRun);
    ASSERT_EQ(r.shards.size(), 4u);
    for (const ShardResult &s : r.shards) {
        SCOPED_TRACE(s.shard);
        EXPECT_EQ(s.fade.crossShardEvents, 0u);
        EXPECT_GT(s.run.monitoredEvents, 0u);
        // Every event a shard's FADE consumed was produced by that
        // shard's own core.
        EXPECT_LE(s.fade.instEvents + s.fade.stackEvents +
                      s.fade.highLevelEvents,
                  s.run.monitoredEvents + 64);
    }
    EXPECT_EQ(r.fade.crossShardEvents, 0u);
}

TEST(MultiCore, BugInOneShardReportsOnlyThere)
{
    // AddrCheck stays quiet on these clean streams, so a violation
    // injected into shard 2's generator must surface in shard 2's
    // monitor and nowhere else.
    MultiCoreConfig cfg;
    cfg.numShards = 4;
    cfg.monitor = "AddrCheck";
    cfg.workloads = {specProfile("hmmer"), specProfile("gcc"),
                     specProfile("bzip"), specProfile("gobmk")};
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    sys.shard(2).generator().injectBug(truthAccessUnallocated);
    MultiCoreResult r = sys.run(kRun);
    for (unsigned i = 0; i < 4; ++i) {
        SCOPED_TRACE(i);
        if (i == 2)
            EXPECT_FALSE(sys.monitor(i)->reports().empty());
        else
            EXPECT_TRUE(sys.monitor(i)->reports().empty());
    }
    EXPECT_EQ(r.fade.crossShardEvents, 0u);
}

TEST(MultiCore, AggregateEqualsSumOfShards)
{
    MultiCoreConfig cfg = memLeakConfig(4);
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    MultiCoreResult r = sys.run(kRun);

    std::uint64_t insts = 0, events = 0, instEvents = 0, filtered = 0;
    std::uint64_t occTotal = 0, maxCycles = 0;
    for (const ShardResult &s : r.shards) {
        insts += s.run.appInstructions;
        events += s.run.monitoredEvents;
        instEvents += s.fade.instEvents;
        filtered += s.fade.filtered;
        occTotal += s.eqOccupancy.total();
        maxCycles = std::max(maxCycles, s.run.cycles);
    }
    EXPECT_EQ(r.totalInstructions, insts);
    EXPECT_EQ(r.totalEvents, events);
    EXPECT_EQ(r.fade.instEvents, instEvents);
    EXPECT_EQ(r.fade.filtered, filtered);
    EXPECT_EQ(r.eqOccupancy.total(), occTotal);
    EXPECT_EQ(r.cycles, maxCycles);
    EXPECT_DOUBLE_EQ(r.aggregateIpc,
                     double(insts) / double(r.cycles));
    // Event-weighted filtering ratio equals merged-counter ratio.
    EXPECT_NEAR(r.filteringRatio,
                instEvents ? double(filtered + r.fade.partialPass) /
                                 double(instEvents)
                           : 0.0,
                1e-12);
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    // Guards sim/random.hh usage in the sharded path: two independent
    // systems built from the same seeded config must agree bit-for-bit.
    auto once = [] {
        MultiCoreConfig cfg;
        cfg.numShards = 4;
        cfg.monitor = "MemLeak";
        cfg.workloads = multiprogramWorkloads("gcc");
        MultiCoreSystem sys(cfg);
        sys.warmup(kWarm);
        MultiCoreResult r = sys.run(kRun);
        std::vector<std::uint64_t> perShard;
        std::size_t reports = 0;
        for (const ShardResult &s : r.shards) {
            perShard.push_back(s.run.cycles);
            perShard.push_back(s.run.monitoredEvents);
            perShard.push_back(s.fade.filtered);
        }
        for (unsigned i = 0; i < 4; ++i)
            reports += sys.monitor(i)->reports().size();
        return std::make_tuple(r.cycles, r.totalInstructions,
                               r.totalEvents, r.fade.filtered,
                               perShard, reports);
    };
    EXPECT_EQ(once(), once());
}

TEST(MultiCore, ThroughputScalesWithShards)
{
    // Homogeneous copies of one workload, so the makespan is not
    // dominated by a slow benchmark and scaling is apples-to-apples.
    auto cfgFor = [](unsigned n) {
        MultiCoreConfig cfg;
        cfg.numShards = n;
        cfg.monitor = "MemLeak";
        cfg.workloads = {specProfile("hmmer")};
        return cfg;
    };
    MultiCoreSystem s1(cfgFor(1));
    s1.warmup(kWarm);
    MultiCoreResult r1 = s1.run(kRun);

    MultiCoreSystem s4(cfgFor(4));
    s4.warmup(kWarm);
    MultiCoreResult r4 = s4.run(kRun);

    // Shards only contend in the shared L2, so four cores must deliver
    // well over 2x the single-shard system throughput.
    EXPECT_GT(r4.aggregateIpc, 2.0 * r1.aggregateIpc);
    EXPECT_GE(r4.totalInstructions, 4 * kRun);
}

TEST(MultiCore, UnmonitoredShardsProduceNoEvents)
{
    MultiCoreConfig cfg;
    cfg.numShards = 2;
    cfg.monitor = "";
    cfg.workloads = multiprogramWorkloads("bzip");
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    MultiCoreResult r = sys.run(kRun);
    EXPECT_EQ(r.totalEvents, 0u);
    EXPECT_GT(r.aggregateIpc, 1.0);
}

} // namespace fade
