/**
 * @file
 * Engine-equality tests.
 *
 * Run-to-stall batched engine (Engine::Batched, system/pipeline.hh):
 * must produce bit-identical results to the per-cycle reference engine
 * for every configuration — the acceptance contract of the engine.
 * Fingerprints come from resultFingerprint(), which flattens every
 * simulated value a run produces (aggregate + per-shard results, all
 * FADE counters, occupancy histograms, bug reports, shared-L2
 * counters).
 *
 * Run-grain engine (Engine::RunGrain, system/rungrain.hh): timing is
 * modeled in closed form, so its cycle counts diverge from the
 * reference by design; the contract is instead (a) bit-identical
 * *functional* results (MonitoringSystem::functionalFingerprint) on
 * matched instruction windows for every monitor whose handlers do not
 * feed filter-visible state back while younger events are already in
 * the filter pipe, (b) precisely-pinned divergence shapes for the
 * configurations that do feed state back (the per-cycle pipeline
 * gathers metadata / prepares handlers ahead of older handlers'
 * effects; run-grain is strictly event-serial), and (c) full
 * determinism and scheduler-policy invariance of the run-grain results
 * themselves — docs/ARCHITECTURE.md, "Run-grain engine".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/factory.hh"
#include "monitor/process.hh"
#include "system/multicore.hh"
#include "system/pipeline.hh"
#include "system/rungrain.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 4000;
constexpr std::uint64_t kRun = 10000;

std::vector<std::uint64_t>
runOnce(MultiCoreConfig cfg, std::uint64_t warm = kWarm,
        std::uint64_t run = kRun)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(warm);
    MultiCoreResult r = sys.run(run);
    return resultFingerprint(sys, r);
}

/** Fingerprints of the same configuration under both engines. */
void
expectEngineInvariant(const MultiCoreConfig &cfg, std::uint64_t warm = kWarm,
                      std::uint64_t run = kRun)
{
    MultiCoreConfig per = cfg;
    per.engine = Engine::PerCycle;
    MultiCoreConfig bat = cfg;
    bat.engine = Engine::Batched;
    EXPECT_EQ(runOnce(per, warm, run), runOnce(bat, warm, run));
}

MultiCoreConfig
baseConfig(const std::string &anchor, unsigned shards = 1)
{
    MultiCoreConfig cfg;
    cfg.numShards = shards;
    cfg.monitor = "AddrCheck";
    cfg.workloads = multiprogramWorkloads(anchor);
    return cfg;
}

} // namespace

TEST(PipelineEngine, BitIdenticalAcrossSpecProfiles)
{
    // Every SPEC profile, single shard: the engines agree bit for bit.
    for (const std::string &b : specBenchmarks()) {
        SCOPED_TRACE(b);
        expectEngineInvariant(baseConfig(b));
    }
}

TEST(PipelineEngine, BitIdenticalAcrossMonitors)
{
    // Every lifeguard the factory knows, on two shards so cross-shard
    // L2 interference is in play as well.
    for (const std::string &m : monitorNames()) {
        SCOPED_TRACE(m);
        MultiCoreConfig cfg = baseConfig("astar", 2);
        cfg.monitor = m;
        expectEngineInvariant(cfg);
    }
}

TEST(PipelineEngine, BitIdenticalAcrossShardCountsAndPolicies)
{
    // N in {1, 2, 4, 8} under both scheduler policies. hostThreads
    // forces a real worker pool even on a single-CPU host.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (auto pol : {SchedulerPolicy::Lockstep,
                         SchedulerPolicy::ParallelBatched}) {
            SCOPED_TRACE(testing::Message()
                         << "N=" << n << " policy=" << unsigned(pol));
            MultiCoreConfig cfg = baseConfig("hmmer", n);
            cfg.scheduler.policy = pol;
            cfg.scheduler.hostThreads = 4;
            expectEngineInvariant(cfg, 3000, 6000);
        }
    }
}

TEST(PipelineEngine, BitIdenticalAcrossSliceSizes)
{
    // Slice boundaries land mid-burst at 256; the batched engine must
    // stop at exactly the same cycle as the per-cycle loop every time.
    for (std::uint64_t slice : {256ull, 4096ull}) {
        SCOPED_TRACE(slice);
        MultiCoreConfig cfg = baseConfig("mcf", 2);
        cfg.scheduler.sliceTicks = slice;
        expectEngineInvariant(cfg);
    }
}

TEST(PipelineEngine, BitIdenticalAcrossSystemVariants)
{
    // The engine must be exact for every system shape, not only the
    // default SMT + non-blocking FADE configuration.
    struct Variant
    {
        const char *name;
        void (*apply)(MultiCoreConfig &);
    };
    const Variant variants[] = {
        {"twoCore",
         [](MultiCoreConfig &c) { c.shard.twoCore = true; }},
        {"unaccelerated",
         [](MultiCoreConfig &c) { c.shard.accelerated = false; }},
        {"perfectConsumer",
         [](MultiCoreConfig &c) {
             c.shard.perfectConsumer = true;
             c.shard.eqCapacity = 0;
         }},
        {"blockingFade",
         [](MultiCoreConfig &c) { c.shard.fade.nonBlocking = false; }},
        {"noDrainOnHighLevel",
         [](MultiCoreConfig &c) {
             c.shard.fade.drainOnHighLevel = false;
         }},
        {"inOrderCore",
         [](MultiCoreConfig &c) { c.shard.core = inOrderParams(); }},
        {"leanCoreTinyQueues",
         [](MultiCoreConfig &c) {
             c.shard.core = leanOooParams();
             c.shard.eqCapacity = 4;
             c.shard.ueqCapacity = 2;
         }},
        {"unmonitored", [](MultiCoreConfig &c) { c.monitor = ""; }},
    };
    for (const Variant &v : variants) {
        SCOPED_TRACE(v.name);
        MultiCoreConfig cfg = baseConfig("gcc");
        v.apply(cfg);
        expectEngineInvariant(cfg);
    }
}

TEST(PipelineEngine, LegacySingleCoreRunMatchesPerCycle)
{
    // The engine also backs MonitoringSystem::run()/warmup() directly
    // (no scheduler): same RunResult, same monitor verdicts.
    for (const char *prof : {"astar", "mcf"}) {
        SCOPED_TRACE(prof);
        RunResult rr[2];
        std::uint64_t reports[2];
        std::uint64_t eqPushes[2];
        for (int i = 0; i < 2; ++i) {
            SystemConfig cfg;
            cfg.engine = i ? Engine::Batched : Engine::PerCycle;
            auto mon = makeMonitor("MemCheck");
            MonitoringSystem sys(cfg, specProfile(prof), mon.get());
            sys.warmup(kWarm);
            rr[i] = sys.run(kRun);
            reports[i] = mon->reports().size();
            eqPushes[i] = sys.eventQueue().pushes();
        }
        EXPECT_EQ(rr[0].cycles, rr[1].cycles);
        EXPECT_EQ(rr[0].appInstructions, rr[1].appInstructions);
        EXPECT_EQ(rr[0].monitoredEvents, rr[1].monitoredEvents);
        EXPECT_EQ(rr[0].appStallCycles, rr[1].appStallCycles);
        EXPECT_EQ(rr[0].monIdleCycles, rr[1].monIdleCycles);
        EXPECT_EQ(rr[0].handlerInstructions, rr[1].handlerInstructions);
        EXPECT_EQ(rr[0].handlersRun, rr[1].handlersRun);
        EXPECT_EQ(reports[0], reports[1]);
        EXPECT_EQ(eqPushes[0], eqPushes[1]);
    }
}

TEST(PipelineEngine, DriverAccountingIsSane)
{
    SystemConfig cfg;
    cfg.engine = Engine::Batched;
    auto mon = makeMonitor("AddrCheck");
    MonitoringSystem sys(cfg, specProfile("astar"), mon.get());
    ASSERT_NE(sys.pipelineDriver(), nullptr);
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    const PipelineDriverStats &ps = sys.pipelineDriver()->stats();
    // Every simulated cycle is either fused-executed or skipped; drain
    // cycles run outside the driver, so driver cycles are a lower
    // bound of the elapsed clock and at least cover the measured run.
    EXPECT_GE(ps.fusedCycles + ps.skippedCycles, r.cycles);
    EXPECT_LE(ps.fusedCycles + ps.skippedCycles, sys.now());
    EXPECT_GE(ps.skippedCycles, ps.jumps); // every jump skips >= 1
    if (ps.jumps > 0) {
        EXPECT_GT(ps.skippedCycles, 0u);
    }
}

TEST(PipelineEngine, PerCycleSystemHasNoDriver)
{
    SystemConfig cfg;
    MonitoringSystem sys(cfg, specProfile("astar"), nullptr);
    EXPECT_EQ(sys.pipelineDriver(), nullptr);
    EXPECT_EQ(sys.runGrainDriver(), nullptr);
}

namespace
{

/**
 * One single-shard run under @p eng, quiesced: run to @p target
 * retirements, drain, and return the cumulative functional
 * fingerprint. @p retiredOut receives the post-drain retirement count
 * (per-cycle overshoots the target by up to commit-width-1 and retires
 * an unmonitored tail during drain; run-grain stops exactly on
 * target), which is how the caller matches windows across engines.
 */
std::vector<std::uint64_t>
functionalRun(Engine eng, const std::string &monitor,
              const BenchProfile &prof,
              std::uint64_t target, void (*tweak)(SystemConfig &),
              std::uint64_t *retiredOut = nullptr)
{
    SystemConfig cfg;
    cfg.engine = eng;
    if (tweak)
        tweak(cfg);
    std::unique_ptr<Monitor> mon;
    if (!monitor.empty())
        mon = makeMonitor(monitor);
    MonitoringSystem sys(cfg, prof, mon.get());
    sys.run(target);
    sys.drain();
    if (retiredOut)
        *retiredOut = sys.retired();
    return sys.functionalFingerprint();
}

/** Per-cycle reference vs run-grain on a matched instruction window. */
void
expectRunGrainFunctional(const std::string &monitor,
                         const BenchProfile &prof,
                         void (*tweak)(SystemConfig &) = nullptr)
{
    std::uint64_t matched = 0;
    std::vector<std::uint64_t> ref =
        functionalRun(Engine::PerCycle, monitor, prof, kRun, tweak,
                      &matched);
    EXPECT_EQ(functionalRun(Engine::RunGrain, monitor, prof, matched,
                            tweak),
              ref);
}

} // namespace

TEST(RunGrainEngine, FunctionalMatchAcrossSpecProfiles)
{
    // Every SPEC profile: run-grain reproduces every functional value
    // the per-cycle reference computes, bit for bit.
    for (const std::string &b : specBenchmarks()) {
        SCOPED_TRACE(b);
        expectRunGrainFunctional("AddrCheck", specProfile(b));
    }
}

TEST(RunGrainEngine, FunctionalMatchFeedbackFreeMonitors)
{
    // Monitors whose software handlers never change what the filters
    // see (reporting-only handlers): exact functional equality under
    // the default non-blocking FADE.
    for (const char *m : {"AddrCheck", "MemCheck"}) {
        for (const char *b : {"astar", "gcc"}) {
            SCOPED_TRACE(testing::Message() << m << "/" << b);
            expectRunGrainFunctional(m, specProfile(b));
        }
    }
}

TEST(RunGrainEngine, FunctionalMatchFeedbackMonitorsBlockingFade)
{
    // TaintCheck handlers write metadata the filters read. Under a
    // non-blocking FADE the per-cycle reference filters events against
    // pre-handler state while the handler is still in flight; run-grain
    // always applies handler effects eagerly, so that configuration
    // legitimately diverges (pinned by run-grain's own goldens
    // instead). A *blocking* FADE closes the window to at most one
    // event — the one whose metadata gather was already latched in the
    // MDR stage the cycle the filter blocked — and on these profiles no
    // taint-dependent event ever occupies that slot, so equality is
    // exact, pinning the divergence to the documented feedback
    // mechanism. (MemLeak *does* hit the one-event window — a pointer
    // copy right behind the unfiltered event that re-homes the same
    // register — so even blocking FADE diverges for it; see
    // DocumentedDivergencesAreReal below.)
    for (const char *b : {"astar", "hmmer"}) {
        SCOPED_TRACE(b);
        expectRunGrainFunctional("TaintCheck", specProfile(b),
                                 [](SystemConfig &c) {
                                     c.fade.nonBlocking = false;
                                 });
    }
}

TEST(RunGrainEngine, FunctionalMatchAcrossSystemVariants)
{
    struct Variant
    {
        const char *name;
        const char *monitor;
        void (*apply)(SystemConfig &);
    };
    const Variant variants[] = {
        {"twoCore", "AddrCheck",
         [](SystemConfig &c) { c.twoCore = true; }},
        // Unaccelerated + feedback monitor: the monitor process runs
        // handlers serially off one queue in both engines, so eager
        // execution is already the reference semantics. (Unaccelerated
        // AddrCheck is covered by UnacceleratedDivergesOnlyInHandler-
        // Length below: its handler *sequence length* depends on
        // prepare-time metadata, which per-cycle's pipelined prepare
        // reads one handler early.)
        {"unacceleratedTaint", "TaintCheck",
         [](SystemConfig &c) { c.accelerated = false; }},
        {"perfectConsumer", "AddrCheck",
         [](SystemConfig &c) {
             c.perfectConsumer = true;
             c.eqCapacity = 0;
         }},
        {"blockingFade", "AddrCheck",
         [](SystemConfig &c) { c.fade.nonBlocking = false; }},
        {"inOrderCore", "AddrCheck",
         [](SystemConfig &c) { c.core = inOrderParams(); }},
        {"leanCoreTinyQueues", "AddrCheck",
         [](SystemConfig &c) {
             c.core = leanOooParams();
             c.eqCapacity = 4;
             c.ueqCapacity = 2;
         }},
        {"unmonitored", "", nullptr},
    };
    for (const Variant &v : variants) {
        SCOPED_TRACE(v.name);
        expectRunGrainFunctional(v.monitor, specProfile("gcc"), v.apply);
    }
}

TEST(RunGrainEngine, UnacceleratedDivergesOnlyInHandlerLength)
{
    // Unaccelerated AddrCheck: every event runs a software handler, and
    // AddrCheck's handler sequence is *longer* when the accessed word
    // is unallocated at prepare time (the report path). The per-cycle
    // monitor process prepares handler n+1 as soon as handler n is
    // fully fetched — before n's commits apply handleEvent — so
    // back-to-back handlers over the same word see pre-update state and
    // build the long sequence; run-grain prepares strictly after the
    // previous handler's effects. Handler *count*, verdicts, and
    // reports are identical; only committed handler instructions
    // (fingerprint slot 2) differ.
    std::uint64_t matched = 0;
    auto tweak = [](SystemConfig &c) { c.accelerated = false; };
    std::vector<std::uint64_t> ref = functionalRun(
        Engine::PerCycle, "AddrCheck", specProfile("gcc"), kRun, tweak,
        &matched);
    std::vector<std::uint64_t> grain = functionalRun(
        Engine::RunGrain, "AddrCheck", specProfile("gcc"), matched,
        tweak);
    ASSERT_EQ(grain.size(), ref.size());
    EXPECT_NE(grain[2], ref[2]); // handlerInstructions: prepare skew
    grain[2] = ref[2] = 0;
    EXPECT_EQ(grain, ref); // everything else is bit-identical
}

TEST(RunGrainEngine, DocumentedDivergencesAreReal)
{
    // The configurations docs/ARCHITECTURE.md lists as functionally
    // divergent really do diverge — if a future change makes one of
    // them converge, this test flags it so the docs (and possibly the
    // equality matrix above) can be tightened:
    //  - TaintCheck, default non-blocking FADE: handlers feed filter
    //    metadata asynchronously while filtering continues.
    //  - MemLeak, blocking FADE: the event latched in MDR when the
    //    filter blocks gathers pre-handler register metadata.
    //  - AddrCheck, drainOnHighLevel = false: malloc/free handlers
    //    race the filter pipe instead of draining it.
    struct Case
    {
        const char *name;
        const char *monitor;
        const char *profile;
        std::uint64_t target;
        void (*apply)(SystemConfig &);
    };
    const Case cases[] = {
        // Taint sources are rare (~5e-5/inst), so the async window
        // needs a longer run before a tainted pointer-copy lands in
        // it; 4 * kRun diverges reliably on astar.
        {"taintNonBlocking", "TaintCheck", "astar", 4 * kRun, nullptr},
        {"memLeakBlocking", "MemLeak", "astar", kRun,
         [](SystemConfig &c) { c.fade.nonBlocking = false; }},
        {"noDrainOnHighLevel", "AddrCheck", "gcc", kRun,
         [](SystemConfig &c) { c.fade.drainOnHighLevel = false; }},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        std::uint64_t matched = 0;
        std::vector<std::uint64_t> ref = functionalRun(
            Engine::PerCycle, c.monitor, specProfile(c.profile),
            c.target, c.apply, &matched);
        EXPECT_NE(functionalRun(Engine::RunGrain, c.monitor,
                                specProfile(c.profile), matched,
                                c.apply),
                  ref);
    }
}

TEST(RunGrainEngine, ResultsAreDeterministic)
{
    // The full run-grain fingerprint — modeled timing included — is
    // reproducible run over run, for feedback monitors too. This is
    // what lets run-grain results be pinned by their own goldens.
    for (const char *m : {"AddrCheck", "TaintCheck"}) {
        SCOPED_TRACE(m);
        MultiCoreConfig cfg = baseConfig("astar", 2);
        cfg.monitor = m;
        cfg.engine = Engine::RunGrain;
        EXPECT_EQ(runOnce(cfg), runOnce(cfg));
    }
}

TEST(RunGrainEngine, PolicyInvariantAcrossShardCounts)
{
    // Scheduler policy must not leak into run-grain results any more
    // than it does into per-cycle results: Lockstep and ParallelBatched
    // agree bit for bit on the full fingerprint.
    for (unsigned n : {1u, 2u, 4u}) {
        SCOPED_TRACE(n);
        MultiCoreConfig cfg = baseConfig("hmmer", n);
        cfg.engine = Engine::RunGrain;
        cfg.scheduler.hostThreads = 4;
        cfg.scheduler.policy = SchedulerPolicy::Lockstep;
        std::vector<std::uint64_t> a = runOnce(cfg, 3000, 6000);
        cfg.scheduler.policy = SchedulerPolicy::ParallelBatched;
        EXPECT_EQ(runOnce(cfg, 3000, 6000), a);
    }
}

TEST(RunGrainEngine, FunctionalInvariantAcrossTopologies)
{
    // The clustered L2 changes *when* accesses happen, never *what*
    // the monitor computes: under run-grain (exact per-shard windows,
    // no timing-driven retirement boundaries) every event count,
    // filter verdict, handler count and bug report is identical across
    // flat and clustered topologies. Three fingerprint families are
    // deliberately excluded because they are per-unit / latency-coupled
    // rather than verdict-level: suuCycles (the SUU's stack walk pays
    // MD-cache miss latencies, which the cluster shape changes) and the
    // unfiltered-distance/burst histograms (distances are counted per
    // filter unit, so multi-FADE steering splits them differently).
    MultiCoreConfig cfg = baseConfig("astar", 4);
    cfg.engine = Engine::RunGrain;
    auto invariantSubset = [](MultiCoreSystem &sys) {
        std::vector<std::uint64_t> fp;
        for (unsigned i = 0; i < sys.numShards(); ++i)
            sys.shard(i).drain();
        for (unsigned i = 0; i < sys.numShards(); ++i) {
            MonitoringSystem &s = sys.shard(i);
            fp.push_back(s.retired());
            fp.push_back(s.produced());
            if (const MonitorProcess *mp = s.monitorProcess()) {
                fp.push_back(mp->stats().instructions);
                fp.push_back(mp->stats().handlers);
            }
            const FadeStats f = s.fadeStats();
            for (std::uint64_t v :
                 {f.instEvents, f.filtered, f.filteredCC, f.filteredRU,
                  f.partialPass, f.partialFail, f.unfiltered,
                  f.stackEvents, f.highLevelEvents, f.shots,
                  f.comparisons, f.crossShardEvents})
                fp.push_back(v);
            for (std::uint64_t c : f.filteredById)
                fp.push_back(c);
            for (std::uint64_t c : f.softwareById)
                fp.push_back(c);
            if (Monitor *m = sys.monitor(i)) {
                m->finish();
                fp.push_back(m->reports().size());
            }
        }
        return fp;
    };
    std::vector<std::uint64_t> ref;
    for (unsigned clusters : {1u, 2u}) {
        for (unsigned fades : {1u, 2u}) {
            SCOPED_TRACE(testing::Message() << clusters << "x" << fades);
            MultiCoreConfig c = cfg;
            c.topology.clusters = clusters;
            c.topology.fadesPerShard = fades;
            MultiCoreSystem sys(c);
            sys.warmup(kWarm);
            sys.run(kRun);
            std::vector<std::uint64_t> fp = invariantSubset(sys);
            if (ref.empty())
                ref = fp;
            else
                EXPECT_EQ(fp, ref);
        }
    }
}

TEST(RunGrainEngine, DriverAccountingIsSane)
{
    SystemConfig cfg;
    cfg.engine = Engine::RunGrain;
    auto mon = makeMonitor("AddrCheck");
    MonitoringSystem sys(cfg, specProfile("astar"), mon.get());
    ASSERT_NE(sys.runGrainDriver(), nullptr);
    EXPECT_EQ(sys.pipelineDriver(), nullptr);
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    const RunGrainDriverStats &gs = sys.runGrainDriver()->stats();
    // Driver counters are cumulative (warmup included), so they bound
    // the measured slice from above.
    EXPECT_GE(gs.instructions, r.appInstructions);
    EXPECT_GE(gs.events, r.monitoredEvents);
    // Every modeled cycle is closed-formed, fast-forwarded, or stepped
    // through the SUU; the decomposition never exceeds the clock.
    EXPECT_LE(gs.cyclesClosedFormed + gs.cyclesStepped, sys.now());
    EXPECT_GT(gs.cyclesClosedFormed + gs.cyclesFastForwarded +
                  gs.cyclesStepped,
              0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.appInstructions, 0u);
}

} // namespace fade
