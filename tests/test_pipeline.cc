/**
 * @file
 * Run-to-stall pipeline engine tests: the batched engine
 * (Engine::Batched, system/pipeline.hh) must produce bit-identical
 * results to the per-cycle reference engine for every configuration —
 * the acceptance contract of the engine. Fingerprints come from
 * resultFingerprint(), which flattens every simulated value a run
 * produces (aggregate + per-shard results, all FADE counters,
 * occupancy histograms, bug reports, shared-L2 counters).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "monitor/factory.hh"
#include "system/multicore.hh"
#include "system/pipeline.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 4000;
constexpr std::uint64_t kRun = 10000;

std::vector<std::uint64_t>
runOnce(MultiCoreConfig cfg, std::uint64_t warm = kWarm,
        std::uint64_t run = kRun)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(warm);
    MultiCoreResult r = sys.run(run);
    return resultFingerprint(sys, r);
}

/** Fingerprints of the same configuration under both engines. */
void
expectEngineInvariant(const MultiCoreConfig &cfg, std::uint64_t warm = kWarm,
                      std::uint64_t run = kRun)
{
    MultiCoreConfig per = cfg;
    per.engine = Engine::PerCycle;
    MultiCoreConfig bat = cfg;
    bat.engine = Engine::Batched;
    EXPECT_EQ(runOnce(per, warm, run), runOnce(bat, warm, run));
}

MultiCoreConfig
baseConfig(const std::string &anchor, unsigned shards = 1)
{
    MultiCoreConfig cfg;
    cfg.numShards = shards;
    cfg.monitor = "AddrCheck";
    cfg.workloads = multiprogramWorkloads(anchor);
    return cfg;
}

} // namespace

TEST(PipelineEngine, BitIdenticalAcrossSpecProfiles)
{
    // Every SPEC profile, single shard: the engines agree bit for bit.
    for (const std::string &b : specBenchmarks()) {
        SCOPED_TRACE(b);
        expectEngineInvariant(baseConfig(b));
    }
}

TEST(PipelineEngine, BitIdenticalAcrossMonitors)
{
    // Every lifeguard the factory knows, on two shards so cross-shard
    // L2 interference is in play as well.
    for (const std::string &m : monitorNames()) {
        SCOPED_TRACE(m);
        MultiCoreConfig cfg = baseConfig("astar", 2);
        cfg.monitor = m;
        expectEngineInvariant(cfg);
    }
}

TEST(PipelineEngine, BitIdenticalAcrossShardCountsAndPolicies)
{
    // N in {1, 2, 4, 8} under both scheduler policies. hostThreads
    // forces a real worker pool even on a single-CPU host.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (auto pol : {SchedulerPolicy::Lockstep,
                         SchedulerPolicy::ParallelBatched}) {
            SCOPED_TRACE(testing::Message()
                         << "N=" << n << " policy=" << unsigned(pol));
            MultiCoreConfig cfg = baseConfig("hmmer", n);
            cfg.scheduler.policy = pol;
            cfg.scheduler.hostThreads = 4;
            expectEngineInvariant(cfg, 3000, 6000);
        }
    }
}

TEST(PipelineEngine, BitIdenticalAcrossSliceSizes)
{
    // Slice boundaries land mid-burst at 256; the batched engine must
    // stop at exactly the same cycle as the per-cycle loop every time.
    for (std::uint64_t slice : {256ull, 4096ull}) {
        SCOPED_TRACE(slice);
        MultiCoreConfig cfg = baseConfig("mcf", 2);
        cfg.scheduler.sliceTicks = slice;
        expectEngineInvariant(cfg);
    }
}

TEST(PipelineEngine, BitIdenticalAcrossSystemVariants)
{
    // The engine must be exact for every system shape, not only the
    // default SMT + non-blocking FADE configuration.
    struct Variant
    {
        const char *name;
        void (*apply)(MultiCoreConfig &);
    };
    const Variant variants[] = {
        {"twoCore",
         [](MultiCoreConfig &c) { c.shard.twoCore = true; }},
        {"unaccelerated",
         [](MultiCoreConfig &c) { c.shard.accelerated = false; }},
        {"perfectConsumer",
         [](MultiCoreConfig &c) {
             c.shard.perfectConsumer = true;
             c.shard.eqCapacity = 0;
         }},
        {"blockingFade",
         [](MultiCoreConfig &c) { c.shard.fade.nonBlocking = false; }},
        {"noDrainOnHighLevel",
         [](MultiCoreConfig &c) {
             c.shard.fade.drainOnHighLevel = false;
         }},
        {"inOrderCore",
         [](MultiCoreConfig &c) { c.shard.core = inOrderParams(); }},
        {"leanCoreTinyQueues",
         [](MultiCoreConfig &c) {
             c.shard.core = leanOooParams();
             c.shard.eqCapacity = 4;
             c.shard.ueqCapacity = 2;
         }},
        {"unmonitored", [](MultiCoreConfig &c) { c.monitor = ""; }},
    };
    for (const Variant &v : variants) {
        SCOPED_TRACE(v.name);
        MultiCoreConfig cfg = baseConfig("gcc");
        v.apply(cfg);
        expectEngineInvariant(cfg);
    }
}

TEST(PipelineEngine, LegacySingleCoreRunMatchesPerCycle)
{
    // The engine also backs MonitoringSystem::run()/warmup() directly
    // (no scheduler): same RunResult, same monitor verdicts.
    for (const char *prof : {"astar", "mcf"}) {
        SCOPED_TRACE(prof);
        RunResult rr[2];
        std::uint64_t reports[2];
        std::uint64_t eqPushes[2];
        for (int i = 0; i < 2; ++i) {
            SystemConfig cfg;
            cfg.engine = i ? Engine::Batched : Engine::PerCycle;
            auto mon = makeMonitor("MemCheck");
            MonitoringSystem sys(cfg, specProfile(prof), mon.get());
            sys.warmup(kWarm);
            rr[i] = sys.run(kRun);
            reports[i] = mon->reports().size();
            eqPushes[i] = sys.eventQueue().pushes();
        }
        EXPECT_EQ(rr[0].cycles, rr[1].cycles);
        EXPECT_EQ(rr[0].appInstructions, rr[1].appInstructions);
        EXPECT_EQ(rr[0].monitoredEvents, rr[1].monitoredEvents);
        EXPECT_EQ(rr[0].appStallCycles, rr[1].appStallCycles);
        EXPECT_EQ(rr[0].monIdleCycles, rr[1].monIdleCycles);
        EXPECT_EQ(rr[0].handlerInstructions, rr[1].handlerInstructions);
        EXPECT_EQ(rr[0].handlersRun, rr[1].handlersRun);
        EXPECT_EQ(reports[0], reports[1]);
        EXPECT_EQ(eqPushes[0], eqPushes[1]);
    }
}

TEST(PipelineEngine, DriverAccountingIsSane)
{
    SystemConfig cfg;
    cfg.engine = Engine::Batched;
    auto mon = makeMonitor("AddrCheck");
    MonitoringSystem sys(cfg, specProfile("astar"), mon.get());
    ASSERT_NE(sys.pipelineDriver(), nullptr);
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    const PipelineDriverStats &ps = sys.pipelineDriver()->stats();
    // Every simulated cycle is either fused-executed or skipped; drain
    // cycles run outside the driver, so driver cycles are a lower
    // bound of the elapsed clock and at least cover the measured run.
    EXPECT_GE(ps.fusedCycles + ps.skippedCycles, r.cycles);
    EXPECT_LE(ps.fusedCycles + ps.skippedCycles, sys.now());
    EXPECT_GE(ps.skippedCycles, ps.jumps); // every jump skips >= 1
    if (ps.jumps > 0)
        EXPECT_GT(ps.skippedCycles, 0u);
}

TEST(PipelineEngine, PerCycleSystemHasNoDriver)
{
    SystemConfig cfg;
    MonitoringSystem sys(cfg, specProfile("astar"), nullptr);
    EXPECT_EQ(sys.pipelineDriver(), nullptr);
}

} // namespace fade
