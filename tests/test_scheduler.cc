/**
 * @file
 * Shard scheduler tests: bit-equality of ParallelBatched vs Lockstep
 * across shard counts and slice sizes, determinism of repeated
 * parallel runs, N=1 equivalence with the legacy single-core system
 * under the slice protocol, and host-side accounting sanity.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "monitor/factory.hh"
#include "system/multicore.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 8000;
constexpr std::uint64_t kRun = 15000;

MultiCoreConfig
baseConfig(unsigned shards)
{
    MultiCoreConfig cfg;
    cfg.numShards = shards;
    cfg.monitor = "MemLeak";
    cfg.workloads = multiprogramWorkloads("hmmer");
    return cfg;
}

std::vector<std::uint64_t>
runOnce(MultiCoreConfig cfg)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    MultiCoreResult r = sys.run(kRun);
    return resultFingerprint(sys, r);
}

} // namespace

TEST(Scheduler, ParallelBitIdenticalToLockstep)
{
    // The acceptance property of the parallel scheduler: for N in
    // {1, 2, 4, 8}, every simulated number matches the sequential
    // policy exactly. hostThreads forces a pool even on a single-CPU
    // host for the N >= 2 legs (a single shard never starts workers).
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(n);
        MultiCoreConfig lock = baseConfig(n);
        lock.scheduler.policy = SchedulerPolicy::Lockstep;
        MultiCoreConfig par = baseConfig(n);
        par.scheduler.policy = SchedulerPolicy::ParallelBatched;
        par.scheduler.hostThreads = 4;
        EXPECT_EQ(runOnce(lock), runOnce(par));
    }
}

TEST(Scheduler, ParallelBitIdenticalAcrossSliceSizes)
{
    // Slice length changes the modelled interference granularity (so
    // different sizes may legitimately differ from each other), but at
    // every size the two policies must still agree bit for bit.
    for (std::uint64_t slice : {512ull, 2048ull, 8192ull}) {
        SCOPED_TRACE(slice);
        MultiCoreConfig lock = baseConfig(4);
        lock.scheduler.policy = SchedulerPolicy::Lockstep;
        lock.scheduler.sliceTicks = slice;
        MultiCoreConfig par = baseConfig(4);
        par.scheduler.policy = SchedulerPolicy::ParallelBatched;
        par.scheduler.sliceTicks = slice;
        par.scheduler.hostThreads = 3; // workers != shards on purpose
        EXPECT_EQ(runOnce(lock), runOnce(par));
    }
}

TEST(Scheduler, ParallelDeterministicAcrossRepeatedRuns)
{
    // Two independent parallel systems from the same config must agree
    // bit for bit no matter how the host schedules the workers.
    MultiCoreConfig cfg = baseConfig(4);
    cfg.scheduler.policy = SchedulerPolicy::ParallelBatched;
    cfg.scheduler.hostThreads = 4;
    EXPECT_EQ(runOnce(cfg), runOnce(cfg));
}

TEST(Scheduler, SingleShardMatchesLegacyForAnySliceAndPolicy)
{
    // With one shard the slice protocol is exact, so the N=1 sharded
    // system reproduces the legacy single-core system for every
    // policy and slice length, not only the default.
    SystemConfig scfg;
    auto mon = makeMonitor("MemLeak");
    MonitoringSystem legacy(scfg, specProfile("hmmer"), mon.get());
    legacy.warmup(kWarm);
    RunResult lr = legacy.run(kRun);

    for (auto pol : {SchedulerPolicy::Lockstep,
                     SchedulerPolicy::ParallelBatched}) {
        for (std::uint64_t slice : {600ull, 4096ull}) {
            SCOPED_TRACE(slice);
            MultiCoreConfig cfg = baseConfig(1);
            cfg.scheduler.policy = pol;
            cfg.scheduler.sliceTicks = slice;
            MultiCoreSystem mc(cfg);
            mc.warmup(kWarm);
            MultiCoreResult mr = mc.run(kRun);
            ASSERT_EQ(mr.shards.size(), 1u);
            EXPECT_EQ(mr.shards[0].run.cycles, lr.cycles);
            EXPECT_EQ(mr.shards[0].run.appInstructions,
                      lr.appInstructions);
            EXPECT_EQ(mr.shards[0].run.monitoredEvents,
                      lr.monitoredEvents);
            EXPECT_EQ(mr.shards[0].run.appStallCycles,
                      lr.appStallCycles);
            EXPECT_EQ(mr.shards[0].run.handlerInstructions,
                      lr.handlerInstructions);
        }
    }
}

TEST(Scheduler, AccountingIsSane)
{
    MultiCoreConfig cfg = baseConfig(4);
    cfg.scheduler.policy = SchedulerPolicy::ParallelBatched;
    cfg.scheduler.hostThreads = 2;
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    sys.run(kRun);
    const SchedulerStats &st = sys.scheduler().stats();
    EXPECT_EQ(sys.scheduler().workerCount(), 2u);
    EXPECT_GT(st.epochs, 0u);
    // Every epoch runs between 1 and numShards slices.
    EXPECT_GE(st.slices, st.epochs);
    EXPECT_LE(st.slices, st.epochs * sys.numShards());
    // All four shards retired kWarm + kRun instructions each; ticks
    // cover at least that many cycles in total.
    EXPECT_GT(st.ticks, 4 * (kWarm + kRun) / 2);
    EXPECT_EQ(st.epochWall.count(), st.epochs);
    EXPECT_GE(st.wallSeconds, 0.0);

    sys.scheduler().resetStats();
    EXPECT_EQ(sys.scheduler().stats().epochs, 0u);
}

} // namespace fade
