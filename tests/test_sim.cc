/** @file Unit tests for the simulation kernel (rng, queue, types). */

#include <gtest/gtest.h>

#include <set>

#include "sim/queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace fade
{

TEST(Types, BlockAndPageAlign)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = r.range(17);
        ASSERT_LT(v, 17u);
    }
    EXPECT_EQ(r.range(0), 0u);
    EXPECT_EQ(r.range(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GeometricMean)
{
    Rng r(23);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.geometric(0.1);
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, GeometricCap)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LE(r.geometric(0.001, 50), 50u);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, CapacityEnforced)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.rejects(), 1u);
    q.pop();
    EXPECT_TRUE(q.push(3));
}

TEST(BoundedQueue, UnboundedWhenZeroCapacity)
{
    BoundedQueue<int> q(0);
    for (int i = 0; i < 100000; ++i)
        ASSERT_TRUE(q.push(i));
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 100000u);
}

TEST(BoundedQueue, OccupancyHistogram)
{
    BoundedQueue<int> q(8);
    q.push(1); // occupancy 1
    q.push(2); // occupancy 2
    q.pop();
    q.push(3); // occupancy 2
    EXPECT_EQ(q.occupancy().total(), 3u);
    EXPECT_EQ(q.pushes(), 3u);
    EXPECT_EQ(q.pops(), 1u);
}

TEST(BoundedQueue, StatsReset)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.push(2);
    q.push(3);
    q.resetStats();
    EXPECT_EQ(q.pushes(), 0u);
    EXPECT_EQ(q.rejects(), 0u);
    EXPECT_EQ(q.size(), 2u) << "contents survive stats reset";
}

/** Property: occupancy histogram total equals pushes. */
class QueueCapacitySweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(QueueCapacitySweep, PushPopInvariants)
{
    std::size_t cap = GetParam();
    BoundedQueue<int> q(cap);
    Rng r(cap + 1);
    int pushed = 0, popped = 0;
    for (int i = 0; i < 5000; ++i) {
        if (r.chance(0.55)) {
            if (q.push(i))
                ++pushed;
        } else if (!q.empty()) {
            q.pop();
            ++popped;
        }
        if (cap)
            ASSERT_LE(q.size(), cap);
        ASSERT_EQ(q.size(), std::size_t(pushed - popped));
    }
    EXPECT_EQ(q.pushes(), std::uint64_t(pushed));
    EXPECT_EQ(q.occupancy().total(), std::uint64_t(pushed));
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueCapacitySweep,
                         ::testing::Values(1, 2, 8, 16, 32, 0));

} // namespace fade
