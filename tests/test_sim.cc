/** @file Unit tests for the simulation kernel (rng, queue, types). */

#include <gtest/gtest.h>

#include <deque>
#include <iterator>
#include <set>
#include <vector>

#include "sim/queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace fade
{

TEST(Types, BlockAndPageAlign)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = r.range(17);
        ASSERT_LT(v, 17u);
    }
    EXPECT_EQ(r.range(0), 0u);
    EXPECT_EQ(r.range(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GeometricMean)
{
    Rng r(23);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.geometric(0.1);
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, GeometricCap)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LE(r.geometric(0.001, 50), 50u);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, CapacityEnforced)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.rejects(), 1u);
    q.pop();
    EXPECT_TRUE(q.push(3));
}

TEST(BoundedQueue, UnboundedWhenZeroCapacity)
{
    BoundedQueue<int> q(0);
    for (int i = 0; i < 100000; ++i)
        ASSERT_TRUE(q.push(i));
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 100000u);
}

TEST(BoundedQueue, OccupancyHistogram)
{
    BoundedQueue<int> q(8);
    q.push(1); // occupancy 1
    q.push(2); // occupancy 2
    q.pop();
    q.push(3); // occupancy 2
    EXPECT_EQ(q.occupancy().total(), 3u);
    EXPECT_EQ(q.pushes(), 3u);
    EXPECT_EQ(q.pops(), 1u);
}

TEST(BoundedQueue, StatsReset)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.push(2);
    q.push(3);
    q.resetStats();
    EXPECT_EQ(q.pushes(), 0u);
    EXPECT_EQ(q.rejects(), 0u);
    EXPECT_EQ(q.size(), 2u) << "contents survive stats reset";
}

TEST(BoundedQueue, PushRunPartialAcceptance)
{
    BoundedQueue<int> q(4);
    q.push(10);
    q.push(11);

    const int run[] = {20, 21, 22, 23, 24};
    // Room for 2 of 5: accepted in order until the fill point, one
    // rejection per entry past it — exactly a loop of push() calls.
    EXPECT_EQ(q.pushRun(std::begin(run), std::end(run)), 2u);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.rejects(), 3u);
    EXPECT_EQ(q.pushes(), 4u);
    EXPECT_EQ(q.occupancy().total(), 4u)
        << "only accepted entries sample occupancy";

    EXPECT_EQ(q.pop(), 10);
    EXPECT_EQ(q.pop(), 11);
    EXPECT_EQ(q.pop(), 20);
    EXPECT_EQ(q.pop(), 21);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, PushRunBoundaries)
{
    BoundedQueue<int> q(2);
    const int run[] = {1, 2, 3};

    // Empty run: no-op, no accounting.
    EXPECT_EQ(q.pushRun(run, run), 0u);
    EXPECT_EQ(q.pushes(), 0u);
    EXPECT_EQ(q.rejects(), 0u);

    // Run exactly filling the queue: all accepted, no rejection.
    EXPECT_EQ(q.pushRun(run, run + 2), 2u);
    EXPECT_EQ(q.rejects(), 0u);

    // Run into a full queue: nothing accepted, all rejected.
    EXPECT_EQ(q.pushRun(run, run + 3), 0u);
    EXPECT_EQ(q.rejects(), 3u);
    EXPECT_EQ(q.size(), 2u);

    // Unbounded queue accepts any run.
    BoundedQueue<int> u(0);
    std::vector<int> big(10000, 7);
    EXPECT_EQ(u.pushRun(big.begin(), big.end()), big.size());
    EXPECT_EQ(u.rejects(), 0u);
}

TEST(BoundedQueue, PopRunDiscardsAndClamps)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push(i);

    // Discarding popRun: accounted as min(n, size()) pops.
    EXPECT_EQ(q.popRun(2), 2u);
    EXPECT_EQ(q.pops(), 2u);
    EXPECT_EQ(q.front(), 2);

    // Asking past the end clamps instead of panicking.
    EXPECT_EQ(q.popRun(100), 4u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pops(), 6u);
    EXPECT_EQ(q.popRun(1), 0u) << "empty queue pops nothing";
    EXPECT_EQ(q.pops(), 6u);
}

TEST(BoundedQueue, PopRunIntoOutputKeepsFifoOrder)
{
    BoundedQueue<int> q(4);
    // Force wraparound: fill, drain partially, refill.
    q.push(0);
    q.push(1);
    q.push(2);
    q.popRun(2);
    q.push(3);
    q.push(4);
    q.push(5); // buffer now wraps past the physical end

    std::vector<int> got;
    EXPECT_EQ(q.popRun(3, std::back_inserter(got)), 3u);
    EXPECT_EQ(got, (std::vector<int>{2, 3, 4}));
    EXPECT_EQ(q.front(), 5);

    got.clear();
    EXPECT_EQ(q.popRun(5, std::back_inserter(got)), 1u)
        << "output popRun clamps like the discarding form";
    EXPECT_EQ(got, (std::vector<int>{5}));
    EXPECT_TRUE(q.empty());
}

/** Property: occupancy histogram total equals pushes. */
class QueueCapacitySweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(QueueCapacitySweep, PushPopInvariants)
{
    std::size_t cap = GetParam();
    BoundedQueue<int> q(cap);
    Rng r(cap + 1);
    int pushed = 0, popped = 0;
    for (int i = 0; i < 5000; ++i) {
        if (r.chance(0.55)) {
            if (q.push(i))
                ++pushed;
        } else if (!q.empty()) {
            q.pop();
            ++popped;
        }
        if (cap)
            ASSERT_LE(q.size(), cap);
        ASSERT_EQ(q.size(), std::size_t(pushed - popped));
    }
    EXPECT_EQ(q.pushes(), std::uint64_t(pushed));
    EXPECT_EQ(q.occupancy().total(), std::uint64_t(pushed));
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueCapacitySweep,
                         ::testing::Values(1, 2, 8, 16, 32, 0));

TEST(BoundedQueue, RingWraparoundPreservesFifoOrder)
{
    // Drive the ring's head all the way around a small buffer several
    // times with interleaved push/pop, checking order throughout.
    BoundedQueue<int> q(3);
    int next = 0, expect = 0;
    q.push(next++);
    for (int i = 0; i < 50; ++i) {
        q.push(next++);
        ASSERT_EQ(q.pop(), expect++);
    }
    ASSERT_EQ(q.pop(), expect++);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, UnboundedGrowthPreservesOrderAfterWrap)
{
    // Force a mid-ring grow: pop a prefix so the contents straddle the
    // wrap point, then push past the current storage size.
    BoundedQueue<int> q(0);
    for (int i = 0; i < 12; ++i)
        q.push(i);
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(q.pop(), i);
    for (int i = 12; i < 100; ++i)
        q.push(i);
    for (int i = 10; i < 100; ++i)
        ASSERT_EQ(q.pop(), i);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, IterationMatchesFifoOrderAcrossWrap)
{
    BoundedQueue<int> q(4);
    q.push(0);
    q.push(1);
    q.push(2);
    q.pop();
    q.pop();
    q.push(3);
    q.push(4); // contents {2, 3, 4}, physically wrapped
    std::vector<int> seen;
    for (int v : q)
        seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 4}));
    const BoundedQueue<int> &cq = q;
    seen.clear();
    for (const int &v : cq)
        seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 4}));
}

TEST(BoundedQueue, PushRunMatchesIndividualPushSemantics)
{
    // pushRun must be element-for-element identical to a push() loop:
    // same acceptance cutoff, same per-event occupancy samples, same
    // rejection count.
    std::vector<int> vals{1, 2, 3, 4, 5, 6};
    BoundedQueue<int> bulk(4), loop(4);
    bulk.push(0);
    loop.push(0);
    EXPECT_EQ(bulk.pushRun(vals.begin(), vals.end()), 3u);
    for (int v : vals)
        loop.push(v);
    EXPECT_EQ(bulk.size(), loop.size());
    EXPECT_EQ(bulk.pushes(), loop.pushes());
    EXPECT_EQ(bulk.rejects(), loop.rejects());
    EXPECT_EQ(bulk.rejects(), 3u);
    EXPECT_EQ(bulk.occupancy().total(), loop.occupancy().total());
    EXPECT_EQ(bulk.occupancy().buckets(), loop.occupancy().buckets());
    while (!bulk.empty())
        EXPECT_EQ(bulk.pop(), loop.pop());
}

TEST(BoundedQueue, PopRunDiscardsAndCounts)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push(i);
    EXPECT_EQ(q.popRun(4), 4u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pops(), 4u);
    EXPECT_EQ(q.front(), 4);
    // Over-ask clamps to the population, like that many pop() calls.
    EXPECT_EQ(q.popRun(10), 2u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pops(), 6u);
    EXPECT_EQ(q.popRun(3), 0u);
}

TEST(BoundedQueue, PopRunIntoOutputIterator)
{
    BoundedQueue<int> q(0);
    for (int i = 0; i < 8; ++i)
        q.push(i * 10);
    std::vector<int> out;
    EXPECT_EQ(q.popRun(5, std::back_inserter(out)), 5u);
    EXPECT_EQ(out, (std::vector<int>{0, 10, 20, 30, 40}));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 50);
    EXPECT_EQ(q.pops(), 5u);
}

TEST(BoundedQueue, BulkAndScalarInterleaveLikeAFifo)
{
    // Randomized cross-check: a ring queue driven by a mix of scalar
    // and bulk operations behaves exactly like a reference FIFO model.
    BoundedQueue<int> q(16);
    std::deque<int> model;
    Rng r(7);
    int next = 0;
    for (int step = 0; step < 20000; ++step) {
        double dice = r.uniform();
        if (dice < 0.35) {
            bool ok = q.push(next);
            bool mok = model.size() < 16;
            ASSERT_EQ(ok, mok);
            if (mok)
                model.push_back(next);
            ++next;
        } else if (dice < 0.55) {
            std::vector<int> run;
            for (unsigned i = 0; i < r.range(9); ++i)
                run.push_back(next++);
            std::size_t accepted = q.pushRun(run.begin(), run.end());
            std::size_t expect = 0;
            for (int v : run)
                if (model.size() < 16) {
                    model.push_back(v);
                    ++expect;
                }
            ASSERT_EQ(accepted, expect);
        } else if (dice < 0.8) {
            if (!model.empty()) {
                ASSERT_EQ(q.pop(), model.front());
                model.pop_front();
            }
        } else {
            std::size_t n = r.range(7);
            std::size_t k = q.popRun(n);
            ASSERT_EQ(k, std::min(n, model.size()));
            model.erase(model.begin(), model.begin() + k);
        }
        ASSERT_EQ(q.size(), model.size());
        if (!model.empty())
            ASSERT_EQ(q.front(), model.front());
    }
}

} // namespace fade
