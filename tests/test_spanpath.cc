/**
 * @file
 * Span fast-path differential tests (the PR 4 bit-identity
 * discipline applied to batched synthesis and bulk extraction).
 *
 * The batched functional fast path — TraceGenerator::stageRun block
 * synthesis served through InstSource::fetchSpan, the span protocol on
 * ThreadedSource / CaptureSource / ReplaySource, and the run-grain
 * driver's bulk event extraction — is only legal because every staged
 * or bulk-consumed stream is instruction-for-instruction and
 * draw-for-draw identical to on-demand generation. This suite pins
 * that contract:
 *
 *  - batch-synthesized streams equal on-demand streams for every
 *    modelled profile, across stage sizes (including size 1 and sizes
 *    that straddle the staging array), with consumption interleaving
 *    fetch(), fetchNext() and fetchSpan() arbitrarily;
 *  - injectBug() splices at stage boundaries land at the same stream
 *    position as in on-demand generation;
 *  - ThreadedSource spans reproduce its round-robin fetch() stream;
 *  - capture through the span tee and replay through block-decoded
 *    spans reproduce the live stream record for record;
 *  - the run-grain engine produces identical result fingerprints
 *    (functional AND modeled-timing values) with the span path forced
 *    off (SystemConfig::spanFastPath), i.e. the fast path is invisible
 *    to every simulated value.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <algorithm>
#include <string>
#include <vector>

#include "cpu/source.hh"
#include "sim/random.hh"
#include "system/multicore.hh"
#include "testutil.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "trace/threads.hh"
#include "trace/tracefile.hh"

namespace fade
{

namespace
{

/** Exact field equality (memcmp is unreliable across padding). */
bool
sameInst(const Instruction &a, const Instruction &b)
{
    return a.pc == b.pc && a.cls == b.cls && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.numSrc == b.numSrc && a.dst == b.dst &&
           a.hasDst == b.hasDst && a.memAddr == b.memAddr &&
           a.memSize == b.memSize && a.tid == b.tid &&
           a.mispredict == b.mispredict &&
           a.mayPropagate == b.mayPropagate &&
           a.frameBytes == b.frameBytes && a.frameBase == b.frameBase &&
           a.hlKind == b.hlKind && a.truth == b.truth;
}

/** Drain @p n instructions via stageRun + fetchSpan in @p stage-sized
 *  batches, comparing against @p ref served on demand. */
void
expectSpansMatchOnDemand(InstSource &batch, InstSource &ref,
                         std::uint64_t n, std::size_t stage)
{
    std::uint64_t seen = 0;
    while (seen < n) {
        std::size_t want = std::size_t(
            stage < n - seen ? stage : n - seen);
        ASSERT_EQ(batch.stageRun(want), want);
        std::size_t got = 0;
        while (got < want) {
            InstSpan s = batch.fetchSpan(want - got);
            ASSERT_FALSE(s.empty());
            for (std::size_t i = 0; i < s.count; ++i) {
                Instruction want_i = ref.fetch();
                ASSERT_TRUE(sameInst(s.data[i], want_i))
                    << "diverged at instruction " << (seen + got + i)
                    << " (stage size " << stage << ")";
            }
            got += s.count;
        }
        seen += want;
    }
}

class SpanPathProfileSweep
    : public ::testing::TestWithParam<std::string>
{
  protected:
    /** SPEC and parallel benchmarks use different profile factories. */
    BenchProfile
    profile() const
    {
        bool parallel = std::find(parallelBenchmarks().begin(),
                                  parallelBenchmarks().end(),
                                  GetParam()) != parallelBenchmarks().end();
        return parallel ? parallelProfile(GetParam())
                        : specProfile(GetParam());
    }
};

} // namespace

/** Batch synthesis == on-demand synthesis for every profile, across
 *  stage sizes that cover the degenerate (1), sub-batch, driver (64)
 *  and multi-block shapes. */
TEST_P(SpanPathProfileSweep, BatchSynthesisMatchesOnDemand)
{
    for (std::size_t stage : {std::size_t(1), std::size_t(7),
                              std::size_t(64), std::size_t(257)}) {
        TraceGenerator batch(profile());
        TraceGenerator ref(profile());
        expectSpansMatchOnDemand(batch, ref, 20000, stage);
    }
}

/** Consumption may interleave fetch(), fetchNext() and fetchSpan()
 *  against the same staged stream without perturbing it. */
TEST_P(SpanPathProfileSweep, MixedConsumptionMatchesOnDemand)
{
    TraceGenerator batch(profile());
    TraceGenerator ref(profile());
    Rng rng(0xc0ffee);
    std::uint64_t seen = 0;
    while (seen < 20000) {
        std::size_t want = 1 + rng.range(96);
        ASSERT_EQ(batch.stageRun(want), want);
        std::size_t got = 0;
        while (got < want) {
            switch (rng.range(3)) {
              case 0: {
                Instruction i = batch.fetch();
                ASSERT_TRUE(sameInst(i, ref.fetch()));
                ++got;
                break;
              }
              case 1: {
                const Instruction *i = batch.fetchNext();
                ASSERT_NE(i, nullptr);
                ASSERT_TRUE(sameInst(*i, ref.fetch()));
                ++got;
                break;
              }
              default: {
                InstSpan s = batch.fetchSpan(1 + rng.range(32));
                ASSERT_FALSE(s.empty());
                for (std::size_t k = 0; k < s.count; ++k)
                    ASSERT_TRUE(sameInst(s.data[k], ref.fetch()));
                got += s.count;
                break;
              }
            }
        }
        seen += want;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SpanPathProfileSweep,
    ::testing::Values("astar", "bzip", "gcc", "gobmk", "hmmer",
                      "libquantum", "mcf", "omnetpp", "water", "ocean",
                      "blackscholes", "streamcluster", "fluidanimate"));

/** injectBug() between drained stages lands at the same stream
 *  position as the identical injection in on-demand generation. */
TEST(SpanPathBugs, StageBoundaryInjection)
{
    for (TruthBits kind : {truthAccessUnallocated, truthUseUninit,
                           truthLeakDrop}) {
        TraceGenerator batch(specProfile("mcf"));
        TraceGenerator ref(specProfile("mcf"));
        std::uint64_t at = 0;
        for (unsigned round = 0; round < 6; ++round) {
            // A few stages, then a bug at the drained boundary.
            for (std::size_t stage : {std::size_t(64), std::size_t(13)}) {
                expectSpansMatchOnDemand(batch, ref, stage, stage);
                at += stage;
            }
            batch.injectBug(kind);
            ref.injectBug(kind);
        }
        // The spliced instructions (and everything after) line up.
        bool sawTruth = false;
        for (unsigned k = 0; k < 4096; ++k) {
            Instruction b = batch.fetch();
            ASSERT_TRUE(sameInst(b, ref.fetch()));
            sawTruth = sawTruth || b.truth == kind;
        }
        EXPECT_TRUE(sawTruth) << "bug kind " << unsigned(kind)
                              << " never surfaced";
    }
}

/** ThreadedSource spans reproduce its round-robin on-demand stream
 *  (quantum rotation and per-thread draw order included). */
TEST(SpanPathThreaded, MatchesOnDemand)
{
    for (unsigned threads : {2u, 3u, 4u}) {
        BenchProfile p = threadedProfile("ocean", threads);
        for (std::size_t stage : {std::size_t(1), std::size_t(17),
                                  std::size_t(64), std::size_t(300)}) {
            ThreadedSource batch(p);
            ThreadedSource ref(p);
            expectSpansMatchOnDemand(batch, ref, 12000, stage);
        }
    }
}

/** Capture consumed through the span tee, then replay consumed
 *  through block-decoded spans, reproduce the live stream. */
TEST(SpanPathTrace, CaptureReplayRoundTrip)
{
    test::TempFile tmp("fade_spanpath");
    constexpr std::uint64_t kRecords = 30000;

    {
        TraceWriter writer(tmp.path());
        TraceStreamMeta meta;
        meta.profile = "gcc";
        unsigned stream = writer.addStream(meta);
        TraceGenerator gen(specProfile("gcc"));
        CaptureSource tee(gen, writer, stream);
        std::uint64_t seen = 0;
        while (seen < kRecords) {
            std::size_t want = std::size_t(
                seen + 64 <= kRecords ? 64 : kRecords - seen);
            ASSERT_EQ(tee.stageRun(want), want);
            InstSpan s = tee.fetchSpan(want);
            ASSERT_EQ(s.count, want);
            seen += s.count;
        }
        writer.close();
    }

    TraceReader reader(tmp.path());
    TraceGenerator live(specProfile("gcc"));

    // Span replay == live.
    {
        ReplaySource rep(reader, 0);
        std::uint64_t seen = 0;
        while (seen < kRecords) {
            rep.stageRun(64);
            InstSpan s = rep.fetchSpan(64);
            ASSERT_FALSE(s.empty());
            for (std::size_t i = 0; i < s.count; ++i)
                ASSERT_TRUE(sameInst(s.data[i], live.fetch()));
            seen += s.count;
        }
        EXPECT_EQ(rep.remaining(), 0u);
        EXPECT_EQ(rep.consumed(), kRecords);
    }

    // Per-record replay == span replay (fetchNext against fetchSpan).
    {
        ReplaySource byOne(reader, 0);
        ReplaySource bySpan(reader, 0);
        std::uint64_t seen = 0;
        while (seen < kRecords) {
            InstSpan s = bySpan.fetchSpan(97);
            ASSERT_FALSE(s.empty());
            for (std::size_t i = 0; i < s.count; ++i) {
                const Instruction *r = byOne.fetchNext();
                ASSERT_NE(r, nullptr);
                ASSERT_TRUE(sameInst(s.data[i], *r));
            }
            seen += s.count;
        }
        EXPECT_EQ(byOne.fetchNext(), nullptr);
        EXPECT_TRUE(bySpan.fetchSpan(1).empty());
    }
}

/** The run-grain span fast path is invisible to every simulated
 *  value: identical result fingerprints (functional results, modeled
 *  timing, queue statistics, bug reports) with spanFastPath off. */
TEST(SpanPathEngine, ForcedOffFingerprintIdentical)
{
    for (const char *monitor : {"AddrCheck", "TaintCheck", ""}) {
        for (unsigned fades : {1u, 2u}) {
            MultiCoreConfig on;
            on.engine = Engine::RunGrain;
            on.monitor = monitor;
            on.workloads = {specProfile("astar"), specProfile("gcc")};
            on.numShards = 2;
            on.shard.fadesPerShard = fades;
            MultiCoreConfig off = on;
            off.shard.spanFastPath = false;

            auto run = [](const MultiCoreConfig &cfg) {
                MultiCoreSystem sys(cfg);
                sys.warmup(2000);
                MultiCoreResult r = sys.run(8000);
                return resultFingerprint(sys, r);
            };
            EXPECT_EQ(run(on), run(off))
                << "monitor=" << monitor << " fades=" << fades;
        }
    }
}

} // namespace fade

