/** @file Unit tests for the statistics containers. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace fade
{

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, Basic)
{
    RunningStat s;
    s.sample(1.0);
    s.sample(2.0);
    s.sample(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStat, MergeEqualsSamplingBothStreams)
{
    RunningStat a, b, both;
    for (double v : {1.0, 4.0, 2.5}) {
        a.sample(v);
        both.sample(v);
    }
    for (double v : {0.5, 8.0}) {
        b.sample(v);
        both.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_DOUBLE_EQ(a.sum(), both.sum());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.stddev(), both.stddev());

    // Merging an empty stat is the identity (infinities must not leak
    // into min/max).
    RunningStat empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
}

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketUpper(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketUpper(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketUpper(3), 4u);
}

TEST(Log2Histogram, Cdf)
{
    Log2Histogram h;
    for (std::uint64_t v : {0, 1, 2, 4, 8, 8, 8, 16})
        h.sample(v);
    EXPECT_EQ(h.total(), 8u);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 1.0 / 8);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 2.0 / 8);
    EXPECT_DOUBLE_EQ(h.cdfAt(8), 7.0 / 8);
    EXPECT_DOUBLE_EQ(h.cdfAt(1024), 1.0);
    EXPECT_EQ(h.maxValue(), 16u);
}

TEST(Log2Histogram, Percentile)
{
    Log2Histogram h;
    for (int i = 0; i < 99; ++i)
        h.sample(1);
    h.sample(1024);
    EXPECT_EQ(h.percentile(0.5), 1u);
    EXPECT_EQ(h.percentile(1.0), 1024u);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

} // namespace fade
